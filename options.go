package severifast

// Functional options for Config construction. The struct-literal form
// keeps working — options are sugar over it, not a replacement:
//
//	cfg := severifast.NewConfig(
//	    severifast.WithKernel(severifast.KernelLupine),
//	    severifast.WithScheme(severifast.SchemeSEVeriFastVmlinux),
//	)
//
// is identical to Config{Kernel: KernelLupine, Scheme: ...} with every
// unset field defaulted at use (Boot, NewPool, ExpectedLaunchDigest all
// call fillDefaults).

// Option mutates a Config under construction; apply with NewConfig or
// Config.With.
type Option func(*Config)

// NewConfig builds a Config from options. Fields no option sets keep
// their zero value and default exactly as a zero struct literal would.
func NewConfig(opts ...Option) Config {
	var cfg Config
	return cfg.With(opts...)
}

// With returns a copy of cfg with the options applied — use it to derive
// variants from a base configuration.
func (c Config) With(opts ...Option) Config {
	for _, opt := range opts {
		opt(&c)
	}
	return c
}

// WithScheme selects the boot flow (stock, severifast,
// severifast-vmlinux, qemu-ovmf).
func WithScheme(s Scheme) Option { return func(c *Config) { c.Scheme = s } }

// WithCodec selects the bzImage payload compression for
// SchemeSEVeriFast (the Fig. 5 LZ4-vs-gzip trade-off).
func WithCodec(codec Codec) Option { return func(c *Config) { c.Codec = codec } }

// WithKernel selects the guest kernel configuration (Fig. 8).
func WithKernel(k Kernel) Option { return func(c *Config) { c.Kernel = k } }

// WithLevel selects the SEV feature generation.
func WithLevel(l Level) Option { return func(c *Config) { c.Level = l } }

// WithAttestation enables remote attestation: the boot runs the full
// report→verify→secret-release exchange against an in-process relying
// party primed with the configuration's expected digest.
func WithAttestation() Option { return func(c *Config) { c.Attest = true } }

// WithSeed fixes the host identity (PSP keys) and jitter.
func WithSeed(seed int64) Option { return func(c *Config) { c.Seed = seed } }

// WithHugePageValidation opts into hardware-faithful huge-page
// validation accounting (the paper's 2 MiB ablation): pvalidate
// instructions are charged as issued, with fragmented blocks falling
// back to per-4 KiB operations. Virtual-time outputs change, so this
// mode carries its own goldens and bench labels.
func WithHugePageValidation() Option { return func(c *Config) { c.HugePageValidation = true } }
