package severifast_test

import (
	"fmt"
	"time"

	severifast "github.com/severifast/severifast"
)

// The basic flow: boot one SEV-SNP microVM with SEVeriFast and inspect
// where the time went.
func ExampleBoot() {
	res, err := severifast.Boot(severifast.Config{
		Kernel: severifast.KernelLupine,
		Scheme: severifast.SchemeSEVeriFast,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("pre-encryption under 10ms:", res.PreEncryption < 10*time.Millisecond)
	fmt.Println("booted to init:", res.InitrdOK)
	// Output:
	// pre-encryption under 10ms: true
	// booted to init: true
}

// The guest owner's side: compute the launch digest a correct boot must
// produce, without booting anything (the paper's §4.2 tool).
func ExampleExpectedLaunchDigest() {
	cfg := severifast.Config{Kernel: severifast.KernelLupine}
	want, err := severifast.ExpectedLaunchDigest(cfg)
	if err != nil {
		panic(err)
	}
	res, err := severifast.Boot(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("measurement matches:", res.LaunchDigest == want)
	// Output:
	// measurement matches: true
}

// Concurrent launches contend on the single PSP (the paper's Fig. 12).
func ExampleHost_BootConcurrent() {
	cfg := severifast.Config{Kernel: severifast.KernelLupine, InitrdMiB: 2}
	one, err := severifast.NewHost().BootConcurrent(cfg, 1)
	if err != nil {
		panic(err)
	}
	eight, err := severifast.NewHost().BootConcurrent(cfg, 8)
	if err != nil {
		panic(err)
	}
	var mean time.Duration
	for _, r := range eight {
		mean += r.Total
	}
	mean /= 8
	fmt.Println("8-way slower than 1-way:", mean > one[0].Total)
	// Output:
	// 8-way slower than 1-way: true
}

// The Pool is the supported way to run many boots of one image: the
// first Boot cold boots and measures; later Boots fork from the captured
// snapshot, inheriting the cold boot's launch digest, and Prewarm holds
// forked standbys ready ahead of demand.
func ExampleNewPool() {
	cfg := severifast.NewConfig(severifast.WithKernel(severifast.KernelLupine))
	cfg.InitrdMiB = 2 // the struct form still works alongside options
	pool, err := severifast.NewPool(cfg, severifast.PoolOptions{})
	if err != nil {
		panic(err)
	}
	defer pool.Close()
	cold, err := pool.Boot()
	if err != nil {
		panic(err)
	}
	warm, err := pool.Boot()
	if err != nil {
		panic(err)
	}
	if _, err := pool.Prewarm(2); err != nil {
		panic(err)
	}
	s := pool.Stats()
	fmt.Println("cold/warm boots:", s.ColdBoots, s.WarmBoots)
	fmt.Println("standbys ready:", s.Standbys)
	fmt.Println("same launch digest:", warm.LaunchDigest == cold.LaunchDigest)
	fmt.Println("warm faster than cold:", warm.Total < cold.Total)
	// Output:
	// cold/warm boots: 1 1
	// standbys ready: 2
	// same launch digest: true
	// warm faster than cold: true
}

// WithScheme selects the boot flow. Stock Firecracker is non-confidential:
// nothing is measured, so the launch digest stays zero.
func ExampleWithScheme() {
	res, err := severifast.Boot(severifast.NewConfig(
		severifast.WithScheme(severifast.SchemeStock),
		severifast.WithKernel(severifast.KernelLupine),
	))
	if err != nil {
		panic(err)
	}
	fmt.Println("unmeasured:", res.LaunchDigest == [32]byte{})
	// Output:
	// unmeasured: true
}

// WithCodec flips the Fig. 5 trade-off: the codec changes the bzImage
// payload bytes, so it changes the launch measurement too.
func ExampleWithCodec() {
	lz4, err := severifast.ExpectedLaunchDigest(severifast.NewConfig(
		severifast.WithCodec(severifast.CodecLZ4),
	))
	if err != nil {
		panic(err)
	}
	gzip, err := severifast.ExpectedLaunchDigest(severifast.NewConfig(
		severifast.WithCodec(severifast.CodecGzip),
	))
	if err != nil {
		panic(err)
	}
	fmt.Println("codecs measure differently:", lz4 != gzip)
	// Output:
	// codecs measure differently: true
}

// WithKernel selects the guest kernel configuration (Fig. 8); each
// kernel is its own measured identity.
func ExampleWithKernel() {
	lupine, err := severifast.ExpectedLaunchDigest(severifast.NewConfig(
		severifast.WithKernel(severifast.KernelLupine),
	))
	if err != nil {
		panic(err)
	}
	aws, err := severifast.ExpectedLaunchDigest(severifast.NewConfig(
		severifast.WithKernel(severifast.KernelAWS),
	))
	if err != nil {
		panic(err)
	}
	fmt.Println("kernels measure differently:", lupine != aws)
	// Output:
	// kernels measure differently: true
}

// WithAttestation runs the full report→verify→secret-release exchange
// after boot; the attested total strictly contains the boot.
func ExampleWithAttestation() {
	cfg := severifast.NewConfig(
		severifast.WithKernel(severifast.KernelAWS),
		severifast.WithAttestation(),
	)
	cfg.InitrdMiB = 2
	res, err := severifast.Boot(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("attested:", res.Attestation > 0)
	fmt.Println("attestation extends the total:", res.TotalWithAttest > res.Total)
	// Output:
	// attested: true
	// attestation extends the total: true
}

// Warm start from a snapshot needs the donor's consent to key sharing —
// and is then much faster than a cold boot (the paper's §7 exploration).
func ExampleHost_WarmBoot() {
	host := severifast.NewHost()
	cold, err := host.Boot(severifast.Config{
		Kernel:          severifast.KernelLupine,
		InitrdMiB:       2,
		AllowKeySharing: true,
	})
	if err != nil {
		panic(err)
	}
	snap, err := host.Snapshot(cold)
	if err != nil {
		panic(err)
	}
	warm, err := host.WarmBoot(snap)
	if err != nil {
		panic(err)
	}
	fmt.Println("warm faster than cold:", warm.Total < cold.Total)
	// Output:
	// warm faster than cold: true
}
