package severifast_test

import (
	"fmt"
	"time"

	severifast "github.com/severifast/severifast"
)

// The basic flow: boot one SEV-SNP microVM with SEVeriFast and inspect
// where the time went.
func ExampleBoot() {
	res, err := severifast.Boot(severifast.Config{
		Kernel: severifast.KernelLupine,
		Scheme: severifast.SchemeSEVeriFast,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("pre-encryption under 10ms:", res.PreEncryption < 10*time.Millisecond)
	fmt.Println("booted to init:", res.InitrdOK)
	// Output:
	// pre-encryption under 10ms: true
	// booted to init: true
}

// The guest owner's side: compute the launch digest a correct boot must
// produce, without booting anything (the paper's §4.2 tool).
func ExampleExpectedLaunchDigest() {
	cfg := severifast.Config{Kernel: severifast.KernelLupine}
	want, err := severifast.ExpectedLaunchDigest(cfg)
	if err != nil {
		panic(err)
	}
	res, err := severifast.Boot(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("measurement matches:", res.LaunchDigest == want)
	// Output:
	// measurement matches: true
}

// Concurrent launches contend on the single PSP (the paper's Fig. 12).
func ExampleHost_BootConcurrent() {
	cfg := severifast.Config{Kernel: severifast.KernelLupine, InitrdMiB: 2}
	one, err := severifast.NewHost().BootConcurrent(cfg, 1)
	if err != nil {
		panic(err)
	}
	eight, err := severifast.NewHost().BootConcurrent(cfg, 8)
	if err != nil {
		panic(err)
	}
	var mean time.Duration
	for _, r := range eight {
		mean += r.Total
	}
	mean /= 8
	fmt.Println("8-way slower than 1-way:", mean > one[0].Total)
	// Output:
	// 8-way slower than 1-way: true
}

// Warm start from a snapshot needs the donor's consent to key sharing —
// and is then much faster than a cold boot (the paper's §7 exploration).
func ExampleHost_WarmBoot() {
	host := severifast.NewHost()
	cold, err := host.Boot(severifast.Config{
		Kernel:          severifast.KernelLupine,
		InitrdMiB:       2,
		AllowKeySharing: true,
	})
	if err != nil {
		panic(err)
	}
	snap, err := host.Snapshot(cold)
	if err != nil {
		panic(err)
	}
	warm, err := host.WarmBoot(snap)
	if err != nil {
		panic(err)
	}
	fmt.Println("warm faster than cold:", warm.Total < cold.Total)
	// Output:
	// warm faster than cold: true
}
