package severifast_test

import (
	"strings"
	"testing"

	severifast "github.com/severifast/severifast"
)

func poolConfig() severifast.Config {
	cfg := severifast.NewConfig(
		severifast.WithKernel(severifast.KernelLupine),
		severifast.WithSeed(42),
	)
	cfg.InitrdMiB = 2
	return cfg
}

func TestPoolColdThenWarm(t *testing.T) {
	pool, err := severifast.NewPool(poolConfig(), severifast.PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	cold, err := pool.Boot()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := pool.Boot()
	if err != nil {
		t.Fatal(err)
	}
	if warm.Total >= cold.Total {
		t.Fatalf("warm boot %v not faster than cold %v", warm.Total, cold.Total)
	}
	if warm.LaunchDigest != cold.LaunchDigest {
		t.Fatal("forked boot does not carry the cold boot's launch digest")
	}
	if cold.LaunchDigest == [32]byte{} {
		t.Fatal("cold boot was not measured")
	}
	s := pool.Stats()
	if s.ColdBoots != 1 || s.WarmBoots != 1 || s.Boots != 2 {
		t.Fatalf("stats %+v, want 1 cold + 1 warm", s)
	}
	if s.WarmP50 >= s.ColdP50 || s.WarmP50 <= 0 {
		t.Fatalf("warm p50 %v vs cold p50 %v", s.WarmP50, s.ColdP50)
	}
}

func TestPoolPrewarm(t *testing.T) {
	pool, err := severifast.NewPool(poolConfig(), severifast.PoolOptions{WarmPoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Prewarm on an unseeded pool pays one measured cold boot first,
	// then forks standbys up to the pool cap.
	added, err := pool.Prewarm(5)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 {
		t.Fatalf("prewarm added %d standbys, want 2 (pool cap)", added)
	}
	s := pool.Stats()
	if s.ColdBoots != 1 || s.Standbys != 2 {
		t.Fatalf("stats %+v, want 1 seeding cold boot and 2 standbys", s)
	}
	// Boots pop standbys before forking inline.
	if _, err := pool.Boot(); err != nil {
		t.Fatal(err)
	}
	s = pool.Stats()
	if s.Standbys != 1 || s.WarmBoots != 1 {
		t.Fatalf("stats %+v after popping a standby", s)
	}
}

// TestPoolLegacyEquality is the facade-level slice of the fork-vs-cold
// proof (the full tier/digest/latency matrix lives in internal/fleet):
// flipping LegacyCopyRestore must not move a single virtual-time output.
func TestPoolLegacyEquality(t *testing.T) {
	boot := func(legacy bool) (cold, warm *severifast.Result) {
		t.Helper()
		pool, err := severifast.NewPool(poolConfig(), severifast.PoolOptions{LegacyCopyRestore: legacy})
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()
		if cold, err = pool.Boot(); err != nil {
			t.Fatal(err)
		}
		if warm, err = pool.Boot(); err != nil {
			t.Fatal(err)
		}
		return cold, warm
	}
	forkCold, forkWarm := boot(false)
	copyCold, copyWarm := boot(true)
	if forkCold.Total != copyCold.Total || forkWarm.Total != copyWarm.Total {
		t.Fatalf("virtual time diverged: cold %v/%v warm %v/%v",
			forkCold.Total, copyCold.Total, forkWarm.Total, copyWarm.Total)
	}
	if forkCold.LaunchDigest != copyCold.LaunchDigest {
		t.Fatal("cold launch digest diverged between fork and copy modes")
	}
}

func TestPoolAttested(t *testing.T) {
	cfg := poolConfig().With(severifast.WithAttestation())
	pool, err := severifast.NewPool(cfg, severifast.PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for i := 0; i < 3; i++ {
		if _, err := pool.Boot(); err != nil {
			t.Fatal(err)
		}
	}
	s := pool.Stats()
	if s.Attested != 3 || s.Failed != 0 {
		t.Fatalf("stats %+v, want every boot attested", s)
	}
}

func TestPoolRejections(t *testing.T) {
	if _, err := severifast.NewPool(severifast.NewConfig(
		severifast.WithScheme(severifast.SchemeQEMUOVMF),
	), severifast.PoolOptions{}); err == nil || !strings.Contains(err.Error(), "Pool does not support") {
		t.Fatalf("qemu-ovmf pool error = %v", err)
	}
	if _, err := severifast.NewPool(severifast.NewConfig(
		severifast.WithCodec(severifast.CodecGzip),
	), severifast.PoolOptions{}); err == nil || !strings.Contains(err.Error(), "CodecLZ4 only") {
		t.Fatalf("gzip pool error = %v", err)
	}
}

func TestPoolClose(t *testing.T) {
	pool, err := severifast.NewPool(poolConfig(), severifast.PoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if _, err := pool.Boot(); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("Boot after Close = %v, want closed error", err)
	}
	if _, err := pool.Prewarm(1); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("Prewarm after Close = %v, want closed error", err)
	}
}

// TestConfigOptions: NewConfig is pure sugar over the struct literal and
// With derives copies without mutating the base.
func TestConfigOptions(t *testing.T) {
	got := severifast.NewConfig(
		severifast.WithScheme(severifast.SchemeSEVeriFastVmlinux),
		severifast.WithCodec(severifast.CodecGzip),
		severifast.WithKernel(severifast.KernelAWS),
		severifast.WithLevel(severifast.LevelES),
		severifast.WithAttestation(),
		severifast.WithSeed(7),
	)
	want := severifast.Config{
		Scheme: severifast.SchemeSEVeriFastVmlinux,
		Codec:  severifast.CodecGzip,
		Kernel: severifast.KernelAWS,
		Level:  severifast.LevelES,
		Attest: true,
		Seed:   7,
	}
	if got != want {
		t.Fatalf("NewConfig = %+v, want %+v", got, want)
	}
	base := severifast.NewConfig(severifast.WithKernel(severifast.KernelLupine))
	derived := base.With(severifast.WithKernel(severifast.KernelAWS))
	if base.Kernel != severifast.KernelLupine || derived.Kernel != severifast.KernelAWS {
		t.Fatalf("With mutated the base: base=%q derived=%q", base.Kernel, derived.Kernel)
	}
}
