package severifast

// CoW-path digest invariance: the shared-artifact fast paths (interned
// buffers, memoized range digests, zero-copy page aliasing, derived
// decompression caches) are warm after the first boot of an image. The
// second and later boots take those fast paths, and their launch digest
// must be bit-identical to the cold boot's and to the host-side expected
// digest — for every scheme and every SEV level.

import "testing"

func TestCoWBootDigestMatchesColdBoot(t *testing.T) {
	schemes := []Scheme{SchemeSEVeriFast, SchemeSEVeriFastVmlinux, SchemeQEMUOVMF}
	levels := []Level{LevelSEV, LevelES, LevelSNP}
	for _, s := range schemes {
		for _, l := range levels {
			cfg := Config{Kernel: KernelLupine, Scheme: s, Level: l, InitrdMiB: 1}
			cold, err := Boot(cfg)
			if err != nil {
				t.Fatalf("%s/%s cold: %v", s, l, err)
			}
			want, err := ExpectedLaunchDigest(cfg)
			if err != nil {
				t.Fatalf("%s/%s expected digest: %v", s, l, err)
			}
			if cold.LaunchDigest != want {
				t.Fatalf("%s/%s: cold digest %x != expected %x", s, l, cold.LaunchDigest[:8], want[:8])
			}
			// Artifact and derived caches are warm now; this boot aliases
			// the canonical buffers instead of copying and re-hashing.
			warm, err := Boot(cfg)
			if err != nil {
				t.Fatalf("%s/%s warm: %v", s, l, err)
			}
			if warm.LaunchDigest != cold.LaunchDigest {
				t.Fatalf("%s/%s: CoW boot digest %x != cold boot digest %x",
					s, l, warm.LaunchDigest[:8], cold.LaunchDigest[:8])
			}
			if warm.InitrdOK != cold.InitrdOK || warm.CPUs != cold.CPUs {
				t.Fatalf("%s/%s: warm guest state %+v differs from cold %+v", s, l, warm, cold)
			}
		}
	}
}
