package severifast

// The Pool facade: the supported way to run many boots of one image.
//
// A Pool owns one host and one registered image. Its first Boot cold
// boots and measures the image; the orchestrator then captures a
// fork-ready shared-key snapshot, and every later Boot forks from it —
// CoW page aliasing of the donor's plaintext with the donor's launch
// digest inherited — so a warm boot costs O(dirty pages) of host work
// and O(1) digest reuse instead of re-measuring O(image) bytes.
// Prewarm builds forked standbys ahead of demand; Stats exposes the
// tier mix; Close drains and reports the first deterministic error.
//
//	pool, err := severifast.NewPool(severifast.NewConfig(
//	    severifast.WithKernel(severifast.KernelLupine),
//	), severifast.PoolOptions{})
//	defer pool.Close()
//	cold, _ := pool.Boot() // measured cold boot, seeds the warm pool
//	warm, _ := pool.Boot() // forked: same digest, O(dirty) host work

import (
	"fmt"
	"time"

	"github.com/severifast/severifast/internal/firecracker"
	"github.com/severifast/severifast/internal/fleet"
	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/telemetry"
)

// PoolOptions tunes a Pool beyond what Config describes.
type PoolOptions struct {
	// WarmPoolSize caps how many forked standbys Prewarm may hold.
	// Defaults to 1024. Standbys are only created by explicit Prewarm
	// calls, so the default never changes Boot-only virtual timing.
	WarmPoolSize int
	// LegacyCopyRestore forces warm boots onto the pre-fork ciphertext
	// replay path. Virtual time and launch digests are identical to the
	// fork path by construction; the flag exists for the equality test
	// and as a one-release escape hatch.
	LegacyCopyRestore bool
}

// PoolStats is a point-in-time snapshot of a Pool's serving history.
type PoolStats struct {
	// Boots counts completed boots; the per-tier fields break it down.
	Boots           int
	ColdBoots       int
	CachedColdBoots int
	WarmBoots       int
	// Standbys is the current prewarmed-standby depth.
	Standbys int
	// Attested counts boots whose key-release exchange was granted.
	Attested int
	// Failed counts boots that exhausted their retry budget.
	Failed int
	// ColdP50/WarmP50 are median request latencies (virtual time) per
	// tier; zero when the tier has served nothing.
	ColdP50 time.Duration
	WarmP50 time.Duration
}

// Pool runs many boots of one image on one host, warm ones forked from a
// sealed snapshot. Create it with NewPool; it is not safe for concurrent
// use from multiple goroutines (drive it from one, like a Host).
type Pool struct {
	host *Host
	cfg  Config
	opts PoolOptions

	orch *fleet.Orchestrator
	img  *fleet.Image

	lastServed *kvm.Machine
	lastTier   fleet.Tier
	seq        int
	closed     bool
}

// NewPool validates cfg, provisions a fresh host, and registers the
// image. The orchestrator (and its measured-image cache) is created
// eagerly so the first Boot pays only the boot, not the setup.
func NewPool(cfg Config, opts PoolOptions) (*Pool, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	p := newPool(NewHostSeed(cfgSeed(cfg)), cfg, opts)
	if err := p.ensureOrch(); err != nil {
		return nil, err
	}
	return p, nil
}

// newPool binds a pool to an existing host without touching the host's
// engine or telemetry: the orchestrator is created lazily, so wrapper
// paths that never Boot through the pool (BootConcurrent's cold fan-out)
// leave the host exactly as before the Pool API existed.
func newPool(h *Host, cfg Config, opts PoolOptions) *Pool {
	if opts.WarmPoolSize <= 0 {
		opts.WarmPoolSize = 1024
	}
	return &Pool{host: h, cfg: cfg, opts: opts}
}

// poolTCB is the firmware level the pool's host is enrolled at when
// Config.Attest wires an in-process key broker.
var poolTCB = kbs.TCB{BootLoader: 2, TEE: 1, SNP: 8, Microcode: 115}

// ensureOrch builds the fleet orchestrator and registers the image.
func (p *Pool) ensureOrch() error {
	if p.orch != nil {
		return nil
	}
	if p.cfg.Scheme == SchemeQEMUOVMF {
		return fmt.Errorf("severifast: Pool does not support %q (use Host.Boot)", p.cfg.Scheme)
	}
	if p.cfg.Codec != CodecLZ4 {
		return fmt.Errorf("severifast: Pool supports CodecLZ4 only, not %q", p.cfg.Codec)
	}
	preset, err := kernelgen.PresetByName(string(p.cfg.Kernel))
	if err != nil {
		return classifyErr(err)
	}
	level, err := sev.ParseLevel(string(p.cfg.Level))
	if err != nil {
		return err
	}
	p.host.inner.THP = !p.cfg.DisableTHP
	p.host.inner.HugePageValidation = p.cfg.HugePageValidation
	fcfg := fleet.Config{
		Name:              "pool",
		Standalone:        true,
		EnableWarm:        level.Encrypted(),
		LegacyCopyRestore: p.opts.LegacyCopyRestore,
		WarmPoolSize:      p.opts.WarmPoolSize,
		Telemetry:         p.host.reg,
		Level:             level,
		VCPUs:             p.cfg.VCPUs,
		MemSize:           uint64(p.cfg.MemMiB) << 20,
		OnServed: func(_ *sim.Proc, m *kvm.Machine, tier fleet.Tier) {
			p.lastServed, p.lastTier = m, tier
		},
	}
	switch p.cfg.Scheme {
	case SchemeStock:
		fcfg.Scheme = firecracker.SchemeStock
	case SchemeSEVeriFast:
		fcfg.Scheme = firecracker.SchemeSEVeriFastBz
	case SchemeSEVeriFastVmlinux:
		fcfg.Scheme = firecracker.SchemeSEVeriFastVmlinux
	}
	if p.cfg.Attest && level.Encrypted() {
		auth := kbs.NewAuthority(p.host.seed ^ 0xB0B)
		broker := kbs.NewBroker(auth.Root(), kbs.Config{
			MinTCB:   poolTCB,
			NonceTTL: time.Second,
			Seed:     p.host.seed,
		})
		broker.AddTenant("owner", []byte("secret-"+string(p.cfg.Kernel)))
		fcfg.KBS = broker
		fcfg.Enrollment = auth.Enroll(p.host.inner.PSP, "chip-pool", poolTCB)
		fcfg.AgentSeed = p.host.seed
	}
	p.orch = fleet.New(p.host.eng, p.host.inner, fcfg)
	initrd := kernelgen.BuildInitrd(p.cfg.Seed, p.cfg.InitrdMiB<<20)
	img, err := p.orch.RegisterImage(string(p.cfg.Kernel), preset, initrd)
	if err != nil {
		return classifyErr(err)
	}
	p.img = img
	return nil
}

// Boot serves one boot of the pool's image: cold (measured) the first
// time, forked from the warm pool afterwards. The returned Result's
// Total is the request latency in virtual time; LaunchDigest is the
// measurement the guest attested with — identical for cold and forked
// boots of the same image.
func (p *Pool) Boot() (*Result, error) {
	if p.closed {
		return nil, fmt.Errorf("severifast: pool is closed")
	}
	if err := p.ensureOrch(); err != nil {
		return nil, err
	}
	p.seq++
	var (
		total    time.Duration
		bootErr  error
		finished bool
	)
	p.host.eng.Go(fmt.Sprintf("pool-boot-%d", p.seq), func(pr *sim.Proc) {
		start := pr.Now()
		p.orch.Serve(pr, fleet.Request{
			Tenant: "owner",
			Image:  p.img,
			Done: func(dp *sim.Proc, _ fleet.Tier, err error) {
				total = dp.Now().Sub(start)
				bootErr = err
				finished = true
			},
		})
	})
	p.host.eng.Run()
	if !finished {
		return nil, fmt.Errorf("severifast: pool boot never concluded")
	}
	if bootErr != nil {
		return nil, classifyErr(bootErr)
	}
	res := &Result{
		Total: total,
		host:  p.host,
	}
	if m := p.lastServed; m != nil {
		res.machine = m
		res.timeline = m.Timeline
		res.CPUs = p.cfg.VCPUs
		if m.Launch != nil {
			res.LaunchDigest = m.Launch.Digest()
		}
	}
	return res, nil
}

// Prewarm forks up to n standby guests so later Boot calls pop a ready
// machine instead of forking inline. If the warm pool is not yet seeded
// (no boot has happened), Prewarm pays one measured cold boot first to
// capture the donor; that boot counts in Stats. Returns how many
// standbys were added, bounded by PoolOptions.WarmPoolSize.
func (p *Pool) Prewarm(n int) (int, error) {
	if p.closed {
		return 0, fmt.Errorf("severifast: pool is closed")
	}
	if err := p.ensureOrch(); err != nil {
		return 0, err
	}
	if !p.img.HasWarm() {
		if _, err := p.Boot(); err != nil {
			return 0, err
		}
	}
	var (
		added   int
		preErr  error
		started bool
	)
	p.seq++
	p.host.eng.Go(fmt.Sprintf("pool-prewarm-%d", p.seq), func(pr *sim.Proc) {
		started = true
		added, preErr = p.orch.Prewarm(pr, p.img, n)
	})
	p.host.eng.Run()
	if !started {
		return 0, fmt.Errorf("severifast: prewarm never ran")
	}
	return added, classifyErr(preErr)
}

// Stats snapshots the pool's serving history.
func (p *Pool) Stats() PoolStats {
	var s PoolStats
	if p.orch == nil {
		return s
	}
	m := p.orch.Metrics()
	s.ColdBoots = m.Boots[fleet.TierCold]
	s.CachedColdBoots = m.Boots[fleet.TierCachedCold]
	s.WarmBoots = m.Boots[fleet.TierWarm]
	s.Boots = s.ColdBoots + s.CachedColdBoots + s.WarmBoots
	s.Standbys = p.orch.StandbyCount(p.img)
	s.Attested = m.Attested
	s.Failed = m.Failed
	if len(m.Latency[fleet.TierCold]) > 0 {
		s.ColdP50 = m.Latency[fleet.TierCold].Percentile(50)
	}
	if len(m.Latency[fleet.TierWarm]) > 0 {
		s.WarmP50 = m.Latency[fleet.TierWarm].Percentile(50)
	}
	return s
}

// Close drains the orchestrator and reports the first deterministic
// error any boot hit. The pool cannot be used afterwards.
func (p *Pool) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	if p.orch == nil {
		return nil
	}
	p.orch.Close()
	p.host.eng.Run()
	return classifyErr(p.orch.Err())
}

// bootFanout is the Pool's compatibility mode behind Host.BootConcurrent:
// n identical guests spawned simultaneously on the pool's host, each a
// full independent cold boot (process names "vm-<i>", exactly the
// pre-Pool behavior, so seeded virtual-time outputs are unchanged). It
// never creates the orchestrator.
func (p *Pool) bootFanout(n int) ([]*Result, error) {
	cfg := p.cfg
	preset, err := kernelgen.PresetByName(string(cfg.Kernel))
	if err != nil {
		return nil, classifyErr(err)
	}
	level, err := sev.ParseLevel(string(cfg.Level))
	if err != nil {
		return nil, err
	}
	art, err := kernelgen.Cached(preset)
	if err != nil {
		return nil, err
	}
	initrd := kernelgen.BuildInitrd(cfg.Seed, cfg.InitrdMiB<<20)
	h := p.host
	h.inner.THP = !cfg.DisableTHP
	h.inner.HugePageValidation = cfg.HugePageValidation

	results := make([]*Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		h.eng.Go(fmt.Sprintf("vm-%d", i), func(pr *sim.Proc) {
			results[i], errs[i] = h.bootOne(pr, cfg, preset, level, art, initrd)
		})
	}
	h.eng.Run()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	for _, r := range results {
		h.reg.Counter("severifast_boots_total", telemetry.A("scheme", string(cfg.Scheme))).Inc()
		h.reg.Series("severifast_boot_seconds", telemetry.A("scheme", string(cfg.Scheme))).Observe(r.Total)
	}
	return results, nil
}
