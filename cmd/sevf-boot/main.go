// sevf-boot boots one simulated microVM and prints its timing breakdown —
// the quickest way to see the SEVeriFast vs QEMU/OVMF difference.
//
//	sevf-boot -kernel aws -scheme severifast -attest
//	sevf-boot -kernel aws -scheme qemu-ovmf
//	sevf-boot -kernel lupine -scheme stock -timeline
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	severifast "github.com/severifast/severifast"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "boot failed:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sevf-boot", flag.ContinueOnError)
	var (
		kernel   = fs.String("kernel", "aws", "guest kernel: lupine | aws | ubuntu")
		scheme   = fs.String("scheme", "severifast", "boot flow: stock | severifast | severifast-vmlinux | qemu-ovmf")
		level    = fs.String("level", "", "SEV level: none | sev | sev-es | sev-snp (default: snp, or none for stock)")
		codec    = fs.String("codec", "lz4", "bzImage compression: lz4 | gzip")
		vcpus    = fs.Int("vcpus", 1, "guest vCPUs")
		memMiB   = fs.Int("mem", 256, "guest memory (MiB)")
		initrd   = fs.Int("initrd", 16, "attestation initrd size (MiB)")
		attest   = fs.Bool("attest", false, "run remote attestation after init")
		inband   = fs.Bool("inband-hashes", false, "hash components at launch instead of out of band (§4.3 ablation)")
		preptPT  = fs.Bool("preencrypt-pagetables", false, "pre-encrypt page tables instead of generating them (Fig. 7 ablation)")
		noTHP    = fs.Bool("no-thp", false, "pvalidate with 4 KiB pages (§6.1 ablation)")
		concur   = fs.Int("concurrency", 1, "boot N guests simultaneously on one host (Fig. 12)")
		showDig  = fs.Bool("digest", false, "print the launch digest and the expected digest")
		timeline = fs.Bool("timeline", false, "draw the boot as an ASCII Gantt chart")

		traceOut   = fs.String("trace-out", "", "write a Chrome trace-event JSON file of the boot(s) (open in Perfetto)")
		metricsOut = fs.String("metrics-out", "", "write telemetry in Prometheus text format")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := severifast.Config{
		Kernel:               severifast.Kernel(*kernel),
		Level:                severifast.Level(*level),
		Scheme:               severifast.Scheme(*scheme),
		VCPUs:                *vcpus,
		MemMiB:               *memMiB,
		InitrdMiB:            *initrd,
		Codec:                severifast.Codec(*codec),
		InBandHashing:        *inband,
		PreEncryptPageTables: *preptPT,
		DisableTHP:           *noTHP,
		Attest:               *attest,
	}

	host := severifast.NewHost()
	results, err := host.BootConcurrent(cfg, *concur)
	if err != nil {
		return err
	}

	for i, res := range results {
		if *concur > 1 {
			fmt.Fprintf(out, "--- guest %d ---\n", i)
		}
		printResult(out, res)
	}
	if *concur > 1 {
		var mean time.Duration
		for _, r := range results {
			mean += r.Total
		}
		fmt.Fprintf(out, "\nmean boot time of %d concurrent guests: %v\n",
			*concur, (mean / time.Duration(*concur)).Round(10*time.Microsecond))
	}
	if *timeline {
		fmt.Fprintln(out)
		fmt.Fprint(out, results[0].RenderTimeline(100))
	}
	if *showDig {
		fmt.Fprintf(out, "launch digest:   %s\n", hex.EncodeToString(results[0].LaunchDigest[:]))
		if want, err := severifast.ExpectedLaunchDigest(cfg); err == nil {
			fmt.Fprintf(out, "expected digest: %s\n", hex.EncodeToString(want[:]))
		}
	}
	if *traceOut != "" {
		if err := writeExport(*traceOut, host.Telemetry().WriteChromeTrace); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace written to %s (open at https://ui.perfetto.dev)\n", *traceOut)
	}
	if *metricsOut != "" {
		if err := writeExport(*metricsOut, host.Telemetry().WritePrometheus); err != nil {
			return err
		}
		fmt.Fprintf(out, "metrics written to %s\n", *metricsOut)
	}
	return nil
}

// writeExport streams one exporter into a freshly created file.
func writeExport(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printResult(out io.Writer, res *severifast.Result) {
	r := func(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }
	fmt.Fprintf(out, "total boot time        %v\n", r(res.Total))
	fmt.Fprintf(out, "  vmm (monitor)        %v\n", r(res.VMM))
	if res.PreEncryption > 0 {
		fmt.Fprintf(out, "    pre-encryption     %v\n", r(res.PreEncryption))
	}
	if res.Firmware > 0 {
		fmt.Fprintf(out, "  firmware (OVMF)      %v\n", r(res.Firmware))
	}
	if res.BootVerification > 0 {
		fmt.Fprintf(out, "  boot verification    %v\n", r(res.BootVerification))
	}
	if res.BootstrapLoader > 0 {
		fmt.Fprintf(out, "  bootstrap loader     %v\n", r(res.BootstrapLoader))
	}
	fmt.Fprintf(out, "  linux boot           %v\n", r(res.LinuxBoot))
	if res.Attestation > 0 {
		fmt.Fprintf(out, "attestation            %v\n", r(res.Attestation))
		fmt.Fprintf(out, "end-to-end             %v\n", r(res.TotalWithAttest))
	}
	fmt.Fprintf(out, "guest: %d cpu(s), entry %#x, initrd ok=%v, sev metadata %dB\n",
		res.CPUs, res.KernelEntry, res.InitrdOK, res.SEVMetadataBytes)
}
