package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSEVeriFast(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kernel", "lupine", "-initrd", "2", "-digest"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"total boot time", "pre-encryption", "boot verification", "bootstrap loader", "launch digest:", "expected digest:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	// The printed launch digest and expected digest must agree.
	var printed, expected string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "launch digest:") {
			printed = strings.TrimSpace(strings.TrimPrefix(line, "launch digest:"))
		}
		if strings.HasPrefix(line, "expected digest:") {
			expected = strings.TrimSpace(strings.TrimPrefix(line, "expected digest:"))
		}
	}
	if printed == "" || printed != expected {
		t.Fatalf("digest mismatch: %q vs %q", printed, expected)
	}
}

func TestRunStock(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kernel", "lupine", "-scheme", "stock", "-initrd", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "pre-encryption") {
		t.Fatal("stock boot printed SEV phases")
	}
}

func TestRunTimeline(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kernel", "lupine", "-initrd", "2", "-timeline"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "boot timeline") {
		t.Fatal("timeline missing")
	}
}

func TestRunConcurrency(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kernel", "lupine", "-initrd", "2", "-concurrency", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "--- guest 2 ---") || !strings.Contains(s, "mean boot time of 3") {
		t.Fatalf("concurrency output:\n%s", s)
	}
}

func TestRunAttest(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kernel", "aws", "-initrd", "2", "-attest"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "attestation") {
		t.Fatal("attestation line missing")
	}
}

func TestRunBadScheme(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scheme", "grub"}, &out); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
