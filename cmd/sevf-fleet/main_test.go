package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestRunDefaultsSmall(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-arrivals", "12", "-workers", "4", "-mean", "1ms", "-exec", "1ms"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"sevf-fleet: lupine, 4 workers, 12 arrivals",
		"virtual makespan",
		"12 submitted, 12 served",
		"cache: 11 hits, 1 misses",
		"1 plans",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWarmAndFaults(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-arrivals", "8", "-workers", "2", "-warm",
		"-fault-rate", "0.3", "-retries", "6", "-mean", "2ms",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"warm pool", "faults psp@0.30", "faults:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBackpressureReport(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-arrivals", "24", "-workers", "1", "-queue", "2", "-mean", "10us"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "rejected") {
		t.Fatalf("report missing rejection counts:\n%s", sb.String())
	}
}

func TestRunDeterministic(t *testing.T) {
	invoke := func() string {
		var sb strings.Builder
		if err := run([]string{"-arrivals", "10", "-workers", "2", "-seed", "7"}, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if a, b := invoke(), invoke(); a != b {
		t.Fatalf("same seed produced different reports:\n%s\n---\n%s", a, b)
	}
}

func TestRunKBSInProcess(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-arrivals", "8", "-workers", "2", "-tenants", "2",
		"-kbs", "-chip", "chip-7", "-tcb", "2.1.8.115",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"kbs in-process", "attest: 8 granted"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunKBSDenialCounters(t *testing.T) {
	for _, site := range []string{"forged", "stale-tcb", "revoked", "replay"} {
		t.Run(site, func(t *testing.T) {
			var sb strings.Builder
			err := run([]string{
				"-arrivals", "3", "-workers", "1", "-kbs",
				"-fault-site", site, "-fault-rate", "1", "-retries", "1",
			}, &sb)
			if err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			// 3 requests x (1 attempt + 1 retry), all denied for the
			// injected site's reason.
			for _, want := range []string{"denials: " + site + "=6", "3 failed"} {
				if !strings.Contains(out, want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

func TestRunKBSDeterministic(t *testing.T) {
	invoke := func() string {
		var sb strings.Builder
		if err := run([]string{
			"-arrivals", "10", "-workers", "2", "-seed", "7", "-kbs",
			"-fault-site", "forged", "-fault-rate", "0.3", "-retries", "5",
		}, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if a, b := invoke(), invoke(); a != b {
		t.Fatalf("same seed produced different reports:\n%s\n---\n%s", a, b)
	}
}

// TestRunTraceExport is the CLI acceptance check for the telemetry spine:
// -trace-out must emit valid Chrome trace JSON whose per-tier fleet.boot
// span counts equal the Boots totals the report prints, and same-seed runs
// must export byte-identical files.
func TestRunTraceExport(t *testing.T) {
	invoke := func(dir string) (report string, trace, metrics []byte) {
		var sb strings.Builder
		tracePath := filepath.Join(dir, "trace.json")
		metricsPath := filepath.Join(dir, "metrics.prom")
		err := run([]string{
			"-arrivals", "12", "-workers", "4", "-warm", "-kbs", "-seed", "3",
			"-trace-out", tracePath, "-metrics-out", metricsPath,
		}, &sb)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := os.ReadFile(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := os.ReadFile(metricsPath)
		if err != nil {
			t.Fatal(err)
		}
		return sb.String(), tb, mb
	}
	report, trace, metrics := invoke(t.TempDir())

	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &doc); err != nil {
		t.Fatalf("-trace-out is not valid JSON: %v", err)
	}
	spansByTier := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "fleet.boot" {
			spansByTier[ev.Args["tier"]]++
		}
	}
	// The report prints one "<tier> N boots" line per tier.
	tierLine := regexp.MustCompile(`(?m)^  (\S+)\s+(\d+) boots`)
	var tiers int
	for _, m := range tierLine.FindAllStringSubmatch(report, -1) {
		tiers++
		want := m[2]
		if got := spansByTier[m[1]]; strings.TrimLeft(want, "0") == "" && got != 0 {
			t.Errorf("tier %s: %d fleet.boot spans, report says 0", m[1], got)
		} else if strings.TrimLeft(want, "0") != "" && got != atoi(t, want) {
			t.Errorf("tier %s: %d fleet.boot spans, report says %s", m[1], got, want)
		}
	}
	if tiers == 0 {
		t.Fatalf("report has no tier lines:\n%s", report)
	}
	if !strings.Contains(string(metrics), "severifast_fleet_boots_total") {
		t.Fatal("-metrics-out missing fleet boot counters")
	}

	report2, trace2, metrics2 := invoke(t.TempDir())
	// The trailing "written to <path>" lines embed the temp dir; compare
	// the report body and the exported bytes.
	body := func(s string) string { return strings.Split(s, "\ntrace written")[0] }
	if body(report) != body(report2) || string(trace) != string(trace2) || string(metrics) != string(metrics2) {
		t.Fatal("same-seed runs produced different exports")
	}
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-preset", "plan9"},
		{"-fault-site", "dimm"},
		{"-arrivals", "0"},
		{"-tenants", "0"},
		{"-workers", "0"},
		{"-fault-site", "forged"}, // attest site without -kbs
		{"-kbs", "-tcb", "not-a-tcb"},
		{"-kbs", "-min-tcb", "9"},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
