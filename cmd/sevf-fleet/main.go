// sevf-fleet drives a synthetic open-loop arrival workload through the
// fleet orchestrator and prints a fleet report: boots per tier, cache
// effect, queue behaviour, and virtual-time latency distributions.
//
//	sevf-fleet                                   # defaults: 64 boots, 8 workers
//	sevf-fleet -workers 16 -arrivals 256 -warm   # warm pool on
//	sevf-fleet -queue 8 -mean 1ms                # overload with backpressure
//	sevf-fleet -fault-rate 0.2 -retries 3        # transient PSP faults
//	sevf-fleet -kbs                              # attestation-gated boots, in-process broker
//	sevf-fleet -kbs-url http://127.0.0.1:8443    # redeem against sevf-attestd -kbs
//	sevf-fleet -kbs -fault-site forged -fault-rate 0.2   # tampered evidence, denied + retried
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/fleet"
	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sevf-fleet", flag.ContinueOnError)
	var (
		workers   = fs.Int("workers", 8, "boot worker pool size")
		arrivals  = fs.Int("arrivals", 64, "total boot requests")
		mean      = fs.Duration("mean", 5*time.Millisecond, "mean inter-arrival gap (Poisson)")
		exec      = fs.Duration("exec", 10*time.Millisecond, "function execution time per request")
		queue     = fs.Int("queue", 0, "bounded queue depth (0 = unbounded)")
		tenants   = fs.Int("tenants", 4, "number of tenants sharing the fleet")
		preset    = fs.String("preset", "lupine", "kernel preset: lupine, aws, ubuntu")
		initrdLen = fs.Int("initrd", 2<<20, "initrd size in bytes")
		warm      = fs.Bool("warm", false, "enable the warm shared-key snapshot tier")
		faultRate = fs.Float64("fault-rate", 0, "per-attempt transient fault probability")
		faultSite = fs.String("fault-site", "psp", "fault site: psp, verifier, forged, stale-tcb, revoked, replay")
		retries   = fs.Int("retries", 3, "retry budget per request on injected faults")
		backoff   = fs.Duration("backoff", time.Millisecond, "base retry backoff (exponential)")
		seed      = fs.Int64("seed", 1, "simulation seed")
		width     = fs.Int("width", 60, "CDF chart width (0 disables charts)")

		useKBS    = fs.Bool("kbs", false, "gate every boot behind an in-process key broker")
		kbsURL    = fs.String("kbs-url", "", "remote key-broker base URL (sevf-attestd -kbs); implies gating")
		authSeed  = fs.Int64("auth-seed", 1, "key-authority seed; must match the broker's")
		chipID    = fs.String("chip", "chip-0", "platform chip ID enrolled under the authority")
		tcbStr    = fs.String("tcb", "2.1.8.115", "platform TCB (bootloader.tee.snp.microcode)")
		minTCB    = fs.String("min-tcb", "", "in-process broker's minimum TCB (defaults to the platform TCB)")
		kbsSecret = fs.String("kbs-secret", "guest-volume-key", "per-tenant secret in the in-process broker")
		nonceTTL  = fs.Duration("nonce-ttl", time.Minute, "in-process broker challenge lifetime in virtual time")

		traceOut   = fs.String("trace-out", "", "write a Chrome trace-event JSON file of the run (open in Perfetto)")
		metricsOut = fs.String("metrics-out", "", "write fleet metrics in Prometheus text format")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var p kernelgen.Preset
	switch strings.ToLower(*preset) {
	case "lupine":
		p = kernelgen.Lupine()
	case "aws":
		p = kernelgen.AWS()
	case "ubuntu":
		p = kernelgen.Ubuntu()
	default:
		return fmt.Errorf("unknown preset %q (want lupine, aws, or ubuntu)", *preset)
	}
	var site fleet.FaultSite
	switch strings.ToLower(*faultSite) {
	case "psp":
		site = fleet.FaultPSP
	case "verifier":
		site = fleet.FaultVerifier
	case "forged":
		site = fleet.FaultForged
	case "stale-tcb":
		site = fleet.FaultStaleTCB
	case "revoked":
		site = fleet.FaultRevoked
	case "replay":
		site = fleet.FaultReplay
	default:
		return fmt.Errorf("unknown fault site %q (want psp, verifier, forged, stale-tcb, revoked, or replay)", *faultSite)
	}
	gated := *useKBS || *kbsURL != ""
	if site >= fleet.FaultForged && !gated {
		return fmt.Errorf("fault site %q needs attestation gating (-kbs or -kbs-url)", site)
	}
	if *arrivals <= 0 {
		return fmt.Errorf("arrivals must be positive")
	}
	if *workers <= 0 {
		return fmt.Errorf("workers must be positive")
	}
	if *tenants <= 0 {
		return fmt.Errorf("tenants must be positive")
	}

	cfg := fleet.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		EnableWarm: *warm,
		Retry:      fleet.RetryPolicy{Max: *retries, Backoff: *backoff},
	}
	if *faultRate > 0 {
		cfg.Faults = &fleet.FaultPlan{Rate: *faultRate, Seed: *seed, Site: site}
	}

	names := make([]string, *tenants)
	for i := range names {
		names[i] = fmt.Sprintf("tenant-%d", i)
	}

	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), *seed)

	// One registry spans the whole run: boot span trees, fleet counters,
	// PSP service slots, broker verdicts. It is stamped from virtual time
	// only, so same-seed runs export byte-identical files.
	var reg *telemetry.Registry
	if *traceOut != "" || *metricsOut != "" {
		reg = telemetry.NewRegistry()
		eng.SetTracer(reg)
		host.Telemetry = reg
		cfg.Telemetry = reg
	}
	if gated {
		platTCB, err := kbs.ParseTCB(*tcbStr)
		if err != nil {
			return fmt.Errorf("-tcb: %w", err)
		}
		auth := kbs.NewAuthority(*authSeed)
		cfg.Enrollment = auth.Enroll(host.PSP, *chipID, platTCB)
		cfg.AgentSeed = *seed
		if *kbsURL != "" {
			cfg.KBS = &kbs.Client{Base: *kbsURL}
		} else {
			floor := platTCB
			if *minTCB != "" {
				if floor, err = kbs.ParseTCB(*minTCB); err != nil {
					return fmt.Errorf("-min-tcb: %w", err)
				}
			}
			broker := kbs.NewBroker(auth.Root(), kbs.Config{
				MinTCB:   floor,
				NonceTTL: *nonceTTL,
				Seed:     *seed,
			})
			for _, name := range names {
				broker.AddTenant(name, []byte(*kbsSecret))
			}
			broker.Instrument(reg)
			cfg.KBS = broker
		}
	}
	o := fleet.New(eng, host, cfg)
	img, err := o.RegisterImage(p.Name, p, kernelgen.BuildInitrd(*seed, *initrdLen))
	if err != nil {
		return err
	}
	w := fleet.Workload{
		Arrivals:         *arrivals,
		MeanInterarrival: *mean,
		ExecTime:         *exec,
		Tenants:          names,
		Images:           []*fleet.Image{img},
		Seed:             *seed,
	}
	if err := w.Run(eng, o); err != nil {
		return err
	}
	eng.Run()
	if err := o.Err(); err != nil {
		return err
	}

	fmt.Fprintf(out, "sevf-fleet: %s, %d workers, %d arrivals (mean gap %v), %d tenants",
		p.Name, cfg.Workers, *arrivals, *mean, *tenants)
	if *warm {
		fmt.Fprint(out, ", warm pool")
	}
	if *kbsURL != "" {
		fmt.Fprintf(out, ", kbs %s", *kbsURL)
	} else if *useKBS {
		fmt.Fprint(out, ", kbs in-process")
	}
	if cfg.Faults != nil {
		fmt.Fprintf(out, ", faults %s@%.2f", site, *faultRate)
	}
	fmt.Fprintf(out, "\nvirtual makespan %v\n\n", eng.Now())
	fmt.Fprint(out, o.Metrics().Report(o.CacheStats(), *width))
	if *traceOut != "" {
		if err := writeExport(*traceOut, reg.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Fprintf(out, "\ntrace written to %s (open at https://ui.perfetto.dev)\n", *traceOut)
	}
	if *metricsOut != "" {
		if err := writeExport(*metricsOut, reg.WritePrometheus); err != nil {
			return err
		}
		fmt.Fprintf(out, "metrics written to %s\n", *metricsOut)
	}
	return nil
}

// writeExport streams one exporter into a freshly created file.
func writeExport(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
