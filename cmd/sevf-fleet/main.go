// sevf-fleet drives a synthetic open-loop arrival workload through the
// fleet orchestrator and prints a fleet report: boots per tier, cache
// effect, queue behaviour, and virtual-time latency distributions.
//
//	sevf-fleet                                   # defaults: 64 boots, 8 workers
//	sevf-fleet -workers 16 -arrivals 256 -warm   # warm pool on
//	sevf-fleet -queue 8 -mean 1ms                # overload with backpressure
//	sevf-fleet -fault-rate 0.2 -retries 3        # transient PSP faults
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/fleet"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sevf-fleet", flag.ContinueOnError)
	var (
		workers   = fs.Int("workers", 8, "boot worker pool size")
		arrivals  = fs.Int("arrivals", 64, "total boot requests")
		mean      = fs.Duration("mean", 5*time.Millisecond, "mean inter-arrival gap (Poisson)")
		exec      = fs.Duration("exec", 10*time.Millisecond, "function execution time per request")
		queue     = fs.Int("queue", 0, "bounded queue depth (0 = unbounded)")
		tenants   = fs.Int("tenants", 4, "number of tenants sharing the fleet")
		preset    = fs.String("preset", "lupine", "kernel preset: lupine, aws, ubuntu")
		initrdLen = fs.Int("initrd", 2<<20, "initrd size in bytes")
		warm      = fs.Bool("warm", false, "enable the warm shared-key snapshot tier")
		faultRate = fs.Float64("fault-rate", 0, "per-attempt transient fault probability")
		faultSite = fs.String("fault-site", "psp", "fault site: psp, verifier")
		retries   = fs.Int("retries", 3, "retry budget per request on injected faults")
		backoff   = fs.Duration("backoff", time.Millisecond, "base retry backoff (exponential)")
		seed      = fs.Int64("seed", 1, "simulation seed")
		width     = fs.Int("width", 60, "CDF chart width (0 disables charts)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var p kernelgen.Preset
	switch strings.ToLower(*preset) {
	case "lupine":
		p = kernelgen.Lupine()
	case "aws":
		p = kernelgen.AWS()
	case "ubuntu":
		p = kernelgen.Ubuntu()
	default:
		return fmt.Errorf("unknown preset %q (want lupine, aws, or ubuntu)", *preset)
	}
	var site fleet.FaultSite
	switch strings.ToLower(*faultSite) {
	case "psp":
		site = fleet.FaultPSP
	case "verifier":
		site = fleet.FaultVerifier
	default:
		return fmt.Errorf("unknown fault site %q (want psp or verifier)", *faultSite)
	}
	if *arrivals <= 0 {
		return fmt.Errorf("arrivals must be positive")
	}
	if *workers <= 0 {
		return fmt.Errorf("workers must be positive")
	}
	if *tenants <= 0 {
		return fmt.Errorf("tenants must be positive")
	}

	cfg := fleet.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		EnableWarm: *warm,
		Retry:      fleet.RetryPolicy{Max: *retries, Backoff: *backoff},
	}
	if *faultRate > 0 {
		cfg.Faults = &fleet.FaultPlan{Rate: *faultRate, Seed: *seed, Site: site}
	}

	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), *seed)
	o := fleet.New(eng, host, cfg)
	img, err := o.RegisterImage(p.Name, p, kernelgen.BuildInitrd(*seed, *initrdLen))
	if err != nil {
		return err
	}
	names := make([]string, *tenants)
	for i := range names {
		names[i] = fmt.Sprintf("tenant-%d", i)
	}
	w := fleet.Workload{
		Arrivals:         *arrivals,
		MeanInterarrival: *mean,
		ExecTime:         *exec,
		Tenants:          names,
		Images:           []*fleet.Image{img},
		Seed:             *seed,
	}
	if err := w.Run(eng, o); err != nil {
		return err
	}
	eng.Run()
	if err := o.Err(); err != nil {
		return err
	}

	fmt.Fprintf(out, "sevf-fleet: %s, %d workers, %d arrivals (mean gap %v), %d tenants",
		p.Name, cfg.Workers, *arrivals, *mean, *tenants)
	if *warm {
		fmt.Fprint(out, ", warm pool")
	}
	if cfg.Faults != nil {
		fmt.Fprintf(out, ", faults %s@%.2f", site, *faultRate)
	}
	fmt.Fprintf(out, "\nvirtual makespan %v\n\n", eng.Now())
	fmt.Fprint(out, o.Metrics().Report(o.CacheStats(), *width))
	return nil
}
