// sevf-attestd runs the guest-owner attestation service over HTTP — the
// reproduction's stand-in for the paper's nginx server (§6.1). It trusts
// the PSP of the simulated host identified by -host-seed and releases
// -secret to guests whose launch digest matches an allowed configuration.
//
// With -kbs it also serves the key-broker protocol (internal/kbs): a
// nonce-challenge front end with VCEK chain verification, revocation,
// minimum-TCB policy, and per-tenant secrets. A fleet started with the
// same -auth-seed (sevf-fleet -kbs-url) redeems its boots here.
//
//	sevf-attestd -listen :8443 -allow aws/severifast -secret "disk key"
//	sevf-attestd -kbs -auth-seed 7 -kbs-tenants "tenant-0=disk key" -min-tcb 2.1.8.115
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	severifast "github.com/severifast/severifast"
	"github.com/severifast/severifast/internal/kbs"
)

func main() {
	handler, listen, err := setup(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("guest-owner attestation service on %s (POST /attest)\n", listen)
	if err := http.ListenAndServe(listen, handler); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// setup parses flags and assembles the service handler; main only binds
// the socket, so tests can drive the full service via httptest. The
// legacy guest-owner endpoint (POST /attest) is always served; the broker
// endpoints (/challenge, /redeem, /provision, /revoke, /stats) appear
// with -kbs.
func setup(args []string, out io.Writer) (http.Handler, string, error) {
	fs := flag.NewFlagSet("sevf-attestd", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", ":8443", "listen address")
		hostSeed = fs.Int64("host-seed", 1, "seed of the simulated host whose PSP we trust")
		secret   = fs.String("secret", "guest-volume-key", "secret released after successful attestation")
		allow    = fs.String("allow", "aws/severifast", "comma-separated kernel/scheme configurations to allow")
		initrd   = fs.Int("initrd", 16, "initrd size (MiB) of the allowed configurations")

		kbsMode  = fs.Bool("kbs", false, "serve the key-broker endpoints (/challenge, /redeem, ...)")
		authSeed = fs.Int64("auth-seed", 1, "key-authority seed; fleets enrolled under the same seed verify")
		tenants  = fs.String("kbs-tenants", "tenant-0=guest-volume-key", "comma-separated name=secret tenant registrations")
		minTCB   = fs.String("min-tcb", "0.0.0.0", "minimum platform TCB (bootloader.tee.snp.microcode)")
		nonceTTL = fs.Duration("nonce-ttl", time.Minute, "challenge lifetime in virtual time")
		kbsSeed  = fs.Int64("kbs-seed", 1, "broker nonce and secret-wrapping seed")
	)
	if err := fs.Parse(args); err != nil {
		return nil, "", err
	}

	host := severifast.NewHostSeed(*hostSeed)
	owner := severifast.NewGuestOwner(host, []byte(*secret))
	for _, entry := range strings.Split(*allow, ",") {
		parts := strings.SplitN(strings.TrimSpace(entry), "/", 2)
		if len(parts) != 2 {
			return nil, "", fmt.Errorf("bad -allow entry %q (want kernel/scheme)", entry)
		}
		cfg := severifast.Config{
			Kernel:    severifast.Kernel(parts[0]),
			Scheme:    severifast.Scheme(parts[1]),
			InitrdMiB: *initrd,
		}
		if err := owner.AllowConfig(cfg); err != nil {
			return nil, "", fmt.Errorf("allow %q: %w", entry, err)
		}
		fmt.Fprintf(out, "allowing %s\n", entry)
	}
	if !*kbsMode {
		return owner.Handler(), *listen, nil
	}

	floor, err := kbs.ParseTCB(*minTCB)
	if err != nil {
		return nil, "", fmt.Errorf("-min-tcb: %w", err)
	}
	auth := kbs.NewAuthority(*authSeed)
	broker := kbs.NewBroker(auth.Root(), kbs.Config{
		MinTCB:   floor,
		NonceTTL: *nonceTTL,
		Seed:     *kbsSeed,
	})
	n := 0
	for _, entry := range strings.Split(*tenants, ",") {
		name, tsecret, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok || name == "" {
			return nil, "", fmt.Errorf("bad -kbs-tenants entry %q (want name=secret)", entry)
		}
		broker.AddTenant(name, []byte(tsecret))
		n++
	}
	fmt.Fprintf(out, "key broker: authority seed %d, %d tenants, min TCB %v\n", *authSeed, n, floor)

	mux := http.NewServeMux()
	mux.Handle("/attest", owner.Handler())
	mux.Handle("/", broker.Handler())
	return mux, *listen, nil
}
