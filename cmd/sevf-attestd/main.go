// sevf-attestd runs the guest-owner attestation service over HTTP — the
// reproduction's stand-in for the paper's nginx server (§6.1). It trusts
// the PSP of the simulated host identified by -host-seed and releases
// -secret to guests whose launch digest matches an allowed configuration.
//
//	sevf-attestd -listen :8443 -allow aws/severifast -secret "disk key"
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	severifast "github.com/severifast/severifast"
)

func main() {
	handler, listen, err := setup(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("guest-owner attestation service on %s (POST /attest)\n", listen)
	if err := http.ListenAndServe(listen, handler); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// setup parses flags and assembles the owner's handler; main only binds
// the socket, so tests can drive the full service via httptest.
func setup(args []string, out io.Writer) (http.Handler, string, error) {
	fs := flag.NewFlagSet("sevf-attestd", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", ":8443", "listen address")
		hostSeed = fs.Int64("host-seed", 1, "seed of the simulated host whose PSP we trust")
		secret   = fs.String("secret", "guest-volume-key", "secret released after successful attestation")
		allow    = fs.String("allow", "aws/severifast", "comma-separated kernel/scheme configurations to allow")
		initrd   = fs.Int("initrd", 16, "initrd size (MiB) of the allowed configurations")
	)
	if err := fs.Parse(args); err != nil {
		return nil, "", err
	}

	host := severifast.NewHostSeed(*hostSeed)
	owner := severifast.NewGuestOwner(host, []byte(*secret))
	for _, entry := range strings.Split(*allow, ",") {
		parts := strings.SplitN(strings.TrimSpace(entry), "/", 2)
		if len(parts) != 2 {
			return nil, "", fmt.Errorf("bad -allow entry %q (want kernel/scheme)", entry)
		}
		cfg := severifast.Config{
			Kernel:    severifast.Kernel(parts[0]),
			Scheme:    severifast.Scheme(parts[1]),
			InitrdMiB: *initrd,
		}
		if err := owner.AllowConfig(cfg); err != nil {
			return nil, "", fmt.Errorf("allow %q: %w", entry, err)
		}
		fmt.Fprintf(out, "allowing %s\n", entry)
	}
	return owner.Handler(), *listen, nil
}
