package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	severifast "github.com/severifast/severifast"
)

func TestSetupAndAttestEndToEnd(t *testing.T) {
	var out bytes.Buffer
	handler, listen, err := setup([]string{
		"-allow", "lupine/severifast",
		"-secret", "the-disk-key",
		"-host-seed", "5",
		"-initrd", "2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if listen != ":8443" {
		t.Fatalf("listen %q", listen)
	}
	if !strings.Contains(out.String(), "allowing lupine/severifast") {
		t.Fatalf("setup output: %q", out.String())
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	// A guest booted on the same (seed-5) host attests successfully.
	host := severifast.NewHostSeed(5)
	res, err := host.Boot(severifast.Config{Kernel: severifast.KernelLupine, InitrdMiB: 2})
	if err != nil {
		t.Fatal(err)
	}
	secret, err := res.AttestOverHTTP(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if string(secret) != "the-disk-key" {
		t.Fatalf("secret %q", secret)
	}

	// A guest from a *different* host (different PSP identity) is refused:
	// its report is signed by a key the daemon does not trust.
	other := severifast.NewHostSeed(6)
	res2, err := other.Boot(severifast.Config{Kernel: severifast.KernelLupine, InitrdMiB: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res2.AttestOverHTTP(srv.URL); err == nil {
		t.Fatal("foreign-platform guest attested")
	}
}

func TestSetupRejectsBadAllowEntry(t *testing.T) {
	var out bytes.Buffer
	if _, _, err := setup([]string{"-allow", "nonsense"}, &out); err == nil {
		t.Fatal("malformed allow entry accepted")
	}
	if _, _, err := setup([]string{"-allow", "gentoo/severifast"}, &out); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}
