package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	severifast "github.com/severifast/severifast"
	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/fleet"
	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sim"
)

func TestSetupAndAttestEndToEnd(t *testing.T) {
	var out bytes.Buffer
	handler, listen, err := setup([]string{
		"-allow", "lupine/severifast",
		"-secret", "the-disk-key",
		"-host-seed", "5",
		"-initrd", "2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if listen != ":8443" {
		t.Fatalf("listen %q", listen)
	}
	if !strings.Contains(out.String(), "allowing lupine/severifast") {
		t.Fatalf("setup output: %q", out.String())
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	// A guest booted on the same (seed-5) host attests successfully.
	host := severifast.NewHostSeed(5)
	res, err := host.Boot(severifast.Config{Kernel: severifast.KernelLupine, InitrdMiB: 2})
	if err != nil {
		t.Fatal(err)
	}
	secret, err := res.AttestOverHTTP(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if string(secret) != "the-disk-key" {
		t.Fatalf("secret %q", secret)
	}

	// A guest from a *different* host (different PSP identity) is refused:
	// its report is signed by a key the daemon does not trust.
	other := severifast.NewHostSeed(6)
	res2, err := other.Boot(severifast.Config{Kernel: severifast.KernelLupine, InitrdMiB: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res2.AttestOverHTTP(srv.URL); err == nil {
		t.Fatal("foreign-platform guest attested")
	}
}

// TestKBSModeServesFleet is the README's two-process story under test: a
// daemon in -kbs mode on one side, a fleet enrolled under the same
// authority seed redeeming its boots through kbs.Client on the other.
func TestKBSModeServesFleet(t *testing.T) {
	var out bytes.Buffer
	handler, _, err := setup([]string{
		"-kbs",
		"-auth-seed", "9",
		"-kbs-tenants", "acme=acme disk key,globex=globex disk key",
		"-min-tcb", "2.1.8.100",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "key broker: authority seed 9, 2 tenants, min TCB 2.1.8.100") {
		t.Fatalf("setup output: %q", out.String())
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	auth := kbs.NewAuthority(9) // same seed as the daemon: chains verify
	enr := auth.Enroll(host.PSP, "chip-X", kbs.TCB{BootLoader: 2, TEE: 1, SNP: 8, Microcode: 115})
	o := fleet.New(eng, host, fleet.Config{
		Workers:    2,
		KBS:        &kbs.Client{Base: srv.URL},
		Enrollment: enr,
		AgentSeed:  4,
	})
	img, err := o.RegisterImage("fn", kernelgen.Lupine(), kernelgen.BuildInitrd(7, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if err := (fleet.Workload{
		Arrivals:         4,
		MeanInterarrival: time.Millisecond,
		Tenants:          []string{"acme", "globex"},
		Images:           []*fleet.Image{img},
		Seed:             3,
	}).Run(eng, o); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if err := o.Err(); err != nil {
		t.Fatal(err)
	}
	if got := o.Metrics().Attested; got != 4 {
		t.Fatalf("attested %d boots over HTTP, want 4", got)
	}

	// The remote broker saw the exchanges and the cache-provisioned digest.
	stats, err := (&kbs.Client{Base: srv.URL}).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Grants != 4 || stats.RefValues == 0 {
		t.Fatalf("remote broker stats: %+v, want 4 grants and a provisioned digest", stats)
	}

	// An unknown tenant is refused with the reason intact across the wire.
	_, err = (&kbs.Client{Base: srv.URL}).Challenge("mallory", 0)
	if !kbsDenied(err, kbs.ReasonTenant) {
		t.Fatalf("unknown tenant error %v, want tenant denial", err)
	}
}

func kbsDenied(err error, want kbs.Reason) bool {
	return err != nil && kbs.ReasonOf(err) == want
}

// TestKBSModeKeepsLegacyAttest: with -kbs the legacy guest-owner endpoint
// still serves /attest alongside the broker routes.
func TestKBSModeKeepsLegacyAttest(t *testing.T) {
	var out bytes.Buffer
	handler, _, err := setup([]string{
		"-kbs",
		"-allow", "lupine/severifast",
		"-secret", "the-disk-key",
		"-host-seed", "5",
		"-initrd", "2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	host := severifast.NewHostSeed(5)
	res, err := host.Boot(severifast.Config{Kernel: severifast.KernelLupine, InitrdMiB: 2})
	if err != nil {
		t.Fatal(err)
	}
	secret, err := res.AttestOverHTTP(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if string(secret) != "the-disk-key" {
		t.Fatalf("secret %q", secret)
	}
}

func TestKBSModeRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-kbs", "-kbs-tenants", "nonsense"},
		{"-kbs", "-kbs-tenants", "=secret"},
		{"-kbs", "-min-tcb", "1.2.3"},
	} {
		var out bytes.Buffer
		if _, _, err := setup(args, &out); err == nil {
			t.Errorf("setup(%v) succeeded, want error", args)
		}
	}
}

func TestSetupRejectsBadAllowEntry(t *testing.T) {
	var out bytes.Buffer
	if _, _, err := setup([]string{"-allow", "nonsense"}, &out); err == nil {
		t.Fatal("malformed allow entry accepted")
	}
	if _, _, err := setup([]string{"-allow", "gentoo/severifast"}, &out); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}
