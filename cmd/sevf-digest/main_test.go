package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/severifast/severifast/internal/measure"
)

func TestRunPrintsDigest(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kernel", "lupine", "-initrd", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "expected launch digest") {
		t.Fatalf("output: %q", s)
	}
	// The hex digest is 64 chars on its own line.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines[len(lines)-1]) != 64 {
		t.Fatalf("digest line: %q", lines[len(lines)-1])
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-kernel", "lupine", "-initrd", "2"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kernel", "lupine", "-initrd", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("digest tool not deterministic")
	}
}

func TestRunDigestChangesWithConfig(t *testing.T) {
	digest := func(args ...string) string {
		var out bytes.Buffer
		if err := run(append(args, "-initrd", "2"), &out); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(out.String()), "\n")
		return lines[len(lines)-1]
	}
	base := digest("-kernel", "lupine")
	if digest("-kernel", "lupine", "-verifier-seed", "9") == base {
		t.Fatal("verifier seed not reflected")
	}
	if digest("-kernel", "lupine", "-allow-key-sharing") == base {
		t.Fatal("key-sharing policy not reflected")
	}
	if digest("-kernel", "lupine", "-vcpus", "2") == base {
		t.Fatal("vcpu count not reflected")
	}
}

func TestRunWritesHashFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hashes.txt")
	var out bytes.Buffer
	if err := run([]string{"-kernel", "lupine", "-initrd", "2", "-hashfile", path}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h, err := measure.ParseHashFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if h.Kernel == ([32]byte{}) || h.Initrd == ([32]byte{}) {
		t.Fatal("hash file has zero digests")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kernel", "gentoo"}, &out); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if err := run([]string{"-bogus-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
