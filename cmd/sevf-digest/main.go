// sevf-digest is the paper's §4.2 tool: it computes the expected launch
// digest for a VM configuration (and, with -hashfile, the §4.3 out-of-band
// component hash file). A guest owner runs this on their own machine and
// compares the digest against the one in the attestation report.
//
//	sevf-digest -kernel aws -scheme severifast
//	sevf-digest -kernel aws -hashfile hashes.txt
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"

	severifast "github.com/severifast/severifast"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/measure"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sevf-digest", flag.ContinueOnError)
	var (
		kernel   = fs.String("kernel", "aws", "guest kernel: lupine | aws | ubuntu")
		scheme   = fs.String("scheme", "severifast", "boot flow: severifast | severifast-vmlinux | qemu-ovmf")
		level    = fs.String("level", "sev-snp", "SEV level: sev | sev-es | sev-snp")
		codec    = fs.String("codec", "lz4", "bzImage compression: lz4 | gzip")
		vcpus    = fs.Int("vcpus", 1, "guest vCPUs")
		memMiB   = fs.Int("mem", 256, "guest memory (MiB)")
		initrd   = fs.Int("initrd", 16, "initrd size (MiB)")
		verSeed  = fs.Int64("verifier-seed", 1, "boot verifier build identity")
		share    = fs.Bool("allow-key-sharing", false, "compute for a key-sharing launch policy")
		hashFile = fs.String("hashfile", "", "also write the out-of-band component hash file here")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := severifast.Config{
		Kernel:          severifast.Kernel(*kernel),
		Level:           severifast.Level(*level),
		Scheme:          severifast.Scheme(*scheme),
		VCPUs:           *vcpus,
		MemMiB:          *memMiB,
		InitrdMiB:       *initrd,
		Codec:           severifast.Codec(*codec),
		VerifierSeed:    *verSeed,
		AllowKeySharing: *share,
	}
	digest, err := severifast.ExpectedLaunchDigest(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "expected launch digest (%s, %s, %s):\n%s\n",
		*kernel, *scheme, *level, hex.EncodeToString(digest[:]))

	if *hashFile != "" {
		preset, err := kernelgen.PresetByName(*kernel)
		if err != nil {
			return err
		}
		art, err := kernelgen.Cached(preset)
		if err != nil {
			return err
		}
		image := art.BzImageLZ4
		switch {
		case *scheme == "severifast-vmlinux":
			image = art.VMLinux
		case *codec == "gzip":
			image = art.BzImageGzip
		}
		rd := kernelgen.BuildInitrd(1, *initrd<<20)
		h := measure.HashComponents(image, rd, preset.Cmdline)
		f, err := os.Create(*hashFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := measure.WriteHashFile(f, h); err != nil {
			return err
		}
		fmt.Fprintf(out, "component hash file written to %s\n", *hashFile)
	}
	return nil
}
