// sevf-chaos runs deterministic adversary campaigns against the boot
// path: guest-memory scribbles, artifact and cache poisoning, PSP launch
// tampering, snapshot corruption, key-broker evidence faults,
// policy-store subversion (forged, rescoped, and revoked trust claims),
// and TCB storms (mid-run revocations and floor bumps with forged
// recovery claims), each classified by the invariant oracle as caught,
// harmless, or ESCAPE.
//
//	sevf-chaos                                   # all families, seed 1
//	sevf-chaos -seed 42 -boots 4 -trials 2       # bigger fixed-seed campaign
//	sevf-chaos -campaign kbs,snapshot            # family subset
//	sevf-chaos -report-out report.json           # machine-readable report
//	sevf-chaos -weaken                           # oracle self-test: MUST escape
//
// Exit status is non-zero on any ESCAPE (or, with -strict, on any
// unexpected detection class). With -weaken the polarity flips: the
// deliberately broken verifier must produce an ESCAPE, and the command
// fails if the oracle cannot see it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/severifast/severifast/internal/chaos"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sevf-chaos", flag.ContinueOnError)
	var (
		seed      = fs.Int64("seed", 1, "campaign seed: same seed, same report bytes")
		campaign  = fs.String("campaign", "all", "comma-separated families ("+strings.Join(chaos.AllFamilies, ",")+") or \"all\"")
		boots     = fs.Int("boots", 4, "boots per fleet trial")
		trials    = fs.Int("trials", 2, "randomized mutations per family")
		reportOut = fs.String("report-out", "", "write the JSON report to this path")
		weaken    = fs.Bool("weaken", false, "oracle self-test: run with a broken verifier and demand an ESCAPE")
		strict    = fs.Bool("strict", false, "also fail on detections outside the expected error class")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := chaos.Config{
		Seed:     *seed,
		Boots:    *boots,
		Trials:   *trials,
		Weakened: *weaken,
	}
	if *campaign != "" && *campaign != "all" {
		for _, f := range strings.Split(*campaign, ",") {
			f = strings.TrimSpace(f)
			if !validFamily(f) {
				return fmt.Errorf("unknown family %q (have: %s)", f, strings.Join(chaos.AllFamilies, ", "))
			}
			cfg.Families = append(cfg.Families, f)
		}
	}

	rep, err := chaos.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "chaos campaign: seed %d, %d boots/trial, %d trials\n", rep.Seed, rep.Boots, len(rep.Trials))
	for _, tr := range rep.Trials {
		fmt.Fprintf(out, "  %-10s %-22s %-10s %s\n", tr.Family, tr.Name, tr.Outcome, tr.Detail)
	}
	var keys []string
	for o := range rep.Outcomes {
		keys = append(keys, string(o))
	}
	sort.Strings(keys)
	fmt.Fprintf(out, "outcomes:")
	for _, k := range keys {
		fmt.Fprintf(out, " %s=%d", k, rep.Outcomes[chaos.Outcome(k)])
	}
	fmt.Fprintln(out)

	if *reportOut != "" {
		b, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*reportOut, append(b, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing report: %w", err)
		}
		fmt.Fprintf(out, "report written to %s\n", *reportOut)
	}

	if *weaken {
		if rep.Escapes == 0 {
			return fmt.Errorf("weakened verifier produced no ESCAPE: the oracle cannot fail, so its passes are meaningless")
		}
		fmt.Fprintf(out, "oracle self-test passed: the weakened verifier escaped %d time(s), and the oracle saw it\n", rep.Escapes)
		return nil
	}
	if rep.Escapes > 0 {
		return fmt.Errorf("%d ESCAPE(s): tampering survived to served boots", rep.Escapes)
	}
	if *strict && rep.Outcomes[chaos.Unexpected] > 0 {
		return fmt.Errorf("%d detection(s) outside the expected error class (strict mode)", rep.Outcomes[chaos.Unexpected])
	}
	return nil
}

func validFamily(f string) bool {
	for _, k := range chaos.AllFamilies {
		if f == k {
			return true
		}
	}
	return false
}
