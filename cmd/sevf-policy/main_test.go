package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceMatchesGolden pins the decision trace byte for byte: the
// same check the CI policy-smoke job runs. Rebuild the golden with
//
//	go run ./cmd/sevf-policy -policy cmd/sevf-policy/testdata/policy.json -trace-out - \
//	  > cmd/sevf-policy/testdata/decision_trace_golden.json
func TestTraceMatchesGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-policy", "testdata/policy.json", "-trace-out", "-"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	want, err := os.ReadFile("testdata/decision_trace_golden.json")
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("decision trace diverged from testdata/decision_trace_golden.json\ngot:\n%s", buf.String())
	}
}

// TestTraceDeterministic runs the evaluation twice from scratch; the
// traces must be byte-identical (signatures are drawn from per-signer
// rngs and never reach the output).
func TestTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-policy", "testdata/policy.json", "-trace-out", "-"}, &a); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := run([]string{"-policy", "testdata/policy.json", "-trace-out", "-"}, &b); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two runs over the same policy file produced different traces")
	}
}

// TestHumanReport sanity-checks the terminal rendering: the revocation
// boundary instant admits, the instant after refuses.
func TestHumanReport(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-policy", "testdata/policy.json"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"lint: clean",
		"boot-at-revocation-instant @   500ms  allow",
		"boot-after-revocation    @   501ms  deny   measurement/claim-expired",
		"measurement via [operator-root build-service]",
		"denials by rule:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestLintMode exercises -lint on a clean file and on a broken one.
func TestLintMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-policy", "testdata/policy.json", "-lint"}, &buf); err != nil {
		t.Fatalf("lint on clean file: %v", err)
	}
	if !strings.Contains(buf.String(), "lint: clean") {
		t.Errorf("clean lint output: %q", buf.String())
	}

	dirty := filepath.Join(t.TempDir(), "dirty.json")
	blob := `{
  "signers": [{"id": "root", "seed": 1}],
  "domains": [{"name": "*", "anchors": ["root"]}],
  "claims": [
    {"id": "c1", "kind": "nonsense", "scope": "*", "subject": "*", "issuer": "root"},
    {"id": "c2", "kind": "measurement", "scope": "*", "subject": "nothex", "issuer": "ghost"}
  ]
}`
	if err := os.WriteFile(dirty, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	err := run([]string{"-policy", dirty, "-lint"}, &buf)
	if err == nil {
		t.Fatal("lint accepted a file with unknown kinds and undeclared issuers")
	}
	for _, want := range []string{"unknown kind", "not a declared signer", "not hex"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("lint findings missing %q:\n%s", want, buf.String())
		}
	}
}
