// sevf-policy lints and evaluates policy files for the trust-domain
// engine that gates fleet and cluster admissions. A policy file declares
// signers, trust domains, signed claims, canned evidence packages, and
// mutations (revocations, rotations) pinned to virtual instants; the
// tool replays the evidence through the engine and emits the decision
// trace — every rule's outcome, the delegation chain behind every
// contributing claim, and per-rule denial counters.
//
//	sevf-policy -policy policy.json               # evaluate, human-readable
//	sevf-policy -policy policy.json -lint         # lint only, fail on findings
//	sevf-policy -policy policy.json -trace-out -  # decision-trace JSON on stdout
//
// The trace is deterministic: same file, same bytes, run after run.
// Signature material never reaches any output, so the trace is safe to
// pin as a golden file (the CI policy-smoke job diffs it).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"github.com/severifast/severifast/internal/policy"
	"github.com/severifast/severifast/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// Decision is one evidence package's evaluation in the trace.
type Decision struct {
	Evidence string `json:"evidence"`
	NowMS    int64  `json:"now_ms"`
	// Certificate carries the decision, the full rule trace, and the
	// delegation chains. It never contains signature bytes.
	Certificate *policy.Certificate `json:"certificate"`
	Denial      *DenialOut          `json:"denial,omitempty"`
}

// DenialOut is the refusal, flattened for the trace.
type DenialOut struct {
	Rule   string `json:"rule"`
	Reason string `json:"reason"`
	Detail string `json:"detail,omitempty"`
}

// Output is the machine-readable decision trace. Same policy file, same
// bytes — the CI smoke job diffs this against a checked-in golden.
type Output struct {
	Tool      string     `json:"tool"`
	Lint      []string   `json:"lint,omitempty"`
	Decisions []Decision `json:"decisions"`
	// Denial counters from the store, keyed "rule/reason".
	Evals         int            `json:"evals"`
	Grants        int            `json:"grants"`
	Denials       int            `json:"denials"`
	DenialsByRule map[string]int `json:"denials_by_rule"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sevf-policy", flag.ContinueOnError)
	var (
		path     = fs.String("policy", "", "policy file to load (required)")
		lintOnly = fs.Bool("lint", false, "lint the file and exit; findings are fatal")
		traceOut = fs.String("trace-out", "", "write the decision-trace JSON here ('-' = stdout, suppresses the text report)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("sevf-policy: -policy is required")
	}

	f, err := policy.LoadFile(*path)
	if err != nil {
		return err
	}
	findings := f.Lint()
	if *lintOnly {
		for _, finding := range findings {
			fmt.Fprintln(out, finding)
		}
		if len(findings) > 0 {
			return fmt.Errorf("sevf-policy: %d lint finding(s)", len(findings))
		}
		fmt.Fprintln(out, "lint: clean")
		return nil
	}

	store, err := f.BuildStore()
	if err != nil {
		return err
	}
	eng := store.Engine()

	// Mutations fire in virtual-instant order: before each evidence
	// package, every not-yet-applied mutation whose instant has been
	// reached is applied. Time only moves forward — a mutation, once
	// applied, stays applied even if a later evidence entry asserts an
	// earlier now.
	muts := make([]policy.FileMutation, len(f.Mutations))
	copy(muts, f.Mutations)
	sort.SliceStable(muts, func(i, j int) bool { return muts[i].AtMS < muts[j].AtMS })
	nextMut := 0

	output := Output{Tool: "sevf-policy", Lint: findings}
	for i := range f.Evidence {
		e := &f.Evidence[i]
		for nextMut < len(muts) && muts[nextMut].AtMS <= e.NowMS {
			if err := muts[nextMut].Apply(store); err != nil {
				return fmt.Errorf("mutation at %dms: %w", muts[nextMut].AtMS, err)
			}
			nextMut++
		}
		ev, err := e.Package()
		if err != nil {
			return err
		}
		cert, evalErr := eng.Evaluate(ev, msToTime(e.NowMS))
		dec := Decision{Evidence: e.Name, NowMS: e.NowMS, Certificate: cert}
		if d := policy.DenialOf(evalErr); d != nil {
			dec.Denial = &DenialOut{Rule: d.Rule, Reason: string(d.Reason), Detail: d.Detail}
		}
		output.Decisions = append(output.Decisions, dec)
	}
	st := store.Stats()
	output.Evals, output.Grants, output.Denials = st.Evals, st.Grants, st.Denials
	output.DenialsByRule = st.DenialsByRule

	if *traceOut != "" {
		blob, err := json.MarshalIndent(output, "", " ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if *traceOut == "-" {
			_, err = out.Write(blob)
			return err
		}
		if err := os.WriteFile(*traceOut, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "decision trace written to %s\n", *traceOut)
		return nil
	}

	report(out, f, &output)
	return nil
}

// report renders the trace for a terminal.
func report(out io.Writer, f *policy.File, o *Output) {
	fmt.Fprintf(out, "policy: %d signer(s), %d domain(s), %d claim(s), %d mutation(s)\n",
		len(f.Signers), len(f.Domains), len(f.Claims), len(f.Mutations))
	if len(o.Lint) > 0 {
		fmt.Fprintf(out, "lint: %d finding(s)\n", len(o.Lint))
		for _, finding := range o.Lint {
			fmt.Fprintf(out, "  %s\n", finding)
		}
	} else {
		fmt.Fprintln(out, "lint: clean")
	}
	for _, d := range o.Decisions {
		if d.Denial != nil {
			fmt.Fprintf(out, "  %-24s @%6dms  deny   %s/%s: %s\n",
				d.Evidence, d.NowMS, d.Denial.Rule, d.Denial.Reason, d.Denial.Detail)
			continue
		}
		fmt.Fprintf(out, "  %-24s @%6dms  allow", d.Evidence, d.NowMS)
		for _, r := range d.Certificate.Rules {
			if r.Outcome == "pass" && len(r.Chain) > 0 {
				fmt.Fprintf(out, "  %s via %v", r.Rule, r.Chain)
			}
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "evaluations: %d (%d granted, %d denied)\n", o.Evals, o.Grants, o.Denials)
	if len(o.DenialsByRule) > 0 {
		keys := make([]string, 0, len(o.DenialsByRule))
		for k := range o.DenialsByRule {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprint(out, "denials by rule:")
		for _, k := range keys {
			fmt.Fprintf(out, " %s=%d", k, o.DenialsByRule[k])
		}
		fmt.Fprintln(out)
	}
}

func msToTime(ms int64) sim.Time {
	return sim.Time(time.Duration(ms) * time.Millisecond)
}
