package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSubset(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-expt", "fig7,fig8,rot", "-runs", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 7", "Figure 8", "Root-of-trust", "all experiments done"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q", want)
		}
	}
	if strings.Contains(s, "Figure 12") {
		t.Fatal("unselected experiment ran")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-expt", "fig99"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunFig9WithCSVAndCharts(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-expt", "fig9", "-runs", "2", "-out", dir, "-charts"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 9") {
		t.Fatal("fig9 table missing")
	}
	// ASCII CDF charts drawn.
	if !strings.Contains(out.String(), "p50=") {
		t.Fatal("CDF charts missing")
	}
	// CSV written, with the per-series distribution file.
	csv, err := os.ReadFile(filepath.Join(dir, "fig9-cdf.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csv), "series,boot_ms,fraction") {
		t.Fatal("CDF csv header missing")
	}
	if _, err := os.Stat(filepath.Join(dir, "fig9.csv")); err != nil {
		t.Fatal("fig9 summary csv missing")
	}
}
