// sevf-bench regenerates every table and figure in the paper's evaluation
// (and the ablations and extensions DESIGN.md adds), printing text tables
// and optionally writing CSV series to a results directory.
//
//	sevf-bench                       # everything, 100 runs for Fig. 9
//	sevf-bench -expt fig9,fig12      # a subset
//	sevf-bench -runs 10 -out results # quicker, with CSV output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	severifast "github.com/severifast/severifast"
	"github.com/severifast/severifast/internal/expt"
)

type runner struct {
	name string
	run  func(expt.Options) (*expt.Table, error)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sevf-bench", flag.ContinueOnError)
	var (
		which  = fs.String("expt", "all", "comma-separated experiments: fig3,fig4,fig5,fig7,fig8,fig9,fig10,fig11,fig12,mem,ablation-oob,ablation-preenc,ablation-thp,rot,warmstart,serverless")
		runs   = fs.Int("runs", 100, "boots per configuration for Fig. 9")
		jitter = fs.Bool("jitter", true, "apply the host-noise model to spread Fig. 9's CDFs")
		seed   = fs.Int64("seed", 1, "simulation seed")
		outDir = fs.String("out", "", "directory for CSV output (optional)")
		charts = fs.Bool("charts", false, "render ASCII CDF charts for Fig. 9")

		traceOut   = fs.String("trace-out", "", "also run one instrumented boot per scheme and write a Chrome trace (open in Perfetto)")
		metricsOut = fs.String("metrics-out", "", "write the instrumented run's telemetry in Prometheus text format")

		benchOut   = fs.String("bench-out", "", "run the host-time fleet benchmark and write BENCH JSON (wall-clock + allocs per boot stage) to this path; use -expt none to skip the figure experiments")
		benchLabel = fs.String("bench-label", "dev", "label recorded in the -bench-out JSON")
		benchVMs   = fs.Int("bench-vms", 16, "same-image boots per fleet iteration for -bench-out")
		benchIters = fs.Int("bench-iters", 4, "timed fleet iterations for -bench-out")
		benchWarm  = fs.Bool("bench-warm", false, "bench the snapshot-fork warm path: 1 cold seed + N-1 forked boots per iteration")
		benchHuge  = fs.Bool("bench-hugepage", false, "run -bench-out under strict huge-page validation accounting (own virtual-time pin, mode \"cold-hugepage\")")

		scalingOut     = fs.String("scaling-out", "", "sweep the warm-fork fleet across hostwork widths (1..16) and fleet sizes (16..1024) and write the curve JSON to this path")
		coldScalingOut = fs.String("bench-cold-scaling", "", "sweep the cold fleet across hostwork widths (1..16) and fleet sizes (16..1024) and write the curve JSON to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := expt.Options{Runs: *runs, Seed: *seed, Jitter: *jitter}

	runners := []runner{
		{"fig3", expt.Fig3},
		{"fig4", expt.Fig4},
		{"fig5", expt.Fig5},
		{"fig7", expt.Fig7},
		{"fig8", expt.Fig8},
		{"fig9", runFig9(*outDir, *charts, out)},
		{"fig10", expt.Fig10},
		{"fig11", expt.Fig11},
		{"fig12", expt.Fig12},
		{"mem", expt.MemoryFootprint},
		{"ablation-oob", expt.AblationOutOfBandHashing},
		{"ablation-preenc", expt.AblationPreEncryptPageTables},
		{"ablation-thp", expt.AblationHugePages},
		{"rot", expt.RootOfTrust},
		{"warmstart", expt.WarmStart},
		{"serverless", expt.Serverless},
	}

	want := map[string]bool{}
	if *which == "none" {
		want["none"] = true
	} else if *which != "all" {
		for _, name := range strings.Split(*which, ",") {
			want[strings.TrimSpace(name)] = true
		}
		for name := range want {
			known := false
			for _, r := range runners {
				if r.name == name {
					known = true
				}
			}
			if !known {
				return fmt.Errorf("unknown experiment %q", name)
			}
		}
	}

	start := time.Now()
	for _, r := range runners {
		if len(want) > 0 && !want[r.name] {
			continue
		}
		t0 := time.Now()
		tab, err := r.run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		fmt.Fprintln(out, tab)
		fmt.Fprintf(out, "(%s regenerated in %v of wall-clock time)\n\n", r.name, time.Since(t0).Round(time.Millisecond))
		if *outDir != "" {
			if err := writeCSV(*outDir, r.name, tab.CSV()); err != nil {
				return fmt.Errorf("write %s: %w", r.name, err)
			}
		}
	}
	fmt.Fprintf(out, "all experiments done in %v\n", time.Since(start).Round(time.Millisecond))
	if *traceOut != "" || *metricsOut != "" {
		if err := writeTelemetry(out, *seed, *traceOut, *metricsOut); err != nil {
			return err
		}
	}
	if *benchOut != "" {
		res, err := expt.HostBench(expt.HostBenchOptions{
			Label: *benchLabel, VMs: *benchVMs, Iters: *benchIters, Warm: *benchWarm,
			HugePage: *benchHuge,
		})
		if err != nil {
			return fmt.Errorf("host bench: %w", err)
		}
		fmt.Fprintln(out, res)
		if err := writeExport(*benchOut, func(w io.Writer) error {
			return expt.WriteHostBench(w, res)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "host bench written to %s\n", *benchOut)
	}
	if *scalingOut != "" {
		res, err := expt.ScalingBench(*benchLabel, nil, nil, 0)
		if err != nil {
			return fmt.Errorf("scaling bench: %w", err)
		}
		fmt.Fprintln(out, res)
		if err := writeExport(*scalingOut, func(w io.Writer) error {
			return expt.WriteScaling(w, res)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "scaling curve written to %s\n", *scalingOut)
	}
	if *coldScalingOut != "" {
		res, err := expt.ColdScalingBench(*benchLabel, nil, nil, 0)
		if err != nil {
			return fmt.Errorf("cold scaling bench: %w", err)
		}
		fmt.Fprintln(out, res)
		if err := writeExport(*coldScalingOut, func(w io.Writer) error {
			return expt.WriteScaling(w, res)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "cold scaling curve written to %s\n", *coldScalingOut)
	}
	return nil
}

// writeTelemetry boots each scheme once on a single instrumented host —
// so the trace shows the Fig. 11 decompositions side by side on one
// virtual clock — and exports the registry.
func writeTelemetry(out io.Writer, seed int64, traceOut, metricsOut string) error {
	host := severifast.NewHostSeed(seed)
	for _, scheme := range []severifast.Scheme{
		severifast.SchemeStock,
		severifast.SchemeSEVeriFast,
		severifast.SchemeSEVeriFastVmlinux,
		severifast.SchemeQEMUOVMF,
	} {
		if _, err := host.Boot(severifast.Config{
			Kernel: severifast.KernelLupine, InitrdMiB: 2, Scheme: scheme, Seed: seed,
		}); err != nil {
			return fmt.Errorf("instrumented %s boot: %w", scheme, err)
		}
	}
	if traceOut != "" {
		if err := writeExport(traceOut, host.Telemetry().WriteChromeTrace); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace written to %s (open at https://ui.perfetto.dev)\n", traceOut)
	}
	if metricsOut != "" {
		if err := writeExport(metricsOut, host.Telemetry().WritePrometheus); err != nil {
			return err
		}
		fmt.Fprintf(out, "metrics written to %s\n", metricsOut)
	}
	return nil
}

// writeExport streams one exporter into a freshly created file.
func writeExport(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runFig9 wraps the CDF experiment: the summary prints like any table, the
// full distributions go to CSV with -out, and -charts draws them as ASCII.
func runFig9(outDir string, charts bool, out io.Writer) func(expt.Options) (*expt.Table, error) {
	return func(o expt.Options) (*expt.Table, error) {
		data, err := expt.Fig9(o)
		if err != nil {
			return nil, err
		}
		var names []string
		for name := range data.CDFs {
			names = append(names, name)
		}
		sort.Strings(names)
		if charts {
			for _, name := range names {
				fmt.Fprintln(out, data.CDFs[name].RenderAs(name))
			}
		}
		if outDir != "" {
			var sb strings.Builder
			sb.WriteString("series,boot_ms,fraction\n")
			for _, name := range names {
				for _, pt := range data.CDFs[name].CDF() {
					fmt.Fprintf(&sb, "%s,%.3f,%.4f\n", name,
						float64(pt.Value)/float64(time.Millisecond), pt.Fraction)
				}
			}
			if err := writeCSV(outDir, "fig9-cdf", sb.String()); err != nil {
				return nil, err
			}
		}
		return data.Table, nil
	}
}

func writeCSV(dir, name, content string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".csv"), []byte(content), 0o644)
}
