package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/severifast/severifast/internal/cluster"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// smokeArgs is the CI smoke scenario and the acceptance scenario in one:
// 8 hosts, 512 Zipf-trace boots, random vs cache-affinity on the
// identical arrival schedule, machine-readable output.
var smokeArgs = []string{"-policy", "random,cache-affinity", "-summary-out", "-"}

// TestGoldenSmoke pins the full acceptance run: the summaries must be
// byte-identical across repeated runs AND match the checked-in golden
// file, and cache-affinity must show a measurably higher warm/cached-
// cold hit rate than random placement on the same trace.
func TestGoldenSmoke(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(smokeArgs, &a); err != nil {
		t.Fatalf("run 1: %v", err)
	}
	if err := run(smokeArgs, &b); err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("summaries differ across identical runs — determinism broken")
	}
	path := filepath.Join("testdata", "cluster_smoke_golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, a.Bytes(), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
	} else {
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read golden (run with -update-golden to create): %v", err)
		}
		if !bytes.Equal(a.Bytes(), want) {
			t.Errorf("output diverged from golden %s (re-run with -update-golden if intentional)", path)
		}
	}

	var out Output
	if err := json.Unmarshal(a.Bytes(), &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(out.Runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(out.Runs))
	}
	random, affinity := out.Runs[0], out.Runs[1]
	if random.Policy != "random" || affinity.Policy != "cache-affinity" {
		t.Fatalf("unexpected run order: %s, %s", random.Policy, affinity.Policy)
	}
	if random.Served != out.Trace.Arrivals || affinity.Served != out.Trace.Arrivals {
		t.Errorf("served %d/%d of %d arrivals", random.Served, affinity.Served, out.Trace.Arrivals)
	}
	// The acceptance comparison: placement locality must be visible in
	// the hit rate, with real margin, and in the transfer accounting.
	if affinity.HitRate < random.HitRate+0.05 {
		t.Errorf("cache-affinity hit rate %.4f not measurably above random %.4f",
			affinity.HitRate, random.HitRate)
	}
	affBytes := affinity.Replication.PeerBytes + affinity.Replication.OriginBytes
	randBytes := random.Replication.PeerBytes + random.Replication.OriginBytes
	if affBytes >= randBytes {
		t.Errorf("cache-affinity moved %d replicated bytes, random %d — affinity should move less",
			affBytes, randBytes)
	}
}

// stormArgs is the CI storm-smoke scenario: the same 8-host 512-boot
// Zipf trace, warm pools on, replayed under random and tcb-aware
// placement through a gen0 revocation storm with a floor bump at
// virtual 2s and rolling drift from 1s.
var stormArgs = []string{"-warm", "-storm", "-mean", "10ms",
	"-policy", "random,tcb-aware", "-summary-out", "-"}

// TestGoldenStorm pins the -storm mode end to end: byte-identical
// summaries across runs and against the checked-in golden, no forked
// boot ever served from a revoked donor, a real recovery story in the
// JSON (makespan-to-green, warm-pool invalidation cost, denial spike),
// and tcb-aware beating random on trust-plane denials on the same
// trace.
func TestGoldenStorm(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(stormArgs, &a); err != nil {
		t.Fatalf("run 1: %v", err)
	}
	if err := run(stormArgs, &b); err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("storm summaries differ across identical runs — determinism broken")
	}
	path := filepath.Join("testdata", "storm_smoke_golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, a.Bytes(), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
	} else {
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read golden (run with -update-golden to create): %v", err)
		}
		if !bytes.Equal(a.Bytes(), want) {
			t.Errorf("output diverged from golden %s (re-run with -update-golden if intentional)", path)
		}
	}

	var out Output
	if err := json.Unmarshal(a.Bytes(), &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(out.Runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(out.Runs))
	}
	random, aware := out.Runs[0], out.Runs[1]
	if random.Policy != "random" || aware.Policy != "tcb-aware" {
		t.Fatalf("unexpected run order: %s, %s", random.Policy, aware.Policy)
	}
	denials := func(s cluster.Summary) int {
		n := s.PolicyDenied
		for _, v := range s.Denials {
			n += v
		}
		return n
	}
	for _, s := range out.Runs {
		st := s.Storm
		if st == nil {
			t.Fatalf("%s: summary has no storm block", s.Policy)
		}
		if st.TaintedWarmServed != 0 {
			t.Errorf("%s: %d forked boots served from revoked donors", s.Policy, st.TaintedWarmServed)
		}
		if st.RevokedHosts == 0 || st.Drifted == 0 {
			t.Errorf("%s: storm revoked %d hosts, drifted %d — cascade missing",
				s.Policy, st.RevokedHosts, st.Drifted)
		}
		if st.MakespanToGreenNs < 0 {
			t.Errorf("%s: fleet never went green after the storm", s.Policy)
		}
		if st.WarmInvalidations == 0 {
			t.Errorf("%s: storm invalidated no warm pools", s.Policy)
		}
		if len(st.DenialSpike) == 0 {
			t.Errorf("%s: storm produced no denial spike", s.Policy)
		}
	}
	if da, dr := denials(aware), denials(random); da >= dr {
		t.Errorf("tcb-aware saw %d trust-plane denials, random %d — steering should win", da, dr)
	}
}

// TestReportDeterminism covers the human-readable path on a smaller
// scenario, including the per-tier CDF charts.
func TestReportDeterminism(t *testing.T) {
	args := []string{"-hosts", "4", "-arrivals", "64", "-images", "6", "-mean", "10ms",
		"-trace", "bursty", "-warm", "-width", "40"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatalf("run 1: %v", err)
	}
	if err := run(args, &b); err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("text reports differ across identical runs")
	}
	if !strings.Contains(a.String(), "cluster report: policy cache-affinity, 4 hosts") {
		t.Errorf("report header missing:\n%s", a.String())
	}
	if !strings.Contains(a.String(), "warm pool:") {
		t.Error("report lacks warm pool accounting")
	}
}

// TestKBSGatedRun drives the attestation-gated path end to end: every
// served boot on every host must have attested.
func TestKBSGatedRun(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-hosts", "2", "-arrivals", "24", "-images", "2", "-mean", "5ms",
		"-kbs", "-summary-out", "-"}
	if err := run(args, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	var out Output
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	sum := out.Runs[0]
	if sum.Served != 24 || sum.Failed != 0 {
		t.Fatalf("served %d, failed %d, want 24/0", sum.Served, sum.Failed)
	}
	attested := 0
	for _, h := range sum.PerHost {
		attested += h.Attested
	}
	if attested != 24 {
		t.Errorf("attested %d of 24 gated boots", attested)
	}
}

// TestFlagValidation exercises the rejection paths.
func TestFlagValidation(t *testing.T) {
	bad := [][]string{
		{"-policy", "teleport"},
		{"-trace", "sawtooth"},
		{"-preset", "plan9"},
		{"-kbs", "-tcb", "3.8"},
		{"-zipf-s", "0.5"},
		{"-arrivals", "0"},
	}
	for _, args := range bad {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}
