// sevf-cluster drives a trace-shaped open-loop workload through the
// multi-host cluster scheduler and prints one report per placement
// policy: makespan, boots per tier, per-host PSP utilization and ASID
// peaks, replication geography, and warm-pool activity. Passing several
// policies (comma-separated) replays the identical trace through a
// fresh cluster per policy, so the summaries are directly comparable.
//
//	sevf-cluster                                        # 8 hosts, 512 Zipf boots
//	sevf-cluster -policy random,cache-affinity          # same trace, two policies
//	sevf-cluster -trace bursty -burst-factor 12 -warm   # herd arrivals, warm pool on
//	sevf-cluster -hosts 4 -asids 4 -queue 64            # small cluster, backpressure
//	sevf-cluster -kbs                                   # attestation-gated boots
//	sevf-cluster -warm -storm                           # revocation storm + rolling TCB drift
//	sevf-cluster -summary-out run.json                  # machine-readable summaries
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/severifast/severifast/internal/cluster"
	"github.com/severifast/severifast/internal/fleet"
	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// Output is the machine-readable artifact: the effective trace spec
// plus one summary per policy, in flag order. Same flags, same bytes —
// the CI smoke job diffs this against a checked-in golden file.
type Output struct {
	Tool   string            `json:"tool"`
	Trace  cluster.TraceSpec `json:"trace"`
	ExecNs int64             `json:"exec_ns"`
	Runs   []cluster.Summary `json:"runs"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sevf-cluster", flag.ContinueOnError)
	var (
		hosts    = fs.Int("hosts", 8, "simulated host count")
		asids    = fs.Int("asids", 8, "SEV ASID pool per host (max live guests)")
		workers  = fs.Int("workers", 2, "boot workers per host")
		queue    = fs.Int("queue", 0, "cluster admission queue bound (0 = unbounded)")
		policies = fs.String("policy", "cache-affinity", "placement policies, comma-separated: "+strings.Join(cluster.PolicyNames(), ", "))
		warm     = fs.Bool("warm", false, "enable warm tiers and the cross-host warm-snapshot pool")
		fabric   = fs.Int("fabric", 4, "concurrent cross-host transfer slots")

		kind      = fs.String("trace", "zipf", "arrival trace: uniform, zipf, diurnal, bursty")
		arrivals  = fs.Int("arrivals", 512, "total boot requests")
		mean      = fs.Duration("mean", 20*time.Millisecond, "baseline mean inter-arrival gap")
		exec      = fs.Duration("exec", 10*time.Millisecond, "function execution time (ASID held)")
		images    = fs.Int("images", 12, "image population size")
		tenants   = fs.Int("tenants", 4, "tenants, round-robin across arrivals")
		zipfS     = fs.Float64("zipf-s", 1.2, "zipf skew exponent (> 1)")
		period    = fs.Duration("period", 0, "diurnal period (0 = arrivals*mean)")
		amplitude = fs.Float64("amplitude", 0.8, "diurnal rate amplitude in [0,1)")
		burstF    = fs.Float64("burst-factor", 8, "bursty rate multiplier during bursts")
		burstOn   = fs.Duration("burst-on", 0, "burst window (0 = 10*mean)")
		burstOff  = fs.Duration("burst-off", 0, "quiet window (0 = 40*mean)")

		preset    = fs.String("preset", "lupine", "kernel preset: lupine, aws, ubuntu")
		initrdLen = fs.Int("initrd", 512<<10, "initrd size per image in bytes")
		seed      = fs.Int64("seed", 1, "simulation seed")
		width     = fs.Int("width", 0, "CDF chart width (0 disables charts)")

		useKBS    = fs.Bool("kbs", false, "gate every boot behind an in-process key broker")
		tcbStr    = fs.String("tcb", "2.1.8.115", "platform TCB hosts are enrolled at")
		kbsSecret = fs.String("kbs-secret", "guest-volume-key", "per-tenant secret in the broker")
		retries   = fs.Int("retries", 3, "retry budget per boot")
		backoff   = fs.Duration("backoff", time.Millisecond, "base retry backoff")
		brkThresh = fs.Int("breaker-threshold", 0, "per-host breaker: consecutive KBS transport failures to open (0 = off)")
		brkCool   = fs.Duration("breaker-cooldown", 50*time.Millisecond, "per-host breaker cooldown")

		storm       = fs.Bool("storm", false, "fire a platform-generation revocation storm plus floor bump (implies -kbs)")
		stormAt     = fs.Duration("storm-at", 2*time.Second, "virtual instant the storm fires")
		stormGen    = fs.String("storm-gen", "gen0", "chip generation the storm revokes")
		generations = fs.Int("generations", 2, "chip generations striped across hosts (storm runs)")
		stormFloor  = fs.String("storm-floor", "2.1.9.120", "minimum-TCB floor the storm bumps to")
		driftStart  = fs.Duration("drift-start", time.Second, "when rolling per-host TCB updates begin")
		driftEvery  = fs.Duration("drift-interval", 250*time.Millisecond, "gap between per-host TCB updates (0 = no drift)")

		summaryOut = fs.String("summary-out", "", "write the Output JSON here ('-' = stdout, suppresses the text report)")
		metricsOut = fs.String("metrics-out", "", "write the last run's telemetry in Prometheus text format")
		traceOut   = fs.String("trace-out", "", "write the last run's Chrome trace-event JSON (open in Perfetto)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	kp, err := kernelgen.PresetByName(*preset)
	if err != nil {
		return err
	}
	// The storm cascades through the attestation gates, so it only makes
	// sense on a broker-gated run.
	var floorTCB kbs.TCB
	if *storm {
		*useKBS = true
		if floorTCB, err = kbs.ParseTCB(*stormFloor); err != nil {
			return fmt.Errorf("-storm-floor: %w", err)
		}
	}
	spec := cluster.TraceSpec{
		Kind:             cluster.TraceKind(strings.ToLower(*kind)),
		Arrivals:         *arrivals,
		MeanGap:          *mean,
		Images:           *images,
		Tenants:          *tenants,
		ZipfS:            *zipfS,
		DiurnalPeriod:    *period,
		DiurnalAmplitude: *amplitude,
		BurstFactor:      *burstF,
		BurstOn:          *burstOn,
		BurstOff:         *burstOff,
		Seed:             *seed,
	}
	arr, err := spec.Generate()
	if err != nil {
		return err
	}
	names := strings.Split(*policies, ",")
	if len(names) == 0 || *policies == "" {
		return fmt.Errorf("need at least one -policy")
	}

	output := Output{Tool: "sevf-cluster", Trace: spec, ExecNs: int64(*exec)}
	quiet := *summaryOut == "-"
	for runIdx, polName := range names {
		polName = strings.TrimSpace(polName)
		pol, err := cluster.PolicyByName(polName, *seed)
		if err != nil {
			return err
		}
		// A fresh engine, registry, and cluster per policy: every run
		// replays the identical arrival schedule from virtual time zero.
		eng := sim.NewEngine()
		reg := telemetry.NewRegistry()
		eng.SetTracer(reg)
		cfg := cluster.Config{
			Hosts:          *hosts,
			ASIDsPerHost:   *asids,
			WorkersPerHost: *workers,
			QueueDepth:     *queue,
			Policy:         pol,
			EnableWarm:     *warm,
			FabricSlots:    *fabric,
			Seed:           *seed,
			Telemetry:      reg,
			Retry:          fleet.RetryPolicy{Max: *retries, Backoff: *backoff},
		}
		if *brkThresh > 0 {
			cfg.Breaker = fleet.BreakerPolicy{Threshold: *brkThresh, Cooldown: *brkCool}
		}
		if *storm {
			cfg.Generations = *generations
		}
		var broker *kbs.Broker
		if *useKBS {
			tcb, err := kbs.ParseTCB(*tcbStr)
			if err != nil {
				return fmt.Errorf("-tcb: %w", err)
			}
			auth := kbs.NewAuthority(*seed)
			broker = kbs.NewBroker(auth.Root(), kbs.Config{MinTCB: tcb, Seed: *seed})
			for i := 0; i < *tenants; i++ {
				broker.AddTenant(fmt.Sprintf("t%d", i), []byte(*kbsSecret))
			}
			broker.Instrument(reg)
			cfg.KBS = broker
			cfg.Authority = auth
			cfg.TCB = tcb
			cfg.AgentSeed = *seed
		}
		c, err := cluster.New(eng, cfg)
		if err != nil {
			return err
		}
		if *storm {
			if err := c.InstallStorm(broker, cluster.StormConfig{
				At:            *stormAt,
				Generation:    *stormGen,
				Floor:         floorTCB,
				DriftStart:    *driftStart,
				DriftInterval: *driftEvery,
			}); err != nil {
				return err
			}
		}
		imgs := make([]*cluster.Image, 0, *images)
		for i := 0; i < *images; i++ {
			p := kp
			p.Cmdline = fmt.Sprintf("%s img=%d", p.Cmdline, i)
			// Distinct initrd per image: each image is its own blob to
			// the replication layer, so placement geography is visible
			// in the transfer accounting.
			img, err := c.RegisterImage(fmt.Sprintf("img-%d", i), p, kernelgen.BuildInitrd(*seed+int64(i), *initrdLen))
			if err != nil {
				return err
			}
			imgs = append(imgs, img)
		}
		if err := c.Play(arr, imgs, *exec); err != nil {
			return err
		}
		eng.Run()
		sum := c.Summarize()
		output.Runs = append(output.Runs, sum)
		if !quiet {
			if runIdx > 0 {
				fmt.Fprintln(out)
			}
			fmt.Fprint(out, sum.Report(*width))
			if *width > 0 {
				fmt.Fprint(out, c.LatencyCDFs(*width))
			}
		}
		if runIdx == len(names)-1 {
			if *metricsOut != "" {
				if err := writeExport(*metricsOut, reg.WritePrometheus); err != nil {
					return err
				}
				if !quiet {
					fmt.Fprintf(out, "metrics written to %s\n", *metricsOut)
				}
			}
			if *traceOut != "" {
				if err := writeExport(*traceOut, reg.WriteChromeTrace); err != nil {
					return err
				}
				if !quiet {
					fmt.Fprintf(out, "trace written to %s (open at https://ui.perfetto.dev)\n", *traceOut)
				}
			}
		}
	}
	if *summaryOut != "" {
		blob, err := json.MarshalIndent(output, "", " ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if quiet {
			_, err = out.Write(blob)
			return err
		}
		if err := os.WriteFile(*summaryOut, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nsummaries written to %s\n", *summaryOut)
	}
	return nil
}

// writeExport streams one exporter into a freshly created file.
func writeExport(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
