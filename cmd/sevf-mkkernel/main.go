// sevf-mkkernel builds the synthetic guest artifacts to files: the vmlinux
// ELF, LZ4 and gzip bzImages, and the attestation initrd. Sizes follow the
// paper's Fig. 8 (Lupine 23M/3.3M, AWS 43M/7.1M, Ubuntu 61M/15M).
//
//	sevf-mkkernel -preset aws -out ./artifacts
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/severifast/severifast/internal/kernelgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sevf-mkkernel", flag.ContinueOnError)
	var (
		preset = fs.String("preset", "aws", "kernel preset: lupine | aws | ubuntu | all")
		outDir = fs.String("out", "artifacts", "output directory")
		initrd = fs.Int("initrd", 16, "initrd size (MiB)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	var presets []kernelgen.Preset
	if *preset == "all" {
		presets = kernelgen.Presets()
	} else {
		p, err := kernelgen.PresetByName(*preset)
		if err != nil {
			return err
		}
		presets = []kernelgen.Preset{p}
	}

	write := func(name string, data []byte) error {
		path := filepath.Join(*outDir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "%-32s %9.1f MiB\n", path, float64(len(data))/(1<<20))
		return nil
	}

	for _, p := range presets {
		art, err := kernelgen.Cached(p)
		if err != nil {
			return err
		}
		if err := write("vmlinux-"+p.Name, art.VMLinux); err != nil {
			return err
		}
		if err := write("bzImage-"+p.Name+".lz4", art.BzImageLZ4); err != nil {
			return err
		}
		if err := write("bzImage-"+p.Name+".gz", art.BzImageGzip); err != nil {
			return err
		}
	}
	return write("initrd.img", kernelgen.BuildInitrd(1, *initrd<<20))
}
