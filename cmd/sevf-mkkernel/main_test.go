package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/severifast/severifast/internal/bzimage"
	"github.com/severifast/severifast/internal/cpio"
	"github.com/severifast/severifast/internal/elfx"
)

func TestRunWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-preset", "lupine", "-out", dir, "-initrd", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	// The vmlinux must be a parseable ELF of the paper's size.
	vm, err := os.ReadFile(filepath.Join(dir, "vmlinux-lupine"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := elfx.Parse(vm); err != nil {
		t.Fatalf("written vmlinux unparseable: %v", err)
	}
	if len(vm) < 22<<20 || len(vm) > 24<<20 {
		t.Fatalf("vmlinux %d bytes, want ~23 MiB", len(vm))
	}
	// The bzImage must carry the same kernel.
	bz, err := os.ReadFile(filepath.Join(dir, "bzImage-lupine.lz4"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := bzimage.ExtractVMLinux(bz)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, vm) {
		t.Fatal("bzImage payload differs from vmlinux file")
	}
	// The initrd must be a valid CPIO with /init.
	rd, err := os.ReadFile(filepath.Join(dir, "initrd.img"))
	if err != nil {
		t.Fatal(err)
	}
	files, err := cpio.Parse(rd)
	if err != nil {
		t.Fatal(err)
	}
	if cpio.Lookup(files, "init") == nil {
		t.Fatal("initrd missing /init")
	}
	if !strings.Contains(out.String(), "vmlinux-lupine") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestRunRejectsUnknownPreset(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-preset", "arch", "-out", t.TempDir()}, &out); err == nil {
		t.Fatal("unknown preset accepted")
	}
}
