// Serverless cold-start burst: a function platform receives a traffic
// spike and must cold-boot N microVMs at once on one host. With SEV, every
// launch serializes on the single-core PSP — the paper's Fig. 12
// bottleneck — while non-confidential microVMs scale flat.
//
//	go run ./examples/serverless
package main

import (
	"fmt"
	"log"
	"time"

	severifast "github.com/severifast/severifast"
)

func main() {
	fmt.Println("Cold-start burst on one host (AWS kernel, 256 MiB guests)")
	fmt.Printf("%12s  %18s  %18s\n", "concurrency", "severifast (snp)", "stock fc (no sev)")

	for _, n := range []int{1, 5, 10, 25, 50} {
		sevMean, err := burst(severifast.Config{
			Kernel: severifast.KernelAWS,
			Scheme: severifast.SchemeSEVeriFast,
		}, n)
		if err != nil {
			log.Fatal(err)
		}
		stockMean, err := burst(severifast.Config{
			Kernel: severifast.KernelAWS,
			Scheme: severifast.SchemeStock,
		}, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12d  %18v  %18v\n", n,
			sevMean.Round(100*time.Microsecond), stockMean.Round(100*time.Microsecond))
	}

	fmt.Println("\nThe SEV column grows linearly: every guest's launch commands")
	fmt.Println("queue on the same PSP. The paper flags this as the hardware")
	fmt.Println("bottleneck confidential serverless must solve (§6.2).")
}

// burst boots n identical guests simultaneously and returns the mean boot
// time (to init).
func burst(cfg severifast.Config, n int) (time.Duration, error) {
	results, err := severifast.NewHost().BootConcurrent(cfg, n)
	if err != nil {
		return 0, err
	}
	var sum time.Duration
	for _, r := range results {
		sum += r.Total
	}
	return sum / time.Duration(n), nil
}
