// The measurement-vs-decompression tradeoff (paper §3.3, Fig. 5): under
// SEV, every byte handed to the guest is copied and hashed on the CPU, so
// shrinking the kernel with compression pays even though decompression
// joins the critical path. This example sweeps kernel and format to show
// where the time goes and why LZ4 bzImages win.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"time"

	severifast "github.com/severifast/severifast"
)

func main() {
	fmt.Println("Measured direct boot: verification + bootstrap cost per kernel format")
	fmt.Printf("%-8s %-22s %10s %10s %10s\n", "kernel", "format", "verify", "bootstrap", "total boot")

	for _, kernel := range []severifast.Kernel{
		severifast.KernelLupine, severifast.KernelAWS, severifast.KernelUbuntu,
	} {
		type variant struct {
			name string
			cfg  severifast.Config
		}
		variants := []variant{
			{"bzImage (lz4)", severifast.Config{Kernel: kernel, Scheme: severifast.SchemeSEVeriFast}},
			{"bzImage (gzip)", severifast.Config{Kernel: kernel, Scheme: severifast.SchemeSEVeriFast, Codec: severifast.CodecGzip}},
			{"vmlinux (uncompressed)", severifast.Config{Kernel: kernel, Scheme: severifast.SchemeSEVeriFastVmlinux}},
		}
		for _, v := range variants {
			res, err := severifast.Boot(v.cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %-22s %10v %10v %10v\n", kernel, v.name,
				round(res.BootVerification), round(res.BootstrapLoader), round(res.Total))
		}
	}

	fmt.Println("\nLZ4 wins everywhere: the hash+copy saved on ~4-7x fewer bytes")
	fmt.Println("outweighs decompression; gzip decompresses too slowly; the raw")
	fmt.Println("vmlinux pays full-size measurement (paper Fig. 5, §4.4).")
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }
