// Remote attestation end to end, over a real TCP socket: a guest owner
// runs the attestation service (the paper's nginx stand-in), a host boots
// an SEV-SNP guest with SEVeriFast, and the guest trades its signed PSP
// report for the owner's secret. A second boot with a patched boot
// verifier shows the owner refusing a launch whose measurement differs
// (paper §2.6).
//
//	go run ./examples/attestation
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	severifast "github.com/severifast/severifast"
)

func main() {
	host := severifast.NewHost()
	cfg := severifast.Config{
		Kernel: severifast.KernelAWS,
		Scheme: severifast.SchemeSEVeriFast,
	}

	// Guest owner: computes the expected launch digest with the digest
	// tool (§4.2) and serves POST /attest.
	secret := []byte("luks-volume-key-5f2e")
	owner := severifast.NewGuestOwner(host, secret)
	if err := owner.AllowConfig(cfg); err != nil {
		log.Fatal(err)
	}
	server := httptest.NewServer(owner.Handler())
	defer server.Close()
	fmt.Println("guest-owner service listening on", server.URL)

	// Boot the genuine guest and attest over the socket.
	res, err := host.Boot(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guest booted in %v, launch digest %x...\n",
		res.Total.Round(0), res.LaunchDigest[:8])

	got, err := res.AttestOverHTTP(server.URL)
	if err != nil {
		log.Fatal("attestation failed: ", err)
	}
	fmt.Printf("attestation succeeded; owner released %q\n", got)

	// Now the host plays dirty: it boots a guest with a patched boot
	// verifier that would skip hash checks. The PSP measures what it
	// loads, so the report carries a different digest — and the owner
	// refuses to release anything.
	evil := cfg
	evil.VerifierSeed = 666
	evilRes, err := host.Boot(evil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmalicious boot came up too (digest %x...), but:\n", evilRes.LaunchDigest[:8])
	if _, err := evilRes.AttestOverHTTP(server.URL); err != nil {
		fmt.Println("owner refused:", err)
	} else {
		log.Fatal("BUG: malicious verifier attested successfully")
	}
}
