// Quickstart: boot one SEV-SNP microVM with SEVeriFast, print the paper's
// Fig. 11 breakdown, and compare against the QEMU/OVMF baseline and a
// non-confidential stock Firecracker boot.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	severifast "github.com/severifast/severifast"
)

func main() {
	// SEVeriFast: minimal boot verifier, out-of-band hashes, LZ4 bzImage.
	sevf, err := severifast.Boot(severifast.Config{
		Kernel: severifast.KernelAWS,
		Scheme: severifast.SchemeSEVeriFast,
		Attest: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The mainstream flow: QEMU + a fully pre-encrypted OVMF.
	qemu, err := severifast.Boot(severifast.Config{
		Kernel: severifast.KernelAWS,
		Scheme: severifast.SchemeQEMUOVMF,
		Attest: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The reference point: stock Firecracker without SEV.
	stock, err := severifast.Boot(severifast.Config{
		Kernel: severifast.KernelAWS,
		Scheme: severifast.SchemeStock,
	})
	if err != nil {
		log.Fatal(err)
	}

	r := func(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }
	fmt.Println("AWS microVM kernel, 256 MiB guest, SEV-SNP:")
	fmt.Printf("  stock firecracker (no SEV)  boot %8v\n", r(stock.Total))
	fmt.Printf("  SEVeriFast                  boot %8v   attested end-to-end %8v\n",
		r(sevf.Total), r(sevf.TotalWithAttest))
	fmt.Printf("  QEMU/OVMF                   boot %8v   attested end-to-end %8v\n",
		r(qemu.Total), r(qemu.TotalWithAttest))
	fmt.Printf("\nSEVeriFast boots %.1f%% faster than QEMU/OVMF (paper: 86-93%%)\n",
		100*(1-float64(sevf.TotalWithAttest)/float64(qemu.TotalWithAttest)))

	fmt.Println("\nSEVeriFast breakdown (paper Fig. 11):")
	fmt.Printf("  vmm (incl. %v pre-encryption)  %v\n", r(sevf.PreEncryption), r(sevf.VMM))
	fmt.Printf("  boot verification                   %v\n", r(sevf.BootVerification))
	fmt.Printf("  bootstrap loader (LZ4 decompress)   %v\n", r(sevf.BootstrapLoader))
	fmt.Printf("  linux boot                          %v\n", r(sevf.LinuxBoot))
	fmt.Printf("  launch digest                       %x...\n", sevf.LaunchDigest[:8])
}
