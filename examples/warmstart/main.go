// Warm start for confidential microVMs — the paper's §7 future work,
// explored: snapshot a booted SEV-SNP guest and restart clones from the
// image instead of cold-booting. The catch is the paper's trade-off: the
// donor must be launched with a key-sharing policy, which every guest
// owner sees in the attestation report; and without key sharing the
// restored memory is undecryptable ciphertext.
//
//	go run ./examples/warmstart
package main

import (
	"fmt"
	"log"
	"time"

	severifast "github.com/severifast/severifast"
)

func main() {
	host := severifast.NewHost()

	// Cold-boot a donor with the relaxed (key-sharing) policy.
	cold, err := host.Boot(severifast.Config{
		Kernel:          severifast.KernelAWS,
		Scheme:          severifast.SchemeSEVeriFast,
		AllowKeySharing: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	snap, err := host.Snapshot(cold)
	if err != nil {
		log.Fatal(err)
	}

	// Warm-start a clone from the snapshot.
	warm, err := host.WarmBoot(snap)
	if err != nil {
		log.Fatal(err)
	}
	r := func(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }
	fmt.Printf("cold boot (SEVeriFast, SNP):  %v\n", r(cold.Total))
	fmt.Printf("warm start from snapshot:     %v  (%.1fx faster)\n",
		r(warm.Total), float64(cold.Total)/float64(warm.Total))

	// The trade-off is enforced: a strict-policy donor cannot donate.
	strict, err := host.Boot(severifast.Config{
		Kernel: severifast.KernelAWS,
		Scheme: severifast.SchemeSEVeriFast,
	})
	if err != nil {
		log.Fatal(err)
	}
	strictSnap, err := host.Snapshot(strict)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := host.WarmBoot(strictSnap); err != nil {
		fmt.Printf("\nstrict-policy donor refused, as it must: %v\n", err)
	} else {
		log.Fatal("BUG: strict policy donated its key")
	}
	fmt.Println("\nKey sharing weakens the trust model — and it is visible: the relaxed")
	fmt.Println("policy changes the launch digest, so guest owners always know (§6.2/§7).")
}
