module github.com/severifast/severifast

go 1.22
