package severifast

import (
	"net/http/httptest"
	"testing"
	"time"
)

func TestBootDefaults(t *testing.T) {
	res, err := Boot(Config{Kernel: KernelLupine})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total <= 0 || !res.InitrdOK || res.CPUs != 1 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.LaunchDigest == ([32]byte{}) {
		t.Fatal("default (SNP) boot produced no launch digest")
	}
	if res.PreEncryption <= 0 || res.BootVerification <= 0 {
		t.Fatal("SEV phases missing")
	}
}

func TestStockBootFast(t *testing.T) {
	res, err := Boot(Config{Kernel: KernelLupine, Scheme: SchemeStock})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total > 80*time.Millisecond {
		t.Fatalf("stock boot %v, want tens of ms", res.Total)
	}
	if res.LaunchDigest != ([32]byte{}) {
		t.Fatal("non-SEV boot has a launch digest")
	}
}

func TestQEMUSchemeSlow(t *testing.T) {
	res, err := Boot(Config{Kernel: KernelLupine, Scheme: SchemeQEMUOVMF, InitrdMiB: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total < 3*time.Second {
		t.Fatalf("QEMU/OVMF boot %v, want >3s", res.Total)
	}
	if res.Firmware < 3*time.Second {
		t.Fatalf("firmware %v", res.Firmware)
	}
}

func TestHeadline(t *testing.T) {
	// The abstract's claim on the public API: SEVeriFast beats QEMU/OVMF
	// by roughly 86-93%.
	cfgS := Config{Kernel: KernelLupine, InitrdMiB: 2}
	cfgQ := Config{Kernel: KernelLupine, Scheme: SchemeQEMUOVMF, InitrdMiB: 2}
	s, err := Boot(cfgS)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Boot(cfgQ)
	if err != nil {
		t.Fatal(err)
	}
	red := 1 - float64(s.Total)/float64(q.Total)
	if red < 0.83 || red > 0.97 {
		t.Fatalf("reduction %.3f outside the paper's neighbourhood", red)
	}
}

func TestBootWithAttestation(t *testing.T) {
	res, err := Boot(Config{Kernel: KernelAWS, InitrdMiB: 2, Attest: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attestation <= 0 {
		t.Fatal("attestation did not run")
	}
	// §6.1: attestation costs ~200 ms.
	if res.Attestation < 150*time.Millisecond || res.Attestation > 300*time.Millisecond {
		t.Fatalf("attestation %v, want ~200ms", res.Attestation)
	}
	if res.TotalWithAttest <= res.Total {
		t.Fatal("attestation not included in end-to-end time")
	}
}

func TestLupineSkipsAttestation(t *testing.T) {
	res, err := Boot(Config{Kernel: KernelLupine, InitrdMiB: 2, Attest: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attestation != 0 {
		t.Fatal("lupine has no networking; attestation must be skipped (paper §6.1)")
	}
}

func TestExpectedLaunchDigestMatchesBoot(t *testing.T) {
	cfg := Config{Kernel: KernelLupine, InitrdMiB: 2}
	res, err := Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExpectedLaunchDigest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LaunchDigest != want {
		t.Fatalf("digest %x != expected %x", res.LaunchDigest[:8], want[:8])
	}
}

func TestExpectedLaunchDigestQEMU(t *testing.T) {
	cfg := Config{Kernel: KernelLupine, Scheme: SchemeQEMUOVMF, InitrdMiB: 2}
	res, err := Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExpectedLaunchDigest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LaunchDigest != want {
		t.Fatal("QEMU digest mismatch")
	}
}

func TestBootConcurrentSerializesOnPSP(t *testing.T) {
	cfg := Config{Kernel: KernelLupine, InitrdMiB: 2}
	one, err := NewHost().BootConcurrent(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := NewHost().BootConcurrent(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	var mean1, mean4 time.Duration
	mean1 = one[0].Total
	for _, r := range four {
		mean4 += r.Total
	}
	mean4 /= 4
	if mean4 <= mean1+50*time.Millisecond {
		t.Fatalf("4-way mean %v vs 1-way %v; PSP contention missing", mean4, mean1)
	}
}

func TestBootConcurrentNonSEVFlat(t *testing.T) {
	cfg := Config{Kernel: KernelLupine, Scheme: SchemeStock, InitrdMiB: 2}
	one, err := NewHost().BootConcurrent(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := NewHost().BootConcurrent(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range four {
		if r.Total > one[0].Total+5*time.Millisecond {
			t.Fatalf("non-SEV boot slowed under concurrency: %v vs %v", r.Total, one[0].Total)
		}
	}
}

func TestGuestOwnerOverHTTP(t *testing.T) {
	host := NewHost()
	cfg := Config{Kernel: KernelAWS, InitrdMiB: 2}
	secret := []byte("real network secret")
	owner := NewGuestOwner(host, secret)
	if err := owner.AllowConfig(cfg); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(owner.Handler())
	defer srv.Close()

	res, err := host.Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.AttestOverHTTP(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(secret) {
		t.Fatal("secret mismatch over HTTP")
	}
}

func TestGuestOwnerRefusesWrongVerifier(t *testing.T) {
	host := NewHost()
	good := Config{Kernel: KernelAWS, InitrdMiB: 2}
	owner := NewGuestOwner(host, []byte("s"))
	if err := owner.AllowConfig(good); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(owner.Handler())
	defer srv.Close()

	// The host boots a guest with a patched verifier; the measurement
	// differs and the owner refuses (paper §2.6 case 3).
	evil := good
	evil.VerifierSeed = 666
	res, err := host.Boot(evil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.AttestOverHTTP(srv.URL); err == nil {
		t.Fatal("patched verifier attested successfully")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Boot(Config{Scheme: "grub"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := Boot(Config{Kernel: "gentoo"}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if _, err := Boot(Config{Level: "tdx"}); err == nil {
		t.Fatal("unknown level accepted")
	}
	if _, err := NewHost().BootConcurrent(Config{}, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestGzipCompressionOption(t *testing.T) {
	lz, err := Boot(Config{Kernel: KernelLupine, InitrdMiB: 2})
	if err != nil {
		t.Fatal(err)
	}
	gz, err := Boot(Config{Kernel: KernelLupine, InitrdMiB: 2, Codec: CodecGzip})
	if err != nil {
		t.Fatal(err)
	}
	if gz.BootstrapLoader <= lz.BootstrapLoader {
		t.Fatal("gzip decompression not slower than lz4")
	}
}

func TestDisableTHPOption(t *testing.T) {
	fast, err := Boot(Config{Kernel: KernelLupine, InitrdMiB: 2})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Boot(Config{Kernel: KernelLupine, InitrdMiB: 2, DisableTHP: true})
	if err != nil {
		t.Fatal(err)
	}
	if slow.BootVerification-fast.BootVerification < 50*time.Millisecond {
		t.Fatal("4 KiB pvalidate penalty missing")
	}
}

func TestHugePageValidationOption(t *testing.T) {
	// The paper's 2 MiB ablation, hardware-faithful: a huge-page
	// pvalidate only covers uniformly-unvalidated blocks, so the blocks
	// fragmented by launch-updated pages fall back to per-4 KiB
	// instructions. Strict accounting therefore sits strictly between
	// the flat THP estimate and full 4 KiB validation — and its exact
	// virtual-time output is a golden of its own.
	def, err := Boot(Config{Kernel: KernelLupine, InitrdMiB: 2})
	if err != nil {
		t.Fatal(err)
	}
	hp, err := Boot(NewConfig(
		WithKernel(KernelLupine),
		WithHugePageValidation(),
	).With(func(c *Config) { c.InitrdMiB = 2 }))
	if err != nil {
		t.Fatal(err)
	}
	fourK, err := Boot(Config{Kernel: KernelLupine, InitrdMiB: 2, DisableTHP: true})
	if err != nil {
		t.Fatal(err)
	}
	if !(def.BootVerification < hp.BootVerification && hp.BootVerification < fourK.BootVerification) {
		t.Fatalf("strict huge-page verification %v not between THP %v and 4 KiB %v",
			hp.BootVerification, def.BootVerification, fourK.BootVerification)
	}
	// Goldens: the option off must not move the default's virtual time,
	// and the option on has its own pinned output.
	const defGolden = 164645338 * time.Nanosecond
	const hpGolden = 165122238 * time.Nanosecond
	if def.Total != defGolden {
		t.Fatalf("default cold boot drifted: %v, golden %v", def.Total, defGolden)
	}
	if hp.Total != hpGolden {
		t.Fatalf("huge-page cold boot drifted: %v, golden %v", hp.Total, hpGolden)
	}
}

func TestInBandHashingOption(t *testing.T) {
	oob, err := Boot(Config{Kernel: KernelLupine, InitrdMiB: 2})
	if err != nil {
		t.Fatal(err)
	}
	in, err := Boot(Config{Kernel: KernelLupine, InitrdMiB: 2, InBandHashing: true})
	if err != nil {
		t.Fatal(err)
	}
	if in.Total <= oob.Total {
		t.Fatal("in-band hashing not slower")
	}
}

func TestSEVMetadataReported(t *testing.T) {
	res, err := Boot(Config{Kernel: KernelLupine, InitrdMiB: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.SEVMetadataBytes < 1024 || res.SEVMetadataBytes > 64*1024 {
		t.Fatalf("SEV metadata %d bytes", res.SEVMetadataBytes)
	}
}

func TestWarmBootFromSnapshot(t *testing.T) {
	host := NewHost()
	cold, err := host.Boot(Config{Kernel: KernelAWS, InitrdMiB: 2, AllowKeySharing: true})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := host.Snapshot(cold)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := host.WarmBoot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Total >= cold.Total {
		t.Fatalf("warm start (%v) not faster than cold boot (%v)", warm.Total, cold.Total)
	}
	if warm.Total <= 0 {
		t.Fatal("zero warm-start time")
	}
}

func TestWarmBootNeedsKeySharingPolicy(t *testing.T) {
	// A donor booted with the default (strict) policy cannot donate its
	// key: the paper's trade-off is not silently bypassable.
	host := NewHost()
	cold, err := host.Boot(Config{Kernel: KernelAWS, InitrdMiB: 2})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := host.Snapshot(cold)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := host.WarmBoot(snap); err == nil {
		t.Fatal("warm boot succeeded against a NoKeySharing donor")
	}
}

func TestKeySharingChangesDigest(t *testing.T) {
	strict, err := ExpectedLaunchDigest(Config{Kernel: KernelLupine, InitrdMiB: 2})
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := ExpectedLaunchDigest(Config{Kernel: KernelLupine, InitrdMiB: 2, AllowKeySharing: true})
	if err != nil {
		t.Fatal(err)
	}
	if strict == relaxed {
		t.Fatal("key-sharing policy invisible in the expected digest")
	}
}

func TestAllowKeySharingStillAttests(t *testing.T) {
	res, err := Boot(Config{Kernel: KernelAWS, InitrdMiB: 2, AllowKeySharing: true, Attest: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attestation <= 0 {
		t.Fatal("attestation skipped")
	}
}

func TestWarmBootNonSEV(t *testing.T) {
	host := NewHost()
	cold, err := host.Boot(Config{Kernel: KernelAWS, Scheme: SchemeStock, InitrdMiB: 2})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := host.Snapshot(cold)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := host.WarmBoot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Total >= cold.Total {
		t.Fatalf("plain warm start (%v) not faster than cold (%v)", warm.Total, cold.Total)
	}
}
