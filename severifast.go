// Package severifast is a full-system reproduction of "SEVeriFast:
// Minimizing the root of trust for fast startup of SEV microVMs"
// (ASPLOS 2024).
//
// It models the complete AMD SEV-SNP boot path — PSP launch commands and
// measurement chain, RMP integrity protection, guest memory encryption,
// the SEVeriFast boot verifier, measured direct boot, bzImage/vmlinux
// loading, guest Linux init, and remote attestation — with every data
// transformation executed for real (SHA-256 measurement, AES page
// encryption, LZ4 decompression, ELF loading, report signing) and every
// duration charged to a deterministic virtual clock calibrated against
// the paper's published numbers.
//
// The package offers a small facade over the internal machinery:
//
//	res, err := severifast.Boot(severifast.Config{
//	    Kernel: severifast.KernelAWS,
//	    Level:  severifast.LevelSNP,
//	    Scheme: severifast.SchemeSEVeriFast,
//	    Attest: true,
//	})
//
// Everything the paper's evaluation sweeps — boot scheme, SEV level,
// kernel configuration, compression codec, hashing strategy, huge pages —
// is a Config field. See DESIGN.md for the reproduction methodology and
// EXPERIMENTS.md for paper-vs-measured results.
package severifast

import (
	"crypto/ecdsa"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"github.com/severifast/severifast/internal/attest"
	"github.com/severifast/severifast/internal/bzimage"
	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/firecracker"
	"github.com/severifast/severifast/internal/fleet"
	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/measure"
	"github.com/severifast/severifast/internal/policy"
	"github.com/severifast/severifast/internal/qemu"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/snapshot"
	"github.com/severifast/severifast/internal/telemetry"
	"github.com/severifast/severifast/internal/trace"
	"github.com/severifast/severifast/internal/verifier"
)

// Exported error taxonomy. Every error the facade returns can be
// classified with errors.Is against these sentinels; the original
// internal error stays in the chain for context.
var (
	// ErrUnknownScheme reports a Config.Scheme outside the four boot flows.
	ErrUnknownScheme = errors.New("severifast: unknown scheme")
	// ErrUnknownKernel reports a Config.Kernel outside the paper's presets.
	ErrUnknownKernel = errors.New("severifast: unknown kernel")
	// ErrUnknownCodec reports a Config.Codec other than lz4 or gzip.
	ErrUnknownCodec = errors.New("severifast: unknown codec")
	// ErrMeasurementMismatch reports that measured state diverged from the
	// reference: the boot verifier caught a tampered component, or a launch
	// digest disagreed with its prediction.
	ErrMeasurementMismatch = errors.New("severifast: measurement mismatch")
	// ErrAttestationDenied reports that a relying party (guest owner or
	// key broker) refused the attestation evidence.
	ErrAttestationDenied = errors.New("severifast: attestation denied")
	// ErrDeadlineExceeded reports a boot abandoned because its
	// virtual-time budget ran out (the fleet's per-request deadline).
	ErrDeadlineExceeded = errors.New("severifast: boot deadline exceeded")
	// ErrPolicyDenied reports that the trust-domain policy engine refused
	// an admission — a revoked or expired claim, a TCB below a claimed
	// floor, or an untrusted measurement — whether the refusal came from
	// the fleet's admission gate or the key broker's evaluation.
	ErrPolicyDenied = errors.New("severifast: policy denied")
)

// classifyErr wraps internal failures with the facade's sentinels so
// callers can errors.Is without importing internal packages. The internal
// error remains wrapped for errors.As and message context.
func classifyErr(err error) error {
	if err == nil {
		return nil
	}
	switch {
	case errors.Is(err, ErrMeasurementMismatch), errors.Is(err, ErrAttestationDenied),
		errors.Is(err, ErrDeadlineExceeded), errors.Is(err, ErrPolicyDenied):
		return err // already classified
	case errors.Is(err, verifier.ErrVerification), errors.Is(err, attest.ErrMeasurement),
		errors.Is(err, kbs.ErrMeasurement), errors.Is(err, fleet.ErrDigestMismatch):
		return fmt.Errorf("%w: %w", ErrMeasurementMismatch, err)
	case errors.Is(err, attest.ErrDenied), errors.Is(err, kbs.ErrDenied):
		return fmt.Errorf("%w: %w", ErrAttestationDenied, err)
	case errors.Is(err, policy.ErrDenied):
		return fmt.Errorf("%w: %w", ErrPolicyDenied, err)
	case errors.Is(err, fleet.ErrDeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	case errors.Is(err, kernelgen.ErrUnknownPreset):
		return fmt.Errorf("%w: %w", ErrUnknownKernel, err)
	}
	return err
}

// Kernel selects a guest kernel configuration (paper Fig. 8).
type Kernel string

// The paper's three kernel configurations.
const (
	KernelLupine Kernel = "lupine" // 23M vmlinux, no networking
	KernelAWS    Kernel = "aws"    // 43M vmlinux, Firecracker's microVM config
	KernelUbuntu Kernel = "ubuntu" // 61M vmlinux, distribution-generic
)

// Level selects the SEV feature generation.
type Level string

// SEV levels.
const (
	LevelNone Level = "none"
	LevelSEV  Level = "sev"
	LevelES   Level = "sev-es"
	LevelSNP  Level = "sev-snp"
)

// Scheme selects the boot flow.
type Scheme string

// Boot flows.
const (
	// SchemeStock is unmodified Firecracker direct boot (non-confidential).
	SchemeStock Scheme = "stock"
	// SchemeSEVeriFast is the paper's design: minimal boot verifier,
	// out-of-band hashes, LZ4 bzImage via measured direct boot.
	SchemeSEVeriFast Scheme = "severifast"
	// SchemeSEVeriFastVmlinux boots an uncompressed kernel through the
	// optimized fw_cfg streaming protocol (paper §5).
	SchemeSEVeriFastVmlinux Scheme = "severifast-vmlinux"
	// SchemeQEMUOVMF is the mainstream QEMU + OVMF reference flow.
	SchemeQEMUOVMF Scheme = "qemu-ovmf"
)

// Codec selects the bzImage payload compression for SchemeSEVeriFast
// (paper Fig. 5: LZ4 decompresses ~4x faster than gzip for ~10% more
// bytes to pre-encrypt).
type Codec string

// Supported codecs.
const (
	CodecLZ4  Codec = "lz4"
	CodecGzip Codec = "gzip"
)

// Config describes one microVM boot.
type Config struct {
	Kernel Kernel // default KernelAWS
	Level  Level  // default LevelSNP (LevelNone for SchemeStock)
	Scheme Scheme // default SchemeSEVeriFast

	VCPUs     int // default 1
	MemMiB    int // default 256
	InitrdMiB int // default 16 (the paper's attestation initrd)

	// Codec selects the bzImage compression for SchemeSEVeriFast
	// (CodecLZ4 default, CodecGzip for the Fig. 5 comparison).
	Codec Codec

	// InBandHashing disables the §4.3 out-of-band hash file, putting
	// component hashing back on the critical path.
	InBandHashing bool

	// PreEncryptPageTables flips the Fig. 7 decision for page tables.
	PreEncryptPageTables bool

	// DisableTHP validates guest memory with 4 KiB pvalidate operations
	// instead of 2 MiB (paper §6.1).
	DisableTHP bool

	// HugePageValidation opts into hardware-faithful 2 MiB validation
	// accounting (the paper's huge-page ablation): a huge-page pvalidate
	// only covers blocks that are uniformly unvalidated, so blocks
	// fragmented by launch-updated pages fall back to per-4 KiB
	// instructions and the verifier is charged for the instructions
	// actually issued instead of the flat size/pageSize estimate.
	// Changes virtual-time outputs; ignored with DisableTHP's 4 KiB
	// granularity except for the per-instruction accounting.
	HugePageValidation bool

	// AllowKeySharing relaxes the launch policy so this guest's key can
	// be shared with warm-started clones (paper §6.2/§7). Visible in the
	// measurement and the attestation report.
	AllowKeySharing bool

	// Attest runs remote attestation against an in-process guest owner
	// primed with this configuration's expected digest. Ignored for
	// kernels without networking (Lupine).
	Attest bool

	// VerifierSeed selects the boot verifier build (changing it models a
	// different — possibly malicious — verifier binary).
	VerifierSeed int64

	// Seed fixes the host identity (PSP keys) and jitter; zero means 1.
	Seed int64
}

func (c *Config) fillDefaults() error {
	if c.Kernel == "" {
		c.Kernel = KernelAWS
	}
	if c.Scheme == "" {
		c.Scheme = SchemeSEVeriFast
	}
	if c.Level == "" {
		if c.Scheme == SchemeStock {
			c.Level = LevelNone
		} else {
			c.Level = LevelSNP
		}
	}
	if c.VCPUs == 0 {
		c.VCPUs = 1
	}
	if c.MemMiB == 0 {
		c.MemMiB = 256
	}
	if c.InitrdMiB == 0 {
		c.InitrdMiB = 16
	}
	if c.Codec == "" {
		c.Codec = CodecLZ4
	}
	if c.VerifierSeed == 0 {
		c.VerifierSeed = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	switch c.Scheme {
	case SchemeStock, SchemeSEVeriFast, SchemeSEVeriFastVmlinux, SchemeQEMUOVMF:
	default:
		return fmt.Errorf("%w %q (want stock, severifast, severifast-vmlinux, or qemu-ovmf)", ErrUnknownScheme, c.Scheme)
	}
	switch c.Codec {
	case CodecLZ4, CodecGzip:
	default:
		return fmt.Errorf("%w %q (want lz4 or gzip)", ErrUnknownCodec, c.Codec)
	}
	return nil
}

// Result reports one completed boot.
type Result struct {
	// Phase durations in virtual time (the paper's Fig. 11 decomposition).
	Total            time.Duration
	VMM              time.Duration
	PreEncryption    time.Duration
	Firmware         time.Duration // QEMU/OVMF flow only
	BootVerification time.Duration
	BootstrapLoader  time.Duration
	LinuxBoot        time.Duration
	Attestation      time.Duration
	TotalWithAttest  time.Duration

	// LaunchDigest is the PSP's final measurement (zero for non-SEV).
	LaunchDigest [32]byte

	// Guest-observed facts.
	CPUs        int
	KernelEntry uint64
	InitrdOK    bool

	// SEVMetadataBytes is the per-guest bookkeeping SEV added (§6.3).
	SEVMetadataBytes int

	machine  *kvm.Machine
	host     *Host
	timeline *trace.Timeline
}

// RenderTimeline draws the boot as an ASCII Gantt chart over the boot's
// span tree.
func (r *Result) RenderTimeline(width int) string {
	if r.timeline == nil {
		return "(no timeline)\n"
	}
	return r.timeline.RenderTimeline(width)
}

// Span is one named interval of a boot, in virtual time relative to the
// boot's start. Depth is the nesting level under the "vm.boot" root
// (depth 0); spans arrive in creation order, parents before children.
type Span struct {
	Name     string
	Start    time.Duration
	Duration time.Duration
	Depth    int
	// Attrs carries the span's attributes (vmm, scheme, level, codec,
	// asid, tier, ...). Nil when the span has none.
	Attrs map[string]string
}

// Event is an instantaneous boot milestone (sev.Event), in virtual time
// relative to the boot's start.
type Event struct {
	Name string
	At   time.Duration
}

// Spans returns the boot's span tree: the "vm.boot" root followed by its
// descendants in creation order. Nil for results without telemetry
// (warm restores of pre-telemetry snapshots).
func (r *Result) Spans() []Span {
	if r.timeline == nil {
		return nil
	}
	raw := r.timeline.Spans()
	if len(raw) == 0 {
		return nil
	}
	base := raw[0].Start
	horizon := sim.Time(0)
	if reg := r.timeline.Registry(); reg != nil {
		horizon = reg.Horizon()
	}
	depth := make(map[int]int, len(raw))
	out := make([]Span, 0, len(raw))
	for _, s := range raw {
		d := 0
		if s.Parent != 0 {
			d = depth[s.Parent] + 1
		}
		depth[s.ID] = d
		stop := s.Stop
		if !s.Done {
			stop = horizon
		}
		var attrs map[string]string
		if len(s.Attrs) > 0 {
			attrs = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				attrs[a.Key] = a.Value
			}
		}
		out = append(out, Span{
			Name:     s.Name,
			Start:    s.Start.Sub(base),
			Duration: stop.Sub(s.Start),
			Depth:    d,
			Attrs:    attrs,
		})
	}
	return out
}

// Events returns the boot's instantaneous milestones in order.
func (r *Result) Events() []Event {
	if r.timeline == nil {
		return nil
	}
	raw := r.timeline.TelemetryEvents()
	if len(raw) == 0 {
		return nil
	}
	spans := r.timeline.Spans()
	if len(spans) == 0 {
		return nil
	}
	base := spans[0].Start
	out := make([]Event, 0, len(raw))
	for _, e := range raw {
		out = append(out, Event{Name: e.Name, At: e.At.Sub(base)})
	}
	return out
}

// Host is one virtual physical machine: a single PSP shared by every
// guest booted on it. Boots on the same Host contend exactly as the
// paper's Fig. 12 describes.
type Host struct {
	eng   *sim.Engine
	inner *kvm.Host
	seed  int64
	reg   *telemetry.Registry
}

// NewHost creates a host with the calibrated default cost model.
func NewHost() *Host { return NewHostSeed(1) }

// NewHostSeed creates a host with a deterministic identity. Every host
// carries a virtual-time telemetry registry: boots record span trees,
// the scheduler records queueing, and Telemetry exports the lot.
func NewHostSeed(seed int64) *Host {
	eng := sim.NewEngine()
	reg := telemetry.NewRegistry()
	eng.SetTracer(reg)
	inner := kvm.NewHost(eng, costmodel.Default(), seed)
	inner.Telemetry = reg
	return &Host{eng: eng, inner: inner, seed: seed, reg: reg}
}

// Telemetry is the exporter facade over a host's registry. All
// timestamps are virtual time, so two runs with the same seed produce
// byte-identical output.
type Telemetry struct {
	reg *telemetry.Registry
	rec *telemetry.HostRecorder
}

// Telemetry returns the host's exporter facade.
func (h *Host) Telemetry() *Telemetry {
	return &Telemetry{reg: h.reg, rec: h.inner.HostStats}
}

// WriteChromeTrace writes the full host history as Chrome trace-event
// JSON (load in Perfetto: one track per simulated process, PSP command
// slots on the psp track, instants for sev.Events).
func (t *Telemetry) WriteChromeTrace(w io.Writer) error { return t.reg.WriteChromeTrace(w) }

// WritePrometheus writes all counters, gauges, and series in Prometheus
// text exposition format (durations in seconds).
func (t *Telemetry) WritePrometheus(w io.Writer) error { return t.reg.WritePrometheus(w) }

// WriteJSONSummary writes a machine-readable rollup: span counts by
// name, counters, gauges, and series quantiles.
func (t *Telemetry) WriteJSONSummary(w io.Writer) error { return t.reg.WriteJSONSummary(w) }

// WriteHostStats writes the host-time performance instrumentation in
// Prometheus text format: wall-clock stage timings (e.g. the parallel
// measurement pipeline) and cache counters (artifact digest memo hits,
// CoW page aliasing, fork adoptions, zero-copy range views). Unlike the
// virtual-time exporters above, these measure real CPU work on the
// simulating host and vary run to run; the virtual-time exports stay
// byte-identical for a given seed regardless of what these report.
//
// The stats are scoped to this Host: two hosts in one process never
// interleave counters. (Process-wide artifact interning counters remain
// in the deprecated package-global recorder.)
func (t *Telemetry) WriteHostStats(w io.Writer) error { return t.recorder().Write(w) }

// HostStats returns a snapshot of this host's host-time instrumentation:
// cumulative stage nanoseconds (plus "<stage>.calls" entries) and the
// host-side cache/pool counters.
func (t *Telemetry) HostStats() (stages, counters map[string]int64) {
	return t.recorder().Snapshot()
}

// ResetHostStats zeroes this host's host-time instrumentation, e.g.
// between benchmark iterations.
func (t *Telemetry) ResetHostStats() { t.recorder().Reset() }

func (t *Telemetry) recorder() *telemetry.HostRecorder {
	if t.rec != nil {
		return t.rec
	}
	return telemetry.DefaultHostRecorder
}

// PlatformKey returns the PSP's report-verification key (the VCEK stand-in
// a guest owner verifies attestation reports against).
func (h *Host) PlatformKey() *ecdsa.PublicKey { return h.inner.PSP.VerificationKey() }

// Boot runs one microVM boot to completion on this host.
func (h *Host) Boot(cfg Config) (*Result, error) {
	results, err := h.BootConcurrent(cfg, 1)
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// BootConcurrent launches n identical guests simultaneously, sharing this
// host's PSP. With SEV enabled, launches serialize on the PSP and mean
// boot time grows linearly with n (paper Fig. 12).
//
// Deprecated: use Pool for running many boots of one image. BootConcurrent
// cold boots every guest independently — each pays the full measurement
// pass — where a Pool forks warm boots from one sealed snapshot. It
// remains a thin wrapper over the Pool's cold fan-out mode (virtual-time
// outputs are unchanged) and will stay for at least one release.
func (h *Host) BootConcurrent(cfg Config, n int) ([]*Result, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("severifast: n must be >= 1")
	}
	return newPool(h, cfg, PoolOptions{}).bootFanout(n)
}

func (h *Host) bootOne(p *sim.Proc, cfg Config, preset kernelgen.Preset, level sev.Level, art *kernelgen.Artifacts, initrd []byte) (*Result, error) {
	if cfg.Scheme == SchemeQEMUOVMF {
		qcfg := qemu.Config{
			Preset:    preset,
			Artifacts: art,
			Initrd:    initrd,
			VCPUs:     cfg.VCPUs,
			MemSize:   uint64(cfg.MemMiB) << 20,
			Level:     level,
		}
		if cfg.Attest {
			qcfg.Attestor = h.qemuAttestor(cfg, preset, art, initrd)
		}
		res, err := qemu.Boot(p, h.inner, qcfg)
		if err != nil {
			return nil, classifyErr(err)
		}
		return h.qemuResult(res), nil
	}

	fcfg := firecracker.Config{
		Preset:               preset,
		Artifacts:            art,
		Initrd:               initrd,
		VCPUs:                cfg.VCPUs,
		MemSize:              uint64(cfg.MemMiB) << 20,
		Level:                level,
		Codec:                bzimage.Codec(cfg.Codec),
		PreEncryptPageTables: cfg.PreEncryptPageTables,
		VerifierSeed:         cfg.VerifierSeed,
		AllowKeySharing:      cfg.AllowKeySharing,
	}
	switch cfg.Scheme {
	case SchemeStock:
		fcfg.Scheme = firecracker.SchemeStock
	case SchemeSEVeriFast:
		fcfg.Scheme = firecracker.SchemeSEVeriFastBz
	case SchemeSEVeriFastVmlinux:
		fcfg.Scheme = firecracker.SchemeSEVeriFastVmlinux
	}
	if level.Encrypted() && !cfg.InBandHashing {
		hashes := h.componentHashes(cfg, preset, art, initrd)
		fcfg.Hashes = &hashes
	}
	if cfg.Attest && level.Encrypted() {
		fcfg.Attestor = h.fcAttestor(cfg, preset, art, initrd)
	}
	res, err := firecracker.Boot(p, h.inner, fcfg)
	if err != nil {
		return nil, classifyErr(err)
	}
	return h.fcResult(res), nil
}

func (h *Host) componentHashes(cfg Config, preset kernelgen.Preset, art *kernelgen.Artifacts, initrd []byte) measure.ComponentHashes {
	kernel := art.BzImageLZ4
	switch {
	case cfg.Scheme == SchemeSEVeriFastVmlinux:
		kernel = art.VMLinux
	case cfg.Codec == CodecGzip:
		kernel = art.BzImageGzip
	}
	return measure.HashComponents(kernel, initrd, preset.Cmdline)
}

func (h *Host) fcAttestor(cfg Config, preset kernelgen.Preset, art *kernelgen.Artifacts, initrd []byte) firecracker.Attestor {
	digest, err := expectedDigest(cfg, preset, art, initrd)
	if err != nil {
		return nil
	}
	secret := []byte("secret-" + preset.Name)
	owner := attest.NewOwner(h.PlatformKey(), secret, rand.New(rand.NewSource(h.seed^0xA77)))
	owner.Allow(digest)
	if cfg.AllowKeySharing {
		// The owner knowingly accepts the relaxed policy: key sharing is a
		// deliberate trade-off they opted into, not a silent downgrade.
		pol := sev.DefaultPolicy()
		pol.NoKeySharing = false
		owner.RequirePolicy(pol)
	}
	return &attest.InProcess{Owner: owner, AgentSeed: h.seed, WantSecret: secret}
}

func (h *Host) qemuAttestor(cfg Config, preset kernelgen.Preset, art *kernelgen.Artifacts, initrd []byte) qemu.Attestor {
	hashes := measure.HashComponents(art.BzImageLZ4, initrd, preset.Cmdline)
	level, _ := sev.ParseLevel(string(cfg.Level))
	secret := []byte("secret-" + preset.Name)
	owner := attest.NewOwner(h.PlatformKey(), secret, rand.New(rand.NewSource(h.seed^0xA77)))
	owner.Allow(qemu.ExpectedDigest(1, level, hashes))
	return &attest.InProcess{Owner: owner, AgentSeed: h.seed, WantSecret: secret}
}

func (h *Host) fcResult(res *firecracker.Result) *Result {
	b := res.Breakdown
	out := &Result{
		Total:            b.Total,
		VMM:              b.VMM,
		PreEncryption:    b.PreEncryption,
		Firmware:         b.Firmware,
		BootVerification: b.BootVerification,
		BootstrapLoader:  b.BootstrapLoader,
		LinuxBoot:        b.LinuxBoot,
		Attestation:      b.Attestation,
		TotalWithAttest:  b.TotalWithAttest,
		LaunchDigest:     res.LaunchDigest,
		CPUs:             res.Report.CPUs,
		KernelEntry:      res.Report.Entry,
		InitrdOK:         res.Report.InitrdOK,
		SEVMetadataBytes: res.Machine.Mem.SEVMetadataBytes(),
		machine:          res.Machine,
		host:             h,
		timeline:         res.Timeline,
	}
	return out
}

func (h *Host) qemuResult(res *qemu.Result) *Result {
	b := res.Breakdown
	return &Result{
		Total:            b.Total,
		VMM:              b.VMM,
		PreEncryption:    b.PreEncryption,
		Firmware:         b.Firmware,
		BootVerification: b.BootVerification,
		BootstrapLoader:  b.BootstrapLoader,
		LinuxBoot:        b.LinuxBoot,
		Attestation:      b.Attestation,
		TotalWithAttest:  b.TotalWithAttest,
		LaunchDigest:     res.LaunchDigest,
		CPUs:             res.Report.CPUs,
		KernelEntry:      res.Report.Entry,
		InitrdOK:         res.Report.InitrdOK,
		SEVMetadataBytes: res.Machine.Mem.SEVMetadataBytes(),
		machine:          res.Machine,
		host:             h,
		timeline:         res.Timeline,
	}
}

// Boot runs one boot on a fresh host (the common single-VM entry point).
func Boot(cfg Config) (*Result, error) {
	return NewHostSeed(cfgSeed(cfg)).Boot(cfg)
}

func cfgSeed(cfg Config) int64 {
	if cfg.Seed != 0 {
		return cfg.Seed
	}
	return 1
}

// ExpectedLaunchDigest computes, host-side, the launch digest a correct
// launch of cfg must produce — the paper's §4.2 tool. A guest owner
// compares it against the measurement in the attestation report.
func ExpectedLaunchDigest(cfg Config) ([32]byte, error) {
	if err := cfg.fillDefaults(); err != nil {
		return [32]byte{}, err
	}
	preset, err := kernelgen.PresetByName(string(cfg.Kernel))
	if err != nil {
		return [32]byte{}, err
	}
	art, err := kernelgen.Cached(preset)
	if err != nil {
		return [32]byte{}, err
	}
	initrd := kernelgen.BuildInitrd(cfg.Seed, cfg.InitrdMiB<<20)
	level, err := sev.ParseLevel(string(cfg.Level))
	if err != nil {
		return [32]byte{}, err
	}
	if cfg.Scheme == SchemeQEMUOVMF {
		hashes := measure.HashComponents(art.BzImageLZ4, initrd, preset.Cmdline)
		return qemu.ExpectedDigest(1, level, hashes), nil
	}
	return expectedDigest(cfg, preset, art, initrd)
}

func expectedDigest(cfg Config, preset kernelgen.Preset, art *kernelgen.Artifacts, initrd []byte) ([32]byte, error) {
	level, err := sev.ParseLevel(string(cfg.Level))
	if err != nil {
		return [32]byte{}, err
	}
	kernel := art.BzImageLZ4
	switch {
	case cfg.Scheme == SchemeSEVeriFastVmlinux:
		kernel = art.VMLinux
	case cfg.Codec == CodecGzip:
		kernel = art.BzImageGzip
	}
	pol := sev.DefaultPolicy()
	if level < sev.ES {
		pol.ESRequired = false
	}
	if cfg.AllowKeySharing {
		pol.NoKeySharing = false
	}
	return measure.ExpectedDigest(measure.Config{
		Verifier:             verifier.Image(cfg.VerifierSeed),
		Hashes:               measure.HashComponents(kernel, initrd, preset.Cmdline),
		Cmdline:              preset.Cmdline,
		VCPUs:                cfg.VCPUs,
		MemSize:              uint64(cfg.MemMiB) << 20,
		Level:                level,
		Policy:               pol,
		PreEncryptPageTables: cfg.PreEncryptPageTables,
	})
}

// GuestOwner is the remote-attestation service a tenant runs: it verifies
// reports against a host's platform key and releases a secret to guests
// whose measurement it expects.
type GuestOwner struct {
	inner *attest.Owner
}

// NewGuestOwner creates an owner trusting the given host's PSP and
// releasing secret after successful attestation.
func NewGuestOwner(h *Host, secret []byte) *GuestOwner {
	return &GuestOwner{inner: attest.NewOwner(h.PlatformKey(), secret, rand.New(rand.NewSource(h.seed^0x0EEE)))}
}

// AllowConfig whitelists the launch digest a correct boot of cfg produces.
func (o *GuestOwner) AllowConfig(cfg Config) error {
	d, err := ExpectedLaunchDigest(cfg)
	if err != nil {
		return err
	}
	o.inner.Allow(d)
	return nil
}

// AllowDigest whitelists an explicit digest.
func (o *GuestOwner) AllowDigest(d [32]byte) { o.inner.Allow(d) }

// Handler exposes the owner over HTTP (POST /attest), as in the paper's
// nginx attestation server.
func (o *GuestOwner) Handler() http.Handler { return o.inner.Handler() }

// AttestOverHTTP performs the guest side of remote attestation for a
// booted SEV guest against a guest-owner service at baseURL, returning the
// released secret. This is the Fig. 1 step 5-8 round trip over a real
// socket.
func (r *Result) AttestOverHTTP(baseURL string) ([]byte, error) {
	if r.machine == nil || r.machine.Launch == nil {
		return nil, fmt.Errorf("severifast: guest has no SEV launch context")
	}
	agent := attest.NewAgentSeeded(r.host.seed + int64(r.machine.Launch.ASID()))
	report, err := r.machine.Launch.BuildReport(nil, agent.ReportData())
	if err != nil {
		return nil, err
	}
	bundle, err := attest.Client(baseURL, report.Marshal(), agent.PublicKey())
	if err != nil {
		return nil, err
	}
	return agent.Unwrap(bundle)
}

// Snapshot is a host-taken memory image of a booted guest, used for the
// §7 warm-start experiments. For SEV guests it holds ciphertext.
type Snapshot struct {
	img   *snapshot.Image
	donor *kvm.Machine
}

// Snapshot captures a booted guest's memory from the host side.
func (h *Host) Snapshot(r *Result) (*Snapshot, error) {
	if r.machine == nil {
		return nil, fmt.Errorf("severifast: result carries no machine")
	}
	var img *snapshot.Image
	var err error
	h.eng.Go("snapshot", func(p *sim.Proc) {
		img, err = snapshot.Capture(p, r.machine)
	})
	h.eng.Run()
	if err != nil {
		return nil, err
	}
	return &Snapshot{img: img, donor: r.machine}, nil
}

// WarmBoot starts a new guest from a snapshot instead of cold-booting.
//
// For non-SEV snapshots this is a plain restore. For SEV snapshots the
// new guest must share the donor's encryption key (the donor must have
// been booted with AllowKeySharing; the paper's §6.2 trade-off), pay the
// host-side page replay, and re-validate its memory — but it skips
// pre-encryption, measured direct boot, decompression, and kernel init
// entirely. Total on the returned Result is the restore latency.
func (h *Host) WarmBoot(s *Snapshot) (*Result, error) {
	var res *Result
	var bootErr error
	h.eng.Go("warmboot", func(p *sim.Proc) {
		start := p.Now()
		m := h.inner.NewMachine(p, s.img.Size, s.donor.Level)
		m.Timeline.Annotate("scheme", "warm-restore")
		m.Timeline.Annotate("level", s.donor.Level.String())
		if s.donor.Level.Encrypted() {
			m.PrepSEVHost(p)
			pol := sev.DefaultPolicy()
			pol.NoKeySharing = false
			if s.donor.Level < sev.ES {
				pol.ESRequired = false
			}
			ctx, err := h.inner.PSP.LaunchStartShared(p, m.Mem, s.donor.Launch, s.donor.Level, pol)
			if err != nil {
				bootErr = err
				return
			}
			m.Launch = ctx
		}
		if err := snapshot.Restore(p, m, s.img); err != nil {
			bootErr = err
			return
		}
		if s.donor.Level.Encrypted() {
			// The restored guest re-validates its memory before resuming.
			p.Sleep(h.inner.Model.Pvalidate(len(s.img.Pages)*4096, h.inner.PvalidatePageSize()))
		}
		m.Timeline.Close(p.Now())
		res = &Result{
			Total:    p.Now().Sub(start),
			machine:  m,
			host:     h,
			timeline: m.Timeline,
		}
	})
	h.eng.Run()
	if bootErr != nil {
		return nil, bootErr
	}
	h.reg.Counter("severifast_boots_total", telemetry.A("scheme", "warm-restore")).Inc()
	h.reg.Series("severifast_boot_seconds", telemetry.A("scheme", "warm-restore")).Observe(res.Total)
	return res, nil
}
