package cpio

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sample() []File {
	return []File{
		{Name: "init", Mode: ModeExec, Data: []byte("#!/bin/sh\nexec /bin/attest-agent\n")},
		{Name: "bin", Mode: ModeDir},
		{Name: "bin/attest-agent", Mode: ModeExec, Data: bytes.Repeat([]byte{0x90}, 1000)},
		{Name: "etc/owner.pub", Mode: ModeFile, Data: []byte("-----BEGIN PUBLIC KEY-----")},
	}
}

func TestRoundTrip(t *testing.T) {
	in := sample()
	archive := Build(in)
	out, err := Parse(archive)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d members, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Name != in[i].Name {
			t.Errorf("member %d name %q, want %q", i, out[i].Name, in[i].Name)
		}
		if out[i].Mode != in[i].Mode {
			t.Errorf("member %d mode %o, want %o", i, out[i].Mode, in[i].Mode)
		}
		if !bytes.Equal(out[i].Data, in[i].Data) {
			t.Errorf("member %d data mismatch", i)
		}
	}
}

func TestDeterministicOutput(t *testing.T) {
	a := Build(sample())
	b := Build(sample())
	if !bytes.Equal(a, b) {
		t.Fatal("identical input produced different archives; initrd hashes must be reproducible")
	}
}

func TestEmptyArchive(t *testing.T) {
	archive := Build(nil)
	out, err := Parse(archive)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("empty archive parsed to %d members", len(out))
	}
}

func TestAlignment(t *testing.T) {
	// Odd-sized names and data must not corrupt subsequent entries.
	files := []File{
		{Name: "a", Mode: ModeFile, Data: []byte{1}},
		{Name: "bb", Mode: ModeFile, Data: []byte{1, 2}},
		{Name: "ccc", Mode: ModeFile, Data: []byte{1, 2, 3}},
		{Name: "dddd", Mode: ModeFile, Data: []byte{1, 2, 3, 4}},
	}
	out, err := Parse(Build(files))
	if err != nil {
		t.Fatal(err)
	}
	for i := range files {
		if out[i].Name != files[i].Name || !bytes.Equal(out[i].Data, files[i].Data) {
			t.Fatalf("member %d corrupted by alignment handling", i)
		}
	}
}

func TestParseRejectsBadMagic(t *testing.T) {
	archive := Build(sample())
	archive[0] = 'X'
	if _, err := Parse(archive); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestParseRejectsTruncated(t *testing.T) {
	archive := Build(sample())
	for _, cut := range []int{10, 50, 111, len(archive) / 2} {
		if _, err := Parse(archive[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestParseRejectsBadHexField(t *testing.T) {
	archive := Build(sample())
	copy(archive[6:], "ZZZZZZZZ") // corrupt c_ino field of first header
	if _, err := Parse(archive); err == nil {
		t.Fatal("non-hex header field accepted")
	}
}

func TestLookup(t *testing.T) {
	files := sample()
	if f := Lookup(files, "bin/attest-agent"); f == nil || f.Mode != ModeExec {
		t.Fatal("Lookup failed to find member")
	}
	if Lookup(files, "missing") != nil {
		t.Fatal("Lookup invented a member")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names(sample())
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatal("Names not sorted")
		}
	}
}

func TestQuickRoundTripArbitraryData(t *testing.T) {
	f := func(data []byte, nameSeed uint8) bool {
		name := "f" + string(rune('a'+nameSeed%26))
		files := []File{{Name: name, Mode: ModeFile, Data: data}}
		out, err := Parse(Build(files))
		return err == nil && len(out) == 1 && out[0].Name == name && bytes.Equal(out[0].Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryNlink(t *testing.T) {
	files := []File{{Name: "usr", Mode: ModeDir}}
	out, err := Parse(Build(files))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Mode&0o170000 != 0o040000 {
		t.Fatal("directory mode lost")
	}
}
