// Package cpio reads and writes the SVR4 "newc" (070701) cpio archive
// format — the format of Linux initrd/initramfs images. The SEVeriFast
// initrd carries the attestation agent and is built and unpacked with this
// package.
package cpio

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
)

const (
	magic   = "070701"
	trailer = "TRAILER!!!"
	// Mode bits, matching the relevant POSIX file-type values.
	ModeDir  = 0o040755
	ModeFile = 0o100644
	ModeExec = 0o100755
)

// ErrCorrupt reports a malformed archive.
var ErrCorrupt = errors.New("cpio: corrupt archive")

// File is one archive member.
type File struct {
	Name string
	Mode uint32
	Data []byte
}

// Build serializes files into a newc archive. Entries are emitted in the
// order given; inode numbers are assigned sequentially, so identical input
// yields identical output bytes (the initrd must hash reproducibly).
func Build(files []File) []byte {
	var buf bytes.Buffer
	for i, f := range files {
		writeEntry(&buf, uint32(i+1), f)
	}
	writeEntry(&buf, 0, File{Name: trailer})
	return buf.Bytes()
}

func writeEntry(buf *bytes.Buffer, ino uint32, f File) {
	name := f.Name + "\x00"
	nlink := 1
	if f.Mode&0o170000 == 0o040000 {
		nlink = 2
	}
	fmt.Fprintf(buf, "%s%08X%08X%08X%08X%08X%08X%08X%08X%08X%08X%08X%08X%08X",
		magic,
		ino,         // c_ino
		f.Mode,      // c_mode
		0,           // c_uid
		0,           // c_gid
		nlink,       // c_nlink
		0,           // c_mtime (zero for reproducibility)
		len(f.Data), // c_filesize
		0, 0, 0, 0,  // c_devmajor, c_devminor, c_rdevmajor, c_rdevminor
		len(name), // c_namesize
		0)         // c_check (0 for newc)
	buf.WriteString(name)
	pad4(buf)
	buf.Write(f.Data)
	pad4(buf)
}

func pad4(buf *bytes.Buffer) {
	for buf.Len()%4 != 0 {
		buf.WriteByte(0)
	}
}

// Parse reads a newc archive and returns its members, excluding the
// trailer.
func Parse(archive []byte) ([]File, error) {
	var files []File
	off := 0
	for {
		if off+110 > len(archive) {
			return nil, fmt.Errorf("%w: truncated header at offset %d", ErrCorrupt, off)
		}
		hdr := archive[off : off+110]
		if string(hdr[:6]) != magic {
			return nil, fmt.Errorf("%w: bad magic %q at offset %d", ErrCorrupt, hdr[:6], off)
		}
		// All 13 fields must be valid hex, even the ones we do not use.
		var fields [13]uint64
		for i := range fields {
			v, err := strconv.ParseUint(string(hdr[6+8*i:6+8*i+8]), 16, 32)
			if err != nil {
				return nil, fmt.Errorf("%w: bad header field %d: %w", ErrCorrupt, i, err)
			}
			fields[i] = v
		}
		mode, fileSize, nameSize := fields[1], fields[6], fields[11]
		off += 110
		if nameSize == 0 || off+int(nameSize) > len(archive) {
			return nil, fmt.Errorf("%w: bad name size %d", ErrCorrupt, nameSize)
		}
		name := string(archive[off : off+int(nameSize)-1]) // strip NUL
		off += int(nameSize)
		off = align4(off)
		if name == trailer {
			return files, nil
		}
		if off+int(fileSize) > len(archive) {
			return nil, fmt.Errorf("%w: file %q data overruns archive", ErrCorrupt, name)
		}
		data := make([]byte, fileSize)
		copy(data, archive[off:off+int(fileSize)])
		off += int(fileSize)
		off = align4(off)
		files = append(files, File{Name: name, Mode: uint32(mode), Data: data})
	}
}

func align4(n int) int { return (n + 3) &^ 3 }

// Lookup returns the member with the given name, or nil.
func Lookup(files []File, name string) *File {
	for i := range files {
		if files[i].Name == name {
			return &files[i]
		}
	}
	return nil
}

// Names returns the member names in sorted order (handy for assertions).
func Names(files []File) []string {
	out := make([]string, len(files))
	for i, f := range files {
		out[i] = f.Name
	}
	sort.Strings(out)
	return out
}
