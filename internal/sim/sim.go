// Package sim implements a deterministic discrete-event simulation kernel.
//
// The SEVeriFast reproduction separates *what happens* from *how long it
// takes*: data transformations (hashing, encryption, decompression, memory
// writes) are executed for real on real bytes, while durations are charged
// against a virtual clock owned by an Engine. The engine advances time by
// dispatching events in (time, sequence) order, so a run is reproducible
// bit-for-bit regardless of host scheduling.
//
// Model code is written as straight-line process functions (see Engine.Go)
// that sleep on the virtual clock and queue on shared resources. Exactly one
// process runs at a time; the engine and the running process hand control
// back and forth over unbuffered channels, so there is no data race between
// processes even though they share model state.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It deliberately mirrors time.Duration's resolution so cost
// models can be written with time.Duration literals.
type Time int64

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// Add returns t shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to the duration elapsed since time zero.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64
	fire func()
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Tracer observes scheduler-level intervals: resource queue waits,
// resource service periods, and parked (not-runnable) gaps. The engine
// holds at most one tracer; internal/telemetry's Registry implements
// this interface, keeping the dependency one-way (telemetry imports
// sim, never the reverse).
type Tracer interface {
	// TraceWait is called after a process waited for a resource slot.
	TraceWait(proc, resource string, from, to Time)
	// TraceService is called after a process held a resource slot via
	// Use/UseLabeled; label is the command name ("" when unlabeled).
	TraceService(proc, resource, label string, from, to Time)
	// TraceIdle is called after a Park/Wake gap.
	TraceIdle(proc string, from, to Time)
}

// Engine owns the virtual clock and the event queue.
//
// The zero value is not usable; call NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap

	procs int // live (started, unfinished) processes

	tracer Tracer // optional scheduler observer

	panicked interface{} // first panic captured from a process
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// SetTracer installs t as the engine's scheduler observer (nil clears
// it). Call before Run; the tracer sees waits, service periods, and
// park gaps as they complete.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// At schedules fn to run at virtual time t. Scheduling in the past (or at
// the present instant) fires the event at the current time, after already-
// queued events for that time.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fire: fn})
}

// After schedules fn to run d from now.
func (e *Engine) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// Run dispatches events until the queue is empty. It panics if a process
// panicked, propagating the original panic value, or if processes remain
// parked with no event that could ever wake them (a deadlock in the model).
func (e *Engine) Run() {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.at > e.now {
			e.now = ev.at
		}
		ev.fire()
		if e.panicked != nil {
			panic(e.panicked)
		}
	}
	if e.procs > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) parked with an empty event queue", e.procs))
	}
}

// Proc is the handle a process function uses to interact with virtual time.
// A Proc is only valid inside the process function it was passed to.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{} // engine -> process: run
	yield  chan struct{} // process -> engine: parked or done
	done   bool
}

// Name returns the process name given to Engine.Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs under.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Go starts fn as a simulation process at the current virtual time.
//
// The process body runs on its own goroutine but never concurrently with
// the engine or with any other process: control transfers are strict
// rendezvous. fn may freely read and write model state shared with other
// processes.
func (e *Engine) Go(name string, fn func(p *Proc)) {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.procs++
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if e.panicked == nil {
					e.panicked = r
				}
			}
			p.done = true
			e.procs--
			p.yield <- struct{}{}
		}()
		fn(p)
	}()
	// First activation happens via the event queue so that processes
	// started at the same instant run in start order.
	e.At(e.now, func() { p.step() })
}

// step transfers control to the process and waits for it to park or finish.
// It must only be called from engine context (inside an event callback).
func (p *Proc) step() {
	p.resume <- struct{}{}
	<-p.yield
}

// park suspends the process until some event calls step again. It must only
// be called from process context.
func (p *Proc) park() {
	p.yield <- struct{}{}
	<-p.resume
}

// Sleep advances the process by d of virtual time. Negative durations are
// treated as zero.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.At(p.eng.now.Add(d), func() { p.step() })
	p.park()
}

// Yield reschedules the process at the current instant, letting other
// events and processes queued for this time run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Wait parks the process until wake is called (from engine or another
// process's context via an event). It returns the virtual time at wakeup.
func (p *Proc) waitParked() Time {
	p.park()
	return p.eng.now
}

// Park suspends the process until another process (or an event callback)
// wakes it with Engine.Wake. It returns the virtual time at wakeup. Park
// and Wake are the building blocks for schedulers layered on top of the
// engine (see internal/fleet's worker pool): the parking process must
// arrange for some other live process to hold a reference to it, or the
// engine will report a deadlock.
func (p *Proc) Park() Time {
	from := p.eng.now
	at := p.waitParked()
	if t := p.eng.tracer; t != nil {
		t.TraceIdle(p.name, from, at)
	}
	return at
}

// Wake schedules a process parked via Park to resume at the current
// instant, after already-queued events for this time. Waking a process
// that is not parked corrupts the engine-process rendezvous; callers must
// track parked processes themselves (remove p from their wait list before
// calling Wake, and never wake the same parked process twice).
func (e *Engine) Wake(p *Proc) {
	e.At(e.now, func() { p.step() })
}

// Signal is a one-shot broadcast synchronization point: processes Wait on
// it; Fire releases all current and future waiters.
type Signal struct {
	fired   bool
	waiters []*Proc
}

// NewSignal returns an unfired signal.
func NewSignal() *Signal { return &Signal{} }

// Fired reports whether Fire has been called.
func (s *Signal) Fired() bool { return s.fired }

// Fire releases all waiters at the current virtual time. Firing twice is a
// no-op.
func (s *Signal) Fire(e *Engine) {
	if s.fired {
		return
	}
	s.fired = true
	for _, w := range s.waiters {
		w := w
		e.At(e.now, func() { w.step() })
	}
	s.waiters = nil
}

// Wait blocks p until the signal fires. If it already fired, Wait returns
// immediately without yielding.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.waitParked()
}

// Join waits for n processes to call Done, like a sync.WaitGroup in virtual
// time.
type Join struct {
	remaining int
	sig       *Signal
}

// NewJoin returns a Join waiting for n completions.
func NewJoin(n int) *Join {
	j := &Join{remaining: n, sig: NewSignal()}
	return j
}

// Done records one completion; the n-th completion releases waiters.
func (j *Join) Done(e *Engine) {
	if j.remaining <= 0 {
		panic("sim: Join.Done called more times than NewJoin count")
	}
	j.remaining--
	if j.remaining == 0 {
		j.sig.Fire(e)
	}
}

// Wait blocks p until all completions have been recorded.
func (j *Join) Wait(p *Proc) { j.sig.Wait(p) }
