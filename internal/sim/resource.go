package sim

import "time"

// Resource is a FIFO server with a fixed number of service slots. It models
// contended hardware: the SEVeriFast reproduction uses a capacity-1 Resource
// for the Platform Security Processor, which serializes launch commands
// across all concurrently booting guests (the paper's Fig. 12 bottleneck).
type Resource struct {
	name     string
	capacity int
	inUse    int
	queue    []*Proc

	// Accounting, for experiments that want utilization numbers.
	busy      time.Duration // total slot-busy time accumulated
	lastStamp Time
	served    uint64
	maxQueue  int
}

// NewResource returns a resource with the given number of service slots.
// Capacity must be at least 1.
func NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{name: name, capacity: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Rename changes the resource's name. Multi-host models rename otherwise
// identical resources ("psp" → "psp-h3") so tracer output and telemetry
// tracks stay per-instance. Rename before the first Acquire; renaming a
// resource with recorded history splits its trace across two tracks.
func (r *Resource) Rename(name string) { r.name = name }

// QueueLen returns the number of processes currently waiting for a slot —
// an instantaneous congestion signal (contrast MaxQueue, the high-water
// mark). Cluster schedulers read it as a per-host pressure input.
func (r *Resource) QueueLen() int { return len(r.queue) }

// InUse returns the number of slots currently occupied.
func (r *Resource) InUse() int { return r.inUse }

// Served returns the number of completed service periods.
func (r *Resource) Served() uint64 { return r.served }

// MaxQueue returns the maximum number of processes ever waiting.
func (r *Resource) MaxQueue() int { return r.maxQueue }

// BusyTime returns total accumulated slot-busy virtual time.
func (r *Resource) BusyTime() time.Duration { return r.busy }

// Acquire blocks p until a slot is free, in FIFO order. The caller must
// pair it with Release.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.take(p.eng)
		return
	}
	r.queue = append(r.queue, p)
	if len(r.queue) > r.maxQueue {
		r.maxQueue = len(r.queue)
	}
	from := p.eng.now
	p.waitParked()
	// Woken by Release, which already accounted the slot to us.
	if t := p.eng.tracer; t != nil {
		t.TraceWait(p.name, r.name, from, p.eng.now)
	}
}

// account folds slot-busy time accumulated since the last state change into
// the busy integral. Call before every change to inUse.
func (r *Resource) account(e *Engine) {
	r.busy += time.Duration(r.inUse) * e.now.Sub(r.lastStamp)
	r.lastStamp = e.now
}

func (r *Resource) take(e *Engine) {
	r.account(e)
	r.inUse++
}

// Release frees a slot and hands it to the longest-waiting process, if any.
func (r *Resource) Release(e *Engine) {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource " + r.name)
	}
	r.account(e)
	r.inUse--
	r.served++
	if len(r.queue) > 0 && r.inUse < r.capacity {
		next := r.queue[0]
		r.queue = r.queue[1:]
		r.take(e)
		e.At(e.now, func() { next.step() })
	}
}

// Use acquires a slot, holds it for d of virtual time, and releases it.
// This is the common "submit one command to the device" pattern.
func (r *Resource) Use(p *Proc, d time.Duration) { r.UseLabeled(p, d, "") }

// UseLabeled is Use with a command label for the scheduler tracer: the
// service period is reported under that name on the resource's track
// (PSP launch commands use this, so a trace shows LAUNCH_UPDATE_DATA
// serialization explicitly).
func (r *Resource) UseLabeled(p *Proc, d time.Duration, label string) {
	r.Acquire(p)
	from := p.eng.now
	p.Sleep(d)
	r.Release(p.eng)
	if t := p.eng.tracer; t != nil {
		t.TraceService(p.name, r.name, label, from, p.eng.now)
	}
}
