package sim

import (
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.After(5*time.Millisecond, func() { fired = e.Now() })
	e.Run()
	if fired != Time(5*time.Millisecond) {
		t.Fatalf("fired at %v, want 5ms", fired)
	}
	if e.Now() != Time(5*time.Millisecond) {
		t.Fatalf("final clock %v, want 5ms", e.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(3*time.Second, func() { order = append(order, 3) })
	e.After(1*time.Second, func() { order = append(order, 1) })
	e.After(2*time.Second, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	e := NewEngine()
	var at Time
	e.After(time.Second, func() {
		e.At(0, func() { at = e.Now() })
	})
	e.Run()
	if at != Time(time.Second) {
		t.Fatalf("past event fired at %v, want 1s", at)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var marks []Time
	e.Go("p", func(p *Proc) {
		marks = append(marks, p.Now())
		p.Sleep(10 * time.Millisecond)
		marks = append(marks, p.Now())
		p.Sleep(20 * time.Millisecond)
		marks = append(marks, p.Now())
	})
	e.Run()
	want := []Time{0, Time(10 * time.Millisecond), Time(30 * time.Millisecond)}
	if len(marks) != len(want) {
		t.Fatalf("marks = %v", marks)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestProcNegativeSleepIsZero(t *testing.T) {
	e := NewEngine()
	e.Go("p", func(p *Proc) {
		p.Sleep(-time.Second)
		if p.Now() != 0 {
			t.Errorf("negative sleep advanced clock to %v", p.Now())
		}
	})
	e.Run()
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a0")
		p.Sleep(2 * time.Millisecond)
		order = append(order, "a2")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b0")
		p.Sleep(1 * time.Millisecond)
		order = append(order, "b1")
		p.Sleep(2 * time.Millisecond)
		order = append(order, "b3")
	})
	e.Run()
	want := []string{"a0", "b0", "b1", "a2", "b3"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Go("boom", func(p *Proc) { panic("boom!") })
	defer func() {
		r := recover()
		if r != "boom!" {
			t.Fatalf("recovered %v, want boom!", r)
		}
	}()
	e.Run()
	t.Fatal("Run returned without panicking")
}

func TestResourceSerializesCapacityOne(t *testing.T) {
	e := NewEngine()
	r := NewResource("psp", 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		e.Go("p", func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	want := []Time{Time(10 * time.Millisecond), Time(20 * time.Millisecond), Time(30 * time.Millisecond)}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
	if r.Served() != 3 {
		t.Fatalf("Served = %d, want 3", r.Served())
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEngine()
	r := NewResource("dev", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			r.Use(p, time.Millisecond)
			order = append(order, i)
		})
	}
	e.Run()
	for i := 0; i < 5; i++ {
		if order[i] != i {
			t.Fatalf("order = %v, want FIFO by arrival", order)
		}
	}
}

func TestResourceCapacityTwoOverlaps(t *testing.T) {
	e := NewEngine()
	r := NewResource("dev", 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		e.Go("p", func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			finish = append(finish, p.Now())
		})
	}
	e.Run()
	// Pairs complete together: 10ms, 10ms, 20ms, 20ms.
	want := []Time{Time(10 * time.Millisecond), Time(10 * time.Millisecond), Time(20 * time.Millisecond), Time(20 * time.Millisecond)}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceBusyTime(t *testing.T) {
	e := NewEngine()
	r := NewResource("dev", 1)
	for i := 0; i < 3; i++ {
		e.Go("p", func(p *Proc) { r.Use(p, 5*time.Millisecond) })
	}
	e.Run()
	if r.BusyTime() != 15*time.Millisecond {
		t.Fatalf("BusyTime = %v, want 15ms", r.BusyTime())
	}
}

func TestResourceMaxQueue(t *testing.T) {
	e := NewEngine()
	r := NewResource("dev", 1)
	for i := 0; i < 4; i++ {
		e.Go("p", func(p *Proc) { r.Use(p, time.Millisecond) })
	}
	e.Run()
	if r.MaxQueue() != 3 {
		t.Fatalf("MaxQueue = %d, want 3", r.MaxQueue())
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource("dev", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release of idle resource did not panic")
		}
	}()
	r.Release(e)
}

func TestSignalReleasesAllWaiters(t *testing.T) {
	e := NewEngine()
	s := NewSignal()
	var woke []Time
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) {
			s.Wait(p)
			woke = append(woke, p.Now())
		})
	}
	e.Go("firer", func(p *Proc) {
		p.Sleep(7 * time.Millisecond)
		s.Fire(e)
	})
	e.Run()
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(woke))
	}
	for _, w := range woke {
		if w != Time(7*time.Millisecond) {
			t.Fatalf("waiter woke at %v, want 7ms", w)
		}
	}
}

func TestSignalWaitAfterFireReturnsImmediately(t *testing.T) {
	e := NewEngine()
	s := NewSignal()
	e.Go("p", func(p *Proc) {
		s.Fire(e)
		before := p.Now()
		s.Wait(p)
		if p.Now() != before {
			t.Error("Wait after Fire advanced time")
		}
	})
	e.Run()
}

func TestJoinWaitsForAll(t *testing.T) {
	e := NewEngine()
	j := NewJoin(3)
	var doneAt Time
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * time.Millisecond
		e.Go("worker", func(p *Proc) {
			p.Sleep(d)
			j.Done(e)
		})
	}
	e.Go("waiter", func(p *Proc) {
		j.Wait(p)
		doneAt = p.Now()
	})
	e.Run()
	if doneAt != Time(3*time.Millisecond) {
		t.Fatalf("join released at %v, want 3ms", doneAt)
	}
}

func TestJoinTooManyDonePanics(t *testing.T) {
	e := NewEngine()
	j := NewJoin(1)
	j.Done(e)
	defer func() {
		if recover() == nil {
			t.Fatal("extra Done did not panic")
		}
	}()
	j.Done(e)
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	s := NewSignal()
	e.Go("stuck", func(p *Proc) { s.Wait(p) })
	defer func() {
		if recover() == nil {
			t.Fatal("deadlocked run did not panic")
		}
	}()
	e.Run()
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		r := NewResource("psp", 1)
		var finish []Time
		for i := 0; i < 20; i++ {
			d := time.Duration(i%5+1) * time.Millisecond
			e.Go("p", func(p *Proc) {
				p.Sleep(d)
				r.Use(p, 2*time.Millisecond)
				finish = append(finish, p.Now())
			})
		}
		e.Run()
		return finish
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimeStringAndArithmetic(t *testing.T) {
	tm := Time(0).Add(1500 * time.Millisecond)
	if tm.Duration() != 1500*time.Millisecond {
		t.Fatalf("Duration = %v", tm.Duration())
	}
	if tm.Sub(Time(500*time.Millisecond)) != time.Second {
		t.Fatalf("Sub wrong")
	}
	if tm.String() != "1.5s" {
		t.Fatalf("String = %q", tm.String())
	}
}

func TestYieldRunsOthersFirst(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a-before")
		p.Yield()
		order = append(order, "a-after")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b")
	})
	e.Run()
	want := []string{"a-before", "b", "a-after"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineReusableAcrossRuns(t *testing.T) {
	// Hosts boot guests serially by scheduling more work after Run drains
	// (the public API relies on this).
	e := NewEngine()
	var order []int
	e.Go("first", func(p *Proc) {
		p.Sleep(time.Millisecond)
		order = append(order, 1)
	})
	e.Run()
	e.Go("second", func(p *Proc) {
		p.Sleep(time.Millisecond)
		order = append(order, 2)
	})
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
	// The clock keeps advancing monotonically across runs.
	if e.Now() != Time(2*time.Millisecond) {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestNestedProcessSpawn(t *testing.T) {
	e := NewEngine()
	var done []string
	e.Go("parent", func(p *Proc) {
		p.Sleep(time.Millisecond)
		p.Engine().Go("child", func(c *Proc) {
			c.Sleep(time.Millisecond)
			done = append(done, "child@"+c.Now().String())
		})
		done = append(done, "parent@"+p.Now().String())
	})
	e.Run()
	if len(done) != 2 || done[0] != "parent@1ms" || done[1] != "child@2ms" {
		t.Fatalf("done = %v", done)
	}
}
