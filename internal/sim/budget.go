package sim

import "time"

// Budget is a virtual-time allowance anchored at a start instant: work
// that begins at Start must conclude by Start+Limit. It is the unit the
// fleet's per-boot deadline is charged in — entirely virtual, so a
// budgeted run is as reproducible as an unbudgeted one. A non-positive
// Limit means unlimited.
type Budget struct {
	Start Time
	Limit time.Duration
}

// Unlimited reports whether the budget never expires.
func (b Budget) Unlimited() bool { return b.Limit <= 0 }

// Deadline returns the instant the budget expires. Only meaningful when
// the budget is limited.
func (b Budget) Deadline() Time { return b.Start.Add(b.Limit) }

// Exceeded reports whether the budget has run out as of now.
func (b Budget) Exceeded(now Time) bool {
	return !b.Unlimited() && now >= b.Deadline()
}

// Remaining returns the virtual time left before the deadline, clamped
// at zero. Unlimited budgets report the maximum duration.
func (b Budget) Remaining(now Time) time.Duration {
	if b.Unlimited() {
		return time.Duration(1<<63 - 1)
	}
	if r := b.Deadline().Sub(now); r > 0 {
		return r
	}
	return 0
}
