package trace

import (
	"strings"
	"testing"
	"time"

	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
)

func ms(n int64) sim.Time { return sim.Time(time.Duration(n) * time.Millisecond) }

func sampleTimeline() *Timeline {
	t := New(ms(100)) // VMM exec at t=100ms
	t.Begin("preenc", ms(102))
	t.End("preenc", ms(110))
	t.Record(ms(112), sev.EvGuestEntry)
	t.Record(ms(112), sev.EvVerifierStart)
	t.Record(ms(137), sev.EvVerifierDone)
	t.Record(ms(137), sev.EvBootstrapStart)
	t.Record(ms(150), sev.EvKernelEntry)
	t.Record(ms(225), sev.EvInitExec)
	t.Record(ms(225), sev.EvAttestStart)
	t.Record(ms(425), sev.EvAttestDone)
	return t
}

func TestBreakdown(t *testing.T) {
	b := sampleTimeline().Breakdown()
	check := func(name string, got, want time.Duration) {
		t.Helper()
		if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("VMM", b.VMM, 12*time.Millisecond)
	check("PreEncryption", b.PreEncryption, 8*time.Millisecond)
	check("BootVerification", b.BootVerification, 25*time.Millisecond)
	check("BootstrapLoader", b.BootstrapLoader, 13*time.Millisecond)
	check("LinuxBoot", b.LinuxBoot, 75*time.Millisecond)
	check("Total", b.Total, 125*time.Millisecond)
	check("Attestation", b.Attestation, 200*time.Millisecond)
	check("TotalWithAttest", b.TotalWithAttest, 325*time.Millisecond)
}

func TestBreakdownPartsSumToTotal(t *testing.T) {
	b := sampleTimeline().Breakdown()
	sum := b.VMM + b.BootVerification + b.BootstrapLoader + b.LinuxBoot
	if sum != b.Total {
		t.Fatalf("parts sum %v != total %v", sum, b.Total)
	}
}

func TestMissingEventsYieldZeroSpans(t *testing.T) {
	tl := New(0)
	tl.Record(ms(10), sev.EvGuestEntry)
	b := tl.Breakdown()
	if b.BootVerification != 0 || b.LinuxBoot != 0 || b.Total != 0 {
		t.Fatalf("missing events produced nonzero spans: %+v", b)
	}
	if b.VMM != 10*time.Millisecond {
		t.Fatalf("VMM = %v", b.VMM)
	}
}

func TestFirmwareSpan(t *testing.T) {
	tl := New(0)
	tl.Record(ms(300), sev.EvGuestEntry)
	tl.Record(ms(300), sev.EvFirmwareSEC)
	tl.Record(ms(350), sev.EvFirmwarePEI)
	tl.Record(ms(800), sev.EvFirmwareDXE)
	tl.Record(ms(3000), sev.EvFirmwareBDS)
	tl.Record(ms(3400), sev.EvVerifierStart)
	tl.Record(ms(3430), sev.EvVerifierDone)
	b := tl.Breakdown()
	if b.Firmware != 3130*time.Millisecond {
		t.Fatalf("Firmware = %v, want 3.13s", b.Firmware)
	}
}

func TestEndUnopenedSpanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("End of unopened span did not panic")
		}
	}()
	New(0).End("nope", ms(1))
}

func TestSpanAccumulates(t *testing.T) {
	tl := New(0)
	tl.Begin("preenc", ms(0))
	tl.End("preenc", ms(3))
	tl.Begin("preenc", ms(10))
	tl.End("preenc", ms(15))
	if tl.Span("preenc") != 8*time.Millisecond {
		t.Fatalf("accumulated span = %v", tl.Span("preenc"))
	}
}

func TestBreakdownString(t *testing.T) {
	s := sampleTimeline().Breakdown().String()
	for _, want := range []string{"VMM", "verify", "linux", "attest"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestSeriesStats(t *testing.T) {
	s := Series{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if s.Mean() != 20*time.Millisecond {
		t.Fatalf("mean = %v", s.Mean())
	}
	if sd := s.Stddev(); sd < 8*time.Millisecond || sd > 9*time.Millisecond {
		t.Fatalf("stddev = %v, want ~8.16ms", sd)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Stddev() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty series should give zeros")
	}
	if len(s.CDF()) != 0 {
		t.Fatal("empty CDF should be empty")
	}
}

func TestPercentile(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s = append(s, time.Duration(i)*time.Millisecond)
	}
	if s.Percentile(50) != 50*time.Millisecond {
		t.Fatalf("p50 = %v", s.Percentile(50))
	}
	if s.Percentile(0) != time.Millisecond {
		t.Fatalf("p0 = %v", s.Percentile(0))
	}
	if s.Percentile(100) != 100*time.Millisecond {
		t.Fatalf("p100 = %v", s.Percentile(100))
	}
	if s.Percentile(99) != 99*time.Millisecond {
		t.Fatalf("p99 = %v", s.Percentile(99))
	}
}

func TestCDFMonotone(t *testing.T) {
	s := Series{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}
	cdf := s.CDF()
	if len(cdf) != 3 {
		t.Fatalf("%d points", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Fatalf("CDF not monotone: %+v", cdf)
		}
	}
	if cdf[len(cdf)-1].Fraction != 1.0 {
		t.Fatalf("CDF does not reach 1: %+v", cdf)
	}
}

func TestRenderTimeline(t *testing.T) {
	out := sampleTimeline().RenderTimeline(80)
	for _, want := range []string{"boot timeline", "vmm", "kernel entry", "█"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTimelineEmpty(t *testing.T) {
	if out := New(0).RenderTimeline(80); !strings.Contains(out, "no events") {
		t.Fatalf("empty render: %q", out)
	}
}

func TestRenderCDF(t *testing.T) {
	s := Series{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond, 40 * time.Millisecond}
	out := RenderCDF("boot", s, 40)
	for _, want := range []string{"p50", "p99", "▌"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CDF render missing %q:\n%s", want, out)
		}
	}
	if RenderCDF("empty", nil, 40) != "empty: (no samples)\n" {
		t.Fatal("empty CDF render")
	}
}
