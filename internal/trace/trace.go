// Package trace records boot timelines the way the paper measures them
// (§6.1 Testing Methodology): guest stages emit timing events through the
// debug-port device / GHCB MSR writes, the VMM stamps them with the
// (virtual) clock, and the breakdown splits total boot time into the four
// parts reported in Fig. 11 — VMM, Boot Verification, Bootstrap Loader,
// and Linux Boot — plus pre-encryption and attestation spans.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/telemetry"
)

// Event is one stamped timing event.
type Event struct {
	At sim.Time
	Ev sev.TimingEvent
}

// RootSpan is the name of the span a scoped timeline opens for the
// whole boot; everything the boot does nests under it.
const RootSpan = "vm.boot"

// Timeline collects events and named spans for one boot. A timeline
// built with NewScoped is additionally a *span scope* over a telemetry
// registry: Begin/End become nested spans on the boot's track, Record
// also emits instant events, and the whole boot lives under one
// RootSpan span that Close ends. New (unscoped) timelines keep the
// original standalone behaviour.
type Timeline struct {
	Start  sim.Time
	events []Event
	spans  map[string]time.Duration
	open   map[string]sim.Time

	reg       *telemetry.Registry
	track     string
	root      *telemetry.Span
	openSpans map[string]*telemetry.Span
}

// New returns a timeline whose zero point is the VMM exec time.
func New(start sim.Time) *Timeline {
	return NewScoped(nil, "", start)
}

// NewScoped returns a timeline that mirrors everything it records into
// reg on the given track (normally the booting proc's name). A nil reg
// degrades to New.
func NewScoped(reg *telemetry.Registry, track string, start sim.Time) *Timeline {
	t := &Timeline{
		Start:     start,
		spans:     make(map[string]time.Duration),
		open:      make(map[string]sim.Time),
		openSpans: make(map[string]*telemetry.Span),
	}
	if reg != nil {
		t.reg = reg
		t.track = track
		t.root = reg.StartSpan(track, RootSpan, start)
	}
	return t
}

// Registry returns the registry this timeline writes into (nil when
// unscoped).
func (t *Timeline) Registry() *telemetry.Registry { return t.reg }

// Track returns the track name for a scoped timeline.
func (t *Timeline) Track() string { return t.track }

// Root returns the boot's root span (nil when unscoped).
func (t *Timeline) Root() *telemetry.Span { return t.root }

// Annotate attaches an attribute (scheme, level, codec, asid …) to the
// boot's root span. No-op when unscoped.
func (t *Timeline) Annotate(key, value string) { t.root.Annotate(key, value) }

// Close ends the boot's root span. No-op when unscoped or already
// closed, so both success and error paths may call it.
func (t *Timeline) Close(at sim.Time) { t.root.Close(at) }

// Record stamps a guest timing event (a debug-port write).
func (t *Timeline) Record(at sim.Time, ev sev.TimingEvent) {
	t.events = append(t.events, Event{At: at, Ev: ev})
	if t.reg != nil {
		t.reg.Emit(t.track, EventName(ev), at)
	}
}

// EventAt returns the stamp of the first occurrence of ev.
func (t *Timeline) EventAt(ev sev.TimingEvent) (sim.Time, bool) {
	for _, e := range t.events {
		if e.Ev == ev {
			return e.At, true
		}
	}
	return 0, false
}

// Begin opens a named host-side span (e.g. "preenc").
func (t *Timeline) Begin(name string, at sim.Time) {
	t.open[name] = at
	if t.reg != nil {
		t.openSpans[name] = t.reg.StartSpan(t.track, name, at)
	}
}

// End closes a named span, accumulating its duration.
func (t *Timeline) End(name string, at sim.Time) {
	start, ok := t.open[name]
	if !ok {
		panic("trace: End of unopened span " + name)
	}
	delete(t.open, name)
	t.spans[name] += at.Sub(start)
	if s, ok := t.openSpans[name]; ok {
		s.Close(at)
		delete(t.openSpans, name)
	}
}

// Span returns the accumulated duration of a named span.
func (t *Timeline) Span(name string) time.Duration { return t.spans[name] }

// Spans returns this boot's span tree — the root span plus every span
// recorded under it (including scheduler wait spans the sim tracer
// parented inside the boot). Nil when unscoped.
func (t *Timeline) Spans() []*telemetry.Span {
	if t.root == nil {
		return nil
	}
	return t.reg.Subtree(t.root)
}

// TelemetryEvents returns this boot's instant events from the registry.
// Nil when unscoped.
func (t *Timeline) TelemetryEvents() []telemetry.Event {
	if t.root == nil {
		return nil
	}
	end := sim.MaxTime
	if t.root.Done {
		end = t.root.Stop
	}
	return t.reg.EventsOn(t.track, t.root.Start, end)
}

// Breakdown is the paper's Fig. 11 decomposition plus the Fig. 10 columns.
type Breakdown struct {
	VMM              time.Duration // exec to guest entry (includes pre-encryption)
	PreEncryption    time.Duration // subset of VMM: LAUNCH_* commands
	BootVerification time.Duration // boot verifier / firmware run time
	Firmware         time.Duration // OVMF phases (QEMU flow only)
	BootstrapLoader  time.Duration // bzImage decompress+load stage
	LinuxBoot        time.Duration // kernel entry to init
	Total            time.Duration // exec to init
	Attestation      time.Duration // report round trip (after init)
	TotalWithAttest  time.Duration
}

// Breakdown derives the decomposition from the recorded events.
func (t *Timeline) Breakdown() Breakdown {
	var b Breakdown
	rel := func(ev sev.TimingEvent) (time.Duration, bool) {
		at, ok := t.EventAt(ev)
		if !ok {
			return 0, false
		}
		return at.Sub(t.Start), true
	}
	entry, hasEntry := rel(sev.EvGuestEntry)
	if hasEntry {
		b.VMM = entry
	}
	b.PreEncryption = t.Span("preenc")
	if vs, ok := rel(sev.EvVerifierStart); ok {
		if vd, ok2 := rel(sev.EvVerifierDone); ok2 {
			b.BootVerification = vd - vs
		}
	}
	if s, ok := rel(sev.EvFirmwareSEC); ok {
		// Firmware span: SEC start to verifier start (the verifier is the
		// last firmware stage in the QEMU/OVMF flow).
		if vd, ok2 := rel(sev.EvVerifierDone); ok2 {
			b.Firmware = vd - s
		}
	}
	if bs, ok := rel(sev.EvBootstrapStart); ok {
		if ke, ok2 := rel(sev.EvKernelEntry); ok2 {
			b.BootstrapLoader = ke - bs
		}
	}
	if ke, ok := rel(sev.EvKernelEntry); ok {
		if ie, ok2 := rel(sev.EvInitExec); ok2 {
			b.LinuxBoot = ie - ke
		}
	}
	if ie, ok := rel(sev.EvInitExec); ok {
		b.Total = ie
		b.TotalWithAttest = ie
	}
	if as, ok := rel(sev.EvAttestStart); ok {
		if ad, ok2 := rel(sev.EvAttestDone); ok2 {
			b.Attestation = ad - as
			if ad > b.TotalWithAttest {
				b.TotalWithAttest = ad
			}
		}
	}
	return b
}

func (b Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "VMM %v (preenc %v)", b.VMM.Round(10*time.Microsecond), b.PreEncryption.Round(10*time.Microsecond))
	if b.Firmware > 0 {
		fmt.Fprintf(&sb, " | firmware %v", b.Firmware.Round(10*time.Microsecond))
	}
	fmt.Fprintf(&sb, " | verify %v | bootstrap %v | linux %v | total %v",
		b.BootVerification.Round(10*time.Microsecond),
		b.BootstrapLoader.Round(10*time.Microsecond),
		b.LinuxBoot.Round(10*time.Microsecond),
		b.Total.Round(10*time.Microsecond))
	if b.Attestation > 0 {
		fmt.Fprintf(&sb, " | attest %v (end-to-end %v)",
			b.Attestation.Round(10*time.Microsecond),
			b.TotalWithAttest.Round(10*time.Microsecond))
	}
	return sb.String()
}

// --- statistics over repeated boots ---

// Series is a set of durations from repeated runs.
type Series []time.Duration

// Mean returns the arithmetic mean.
func (s Series) Mean() time.Duration {
	if len(s) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s {
		sum += d
	}
	return sum / time.Duration(len(s))
}

// Stddev returns the population standard deviation.
func (s Series) Stddev() time.Duration {
	if len(s) < 2 {
		return 0
	}
	m := float64(s.Mean())
	var acc float64
	for _, d := range s {
		diff := float64(d) - m
		acc += diff * diff
	}
	return time.Duration(math.Sqrt(acc / float64(len(s))))
}

// Percentile returns the p-th percentile (0-100) using nearest-rank.
func (s Series) Percentile(p float64) time.Duration {
	if len(s) == 0 {
		return 0
	}
	sorted := append(Series(nil), s...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// CDFPoint is one (x, F(x)) sample.
type CDFPoint struct {
	Value    time.Duration
	Fraction float64
}

// CDF returns the empirical distribution, one point per sample.
func (s Series) CDF() []CDFPoint {
	sorted := append(Series(nil), s...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]CDFPoint, len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, Fraction: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// RenderAs draws this series' empirical CDF as ASCII with the given title.
func (s Series) RenderAs(title string) string { return RenderCDF(title, s, 60) }
