package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/severifast/severifast/internal/sev"
	simtime "github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/telemetry"
)

// eventLabels names the boot stages for rendering.
var eventLabels = map[sev.TimingEvent]string{
	sev.EvGuestEntry:     "guest entry",
	sev.EvVerifierStart:  "verifier start",
	sev.EvVerifierDone:   "verifier done",
	sev.EvBootstrapStart: "bootstrap start",
	sev.EvKernelEntry:    "kernel entry",
	sev.EvInitExec:       "init exec",
	sev.EvAttestStart:    "attest start",
	sev.EvAttestDone:     "attest done",
	sev.EvFirmwareSEC:    "fw SEC",
	sev.EvFirmwarePEI:    "fw PEI",
	sev.EvFirmwareDXE:    "fw DXE",
	sev.EvFirmwareBDS:    "fw BDS",
}

// EventName returns the rendering label for a guest timing event.
func EventName(ev sev.TimingEvent) string {
	if name := eventLabels[ev]; name != "" {
		return name
	}
	return fmt.Sprintf("ev%d", ev)
}

// RenderTimeline draws the boot as an ASCII Gantt chart, suitable for
// terminal output (sevf-boot -timeline). Scoped timelines render their
// telemetry span tree — one indented row per span, instant events as
// markers; unscoped timelines fall back to the original event-pair
// stage rendering.
func (t *Timeline) RenderTimeline(width int) string {
	if width < 40 {
		width = 72
	}
	if t.root != nil {
		return t.renderSpanTree(width)
	}
	return t.renderEventStages(width)
}

// renderSpanTree draws the boot's span tree: depth-indented span rows
// with proportional bars, then instant events as time markers.
func (t *Timeline) renderSpanTree(width int) string {
	spans := t.Spans()
	events := t.TelemetryEvents()
	root := t.root
	end := root.Stop
	if !root.Done {
		end = root.Start
		for _, s := range spans {
			if s.Done && s.Stop > end {
				end = s.Stop
			}
		}
		for _, e := range events {
			if e.At > end {
				end = e.At
			}
		}
	}
	total := end.Sub(root.Start)
	if total <= 0 {
		return "(no events recorded)\n"
	}

	depth := map[int]int{}
	for _, s := range spans { // creation order: parents precede children
		if s.ID == root.ID {
			depth[s.ID] = 0
			continue
		}
		depth[s.ID] = depth[s.Parent] + 1
	}
	rows := append([]*telemetry.Span(nil), spans...)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Start != rows[j].Start {
			return rows[i].Start < rows[j].Start
		}
		return rows[i].ID < rows[j].ID
	})

	type row struct {
		name       string
		start, dur time.Duration
	}
	out := make([]row, 0, len(rows))
	nameW := 0
	for _, s := range rows {
		stop := s.Stop
		if !s.Done {
			stop = end
		}
		r := row{
			name:  strings.Repeat("  ", depth[s.ID]) + s.Name,
			start: s.Start.Sub(root.Start),
			dur:   stop.Sub(s.Start),
		}
		out = append(out, r)
		if len(r.name) > nameW {
			nameW = len(r.name)
		}
	}
	barW := width - nameW - 14
	if barW < 10 {
		barW = 10
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "boot timeline (total %v)\n", total.Round(10*time.Microsecond))
	for _, r := range out {
		startCol := int(int64(barW) * int64(r.start) / int64(total))
		endCol := int(int64(barW) * int64(r.start+r.dur) / int64(total))
		if endCol <= startCol {
			endCol = startCol + 1
		}
		if endCol > barW {
			endCol = barW
		}
		if startCol >= endCol {
			startCol = endCol - 1
		}
		bar := strings.Repeat(" ", startCol) + strings.Repeat("█", endCol-startCol)
		fmt.Fprintf(&sb, "%-*s |%-*s| %v\n", nameW, r.name, barW, bar,
			r.dur.Round(10*time.Microsecond))
	}
	for _, e := range events {
		fmt.Fprintf(&sb, "· %s @ %v\n", e.Name, e.At.Sub(root.Start).Round(10*time.Microsecond))
	}
	return sb.String()
}

// renderEventStages is the legacy renderer for unscoped timelines: one
// row per consecutive pair of guest events.
func (t *Timeline) renderEventStages(width int) string {
	type stage struct {
		name       string
		start, end time.Duration
	}
	var stages []stage
	events := append([]Event(nil), t.events...)
	sort.Slice(events, func(i, j int) bool { return events[i].At < events[j].At })
	if len(events) == 0 {
		return "(no events recorded)\n"
	}

	rel := func(at simtime.Time) time.Duration { return at.Sub(t.Start) }
	// VMM stage: timeline start to guest entry.
	if ge, ok := t.EventAt(sev.EvGuestEntry); ok {
		stages = append(stages, stage{"vmm", 0, rel(ge)})
	}
	// Each consecutive pair of guest events becomes a stage.
	for i := 0; i+1 < len(events); i++ {
		name := eventLabels[events[i].Ev]
		if name == "" {
			name = fmt.Sprintf("ev%d", events[i].Ev)
		}
		s := rel(events[i].At)
		e := rel(events[i+1].At)
		if e > s {
			stages = append(stages, stage{name + " →", s, e})
		}
	}
	total := rel(events[len(events)-1].At)
	if total <= 0 {
		return "(empty timeline)\n"
	}

	nameW := 0
	for _, s := range stages {
		if len(s.name) > nameW {
			nameW = len(s.name)
		}
	}
	barW := width - nameW - 14
	if barW < 10 {
		barW = 10
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "boot timeline (total %v)\n", total.Round(10*time.Microsecond))
	for _, s := range stages {
		startCol := int(int64(barW) * int64(s.start) / int64(total))
		endCol := int(int64(barW) * int64(s.end) / int64(total))
		if endCol <= startCol {
			endCol = startCol + 1
		}
		bar := strings.Repeat(" ", startCol) + strings.Repeat("█", endCol-startCol)
		fmt.Fprintf(&sb, "%-*s |%-*s| %v\n", nameW, s.name, barW, bar,
			(s.end - s.start).Round(10*time.Microsecond))
	}
	return sb.String()
}

// RenderCDF draws an empirical CDF as ASCII, one row per quantile step.
func RenderCDF(title string, s Series, width int) string {
	if len(s) == 0 {
		return title + ": (no samples)\n"
	}
	if width < 30 {
		width = 60
	}
	points := s.CDF()
	lo := points[0].Value
	hi := points[len(points)-1].Value
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (n=%d, p50=%v, p99=%v)\n", title, len(s),
		s.Percentile(50).Round(10*time.Microsecond), s.Percentile(99).Round(10*time.Microsecond))
	for _, q := range []float64{10, 25, 50, 75, 90, 99, 100} {
		v := s.Percentile(q)
		col := int(int64(width) * int64(v-lo) / int64(span))
		if col > width {
			col = width
		}
		fmt.Fprintf(&sb, "p%-3.0f |%s▌ %v\n", q, strings.Repeat("─", col), v.Round(10*time.Microsecond))
	}
	return sb.String()
}
