package verifier

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/measure"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
)

func TestImageSizeAndDeterminism(t *testing.T) {
	a, b := Image(1), Image(1)
	if len(a) != ImageSize || ImageSize != 13*1024 {
		t.Fatalf("verifier image %d bytes, want 13 KiB (paper §4.1)", len(a))
	}
	if !bytes.Equal(a, b) {
		t.Fatal("verifier image not deterministic; it is measured")
	}
	if bytes.Equal(a, Image(2)) {
		t.Fatal("different builds produced identical images")
	}
}

func TestBuildChunksTileTheFile(t *testing.T) {
	art, err := kernelgen.Cached(kernelgen.Lupine())
	if err != nil {
		t.Fatal(err)
	}
	const stage = 0x5000000
	chunks, err := BuildChunks(art.VMLinux, stage)
	if err != nil {
		t.Fatal(err)
	}
	// Chunks must tile the file exactly, in order.
	var cursor uint64
	total := 0
	loads := 0
	for i, c := range chunks {
		if c.FileOff != cursor {
			t.Fatalf("chunk %d at %#x, want %#x (gap or overlap)", i, c.FileOff, cursor)
		}
		if c.StageGPA != stage+c.FileOff {
			t.Fatalf("chunk %d staged at %#x", i, c.StageGPA)
		}
		cursor += uint64(c.Size)
		total += c.Size
		if c.DestGPA != 0 {
			loads++
		}
	}
	if total != len(art.VMLinux) {
		t.Fatalf("chunks cover %d bytes of %d", total, len(art.VMLinux))
	}
	if loads != 3 {
		t.Fatalf("%d load chunks, want 3 (the PT_LOAD segments)", loads)
	}
	// A streaming hash over the chunks equals the whole-file hash — the
	// property the fw_cfg protocol's verification rests on.
	h := sha256.New()
	for _, c := range chunks {
		h.Write(art.VMLinux[c.FileOff : c.FileOff+uint64(c.Size)])
	}
	var got [32]byte
	copy(got[:], h.Sum(nil))
	if got != sha256.Sum256(art.VMLinux) {
		t.Fatal("streamed hash != file hash")
	}
}

func TestBuildChunksRejectsGarbage(t *testing.T) {
	if _, err := BuildChunks([]byte("not an elf"), 0); err == nil {
		t.Fatal("garbage accepted")
	}
}

// setupSEVMachine builds a machine mid-launch, with the SEVeriFast plan
// pre-encrypted and components staged, ready for Run.
func setupSEVMachine(t *testing.T, p *sim.Proc, host *kvm.Host, kernel, initrd []byte, h measure.ComponentHashes) (*kvm.Machine, Inputs) {
	t.Helper()
	m := host.NewMachine(p, 256<<20, sev.SNP)
	m.PrepSEVHost(p)

	if err := m.Mem.HostWriteAliased(measure.GPAStageA, kernel); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.HostWriteAliased(measure.GPAStageB, initrd); err != nil {
		t.Fatal(err)
	}
	if err := m.StartLaunch(p, sev.DefaultPolicy()); err != nil {
		t.Fatal(err)
	}
	regions, err := measure.Plan(measure.Config{
		Verifier: Image(1),
		Hashes:   h,
		Cmdline:  "console=ttyS0 root=/dev/vda",
		VCPUs:    1,
		MemSize:  256 << 20,
		Level:    sev.SNP,
		Policy:   sev.DefaultPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regions {
		if err := m.Mem.HostWrite(r.GPA, r.Data); err != nil {
			t.Fatal(err)
		}
		if err := m.Launch.LaunchUpdateData(p, r.GPA, len(r.Data), r.Type); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Launch.LaunchFinish(p); err != nil {
		t.Fatal(err)
	}
	in := Inputs{
		Kind:           KindBzImage,
		StageGPA:       measure.GPAStageA,
		KernelSize:     len(kernel),
		KernelDstGPA:   measure.GPABzTarget,
		InitrdStageGPA: measure.GPAStageB,
		InitrdSize:     len(initrd),
		InitrdDstGPA:   measure.GPAInitrd,
		ScratchGPA:     measure.GPAScratch,
	}
	return m, in
}

func TestRunVerifiesAndProtectsComponents(t *testing.T) {
	art, err := kernelgen.Cached(kernelgen.Lupine())
	if err != nil {
		t.Fatal(err)
	}
	initrd := kernelgen.BuildInitrd(1, 1<<20)
	h := measure.HashComponents(art.BzImageLZ4, initrd, "console=ttyS0 root=/dev/vda")

	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	eng.Go("vcpu", func(p *sim.Proc) {
		m, in := setupSEVMachine(t, p, host, art.BzImageLZ4, initrd, h)
		handoff, err := Run(p, m, in)
		if err != nil {
			t.Error(err)
			return
		}
		if handoff.KernelGPA != measure.GPABzTarget {
			t.Errorf("kernel at %#x", handoff.KernelGPA)
		}
		// The verified kernel lives in private memory: the host must see
		// ciphertext, the guest plain text.
		hostView, err := m.Mem.HostRead(measure.GPABzTarget, 4096)
		if err != nil {
			t.Error(err)
			return
		}
		if bytes.Equal(hostView, art.BzImageLZ4[:4096]) {
			t.Error("verified kernel still plain text to the host")
		}
		guestView, err := m.Mem.GuestRead(measure.GPABzTarget, 4096, true)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(guestView, art.BzImageLZ4[:4096]) {
			t.Error("guest cannot read its protected kernel")
		}
		// boot_params got the real initrd size (the pre-encrypted page
		// carried zero to keep the measurement stable).
		zp, err := m.Mem.GuestRead(measure.GPAZeroPage+0x21C, 4, true)
		if err != nil {
			t.Error(err)
			return
		}
		got := int(zp[0]) | int(zp[1])<<8 | int(zp[2])<<16 | int(zp[3])<<24
		if got != len(initrd) {
			t.Errorf("boot_params ramdisk_size = %d, want %d", got, len(initrd))
		}
	})
	eng.Run()
}

func TestRunDetectsSwappedKernelAfterMeasurement(t *testing.T) {
	// The host stages the right kernel, the hashes are measured, and THEN
	// the host swaps the staged bytes before guest entry — the classic
	// TOCTOU the boot verifier exists to close.
	art, err := kernelgen.Cached(kernelgen.Lupine())
	if err != nil {
		t.Fatal(err)
	}
	initrd := kernelgen.BuildInitrd(1, 1<<20)
	h := measure.HashComponents(art.BzImageLZ4, initrd, "console=ttyS0 root=/dev/vda")

	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	eng.Go("vcpu", func(p *sim.Proc) {
		m, in := setupSEVMachine(t, p, host, art.BzImageLZ4, initrd, h)
		// Swap one byte of the *staged* kernel post-measurement. Staging
		// is shared memory, so the RMP permits it.
		evil := append([]byte(nil), art.BzImageLZ4...)
		evil[12345] ^= 1
		if err := m.Mem.HostWriteAliased(measure.GPAStageA, evil); err != nil {
			t.Error(err)
			return
		}
		if _, err := Run(p, m, in); !errors.Is(err, ErrVerification) {
			t.Errorf("swapped kernel: err = %v, want ErrVerification", err)
		}
	})
	eng.Run()
}

func TestRunRejectsNonTilingChunks(t *testing.T) {
	art, err := kernelgen.Cached(kernelgen.Lupine())
	if err != nil {
		t.Fatal(err)
	}
	initrd := kernelgen.BuildInitrd(1, 1<<20)
	h := measure.HashComponents(art.VMLinux, initrd, "console=ttyS0 root=/dev/vda")

	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	eng.Go("vcpu", func(p *sim.Proc) {
		m, in := setupSEVMachine(t, p, host, art.VMLinux, initrd, h)
		chunks, err := BuildChunks(art.VMLinux, measure.GPAStageA)
		if err != nil {
			t.Error(err)
			return
		}
		// Drop a chunk: the host tries to hide part of the file from the
		// hash stream.
		in.Kind = KindVmlinux
		in.Chunks = append(chunks[:1:1], chunks[2:]...)
		if _, err := Run(p, m, in); err == nil {
			t.Error("non-tiling chunk stream accepted")
		}
	})
	eng.Run()
}

func TestRunStreamedVmlinux(t *testing.T) {
	art, err := kernelgen.Cached(kernelgen.Lupine())
	if err != nil {
		t.Fatal(err)
	}
	initrd := kernelgen.BuildInitrd(1, 1<<20)
	h := measure.HashComponents(art.VMLinux, initrd, "console=ttyS0 root=/dev/vda")

	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	eng.Go("vcpu", func(p *sim.Proc) {
		m, in := setupSEVMachine(t, p, host, art.VMLinux, initrd, h)
		chunks, err := BuildChunks(art.VMLinux, measure.GPAStageA)
		if err != nil {
			t.Error(err)
			return
		}
		in.Kind = KindVmlinux
		in.Chunks = chunks
		handoff, err := Run(p, m, in)
		if err != nil {
			t.Error(err)
			return
		}
		if handoff.Entry != art.Entry {
			t.Errorf("entry %#x, want %#x", handoff.Entry, art.Entry)
		}
		// The kernel text is already at its run address, private.
		text, err := m.Mem.GuestRead(art.Entry, 64, true)
		if err != nil {
			t.Error(err)
			return
		}
		allZero := true
		for _, b := range text {
			if b != 0 {
				allZero = false
			}
		}
		if allZero {
			t.Error("no kernel text at entry after streaming")
		}
	})
	eng.Run()
}

func TestRunNonSEVSkipsVerification(t *testing.T) {
	// The verifier also runs for non-encrypted guests (the qemu flow can
	// be used without SEV); there it just loads, without hash checks.
	art, err := kernelgen.Cached(kernelgen.Lupine())
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	eng.Go("vcpu", func(p *sim.Proc) {
		m := host.NewMachine(p, 256<<20, sev.None)
		if err := m.Mem.HostWriteAliased(measure.GPAStageA, art.BzImageLZ4); err != nil {
			t.Error(err)
			return
		}
		in := Inputs{
			Kind:         KindBzImage,
			StageGPA:     measure.GPAStageA,
			KernelSize:   len(art.BzImageLZ4),
			KernelDstGPA: measure.GPABzTarget,
			ScratchGPA:   measure.GPAScratch,
		}
		if _, err := Run(p, m, in); err != nil {
			t.Errorf("non-SEV verifier run failed: %v", err)
		}
	})
	eng.Run()
}

func TestRunRejectsNonBzImage(t *testing.T) {
	junk := kernelgen.GenBinary(3, 1<<20)
	initrd := kernelgen.BuildInitrd(1, 1<<20)
	h := measure.HashComponents(junk, initrd, "console=ttyS0 root=/dev/vda")

	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	eng.Go("vcpu", func(p *sim.Proc) {
		m, in := setupSEVMachine(t, p, host, junk, initrd, h)
		if _, err := Run(p, m, in); err == nil {
			t.Error("junk kernel accepted (hash matched but format must be checked)")
		}
	})
	eng.Run()
}
