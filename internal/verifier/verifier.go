// Package verifier implements the SEVeriFast boot verifier: the ~13 KiB
// standalone binary that replaces both firmware and bootloader as an SEV
// microVM's initial (pre-encrypted, measured) guest code (paper §4.1, §5).
//
// Its job, executed for real against the machine model:
//
//  1. Discover the C-bit with two cpuid reads and validate all guest
//     memory with pvalidate (one instruction per huge page when THP is on).
//  2. Build the identity-mapped C-bit page tables in encrypted memory —
//     unless the ablation pre-encrypted them host-side (Fig. 7 policy).
//  3. Perform measured direct boot (Fig. 2): copy each staged component
//     from shared to private memory, re-hash it, and compare against the
//     pre-encrypted hash page. A host that swapped a component is caught
//     here, with the boot refused.
//  4. Hand off: a bzImage stays in place for its bootstrap loader; a
//     vmlinux streamed over the optimized fw_cfg protocol (§5) has its
//     segments placed at their run addresses directly, avoiding the extra
//     full-image copy.
package verifier

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"time"

	"github.com/severifast/severifast/internal/artifact"
	"github.com/severifast/severifast/internal/bootparams"
	"github.com/severifast/severifast/internal/bzimage"
	"github.com/severifast/severifast/internal/elfx"
	"github.com/severifast/severifast/internal/ghcb"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/measure"
	"github.com/severifast/severifast/internal/mptable"
	"github.com/severifast/severifast/internal/pagetable"
	"github.com/severifast/severifast/internal/rmp"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
)

// ImageSize is the verifier binary's size: the paper's ~13 KiB root of
// trust.
const ImageSize = 13 * 1024

// GPAGHCB is where the verifier places the guest's GHCB page.
const GPAGHCB = 0x1000

// Image returns the verifier binary artifact (deterministic bytes standing
// in for the compiled Rust binary). Its content is measured, so changing
// the seed models shipping a different — e.g. malicious — verifier.
func Image(seed int64) []byte { return kernelgen.GenBinary(seed^0x13B00, ImageSize) }

// ErrVerification is returned when a staged component does not match its
// pre-encrypted hash (Fig. 2 step 5 failing).
var ErrVerification = errors.New("verifier: component hash mismatch")

// KernelKind selects the handoff format.
type KernelKind int

// Kernel staging formats.
const (
	KindBzImage KernelKind = iota // compressed image, verified whole
	KindVmlinux                   // streamed ELF via the fw_cfg protocol
)

// Chunk is one fw_cfg transfer unit for KindVmlinux (§5): a span of the
// kernel file staged in shared memory. Load chunks go to their run
// address in private memory; the rest (ELF header, program headers,
// padding) is hashed and parked in scratch.
type Chunk struct {
	FileOff  uint64
	StageGPA uint64 // where the VMM staged it (shared)
	Size     int
	DestGPA  uint64 // final private destination; 0 = scratch
}

// Inputs describes what the VMM staged for measured direct boot.
type Inputs struct {
	Kind KernelKind

	// KindBzImage: the image is staged at StageGPA.
	StageGPA   uint64
	KernelSize int

	// KindVmlinux: the streamed chunks.
	Chunks []Chunk

	InitrdStageGPA uint64
	InitrdSize     int

	// Destinations (private memory).
	KernelDstGPA uint64
	InitrdDstGPA uint64
	ScratchGPA   uint64

	// PageTablesPreEncrypted is the Fig. 7 ablation: when set, the VMM
	// already measured page tables at measure.GPAPageTables and the
	// verifier skips generating them.
	PageTablesPreEncrypted bool

	// CmdlineStageGPA/CmdlineSize describe a command line staged in shared
	// memory (the QEMU/OVMF flow, where the cmdline is verified like the
	// kernel rather than pre-encrypted). Zero size means the cmdline was
	// pre-encrypted at measure.GPACmdline (the SEVeriFast flow).
	CmdlineStageGPA uint64
	CmdlineSize     int

	// GenerateBootStructs makes the verifier build boot_params and the
	// mptable in C-bit memory (the OVMF flow, which carries the generator
	// code anyway). VCPUs parameterizes the mptable.
	GenerateBootStructs bool
	VCPUs               int
}

// Handoff is what the verifier leaves for the next boot stage.
type Handoff struct {
	// KernelGPA is where the verified kernel lives in private memory: the
	// bzImage staging for KindBzImage, or the ELF entry for KindVmlinux.
	KernelGPA  uint64
	KernelSize int
	Kind       KernelKind
	Entry      uint64 // KindVmlinux: ELF entry point
	InitrdGPA  uint64
	InitrdSize int
}

// Run executes the boot verifier on machine m. It is called from the vCPU
// process at guest entry and charges all guest-side work to virtual time.
func Run(proc *sim.Proc, m *kvm.Machine, in Inputs) (*Handoff, error) {
	model := m.Host.Model
	m.DebugEvent(proc, sev.EvVerifierStart)
	cbit := m.Level.Encrypted()

	// C-bit discovery: two cpuid instructions (§5). For ES/SNP these go
	// through the early-boot GHCB MSR protocol (no #VC handler exists
	// yet): the request and response really round-trip the MSR encoding.
	eax, ebx := cpuidEAX(m.Level), uint32(pagetable.DefaultCBit)
	if m.Level >= sev.ES {
		var err error
		eax, err = earlyCPUID(m, 0x8000001F, 0)
		if err != nil {
			return nil, err
		}
		ebx, err = earlyCPUID(m, 0x8000001F, 1)
		if err != nil {
			return nil, err
		}
	}
	if enabled, pos := pagetable.CBitFromCPUID(eax, ebx); cbit {
		if !enabled || pos != pagetable.DefaultCBit {
			return nil, fmt.Errorf("verifier: cpuid does not advertise SEV for an encrypted guest (pos %d)", pos)
		}
	}

	// pvalidate all guest memory (SNP only). Launch-updated pages are
	// already validated; the range helper skips them.
	if m.Level.HasRMP() {
		pageSize := m.Host.PvalidatePageSize()
		table, asid := m.Mem.RMP()
		if m.Host.HugePageValidation {
			// Hardware-faithful accounting: a huge-page pvalidate only
			// covers uniformly-unvalidated blocks; launch-updated pages
			// fragment those blocks into per-4KiB instructions, and the
			// guest pays for the instructions actually issued.
			ops, err := table.PvalidateSpan(0, int(m.Mem.Size()), asid, rmp.SpanOptions{
				PageSize: pageSize,
				Strict:   true,
			})
			if err != nil {
				return nil, fmt.Errorf("verifier: pvalidate: %w", err)
			}
			proc.Sleep(time.Duration(ops) * model.PvalidatePerPage)
		} else {
			if err := table.PvalidateRangeSkipValidated(0, int(m.Mem.Size()), pageSize, asid); err != nil {
				return nil, fmt.Errorf("verifier: pvalidate: %w", err)
			}
			proc.Sleep(model.Pvalidate(int(m.Mem.Size()), pageSize))
		}
	}

	// With memory validated, establish the GHCB so later #VC exits (debug
	// events, I/O) use the page protocol.
	if m.Level >= sev.ES {
		g, err := ghcb.New(m.Mem, GPAGHCB)
		if err != nil {
			return nil, fmt.Errorf("verifier: establishing GHCB: %w", err)
		}
		m.SetGHCB(GPAGHCB, g)
	}

	// Page tables: generate in C-bit memory, implicitly encrypting them —
	// or, in the ablation, check the pre-encrypted ones are sane.
	ptCfg := pagetable.Config{Base: measure.GPAPageTables, MapSize: m.Mem.Size(), SetCBit: cbit}
	if in.PageTablesPreEncrypted {
		raw, err := m.Mem.GuestRead(measure.GPAPageTables, pagetable.TotalSize, cbit)
		if err != nil {
			return nil, fmt.Errorf("verifier: reading pre-encrypted page tables: %w", err)
		}
		if _, gotC, err := pagetable.Walk(raw, ptCfg, 0x200000); err != nil {
			return nil, fmt.Errorf("%w: pre-encrypted page tables invalid: %w", ErrVerification, err)
		} else if gotC != cbit {
			return nil, fmt.Errorf("%w: pre-encrypted page tables map C-bit %v, want %v", ErrVerification, gotC, cbit)
		}
	} else {
		table := pagetable.Build(ptCfg)
		if err := m.Mem.GuestWrite(measure.GPAPageTables, table, cbit); err != nil {
			return nil, fmt.Errorf("verifier: writing page tables: %w", err)
		}
		proc.Sleep(model.Copy(len(table)))
	}

	// The pre-encrypted hash page is the verification root (Fig. 2).
	var hashes measure.ComponentHashes
	if cbit {
		page, err := m.Mem.GuestRead(measure.GPAHashPage, 4096, true)
		if err != nil {
			return nil, fmt.Errorf("verifier: reading hash page: %w", err)
		}
		hashes, err = measure.ParseHashPage(page)
		if err != nil {
			// A hash page that fails to parse is a failed verification
			// root, not an I/O problem: classify it as such.
			return nil, fmt.Errorf("%w: %w", ErrVerification, err)
		}
	}

	out := &Handoff{Kind: in.Kind, InitrdGPA: in.InitrdDstGPA, InitrdSize: in.InitrdSize}

	// Kernel.
	switch in.Kind {
	case KindBzImage:
		if err := verifyCopy(proc, m, in.StageGPA, in.KernelDstGPA, in.KernelSize, hashes.Kernel, cbit, "kernel"); err != nil {
			return nil, err
		}
		// Sanity-parse the verified image in place; the zero-copy view
		// avoids materializing the multi-MiB image when it aliases the
		// canonical staged artifact.
		raw, ok, err := m.Mem.RangeView(in.KernelDstGPA, in.KernelSize, cbit)
		if err != nil {
			return nil, err
		}
		if !ok {
			if raw, err = m.Mem.GuestRead(in.KernelDstGPA, in.KernelSize, cbit); err != nil {
				return nil, err
			}
		}
		if _, err := bzimage.Parse(raw); err != nil {
			return nil, fmt.Errorf("verifier: staged kernel is not a bzImage: %w", err)
		}
		out.KernelGPA = in.KernelDstGPA
		out.KernelSize = in.KernelSize
	case KindVmlinux:
		entry, total, err := streamVmlinux(proc, m, in, hashes.Kernel, cbit)
		if err != nil {
			return nil, err
		}
		out.Entry = entry
		out.KernelGPA = entry
		out.KernelSize = total
	default:
		return nil, fmt.Errorf("verifier: unknown kernel kind %d", in.Kind)
	}

	// Initrd: copied whole, verified, left uncompressed (Fig. 5's
	// conclusion: the CPIO is unpacked anyway, extra compression only adds
	// overhead).
	if in.InitrdSize > 0 {
		if err := verifyCopy(proc, m, in.InitrdStageGPA, in.InitrdDstGPA, in.InitrdSize, hashes.Initrd, cbit, "initrd"); err != nil {
			return nil, err
		}
	}

	// A staged (not pre-encrypted) command line is verified like the other
	// components and placed at its boot_params location.
	if in.CmdlineSize > 0 {
		if err := verifyCopy(proc, m, in.CmdlineStageGPA, measure.GPACmdline, in.CmdlineSize, hashes.Cmdline, cbit, "cmdline"); err != nil {
			return nil, err
		}
	}

	// The OVMF flow generates boot_params and the mptable in the guest
	// (UEFI carries the generator code regardless; Fig. 7's tradeoff cuts
	// the other way for a minimal verifier).
	if in.GenerateBootStructs {
		vcpus := in.VCPUs
		if vcpus < 1 {
			vcpus = 1
		}
		zp, err := bootparams.Build(bootparams.Params{
			CmdlinePtr:   measure.GPACmdline,
			CmdlineSize:  uint32(in.CmdlineSize),
			RamdiskImage: uint32(in.InitrdDstGPA),
			RamdiskSize:  0, // patched below like the SEVeriFast flow
			E820:         bootparams.StandardE820(m.Mem.Size()),
		})
		if err != nil {
			return nil, fmt.Errorf("verifier: generating boot_params: %w", err)
		}
		if err := m.Mem.GuestWrite(measure.GPAZeroPage, zp, cbit); err != nil {
			return nil, err
		}
		mp := mptable.Build(vcpus, measure.GPAMPTable)
		if err := m.Mem.GuestWrite(measure.GPAMPTable, mp, cbit); err != nil {
			return nil, err
		}
		proc.Sleep(model.Copy(len(zp) + len(mp)))
	}

	// Publish the now-known initrd size into boot_params (private write;
	// the pre-encrypted zero page left it zero to keep the measurement
	// stable).
	if cbit {
		var sz [4]byte
		sz[0] = byte(in.InitrdSize)
		sz[1] = byte(in.InitrdSize >> 8)
		sz[2] = byte(in.InitrdSize >> 16)
		sz[3] = byte(in.InitrdSize >> 24)
		if err := m.Mem.GuestWrite(measure.GPAZeroPage+0x21C, sz[:], true); err != nil {
			return nil, fmt.Errorf("verifier: updating boot_params: %w", err)
		}
	}

	m.DebugEvent(proc, sev.EvVerifierDone)
	return out, nil
}

// verifyCopy is Fig. 2 steps 4-6 for one component: copy shared->private,
// re-hash the private copy, compare against the pre-encrypted hash.
func verifyCopy(proc *sim.Proc, m *kvm.Machine, src, dst uint64, n int, want [32]byte, cbit bool, name string) error {
	model := m.Host.Model
	span := "verify " + name
	m.Timeline.Begin(span, proc.Now())
	defer func() { m.Timeline.End(span, proc.Now()) }()
	if err := m.Mem.GuestCopy(dst, src, n, cbit, false); err != nil {
		return fmt.Errorf("verifier: protecting %s: %w", name, err)
	}
	proc.Sleep(model.Copy(n))
	if !cbit {
		return nil // non-SEV boots skip verification entirely
	}
	// Re-hash the private copy in place. HashRange returns exactly
	// SHA-256 of what GuestRead(dst, n, true) would, but skips the
	// n-byte materialization and — when the copy aliases a shared
	// artifact — resolves to the memoized digest, so repeat boots of
	// the same image verify in O(1) host time. A host that tampered
	// with the staged bytes broke the alias (or never had one) and is
	// hashed for real, preserving Fig. 2's detection property.
	got, err := m.Mem.HashRange(dst, n, true)
	if err != nil {
		return fmt.Errorf("verifier: re-reading %s: %w", name, err)
	}
	proc.Sleep(model.Hash(n))
	if got != want {
		return fmt.Errorf("%w: %s (got %x, want %x)", ErrVerification, name, got[:4], want[:4])
	}
	return nil
}

// streamVmlinux implements the optimized fw_cfg protocol (§5): each chunk
// is copied once — loadable bytes straight to their run address — while a
// single running hash over the byte stream reproduces the whole-file
// kernel hash.
func streamVmlinux(proc *sim.Proc, m *kvm.Machine, in Inputs, want [32]byte, cbit bool) (entry uint64, total int, err error) {
	model := m.Host.Model
	m.Timeline.Begin("verify kernel-stream", proc.Now())
	defer func() { m.Timeline.End("verify kernel-stream", proc.Now()) }()
	// Each chunk is placed and accounted exactly as the sequential
	// copy+hash loop always was; only the host-side hashing is lazy.
	// While every placed chunk still aliases one interned artifact at
	// its file offset (checked at copy time, before scratch is reused
	// by the next non-load chunk), no bytes are hashed at all — the
	// whole-file hash is the artifact's memoized range digest, because
	// the chunks tile the file. The moment a chunk diverges (tampered
	// page, broken alias, copied tail), the stream falls back to real
	// hashing: prior chunks are replayed from the artifact (their bytes
	// were proven identical when they were placed) and the rest are
	// read and hashed exactly as before.
	var (
		h             = sha256.New()
		headerScratch []byte
		streamArt     *artifact.Buf
		streamBase    int
		memoOK        = true
	)
	expectOff := uint64(0)
	for i, c := range in.Chunks {
		if c.FileOff != expectOff {
			return 0, 0, fmt.Errorf("verifier: chunk %d at file offset %#x, want %#x (stream must tile the file)", i, c.FileOff, expectOff)
		}
		expectOff += uint64(c.Size)
		dst := c.DestGPA
		if dst == 0 {
			dst = in.ScratchGPA
		}
		if err := m.Mem.GuestCopy(dst, c.StageGPA, c.Size, cbit, false); err != nil {
			return 0, 0, fmt.Errorf("verifier: streaming chunk %d: %w", i, err)
		}
		proc.Sleep(model.Copy(c.Size))
		if memoOK {
			a, b, aerr := m.Mem.ArtifactRange(dst, c.Size, cbit)
			if aerr != nil {
				return 0, 0, aerr
			}
			if a != nil && streamArt == nil {
				streamArt, streamBase = a, b-int(c.FileOff)
			}
			if a == nil || a != streamArt || b != streamBase+int(c.FileOff) || streamBase < 0 {
				memoOK = false
				if c.FileOff > 0 {
					// Catch up on the chunks already proven equal to
					// the artifact's prefix.
					h.Write(streamArt.Bytes()[streamBase : streamBase+int(c.FileOff)])
				}
			} else if c.FileOff == 0 {
				headerScratch = streamArt.Bytes()[streamBase : streamBase+c.Size]
			}
		}
		if !memoOK {
			data, err := m.Mem.GuestRead(dst, c.Size, cbit)
			if err != nil {
				return 0, 0, err
			}
			h.Write(data)
			if c.FileOff == 0 {
				headerScratch = append([]byte(nil), data...)
			}
		}
		proc.Sleep(model.Hash(c.Size))
		proc.Sleep(model.ELFParsePerSegment)
		total += c.Size
	}
	var got [32]byte
	if memoOK && streamArt != nil && total > 0 {
		got = streamArt.RangeDigest(streamBase, total)
	} else {
		copy(got[:], h.Sum(nil))
	}
	if cbit && got != want {
		return 0, 0, fmt.Errorf("%w: kernel (streamed)", ErrVerification)
	}
	if len(headerScratch) < 32 {
		return 0, 0, fmt.Errorf("verifier: stream carried no ELF header")
	}
	// Entry point from the (verified) header copy in scratch.
	entry = le64(headerScratch[24:])
	return entry, total, nil
}

// BuildChunks prepares the VMM-side chunk list for a serialized vmlinux:
// the regions tile the file, so the verifier's streaming hash equals the
// out-of-band kernel hash.
func BuildChunks(vmlinux []byte, stageBase uint64) ([]Chunk, error) {
	regions, err := elfx.FileRegions(vmlinux)
	if err != nil {
		return nil, err
	}
	chunks := make([]Chunk, 0, len(regions))
	for _, r := range regions {
		c := Chunk{FileOff: r.Off, StageGPA: stageBase + r.Off, Size: r.Len}
		if r.Load {
			c.DestGPA = r.Vaddr
		}
		chunks = append(chunks, c)
	}
	return chunks, nil
}

func cpuidEAX(l sev.Level) uint32 {
	if l.Encrypted() {
		return 1 << 1
	}
	return 0
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// earlyCPUID performs one pre-handler CPUID through the GHCB MSR protocol:
// the guest encodes the request into the MSR, the VMM decodes it, answers
// from the (modeled) hardware leaf, and the guest decodes the response.
func earlyCPUID(m *kvm.Machine, leaf uint32, reg uint8) (uint32, error) {
	msr := ghcb.MSRCPUIDRequest(leaf, reg)
	gotLeaf, gotReg, ok := ghcb.ParseMSRCPUIDRequest(msr)
	if !ok {
		return 0, fmt.Errorf("verifier: GHCB MSR encoding broken")
	}
	var answer uint32
	switch {
	case gotLeaf == 0x8000001F && gotReg == 0:
		answer = cpuidEAX(m.Level)
	case gotLeaf == 0x8000001F && gotReg == 1:
		answer = uint32(pagetable.DefaultCBit)
	default:
		return 0, fmt.Errorf("verifier: unexpected early cpuid %#x/%d", gotLeaf, gotReg)
	}
	val, ok := ghcb.ParseMSRCPUIDResponse(ghcb.MSRCPUIDResponse(answer))
	if !ok {
		return 0, fmt.Errorf("verifier: GHCB MSR response encoding broken")
	}
	return val, nil
}
