package lz4

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
)

func streamRoundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := NewWriter(&buf)
	// Write in awkward sizes to exercise block-boundary buffering.
	for off := 0; off < len(src); {
		n := 1 + (off*7919)%9001
		if off+n > len(src) {
			n = len(src) - off
		}
		if _, err := zw.Write(src[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(NewReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("stream round trip mismatch: %d in, %d out", len(src), len(got))
	}
	return buf.Bytes()
}

func TestStreamRoundTripCompressible(t *testing.T) {
	src := []byte(strings.Repeat("virtqueue descriptor ring entry ", 300000)) // ~9.6 MiB, 3 blocks
	stream := streamRoundTrip(t, src)
	if len(stream) >= len(src)/4 {
		t.Fatalf("stream %d bytes of %d; expected strong compression", len(stream), len(src))
	}
}

func TestStreamRoundTripIncompressible(t *testing.T) {
	src := make([]byte, 5<<20)
	rand.New(rand.NewSource(3)).Read(src)
	stream := streamRoundTrip(t, src)
	// Stored blocks: overhead is just headers.
	if len(stream) > len(src)+1024 {
		t.Fatalf("incompressible stream expanded to %d of %d", len(stream), len(src))
	}
}

func TestStreamEmpty(t *testing.T) {
	streamRoundTrip(t, nil)
}

func TestStreamExactBlockMultiple(t *testing.T) {
	src := bytes.Repeat([]byte{7}, 2*ChunkSize)
	streamRoundTrip(t, src)
}

func TestStreamWriteAfterClose(t *testing.T) {
	zw := NewWriter(io.Discard)
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write([]byte("late")); err == nil {
		t.Fatal("write after close accepted")
	}
	if err := zw.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
}

func TestStreamRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	zw := NewWriter(&buf)
	if _, err := zw.Write(bytes.Repeat([]byte("data"), 10000)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, 9, len(full) / 2, len(full) - 4} {
		if _, err := io.ReadAll(NewReader(bytes.NewReader(full[:cut]))); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestStreamRejectsImplausibleHeader(t *testing.T) {
	bad := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := io.ReadAll(NewReader(bytes.NewReader(bad))); err == nil {
		t.Fatal("implausible header accepted")
	}
}
