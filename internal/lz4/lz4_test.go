package lz4

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	block := CompressBlock(src)
	got, err := DecompressBlock(block, len(src))
	if err != nil {
		t.Fatalf("decompress: %v (src len %d, block len %d)", err, len(src), len(block))
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: src %d bytes, got %d bytes", len(src), len(got))
	}
	return block
}

func TestRoundTripEmpty(t *testing.T) { roundTrip(t, nil) }

func TestRoundTripTiny(t *testing.T) {
	for n := 1; n <= 16; n++ {
		src := bytes.Repeat([]byte{'x'}, n)
		roundTrip(t, src)
	}
}

func TestRoundTripAllByteValues(t *testing.T) {
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i)
	}
	roundTrip(t, src)
}

func TestCompressibleTextShrinks(t *testing.T) {
	src := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 500))
	block := roundTrip(t, src)
	if len(block) >= len(src)/4 {
		t.Fatalf("repetitive text compressed to %d/%d bytes; expected < 25%%", len(block), len(src))
	}
}

func TestRunLengthEncodesOverlappingMatch(t *testing.T) {
	// A long run of one byte exercises the overlapping-match (offset 1)
	// copy in the decoder.
	src := bytes.Repeat([]byte{0xAB}, 100000)
	block := roundTrip(t, src)
	if len(block) > 500 {
		t.Fatalf("100k run compressed to %d bytes; RLE should be tiny", len(block))
	}
}

func TestIncompressibleRandomBoundedExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	src := make([]byte, 1<<20)
	rng.Read(src)
	block := roundTrip(t, src)
	maxExpansion := len(src) + len(src)/255 + 16
	if len(block) > maxExpansion {
		t.Fatalf("incompressible input expanded to %d bytes, bound %d", len(block), maxExpansion)
	}
}

func TestRoundTripMixedContent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var src []byte
	for i := 0; i < 200; i++ {
		switch i % 3 {
		case 0:
			chunk := make([]byte, rng.Intn(400))
			rng.Read(chunk)
			src = append(src, chunk...)
		case 1:
			src = append(src, bytes.Repeat([]byte{byte(i)}, rng.Intn(400))...)
		case 2:
			src = append(src, []byte("push rbp; mov rbp, rsp; sub rsp, 0x20; ")...)
		}
	}
	roundTrip(t, src)
}

func TestRoundTripSizeSweep(t *testing.T) {
	// Boundary sizes around the compressor's mfLimit/lastLiterals cutoffs.
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 4, 5, 11, 12, 13, 14, 15, 16, 17, 63, 64, 65, 255, 256, 4095, 4096, 4097} {
		src := make([]byte, n)
		rng.Read(src)
		roundTrip(t, src)
		// Also a compressible variant of the same length.
		for i := range src {
			src[i] = byte(i % 7)
		}
		roundTrip(t, src)
	}
}

func TestQuickRoundTripArbitrary(t *testing.T) {
	f := func(src []byte) bool {
		block := CompressBlock(src)
		got, err := DecompressBlock(block, len(src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripCompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64, n uint16) bool {
		r := rand.New(rand.NewSource(seed))
		src := make([]byte, int(n)*4)
		// Low-entropy content: bytes drawn from a small alphabet with runs.
		for i := 0; i < len(src); {
			b := byte(r.Intn(8))
			run := 1 + r.Intn(20)
			for j := 0; j < run && i < len(src); j++ {
				src[i] = b
				i++
			}
		}
		block := CompressBlock(src)
		got, err := DecompressBlock(block, len(src))
		return err == nil && bytes.Equal(got, src)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressRejectsBadOffset(t *testing.T) {
	// token: 1 literal, match len 4; literal 'A'; offset 9 with only 1 byte
	// of output so far.
	bad := []byte{0x10, 'A', 9, 0}
	if _, err := DecompressBlock(bad, 10); err == nil {
		t.Fatal("offset beyond output start accepted")
	}
}

func TestDecompressRejectsZeroOffset(t *testing.T) {
	bad := []byte{0x10, 'A', 0, 0}
	if _, err := DecompressBlock(bad, 10); err == nil {
		t.Fatal("zero offset accepted")
	}
}

func TestDecompressRejectsTruncatedLiterals(t *testing.T) {
	bad := []byte{0xF0, 10} // promises 25 literals, provides none
	if _, err := DecompressBlock(bad, 100); err == nil {
		t.Fatal("truncated literals accepted")
	}
}

func TestDecompressRejectsTruncatedOffset(t *testing.T) {
	bad := []byte{0x14, 'A', 5} // 1 literal then match, but only 1 offset byte
	if _, err := DecompressBlock(bad, 100); err == nil {
		t.Fatal("truncated offset accepted")
	}
}

func TestDecompressRejectsOutputOverrun(t *testing.T) {
	src := bytes.Repeat([]byte("abcd1234"), 100)
	block := CompressBlock(src)
	if _, err := DecompressBlock(block, len(src)-1); err == nil {
		t.Fatal("undersized destination accepted")
	}
}

func TestDecompressRejectsShortOutput(t *testing.T) {
	src := []byte("hello world")
	block := CompressBlock(src)
	if _, err := DecompressBlock(block, len(src)+1); err == nil {
		t.Fatal("oversized destination accepted (output underrun)")
	}
}

func TestDecompressRejectsTruncatedLengthExtension(t *testing.T) {
	bad := []byte{0xF0, 255, 255} // literal length extension never terminates
	if _, err := DecompressBlock(bad, 2000); err == nil {
		t.Fatal("unterminated length extension accepted")
	}
}

func TestDecompressArbitraryGarbageNeverPanics(t *testing.T) {
	f := func(junk []byte, size uint16) bool {
		_, _ = DecompressBlock(junk, int(size)) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	src := []byte(strings.Repeat("kernel code segment ", 1000))
	frame := Compress(src)
	got, err := Decompress(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("frame round trip mismatch")
	}
}

func TestFrameInfo(t *testing.T) {
	src := make([]byte, 12345)
	frame := Compress(src)
	block, size, err := FrameInfo(frame)
	if err != nil {
		t.Fatal(err)
	}
	if size != len(src) {
		t.Fatalf("size = %d, want %d", size, len(src))
	}
	if len(block) >= len(frame) {
		t.Fatal("block should exclude header")
	}
}

func TestFrameRejectsBadMagic(t *testing.T) {
	frame := Compress([]byte("data"))
	frame[0] ^= 0xFF
	if _, err := Decompress(frame); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestFrameRejectsShort(t *testing.T) {
	if _, err := Decompress([]byte{1, 2, 3}); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestFrameRejectsImplausibleSize(t *testing.T) {
	frame := Compress([]byte("data"))
	for i := 0; i < 8; i++ {
		frame[len(frameMagic)+i] = 0xFF
	}
	if _, err := Decompress(frame); err == nil {
		t.Fatal("implausible size accepted")
	}
}

func TestCompressionRatioOnKernelLikeData(t *testing.T) {
	// Kernel images mix machine code (moderately compressible), tables
	// (highly compressible), and compressed-ish data sections. Emulate the
	// mix and require a plausible overall ratio (2x-10x).
	rng := rand.New(rand.NewSource(1234))
	var src []byte
	dict := make([][]byte, 64)
	for i := range dict {
		w := make([]byte, 8+rng.Intn(24))
		rng.Read(w)
		dict[i] = w
	}
	for len(src) < 4<<20 {
		src = append(src, dict[rng.Intn(len(dict))]...)
	}
	block := CompressBlock(src)
	ratio := float64(len(src)) / float64(len(block))
	if ratio < 2 || ratio > 30 {
		t.Fatalf("kernel-like ratio %.2f outside plausible window", ratio)
	}
}

func BenchmarkCompress4MiB(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	dict := make([][]byte, 64)
	for i := range dict {
		w := make([]byte, 16)
		rng.Read(w)
		dict[i] = w
	}
	var src []byte
	for len(src) < 4<<20 {
		src = append(src, dict[rng.Intn(len(dict))]...)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CompressBlock(src)
	}
}

func BenchmarkDecompress4MiB(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	dict := make([][]byte, 64)
	for i := range dict {
		w := make([]byte, 16)
		rng.Read(w)
		dict[i] = w
	}
	var src []byte
	for len(src) < 4<<20 {
		src = append(src, dict[rng.Intn(len(dict))]...)
	}
	block := CompressBlock(src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecompressBlock(block, len(src)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDecompressAllocsOnce: the frame decoder must preallocate the output
// from the content-size hint — one allocation for the result, no
// append-growth copies on multi-MiB payloads.
func TestDecompressAllocsOnce(t *testing.T) {
	src := bytes.Repeat([]byte("multi-megabyte payload "), 1<<17) // ~2.9 MiB
	frame := Compress(src)
	allocs := testing.AllocsPerRun(5, func() {
		out, err := Decompress(frame)
		if err != nil || len(out) != len(src) {
			t.Fatalf("len %d err %v", len(out), err)
		}
	})
	if allocs > 1 {
		t.Fatalf("Decompress allocated %v times per run, want 1", allocs)
	}
}

// TestDecompressBlockIntoReusesBuffer: the into-buffer API must not
// allocate at all.
func TestDecompressBlockIntoReusesBuffer(t *testing.T) {
	src := bytes.Repeat([]byte("reusable "), 1<<15)
	block := CompressBlock(src)
	dst := make([]byte, len(src))
	allocs := testing.AllocsPerRun(5, func() {
		if err := DecompressBlockInto(dst, block); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecompressBlockInto allocated %v times per run, want 0", allocs)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("round trip mismatch")
	}
}
