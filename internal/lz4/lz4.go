// Package lz4 is a from-scratch implementation of the LZ4 block format
// (https://github.com/lz4/lz4/blob/dev/doc/lz4_Block_format.md), plus a
// small framed container used to store compressed kernel payloads inside
// bzImage files.
//
// SEVeriFast's central tradeoff is between measurement cost (per compressed
// byte) and decompression cost (per uncompressed byte), so the reproduction
// needs a real codec with realistic ratios: the synthetic kernels in
// internal/kernelgen are tuned against this compressor to reproduce the
// paper's Fig. 8 bzImage sizes.
//
// Only the Go standard library is used.
package lz4

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	minMatch     = 4  // smallest encodable match
	lastLiterals = 5  // spec: last 5 bytes must be literals
	mfLimit      = 12 // spec: no match may start within 12 bytes of the end
	maxOffset    = 65535

	hashLog   = 16
	hashShift = 32 - hashLog
	hashMul   = 2654435761 // Knuth's multiplicative hash constant
)

// Errors returned by the decoders.
var (
	ErrCorrupt  = errors.New("lz4: corrupt input")
	ErrDstSmall = errors.New("lz4: destination buffer too small")
)

func hash4(u uint32) uint32 { return (u * hashMul) >> hashShift }

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// CompressBlock compresses src using the LZ4 block format and returns the
// compressed block. The output is self-delimiting only in combination with
// the uncompressed size, which the caller must convey separately (the frame
// helpers below do so).
//
// Incompressible input grows by at most len(src)/255 + 16 bytes.
func CompressBlock(src []byte) []byte {
	return CompressBlockAppend(make([]byte, 0, maxCompressedLen(len(src))), src)
}

// CompressBlockAppend is CompressBlock appending to dst, letting callers
// reuse a compression buffer across blocks (pass dst[:0]).
func CompressBlockAppend(dst, src []byte) []byte {
	if len(src) == 0 {
		// A zero-length block is a single empty-literal token.
		return append(dst, 0)
	}
	if len(src) < mfLimit+1 {
		return appendLiterals(dst, src)
	}

	var table [1 << hashLog]int32
	for i := range table {
		table[i] = -1
	}

	anchor := 0
	s := 0
	limit := len(src) - mfLimit
	matchLimit := len(src) - lastLiterals

	for s < limit {
		// Find a match candidate via the hash table.
		h := hash4(load32(src, s))
		ref := int(table[h])
		table[h] = int32(s)
		if ref < 0 || s-ref > maxOffset || load32(src, ref) != load32(src, s) {
			s++
			continue
		}

		// Extend the match backwards over bytes we already emitted as
		// pending literals.
		for s > anchor && ref > 0 && src[s-1] == src[ref-1] {
			s--
			ref--
		}

		// Extend forwards, but never into the last-literals region.
		matchLen := minMatch
		for s+matchLen < matchLimit && src[s+matchLen] == src[ref+matchLen] {
			matchLen++
		}

		dst = appendSequence(dst, src[anchor:s], s-ref, matchLen)
		s += matchLen
		anchor = s

		// Prime the table with a position inside the match so long runs
		// keep finding themselves.
		if s < limit {
			table[hash4(load32(src, s-2))] = int32(s - 2)
		}
	}

	return appendLiterals(dst, src[anchor:])
}

// appendSequence emits one LZ4 sequence: token, literal run, offset, match
// length extension.
func appendSequence(dst []byte, literals []byte, offset, matchLen int) []byte {
	litLen := len(literals)
	mlCode := matchLen - minMatch

	token := byte(0)
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	if mlCode >= 15 {
		token |= 15
	} else {
		token |= byte(mlCode)
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = appendLenExt(dst, litLen-15)
	}
	dst = append(dst, literals...)
	dst = append(dst, byte(offset), byte(offset>>8))
	if mlCode >= 15 {
		dst = appendLenExt(dst, mlCode-15)
	}
	return dst
}

// appendLiterals emits the final literals-only sequence.
func appendLiterals(dst []byte, literals []byte) []byte {
	litLen := len(literals)
	if litLen >= 15 {
		dst = append(dst, 15<<4)
		dst = appendLenExt(dst, litLen-15)
	} else {
		dst = append(dst, byte(litLen)<<4)
	}
	return append(dst, literals...)
}

// appendLenExt writes the 255-run length extension encoding of n.
func appendLenExt(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 255)
		n -= 255
	}
	return append(dst, byte(n))
}

// DecompressBlock decompresses an LZ4 block into a buffer of exactly
// dstSize bytes and returns it. It validates offsets and lengths and never
// reads or writes out of bounds.
func DecompressBlock(src []byte, dstSize int) ([]byte, error) {
	if dstSize < 0 {
		return nil, fmt.Errorf("%w: negative size", ErrCorrupt)
	}
	dst := make([]byte, dstSize)
	if err := DecompressBlockInto(dst, src); err != nil {
		return nil, err
	}
	return dst, nil
}

// DecompressBlockInto decompresses an LZ4 block into dst, which must be
// exactly the uncompressed size. It allocates nothing, so callers on hot
// paths can reuse or pool destination buffers.
func DecompressBlockInto(dst, src []byte) error {
	d := 0
	s := 0

	for s < len(src) {
		token := src[s]
		s++

		// Literal run.
		litLen := int(token >> 4)
		if litLen == 15 {
			n, ns, err := readLenExt(src, s)
			if err != nil {
				return err
			}
			litLen += n
			s = ns
		}
		if litLen > 0 {
			if s+litLen > len(src) || d+litLen > len(dst) {
				return fmt.Errorf("%w: literal run overruns buffer", ErrCorrupt)
			}
			copy(dst[d:], src[s:s+litLen])
			s += litLen
			d += litLen
		}
		if s == len(src) {
			break // final literals-only sequence
		}

		// Match.
		if s+2 > len(src) {
			return fmt.Errorf("%w: truncated offset", ErrCorrupt)
		}
		offset := int(src[s]) | int(src[s+1])<<8
		s += 2
		if offset == 0 || offset > d {
			return fmt.Errorf("%w: offset %d at output position %d", ErrCorrupt, offset, d)
		}
		matchLen := int(token&15) + minMatch
		if token&15 == 15 {
			n, ns, err := readLenExt(src, s)
			if err != nil {
				return err
			}
			matchLen += n
			s = ns
		}
		if d+matchLen > len(dst) {
			return fmt.Errorf("%w: match overruns output (%d+%d > %d)", ErrCorrupt, d, matchLen, len(dst))
		}
		// Byte-by-byte copy: matches may overlap their own output (RLE).
		ref := d - offset
		for i := 0; i < matchLen; i++ {
			dst[d+i] = dst[ref+i]
		}
		d += matchLen
	}

	if d != len(dst) {
		return fmt.Errorf("%w: decoded %d bytes, expected %d", ErrCorrupt, d, len(dst))
	}
	return nil
}

func readLenExt(src []byte, s int) (n, next int, err error) {
	for {
		if s >= len(src) {
			return 0, 0, fmt.Errorf("%w: truncated length extension", ErrCorrupt)
		}
		b := src[s]
		s++
		n += int(b)
		if b != 255 {
			return n, s, nil
		}
	}
}

// Frame format: magic, uncompressed size (LE u64), block. Used to embed
// compressed payloads in bzImage files where the loader needs to size the
// output buffer before decompressing.
var frameMagic = []byte{'S', 'V', 'L', 'Z', '4', 1}

// Compress wraps CompressBlock in a frame carrying the uncompressed size.
func Compress(src []byte) []byte {
	block := CompressBlock(src)
	out := make([]byte, 0, len(frameMagic)+8+len(block))
	out = append(out, frameMagic...)
	var sz [8]byte
	binary.LittleEndian.PutUint64(sz[:], uint64(len(src)))
	out = append(out, sz[:]...)
	return append(out, block...)
}

// Decompress unwraps a frame produced by Compress.
func Decompress(src []byte) ([]byte, error) {
	block, size, err := FrameInfo(src)
	if err != nil {
		return nil, err
	}
	return DecompressBlock(block, size)
}

// FrameInfo validates a frame header and returns the contained block and
// the uncompressed size without decompressing.
func FrameInfo(src []byte) (block []byte, uncompressedSize int, err error) {
	if len(src) < len(frameMagic)+8 {
		return nil, 0, fmt.Errorf("%w: short frame", ErrCorrupt)
	}
	for i, m := range frameMagic {
		if src[i] != m {
			return nil, 0, fmt.Errorf("%w: bad frame magic", ErrCorrupt)
		}
	}
	size := binary.LittleEndian.Uint64(src[len(frameMagic):])
	if size > 1<<40 {
		return nil, 0, fmt.Errorf("%w: implausible uncompressed size %d", ErrCorrupt, size)
	}
	return src[len(frameMagic)+8:], int(size), nil
}
