package lz4

import (
	"bytes"
	"testing"
)

// FuzzDecompressBlock feeds hostile token streams to the block decoder.
// The decoder must never panic or over-allocate: it either produces
// exactly dstSize bytes or returns an error.
func FuzzDecompressBlock(f *testing.F) {
	f.Add([]byte{}, 16)
	f.Add([]byte{0x00}, 0)
	f.Add(CompressBlock([]byte("hello hello hello hello")), 23)
	f.Add(CompressBlock(bytes.Repeat([]byte{0xAA}, 4096)), 4096)
	f.Add([]byte{0xF0, 0xFF, 0xFF, 0xFF}, 64) // runaway literal length extension
	f.Add([]byte{0x10, 'x', 0x00, 0x00}, 32)  // zero match offset
	f.Fuzz(func(t *testing.T, src []byte, dstSize int) {
		if dstSize < 0 || dstSize > 1<<20 {
			return
		}
		out, err := DecompressBlock(src, dstSize)
		if err == nil && len(out) != dstSize {
			t.Fatalf("DecompressBlock returned %d bytes without error, want %d", len(out), dstSize)
		}
	})
}

// FuzzDecompress exercises the framed path (FrameInfo + block decode) on
// arbitrary input, plus the compress/decompress round trip: whatever we
// compress must decompress back bit for bit.
func FuzzDecompress(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("LZ4B"))
	f.Add(Compress(nil))
	f.Add(Compress([]byte("the quick brown fox jumps over the lazy dog")))
	f.Add(Compress(bytes.Repeat([]byte("abcd"), 1000)))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes as a frame: must not panic; errors are fine.
		if out, err := Decompress(data); err == nil {
			// A frame that decodes must re-encode to a decodable frame of
			// the same content.
			again, err := Decompress(Compress(out))
			if err != nil {
				t.Fatalf("re-compress of valid frame failed: %v", err)
			}
			if !bytes.Equal(again, out) {
				t.Fatal("re-compressed frame decodes to different bytes")
			}
		}
		// Bytes as plain content: the round trip must be exact.
		if len(data) <= 1<<20 {
			out, err := Decompress(Compress(data))
			if err != nil {
				t.Fatalf("round trip failed: %v", err)
			}
			if !bytes.Equal(out, data) {
				t.Fatal("round trip mismatch")
			}
		}
	})
}
