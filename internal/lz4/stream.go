package lz4

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Streaming container: independent blocks of up to ChunkSize uncompressed
// bytes, each preceded by a header of (compressedLen uint32, rawLen
// uint32). compressedLen == rawLen signals a stored (incompressible)
// block. A zero/zero header terminates the stream.
//
// The boot path uses whole-buffer blocks; the streaming form exists for
// host-side tooling (sevf-mkkernel pipelines, snapshot shipping) and
// matches how the real lz4 frame format chunks input.

// ChunkSize is the uncompressed block granularity of the stream writer.
const ChunkSize = 4 << 20

// Writer compresses a stream block-by-block.
type Writer struct {
	w      io.Writer
	buf    []byte
	comp   []byte // reused compression output buffer
	n      int
	closed bool
}

// NewWriter returns a streaming compressor in front of w. The caller must
// Close it to flush the final block and terminator.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, buf: make([]byte, ChunkSize)}
}

// Write buffers p, emitting full blocks as they fill.
func (zw *Writer) Write(p []byte) (int, error) {
	if zw.closed {
		return 0, fmt.Errorf("lz4: write after Close")
	}
	total := 0
	for len(p) > 0 {
		n := copy(zw.buf[zw.n:], p)
		zw.n += n
		p = p[n:]
		total += n
		if zw.n == len(zw.buf) {
			if err := zw.flushBlock(); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

func (zw *Writer) flushBlock() error {
	if zw.n == 0 {
		return nil
	}
	raw := zw.buf[:zw.n]
	zw.comp = CompressBlockAppend(zw.comp[:0], raw)
	comp := zw.comp
	var hdr [8]byte
	if len(comp) >= len(raw) {
		// Store incompressible blocks raw.
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(raw)))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(raw)))
		if _, err := zw.w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := zw.w.Write(raw); err != nil {
			return err
		}
	} else {
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(comp)))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(raw)))
		if _, err := zw.w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := zw.w.Write(comp); err != nil {
			return err
		}
	}
	zw.n = 0
	return nil
}

// Close flushes the pending block and writes the stream terminator.
func (zw *Writer) Close() error {
	if zw.closed {
		return nil
	}
	if err := zw.flushBlock(); err != nil {
		return err
	}
	zw.closed = true
	var hdr [8]byte
	_, err := zw.w.Write(hdr[:])
	return err
}

// Reader decompresses a stream produced by Writer.
type Reader struct {
	r    io.Reader
	cur  []byte
	done bool
	// Reused per-block buffers: cur always aliases one of these, and Read
	// copies out of cur, so recycling them across blocks is safe.
	blockBuf []byte
	outBuf   []byte
}

// NewReader returns a streaming decompressor over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Read yields decompressed bytes.
func (zr *Reader) Read(p []byte) (int, error) {
	for len(zr.cur) == 0 {
		if zr.done {
			return 0, io.EOF
		}
		if err := zr.nextBlock(); err != nil {
			return 0, err
		}
	}
	n := copy(p, zr.cur)
	zr.cur = zr.cur[n:]
	return n, nil
}

func (zr *Reader) nextBlock() error {
	var hdr [8]byte
	if _, err := io.ReadFull(zr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return fmt.Errorf("%w: missing stream terminator", ErrCorrupt)
		}
		return err
	}
	compLen := binary.LittleEndian.Uint32(hdr[0:])
	rawLen := binary.LittleEndian.Uint32(hdr[4:])
	if compLen == 0 && rawLen == 0 {
		zr.done = true
		return nil
	}
	if rawLen > ChunkSize || compLen > uint32(maxCompressedLen(int(rawLen))) {
		return fmt.Errorf("%w: implausible block header (%d/%d)", ErrCorrupt, compLen, rawLen)
	}
	if cap(zr.blockBuf) < int(compLen) {
		zr.blockBuf = make([]byte, compLen)
	}
	block := zr.blockBuf[:compLen]
	if _, err := io.ReadFull(zr.r, block); err != nil {
		return fmt.Errorf("%w: truncated block: %w", ErrCorrupt, err)
	}
	if compLen == rawLen {
		zr.cur = block // stored
		return nil
	}
	if cap(zr.outBuf) < int(rawLen) {
		zr.outBuf = make([]byte, rawLen)
	}
	out := zr.outBuf[:rawLen]
	if err := DecompressBlockInto(out, block); err != nil {
		return err
	}
	zr.cur = out
	return nil
}

// maxCompressedLen bounds CompressBlock's worst-case output.
func maxCompressedLen(raw int) int { return raw + raw/255 + 16 }
