package bzimage

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzVMLinux is a small compressible stand-in kernel for building seeds.
func fuzzVMLinux() []byte {
	b := make([]byte, 32*1024)
	for i := range b {
		b[i] = byte(i>>3) ^ byte(i)
	}
	return b
}

// FuzzParse throws hostile setup headers at the bzImage parser. Parse and
// ExtractVMLinux must never panic or read out of bounds regardless of what
// the boot sector claims (setup_sects, payload offset/length, container
// size fields are all attacker-controlled in a hosted image).
func FuzzParse(f *testing.F) {
	img, err := Build(fuzzVMLinux(), CodecLZ4, 1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add(img[:setupSize])             // setup block only
	f.Add(img[:len(img)-1])            // truncated payload
	f.Add(make([]byte, setupSize))     // zeros: no boot flag
	f.Add(bytes.Repeat(img, 1)[:1024]) // short

	// Corrupted variants as explicit seeds.
	flag := append([]byte(nil), img...)
	binary.LittleEndian.PutUint16(flag[0x1FE:], 0xAA54) // wrong boot flag
	f.Add(flag)
	hdr := append([]byte(nil), img...)
	copy(hdr[0x202:], "XXXX") // wrong HdrS magic
	f.Add(hdr)
	sects := append([]byte(nil), img...)
	sects[0x1F1] = 0xFF // setup_sects overruns the image
	f.Add(sects)
	payOff := append([]byte(nil), img...)
	binary.LittleEndian.PutUint32(payOff[0x250:], 0xFFFFFFF0) // payload off the end
	f.Add(payOff)
	payLen := append([]byte(nil), img...)
	binary.LittleEndian.PutUint32(payLen[0x254:], 0xFFFFFFF0)
	f.Add(payLen)

	f.Fuzz(func(t *testing.T, data []byte) {
		info, err := Parse(data)
		if err != nil {
			return
		}
		// Whatever parsed must also extract or fail cleanly — the guest
		// bootstrap runs exactly this on the staged image.
		if _, err := ExtractVMLinux(data); err == nil {
			if info.Uncompressed < 0 {
				t.Fatal("negative uncompressed size on extractable image")
			}
		}
	})
}

// FuzzDecompressPayload targets the payload container parser directly:
// arbitrary container bytes (magic, codec byte, size field, body) must
// decode or error, never panic, and never return a slice that disagrees
// with the container's declared size.
func FuzzDecompressPayload(f *testing.F) {
	img, err := Build(fuzzVMLinux(), CodecLZ4, 1)
	if err != nil {
		f.Fatal(err)
	}
	info, err := Parse(img)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(info.Payload)
	f.Add([]byte("SVPL"))
	f.Add(append([]byte("SVPL"), 0xFF, 0, 0, 0, 0, 0, 0, 0, 0))
	truncated := append([]byte(nil), info.Payload[:len(info.Payload)/2]...)
	f.Add(truncated)
	corrupt := append([]byte(nil), info.Payload...)
	if len(corrupt) > 40 {
		corrupt[40] ^= 0xFF
	}
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, payload []byte) {
		out, err := DecompressPayload(payload)
		if err != nil {
			return
		}
		_, usize, err := sniffPayload(payload)
		if err != nil {
			t.Fatalf("DecompressPayload succeeded but sniff failed: %v", err)
		}
		if len(out) != usize {
			t.Fatalf("decoded %d bytes, container declares %d", len(out), usize)
		}
	})
}
