// Package bzimage builds and parses Linux x86 bzImage files: a real-mode
// setup block with the boot-protocol header ("HdrS"), a protected-mode
// bootstrap loader stub, and a compressed kernel payload.
//
// This mirrors the on-disk format closely enough that all the costs the
// paper reasons about are faithful: the bzImage is bigger than its payload
// by the setup block and the decompressor stub, the payload is located via
// payload_offset/payload_length exactly as Linux's own loader does, and the
// codec is sniffed from the payload container. The boot verifier in
// internal/verifier loads images built here; the guest Linux model in
// internal/linux runs the bootstrap stage by really decompressing the
// payload.
package bzimage

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"

	"github.com/severifast/severifast/internal/artifact"
	"github.com/severifast/severifast/internal/lz4"
)

const (
	sectorSize = 512
	// setupSects is the number of real-mode sectors after the boot sector.
	// Modern kernels use a handful; we fix it for determinism.
	setupSects = 7
	setupSize  = sectorSize * (setupSects + 1)

	bootFlag  = 0xAA55
	hdrSMagic = 0x53726448 // "HdrS", little-endian
	// protocol version 2.15, what recent kernels report.
	protocolVersion = 0x020F

	code32Start = 0x100000

	// stubSize is the size of the synthetic protected-mode decompressor
	// stub that precedes the payload. Real kernels carry roughly this much
	// extracted-in-place loader code.
	stubSize = 24 * 1024
)

// Codec identifies the payload compression.
type Codec string

// Supported payload codecs.
const (
	CodecNone Codec = "none"
	CodecLZ4  Codec = "lz4"
	CodecGzip Codec = "gzip"
)

// payload container: magic, codec byte, uncompressed size, data.
var payloadMagic = []byte{'S', 'V', 'P', 'L'}

// Errors.
var (
	ErrNotBzImage = errors.New("bzimage: not a valid bzImage")
	ErrBadPayload = errors.New("bzimage: corrupt payload")
)

// Info describes a parsed image.
type Info struct {
	SetupSects    int
	PayloadOffset int // into the protected-mode region
	PayloadLength int
	InitSize      uint32 // memory needed to decompress in place
	Codec         Codec
	Uncompressed  int    // size of the vmlinux inside
	Payload       []byte // the payload container (still compressed)
}

// Build wraps a vmlinux into a bzImage using the given codec. The seed
// fixes the synthetic setup/stub bytes so identical inputs produce
// identical images (their hashes go into the launch digest).
func Build(vmlinux []byte, codec Codec, seed int64) ([]byte, error) {
	payload, err := compressPayload(vmlinux, codec)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, setupSize+stubSize+len(payload))

	// Real-mode setup block: mostly 16-bit code we never execute; fill
	// with deterministic noise, then lay down the header fields.
	fill(rng, out[:setupSize])
	le := binary.LittleEndian
	out[0x1F1] = setupSects
	le.PutUint16(out[0x1FE:], bootFlag)
	out[0x200] = 0xEB // short jmp, as real kernels have
	out[0x201] = 0x66
	le.PutUint32(out[0x202:], hdrSMagic)
	le.PutUint16(out[0x206:], protocolVersion)
	out[0x211] = 0x01 // loadflags: LOADED_HIGH
	le.PutUint32(out[0x214:], code32Start)
	le.PutUint32(out[0x250:], stubSize)             // payload_offset
	le.PutUint32(out[0x254:], uint32(len(payload))) // payload_length
	initSize := (uint32(len(vmlinux)) + 0xFFFFF) &^ 0xFFFFF
	le.PutUint32(out[0x260:], initSize)

	// Protected-mode stub: the in-place decompressor. Synthetic bytes.
	fill(rng, out[setupSize:setupSize+stubSize])
	copy(out[setupSize+stubSize:], payload)
	return out, nil
}

func fill(rng *rand.Rand, b []byte) {
	// rand.Rand.Read never returns an error.
	_, _ = rng.Read(b)
}

// Parse validates the boot-protocol header and locates the payload.
func Parse(b []byte) (*Info, error) {
	if len(b) < setupSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the setup block", ErrNotBzImage, len(b))
	}
	le := binary.LittleEndian
	if le.Uint16(b[0x1FE:]) != bootFlag {
		return nil, fmt.Errorf("%w: missing 0xAA55 boot flag", ErrNotBzImage)
	}
	if le.Uint32(b[0x202:]) != hdrSMagic {
		return nil, fmt.Errorf("%w: missing HdrS magic", ErrNotBzImage)
	}
	sects := int(b[0x1F1])
	pmOff := sectorSize * (sects + 1)
	if pmOff > len(b) {
		return nil, fmt.Errorf("%w: setup_sects overruns image", ErrNotBzImage)
	}
	payOff := int(le.Uint32(b[0x250:]))
	payLen := int(le.Uint32(b[0x254:]))
	start := pmOff + payOff
	if start+payLen > len(b) || payLen < 0 || payOff < 0 {
		return nil, fmt.Errorf("%w: payload out of range", ErrNotBzImage)
	}
	payload := b[start : start+payLen]
	codec, usize, err := sniffPayload(payload)
	if err != nil {
		return nil, err
	}
	return &Info{
		SetupSects:    sects,
		PayloadOffset: payOff,
		PayloadLength: payLen,
		InitSize:      le.Uint32(b[0x260:]),
		Codec:         codec,
		Uncompressed:  usize,
		Payload:       payload,
	}, nil
}

// ExtractVMLinux parses the image and decompresses the embedded vmlinux —
// what the bzImage bootstrap loader does in the guest.
func ExtractVMLinux(b []byte) ([]byte, error) {
	info, err := Parse(b)
	if err != nil {
		return nil, err
	}
	return DecompressPayload(info.Payload)
}

func compressPayload(vmlinux []byte, codec Codec) ([]byte, error) {
	var data []byte
	switch codec {
	case CodecNone:
		data = vmlinux
	case CodecLZ4:
		data = lz4.CompressBlock(vmlinux)
	case CodecGzip:
		var buf bytes.Buffer
		zw, err := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
		if err != nil {
			return nil, err
		}
		if _, err := zw.Write(vmlinux); err != nil {
			return nil, err
		}
		if err := zw.Close(); err != nil {
			return nil, err
		}
		data = buf.Bytes()
	default:
		return nil, fmt.Errorf("bzimage: unknown codec %q", codec)
	}
	out := make([]byte, 0, len(payloadMagic)+1+8+len(data))
	out = append(out, payloadMagic...)
	out = append(out, codecByte(codec))
	var sz [8]byte
	binary.LittleEndian.PutUint64(sz[:], uint64(len(vmlinux)))
	out = append(out, sz[:]...)
	return append(out, data...), nil
}

// DecompressPayload unwraps and decompresses a payload container.
func DecompressPayload(payload []byte) ([]byte, error) {
	codec, usize, err := sniffPayload(payload)
	if err != nil {
		return nil, err
	}
	data := payload[len(payloadMagic)+1+8:]
	switch codec {
	case CodecNone:
		if len(data) != usize {
			return nil, fmt.Errorf("%w: raw payload size mismatch", ErrBadPayload)
		}
		out := make([]byte, usize)
		copy(out, data)
		return out, nil
	case CodecLZ4:
		// An LZ4 sequence emits at most ~255 output bytes per input byte
		// (run-length extension), so a container whose declared size
		// exceeds that bound is hostile; reject it before DecompressBlock
		// allocates the declared size.
		if usize > 256*len(data)+64 {
			return nil, fmt.Errorf("%w: declared size %d impossible for %d compressed bytes",
				ErrBadPayload, usize, len(data))
		}
		out, err := lz4.DecompressBlock(data, usize)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadPayload, err)
		}
		return out, nil
	case CodecGzip:
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadPayload, err)
		}
		// Decompress straight into a buffer preallocated from the declared
		// size (no append-doubling): a short stream fails ReadFull, and a
		// decompression bomb is caught by the one-byte overrun probe before
		// it can balloon past the declared size.
		out := make([]byte, usize)
		if _, err := io.ReadFull(zr, out); err != nil {
			return nil, fmt.Errorf("%w: gzip payload size mismatch: %w", ErrBadPayload, err)
		}
		var probe [1]byte
		if n, _ := zr.Read(probe[:]); n != 0 {
			return nil, fmt.Errorf("%w: gzip payload size mismatch", ErrBadPayload)
		}
		return out, nil
	}
	return nil, fmt.Errorf("%w: unknown codec", ErrBadPayload)
}

func sniffPayload(payload []byte) (Codec, int, error) {
	if len(payload) < len(payloadMagic)+1+8 {
		return "", 0, fmt.Errorf("%w: short container", ErrBadPayload)
	}
	if !bytes.Equal(payload[:len(payloadMagic)], payloadMagic) {
		return "", 0, fmt.Errorf("%w: bad container magic", ErrBadPayload)
	}
	var codec Codec
	switch payload[len(payloadMagic)] {
	case 0:
		codec = CodecNone
	case 1:
		codec = CodecLZ4
	case 2:
		codec = CodecGzip
	default:
		return "", 0, fmt.Errorf("%w: unknown codec byte %d", ErrBadPayload, payload[len(payloadMagic)])
	}
	usize := binary.LittleEndian.Uint64(payload[len(payloadMagic)+1:])
	// Kernels are tens of megabytes; anything claiming a gigabyte or more
	// is a hostile header trying to drive a huge allocation downstream.
	if usize >= 1<<30 {
		return "", 0, fmt.Errorf("%w: implausible uncompressed size", ErrBadPayload)
	}
	return codec, int(usize), nil
}

func codecByte(c Codec) byte {
	switch c {
	case CodecNone:
		return 0
	case CodecLZ4:
		return 1
	case CodecGzip:
		return 2
	}
	panic("bzimage: unknown codec " + string(c))
}

// Overhead is the fixed size a bzImage adds over its payload container.
func Overhead() int { return setupSize + stubSize }

// decompCache memoizes DecompressPayload by payload digest. Every VM on a
// host boots the same kernel image (the serverless assumption of §6.1), so
// concurrent-boot experiments share one decompressed buffer instead of
// fifty. Callers must treat the result as immutable.
var decompCache sync.Map // [32]byte -> []byte

// DecompressPayloadCached is DecompressPayload with a content-addressed
// cache. The returned slice is shared: do not modify it.
//
// When the payload slice is an interned artifact (the CoW fleet path,
// where every boot reads the same canonical image bytes), the memo is
// keyed by artifact identity and repeat boots skip even the SHA-256 of
// the compressed payload. Otherwise it falls back to the digest-keyed
// cache, which still shares the decompressed buffer across callers.
func DecompressPayloadCached(payload []byte) ([]byte, error) {
	if art := artifact.Lookup(payload); art != nil {
		v, err := art.Derived("bzimage.vmlinux", func() (any, error) {
			return DecompressPayload(payload)
		})
		if err != nil {
			return nil, err
		}
		return v.([]byte), nil
	}
	key := sha256.Sum256(payload)
	if v, ok := decompCache.Load(key); ok {
		return v.([]byte), nil
	}
	out, err := DecompressPayload(payload)
	if err != nil {
		return nil, err
	}
	actual, _ := decompCache.LoadOrStore(key, out)
	return actual.([]byte), nil
}
