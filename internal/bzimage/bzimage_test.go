package bzimage

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sampleVMLinux() []byte {
	// Compressible kernel-ish content.
	return []byte(strings.Repeat("mov rax, qword ptr [rbp-8]; call sha256_update; ", 20000))
}

func TestBuildParseLZ4(t *testing.T) {
	vm := sampleVMLinux()
	img, err := Build(vm, CodecLZ4, 1)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if info.Codec != CodecLZ4 {
		t.Fatalf("codec %q, want lz4", info.Codec)
	}
	if info.Uncompressed != len(vm) {
		t.Fatalf("uncompressed %d, want %d", info.Uncompressed, len(vm))
	}
	if info.SetupSects != setupSects {
		t.Fatalf("setup_sects %d", info.SetupSects)
	}
	if len(img) != Overhead()+len(info.Payload) {
		t.Fatalf("image size %d != overhead %d + payload %d", len(img), Overhead(), len(info.Payload))
	}
}

func TestExtractRoundTrip(t *testing.T) {
	vm := sampleVMLinux()
	for _, codec := range []Codec{CodecNone, CodecLZ4, CodecGzip} {
		img, err := Build(vm, codec, 1)
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		got, err := ExtractVMLinux(img)
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		if !bytes.Equal(got, vm) {
			t.Fatalf("%s: extracted vmlinux differs", codec)
		}
	}
}

func TestCompressionShrinksImage(t *testing.T) {
	vm := sampleVMLinux()
	raw, _ := Build(vm, CodecNone, 1)
	lz, _ := Build(vm, CodecLZ4, 1)
	gz, _ := Build(vm, CodecGzip, 1)
	if len(lz) >= len(raw) || len(gz) >= len(raw) {
		t.Fatalf("compressed images not smaller: raw %d lz4 %d gzip %d", len(raw), len(lz), len(gz))
	}
}

func TestDeterministicBuild(t *testing.T) {
	vm := sampleVMLinux()
	a, _ := Build(vm, CodecLZ4, 7)
	b, _ := Build(vm, CodecLZ4, 7)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different images; bzImage hashes must be reproducible")
	}
	c, _ := Build(vm, CodecLZ4, 8)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical setup/stub bytes")
	}
}

func TestParseRejectsMissingBootFlag(t *testing.T) {
	img, _ := Build(sampleVMLinux(), CodecLZ4, 1)
	img[0x1FE] = 0
	if _, err := Parse(img); err == nil {
		t.Fatal("missing boot flag accepted")
	}
}

func TestParseRejectsMissingHdrS(t *testing.T) {
	img, _ := Build(sampleVMLinux(), CodecLZ4, 1)
	img[0x202] = 'X'
	if _, err := Parse(img); err == nil {
		t.Fatal("missing HdrS accepted")
	}
}

func TestParseRejectsShort(t *testing.T) {
	if _, err := Parse(make([]byte, 100)); err == nil {
		t.Fatal("short image accepted")
	}
}

func TestParseRejectsPayloadOverrun(t *testing.T) {
	img, _ := Build(sampleVMLinux(), CodecLZ4, 1)
	// payload_length beyond the file
	img[0x254] = 0xFF
	img[0x255] = 0xFF
	img[0x256] = 0xFF
	img[0x257] = 0x7F
	if _, err := Parse(img); err == nil {
		t.Fatal("payload overrun accepted")
	}
}

func TestExtractDetectsCorruptPayload(t *testing.T) {
	vm := sampleVMLinux()
	img, _ := Build(vm, CodecLZ4, 1)
	// Flip a byte in the middle of the compressed payload.
	img[len(img)-100] ^= 0xFF
	if _, err := ExtractVMLinux(img); err == nil {
		// LZ4 corruption may occasionally decode to wrong bytes rather
		// than erroring; in that case the bytes must differ.
		got, err2 := ExtractVMLinux(img)
		if err2 == nil && bytes.Equal(got, vm) {
			t.Fatal("corrupt payload extracted to identical vmlinux")
		}
	}
}

func TestDecompressPayloadRejectsBadContainer(t *testing.T) {
	if _, err := DecompressPayload([]byte("nope")); err == nil {
		t.Fatal("short container accepted")
	}
	bad := append([]byte("SVPL"), 9)
	bad = append(bad, make([]byte, 8)...)
	if _, err := DecompressPayload(bad); err == nil {
		t.Fatal("unknown codec byte accepted")
	}
}

func TestBuildRejectsUnknownCodec(t *testing.T) {
	if _, err := Build([]byte("x"), Codec("zstd"), 1); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestInitSizeCoversVMLinux(t *testing.T) {
	vm := make([]byte, 5<<20)
	rand.New(rand.NewSource(2)).Read(vm)
	img, _ := Build(vm, CodecLZ4, 1)
	info, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if int(info.InitSize) < len(vm) {
		t.Fatalf("init_size %d < vmlinux %d", info.InitSize, len(vm))
	}
	if info.InitSize%0x100000 != 0 {
		t.Fatalf("init_size %#x not MiB-aligned", info.InitSize)
	}
}

func TestIncompressibleVMLinux(t *testing.T) {
	vm := make([]byte, 1<<20)
	rand.New(rand.NewSource(9)).Read(vm)
	img, err := Build(vm, CodecLZ4, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExtractVMLinux(img)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, vm) {
		t.Fatal("round trip of incompressible kernel failed")
	}
}

func TestQuickBuildParseArbitrarySizes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(n uint16, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vm := make([]byte, int(n)+1)
		r.Read(vm)
		img, err := Build(vm, CodecLZ4, seed)
		if err != nil {
			return false
		}
		got, err := ExtractVMLinux(img)
		return err == nil && bytes.Equal(got, vm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestParseNeverPanicsOnGarbage(t *testing.T) {
	f := func(junk []byte) bool {
		_, _ = Parse(junk)
		_, _ = DecompressPayload(junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}
