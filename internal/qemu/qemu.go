// Package qemu models the mainstream QEMU/OVMF flow for booting SEV
// guests (paper §2.5): full OVMF pre-encryption, UEFI Platform
// Initialization, and measured direct boot added to bypass GRUB. It is
// the baseline SEVeriFast is evaluated against in Figs. 9 and 10.
package qemu

import (
	"fmt"
	"sync"

	"github.com/severifast/severifast/internal/artifact"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/linux"
	"github.com/severifast/severifast/internal/measure"
	"github.com/severifast/severifast/internal/ovmf"
	"github.com/severifast/severifast/internal/psp"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/trace"
	"github.com/severifast/severifast/internal/verifier"
	"github.com/severifast/severifast/internal/virtio"

	"github.com/severifast/severifast/internal/firecracker"
)

// cmdlineCache holds the canonical interned byte form of each distinct
// cmdline string (a handful per fleet), so staging writes alias one
// immutable buffer with provenance instead of copying fresh bytes every
// boot.
var cmdlineCache sync.Map // string -> []byte

func cmdlineBytes(s string) []byte {
	if v, ok := cmdlineCache.Load(s); ok {
		return v.([]byte)
	}
	b := []byte(s)
	artifact.Intern(b)
	v, _ := cmdlineCache.LoadOrStore(s, b)
	return v.([]byte)
}

// Attestor mirrors firecracker.Attestor.
type Attestor interface {
	Attest(proc *sim.Proc, m *kvm.Machine) error
}

// Config describes one QEMU/OVMF SEV boot.
type Config struct {
	Preset    kernelgen.Preset
	Artifacts *kernelgen.Artifacts
	Initrd    []byte
	Cmdline   string
	VCPUs     int
	MemSize   uint64
	Level     sev.Level
	OVMFSeed  int64
	Attestor  Attestor
}

func (c *Config) fillDefaults() {
	if c.Cmdline == "" {
		c.Cmdline = c.Preset.Cmdline
	}
	if c.VCPUs == 0 {
		c.VCPUs = 1
	}
	if c.MemSize == 0 {
		c.MemSize = 256 << 20
	}
	if c.OVMFSeed == 0 {
		c.OVMFSeed = 1
	}
}

// Result is one completed QEMU boot.
type Result struct {
	Timeline     *trace.Timeline
	Breakdown    trace.Breakdown
	Report       *linux.BootReport
	Machine      *kvm.Machine
	LaunchDigest [32]byte
}

// Boot runs one QEMU/OVMF SEV boot to init (plus attestation when
// configured) on the calling simulation process.
func Boot(proc *sim.Proc, host *kvm.Host, cfg Config) (*Result, error) {
	cfg.fillDefaults()
	if cfg.Artifacts == nil {
		return nil, fmt.Errorf("qemu: no kernel artifacts")
	}
	if !cfg.Level.Encrypted() {
		return nil, fmt.Errorf("qemu: this flow models SEV boots; use firecracker's stock path for %v", cfg.Level)
	}
	model := host.Model

	m := host.NewMachine(proc, cfg.MemSize, cfg.Level)
	m.Timeline.Annotate("vmm", "qemu")
	m.Timeline.Annotate("scheme", "qemu-ovmf")
	m.Timeline.Annotate("level", cfg.Level.String())
	attachDevices(m, cfg.Preset)
	proc.Sleep(model.QEMUProcessStart)

	// QEMU's measured direct boot hashes components at launch, on the
	// critical path (no out-of-band hash file).
	m.Timeline.Begin("hash.components", proc.Now())
	kernelImage := cfg.Artifacts.BzImageLZ4
	hashes := measure.HashComponents(kernelImage, cfg.Initrd, cfg.Cmdline)
	proc.Sleep(model.Hash(len(kernelImage)) + model.Hash(len(cfg.Initrd)))
	m.Timeline.End("hash.components", proc.Now())

	// Stage components via fw_cfg (shared memory), plus the plain-text
	// boot structures OVMF consumes to build boot_params. Interning
	// first lets the staged ranges alias the canonical artifact copy.
	artifact.Intern(kernelImage)
	artifact.Intern(cfg.Initrd)
	m.Timeline.Begin("vmm.stage", proc.Now())
	if err := m.Mem.HostWriteAliased(measure.GPAStageA, kernelImage); err != nil {
		return nil, err
	}
	proc.Sleep(model.VMMLoad(len(kernelImage)))
	if len(cfg.Initrd) > 0 {
		if err := m.Mem.HostWriteAliased(measure.GPAStageB, cfg.Initrd); err != nil {
			return nil, err
		}
		proc.Sleep(model.VMMLoad(len(cfg.Initrd)))
	}
	// The cmdline travels over fw_cfg too: staged shared, verified in the
	// guest against the pre-encrypted hash page. The canonical bytes are
	// cached per cmdline string so every boot aliases one interned buffer
	// instead of materializing a fresh copy.
	cmdlineStage := uint64(measure.GPAStageB) + uint64(len(cfg.Initrd)+4096)&^4095
	if err := m.Mem.HostWriteAliased(cmdlineStage, cmdlineBytes(cfg.Cmdline)); err != nil {
		return nil, err
	}
	proc.Sleep(model.VMMSetupMisc)
	m.Timeline.End("vmm.stage", proc.Now())

	m.Timeline.Begin("sev.host-prep", proc.Now())
	m.PrepSEVHost(proc)
	m.Timeline.End("sev.host-prep", proc.Now())

	// Pre-encryption: the whole firmware volume + varstore + hash page
	// (+ SNP pages + VMSA) — Fig. 10's ~288 ms column.
	policy := launchPolicy(cfg.Level)
	m.Timeline.Begin("preenc", proc.Now())
	if err := m.StartLaunch(proc, policy); err != nil {
		return nil, err
	}
	m.Timeline.Annotate("asid", fmt.Sprintf("%d", m.Launch.ASID()))
	batch := m.Launch.NewUpdateBatch()
	for _, r := range ovmf.PlanRegions(cfg.OVMFSeed, cfg.Level, hashes) {
		var err error
		if r.Art != nil {
			err = batch.StageArtifact(proc, r.GPA, r.Art, r.ArtOff, len(r.Data), r.Type)
		} else {
			err = batch.Stage(proc, r.GPA, r.Data, r.Type)
		}
		if err != nil {
			return nil, fmt.Errorf("qemu: measuring %s: %w", r.Name, err)
		}
	}
	if err := batch.Close(); err != nil {
		return nil, fmt.Errorf("qemu: folding launch digest: %w", err)
	}
	digest, err := m.Launch.LaunchFinish(proc)
	if err != nil {
		return nil, err
	}
	m.Timeline.End("preenc", proc.Now())

	// Enter the guest at the OVMF reset vector.
	m.DebugEvent(proc, sev.EvGuestEntry)
	in := verifier.Inputs{
		Kind:                verifier.KindBzImage,
		StageGPA:            measure.GPAStageA,
		KernelSize:          len(kernelImage),
		KernelDstGPA:        measure.GPABzTarget,
		InitrdStageGPA:      measure.GPAStageB,
		InitrdSize:          len(cfg.Initrd),
		InitrdDstGPA:        measure.GPAInitrd,
		ScratchGPA:          measure.GPAScratch,
		CmdlineStageGPA:     cmdlineStage,
		CmdlineSize:         len(cfg.Cmdline),
		GenerateBootStructs: true,
		VCPUs:               cfg.VCPUs,
	}
	handoff, err := ovmf.Run(proc, m, in)
	if err != nil {
		return nil, err
	}
	rep, err := linux.Boot(proc, m, handoff, cfg.Preset)
	if err != nil {
		return nil, err
	}

	if cfg.Attestor != nil && cfg.Preset.Networking {
		m.Timeline.Begin("attest", proc.Now())
		m.DebugEvent(proc, sev.EvAttestStart)
		if err := cfg.Attestor.Attest(proc, m); err != nil {
			return nil, fmt.Errorf("qemu: attestation: %w", err)
		}
		m.DebugEvent(proc, sev.EvAttestDone)
		m.Timeline.End("attest", proc.Now())
	}
	res := &Result{
		Timeline:     m.Timeline,
		Report:       rep,
		Machine:      m,
		LaunchDigest: digest,
	}
	res.Breakdown = m.Timeline.Breakdown()
	m.Timeline.Close(proc.Now())
	return res, nil
}

// ExpectedDigest is the guest owner's digest tool for the QEMU flow.
func ExpectedDigest(seed int64, level sev.Level, hashes measure.ComponentHashes) [32]byte {
	d := psp.InitialDigest(launchPolicy(level), level)
	for _, r := range ovmf.PlanRegions(seed, level, hashes) {
		d = psp.ExtendDigest(d, r.Type, r.GPA, r.Data)
	}
	return d
}

func launchPolicy(level sev.Level) sev.Policy {
	p := sev.DefaultPolicy()
	if level < sev.ES {
		p.ESRequired = false
	}
	return p
}

// attachDevices mirrors the firecracker monitor's device set.
func attachDevices(m *kvm.Machine, preset kernelgen.Preset) {
	m.Devices = append(m.Devices,
		virtio.NewDevice(virtio.IDBlk, virtio.FeatBlkFlush, &virtio.BlkBackend{Image: firecracker.RootfsImage()}))
	if preset.Networking {
		m.Devices = append(m.Devices,
			virtio.NewDevice(virtio.IDNet, virtio.FeatNetMac, virtio.NetBackend{}))
	}
}
