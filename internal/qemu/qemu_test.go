package qemu

import (
	"testing"
	"time"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/measure"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
)

func runBoot(t *testing.T, cfg Config) (*Result, error) {
	t.Helper()
	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 42)
	var (
		res *Result
		err error
	)
	eng.Go("qemu", func(p *sim.Proc) { res, err = Boot(p, host, cfg) })
	eng.Run()
	return res, err
}

func lupine(t *testing.T) (*kernelgen.Artifacts, []byte) {
	t.Helper()
	art, err := kernelgen.Cached(kernelgen.Lupine())
	if err != nil {
		t.Fatal(err)
	}
	return art, kernelgen.BuildInitrd(1, 1<<20)
}

func TestQEMUBootReachesInit(t *testing.T) {
	art, initrd := lupine(t)
	res, err := runBoot(t, Config{
		Preset:    kernelgen.Lupine(),
		Artifacts: art,
		Initrd:    initrd,
		Level:     sev.SNP,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.InitrdOK {
		t.Fatal("initrd not mounted")
	}
	b := res.Breakdown
	// Fig. 10 anchors: pre-encryption ~288 ms, firmware ~3.1-3.3 s.
	if b.PreEncryption < 250*time.Millisecond || b.PreEncryption > 330*time.Millisecond {
		t.Fatalf("QEMU pre-encryption %v, paper says ~288 ms", b.PreEncryption)
	}
	if b.Firmware < 3*time.Second || b.Firmware > 3500*time.Millisecond {
		t.Fatalf("OVMF firmware %v, paper says ~3.2 s", b.Firmware)
	}
	if b.Total < 3400*time.Millisecond || b.Total > 4200*time.Millisecond {
		t.Fatalf("QEMU total %v, paper Fig. 9 is in the 3.5-4 s band", b.Total)
	}
}

func TestQEMUVerifierIsSmallFractionOfFirmware(t *testing.T) {
	// Fig. 3's point: the boot verifier is a thin slice of the >3 s OVMF
	// runtime.
	art, initrd := lupine(t)
	res, err := runBoot(t, Config{
		Preset:    kernelgen.Lupine(),
		Artifacts: art,
		Initrd:    initrd,
		Level:     sev.SNP,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := res.Breakdown
	if b.BootVerification <= 0 {
		t.Fatal("no boot verification span")
	}
	if frac := float64(b.BootVerification) / float64(b.Firmware); frac > 0.05 {
		t.Fatalf("boot verifier is %.1f%% of firmware time; Fig. 3 shows a small slice", frac*100)
	}
}

func TestQEMURejectsNonSEV(t *testing.T) {
	art, initrd := lupine(t)
	if _, err := runBoot(t, Config{
		Preset:    kernelgen.Lupine(),
		Artifacts: art,
		Initrd:    initrd,
		Level:     sev.None,
	}); err == nil {
		t.Fatal("non-SEV level accepted")
	}
}

func TestQEMUDigestMatchesExpectedTool(t *testing.T) {
	art, initrd := lupine(t)
	preset := kernelgen.Lupine()
	res, err := runBoot(t, Config{
		Preset:    preset,
		Artifacts: art,
		Initrd:    initrd,
		Level:     sev.SNP,
	})
	if err != nil {
		t.Fatal(err)
	}
	hashes := measure.HashComponents(art.BzImageLZ4, initrd, preset.Cmdline)
	if want := ExpectedDigest(1, sev.SNP, hashes); res.LaunchDigest != want {
		t.Fatalf("digest %x != expected %x", res.LaunchDigest[:8], want[:8])
	}
}

func TestQEMUTamperedKernelRefused(t *testing.T) {
	art, initrd := lupine(t)
	evil := *art
	evil.BzImageLZ4 = append([]byte(nil), art.BzImageLZ4...)
	evil.BzImageLZ4[9000] ^= 0xFF
	// QEMU hashes whatever it stages, so a tampered kernel *boots* (QEMU
	// computed matching hashes) — but the launch digest differs and the
	// guest owner catches it at attestation (§2.6 case 2).
	good, err := runBoot(t, Config{Preset: kernelgen.Lupine(), Artifacts: art, Initrd: initrd, Level: sev.SNP})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := runBoot(t, Config{Preset: kernelgen.Lupine(), Artifacts: &evil, Initrd: initrd, Level: sev.SNP})
	if err != nil {
		t.Fatal(err)
	}
	if good.LaunchDigest == bad.LaunchDigest {
		t.Fatal("tampered kernel produced identical launch digest")
	}
}

func TestQEMUPreEncryptionDominatedByOVMFSize(t *testing.T) {
	// Sanity on the mechanism: QEMU pre-encrypts >1.1 MiB; SEVeriFast
	// pre-encrypts tens of KiB. Check the measured byte count.
	art, initrd := lupine(t)
	res, err := runBoot(t, Config{
		Preset:    kernelgen.Lupine(),
		Artifacts: art,
		Initrd:    initrd,
		Level:     sev.SNP,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Machine.Launch.PreEncryptedBytes()
	if got < 1<<20 {
		t.Fatalf("QEMU pre-encrypted %d bytes, want >= 1 MiB (OVMF volume)", got)
	}
}
