// Package mptable generates and parses the Intel MultiProcessor
// Specification tables a microVM guest uses to discover its CPU topology.
// Firecracker injects one of these; under SEVeriFast it is pre-encrypted
// because the structure (284 bytes + 20 per CPU, Fig. 7) is smaller than
// the ~4 KiB of code needed to generate it in the boot verifier.
package mptable

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	floatingSize = 16
	headerSize   = 44

	entryProcessor = 0
	entryBus       = 1
	entryIOAPIC    = 2
	entryIOIntr    = 3

	processorEntrySize = 20
	busEntrySize       = 8
	ioapicEntrySize    = 8
	intrEntrySize      = 8

	// busCount/intrCount are chosen to match the paper's Fig. 7 baseline:
	// 16 (floating) + 44 (header) + 2*8 (buses) + 8 (ioapic) + 25*8
	// (interrupt routing) = 284 bytes, plus 20 per processor.
	busCount  = 2
	intrCount = 25
)

// BaseSize is the table size with zero CPUs (Fig. 7's 284 bytes).
const BaseSize = floatingSize + headerSize + busCount*busEntrySize + ioapicEntrySize + intrCount*intrEntrySize

// PerCPUSize is the per-processor increment (Fig. 7's 20 bytes).
const PerCPUSize = processorEntrySize

// GeneratorCodeSize is the verifier code size needed to build the table in
// the guest instead (Fig. 7's ~4 KiB), which is why SEVeriFast
// pre-encrypts the table rather than generating it.
const GeneratorCodeSize = 4096

// ErrCorrupt reports a malformed table.
var ErrCorrupt = errors.New("mptable: corrupt table")

// Size returns the full table size for the given CPU count.
func Size(cpus int) int { return BaseSize + cpus*PerCPUSize }

// Build generates the table for the given CPU count, placed at base (the
// floating pointer's physical address field must be correct).
func Build(cpus int, base uint32) []byte {
	out := make([]byte, Size(cpus))
	le := binary.LittleEndian

	// Floating pointer structure: "_MP_", points at the config table.
	copy(out[0:], "_MP_")
	le.PutUint32(out[4:], base+floatingSize) // physical address of config table
	out[8] = 1                               // length in 16-byte units
	out[9] = 4                               // spec revision 1.4
	// out[10] is the checksum, fixed up below.

	// Config table header: "PCMP".
	cfg := out[floatingSize:]
	copy(cfg[0:], "PCMP")
	entryCount := cpus + busCount + 1 + intrCount
	tableLen := headerSize + cpus*processorEntrySize + busCount*busEntrySize +
		ioapicEntrySize + intrCount*intrEntrySize
	le.PutUint16(cfg[4:], uint16(tableLen))
	cfg[6] = 4 // spec revision
	// cfg[7] is the checksum, fixed up below.
	copy(cfg[8:], "SEVRFAST")      // OEM id (8 bytes)
	copy(cfg[16:], "MICROVM     ") // product id (12 bytes)
	le.PutUint16(cfg[34:], uint16(entryCount))
	le.PutUint32(cfg[36:], 0xFEE00000) // local APIC address

	off := headerSize
	for cpu := 0; cpu < cpus; cpu++ {
		e := cfg[off:]
		e[0] = entryProcessor
		e[1] = byte(cpu) // local APIC id
		e[2] = 0x14      // local APIC version
		flags := byte(1) // enabled
		if cpu == 0 {
			flags |= 2 // bootstrap processor
		}
		e[3] = flags
		le.PutUint32(e[4:], 0x800F12) // CPU signature: family 17h
		le.PutUint32(e[8:], 0x1FB8B)  // feature flags
		off += processorEntrySize
	}
	for b := 0; b < busCount; b++ {
		e := cfg[off:]
		e[0] = entryBus
		e[1] = byte(b)
		if b == 0 {
			copy(e[2:], "ISA   ")
		} else {
			copy(e[2:], "MMIO  ")
		}
		off += busEntrySize
	}
	{
		e := cfg[off:]
		e[0] = entryIOAPIC
		e[1] = byte(cpus) // ioapic id after cpu apic ids
		e[2] = 0x11       // version
		e[3] = 1          // enabled
		le.PutUint32(e[4:], 0xFEC00000)
		off += ioapicEntrySize
	}
	for irq := 0; irq < intrCount; irq++ {
		e := cfg[off:]
		e[0] = entryIOIntr
		e[1] = 0 // INT
		le.PutUint16(e[2:], 0)
		e[4] = 0         // source bus
		e[5] = byte(irq) // source IRQ
		e[6] = byte(cpus)
		e[7] = byte(irq)
		off += intrEntrySize
	}

	// Checksums: both structures must sum to zero mod 256.
	out[10] = checksumFix(out[:floatingSize], 10)
	cfg[7] = checksumFix(cfg[:tableLen], 7)
	return out
}

func checksumFix(b []byte, at int) byte {
	var sum byte
	for i, v := range b {
		if i != at {
			sum += v
		}
	}
	return -sum
}

// Info summarizes a parsed table.
type Info struct {
	CPUs       int
	Buses      int
	IOAPICs    int
	Interrupts int
}

// Parse validates both checksums and walks the entries.
func Parse(b []byte) (*Info, error) {
	if len(b) < floatingSize+headerSize {
		return nil, fmt.Errorf("%w: %d bytes too short", ErrCorrupt, len(b))
	}
	if string(b[0:4]) != "_MP_" {
		return nil, fmt.Errorf("%w: missing _MP_ signature", ErrCorrupt)
	}
	if sum := byteSum(b[:floatingSize]); sum != 0 {
		return nil, fmt.Errorf("%w: floating pointer checksum %#x", ErrCorrupt, sum)
	}
	cfg := b[floatingSize:]
	if string(cfg[0:4]) != "PCMP" {
		return nil, fmt.Errorf("%w: missing PCMP signature", ErrCorrupt)
	}
	tableLen := int(binary.LittleEndian.Uint16(cfg[4:]))
	if tableLen > len(cfg) {
		return nil, fmt.Errorf("%w: table length %d overruns buffer", ErrCorrupt, tableLen)
	}
	if sum := byteSum(cfg[:tableLen]); sum != 0 {
		return nil, fmt.Errorf("%w: config table checksum %#x", ErrCorrupt, sum)
	}
	entryCount := int(binary.LittleEndian.Uint16(cfg[34:]))
	info := &Info{}
	off := headerSize
	for i := 0; i < entryCount; i++ {
		if off >= tableLen {
			return nil, fmt.Errorf("%w: entry %d beyond table", ErrCorrupt, i)
		}
		switch cfg[off] {
		case entryProcessor:
			info.CPUs++
			off += processorEntrySize
		case entryBus:
			info.Buses++
			off += busEntrySize
		case entryIOAPIC:
			info.IOAPICs++
			off += ioapicEntrySize
		case entryIOIntr:
			info.Interrupts++
			off += intrEntrySize
		default:
			return nil, fmt.Errorf("%w: unknown entry type %d", ErrCorrupt, cfg[off])
		}
	}
	return info, nil
}

func byteSum(b []byte) byte {
	var sum byte
	for _, v := range b {
		sum += v
	}
	return sum
}
