package mptable

import "testing"

func TestSizeMatchesFig7(t *testing.T) {
	// Fig. 7: mptable is 284 bytes + 20 per CPU.
	if BaseSize != 284 {
		t.Fatalf("BaseSize = %d, want 284", BaseSize)
	}
	if PerCPUSize != 20 {
		t.Fatalf("PerCPUSize = %d, want 20", PerCPUSize)
	}
	if Size(1) != 304 {
		t.Fatalf("Size(1) = %d, want 304 (paper: 304 bytes for 1 vCPU)", Size(1))
	}
	if Size(4) != 284+80 {
		t.Fatalf("Size(4) = %d", Size(4))
	}
}

func TestBuildLenMatchesSize(t *testing.T) {
	for cpus := 1; cpus <= 8; cpus++ {
		if got := len(Build(cpus, 0x9FC00)); got != Size(cpus) {
			t.Fatalf("cpus=%d: len %d, want %d", cpus, got, Size(cpus))
		}
	}
}

func TestParseCountsEntries(t *testing.T) {
	info, err := Parse(Build(4, 0x9FC00))
	if err != nil {
		t.Fatal(err)
	}
	if info.CPUs != 4 {
		t.Fatalf("CPUs = %d, want 4", info.CPUs)
	}
	if info.Buses != 2 || info.IOAPICs != 1 || info.Interrupts != 25 {
		t.Fatalf("entries = %+v", info)
	}
}

func TestChecksumsValid(t *testing.T) {
	b := Build(1, 0x9FC00)
	if sum := byteSum(b[:floatingSize]); sum != 0 {
		t.Fatalf("floating pointer checksum = %#x", sum)
	}
	tableLen := Size(1) - floatingSize
	if sum := byteSum(b[floatingSize : floatingSize+tableLen]); sum != 0 {
		t.Fatalf("config table checksum = %#x", sum)
	}
}

func TestParseDetectsCorruption(t *testing.T) {
	b := Build(2, 0x9FC00)
	// Any single-byte flip inside either structure must be caught by a
	// checksum or signature check.
	for _, idx := range []int{0, 5, 10, 20, 50, 100, len(b) - 1} {
		c := append([]byte(nil), b...)
		c[idx] ^= 0xFF
		if _, err := Parse(c); err == nil {
			t.Fatalf("flip at %d undetected", idx)
		}
	}
}

func TestParseRejectsShort(t *testing.T) {
	if _, err := Parse(make([]byte, 30)); err == nil {
		t.Fatal("short table accepted")
	}
}

func TestDeterministicBuild(t *testing.T) {
	a, b := Build(1, 0x9FC00), Build(1, 0x9FC00)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("mptable not deterministic; it is pre-encrypted and measured")
		}
	}
}

func TestBSPFlag(t *testing.T) {
	b := Build(2, 0x9FC00)
	cfg := b[floatingSize:]
	first := cfg[headerSize:]
	second := cfg[headerSize+processorEntrySize:]
	if first[3]&2 == 0 {
		t.Fatal("CPU 0 missing bootstrap-processor flag")
	}
	if second[3]&2 != 0 {
		t.Fatal("CPU 1 wrongly marked bootstrap processor")
	}
}
