package psp

// The parallel measurement pipeline. LAUNCH_UPDATE_DATA's real work has
// two halves with different ordering requirements:
//
//   - per-region content hashing (SHA-256 of the region's plain text) —
//     embarrassingly parallel, order-free;
//   - the digest chain fold (digest' = H(digest ‖ meta ‖ content)) —
//     inherently serial, order-sensitive.
//
// UpdateBatch exploits that split: regions staged into a batch are
// charged on the PSP and flipped private in submission order (virtual
// time is identical to calling LaunchUpdateData per region), but the
// content hashes are computed across the hostwork pool and only the
// cheap 113-byte fold runs serially. Because each content hash is a
// pure function of the region bytes and the fold consumes them in
// submission order, the final digest is bit-identical for every worker
// count, including one. Content hashes also hit the shared-artifact
// memo table, which is what makes the Nth same-image fleet boot cheap.

import (
	"fmt"
	"time"

	"github.com/severifast/severifast/internal/artifact"
	"github.com/severifast/severifast/internal/hostwork"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
)

// RegionMeta identifies one measured region in a digest fold.
type RegionMeta struct {
	PT  sev.PageType
	GPA uint64
	Len int
}

// FoldDigest folds precomputed region content hashes into a launch
// digest chain, serially and in order — the deterministic second stage
// of the pipeline. contents[i] must be SHA-256 of region i's bytes.
func FoldDigest(initial [32]byte, metas []RegionMeta, contents [][32]byte) [32]byte {
	digest := initial
	for i, meta := range metas {
		digest = ExtendDigestContent(digest, meta.PT, meta.GPA, meta.Len, contents[i])
	}
	return digest
}

// UpdateBatch accumulates LAUNCH_UPDATE_DATA regions whose content
// hashes are deferred and parallelized. Stage writes the region and
// performs the launch update's state change at its exact virtual-time
// point; Close runs the deferred hashes and the serial fold.
type UpdateBatch struct {
	ctx     *GuestContext
	pending []RegionMeta
	// byte intervals of pending (unhashed) regions, to detect staged
	// writes that would clobber bytes a deferred hash still needs.
	spans []span
}

type span struct{ lo, hi uint64 }

// NewUpdateBatch opens a batch on this launch context. The caller must
// not interleave other updates to the same context while the batch is
// open, and must call Close before reading the digest.
func (ctx *GuestContext) NewUpdateBatch() *UpdateBatch {
	return &UpdateBatch{ctx: ctx}
}

// Stage writes data at gpa as the VMM and issues the region's
// LAUNCH_UPDATE_DATA: the PSP charge and the private flip happen now,
// in order; the content hash is deferred to Close. If the write would
// overlap a region whose hash is still pending (a layout this VMM never
// produces, but the API must not miscompute if given one), the pending
// hashes are flushed first so every region is measured exactly as the
// sequential path would have.
func (b *UpdateBatch) Stage(proc *sim.Proc, gpa uint64, data []byte, pt sev.PageType) error {
	return b.stage(proc, gpa, data, pt, nil, 0)
}

// StageArtifact is Stage for a subrange of an immutable artifact: the
// staging write aliases the artifact's pages copy-on-write with
// provenance (guestmem.HostWriteArtifact), so the deferred content hash
// resolves through the artifact's digest memo instead of re-reading
// guest memory. Virtual-time charges, the flip, the tamper window, and
// the resulting digest are bit-identical to Stage of the same bytes —
// a tamper scribble breaks the aliased pages' provenance, so the
// deferred hash measures the scribbled bytes for real.
func (b *UpdateBatch) StageArtifact(proc *sim.Proc, gpa uint64, art *artifact.Buf, off, n int, pt sev.PageType) error {
	return b.stage(proc, gpa, art.Bytes()[off:off+n], pt, art, off)
}

func (b *UpdateBatch) stage(proc *sim.Proc, gpa uint64, data []byte, pt sev.PageType, art *artifact.Buf, artOff int) error {
	if b.ctx.state != StateLaunching {
		return fmt.Errorf("%w: LAUNCH_UPDATE_DATA in state %d", ErrState, b.ctx.state)
	}
	lo, hi := gpa, gpa+uint64(len(data))
	for _, s := range b.spans {
		if lo < s.hi && s.lo < hi {
			if err := b.Close(); err != nil {
				return err
			}
			break
		}
	}
	var err error
	if art != nil {
		err = b.ctx.mem.HostWriteArtifact(gpa, art, artOff, len(data))
	} else {
		err = b.ctx.mem.HostWrite(gpa, data)
	}
	if err != nil {
		return err
	}
	if b.ctx.psp.PreEncryptTamper != nil {
		// Same hostile-host window as the sequential path: the scribble
		// lands after staging and before the flip, so the deferred content
		// hash (and therefore the digest chain) measures the tampered
		// bytes, exactly as the real PSP would.
		b.ctx.psp.PreEncryptTamper(b.ctx.mem, gpa, len(data))
	}
	b.ctx.psp.run(proc, b.ctx.psp.model.PreEncrypt(len(data)), "LAUNCH_UPDATE_DATA")
	if err := b.ctx.mem.LaunchUpdateFlip(gpa, len(data)); err != nil {
		return err
	}
	b.pending = append(b.pending, RegionMeta{PT: pt, GPA: gpa, Len: len(data)})
	b.spans = append(b.spans, span{lo, hi})
	return nil
}

// Close hashes the pending regions across the hostwork pool and folds
// them into the launch digest in submission order. The batch may be
// reused for further Stage calls afterwards.
func (b *UpdateBatch) Close() error {
	if len(b.pending) == 0 {
		return nil
	}
	defer b.ctx.mem.HostRecorder().Stage("psp.pipeline", time.Now())
	contents := make([][32]byte, len(b.pending))
	errs := make([]error, len(b.pending))
	hostwork.Do(len(b.pending), func(i int) {
		r := b.pending[i]
		contents[i], errs[i] = b.ctx.mem.PlainRangeDigest(r.GPA, r.Len)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	b.ctx.digest = FoldDigest(b.ctx.digest, b.pending, contents)
	for _, r := range b.pending {
		b.ctx.updates++
		b.ctx.bytesPreEnc += r.Len
	}
	b.pending = b.pending[:0]
	b.spans = b.spans[:0]
	return nil
}
