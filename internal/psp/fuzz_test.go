package psp

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"
)

// fuzzReport builds one valid signed report to seed the corpus.
func fuzzReport() *Report {
	r := &Report{
		Version:     2,
		Policy:      0x1_0000_0001,
		Level:       3,
		ASID:        7,
		Measurement: [32]byte{1, 2, 3},
	}
	copy(r.ReportData[:], bytes.Repeat([]byte{0xAB}, 64))
	if err := r.Sign(rand.New(rand.NewSource(1)), DeriveKey(rand.New(rand.NewSource(2)))); err != nil {
		panic(err)
	}
	return r
}

// FuzzReportWire feeds hostile bytes to the report parser. It must never
// panic; and whatever parses must round-trip losslessly — the wire format
// is fixed-size and canonical, so Marshal(Unmarshal(b)) == b bit for bit.
func FuzzReportWire(f *testing.F) {
	valid := fuzzReport().Marshal()
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:17])
	f.Add(valid[:len(valid)-1])
	f.Add(append(append([]byte{}, valid...), 0))
	mutated := append([]byte{}, valid...)
	mutated[0] ^= 0xFF
	f.Add(mutated)
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalReport(data)
		if err != nil {
			return
		}
		out := r.Marshal()
		if !bytes.Equal(out, data) {
			t.Fatalf("report round trip not lossless:\n in  %x\n out %x", data, out)
		}
		again, err := UnmarshalReport(out)
		if err != nil {
			t.Fatalf("re-unmarshal of marshaled report failed: %v", err)
		}
		if again.SigR.Cmp(r.SigR) != 0 || again.SigS.Cmp(r.SigS) != 0 || again.Measurement != r.Measurement {
			t.Fatal("re-unmarshaled report differs")
		}
	})
}

// FuzzChainWire feeds hostile bytes to the certificate-chain parser. No
// panic, no over-allocation (body lengths are bounded before allocation);
// any chain that parses must survive Marshal → Unmarshal with every field
// intact, and the re-marshaled encoding must be a fixpoint.
func FuzzChainWire(f *testing.F) {
	rng := rand.New(rand.NewSource(3))
	chain, _ := buildChain(rng, DeriveKey(rng))
	valid := chain.Marshal()
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte{}, valid...), 0xEE))
	// A VCEK with the chip/TCB extension exercises the optional tail.
	ext := *chain
	ext.VCEK.ChipID, ext.VCEK.TCBVersion = "chip-9", 0x0201_0000_0000_0800
	f.Add(ext.Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		ch, err := UnmarshalChain(data)
		if err != nil {
			return
		}
		m := ch.Marshal()
		ch2, err := UnmarshalChain(m)
		if err != nil {
			t.Fatalf("re-unmarshal of marshaled chain failed: %v", err)
		}
		for _, pair := range [][2]*Cert{{&ch.VCEK, &ch2.VCEK}, {&ch.ASK, &ch2.ASK}, {&ch.ARK, &ch2.ARK}} {
			a, b := pair[0], pair[1]
			if a.Subject != b.Subject || a.Issuer != b.Issuer ||
				a.ChipID != b.ChipID || a.TCBVersion != b.TCBVersion {
				t.Fatal("chain round trip lost identity fields")
			}
			for _, ints := range [][2]*big.Int{{a.PubX, b.PubX}, {a.PubY, b.PubY}, {a.SigR, b.SigR}, {a.SigS, b.SigS}} {
				if ints[0].Cmp(ints[1]) != 0 {
					t.Fatal("chain round trip lost key or signature bytes")
				}
			}
		}
		// One normalization step at most: the re-marshaled form is stable.
		if !bytes.Equal(ch2.Marshal(), m) {
			t.Fatalf("chain encoding is not a fixpoint:\n in  %x\n out %x", m, ch2.Marshal())
		}
	})
}
