package psp

// AMD's attestation trust does not hand the guest owner a bare public key:
// reports are signed by the chip-unique VCEK, whose certificate is signed
// by the AMD SEV signing key (ASK), which is signed by the self-signed AMD
// root key (ARK). Guest owners validate the whole chain against the
// pinned ARK (the paper's attestation flow uses AMD's sev-guest tooling,
// which does exactly this). This file models that chain with real ECDSA
// P-384 signatures over a compact certificate encoding.

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/sha512"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
	"math/rand"
)

// Cert is one link of the chain: a named public key signed by its issuer.
// VCEK certificates issued by a key authority additionally carry the chip
// identity and the platform TCB version the key was derived for (AMD's
// VCEK embeds both; relying parties enforce minimum-TCB policy on them).
type Cert struct {
	Subject string // "ARK", "ASK", or "VCEK"
	Issuer  string
	PubX    *big.Int
	PubY    *big.Int
	SigR    *big.Int // issuer's signature over the body
	SigS    *big.Int

	// ChipID names the physical platform the VCEK belongs to; empty for
	// ARK/ASK and for legacy chains minted before TCB versioning.
	ChipID string
	// TCBVersion is the encoded TCB the VCEK was derived at (kbs.TCB).
	TCBVersion uint64
}

// maxCertBody bounds a certificate body: two length-prefixed names (255
// bytes each), the 96-byte public key, and the optional chip/TCB
// extension. Anything larger is rejected before allocation.
const maxCertBody = 2 + 255 + 255 + 96 + 1 + 255 + 8

// maxChainLen bounds a marshaled chain (three certs with signatures).
const maxChainLen = 3 * (4 + maxCertBody + 96)

// Chain is [VCEK, ASK, ARK].
type Chain struct {
	VCEK Cert
	ASK  Cert
	ARK  Cert
}

// Errors.
var (
	ErrChain = errors.New("psp: certificate chain invalid")
)

func (c *Cert) body() []byte {
	out := make([]byte, 0, 16+96)
	out = append(out, byte(len(c.Subject)))
	out = append(out, c.Subject...)
	out = append(out, byte(len(c.Issuer)))
	out = append(out, c.Issuer...)
	var fe [48]byte
	c.PubX.FillBytes(fe[:])
	out = append(out, fe[:]...)
	c.PubY.FillBytes(fe[:])
	out = append(out, fe[:]...)
	// Chip/TCB extension, emitted only when set so legacy chains keep
	// their exact byte layout (and signatures stay valid).
	if c.ChipID != "" || c.TCBVersion != 0 {
		out = append(out, byte(len(c.ChipID)))
		out = append(out, c.ChipID...)
		var tcb [8]byte
		binary.LittleEndian.PutUint64(tcb[:], c.TCBVersion)
		out = append(out, tcb[:]...)
	}
	return out
}

// Marshal serializes the certificate with its signature.
func (c *Cert) Marshal() []byte {
	body := c.body()
	out := make([]byte, 0, len(body)+100)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(body)))
	out = append(out, n[:]...)
	out = append(out, body...)
	var fe [48]byte
	c.SigR.FillBytes(fe[:])
	out = append(out, fe[:]...)
	c.SigS.FillBytes(fe[:])
	out = append(out, fe[:]...)
	return out
}

// UnmarshalCert parses Marshal's output, returning the remaining bytes.
// The declared body length is bounded before any allocation, so oversized
// or truncated host-controlled input fails fast instead of allocating.
func UnmarshalCert(b []byte) (Cert, []byte, error) {
	var c Cert
	if len(b) < 4 {
		return c, nil, fmt.Errorf("%w: truncated length", ErrChain)
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if n < 2 || n > maxCertBody {
		return c, nil, fmt.Errorf("%w: body length %d outside [2, %d]", ErrChain, n, maxCertBody)
	}
	if n > len(b) {
		return c, nil, fmt.Errorf("%w: body length %d exceeds remaining %d bytes", ErrChain, n, len(b))
	}
	body := b[:n]
	rest := b[n:]
	sl := int(body[0])
	if 1+sl+1 > len(body) {
		return c, nil, fmt.Errorf("%w: bad subject", ErrChain)
	}
	c.Subject = string(body[1 : 1+sl])
	il := int(body[1+sl])
	if 2+sl+il+96 > len(body) {
		return c, nil, fmt.Errorf("%w: bad issuer/key layout", ErrChain)
	}
	c.Issuer = string(body[2+sl : 2+sl+il])
	c.PubX = new(big.Int).SetBytes(body[2+sl+il : 2+sl+il+48])
	c.PubY = new(big.Int).SetBytes(body[2+sl+il+48 : 2+sl+il+96])
	// Optional chip/TCB extension: either absent (legacy cert) or exactly
	// chipLen|chip|8-byte TCB — partial extensions are rejected.
	ext := body[2+sl+il+96:]
	if len(ext) > 0 {
		cl := int(ext[0])
		if 1+cl+8 != len(ext) {
			return c, nil, fmt.Errorf("%w: bad chip/TCB extension layout", ErrChain)
		}
		c.ChipID = string(ext[1 : 1+cl])
		c.TCBVersion = binary.LittleEndian.Uint64(ext[1+cl:])
	}
	if len(rest) < 96 {
		return c, nil, fmt.Errorf("%w: truncated signature", ErrChain)
	}
	c.SigR = new(big.Int).SetBytes(rest[:48])
	c.SigS = new(big.Int).SetBytes(rest[48:96])
	return c, rest[96:], nil
}

// Key returns the certificate's public key.
func (c *Cert) Key() *ecdsa.PublicKey {
	return &ecdsa.PublicKey{Curve: elliptic.P384(), X: c.PubX, Y: c.PubY}
}

// verifiedBy checks c's signature under issuer's key.
func (c *Cert) verifiedBy(issuer *ecdsa.PublicKey) bool {
	sum := sha512.Sum384(c.body())
	return ecdsa.Verify(issuer, sum[:], c.SigR, c.SigS)
}

// Marshal serializes the full chain, VCEK first.
func (ch *Chain) Marshal() []byte {
	out := ch.VCEK.Marshal()
	out = append(out, ch.ASK.Marshal()...)
	out = append(out, ch.ARK.Marshal()...)
	return out
}

// UnmarshalChain parses Marshal's output. Input larger than any valid
// chain is rejected up front.
func UnmarshalChain(b []byte) (*Chain, error) {
	if len(b) > maxChainLen {
		return nil, fmt.Errorf("%w: %d bytes exceeds maximum chain size %d", ErrChain, len(b), maxChainLen)
	}
	vcek, rest, err := UnmarshalCert(b)
	if err != nil {
		return nil, err
	}
	ask, rest, err := UnmarshalCert(rest)
	if err != nil {
		return nil, err
	}
	ark, rest, err := UnmarshalCert(rest)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrChain)
	}
	return &Chain{VCEK: vcek, ASK: ask, ARK: ark}, nil
}

// Verify walks the chain down from a pinned ARK public key: the ARK must
// match the pin and self-verify, the ASK must be ARK-signed, the VCEK
// ASK-signed, with the expected subject/issuer names at every link.
func (ch *Chain) Verify(pinnedARK *ecdsa.PublicKey) error {
	if ch.ARK.Subject != "ARK" || ch.ARK.Issuer != "ARK" {
		return fmt.Errorf("%w: root naming", ErrChain)
	}
	if ch.ARK.PubX.Cmp(pinnedARK.X) != 0 || ch.ARK.PubY.Cmp(pinnedARK.Y) != 0 {
		return fmt.Errorf("%w: ARK does not match the pinned AMD root", ErrChain)
	}
	if !ch.ARK.verifiedBy(pinnedARK) {
		return fmt.Errorf("%w: ARK self-signature", ErrChain)
	}
	if ch.ASK.Subject != "ASK" || ch.ASK.Issuer != "ARK" {
		return fmt.Errorf("%w: ASK naming", ErrChain)
	}
	if !ch.ASK.verifiedBy(ch.ARK.Key()) {
		return fmt.Errorf("%w: ASK signature", ErrChain)
	}
	if ch.VCEK.Subject != "VCEK" || ch.VCEK.Issuer != "ASK" {
		return fmt.Errorf("%w: VCEK naming", ErrChain)
	}
	if !ch.VCEK.verifiedBy(ch.ASK.Key()) {
		return fmt.Errorf("%w: VCEK signature", ErrChain)
	}
	return nil
}

// SignCert signs c's body with the issuer key, installing the signature.
func SignCert(c *Cert, issuer *ecdsa.PrivateKey, rng io.Reader) error {
	sum := sha512.Sum384(c.body())
	r, s, err := ecdsa.Sign(rng, issuer, sum[:])
	if err != nil {
		return fmt.Errorf("psp: cert signing: %w", err)
	}
	c.SigR, c.SigS = r, s
	return nil
}

// DeriveKey derives a P-384 key deterministically from rng. Go's
// ecdsa.GenerateKey intentionally randomizes even under a seeded reader,
// but simulated platform and authority identities must be reproducible
// per seed, so the scalar is taken straight from the stream.
func DeriveKey(rng *rand.Rand) *ecdsa.PrivateKey { return genKey(rng) }

func genKey(rng *rand.Rand) *ecdsa.PrivateKey {
	curve := elliptic.P384()
	n := new(big.Int).Sub(curve.Params().N, big.NewInt(1))
	buf := make([]byte, 48)
	rng.Read(buf)
	d := new(big.Int).SetBytes(buf)
	d.Mod(d, n)
	d.Add(d, big.NewInt(1))
	priv := &ecdsa.PrivateKey{D: d}
	priv.PublicKey.Curve = curve
	priv.PublicKey.X, priv.PublicKey.Y = curve.ScalarBaseMult(d.Bytes())
	return priv
}

// buildChain issues the platform's chain at PSP construction time.
func buildChain(rng *rand.Rand, vcek *ecdsa.PrivateKey) (*Chain, *ecdsa.PublicKey) {
	ark := genKey(rng)
	ask := genKey(rng)
	sign := func(c *Cert, issuer *ecdsa.PrivateKey) {
		if err := SignCert(c, issuer, rng); err != nil {
			panic(err.Error())
		}
	}
	ch := &Chain{
		ARK:  Cert{Subject: "ARK", Issuer: "ARK", PubX: ark.PublicKey.X, PubY: ark.PublicKey.Y},
		ASK:  Cert{Subject: "ASK", Issuer: "ARK", PubX: ask.PublicKey.X, PubY: ask.PublicKey.Y},
		VCEK: Cert{Subject: "VCEK", Issuer: "ASK", PubX: vcek.PublicKey.X, PubY: vcek.PublicKey.Y},
	}
	sign(&ch.ARK, ark)
	sign(&ch.ASK, ark)
	sign(&ch.VCEK, ask)
	return ch, &ark.PublicKey
}

// CertChain returns the platform's VCEK certificate chain.
func (p *PSP) CertChain() *Chain { return p.chain }

// AMDRootKey returns the pinned ARK — what AMD publishes out of band and
// guest owners hardcode.
func (p *PSP) AMDRootKey() *ecdsa.PublicKey { return p.arkPub }

// SetIdentity replaces the PSP's signing key, certificate chain, and root
// pin — what a key authority enrollment does when it installs a derived,
// TCB-versioned VCEK on the platform (internal/kbs). Reports signed after
// the swap verify against the new chain.
func (p *PSP) SetIdentity(key *ecdsa.PrivateKey, chain *Chain, ark *ecdsa.PublicKey) {
	p.signKey = key
	p.chain = chain
	p.arkPub = ark
}
