// Package psp models the AMD Platform Security Processor: the low-power
// ARM core that owns SEV key management, launch measurement, and
// attestation-report signing (paper §2.2, §2.4).
//
// Two properties of the real device carry the paper's results and are
// modeled faithfully:
//
//  1. Launch commands really do the work: LAUNCH_UPDATE_DATA hashes the
//     region into a SHA-256 digest chain *and* encrypts it in guest memory
//     under a per-guest AES key; reports are really signed (ECDSA P-384
//     standing in for the chip-unique VCEK) and verifiable offline.
//  2. The PSP is a single core shared by every guest on the host: all
//     command latencies are charged on one capacity-1 sim.Resource, which
//     serializes concurrent launches (the Fig. 12 bottleneck).
//
// The command state machine enforces the SEV API ordering: updates are
// only legal between LAUNCH_START and LAUNCH_FINISH, and reports are only
// issued for finished guests.
package psp

import (
	"crypto/ecdsa"
	"crypto/sha256"
	"crypto/sha512"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"time"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/guestmem"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
)

// Errors returned by the command interface.
var (
	ErrState  = errors.New("psp: command illegal in current guest state")
	ErrPolicy = errors.New("psp: policy violation")
)

// State is a guest context's launch state.
type State int

// Launch states, in order.
const (
	StateLaunching State = iota // LAUNCH_START done; updates allowed
	StateRunning                // LAUNCH_FINISH done; updates rejected
	StateDead                   // decommissioned
)

// PSP is the platform security processor. One instance exists per host;
// all guests on the host share it.
type PSP struct {
	model costmodel.Model
	res   *sim.Resource
	rng   *rand.Rand

	signKey  *ecdsa.PrivateKey
	chain    *Chain
	arkPub   *ecdsa.PublicKey
	nextASID uint32

	// CommandCount tallies completed commands, for utilization reporting.
	CommandCount uint64

	// PreEncryptTamper, when set, runs immediately before each
	// LAUNCH_UPDATE_DATA measures and encrypts [gpa, gpa+n): a hostile
	// host scribbling on a launch page in the window between staging and
	// pre-encryption. Whatever it writes is what the PSP measures — the
	// digest stays honest about the (tampered) contents, which is exactly
	// how the real device behaves. Installed only by the chaos engine;
	// production hosts leave it nil.
	PreEncryptTamper func(mem *guestmem.Memory, gpa uint64, n int)

	// DigestTamper, when set, transforms the final launch digest at
	// LAUNCH_FINISH — a hostile-firmware model (e.g. digest truncation)
	// used by the chaos engine to prove downstream digest comparisons
	// actually bite. Production hosts leave it nil.
	DigestTamper func([32]byte) [32]byte
}

// New creates a PSP with a deterministic identity derived from seed.
func New(model costmodel.Model, seed int64) *PSP {
	rng := rand.New(rand.NewSource(seed))
	key := genKey(rng)
	chain, arkPub := buildChain(rng, key)
	return &PSP{
		model:    model,
		res:      sim.NewResource("psp", 1),
		rng:      rng,
		signKey:  key,
		chain:    chain,
		arkPub:   arkPub,
		nextASID: 1,
	}
}

// Resource exposes the PSP's single service slot (for utilization stats).
func (p *PSP) Resource() *sim.Resource { return p.res }

// VerificationKey returns the public half of the signing key — what AMD
// publishes as the VCEK certificate chain. Guest owners verify reports
// against it.
func (p *PSP) VerificationKey() *ecdsa.PublicKey { return &p.signKey.PublicKey }

// GuestContext is one guest's launch context on the PSP.
type GuestContext struct {
	psp    *PSP
	mem    *guestmem.Memory
	level  sev.Level
	policy sev.Policy
	asid   uint32
	state  State

	digest      [32]byte // running launch digest
	updates     int
	bytesPreEnc int
}

// LaunchStart allocates an ASID, derives a fresh memory-encryption key,
// installs it in the guest's memory controller slot, and opens the launch
// context (Fig. 1, step 1).
func (p *PSP) LaunchStart(proc *sim.Proc, mem *guestmem.Memory, level sev.Level, policy sev.Policy) (*GuestContext, error) {
	if !level.Encrypted() {
		return nil, fmt.Errorf("%w: LAUNCH_START for non-SEV guest", ErrState)
	}
	if policy.ESRequired && level < sev.ES {
		return nil, fmt.Errorf("%w: policy requires SEV-ES, guest level %v", ErrPolicy, level)
	}
	p.run(proc, p.model.PSPLaunchStart, "LAUNCH_START")

	key := make([]byte, 16)
	p.rng.Read(key)
	asid := p.nextASID
	p.nextASID++
	mem.SetKey(key, asid)
	ctx := &GuestContext{
		psp:    p,
		mem:    mem,
		level:  level,
		policy: policy,
		asid:   asid,
		state:  StateLaunching,
	}
	ctx.digest = InitialDigest(policy, level)
	return ctx, nil
}

// InitialDigest seeds the launch digest chain with the guest policy and
// feature level, so a host that launches with a weakened policy produces a
// different measurement. The guest owner's expected-digest tool
// (internal/measure) starts from the same value.
func InitialDigest(policy sev.Policy, level sev.Level) [32]byte {
	h := sha256.New()
	h.Write([]byte("SEV-LAUNCH-START"))
	var pol [8]byte
	binary.LittleEndian.PutUint64(pol[:], policy.Encode())
	h.Write(pol[:])
	h.Write([]byte{byte(level)})
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// run executes one command body of duration d on the shared PSP core.
// cmd is the SEV command mnemonic; the scheduler tracer shows it as a
// named service span on the "psp" track, so a trace of N concurrent
// launches renders the Fig. 12 serialization command by command.
// proc may be nil for untimed unit tests.
func (p *PSP) run(proc *sim.Proc, d time.Duration, cmd string) {
	p.CommandCount++
	if proc == nil {
		return
	}
	p.res.UseLabeled(proc, d, cmd)
}

// ASID returns the guest's address-space identifier.
func (ctx *GuestContext) ASID() uint32 { return ctx.asid }

// State returns the context's launch state.
func (ctx *GuestContext) State() State { return ctx.state }

// Digest returns the current launch digest.
func (ctx *GuestContext) Digest() [32]byte { return ctx.digest }

// PreEncryptedBytes reports how many bytes LAUNCH_UPDATE_DATA has
// processed (the quantity Fig. 4 sweeps).
func (ctx *GuestContext) PreEncryptedBytes() int { return ctx.bytesPreEnc }

// LaunchUpdateData measures and encrypts [gpa, gpa+n): the region's plain
// text is hashed into the launch digest, then the pages flip to private
// under the guest key (Fig. 1 step 2; pre-encryption throughout the
// paper). Under SNP the pages come out assigned+validated.
func (ctx *GuestContext) LaunchUpdateData(proc *sim.Proc, gpa uint64, n int, pt sev.PageType) error {
	if ctx.state != StateLaunching {
		return fmt.Errorf("%w: LAUNCH_UPDATE_DATA in state %d", ErrState, ctx.state)
	}
	if ctx.psp.PreEncryptTamper != nil {
		ctx.psp.PreEncryptTamper(ctx.mem, gpa, n)
	}
	ctx.psp.run(proc, ctx.psp.model.PreEncrypt(n), "LAUNCH_UPDATE_DATA")
	if err := ctx.mem.LaunchUpdateFlip(gpa, n); err != nil {
		return err
	}
	// Hash the region in place: PlainRangeDigest streams the same bytes
	// LaunchUpdate used to copy out (or hits the artifact memo table),
	// so the digest chain is unchanged while the n-byte copy is gone.
	content, err := ctx.mem.PlainRangeDigest(gpa, n)
	if err != nil {
		return err
	}
	ctx.digest = ExtendDigestContent(ctx.digest, pt, gpa, n, content)
	ctx.updates++
	ctx.bytesPreEnc += n
	return nil
}

// LaunchUpdateVMSA measures and protects the vCPU register state (one
// 4 KiB VMSA page) for SEV-ES and SNP guests.
func (ctx *GuestContext) LaunchUpdateVMSA(proc *sim.Proc, gpa uint64) error {
	if ctx.level < sev.ES {
		return fmt.Errorf("%w: VMSA update for level %v", ErrState, ctx.level)
	}
	return ctx.LaunchUpdateData(proc, gpa, guestmem.PageSize, sev.PageVMSA)
}

// LaunchFinish seals the launch context: the digest becomes final and
// further updates are rejected (Fig. 1 step 3) — the property that stops
// the host from measuring extra state after attestation.
func (ctx *GuestContext) LaunchFinish(proc *sim.Proc) ([32]byte, error) {
	if ctx.state != StateLaunching {
		return [32]byte{}, fmt.Errorf("%w: LAUNCH_FINISH in state %d", ErrState, ctx.state)
	}
	ctx.psp.run(proc, ctx.psp.model.PSPLaunchFinish, "LAUNCH_FINISH")
	ctx.state = StateRunning
	if ctx.psp.DigestTamper != nil {
		ctx.digest = ctx.psp.DigestTamper(ctx.digest)
	}
	return ctx.digest, nil
}

// Decommission releases the context (guest teardown).
func (ctx *GuestContext) Decommission() { ctx.state = StateDead }

// ExtendDigest appends one measured region to a launch digest:
// digest' = SHA256(digest ‖ type ‖ gpa ‖ len ‖ SHA256(data)), the shape of
// the SNP ABI's page-info chaining. internal/measure recomputes the same
// chain host-side; the two must agree bit for bit.
func ExtendDigest(digest [32]byte, pt sev.PageType, gpa uint64, data []byte) [32]byte {
	return ExtendDigestContent(digest, pt, gpa, len(data), sha256.Sum256(data))
}

// ExtendDigestContent is the fold step of ExtendDigest with the region's
// content hash already computed. It is the serial half of the parallel
// measurement pipeline: content hashes may be produced in any order
// across the hostwork pool (or come from the artifact memo table), but
// the chain itself is folded one region at a time, in region order, so
// the result is bit-identical to the fully serial computation.
func ExtendDigestContent(digest [32]byte, pt sev.PageType, gpa uint64, n int, content [32]byte) [32]byte {
	h := sha256.New()
	h.Write(digest[:])
	h.Write([]byte{byte(pt)})
	var meta [16]byte
	binary.LittleEndian.PutUint64(meta[0:], gpa)
	binary.LittleEndian.PutUint64(meta[8:], uint64(n))
	h.Write(meta[:])
	h.Write(content[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Report is the attestation report the PSP places in guest memory
// (Fig. 1 steps 5-6). Serialized with Marshal for signing and transport.
type Report struct {
	Version     uint32
	Policy      uint64
	Level       sev.Level
	ASID        uint32
	Measurement [32]byte
	ReportData  [64]byte // guest-chosen (holds the guest's public key hash)
	SigR, SigS  *big.Int
}

// reportBody serializes the signed portion.
func (r *Report) reportBody() []byte {
	out := make([]byte, 4+8+1+4+32+64)
	le := binary.LittleEndian
	le.PutUint32(out[0:], r.Version)
	le.PutUint64(out[4:], r.Policy)
	out[12] = byte(r.Level)
	le.PutUint32(out[13:], r.ASID)
	copy(out[17:], r.Measurement[:])
	copy(out[49:], r.ReportData[:])
	return out
}

// Marshal serializes the full report including the signature.
func (r *Report) Marshal() []byte {
	body := r.reportBody()
	sig := make([]byte, 96) // two 48-byte big-endian field elements
	r.SigR.FillBytes(sig[:48])
	r.SigS.FillBytes(sig[48:])
	return append(body, sig...)
}

// UnmarshalReport parses Marshal's output. The wire format is fixed-size;
// truncated and oversized input are both rejected before any field is
// decoded.
func UnmarshalReport(b []byte) (*Report, error) {
	const bodyLen = 4 + 8 + 1 + 4 + 32 + 64
	if len(b) < bodyLen+96 {
		return nil, fmt.Errorf("psp: report truncated: %d bytes, want %d", len(b), bodyLen+96)
	}
	if len(b) > bodyLen+96 {
		return nil, fmt.Errorf("psp: report oversized: %d bytes, want %d", len(b), bodyLen+96)
	}
	le := binary.LittleEndian
	r := &Report{
		Version: le.Uint32(b[0:]),
		Policy:  le.Uint64(b[4:]),
		Level:   sev.Level(b[12]),
		ASID:    le.Uint32(b[13:]),
	}
	copy(r.Measurement[:], b[17:])
	copy(r.ReportData[:], b[49:])
	r.SigR = new(big.Int).SetBytes(b[bodyLen : bodyLen+48])
	r.SigS = new(big.Int).SetBytes(b[bodyLen+48:])
	return r, nil
}

// BuildReport generates and signs an attestation report for a finished
// guest. reportData is chosen by the guest (it binds the guest's ephemeral
// public key to the report).
func (ctx *GuestContext) BuildReport(proc *sim.Proc, reportData [64]byte) (*Report, error) {
	if ctx.state != StateRunning {
		return nil, fmt.Errorf("%w: report for guest in state %d", ErrState, ctx.state)
	}
	ctx.psp.run(proc, ctx.psp.model.PSPReportGen, "REPORT_GEN")
	r := &Report{
		Version:     2,
		Policy:      ctx.policy.Encode(),
		Level:       ctx.level,
		ASID:        ctx.asid,
		Measurement: ctx.digest,
		ReportData:  reportData,
	}
	if err := r.Sign(ctx.psp.rng, ctx.psp.signKey); err != nil {
		return nil, err
	}
	return r, nil
}

// Sign signs the report body with the given platform key, installing the
// signature. The PSP signs its own reports in BuildReport; the fault
// layer re-signs reports under alternate platform identities to model
// stale-TCB and revoked-VCEK platforms (internal/kbs).
func (r *Report) Sign(rng io.Reader, key *ecdsa.PrivateKey) error {
	sum := sha512.Sum384(r.reportBody())
	sigR, sigS, err := ecdsa.Sign(rng, key, sum[:])
	if err != nil {
		return fmt.Errorf("psp: signing report: %w", err)
	}
	r.SigR, r.SigS = sigR, sigS
	return nil
}

// VerifyReport checks a report's signature against the platform
// verification key. It does NOT check the measurement — that is the guest
// owner's job (internal/attest).
func VerifyReport(pub *ecdsa.PublicKey, r *Report) error {
	if r.SigR == nil || r.SigS == nil {
		return errors.New("psp: report is unsigned")
	}
	sum := sha512.Sum384(r.reportBody())
	if !ecdsa.Verify(pub, sum[:], r.SigR, r.SigS) {
		return errors.New("psp: report signature invalid")
	}
	return nil
}

// LaunchStartShared opens a launch context that reuses donor's memory
// encryption key and ASID — the paper's §6.2 near-term idea for easing
// the PSP bottleneck and enabling warm start. Both guests' policies must
// permit key sharing; the relaxed policy is reflected in the measurement
// and the attestation report, so guest owners see the weakened trust
// model. The command is cheaper than LAUNCH_START because no key is
// derived.
func (p *PSP) LaunchStartShared(proc *sim.Proc, mem *guestmem.Memory, donor *GuestContext, level sev.Level, policy sev.Policy) (*GuestContext, error) {
	if !level.Encrypted() {
		return nil, fmt.Errorf("%w: shared-key launch for non-SEV guest", ErrState)
	}
	if policy.NoKeySharing || donor.policy.NoKeySharing {
		return nil, fmt.Errorf("%w: key sharing forbidden by policy", ErrPolicy)
	}
	if policy.ESRequired && level < sev.ES {
		return nil, fmt.Errorf("%w: policy requires SEV-ES, guest level %v", ErrPolicy, level)
	}
	p.run(proc, p.model.PSPLaunchStart/2, "LAUNCH_START_SHARED")

	mem.SetKey(donor.mem.Key(), donor.asid)
	ctx := &GuestContext{
		psp:    p,
		mem:    mem,
		level:  level,
		policy: policy,
		asid:   donor.asid, // shared key == shared ASID slot
		state:  StateLaunching,
	}
	ctx.digest = InitialDigest(policy, level)
	return ctx, nil
}

// LaunchStartFork opens a launch context for a guest forked from a
// finished donor: the donor's key, ASID, *and launch digest* carry over,
// so the fork attests with the exact measurement of its parent — the
// launch-digest provenance requirement for snapshot-fork warm boot. The
// PSP charge and command label are identical to LaunchStartShared
// (virtual time does not depend on which warm path ran); the digest is
// inherited rather than re-derived because the forked memory is, page
// for page, the measured parent image (guestmem.AdoptFork verifies the
// fork root before any page goes live).
//
// The donor must be a finished launch (StateRunning) with the same
// feature level and policy — a fork may not relax what its parent
// measured.
func (p *PSP) LaunchStartFork(proc *sim.Proc, mem *guestmem.Memory, donor *GuestContext, level sev.Level, policy sev.Policy) (*GuestContext, error) {
	if donor.state != StateRunning {
		return nil, fmt.Errorf("%w: fork from donor in state %d", ErrState, donor.state)
	}
	if level != donor.level {
		return nil, fmt.Errorf("%w: fork level %v != donor level %v", ErrPolicy, level, donor.level)
	}
	if policy != donor.policy {
		return nil, fmt.Errorf("%w: fork policy differs from donor policy", ErrPolicy)
	}
	ctx, err := p.LaunchStartShared(proc, mem, donor, level, policy)
	if err != nil {
		return nil, err
	}
	ctx.digest = donor.digest
	return ctx, nil
}
