package psp

import (
	"testing"
	"testing/quick"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/sev"
)

func unitModel() costmodel.Model { return costmodel.Unit() }
func defaultPolicy() sev.Policy  { return sev.DefaultPolicy() }
func snpLevel() sev.Level        { return sev.SNP }

// Parsers that face host-controlled bytes must never panic, whatever the
// input. testing/quick drives them with arbitrary garbage.

func TestUnmarshalReportNeverPanics(t *testing.T) {
	f := func(junk []byte) bool {
		_, _ = UnmarshalReport(junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalChainNeverPanics(t *testing.T) {
	f := func(junk []byte) bool {
		ch, err := UnmarshalChain(junk)
		if err == nil && ch != nil {
			// If garbage parses structurally, verification must still be
			// callable without panicking.
			p := New(unitModel(), 1)
			_ = ch.Verify(p.AMDRootKey())
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalCertNeverPanics(t *testing.T) {
	f := func(junk []byte) bool {
		_, _, _ = UnmarshalCert(junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDigestChainProperties pins algebraic properties of the measurement
// chain: order sensitivity and prefix determinism.
func TestDigestChainProperties(t *testing.T) {
	f := func(a, b []byte, gpaA, gpaB uint32) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		d0 := InitialDigest(defaultPolicy(), snpLevel())
		ab := ExtendDigest(ExtendDigest(d0, 1, uint64(gpaA), a), 1, uint64(gpaB), b)
		ba := ExtendDigest(ExtendDigest(d0, 1, uint64(gpaB), b), 1, uint64(gpaA), a)
		same := string(a) == string(b) && gpaA == gpaB
		if !same && ab == ba {
			return false // order must matter
		}
		// Determinism.
		ab2 := ExtendDigest(ExtendDigest(d0, 1, uint64(gpaA), a), 1, uint64(gpaB), b)
		return ab == ab2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
