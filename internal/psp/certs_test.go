package psp

import (
	"testing"

	"github.com/severifast/severifast/internal/costmodel"
)

func TestChainVerifies(t *testing.T) {
	p := New(costmodel.Unit(), 1)
	if err := p.CertChain().Verify(p.AMDRootKey()); err != nil {
		t.Fatal(err)
	}
}

func TestChainVCEKMatchesSigningKey(t *testing.T) {
	p := New(costmodel.Unit(), 1)
	vcek := p.CertChain().VCEK.Key()
	pub := p.VerificationKey()
	if vcek.X.Cmp(pub.X) != 0 || vcek.Y.Cmp(pub.Y) != 0 {
		t.Fatal("VCEK certificate does not carry the report-signing key")
	}
}

func TestChainMarshalRoundTrip(t *testing.T) {
	p := New(costmodel.Unit(), 1)
	raw := p.CertChain().Marshal()
	got, err := UnmarshalChain(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Verify(p.AMDRootKey()); err != nil {
		t.Fatalf("round-tripped chain invalid: %v", err)
	}
}

func TestChainRejectsForeignRoot(t *testing.T) {
	a := New(costmodel.Unit(), 1)
	b := New(costmodel.Unit(), 2)
	// Platform B's chain against platform A's pinned root: must fail —
	// this is what stops a malicious host from minting its own "AMD" keys.
	if err := b.CertChain().Verify(a.AMDRootKey()); err == nil {
		t.Fatal("foreign chain verified against the pinned ARK")
	}
}

func TestChainRejectsSwappedVCEK(t *testing.T) {
	a := New(costmodel.Unit(), 1)
	b := New(costmodel.Unit(), 2)
	frank := *a.CertChain()
	frank.VCEK = b.CertChain().VCEK // VCEK from another platform's ASK
	if err := frank.Verify(a.AMDRootKey()); err == nil {
		t.Fatal("frankenstein chain verified")
	}
}

func TestChainRejectsTamperedCert(t *testing.T) {
	p := New(costmodel.Unit(), 1)
	raw := p.CertChain().Marshal()
	for _, idx := range []int{8, 60, len(raw) / 2, len(raw) - 10} {
		c := append([]byte(nil), raw...)
		c[idx] ^= 0xFF
		ch, err := UnmarshalChain(c)
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if err := ch.Verify(p.AMDRootKey()); err == nil {
			t.Fatalf("tampered chain (byte %d) verified", idx)
		}
	}
}

func TestUnmarshalChainRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {1, 2, 3}, make([]byte, 200)} {
		if _, err := UnmarshalChain(b); err == nil {
			t.Fatal("garbage chain parsed")
		}
	}
}

func TestChainDeterministicPerSeed(t *testing.T) {
	a1 := New(costmodel.Unit(), 7)
	a2 := New(costmodel.Unit(), 7)
	if a1.CertChain().VCEK.PubX.Cmp(a2.CertChain().VCEK.PubX) != 0 {
		t.Fatal("same seed produced different platform identity")
	}
}
