package psp

// Determinism tests for the parallel measurement pipeline: the batch
// digest must be bit-identical to the sequential LAUNCH_UPDATE_DATA
// chain for every worker count (including 1), every region layout, and
// regardless of whether region bytes hit the shared-artifact memo.

import (
	"crypto/sha256"
	"math/rand"
	"testing"

	"github.com/severifast/severifast/internal/artifact"
	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/hostwork"
	"github.com/severifast/severifast/internal/sev"
)

type stagedRegion struct {
	gpa  uint64
	data []byte
	pt   sev.PageType
}

// randomRegions lays out count non-overlapping regions with randomized
// sizes (including sub-page and non-page-multiple sizes). Every third
// region re-stages one shared interned buffer, exercising the artifact
// digest memo alongside fresh unmemoized buffers.
func randomRegions(rng *rand.Rand, count int) []stagedRegion {
	shared := make([]byte, 3*4096+123)
	rng.Read(shared)
	artifact.Intern(shared)
	pts := []sev.PageType{sev.PageNormal, sev.PageNormal, sev.PageZero, sev.PageSecrets}
	gpa := uint64(0x1000)
	regions := make([]stagedRegion, 0, count)
	for i := 0; i < count; i++ {
		var data []byte
		if i%3 == 0 {
			data = shared
		} else {
			data = make([]byte, 1+rng.Intn(5*4096))
			rng.Read(data)
		}
		regions = append(regions, stagedRegion{gpa: gpa, data: data, pt: pts[rng.Intn(len(pts))]})
		gpa += (uint64(len(data)) + 2*4096) &^ 4095
	}
	return regions
}

// sequentialDigest measures the regions with per-region
// LAUNCH_UPDATE_DATA calls — the reference serial path.
func sequentialDigest(t *testing.T, regions []stagedRegion) [32]byte {
	t.Helper()
	p := New(costmodel.Unit(), 1)
	mem, ctx := newGuest(t, p)
	for _, r := range regions {
		if err := mem.HostWrite(r.gpa, r.data); err != nil {
			t.Fatal(err)
		}
		if err := ctx.LaunchUpdateData(nil, r.gpa, len(r.data), r.pt); err != nil {
			t.Fatal(err)
		}
	}
	d, err := ctx.LaunchFinish(nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// batchDigest measures the regions through an UpdateBatch, optionally
// splitting the batch with a mid-stream Close (the batch is reusable).
func batchDigest(t *testing.T, regions []stagedRegion, splitAt int) [32]byte {
	t.Helper()
	p := New(costmodel.Unit(), 1)
	_, ctx := newGuest(t, p)
	b := ctx.NewUpdateBatch()
	for i, r := range regions {
		if i == splitAt {
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.Stage(nil, r.gpa, r.data, r.pt); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := ctx.LaunchFinish(nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPipelineDigestDeterministic(t *testing.T) {
	defer hostwork.SetWorkers(0)
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		count := 1 + rng.Intn(24)
		regions := randomRegions(rng, count)
		want := sequentialDigest(t, regions)
		for _, workers := range []int{1, 2, 3, 8, 16} {
			hostwork.SetWorkers(workers)
			if got := batchDigest(t, regions, -1); got != want {
				t.Fatalf("seed %d workers %d: batch digest %x != sequential %x", seed, workers, got, want)
			}
			if got := batchDigest(t, regions, count/2); got != want {
				t.Fatalf("seed %d workers %d: split batch digest %x != sequential %x", seed, workers, got, want)
			}
		}
	}
}

func TestPipelineOverlapFlushesPending(t *testing.T) {
	// A staged write overlapping a pending (unhashed) region must not
	// change what the earlier region's deferred hash observes: the batch
	// flushes before the overlapping write lands.
	defer hostwork.SetWorkers(0)
	for _, workers := range []int{1, 4} {
		hostwork.SetWorkers(workers)
		first := make([]byte, 4096+100)
		second := make([]byte, 4096)
		for i := range first {
			first[i] = byte(i)
		}
		for i := range second {
			second[i] = byte(i * 7)
		}

		// Reference: sequential updates hash each region at update time.
		p := New(costmodel.Unit(), 1)
		mem, ctx := newGuest(t, p)
		if err := mem.HostWrite(0x1000, first); err != nil {
			t.Fatal(err)
		}
		if err := ctx.LaunchUpdateData(nil, 0x1000, len(first), sev.PageNormal); err != nil {
			t.Fatal(err)
		}
		if err := mem.HostWrite(0x2000, second); err != nil {
			t.Fatal(err)
		}
		if err := ctx.LaunchUpdateData(nil, 0x2000, len(second), sev.PageNormal); err != nil {
			t.Fatal(err)
		}
		want, err := ctx.LaunchFinish(nil)
		if err != nil {
			t.Fatal(err)
		}

		// Batch: the second region overwrites the tail page of the first.
		p2 := New(costmodel.Unit(), 1)
		_, ctx2 := newGuest(t, p2)
		b := ctx2.NewUpdateBatch()
		if err := b.Stage(nil, 0x1000, first, sev.PageNormal); err != nil {
			t.Fatal(err)
		}
		if err := b.Stage(nil, 0x2000, second, sev.PageNormal); err != nil {
			t.Fatal(err)
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := ctx2.LaunchFinish(nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers %d: overlapping batch digest %x != sequential %x", workers, got, want)
		}
	}
}

func TestFoldDigestMatchesExtend(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	initial := InitialDigest(sev.DefaultPolicy(), sev.SNP)
	var metas []RegionMeta
	var contents [][32]byte
	want := initial
	for i := 0; i < 10; i++ {
		data := make([]byte, 1+rng.Intn(8192))
		rng.Read(data)
		gpa := uint64(0x1000 * (i + 1))
		want = ExtendDigest(want, sev.PageNormal, gpa, data)
		metas = append(metas, RegionMeta{PT: sev.PageNormal, GPA: gpa, Len: len(data)})
		contents = append(contents, sha256.Sum256(data))
	}
	if got := FoldDigest(initial, metas, contents); got != want {
		t.Fatalf("FoldDigest %x != ExtendDigest chain %x", got, want)
	}
}
