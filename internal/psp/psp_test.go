package psp

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/guestmem"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
)

func newGuest(t *testing.T, p *PSP) (*guestmem.Memory, *GuestContext) {
	t.Helper()
	mem := guestmem.New(16 << 20)
	ctx, err := p.LaunchStart(nil, mem, sev.SNP, sev.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	return mem, ctx
}

func TestLaunchFlow(t *testing.T) {
	p := New(costmodel.Unit(), 1)
	mem, ctx := newGuest(t, p)
	if ctx.State() != StateLaunching {
		t.Fatal("fresh context not in launching state")
	}
	component := bytes.Repeat([]byte("verifier"), 1024)
	if err := mem.HostWrite(0x1000, component); err != nil {
		t.Fatal(err)
	}
	if err := ctx.LaunchUpdateData(nil, 0x1000, len(component), sev.PageNormal); err != nil {
		t.Fatal(err)
	}
	digest, err := ctx.LaunchFinish(nil)
	if err != nil {
		t.Fatal(err)
	}
	if digest == ([32]byte{}) {
		t.Fatal("zero digest")
	}
	if ctx.State() != StateRunning {
		t.Fatal("context not running after finish")
	}
}

func TestUpdateAfterFinishRejected(t *testing.T) {
	// §2.4: LAUNCH_FINISH prevents further LAUNCH_UPDATE_DATA.
	p := New(costmodel.Unit(), 1)
	mem, ctx := newGuest(t, p)
	if _, err := ctx.LaunchFinish(nil); err != nil {
		t.Fatal(err)
	}
	if err := mem.HostWrite(0x1000, []byte("late injection")); err != nil {
		t.Fatal(err)
	}
	if err := ctx.LaunchUpdateData(nil, 0x1000, 14, sev.PageNormal); !errors.Is(err, ErrState) {
		t.Fatalf("post-finish update: err = %v, want ErrState", err)
	}
}

func TestDoubleFinishRejected(t *testing.T) {
	p := New(costmodel.Unit(), 1)
	_, ctx := newGuest(t, p)
	if _, err := ctx.LaunchFinish(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.LaunchFinish(nil); !errors.Is(err, ErrState) {
		t.Fatalf("double finish: err = %v, want ErrState", err)
	}
}

func TestLaunchStartRejectsNonSEV(t *testing.T) {
	p := New(costmodel.Unit(), 1)
	if _, err := p.LaunchStart(nil, guestmem.New(1<<20), sev.None, sev.Policy{}); err == nil {
		t.Fatal("LAUNCH_START accepted for non-SEV guest")
	}
}

func TestPolicyESRequiredEnforced(t *testing.T) {
	p := New(costmodel.Unit(), 1)
	pol := sev.Policy{ESRequired: true}
	if _, err := p.LaunchStart(nil, guestmem.New(1<<20), sev.SEV, pol); !errors.Is(err, ErrPolicy) {
		t.Fatalf("ES-required policy with base SEV: err = %v, want ErrPolicy", err)
	}
}

func TestDigestDependsOnContent(t *testing.T) {
	run := func(content []byte) [32]byte {
		p := New(costmodel.Unit(), 1)
		mem, ctx := newGuest(t, p)
		if err := mem.HostWrite(0x1000, content); err != nil {
			t.Fatal(err)
		}
		if err := ctx.LaunchUpdateData(nil, 0x1000, len(content), sev.PageNormal); err != nil {
			t.Fatal(err)
		}
		d, _ := ctx.LaunchFinish(nil)
		return d
	}
	a := run([]byte("genuine boot verifier code"))
	b := run([]byte("tampered boot verifier cod3"))
	if a == b {
		t.Fatal("different contents produced identical launch digests")
	}
}

func TestDigestDependsOnAddressAndPolicy(t *testing.T) {
	content := []byte("boot verifier")
	launch := func(gpa uint64, pol sev.Policy) [32]byte {
		p := New(costmodel.Unit(), 1)
		mem := guestmem.New(16 << 20)
		ctx, err := p.LaunchStart(nil, mem, sev.SNP, pol)
		if err != nil {
			t.Fatal(err)
		}
		if err := mem.HostWrite(gpa, content); err != nil {
			t.Fatal(err)
		}
		if err := ctx.LaunchUpdateData(nil, gpa, len(content), sev.PageNormal); err != nil {
			t.Fatal(err)
		}
		d, _ := ctx.LaunchFinish(nil)
		return d
	}
	base := launch(0x1000, sev.DefaultPolicy())
	if launch(0x2000, sev.DefaultPolicy()) == base {
		t.Fatal("digest ignores load address")
	}
	weak := sev.DefaultPolicy()
	weak.NoDebug = false
	if launch(0x1000, weak) == base {
		t.Fatal("digest ignores policy; a weakened launch must be detectable")
	}
}

func TestDigestDeterministicAcrossPlatforms(t *testing.T) {
	// The guest owner computes the expected digest on their own machine:
	// it must not depend on the PSP instance or its keys.
	content := []byte("boot verifier")
	launch := func(seed int64) [32]byte {
		p := New(costmodel.Unit(), seed)
		mem, ctx := newGuest(t, p)
		if err := mem.HostWrite(0x1000, content); err != nil {
			t.Fatal(err)
		}
		if err := ctx.LaunchUpdateData(nil, 0x1000, len(content), sev.PageNormal); err != nil {
			t.Fatal(err)
		}
		d, _ := ctx.LaunchFinish(nil)
		return d
	}
	if launch(1) != launch(999) {
		t.Fatal("launch digest depends on platform seed")
	}
}

func TestVMSAUpdateRequiresES(t *testing.T) {
	p := New(costmodel.Unit(), 1)
	mem := guestmem.New(1 << 20)
	pol := sev.Policy{}
	ctx, err := p.LaunchStart(nil, mem, sev.SEV, pol)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.LaunchUpdateVMSA(nil, 0x3000); !errors.Is(err, ErrState) {
		t.Fatalf("VMSA update on base SEV: err = %v, want ErrState", err)
	}
}

func TestReportSignatureVerifies(t *testing.T) {
	p := New(costmodel.Unit(), 1)
	_, ctx := newGuest(t, p)
	if _, err := ctx.LaunchFinish(nil); err != nil {
		t.Fatal(err)
	}
	var rd [64]byte
	copy(rd[:], "guest ephemeral pubkey hash")
	rep, err := ctx.BuildReport(nil, rd)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReport(p.VerificationKey(), rep); err != nil {
		t.Fatal(err)
	}
	// Tampering with any field breaks the signature.
	rep.Measurement[0] ^= 1
	if err := VerifyReport(p.VerificationKey(), rep); err == nil {
		t.Fatal("tampered measurement passed verification")
	}
	rep.Measurement[0] ^= 1
	rep.ReportData[5] ^= 1
	if err := VerifyReport(p.VerificationKey(), rep); err == nil {
		t.Fatal("tampered report data passed verification")
	}
}

func TestReportRejectedBeforeFinish(t *testing.T) {
	p := New(costmodel.Unit(), 1)
	_, ctx := newGuest(t, p)
	if _, err := ctx.BuildReport(nil, [64]byte{}); !errors.Is(err, ErrState) {
		t.Fatalf("pre-finish report: err = %v, want ErrState", err)
	}
}

func TestReportWrongPlatformKeyFails(t *testing.T) {
	p1 := New(costmodel.Unit(), 1)
	p2 := New(costmodel.Unit(), 2)
	_, ctx := newGuest(t, p1)
	if _, err := ctx.LaunchFinish(nil); err != nil {
		t.Fatal(err)
	}
	rep, err := ctx.BuildReport(nil, [64]byte{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReport(p2.VerificationKey(), rep); err == nil {
		t.Fatal("report verified against the wrong platform key")
	}
}

func TestReportMarshalRoundTrip(t *testing.T) {
	p := New(costmodel.Unit(), 1)
	_, ctx := newGuest(t, p)
	if _, err := ctx.LaunchFinish(nil); err != nil {
		t.Fatal(err)
	}
	var rd [64]byte
	rd[0] = 0xAB
	rep, err := ctx.BuildReport(nil, rd)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalReport(rep.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Measurement != rep.Measurement || got.ReportData != rep.ReportData ||
		got.Policy != rep.Policy || got.Level != rep.Level || got.ASID != rep.ASID {
		t.Fatal("report fields lost in marshal round trip")
	}
	if err := VerifyReport(p.VerificationKey(), got); err != nil {
		t.Fatalf("unmarshaled report signature invalid: %v", err)
	}
}

func TestUnmarshalRejectsWrongLength(t *testing.T) {
	if _, err := UnmarshalReport(make([]byte, 50)); err == nil {
		t.Fatal("short report accepted")
	}
}

func TestASIDsAreUnique(t *testing.T) {
	p := New(costmodel.Unit(), 1)
	seen := map[uint32]bool{}
	for i := 0; i < 10; i++ {
		_, ctx := newGuest(t, p)
		if seen[ctx.ASID()] {
			t.Fatalf("ASID %d reused", ctx.ASID())
		}
		seen[ctx.ASID()] = true
	}
}

func TestGuestKeysDiffer(t *testing.T) {
	p := New(costmodel.Unit(), 1)
	content := bytes.Repeat([]byte("same page"), 400)
	cts := make([][]byte, 2)
	for i := range cts {
		mem, ctx := newGuest(t, p)
		if err := mem.HostWrite(0x1000, content); err != nil {
			t.Fatal(err)
		}
		if err := ctx.LaunchUpdateData(nil, 0x1000, len(content), sev.PageNormal); err != nil {
			t.Fatal(err)
		}
		ct, err := mem.HostRead(0x1000, len(content))
		if err != nil {
			t.Fatal(err)
		}
		cts[i] = ct
	}
	if bytes.Equal(cts[0], cts[1]) {
		t.Fatal("two guests share ciphertext: keys not unique per guest")
	}
}

func TestPreEncryptionTimeChargedOnPSP(t *testing.T) {
	model := costmodel.Unit() // 1 ns/byte + 1 ms per command
	p := New(model, 1)
	eng := sim.NewEngine()
	var elapsed time.Duration
	eng.Go("launch", func(proc *sim.Proc) {
		mem := guestmem.New(16 << 20)
		ctx, err := p.LaunchStart(proc, mem, sev.SNP, sev.DefaultPolicy())
		if err != nil {
			t.Error(err)
			return
		}
		data := make([]byte, 1_000_000)
		if err := mem.HostWrite(0x1000, data); err != nil {
			t.Error(err)
			return
		}
		start := proc.Now()
		if err := ctx.LaunchUpdateData(proc, 0x1000, len(data), sev.PageNormal); err != nil {
			t.Error(err)
			return
		}
		elapsed = proc.Now().Sub(start)
	})
	eng.Run()
	want := model.PreEncrypt(1_000_000) // 1 ms + 1 ms
	if elapsed != want {
		t.Fatalf("pre-encryption took %v of virtual time, want %v", elapsed, want)
	}
}

func TestConcurrentLaunchesSerializeOnPSP(t *testing.T) {
	// The Fig. 12 mechanism: N concurrent LAUNCH_UPDATEs through one PSP
	// finish at strictly increasing times with a constant stride.
	model := costmodel.Unit()
	p := New(model, 1)
	eng := sim.NewEngine()
	var finish []sim.Time
	const n = 5
	for i := 0; i < n; i++ {
		eng.Go("vm", func(proc *sim.Proc) {
			mem := guestmem.New(16 << 20)
			ctx, err := p.LaunchStart(proc, mem, sev.SNP, sev.DefaultPolicy())
			if err != nil {
				t.Error(err)
				return
			}
			data := make([]byte, 500_000)
			if err := mem.HostWrite(0x1000, data); err != nil {
				t.Error(err)
				return
			}
			if err := ctx.LaunchUpdateData(proc, 0x1000, len(data), sev.PageNormal); err != nil {
				t.Error(err)
				return
			}
			if _, err := ctx.LaunchFinish(proc); err != nil {
				t.Error(err)
				return
			}
			finish = append(finish, proc.Now())
		})
	}
	eng.Run()
	if len(finish) != n {
		t.Fatalf("%d finishes", len(finish))
	}
	// Commands from different guests interleave on the PSP FIFO, but the
	// total work is strictly serialized: the last guest finishes exactly
	// when all n guests' worth of PSP time has elapsed, and no two guests
	// finish together.
	perVM := model.PSPLaunchStart + model.PreEncrypt(500_000) + model.PSPLaunchFinish
	if last := finish[n-1]; last != sim.Time(int64(perVM)*n) {
		t.Fatalf("last finish %v, want %v (full serialization)", last, time.Duration(perVM.Nanoseconds()*n))
	}
	for i := 1; i < n; i++ {
		if finish[i] <= finish[i-1] {
			t.Fatalf("finishes not strictly increasing: %v", finish)
		}
	}
	if finish[0] <= sim.Time(perVM) {
		t.Fatalf("vm 0 finished at %v, faster than its own PSP work %v despite contention", finish[0], perVM)
	}
}
