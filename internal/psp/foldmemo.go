package psp

// Delta launch measurement. The digest chain is a fold: every step is a
// pure function of (previous digest, region meta, region content hash).
// Two images sharing a component prefix — the fleet's bread and butter:
// same verifier, same kernel, different initrd — therefore share the
// entire chain up to the first differing region (the hash page, through
// which initrd content enters the measurement). A FoldMemo caches each
// step keyed by its full input, so planning the Nth variant of an image
// family re-derives only the suffix that actually changed.
//
// Soundness is free: a memo hit returns ExtendDigestContent's output
// for *exactly* the inputs presented (the key includes the previous
// digest and the content hash), so a memoized fold is bit-identical to
// the serial computation by construction.

import (
	"sync"

	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/telemetry"
)

// foldStep is one fold transition's full input.
type foldStep struct {
	prev    [32]byte
	pt      sev.PageType
	gpa     uint64
	n       int
	content [32]byte
}

// maxFoldSteps caps the memo. A fleet measures a handful of regions per
// image; the cap only bounds adversarial churn. Past it, Fold still
// computes correctly — new steps just are not cached.
const maxFoldSteps = 1 << 16

// FoldMemo caches digest-chain transitions across fold invocations.
// Safe for concurrent use.
type FoldMemo struct {
	mu  sync.Mutex
	m   map[foldStep][32]byte
	rec *telemetry.HostRecorder
}

// NewFoldMemo returns an empty memo recording hit/miss counters on rec
// (nil routes to telemetry.DefaultHostRecorder).
func NewFoldMemo(rec *telemetry.HostRecorder) *FoldMemo {
	if rec == nil {
		rec = telemetry.DefaultHostRecorder
	}
	return &FoldMemo{m: make(map[foldStep][32]byte), rec: rec}
}

// Fold is FoldDigest through the memo: shared prefixes of previously
// folded chains are map hits ("psp.fold.prefix_hits"); the first
// divergent region and everything after it are computed and cached
// ("psp.fold.prefix_misses").
func (fm *FoldMemo) Fold(initial [32]byte, metas []RegionMeta, contents [][32]byte) [32]byte {
	digest := initial
	var hits, misses int64
	for i, meta := range metas {
		step := foldStep{prev: digest, pt: meta.PT, gpa: meta.GPA, n: meta.Len, content: contents[i]}
		fm.mu.Lock()
		next, ok := fm.m[step]
		fm.mu.Unlock()
		if ok {
			hits++
			digest = next
			continue
		}
		misses++
		digest = ExtendDigestContent(digest, meta.PT, meta.GPA, meta.Len, contents[i])
		fm.mu.Lock()
		if len(fm.m) < maxFoldSteps {
			fm.m[step] = digest
		}
		fm.mu.Unlock()
	}
	if hits != 0 {
		fm.rec.CounterAdd("psp.fold.prefix_hits", hits)
	}
	if misses != 0 {
		fm.rec.CounterAdd("psp.fold.prefix_misses", misses)
	}
	return digest
}
