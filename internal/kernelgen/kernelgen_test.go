package kernelgen

import (
	"bytes"
	"testing"

	"github.com/severifast/severifast/internal/bzimage"
	"github.com/severifast/severifast/internal/cpio"
	"github.com/severifast/severifast/internal/elfx"
	"github.com/severifast/severifast/internal/lz4"
)

// TestFig8Sizes is the Fig. 8 reproduction at the artifact level: each
// preset's vmlinux and LZ4 bzImage must land on the paper's sizes.
func TestFig8Sizes(t *testing.T) {
	for _, p := range Presets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			art, err := Cached(p)
			if err != nil {
				t.Fatal(err)
			}
			if rel := relErr(len(art.VMLinux), p.VMLinuxSize); rel > 0.01 {
				t.Errorf("vmlinux %d bytes, target %d (rel %.3f)", len(art.VMLinux), p.VMLinuxSize, rel)
			}
			if rel := relErr(len(art.BzImageLZ4), p.BzImageLZ4Target); rel > p.Tolerance {
				t.Errorf("bzImage %d bytes, target %d (rel %.3f)", len(art.BzImageLZ4), p.BzImageLZ4Target, rel)
			}
		})
	}
}

func TestVMLinuxIsValidELF(t *testing.T) {
	art, err := Cached(Lupine())
	if err != nil {
		t.Fatal(err)
	}
	img, err := elfx.Parse(art.VMLinux)
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry != art.Entry {
		t.Fatalf("entry %#x, want %#x", img.Entry, art.Entry)
	}
	loads := 0
	for _, seg := range img.Segments {
		if seg.Type == elfx.PTLoad {
			loads++
		}
	}
	if loads != 3 {
		t.Fatalf("%d PT_LOAD segments, want 3", loads)
	}
}

func TestBzImageExtractsToSameVMLinux(t *testing.T) {
	art, err := Cached(Lupine())
	if err != nil {
		t.Fatal(err)
	}
	got, err := bzimage.ExtractVMLinux(art.BzImageLZ4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, art.VMLinux) {
		t.Fatal("bzImage payload does not decompress to the vmlinux")
	}
}

func TestGzipBiggerThanLZ4ButSmallerThanRaw(t *testing.T) {
	// gzip actually compresses better than LZ4 (that is why Fig. 5's gzip
	// loses on *decompression* time, not size). Verify ordering:
	// gzip <= lz4 < raw.
	art, err := Cached(Lupine())
	if err != nil {
		t.Fatal(err)
	}
	if len(art.BzImageGzip) >= len(art.VMLinux) {
		t.Fatal("gzip bzImage not smaller than vmlinux")
	}
	if len(art.BzImageLZ4) >= len(art.VMLinux) {
		t.Fatal("lz4 bzImage not smaller than vmlinux")
	}
}

func TestDeterministicArtifacts(t *testing.T) {
	a, err := Lupine().Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Lupine().Build()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.VMLinux, b.VMLinux) || !bytes.Equal(a.BzImageLZ4, b.BzImageLZ4) {
		t.Fatal("artifacts are not deterministic; launch digests must be reproducible")
	}
}

func TestPresetByName(t *testing.T) {
	for _, name := range []string{"lupine", "aws", "ubuntu"} {
		p, err := PresetByName(name)
		if err != nil || p.Name != name {
			t.Fatalf("PresetByName(%q) = %v, %v", name, p.Name, err)
		}
	}
	if _, err := PresetByName("debian"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestCmdlineLengthMatchesPaper(t *testing.T) {
	// §4.2: the default Firecracker command line is 155 bytes.
	if n := len(Lupine().Cmdline); n < 140 || n > 170 {
		t.Fatalf("default cmdline %d bytes, want ~155", n)
	}
}

func TestLupineHasNoNetworking(t *testing.T) {
	if Lupine().Networking {
		t.Fatal("lupine-base must not have networking (paper §6.1)")
	}
	if !AWS().Networking || !Ubuntu().Networking {
		t.Fatal("aws/ubuntu must have networking")
	}
}

func TestInitrdParsesAndHasAgent(t *testing.T) {
	initrd := BuildInitrd(1, 1<<20)
	files, err := cpio.Parse(initrd)
	if err != nil {
		t.Fatal(err)
	}
	if cpio.Lookup(files, "init") == nil {
		t.Fatal("initrd missing /init")
	}
	if cpio.Lookup(files, "bin/attest-agent") == nil {
		t.Fatal("initrd missing attestation agent")
	}
	if cpio.Lookup(files, "lib/modules/sev-guest.ko") == nil {
		t.Fatal("initrd missing sev-guest module")
	}
}

func TestInitrdSizeAndCompressibility(t *testing.T) {
	initrd := BuildInitrd(1, DefaultInitrdSize)
	if rel := relErr(len(initrd), DefaultInitrdSize); rel > 0.02 {
		t.Fatalf("initrd %d bytes, target %d", len(initrd), DefaultInitrdSize)
	}
	comp := lz4.CompressBlock(initrd)
	ratio := float64(len(initrd)) / float64(len(comp))
	// Binaries compress poorly: expect ~1.2-1.6x, landing the compressed
	// size near the paper's 12 MiB initrd.
	if ratio < 1.1 || ratio > 1.8 {
		t.Fatalf("initrd compression ratio %.2f outside binary-like window", ratio)
	}
}

func TestGenBinaryDeterministicAndSized(t *testing.T) {
	a := GenBinary(5, 13*1024)
	b := GenBinary(5, 13*1024)
	if !bytes.Equal(a, b) {
		t.Fatal("GenBinary not deterministic")
	}
	if len(a) != 13*1024 {
		t.Fatalf("GenBinary size %d", len(a))
	}
	if bytes.Equal(a, GenBinary(6, 13*1024)) {
		t.Fatal("different seeds produced identical binaries")
	}
}

func TestSizeOrderingAcrossPresets(t *testing.T) {
	lup, err := Cached(Lupine())
	if err != nil {
		t.Fatal(err)
	}
	aws, err := Cached(AWS())
	if err != nil {
		t.Fatal(err)
	}
	ubu, err := Cached(Ubuntu())
	if err != nil {
		t.Fatal(err)
	}
	if !(len(lup.VMLinux) < len(aws.VMLinux) && len(aws.VMLinux) < len(ubu.VMLinux)) {
		t.Fatal("vmlinux sizes not in lupine < aws < ubuntu order")
	}
	if !(len(lup.BzImageLZ4) < len(aws.BzImageLZ4) && len(aws.BzImageLZ4) < len(ubu.BzImageLZ4)) {
		t.Fatal("bzImage sizes not in lupine < aws < ubuntu order")
	}
}

func TestCalibratedBytesHitsTarget(t *testing.T) {
	n := 4 << 20
	for _, frac := range []float64{0.15, 0.3, 0.6} {
		target := int(float64(n) * frac)
		buf := calibratedBytes(42, n, target)
		got := len(lz4.CompressBlock(buf))
		if rel := relErr(got, target); rel > 0.08 {
			t.Errorf("target ratio %.2f: compressed to %d, want %d (rel %.3f)", frac, got, target, rel)
		}
	}
}
