package measure

import (
	"errors"
	"strings"
	"testing"
)

// hexDigest is a syntactically valid 32-byte digest for building lines.
const hexDigest = "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff"

func TestParseHashFileErrorPaths(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{"truncated digest", "kernel " + hexDigest[:40] + "\ninitrd " + hexDigest + "\n", "bad digest"},
		{"odd length hex", "kernel " + hexDigest[:41] + "\ninitrd " + hexDigest + "\n", "bad digest"},
		{"non-hex digest", "kernel " + strings.Repeat("zz", 32) + "\n", "bad digest"},
		{"digest too long", "kernel " + hexDigest + "ff\n", "bad digest"},
		{"missing digest", "kernel\n", "malformed"},
		{"three fields", "kernel " + hexDigest + " trailing\n", "malformed"},
		{"unknown component", "rootfs " + hexDigest + "\n", "unknown component"},
		{"only kernel", "kernel " + hexDigest + "\n", "missing kernel or initrd"},
		{"only initrd", "initrd " + hexDigest + "\n", "missing kernel or initrd"},
		{"only cmdline", "cmdline " + hexDigest + "\n", "missing kernel or initrd"},
		{"empty file", "", "missing kernel or initrd"},
		{"comments only", "# nothing here\n\n", "missing kernel or initrd"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseHashFile(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("accepted %q", tc.input)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestParseHashFileCmdlineOptional pins the documented asymmetry: kernel
// and initrd entries are mandatory, cmdline defaults to the zero hash.
func TestParseHashFileCmdlineOptional(t *testing.T) {
	h, err := ParseHashFile(strings.NewReader(
		"kernel " + hexDigest + "\ninitrd " + hexDigest + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if h.Cmdline != [32]byte{} {
		t.Fatal("absent cmdline entry should leave a zero hash")
	}
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, errors.New("disk gone") }

func TestParseHashFilePropagatesReadError(t *testing.T) {
	if _, err := ParseHashFile(failingReader{}); err == nil || !strings.Contains(err.Error(), "disk gone") {
		t.Fatalf("read error not propagated: %v", err)
	}
}

func TestParseHashPageErrorPaths(t *testing.T) {
	h := HashComponents([]byte("k"), []byte("i"), "c")
	good := h.HashPage()

	t.Run("truncated below header", func(t *testing.T) {
		for _, n := range []int{0, 1, 9, 10, 16, 111} {
			if _, err := ParseHashPage(good[:n]); err == nil {
				t.Errorf("accepted %d-byte page", n)
			}
		}
	})
	t.Run("exactly minimal size parses", func(t *testing.T) {
		got, err := ParseHashPage(good[:112])
		if err != nil {
			t.Fatal(err)
		}
		if got != h {
			t.Fatal("112-byte prefix did not round-trip the hashes")
		}
	})
	t.Run("wrong magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xFF
		if _, err := ParseHashPage(bad); err == nil {
			t.Fatal("accepted corrupted magic")
		}
		lower := append([]byte(nil), good...)
		copy(lower, []byte("svf-hashes"))
		if _, err := ParseHashPage(lower); err == nil {
			t.Fatal("magic match must be case-sensitive")
		}
	})
	t.Run("corrupted digest bytes still parse", func(t *testing.T) {
		// The page carries no checksum over the digests themselves — the
		// page is covered by the launch measurement instead. Corruption
		// must surface as different hashes, not a parse error.
		bad := append([]byte(nil), good...)
		bad[20] ^= 0xFF
		got, err := ParseHashPage(bad)
		if err != nil {
			t.Fatal(err)
		}
		if got == h {
			t.Fatal("corrupted digest parsed back unchanged")
		}
	})
}
