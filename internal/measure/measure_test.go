package measure

import (
	"bytes"
	"strings"
	"testing"

	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/sev"
)

func sampleConfig() Config {
	return Config{
		Verifier: kernelgen.GenBinary(1, 13*1024),
		Hashes:   HashComponents([]byte("kernel"), []byte("initrd"), "console=ttyS0"),
		Cmdline:  "console=ttyS0",
		VCPUs:    1,
		MemSize:  256 << 20,
		Level:    sev.SNP,
		Policy:   sev.DefaultPolicy(),
	}
}

func TestHashFileRoundTrip(t *testing.T) {
	h := HashComponents([]byte("k"), []byte("i"), "c")
	var buf bytes.Buffer
	if err := WriteHashFile(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, err := ParseHashFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatal("hash file round trip mismatch")
	}
}

func TestParseHashFileRejectsGarbage(t *testing.T) {
	cases := []string{
		"kernel xyz\ninitrd abc\n",
		"kernel deadbeef\n", // wrong length digest
		"mystery 0000000000000000000000000000000000000000000000000000000000000000\n",
		"kernel 0000000000000000000000000000000000000000000000000000000000000000 extra\n",
		"", // missing entries
	}
	for _, c := range cases {
		if _, err := ParseHashFile(strings.NewReader(c)); err == nil {
			t.Fatalf("accepted %q", c)
		}
	}
}

func TestParseHashFileAllowsComments(t *testing.T) {
	h := HashComponents([]byte("k"), []byte("i"), "c")
	var buf bytes.Buffer
	buf.WriteString("# generated out of band\n\n")
	if err := WriteHashFile(&buf, h); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseHashFile(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestHashPageRoundTrip(t *testing.T) {
	h := HashComponents([]byte("kernel bytes"), []byte("initrd bytes"), "cmdline")
	page := h.HashPage()
	if len(page) != 4096 {
		t.Fatalf("hash page %d bytes", len(page))
	}
	got, err := ParseHashPage(page)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatal("hash page round trip mismatch")
	}
}

func TestParseHashPageRejectsJunk(t *testing.T) {
	if _, err := ParseHashPage(make([]byte, 4096)); err == nil {
		t.Fatal("zero page accepted as hash page")
	}
	if _, err := ParseHashPage([]byte("short")); err == nil {
		t.Fatal("short page accepted")
	}
}

func TestPlanRegions(t *testing.T) {
	regions, err := Plan(sampleConfig())
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, r := range regions {
		names[r.Name] = true
	}
	for _, want := range []string{"verifier", "hashes", "boot_params", "cmdline", "mptable", "vmsa"} {
		if !names[want] {
			t.Errorf("plan missing region %q", want)
		}
	}
	if names["pagetables"] {
		t.Error("default plan must NOT pre-encrypt page tables (Fig. 7: verifier generates them)")
	}
}

func TestPlanAblationPreEncryptsPageTables(t *testing.T) {
	cfg := sampleConfig()
	cfg.PreEncryptPageTables = true
	regions, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range regions {
		if r.Name == "pagetables" {
			found = true
		}
	}
	if !found {
		t.Fatal("ablation flag did not add page tables to the plan")
	}
}

func TestPlanSizeNearPaperRootOfTrust(t *testing.T) {
	// SEVeriFast's root of trust: ~13 KiB verifier + hash page + zero page
	// + cmdline + mptable + VMSA — a couple dozen KiB, the basis of its
	// ~8 ms pre-encryption (vs. >256 ms for 1 MiB OVMF).
	regions, err := Plan(sampleConfig())
	if err != nil {
		t.Fatal(err)
	}
	total := PreEncryptedBytes(regions)
	if total < 13*1024 || total > 64*1024 {
		t.Fatalf("pre-encrypted bytes = %d, want tens of KiB", total)
	}
}

func TestPlanNoVMSAForBaseSEV(t *testing.T) {
	cfg := sampleConfig()
	cfg.Level = sev.SEV
	cfg.Policy = sev.Policy{NoDebug: true}
	regions, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regions {
		if r.Name == "vmsa" {
			t.Fatal("base SEV must not measure a VMSA")
		}
	}
}

func TestPlanValidation(t *testing.T) {
	cfg := sampleConfig()
	cfg.Verifier = nil
	if _, err := Plan(cfg); err == nil {
		t.Fatal("empty verifier accepted")
	}
	cfg = sampleConfig()
	cfg.VCPUs = 0
	if _, err := Plan(cfg); err == nil {
		t.Fatal("zero vCPUs accepted")
	}
	cfg = sampleConfig()
	cfg.Cmdline = strings.Repeat("x", 5000)
	if _, err := Plan(cfg); err == nil {
		t.Fatal("oversized cmdline accepted")
	}
}

func TestExpectedDigestDeterministic(t *testing.T) {
	a, err := ExpectedDigest(sampleConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExpectedDigest(sampleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("expected digest not deterministic")
	}
}

func TestExpectedDigestSensitivity(t *testing.T) {
	base, _ := ExpectedDigest(sampleConfig())

	mutate := func(f func(*Config)) [32]byte {
		cfg := sampleConfig()
		f(&cfg)
		d, err := ExpectedDigest(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if mutate(func(c *Config) { c.Verifier = kernelgen.GenBinary(2, 13*1024) }) == base {
		t.Fatal("digest ignores verifier bytes")
	}
	if mutate(func(c *Config) { c.Hashes.Kernel[0] ^= 1 }) == base {
		t.Fatal("digest ignores kernel hash")
	}
	if mutate(func(c *Config) { c.Cmdline = "console=ttyS0 quiet" }) == base {
		t.Fatal("digest ignores cmdline")
	}
	if mutate(func(c *Config) { c.VCPUs = 2 }) == base {
		t.Fatal("digest ignores vCPU count (mptable)")
	}
	if mutate(func(c *Config) { c.Policy.NoDebug = false }) == base {
		t.Fatal("digest ignores policy")
	}
}

func TestVMSADeterministicAndEntryDependent(t *testing.T) {
	a := VMSAPage(GPAVerifier)
	b := VMSAPage(GPAVerifier)
	if !bytes.Equal(a, b) {
		t.Fatal("VMSA page not deterministic")
	}
	if bytes.Equal(a, VMSAPage(0x200000)) {
		t.Fatal("VMSA ignores entry point")
	}
	if len(a) != 4096 {
		t.Fatalf("VMSA page %d bytes", len(a))
	}
}

func TestLayoutNoOverlaps(t *testing.T) {
	regions, err := Plan(sampleConfig())
	if err != nil {
		t.Fatal(err)
	}
	type span struct {
		name   string
		lo, hi uint64
	}
	var spans []span
	for _, r := range regions {
		spans = append(spans, span{r.Name, r.GPA, r.GPA + uint64(len(r.Data))})
	}
	// Also the kernel load region for the biggest kernel, and the staging
	// areas, within a 256 MiB guest.
	spans = append(spans,
		span{"kernel", GPAKernelLoad, GPAKernelLoad + 61<<20}, // largest vmlinux
		span{"stageA", GPAStageA, GPAStageA + 61<<20},         // largest staged image
		span{"stageB", GPAStageB, GPAStageB + 17<<20},
		span{"initrd", GPAInitrd, GPAInitrd + 16<<20 + 1<<16},
		span{"bztarget", GPABzTarget, GPABzTarget + 15<<20},
		span{"scratch", GPAScratch, GPAScratch + 64<<10},
	)
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Errorf("layout overlap: %s [%#x,%#x) vs %s [%#x,%#x)", a.name, a.lo, a.hi, b.name, b.lo, b.hi)
			}
		}
	}
}
