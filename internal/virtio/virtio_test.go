package virtio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"github.com/severifast/severifast/internal/guestmem"
	"github.com/severifast/severifast/internal/rmp"
)

const (
	ringGPA = 0x100000
	bufGPA  = 0x180000
)

func blkImage() []byte {
	img := make([]byte, 64*512)
	for i := range img {
		img[i] = byte(i / 512) // sector number in every byte
	}
	return img
}

func probeBlk(t *testing.T, mem *guestmem.Memory, encrypted bool) (*Device, *Driver) {
	t.Helper()
	dev := NewDevice(IDBlk, FeatBlkFlush, &BlkBackend{Image: blkImage()})
	dr, err := Probe(dev, mem, ringGPA, bufGPA, FeatBlkFlush, encrypted)
	if err != nil {
		t.Fatal(err)
	}
	return dev, dr
}

func readSector(t *testing.T, dr *Driver, sector uint64, privateDst uint64) []byte {
	t.Helper()
	req := make([]byte, 9)
	req[0] = 'R'
	binary.LittleEndian.PutUint64(req[1:], sector)
	resp, err := dr.Request(req, 512, privateDst)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestProbeAndRead(t *testing.T) {
	mem := guestmem.New(4 << 20)
	dev, dr := probeBlk(t, mem, false)
	if dev.ReadReg(RegStatus)&StatusDriverOK == 0 {
		t.Fatal("device not driver-OK after probe")
	}
	got := readSector(t, dr, 7, 0)
	if len(got) != 512 || got[0] != 7 || got[511] != 7 {
		t.Fatalf("sector 7 read wrong: % x...", got[:4])
	}
	if dev.Requests != 1 {
		t.Fatalf("device served %d requests", dev.Requests)
	}
}

func TestMultipleRequestsAdvanceRings(t *testing.T) {
	mem := guestmem.New(4 << 20)
	_, dr := probeBlk(t, mem, false)
	for s := uint64(0); s < 10; s++ {
		got := readSector(t, dr, s, 0)
		if got[0] != byte(s) {
			t.Fatalf("sector %d returned %d", s, got[0])
		}
	}
}

func TestDriverRejectsMissingFeatures(t *testing.T) {
	mem := guestmem.New(4 << 20)
	dev := NewDevice(IDBlk, 0, &BlkBackend{Image: blkImage()}) // no flush
	if _, err := Probe(dev, mem, ringGPA, bufGPA, FeatBlkFlush, false); !errors.Is(err, ErrProbe) {
		t.Fatalf("probe with missing feature: %v", err)
	}
}

func TestDeviceRejectsBogusDriverFeatures(t *testing.T) {
	mem := guestmem.New(4 << 20)
	dev := NewDevice(IDBlk, 0, &BlkBackend{Image: blkImage()})
	// Drive the registers by hand, claiming a feature the device lacks.
	if err := dev.WriteReg(mem, RegDriverFeatSel, 0); err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteReg(mem, RegDriverFeat, uint32(FeatBlkFlush)); err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteReg(mem, RegStatus, StatusFeaturesOK); err == nil {
		t.Fatal("device accepted features it never offered")
	}
	if dev.ReadReg(RegStatus)&StatusFailed == 0 {
		t.Fatal("device did not fail the probe")
	}
}

func TestNotifyBeforeReadyRejected(t *testing.T) {
	mem := guestmem.New(4 << 20)
	dev := NewDevice(IDBlk, 0, &BlkBackend{Image: blkImage()})
	if err := dev.WriteReg(mem, RegQueueNotify, 0); !errors.Is(err, ErrProbe) {
		t.Fatalf("notify before ready: %v", err)
	}
}

func TestQueueReadyRequiresRingAddresses(t *testing.T) {
	mem := guestmem.New(4 << 20)
	dev := NewDevice(IDBlk, 0, &BlkBackend{Image: blkImage()})
	if err := dev.WriteReg(mem, RegStatus, StatusAcknowledge|StatusDriver|StatusFeaturesOK); err != nil {
		t.Fatal(err)
	}
	if err := dev.WriteReg(mem, RegQueueReady, 1); !errors.Is(err, ErrProbe) {
		t.Fatalf("queue readied without rings: %v", err)
	}
}

func TestSEVGuestRingsInSharedMemory(t *testing.T) {
	// The core confidential-I/O constraint: the device reads rings as the
	// host. Shared rings work; the payload is bounce-buffered into private
	// memory afterwards.
	mem := guestmem.New(4 << 20)
	mem.SetKey(bytes.Repeat([]byte{9}, 16), 3)
	tb := rmp.New()
	mem.AttachRMP(tb, 3)
	if err := tb.PvalidateRangeSkipValidated(0, 4<<20, 2<<20, 3); err != nil {
		t.Fatal(err)
	}
	_, dr := probeBlk(t, mem, true)
	const privateDst = 0x300000
	got := readSector(t, dr, 5, privateDst)
	if got[0] != 5 {
		t.Fatalf("sector 5 read %d", got[0])
	}
	// The bounced copy is in private memory: guest sees it, host does not.
	private, err := mem.GuestRead(privateDst, 512, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(private, got) {
		t.Fatal("bounce copy differs from response")
	}
	hostView, err := mem.HostRead(privateDst, 512)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(hostView, got) {
		t.Fatal("private payload visible to host")
	}
}

func TestPrivateRingsAreUnusable(t *testing.T) {
	// If a confidential guest (incorrectly) put its rings in private
	// memory, the device would read ciphertext and the queue would fail —
	// demonstrating *why* swiotlb exists.
	mem := guestmem.New(4 << 20)
	mem.SetKey(bytes.Repeat([]byte{7}, 16), 4)
	tb := rmp.New()
	mem.AttachRMP(tb, 4)
	if err := tb.PvalidateRangeSkipValidated(0, 4<<20, 2<<20, 4); err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(IDBlk, 0, &BlkBackend{Image: blkImage()})
	dr, err := Probe(dev, mem, ringGPA, bufGPA, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: the guest converts the avail-ring page back to private
	// (page-state-change + pvalidate) and rewrites it through a C-bit
	// mapping. The device's next read sees ciphertext.
	ringPage := dr.availGPA() &^ 4095
	if err := tb.PvalidateRangeSkipValidated(ringPage, 4096, 4096, 4); err != nil {
		t.Fatal(err)
	}
	raw, err := mem.GuestRead(dr.availGPA(), 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.GuestWrite(dr.availGPA(), raw, true); err != nil {
		t.Fatal(err)
	}
	req := make([]byte, 9)
	req[0] = 'R'
	if _, err := dr.Request(req, 512, 0); err == nil {
		t.Fatal("device consumed a private ring")
	}
}

func TestNetBackendEcho(t *testing.T) {
	mem := guestmem.New(4 << 20)
	dev := NewDevice(IDNet, FeatNetMac, NetBackend{})
	dr, err := Probe(dev, mem, ringGPA, bufGPA, FeatNetMac, false)
	if err != nil {
		t.Fatal(err)
	}
	frame := []byte("ethernet frame: attestation SYN")
	resp, err := dr.Request(frame, len(frame), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, frame) {
		t.Fatal("loopback frame differs")
	}
}

func TestBlkBackendBounds(t *testing.T) {
	b := &BlkBackend{Image: make([]byte, 2*512)}
	req := make([]byte, 9)
	req[0] = 'R'
	binary.LittleEndian.PutUint64(req[1:], 99)
	if _, err := b.Handle(req); err == nil {
		t.Fatal("out-of-range sector served")
	}
	if _, err := b.Handle([]byte("x")); err == nil {
		t.Fatal("short request served")
	}
}
