package virtio

import (
	"encoding/binary"
	"fmt"

	"github.com/severifast/severifast/internal/guestmem"
)

// Driver is the guest-side half: it performs the virtio probe sequence
// against a device and lays the virtqueue out in guest memory.
//
// For an SEV guest the rings and DMA buffers live in *shared* pages — the
// device (host) reads them raw, so private pages would hand it ciphertext.
// Payloads crossing into private memory are bounce-buffered, as Linux's
// swiotlb does for confidential guests.
type Driver struct {
	dev *Device
	mem *guestmem.Memory

	// ringGPA is the base of the shared ring area; bufGPA of the shared
	// bounce buffers.
	ringGPA  uint64
	bufGPA   uint64
	queueNum uint32

	nextDesc  uint16
	availIdx  uint16
	lastUsed  uint16
	Encrypted bool // guest is SEV: payloads bounce through shared memory
}

// ringLayout: descriptors, then avail ring, then used ring, each aligned.
func (dr *Driver) descGPA() uint64  { return dr.ringGPA }
func (dr *Driver) availGPA() uint64 { return dr.ringGPA + uint64(dr.queueNum)*descSize }
func (dr *Driver) usedGPA() uint64 {
	return (dr.availGPA() + 4 + 2*uint64(dr.queueNum) + 3) &^ 3
}

// Probe runs the virtio-mmio initialization sequence (driver status
// handshake, feature negotiation, queue setup) with real register traffic
// and real ring memory. wantFeatures are the driver-requested bits; the
// probe fails if the device does not offer them.
func Probe(dev *Device, mem *guestmem.Memory, ringGPA, bufGPA uint64, wantFeatures uint64, encrypted bool) (*Driver, error) {
	if dev.ReadReg(RegMagic) != MagicValue {
		return nil, fmt.Errorf("%w: bad magic", ErrProbe)
	}
	if dev.ReadReg(RegVersion) != 2 {
		return nil, fmt.Errorf("%w: unsupported version", ErrProbe)
	}
	w := func(off, val uint32) error { return dev.WriteReg(mem, off, val) }

	if err := w(RegStatus, StatusAcknowledge); err != nil {
		return nil, err
	}
	if err := w(RegStatus, StatusAcknowledge|StatusDriver); err != nil {
		return nil, err
	}

	// Feature negotiation: read device features, offer ours back.
	if err := w(RegDeviceFeatSel, 0); err != nil {
		return nil, err
	}
	devFeat := uint64(dev.ReadReg(RegDeviceFeat))
	if err := w(RegDeviceFeatSel, 1); err != nil {
		return nil, err
	}
	devFeat |= uint64(dev.ReadReg(RegDeviceFeat)) << 32
	want := wantFeatures | FeatVersion1
	if want&^devFeat != 0 {
		return nil, fmt.Errorf("%w: device lacks features %#x", ErrProbe, want&^devFeat)
	}
	if err := w(RegDriverFeatSel, 0); err != nil {
		return nil, err
	}
	if err := w(RegDriverFeat, uint32(want)); err != nil {
		return nil, err
	}
	if err := w(RegDriverFeatSel, 1); err != nil {
		return nil, err
	}
	if err := w(RegDriverFeat, uint32(want>>32)); err != nil {
		return nil, err
	}
	if err := w(RegStatus, StatusAcknowledge|StatusDriver|StatusFeaturesOK); err != nil {
		return nil, err
	}
	if dev.ReadReg(RegStatus)&StatusFeaturesOK == 0 {
		return nil, fmt.Errorf("%w: device rejected features", ErrProbe)
	}

	dr := &Driver{
		dev:       dev,
		mem:       mem,
		ringGPA:   ringGPA,
		bufGPA:    bufGPA,
		queueNum:  64,
		Encrypted: encrypted,
	}
	// An encrypted guest converts its DMA region to shared state first
	// (page-state-change + swiotlb setup): the device must be able to read
	// the rings and write completions.
	if encrypted {
		if err := mem.ShareRange(ringGPA, 64<<10); err != nil {
			return nil, err
		}
		if err := mem.ShareRange(bufGPA, 256<<10); err != nil {
			return nil, err
		}
	}
	// Zero the ring area in shared memory (the guest writes rings without
	// the C-bit so the device can read them).
	ringBytes := int(dr.usedGPA()+4+8*uint64(dr.queueNum)) - int(dr.ringGPA)
	if err := mem.GuestWrite(dr.ringGPA, make([]byte, ringBytes), false); err != nil {
		return nil, err
	}

	// Queue setup.
	if err := w(RegQueueSel, 0); err != nil {
		return nil, err
	}
	if max := dev.ReadReg(RegQueueNumMax); max < dr.queueNum {
		dr.queueNum = max
	}
	if err := w(RegQueueNum, dr.queueNum); err != nil {
		return nil, err
	}
	if err := w(RegQueueDescLow, uint32(dr.descGPA())); err != nil {
		return nil, err
	}
	if err := w(RegQueueDescHigh, uint32(dr.descGPA()>>32)); err != nil {
		return nil, err
	}
	if err := w(RegQueueAvailLow, uint32(dr.availGPA())); err != nil {
		return nil, err
	}
	if err := w(RegQueueAvailHi, uint32(dr.availGPA()>>32)); err != nil {
		return nil, err
	}
	if err := w(RegQueueUsedLow, uint32(dr.usedGPA())); err != nil {
		return nil, err
	}
	if err := w(RegQueueUsedHigh, uint32(dr.usedGPA()>>32)); err != nil {
		return nil, err
	}
	if err := w(RegQueueReady, 1); err != nil {
		return nil, err
	}
	if err := w(RegStatus, StatusAcknowledge|StatusDriver|StatusFeaturesOK|StatusDriverOK); err != nil {
		return nil, err
	}
	return dr, nil
}

// Request performs one I/O: request bytes out, respLen bytes back. The
// payload travels through shared bounce buffers; for an encrypted guest
// the response is then copied into private memory (the swiotlb copy).
func (dr *Driver) Request(request []byte, respLen int, privateDst uint64) ([]byte, error) {
	// Stage the request in the shared bounce area.
	reqGPA := dr.bufGPA
	respGPA := dr.bufGPA + uint64(len(request)+511)&^511
	if err := dr.mem.GuestWrite(reqGPA, request, false); err != nil {
		return nil, err
	}

	// Two descriptors: driver-readable request, device-writable response.
	d0 := dr.allocDesc()
	d1 := dr.allocDesc()
	if err := dr.writeDesc(d0, reqGPA, uint32(len(request)), descFlagNext, d1); err != nil {
		return nil, err
	}
	if err := dr.writeDesc(d1, respGPA, uint32(respLen), descFlagWrite, 0); err != nil {
		return nil, err
	}

	// Publish in the available ring and notify.
	var slot [2]byte
	binary.LittleEndian.PutUint16(slot[:], d0)
	if err := dr.mem.GuestWrite(dr.availGPA()+4+uint64(dr.availIdx%uint16(dr.queueNum))*2, slot[:], false); err != nil {
		return nil, err
	}
	dr.availIdx++
	var idx [2]byte
	binary.LittleEndian.PutUint16(idx[:], dr.availIdx)
	if err := dr.mem.GuestWrite(dr.availGPA()+2, idx[:], false); err != nil {
		return nil, err
	}
	if err := dr.dev.WriteReg(dr.mem, RegQueueNotify, 0); err != nil {
		return nil, err
	}

	// Reap the used entry.
	usedRaw, err := dr.mem.GuestRead(dr.usedGPA(), 4+8*int(dr.queueNum), false)
	if err != nil {
		return nil, err
	}
	usedIdx := binary.LittleEndian.Uint16(usedRaw[2:])
	if usedIdx == dr.lastUsed {
		return nil, fmt.Errorf("%w: device completed nothing", ErrRing)
	}
	elem := usedRaw[4+8*int(dr.lastUsed%uint16(dr.queueNum)):]
	if binary.LittleEndian.Uint32(elem[0:]) != uint32(d0) {
		return nil, fmt.Errorf("%w: used id mismatch", ErrRing)
	}
	written := int(binary.LittleEndian.Uint32(elem[4:]))
	dr.lastUsed = usedIdx
	if err := dr.dev.WriteReg(dr.mem, RegIntAck, 1); err != nil {
		return nil, err
	}

	resp, err := dr.mem.GuestRead(respGPA, written, false)
	if err != nil {
		return nil, err
	}
	// swiotlb: an encrypted guest copies the response out of the shared
	// bounce buffer into private memory before using it.
	if dr.Encrypted && privateDst != 0 {
		if err := dr.mem.GuestWrite(privateDst, resp, true); err != nil {
			return nil, err
		}
	}
	return resp, nil
}

func (dr *Driver) allocDesc() uint16 {
	d := dr.nextDesc
	dr.nextDesc = (dr.nextDesc + 1) % uint16(dr.queueNum)
	return d
}

func (dr *Driver) writeDesc(idx uint16, gpa uint64, length uint32, flags, next uint16) error {
	var raw [descSize]byte
	binary.LittleEndian.PutUint64(raw[0:], gpa)
	binary.LittleEndian.PutUint32(raw[8:], length)
	binary.LittleEndian.PutUint16(raw[12:], flags)
	binary.LittleEndian.PutUint16(raw[14:], next)
	return dr.mem.GuestWrite(dr.descGPA()+uint64(idx)*descSize, raw[:], false)
}

// BlkBackend is a trivial block device: a byte-addressable image served in
// 512-byte sectors. Requests are "R<8-byte LE sector>".
type BlkBackend struct {
	Image []byte
}

// Handle serves one block request.
func (b *BlkBackend) Handle(in []byte) ([]byte, error) {
	if len(in) < 9 || in[0] != 'R' {
		return nil, fmt.Errorf("virtio-blk: bad request")
	}
	sector := binary.LittleEndian.Uint64(in[1:9])
	off := sector * 512
	if off+512 > uint64(len(b.Image)) {
		return nil, fmt.Errorf("virtio-blk: sector %d out of range", sector)
	}
	out := make([]byte, 512)
	copy(out, b.Image[off:off+512])
	return out, nil
}

// NetBackend echoes frames back (loopback), enough for an attestation
// agent's TCP handshake to traverse the queue machinery.
type NetBackend struct{}

// Handle echoes the frame.
func (NetBackend) Handle(in []byte) ([]byte, error) {
	out := make([]byte, len(in))
	copy(out, in)
	return out, nil
}
