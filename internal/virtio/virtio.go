// Package virtio implements the virtio-mmio transport and virtqueues the
// guest kernels depend on (the paper's kernels are built with
// CONFIG_VIRTIO_BLK and CONFIG_VIRTIO_NET "needed to boot in Firecracker",
// §6.1). The data structures are real: the driver lays out descriptor,
// available, and used rings in guest memory; the device walks them there.
//
// The SEV-relevant behaviour is modeled faithfully: a confidential guest
// cannot give the device access to private pages, so its rings and DMA
// buffers must live in *shared* memory and payloads are bounce-buffered
// (Linux's swiotlb) — one of the reasons §6.2 sees guest I/O cost more
// under SNP.
package virtio

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/severifast/severifast/internal/guestmem"
)

// MMIO register offsets (virtio-mmio v2).
const (
	RegMagic         = 0x00 // "virt"
	RegVersion       = 0x04
	RegDeviceID      = 0x08
	RegVendorID      = 0x0C
	RegDeviceFeat    = 0x10
	RegDeviceFeatSel = 0x14
	RegDriverFeat    = 0x20
	RegDriverFeatSel = 0x24
	RegQueueSel      = 0x30
	RegQueueNumMax   = 0x34
	RegQueueNum      = 0x38
	RegQueueReady    = 0x44
	RegQueueNotify   = 0x50
	RegIntStatus     = 0x60
	RegIntAck        = 0x64
	RegStatus        = 0x70
	RegQueueDescLow  = 0x80
	RegQueueDescHigh = 0x84
	RegQueueAvailLow = 0x90
	RegQueueAvailHi  = 0x94
	RegQueueUsedLow  = 0xA0
	RegQueueUsedHigh = 0xA4
)

// MagicValue is "virt" little-endian.
const MagicValue = 0x74726976

// Device IDs.
const (
	IDNet uint32 = 1
	IDBlk uint32 = 2
)

// Status bits, set by the driver in order during probe.
const (
	StatusAcknowledge = 1
	StatusDriver      = 2
	StatusDriverOK    = 4
	StatusFeaturesOK  = 8
	StatusFailed      = 128
)

// Feature bits (a representative subset).
const (
	FeatVersion1     = 1 << 32
	FeatBlkFlush     = 1 << 9
	FeatNetMac       = 1 << 5
	FeatRingIndirect = 1 << 28
)

// descriptor flags.
const (
	descFlagNext  = 1
	descFlagWrite = 2
)

const descSize = 16

// Errors.
var (
	ErrProbe = errors.New("virtio: probe protocol violation")
	ErrRing  = errors.New("virtio: malformed virtqueue")
)

// Backend services queue notifications: it receives the chained buffers
// (read parts concatenated) and returns bytes for the device-writable
// parts.
type Backend interface {
	// Handle processes one request; in is the driver-readable payload,
	// and the returned bytes fill the device-writable descriptors.
	Handle(in []byte) ([]byte, error)
}

// Device is one virtio-mmio device instance.
type Device struct {
	ID       uint32
	Features uint64
	Backend  Backend

	status     uint32
	featSel    uint32
	driverFeat uint64
	drvFeatSel uint32

	queueSel   uint32
	queueNum   uint32
	queueReady bool
	descGPA    uint64
	availGPA   uint64
	usedGPA    uint64

	intStatus uint32
	lastAvail uint16

	// Requests counts completed queue notifications.
	Requests uint64
}

// NewDevice creates a device exposing the given feature set.
func NewDevice(id uint32, features uint64, backend Backend) *Device {
	return &Device{ID: id, Features: features | FeatVersion1, Backend: backend}
}

// ReadReg models a driver MMIO read.
func (d *Device) ReadReg(off uint32) uint32 {
	switch off {
	case RegMagic:
		return MagicValue
	case RegVersion:
		return 2
	case RegDeviceID:
		return d.ID
	case RegVendorID:
		return 0x53455646 // "SEVF"
	case RegDeviceFeat:
		if d.featSel == 0 {
			return uint32(d.Features)
		}
		return uint32(d.Features >> 32)
	case RegQueueNumMax:
		return 256
	case RegIntStatus:
		return d.intStatus
	case RegStatus:
		return d.status
	case RegQueueReady:
		if d.queueReady {
			return 1
		}
		return 0
	}
	return 0
}

// WriteReg models a driver MMIO write. Queue notifications dispatch to the
// backend through the rings in mem.
func (d *Device) WriteReg(mem *guestmem.Memory, off, val uint32) error {
	switch off {
	case RegDeviceFeatSel:
		d.featSel = val
	case RegDriverFeatSel:
		d.drvFeatSel = val
	case RegDriverFeat:
		if d.drvFeatSel == 0 {
			d.driverFeat = d.driverFeat&^0xFFFFFFFF | uint64(val)
		} else {
			d.driverFeat = d.driverFeat&0xFFFFFFFF | uint64(val)<<32
		}
	case RegStatus:
		if val&StatusFeaturesOK != 0 && d.driverFeat&^d.Features != 0 {
			// Driver accepted features the device never offered.
			d.status = StatusFailed
			return fmt.Errorf("%w: driver features %#x not subset of device %#x", ErrProbe, d.driverFeat, d.Features)
		}
		d.status = val
	case RegQueueSel:
		d.queueSel = val
	case RegQueueNum:
		d.queueNum = val
	case RegQueueDescLow:
		d.descGPA = d.descGPA&^0xFFFFFFFF | uint64(val)
	case RegQueueDescHigh:
		d.descGPA = d.descGPA&0xFFFFFFFF | uint64(val)<<32
	case RegQueueAvailLow:
		d.availGPA = d.availGPA&^0xFFFFFFFF | uint64(val)
	case RegQueueAvailHi:
		d.availGPA = d.availGPA&0xFFFFFFFF | uint64(val)<<32
	case RegQueueUsedLow:
		d.usedGPA = d.usedGPA&^0xFFFFFFFF | uint64(val)
	case RegQueueUsedHigh:
		d.usedGPA = d.usedGPA&0xFFFFFFFF | uint64(val)<<32
	case RegQueueReady:
		if val == 1 {
			if d.status&StatusFeaturesOK == 0 {
				return fmt.Errorf("%w: queue readied before FEATURES_OK", ErrProbe)
			}
			if d.descGPA == 0 || d.availGPA == 0 || d.usedGPA == 0 {
				return fmt.Errorf("%w: queue readied without ring addresses", ErrProbe)
			}
			d.queueReady = true
		} else {
			d.queueReady = false
		}
	case RegQueueNotify:
		return d.serviceQueue(mem)
	case RegIntAck:
		d.intStatus &^= val
	}
	return nil
}

// serviceQueue walks newly-available descriptor chains — reading the real
// ring bytes from guest memory — and completes them into the used ring.
func (d *Device) serviceQueue(mem *guestmem.Memory) error {
	if !d.queueReady {
		return fmt.Errorf("%w: notify before queue ready", ErrProbe)
	}
	// The device reads rings as the host: private rings are ciphertext
	// and unusable, which is exactly the SEV constraint.
	availRaw, err := mem.HostRead(d.availGPA, 4+2*int(d.queueNum))
	if err != nil {
		return err
	}
	availIdx := binary.LittleEndian.Uint16(availRaw[2:])
	for d.lastAvail != availIdx {
		slot := int(d.lastAvail) % int(d.queueNum)
		head := binary.LittleEndian.Uint16(availRaw[4+2*slot:])
		if err := d.completeChain(mem, head); err != nil {
			return err
		}
		d.lastAvail++
		d.Requests++
	}
	d.intStatus |= 1
	return nil
}

// completeChain processes one descriptor chain and writes the used entry.
func (d *Device) completeChain(mem *guestmem.Memory, head uint16) error {
	var in []byte
	type writable struct {
		gpa uint64
		n   int
	}
	var outs []writable
	idx := head
	for hops := 0; ; hops++ {
		if hops > int(d.queueNum) {
			return fmt.Errorf("%w: descriptor loop at %d", ErrRing, head)
		}
		raw, err := mem.HostRead(d.descGPA+uint64(idx)*descSize, descSize)
		if err != nil {
			return err
		}
		addr := binary.LittleEndian.Uint64(raw[0:])
		length := binary.LittleEndian.Uint32(raw[8:])
		flags := binary.LittleEndian.Uint16(raw[12:])
		next := binary.LittleEndian.Uint16(raw[14:])
		if flags&descFlagWrite != 0 {
			outs = append(outs, writable{addr, int(length)})
		} else {
			data, err := mem.HostRead(addr, int(length))
			if err != nil {
				return err
			}
			in = append(in, data...)
		}
		if flags&descFlagNext == 0 {
			break
		}
		idx = next
	}
	resp, err := d.Backend.Handle(in)
	if err != nil {
		return err
	}
	written := 0
	for _, o := range outs {
		n := o.n
		if n > len(resp)-written {
			n = len(resp) - written
		}
		if n > 0 {
			if err := mem.HostWrite(o.gpa, resp[written:written+n]); err != nil {
				return err
			}
			written += n
		}
	}
	// Used ring entry: id + total written length.
	usedRaw, err := mem.HostRead(d.usedGPA, 4)
	if err != nil {
		return err
	}
	usedIdx := binary.LittleEndian.Uint16(usedRaw[2:])
	var elem [8]byte
	binary.LittleEndian.PutUint32(elem[0:], uint32(head))
	binary.LittleEndian.PutUint32(elem[4:], uint32(written))
	if err := mem.HostWrite(d.usedGPA+4+uint64(usedIdx%uint16(d.queueNum))*8, elem[:]); err != nil {
		return err
	}
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], usedIdx+1)
	return mem.HostWrite(d.usedGPA+2, hdr[:])
}
