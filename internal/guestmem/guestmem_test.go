package guestmem

import (
	"bytes"
	"errors"
	"testing"

	"github.com/severifast/severifast/internal/rmp"
)

func key(b byte) []byte {
	k := make([]byte, 16)
	for i := range k {
		k[i] = b
	}
	return k
}

func TestSharedWriteRead(t *testing.T) {
	m := New(1 << 20)
	data := []byte("plain text boot component")
	if err := m.HostWrite(0x1000, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.HostRead(0x1000, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("host read of shared page differs")
	}
	gr, err := m.GuestRead(0x1000, len(data), false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gr, data) {
		t.Fatal("guest non-C-bit read of shared page differs")
	}
}

func TestZeroPagesReadAsZero(t *testing.T) {
	m := New(1 << 20)
	got, err := m.HostRead(0x5000, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unbacked page not zero")
		}
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	m := New(1 << 20)
	if err := m.HostWrite(1<<20-1, []byte{1, 2}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if _, err := m.HostRead(1<<21, 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
}

func TestCBitWriteRequiresKey(t *testing.T) {
	m := New(1 << 20)
	if err := m.GuestWrite(0x1000, []byte("secret"), true); !errors.Is(err, ErrNoKey) {
		t.Fatalf("err = %v, want ErrNoKey", err)
	}
}

func TestPrivatePageCiphertextFromHost(t *testing.T) {
	m := New(1 << 20)
	m.SetKey(key(1), 1)
	secret := []byte("attestation private key material goes here")
	if err := m.GuestWrite(0x2000, secret, true); err != nil {
		t.Fatal(err)
	}
	// Guest C-bit read sees plain text.
	pt, err := m.GuestRead(0x2000, len(secret), true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, secret) {
		t.Fatal("guest cannot read back its own private data")
	}
	// Host read sees ciphertext.
	ct, err := m.HostRead(0x2000, len(secret))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct, secret) {
		t.Fatal("host read leaked plain text of a private page")
	}
	// Guest read *without* C-bit also sees ciphertext.
	nc, err := m.GuestRead(0x2000, len(secret), false)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(nc, secret) {
		t.Fatal("non-C-bit guest read leaked plain text")
	}
}

func TestSamePlaintextDifferentAddressDifferentCiphertext(t *testing.T) {
	// Paper §6.2/§7.1: identical plain text at different physical locations
	// has different ciphertext — this is what breaks dedup.
	m := New(1 << 20)
	m.SetKey(key(2), 1)
	data := bytes.Repeat([]byte("dedup-me "), 100)
	if err := m.GuestWrite(0x3000, data, true); err != nil {
		t.Fatal(err)
	}
	if err := m.GuestWrite(0x8000, data, true); err != nil {
		t.Fatal(err)
	}
	a, _ := m.HostRead(0x3000, len(data))
	b, _ := m.HostRead(0x8000, len(data))
	if bytes.Equal(a, b) {
		t.Fatal("identical plain text at different addresses produced identical ciphertext")
	}
}

func TestDifferentGuestsDifferentCiphertext(t *testing.T) {
	data := bytes.Repeat([]byte("shared kernel page "), 50)
	mk := func(k byte, asid uint32) []byte {
		m := New(1 << 20)
		m.SetKey(key(k), asid)
		tb := rmp.New()
		m.AttachRMP(tb, asid)
		tb.AssignValidated(0x3000, asid)
		if err := m.GuestWrite(0x3000, data, true); err != nil {
			t.Fatal(err)
		}
		ct, _ := m.HostRead(0x3000, len(data))
		return ct
	}
	if bytes.Equal(mk(1, 1), mk(2, 2)) {
		t.Fatal("different guests produced identical ciphertext for the same page")
	}
}

func TestSNPBlocksHostWriteToAssignedPage(t *testing.T) {
	m := New(1 << 20)
	m.SetKey(key(3), 1)
	tb := rmp.New()
	m.AttachRMP(tb, 5)
	tb.AssignValidated(0x4000, 5)
	if err := m.GuestWrite(0x4000, []byte("guest data"), true); err != nil {
		t.Fatal(err)
	}
	if err := m.HostWrite(0x4000, []byte("evil")); !errors.Is(err, rmp.ErrHostWrite) {
		t.Fatalf("host write to assigned page: err = %v, want ErrHostWrite", err)
	}
	// The guest data is intact.
	pt, _ := m.GuestRead(0x4000, 10, true)
	if !bytes.Equal(pt, []byte("guest data")) {
		t.Fatal("guest data corrupted by blocked host write")
	}
}

func TestSNPUnvalidatedAccessIsVC(t *testing.T) {
	m := New(1 << 20)
	m.SetKey(key(4), 1)
	tb := rmp.New()
	m.AttachRMP(tb, 6)
	tb.Assign(0x5000, 6) // assigned but NOT validated
	if err := m.GuestWrite(0x5000, []byte("x"), true); !errors.Is(err, rmp.ErrVC) {
		t.Fatalf("err = %v, want ErrVC", err)
	}
	if _, err := m.GuestRead(0x5000, 1, true); !errors.Is(err, rmp.ErrVC) {
		t.Fatalf("err = %v, want ErrVC", err)
	}
}

func TestSNPRemapDetectedOnNextAccess(t *testing.T) {
	m := New(1 << 20)
	m.SetKey(key(5), 1)
	tb := rmp.New()
	m.AttachRMP(tb, 7)
	tb.AssignValidated(0x6000, 7)
	if err := m.GuestWrite(0x6000, []byte("data"), true); err != nil {
		t.Fatal(err)
	}
	tb.Remap(0x6000)
	if _, err := m.GuestRead(0x6000, 4, true); !errors.Is(err, rmp.ErrVC) {
		t.Fatalf("access after remap: err = %v, want ErrVC", err)
	}
}

func TestLaunchUpdateEncryptsAndReturnsPlaintext(t *testing.T) {
	m := New(1 << 20)
	m.SetKey(key(6), 1)
	component := bytes.Repeat([]byte("boot verifier code "), 700) // ~13 KiB
	if err := m.HostWrite(0x7000, component); err != nil {
		t.Fatal(err)
	}
	pt, err := m.LaunchUpdate(0x7000, len(component))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, component) {
		t.Fatal("LaunchUpdate returned wrong plain text for measurement")
	}
	// After pre-encryption the host sees ciphertext...
	ct, _ := m.HostRead(0x7000, len(component))
	if bytes.Equal(ct, component) {
		t.Fatal("pre-encrypted component still visible to host")
	}
	// ...and the guest can execute it through the C-bit mapping.
	g, err := m.GuestRead(0x7000, len(component), true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g, component) {
		t.Fatal("guest cannot read pre-encrypted component")
	}
}

func TestLaunchUpdateValidatesUnderSNP(t *testing.T) {
	m := New(1 << 20)
	m.SetKey(key(7), 1)
	tb := rmp.New()
	m.AttachRMP(tb, 8)
	if err := m.HostWrite(0x8000, []byte("root of trust")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.LaunchUpdate(0x8000, 13); err != nil {
		t.Fatal(err)
	}
	// Launch-updated pages are assigned+validated: guest access works
	// without pvalidate, host writes are blocked.
	if _, err := m.GuestRead(0x8000, 13, true); err != nil {
		t.Fatalf("guest access to launch-updated page: %v", err)
	}
	if err := m.HostWrite(0x8000, []byte("evil")); !errors.Is(err, rmp.ErrHostWrite) {
		t.Fatalf("host write after launch update: err = %v, want blocked", err)
	}
}

func TestGuestCopySharedToPrivate(t *testing.T) {
	m := New(4 << 20)
	m.SetKey(key(8), 1)
	// Simulate measured direct boot: host loads a component into shared
	// memory; guest copies it into C-bit memory.
	component := bytes.Repeat([]byte{0xCD}, 3*PageSize+123)
	if err := m.HostWrite(0x10000, component); err != nil {
		t.Fatal(err)
	}
	if err := m.GuestCopy(0x200000, 0x10000, len(component), true, false); err != nil {
		t.Fatal(err)
	}
	got, err := m.GuestRead(0x200000, len(component), true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, component) {
		t.Fatal("copied component differs")
	}
	// Host sees ciphertext at the destination.
	ct, _ := m.HostRead(0x200000, len(component))
	if bytes.Equal(ct, component) {
		t.Fatal("private copy visible to host")
	}
}

func TestGuestCopyAliasingIsCopyOnWrite(t *testing.T) {
	m := New(4 << 20)
	m.SetKey(key(9), 1)
	src := bytes.Repeat([]byte{7}, 2*PageSize)
	if err := m.HostWriteAliased(0x10000, src); err != nil {
		t.Fatal(err)
	}
	if err := m.GuestCopy(0x100000, 0x10000, len(src), true, false); err != nil {
		t.Fatal(err)
	}
	if m.Stats().AliasedPages == 0 {
		t.Fatal("aligned copy did not alias any pages")
	}
	// Mutating the destination must not corrupt the source.
	if err := m.GuestWrite(0x100000, []byte{42}, true); err != nil {
		t.Fatal(err)
	}
	orig, _ := m.HostRead(0x10000, 1)
	if orig[0] != 7 {
		t.Fatal("copy-on-write violated: source changed")
	}
	got, _ := m.GuestRead(0x100000, 1, true)
	if got[0] != 42 {
		t.Fatal("destination write lost")
	}
}

func TestHostWriteAliasedMatchesHostWrite(t *testing.T) {
	a, b := New(1<<20), New(1<<20)
	data := bytes.Repeat([]byte("kernel segment "), 1000)
	if err := a.HostWrite(0x1000, data); err != nil {
		t.Fatal(err)
	}
	if err := b.HostWriteAliased(0x1000, data); err != nil {
		t.Fatal(err)
	}
	ra, _ := a.HostRead(0x1000, len(data))
	rb, _ := b.HostRead(0x1000, len(data))
	if !bytes.Equal(ra, rb) {
		t.Fatal("aliased write produced different contents")
	}
}

func TestCBitReadOfSharedPageIsGarbage(t *testing.T) {
	m := New(1 << 20)
	m.SetKey(key(10), 1)
	data := []byte("host-provided plain text")
	if err := m.HostWrite(0x2000, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.GuestRead(0x2000, len(data), true)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, data) {
		t.Fatal("C-bit read of a shared page returned the plain text; must decrypt-garble")
	}
}

func TestSEVMetadataAccounting(t *testing.T) {
	m := New(256 << 20)
	if m.SEVMetadataBytes() != 0 {
		t.Fatal("fresh guest has SEV metadata")
	}
	m.SetKey(key(11), 1)
	m.AttachRMP(rmp.New(), 1)
	m.NotePinned(int(m.Size()))
	got := m.SEVMetadataBytes()
	// §6.3: ~16 KiB of extra per-guest memory.
	if got < 1024 || got > 64*1024 {
		t.Fatalf("SEV metadata %d bytes, want within a few KiB of the paper's ~16K", got)
	}
}

func TestStats(t *testing.T) {
	m := New(1 << 20)
	m.SetKey(key(12), 1)
	if err := m.HostWrite(0, make([]byte, 3*PageSize)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.LaunchUpdate(0, PageSize); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.ResidentPages != 3 {
		t.Fatalf("ResidentPages = %d, want 3", s.ResidentPages)
	}
	if s.PrivatePages != 1 {
		t.Fatalf("PrivatePages = %d, want 1", s.PrivatePages)
	}
}

func TestWriteSpanningPages(t *testing.T) {
	m := New(1 << 20)
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i)
	}
	if err := m.HostWrite(PageSize-100, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.HostRead(PageSize-100, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("page-spanning write corrupted")
	}
}

func TestGuestWriteAliasedSharesBacking(t *testing.T) {
	m := New(4 << 20)
	m.SetKey(key(20), 1)
	buf := bytes.Repeat([]byte{5}, 4*PageSize)
	if err := m.GuestWriteAliased(0x100000, buf, true); err != nil {
		t.Fatal(err)
	}
	if m.Stats().AliasedPages < 4 {
		t.Fatalf("aliased pages %d, want >= 4", m.Stats().AliasedPages)
	}
	got, err := m.GuestRead(0x100000, len(buf), true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("aliased guest write read back wrong")
	}
	// COW: writing to the mapped page must not touch the source buffer.
	if err := m.GuestWrite(0x100000, []byte{9}, true); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 5 {
		t.Fatal("source buffer mutated through alias")
	}
}

func TestGuestWriteAliasedRequiresKeyForCbit(t *testing.T) {
	m := New(1 << 20)
	if err := m.GuestWriteAliased(0, make([]byte, PageSize), true); !errors.Is(err, ErrNoKey) {
		t.Fatalf("err = %v, want ErrNoKey", err)
	}
}

func TestShareRangeMakesHostWritable(t *testing.T) {
	m := New(1 << 20)
	m.SetKey(key(21), 9)
	tb := rmp.New()
	m.AttachRMP(tb, 9)
	tb.AssignValidated(0x4000, 9)
	if err := m.GuestWrite(0x4000, []byte("private"), true); err != nil {
		t.Fatal(err)
	}
	if err := m.HostWrite(0x4000, []byte("x")); err == nil {
		t.Fatal("private page host-writable before sharing")
	}
	if err := m.ShareRange(0x4000, PageSize); err != nil {
		t.Fatal(err)
	}
	if err := m.HostWrite(0x4000, []byte("host data")); err != nil {
		t.Fatalf("shared page still blocked: %v", err)
	}
	if m.IsPrivate(0x4000) {
		t.Fatal("page still marked private after sharing")
	}
}

func TestHostRestoreCiphertextValidation(t *testing.T) {
	m := New(1 << 20)
	// No key: must fail.
	if err := m.HostRestoreCiphertext(0x1000, make([]byte, PageSize)); !errors.Is(err, ErrNoKey) {
		t.Fatalf("err = %v, want ErrNoKey", err)
	}
	m.SetKey(key(22), 1)
	// Unaligned and partial restores are rejected.
	if err := m.HostRestoreCiphertext(0x1001, make([]byte, PageSize)); err == nil {
		t.Fatal("unaligned restore accepted")
	}
	if err := m.HostRestoreCiphertext(0x1000, make([]byte, 100)); err == nil {
		t.Fatal("partial-page restore accepted")
	}
}

func TestHostRestoreCiphertextRoundTrip(t *testing.T) {
	m := New(1 << 20)
	m.SetKey(key(23), 7)
	secret := bytes.Repeat([]byte("state "), 700)[:PageSize]
	if err := m.GuestWrite(0x2000, secret, true); err != nil {
		t.Fatal(err)
	}
	ct, err := m.HostRead(0x2000, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// Replay the ciphertext into the SAME page of a guest with the SAME
	// key+ASID: the original plain text comes back.
	m2 := New(1 << 20)
	m2.SetKey(key(23), 7)
	if err := m2.HostRestoreCiphertext(0x2000, ct); err != nil {
		t.Fatal(err)
	}
	pt, err := m2.GuestRead(0x2000, PageSize, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, secret) {
		t.Fatal("same-key restore did not reproduce plain text")
	}
	// Different ASID: garbage.
	m3 := New(1 << 20)
	m3.SetKey(key(23), 8)
	if err := m3.HostRestoreCiphertext(0x2000, ct); err != nil {
		t.Fatal(err)
	}
	pt3, _ := m3.GuestRead(0x2000, PageSize, true)
	if bytes.Equal(pt3, secret) {
		t.Fatal("cross-ASID restore reproduced plain text; tweak missing")
	}
}

func TestGuestCopyRejectsOverlap(t *testing.T) {
	m := New(1 << 20)
	if err := m.HostWrite(0x1000, make([]byte, 3*PageSize)); err != nil {
		t.Fatal(err)
	}
	if err := m.GuestCopy(0x2000, 0x1000, 2*PageSize, false, false); err == nil {
		t.Fatal("overlapping copy accepted")
	}
}
