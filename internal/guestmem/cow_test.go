package guestmem

// CoW / shared-artifact semantics tests: aliased pages must be
// bit-identical to the canonical artifact, writes must never leak across
// guests sharing an artifact, and every range-digest fast path must
// produce exactly the hash of the bytes a plain read would return.

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"testing"

	"github.com/severifast/severifast/internal/artifact"
	"github.com/severifast/severifast/internal/hostwork"
)

// internedBuf builds an interned artifact of n deterministic bytes.
func internedBuf(seed int64, n int) ([]byte, *artifact.Buf) {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, n)
	rng.Read(data)
	return data, artifact.Intern(data)
}

func TestCoWAliasBitIdentical(t *testing.T) {
	data, _ := internedBuf(11, 3*PageSize+777) // non-page-multiple tail
	a := New(1 << 20)
	b := New(1 << 20)
	for _, m := range []*Memory{a, b} {
		if err := m.HostWriteAliased(0x4000, data); err != nil {
			t.Fatal(err)
		}
		got, err := m.GuestRead(0x4000, len(data), false)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("aliased range reads back different bytes")
		}
		view, ok, err := m.RangeView(0x4000, len(data), false)
		if err != nil || !ok {
			t.Fatalf("RangeView: ok=%v err=%v, want zero-copy hit", ok, err)
		}
		if !bytes.Equal(view, data) {
			t.Fatal("zero-copy view differs from canonical bytes")
		}
	}
}

func TestCoWNoCrossGuestWriteLeak(t *testing.T) {
	data, _ := internedBuf(22, 2*PageSize)
	orig := append([]byte(nil), data...)
	a := New(1 << 20)
	b := New(1 << 20)
	if err := a.HostWriteAliased(0x4000, data); err != nil {
		t.Fatal(err)
	}
	if err := b.HostWriteAliased(0x8000, data); err != nil {
		t.Fatal(err)
	}
	// Guest A scribbles over its copy of the shared pages.
	if err := a.GuestWrite(0x4000+100, []byte("guest A private state"), false); err != nil {
		t.Fatal(err)
	}
	// The canonical artifact and guest B are unaffected.
	if !bytes.Equal(data, orig) {
		t.Fatal("write through an alias mutated the canonical artifact")
	}
	got, err := b.GuestRead(0x8000, len(data), false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, orig) {
		t.Fatal("guest A's write leaked into guest B")
	}
	// A's view provenance is gone for the written page, and its digest
	// reflects the new bytes, not the memoized artifact digest.
	wantA, err := a.GuestRead(0x4000, len(data), false)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := a.PlainRangeDigest(0x4000, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if sum != sha256.Sum256(wantA) {
		t.Fatal("digest after CoW break does not match actual bytes")
	}
	if sum == sha256.Sum256(orig) {
		t.Fatal("digest after CoW break still reports pristine artifact bytes")
	}
}

func TestRangeDigestsMatchShaOfReads(t *testing.T) {
	defer hostwork.SetWorkers(0)
	for _, workers := range []int{1, 4} {
		hostwork.SetWorkers(workers)
		data, _ := internedBuf(33+int64(workers), 5*PageSize+123)
		m := New(1 << 20)
		m.SetKey(key(9), 7)

		// Aliased shared range (artifact memo path).
		if err := m.HostWriteAliased(0x4000, data); err != nil {
			t.Fatal(err)
		}
		// Plain copied range (streaming path).
		plain := bytes.Repeat([]byte("copied-bytes"), 900)
		if err := m.HostWrite(0x20000, plain); err != nil {
			t.Fatal(err)
		}
		// Private guest-written range (transform path for cbit=false,
		// plain path for cbit=true).
		secret := bytes.Repeat([]byte("sekrit"), 2000)
		if err := m.GuestWrite(0x40000, secret, true); err != nil {
			t.Fatal(err)
		}

		cases := []struct {
			name string
			gpa  uint64
			n    int
			cbit bool
		}{
			{"aliased-shared", 0x4000, len(data), false},
			{"aliased-subrange", 0x4000 + 100, 2*PageSize + 50, false},
			{"copied-shared", 0x20000, len(plain), false},
			{"private-cbit", 0x40000, len(secret), true},
			{"private-ciphertext", 0x40000, len(secret), false},
		}
		for _, tc := range cases {
			want, err := m.GuestRead(tc.gpa, tc.n, tc.cbit)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			got, err := m.HashRange(tc.gpa, tc.n, tc.cbit)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if got != sha256.Sum256(want) {
				t.Fatalf("workers %d, %s: HashRange != sha256(GuestRead)", workers, tc.name)
			}
		}
	}
}

func TestLaunchFlipKeepsProvenanceAndDigest(t *testing.T) {
	data, art := internedBuf(44, 4*PageSize+200)
	m := New(1 << 20)
	m.SetKey(key(10), 3)
	if err := m.HostWriteAliased(0x4000, data); err != nil {
		t.Fatal(err)
	}
	if err := m.LaunchUpdateFlip(0x4000, len(data)); err != nil {
		t.Fatal(err)
	}
	// The flipped range hashes via the artifact memo and matches the
	// plain bytes (pre-encryption measures plain text).
	sum, err := m.PlainRangeDigest(0x4000, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if sum != art.Digest() || sum != sha256.Sum256(data) {
		t.Fatal("post-flip digest does not match artifact bytes")
	}
	// The private range is also zero-copy viewable with cbit set.
	view, ok, err := m.RangeView(0x4000, len(data), true)
	if err != nil || !ok {
		t.Fatalf("RangeView(cbit): ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(view, data) {
		t.Fatal("cbit view differs from plain artifact bytes")
	}
	// Host ciphertext restore (tampering with the private page) clears
	// provenance: digests fall back to hashing the real bytes.
	garbage := bytes.Repeat([]byte{0xA5}, PageSize)
	if err := m.HostRestoreCiphertext(0x5000, garbage); err != nil {
		t.Fatal(err)
	}
	got, err := m.GuestRead(0x4000, len(data), true)
	if err != nil {
		t.Fatal(err)
	}
	sum2, err := m.HashRange(0x4000, len(data), true)
	if err != nil {
		t.Fatal(err)
	}
	if sum2 != sha256.Sum256(got) {
		t.Fatal("post-tamper HashRange does not match actual guest bytes")
	}
	if sum2 == sum {
		t.Fatal("tampered range still reports the pristine digest")
	}
}

func TestGuestCopyPropagatesProvenance(t *testing.T) {
	data, _ := internedBuf(55, 3*PageSize)
	m := New(1 << 20)
	if err := m.HostWriteAliased(0x4000, data); err != nil {
		t.Fatal(err)
	}
	// Page-aligned GuestCopy aliases and carries provenance along.
	if err := m.GuestCopy(0x10000, 0x4000, len(data), false, false); err != nil {
		t.Fatal(err)
	}
	view, ok, err := m.RangeView(0x10000, len(data), false)
	if err != nil || !ok {
		t.Fatalf("copied range lost provenance: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(view, data) {
		t.Fatal("copied view differs")
	}
}

func TestExportPagesMatchesHostRead(t *testing.T) {
	defer hostwork.SetWorkers(0)
	for _, workers := range []int{1, 5} {
		hostwork.SetWorkers(workers)
		m := New(1 << 20)
		m.SetKey(key(11), 5)
		if err := m.HostWrite(0x1000, bytes.Repeat([]byte("shared"), 1000)); err != nil {
			t.Fatal(err)
		}
		if err := m.GuestWrite(0x8000, bytes.Repeat([]byte("private"), 1200), true); err != nil {
			t.Fatal(err)
		}
		exports, err := m.ExportPages()
		if err != nil {
			t.Fatal(err)
		}
		if len(exports) == 0 {
			t.Fatal("no pages exported")
		}
		lastPN := uint64(0)
		for i, e := range exports {
			if i > 0 && e.PN <= lastPN {
				t.Fatal("exports not sorted by page number")
			}
			lastPN = e.PN
			want, err := m.HostRead(e.PN*PageSize, PageSize)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(e.Data, want) {
				t.Fatalf("workers %d: exported page %d differs from HostRead", workers, e.PN)
			}
			if e.Private != m.IsPrivate(e.PN*PageSize) {
				t.Fatalf("page %d private flag mismatch", e.PN)
			}
		}
	}
}

// TestCoWProvenanceUnderTampering: when the canonical artifact buffer is
// corrupted after interning (the chaos engine's artifact family), every
// digest path — the buffer's own memoized digests and the guest-side
// range digest over aliased pages — must recompute from the tampered
// bytes. A stale memo here would be a measurement lying about hostile
// content, the exact failure the boot verifier exists to prevent.
func TestCoWProvenanceUnderTampering(t *testing.T) {
	data, buf := internedBuf(33, 4*PageSize)
	clean := sha256.Sum256(append([]byte(nil), data...))
	m := New(1 << 20)
	if err := m.HostWriteAliased(0x4000, data); err != nil {
		t.Fatal(err)
	}
	if d := buf.Digest(); d != clean {
		t.Fatal("canonical digest differs from plain SHA-256")
	}
	if d, err := m.PlainRangeDigest(0x4000, len(data)); err != nil || d != clean {
		t.Fatalf("aliased range digest %x (err=%v), want clean digest", d[:8], err)
	}

	// Tamper the canonical bytes. XOR is self-inverting: restore after.
	const off, mask = 2*PageSize + 123, byte(0x5a)
	buf.Corrupt(off, mask)
	defer buf.Corrupt(off, mask)
	dirty := sha256.Sum256(buf.Bytes())
	if dirty == clean {
		t.Fatal("corruption did not change the bytes")
	}
	if d := buf.Digest(); d != dirty {
		t.Fatalf("memoized full digest served stale hash after tamper: %x", d[:8])
	}
	if d := buf.RangeDigest(2*PageSize, PageSize); d != sha256.Sum256(buf.Bytes()[2*PageSize:3*PageSize]) {
		t.Fatal("memoized range digest served stale hash after tamper")
	}
	if d, err := m.PlainRangeDigest(0x4000, len(data)); err != nil || d != dirty {
		t.Fatalf("guest range digest %x (err=%v), want tampered digest %x", d[:8], err, dirty[:8])
	}

	// A second guest aliasing the same artifact sees the same tampered
	// bytes — one canonical copy, one truth.
	m2 := New(1 << 20)
	if err := m2.HostWriteAliased(0x8000, data); err != nil {
		t.Fatal(err)
	}
	if d, err := m2.PlainRangeDigest(0x8000, len(data)); err != nil || d != dirty {
		t.Fatalf("second guest digest %x (err=%v), want %x", d[:8], err, dirty[:8])
	}

	// Breaking the alias in one guest (a host write to an aliased page)
	// must copy-on-write: that guest diverges, the canonical buffer and
	// the other guest do not.
	if err := m.HostWrite(0x4000, []byte{0xff, 0xfe}); err != nil {
		t.Fatal(err)
	}
	private, err := m.PlainRangeDigest(0x4000, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if private == dirty {
		t.Fatal("host write did not change the writing guest's view")
	}
	if d := buf.Digest(); d != dirty {
		t.Fatal("alias-breaking write leaked into the canonical buffer")
	}
	if d, err := m2.PlainRangeDigest(0x8000, len(data)); err != nil || d != dirty {
		t.Fatalf("alias-breaking write in one guest leaked into another: %x (err=%v)", d[:8], err)
	}
}
