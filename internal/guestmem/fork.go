package guestmem

// Snapshot-fork support: a ForkSource is one guest's resident plain
// text, frozen into a single interned artifact so any number of later
// guests can alias it copy-on-write. Where snapshot.Restore replays
// ciphertext page by page (O(image) AES work per warm boot), AdoptFork
// is O(resident pages) of pointer aliasing plus one O(1) root-digest
// check — the forked guest shares the donor's key and ASID (installed
// by psp.LaunchStartFork), so the host-visible ciphertext of every
// aliased private page is bit-identical to what a copy restore would
// have produced, and a write to any page breaks its alias in mutable()
// before the bytes can diverge.
//
// Soundness: the root digest is taken over the full plain-text blob at
// capture time. AdoptFork re-checks it before aliasing a single page;
// artifact.Corrupt (the chaos engine's tamper model) invalidates the
// blob's digest memo, so a tampered blob re-hashes honestly and the
// fork is refused with ErrForkTampered. A fork can therefore never go
// live with pages that differ from the measured parent.

import (
	"errors"
	"fmt"

	"github.com/severifast/severifast/internal/artifact"
)

// ErrForkTampered reports a fork source whose blob no longer matches
// the root digest recorded at capture.
var ErrForkTampered = errors.New("guestmem: fork source tampered since capture")

// ForkPage locates one resident page inside a ForkSource blob.
type ForkPage struct {
	PN      uint64 // guest page number
	Off     int    // byte offset of the page's plain text inside the blob
	Private bool   // page was in the encrypted state at capture
}

// ForkSource is a frozen copy of a guest's resident plain text,
// fork-adoptable by any guest of the same size that shares the donor's
// encryption key and ASID.
type ForkSource struct {
	size  uint64
	pages []ForkPage
	blob  *artifact.Buf
	root  [32]byte
}

// ExportForkSource freezes the guest's resident pages — plain text, in
// page-number order — into one interned blob and records its digest as
// the fork root. The donor must not be mutated afterwards (fleet keeps
// donors parked for exactly this reason).
func (m *Memory) ExportForkSource() (*ForkSource, error) {
	var pns []uint64
	for pn, p := range m.pages { // dense, so pns comes out sorted
		if p != nil && (p.data != nil || p.encrypted) {
			pns = append(pns, uint64(pn))
		}
	}
	blob := make([]byte, len(pns)*PageSize)
	pages := make([]ForkPage, len(pns))
	for i, pn := range pns {
		p := m.pages[pn]
		copy(blob[i*PageSize:], p.readable())
		pages[i] = ForkPage{PN: pn, Off: i * PageSize, Private: p.encrypted}
	}
	buf := artifact.Intern(blob)
	src := &ForkSource{size: m.size, pages: pages, blob: buf}
	if buf != nil {
		src.root = buf.Digest()
	}
	m.recorder().CounterAdd("guestmem.fork.exported", 1)
	m.recorder().CounterAdd("guestmem.fork.exported_bytes", int64(len(blob)))
	return src, nil
}

// Pages returns the source's page table (read-only).
func (s *ForkSource) Pages() []ForkPage { return s.pages }

// Size returns the donor guest's memory size.
func (s *ForkSource) Size() uint64 { return s.size }

// Root returns the digest of the plain-text blob at capture time.
func (s *ForkSource) Root() [32]byte { return s.root }

// Blob exposes the backing artifact. The chaos engine corrupts it to
// prove forks of a tampered parent are refused.
func (s *ForkSource) Blob() *artifact.Buf { return s.blob }

// Verify re-hashes the blob (O(1) when the digest memo is intact) and
// reports whether it still matches the fork root.
func (s *ForkSource) Verify() error {
	if s.blob == nil {
		if len(s.pages) != 0 {
			return fmt.Errorf("%w: %d pages with no backing blob", ErrForkTampered, len(s.pages))
		}
		return nil
	}
	if s.blob.Digest() != s.root {
		return ErrForkTampered
	}
	return nil
}

// AdoptFork populates this guest from a fork source: every source page
// is aliased copy-on-write with artifact provenance, private pages keep
// their state (assigned+validated under SNP). The caller must have
// installed the donor's key and ASID first (psp.LaunchStartFork does);
// the root digest is verified before any page is touched.
func (m *Memory) AdoptFork(src *ForkSource) error {
	if src.size != m.size {
		return fmt.Errorf("guestmem: fork source is %d bytes, guest is %d: %w", src.size, m.size, ErrSize)
	}
	if err := src.Verify(); err != nil {
		return err
	}
	anyPrivate := false
	for _, fp := range src.pages {
		if fp.Private {
			anyPrivate = true
			break
		}
	}
	if anyPrivate && m.key == nil {
		return ErrNoKey
	}
	blob := src.blob.Bytes()
	// Private pages land assigned+validated; contiguous runs batch into
	// one RMP splice each instead of a per-page table write.
	runLo, runHi := uint64(0), uint64(0) // [runLo, runHi) pending private pns
	flush := func() {
		if m.rmp != nil && runHi > runLo {
			m.rmp.AssignValidatedRange(runLo*PageSize, int(runHi-runLo)*PageSize, m.asid)
		}
	}
	for _, fp := range src.pages {
		p := m.getPage(fp.PN)
		p.data = blob[fp.Off : fp.Off+PageSize : fp.Off+PageSize]
		p.cow = true
		p.art, p.artOff = src.blob, fp.Off
		p.encrypted = fp.Private
		if fp.Private {
			if fp.PN == runHi && runHi > runLo {
				runHi++
			} else {
				flush()
				runLo, runHi = fp.PN, fp.PN+1
			}
		}
	}
	flush()
	m.recorder().CounterAdd("guestmem.fork.adopted", 1)
	m.recorder().CounterAdd("guestmem.fork.aliased_pages", int64(len(src.pages)))
	return nil
}
