// Package guestmem implements a guest-physical address space with SEV
// memory-encryption semantics.
//
// Every page is either *shared* (plain text, visible to the host) or
// *private* (protected by the guest's memory-encryption key). Guest
// accesses carry the C-bit; host accesses never decrypt. Reading a private
// page from the host yields real AES-CTR ciphertext under the guest key,
// tweaked by the physical address — so, as on real hardware, identical
// plain text at different addresses (or under different guests) has
// different ciphertext, which is what defeats page deduplication for SEV
// guests (paper §7.1).
//
// Representation note: pages store plain text plus an "encrypted" flag;
// ciphertext is produced on demand when the host reads a private page.
// This is an internal representation choice that preserves every
// observable behaviour while letting identical kernel pages be shared
// copy-on-write across the 50-VM concurrency experiment.
//
// When an RMP table is attached (SEV-SNP), host writes to assigned pages
// are blocked and guest private accesses to unvalidated pages raise #VC,
// both surfaced as errors from the access functions.
package guestmem

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"github.com/severifast/severifast/internal/artifact"
	"github.com/severifast/severifast/internal/hostwork"
	"github.com/severifast/severifast/internal/rmp"
	"github.com/severifast/severifast/internal/telemetry"
)

// PageSize is the guest page granularity.
const PageSize = 4096

// Errors.
var (
	ErrOutOfRange = errors.New("guestmem: access beyond guest memory")
	ErrNoKey      = errors.New("guestmem: encryption key not set")
	ErrSize       = errors.New("guestmem: guest size mismatch")
)

type page struct {
	data      []byte // PageSize bytes of plain text; nil = all zero
	cow       bool   // data is aliased; copy before mutating
	encrypted bool   // page is private (guest-key protected)

	// Artifact provenance: when non-nil, data aliases
	// art.Bytes()[artOff:artOff+PageSize] and the bytes are immutable
	// for as long as the alias holds. Any write breaks the alias in
	// mutable() and clears the provenance, so a digest memoized through
	// art can never describe stale bytes. Pages without provenance are
	// always hashed for real.
	art    *artifact.Buf
	artOff int
}

// Memory is one guest's physical address space.
type Memory struct {
	size uint64
	// pages is dense, indexed by page frame number (nil = untouched).
	// check() bounds every gpa below size, so in-range indexing is safe;
	// a dense slice keeps the per-page lookup off the map hash path,
	// which dominates host CPU when booting fleets.
	pages []*page
	slab  []page // page structs are carved from slabs, not allocated singly

	key   []byte       // 16-byte AES key; set by LAUNCH_START via SetKey
	block cipher.Block // AES block cached at SetKey; one per guest, not per page
	asid  uint32
	rmp   *rmp.Table // nil unless SNP

	// rec receives host-side cache counters; nil routes to the
	// process-global telemetry.DefaultHostRecorder.
	rec *telemetry.HostRecorder

	// bookkeeping for the memory-footprint experiment (§6.3)
	sevMetadataBytes int
}

// New returns a zeroed address space of the given size (page aligned up).
func New(size uint64) *Memory {
	size = (size + PageSize - 1) &^ (PageSize - 1)
	return &Memory{size: size, pages: make([]*page, size/PageSize)}
}

// Size returns the guest memory size in bytes.
func (m *Memory) Size() uint64 { return m.size }

// SetHostRecorder routes this guest's host-side counters (digest memo
// hits, fork stats) to a per-host recorder instead of the process
// default. kvm.NewMachine calls it with the owning host's recorder.
func (m *Memory) SetHostRecorder(r *telemetry.HostRecorder) { m.rec = r }

func (m *Memory) recorder() *telemetry.HostRecorder {
	if m.rec != nil {
		return m.rec
	}
	return telemetry.DefaultHostRecorder
}

// HostRecorder returns the recorder this guest's counters route to —
// the owning host's when one was installed, the process default
// otherwise. The PSP measurement pipeline stamps its stage timings on
// the same recorder so per-host snapshots stay self-contained.
func (m *Memory) HostRecorder() *telemetry.HostRecorder { return m.recorder() }

// SetKey installs the guest memory-encryption key and the ASID that
// tweaks it in the memory controller (done by LAUNCH_START; shared-key
// launches install the donor's pair).
func (m *Memory) SetKey(key []byte, asid uint32) {
	if len(key) != 16 {
		panic("guestmem: key must be 16 bytes")
	}
	m.key = append([]byte(nil), key...)
	block, err := aes.NewCipher(m.key)
	if err != nil {
		panic("guestmem: " + err.Error())
	}
	m.block = block
	m.asid = asid
	m.sevMetadataBytes += len(key) + 48 // key + per-guest SEV context
}

// HasKey reports whether an encryption key is installed.
func (m *Memory) HasKey() bool { return m.key != nil }

// AttachRMP enables SNP semantics for this guest with the given ASID.
func (m *Memory) AttachRMP(t *rmp.Table, asid uint32) {
	m.rmp = t
	m.asid = asid
	m.sevMetadataBytes += 64 // ASID bookkeeping, GHCB registration
}

// RMP returns the attached table (nil if not SNP) and the guest's ASID.
func (m *Memory) RMP() (*rmp.Table, uint32) { return m.rmp, m.asid }

// SEVMetadataBytes reports the extra per-guest bookkeeping SEV added —
// the quantity §6.3 measures (~16 KiB per guest, dominated by the
// pinned-page accounting recorded via NotePinned).
func (m *Memory) SEVMetadataBytes() int { return m.sevMetadataBytes }

// NotePinned records host-side pinning metadata for n bytes of guest
// memory (KVM pins encrypted guest pages during boot, paper §6.2).
func (m *Memory) NotePinned(n int) {
	// Two bits of accounting per pinned 4 KiB page (refcount + pin flags)
	// -> ~16 KiB for a 256 MiB guest, the paper's §6.3 figure.
	m.sevMetadataBytes += 32 + n/(PageSize*4)
}

func (m *Memory) check(gpa uint64, n int) error {
	if n < 0 || gpa+uint64(n) > m.size || gpa+uint64(n) < gpa {
		return fmt.Errorf("%w: [%#x,+%d) of %#x", ErrOutOfRange, gpa, n, m.size)
	}
	return nil
}

// rmpSpan converts a [gpa, gpa+n) byte range into the page-aligned base
// and byte length covering exactly the pages the old per-page RMP walks
// iterated (including the page containing an unaligned gpa even when
// n == 0), so one range call replaces the whole loop.
func rmpSpan(gpa uint64, n int) (uint64, int) {
	base := gpa &^ (PageSize - 1)
	return base, int(gpa + uint64(n) - base)
}

// pageSlabSize is how many page structs one slab allocation yields. A
// boot touches tens of thousands of pages; carving their structs from
// slabs turns the dominant per-page allocation into one per 512 pages.
const pageSlabSize = 512

func (m *Memory) getPage(pn uint64) *page {
	p := m.pages[pn]
	if p == nil {
		if len(m.slab) == 0 {
			m.slab = make([]page, pageSlabSize)
		}
		p = &m.slab[0]
		m.slab = m.slab[1:]
		m.pages[pn] = p
	}
	return p
}

// mutable returns the page's byte slice ready for writing, materializing
// zero pages and breaking copy-on-write aliases. Breaking an alias also
// drops artifact provenance: once a page can diverge from its canonical
// source, memoized digests must no longer apply to it.
func (p *page) mutable() []byte {
	if p.data == nil {
		p.data = make([]byte, PageSize)
		p.cow = false
	} else if p.cow {
		d := make([]byte, PageSize)
		copy(d, p.data)
		p.data = d
		p.cow = false
	}
	p.art, p.artOff = nil, 0
	return p.data
}

// zeroPage is returned when reading unbacked pages.
var zeroPage = make([]byte, PageSize)

func (p *page) readable() []byte {
	if p == nil || p.data == nil {
		return zeroPage
	}
	return p.data
}

// --- Host-side accesses (VMM / hypervisor) ---

// HostWrite writes plain text into guest memory as the hypervisor. Under
// SNP it is blocked on pages assigned to a guest. A host write to a
// private page destroys its encrypted content (the page becomes shared
// plain text — which the guest will detect, since SNP blocks this and
// plain SEV guests would read garbage; we model the SNP machine).
func (m *Memory) HostWrite(gpa uint64, data []byte) error {
	if err := m.check(gpa, len(data)); err != nil {
		return err
	}
	if m.rmp != nil {
		base, span := rmpSpan(gpa, len(data))
		if err := m.rmp.CheckHostWriteRange(base, span); err != nil {
			return err
		}
	}
	m.write(gpa, data, false)
	return nil
}

// HostWriteAliased is HostWrite for page-aligned bulk loads: full pages
// alias the source slice copy-on-write instead of copying. The caller must
// not mutate data afterwards. Used by the VMM to place kernels/initrds.
func (m *Memory) HostWriteAliased(gpa uint64, data []byte) error {
	if err := m.check(gpa, len(data)); err != nil {
		return err
	}
	if m.rmp != nil {
		base, span := rmpSpan(gpa, len(data))
		if err := m.rmp.CheckHostWriteRange(base, span); err != nil {
			return err
		}
	}
	m.writeAliased(gpa, data, false, artifact.Lookup(data), 0)
	return nil
}

// HostRead returns n bytes as seen from the host: plain text for shared
// pages, ciphertext for private pages.
func (m *Memory) HostRead(gpa uint64, n int) ([]byte, error) {
	if err := m.check(gpa, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	for done := 0; done < n; {
		pn := (gpa + uint64(done)) / PageSize
		off := int((gpa + uint64(done)) % PageSize)
		chunk := PageSize - off
		if chunk > n-done {
			chunk = n - done
		}
		p := m.pages[pn]
		if p != nil && p.encrypted {
			ct, err := m.cipherPage(pn, p.readable())
			if err != nil {
				return nil, err
			}
			copy(out[done:], ct[off:off+chunk])
		} else {
			copy(out[done:], p.readable()[off:off+chunk])
		}
		done += chunk
	}
	return out, nil
}

// --- Guest-side accesses ---

// GuestWrite writes from the guest. cbit selects the encrypted mapping:
// with the C-bit set the page becomes (or stays) private; without it the
// page is shared plain text. Under SNP, private writes require a
// validated RMP entry, otherwise #VC is returned.
func (m *Memory) GuestWrite(gpa uint64, data []byte, cbit bool) error {
	if err := m.check(gpa, len(data)); err != nil {
		return err
	}
	if cbit && m.key == nil {
		return ErrNoKey
	}
	if cbit && m.rmp != nil {
		base, span := rmpSpan(gpa, len(data))
		if err := m.rmp.CheckGuestAccessRange(base, span, m.asid); err != nil {
			return err
		}
	}
	m.write(gpa, data, cbit)
	return nil
}

// GuestRead reads from the guest through a mapping with or without the
// C-bit. Reading a private page *without* the C-bit yields ciphertext;
// reading a shared page *with* the C-bit yields garbage (modeled as the
// decryption of the plain text — deterministic and definitely not the
// original bytes). Under SNP, C-bit reads require validated pages.
func (m *Memory) GuestRead(gpa uint64, n int, cbit bool) ([]byte, error) {
	if err := m.check(gpa, n); err != nil {
		return nil, err
	}
	if cbit && m.rmp != nil {
		base, span := rmpSpan(gpa, n)
		if err := m.rmp.CheckGuestAccessRange(base, span, m.asid); err != nil {
			return nil, err
		}
	}
	out := make([]byte, n)
	for done := 0; done < n; {
		pn := (gpa + uint64(done)) / PageSize
		off := int((gpa + uint64(done)) % PageSize)
		chunk := PageSize - off
		if chunk > n-done {
			chunk = n - done
		}
		p := m.pages[pn]
		src := p.readable()
		encrypted := p != nil && p.encrypted
		if encrypted != cbit {
			// Mapping attribute does not match page state: the engine
			// applies the AES transform in the "wrong" direction and the
			// reader sees ciphertext/garbage.
			ct, err := m.cipherPage(pn, src)
			if err != nil {
				return nil, err
			}
			src = ct
		}
		copy(out[done:], src[off:off+chunk])
		done += chunk
	}
	return out, nil
}

// GuestCopy copies n bytes from src to dst inside the guest, reading with
// srcCbit and writing with dstCbit — the boot verifier's shared->private
// component copy. Page-aligned spans alias copy-on-write.
func (m *Memory) GuestCopy(dst, src uint64, n int, dstCbit, srcCbit bool) error {
	if err := m.check(src, n); err != nil {
		return err
	}
	if err := m.check(dst, n); err != nil {
		return err
	}
	if src < dst+uint64(n) && dst < src+uint64(n) && n > 0 {
		return fmt.Errorf("guestmem: overlapping copy [%#x,+%d) -> [%#x,+%d)", src, n, dst, n)
	}
	if dstCbit && m.key == nil {
		return ErrNoKey
	}
	if m.rmp != nil {
		if srcCbit {
			base, span := rmpSpan(src, n)
			if err := m.rmp.CheckGuestAccessRange(base, span, m.asid); err != nil {
				return err
			}
		}
		if dstCbit {
			base, span := rmpSpan(dst, n)
			if err := m.rmp.CheckGuestAccessRange(base, span, m.asid); err != nil {
				return err
			}
		}
	}
	// Fast path: page-aligned both sides and every source page's state
	// matches the mapping (so the copy moves plain text) — alias full
	// pages copy-on-write and fall back only for the tail.
	if dst%PageSize == 0 && src%PageSize == 0 {
		fullPages := uint64(n) / PageSize
		aliasable := true
		for i := uint64(0); i < fullPages; i++ {
			sp := m.pages[src/PageSize+i]
			if (sp != nil && sp.encrypted) != srcCbit {
				aliasable = false
				break
			}
		}
		if aliasable {
			for i := uint64(0); i < fullPages; i++ {
				sp := m.pages[src/PageSize+i]
				dp := m.getPage(dst/PageSize + i)
				if sp == nil || sp.data == nil {
					dp.data = nil
					dp.cow = false
					dp.art, dp.artOff = nil, 0
				} else {
					sp.cow = true
					dp.data = sp.data
					dp.cow = true
					dp.art, dp.artOff = sp.art, sp.artOff
				}
				dp.encrypted = dstCbit
			}
			tail := n - int(fullPages*PageSize)
			if tail == 0 {
				return nil
			}
			data, err := m.GuestRead(src+fullPages*PageSize, tail, srcCbit)
			if err != nil {
				return err
			}
			m.write(dst+fullPages*PageSize, data, dstCbit)
			return nil
		}
	}
	// General path: read then write.
	data, err := m.GuestRead(src, n, srcCbit)
	if err != nil {
		return err
	}
	m.write(dst, data, dstCbit)
	return nil
}

// --- PSP-side access ---

// LaunchUpdate is the memory side of LAUNCH_UPDATE_DATA: it returns the
// current plain text of [gpa, gpa+n) for measurement and flips the pages
// to private (encrypting them under the guest key). Under SNP the pages
// become assigned+validated for this guest.
func (m *Memory) LaunchUpdate(gpa uint64, n int) ([]byte, error) {
	if err := m.check(gpa, n); err != nil {
		return nil, err
	}
	if m.key == nil {
		return nil, ErrNoKey
	}
	pt := make([]byte, n)
	for done := 0; done < n; {
		pn := (gpa + uint64(done)) / PageSize
		off := int((gpa + uint64(done)) % PageSize)
		chunk := PageSize - off
		if chunk > n-done {
			chunk = n - done
		}
		p := m.getPage(pn)
		copy(pt[done:], p.readable()[off:off+chunk])
		p.encrypted = true
		done += chunk
	}
	if m.rmp != nil {
		base, span := rmpSpan(gpa, n)
		m.rmp.AssignValidatedRange(base, span, m.asid)
	}
	return pt, nil
}

// --- internals ---

func (m *Memory) write(gpa uint64, data []byte, encrypted bool) {
	for done := 0; done < len(data); {
		pn := (gpa + uint64(done)) / PageSize
		off := int((gpa + uint64(done)) % PageSize)
		chunk := PageSize - off
		if chunk > len(data)-done {
			chunk = len(data) - done
		}
		p := m.getPage(pn)
		copy(p.mutable()[off:], data[done:done+chunk])
		p.encrypted = encrypted
		done += chunk
	}
}

// writeAliased is write with zero-copy full-page aliasing. When the
// source slice is (or lies inside) an interned artifact, art/artBase
// record where data[0] sits inside it, and aliased pages carry that
// provenance so later range digests can hit the artifact's memo table.
func (m *Memory) writeAliased(gpa uint64, data []byte, encrypted bool, art *artifact.Buf, artBase int) {
	done := 0
	for done < len(data) {
		pn := (gpa + uint64(done)) / PageSize
		off := int((gpa + uint64(done)) % PageSize)
		chunk := PageSize - off
		if chunk > len(data)-done {
			chunk = len(data) - done
		}
		p := m.getPage(pn)
		if off == 0 && chunk == PageSize {
			p.data = data[done : done+PageSize : done+PageSize]
			p.cow = true
			p.art, p.artOff = art, artBase+done
		} else if pa := artBase + done - off; p.data == nil && art != nil &&
			pa >= 0 && pa+PageSize <= art.Len() &&
			allZero(art.Bytes()[pa:pa+off]) &&
			allZero(art.Bytes()[pa+off+chunk:pa+PageSize]) {
			// Sub-page write into a fresh (all-zero) page, with the artifact
			// holding zeros around the written bytes at the same intra-page
			// offsets (staging blobs place regions GPA-congruent and pad to
			// page boundaries for exactly this): the full page content
			// equals the artifact's page, so alias it with provenance
			// instead of copying.
			p.data = art.Bytes()[pa : pa+PageSize : pa+PageSize]
			p.cow = true
			p.art, p.artOff = art, pa
		} else {
			copy(p.mutable()[off:], data[done:done+chunk])
		}
		p.encrypted = encrypted
		done += chunk
	}
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// cipherPage produces the AES-CTR transform of a page's plain text under
// the guest key, tweaked by the page's physical address.
func (m *Memory) cipherPage(pn uint64, pt []byte) ([]byte, error) {
	ct := make([]byte, PageSize)
	if err := m.cipherPageInto(ct, pn, pt); err != nil {
		return nil, err
	}
	return ct, nil
}

// cipherPageInto is cipherPage into a caller-provided buffer, so hot
// paths can run the transform through a sync.Pool page instead of
// allocating per page. The AES block is the one cached by SetKey.
func (m *Memory) cipherPageInto(ct []byte, pn uint64, pt []byte) error {
	if m.key == nil {
		return ErrNoKey
	}
	var iv [16]byte
	binary.LittleEndian.PutUint32(iv[0:], m.asid)
	binary.LittleEndian.PutUint64(iv[8:], pn) // physical-address tweak
	cipher.NewCTR(m.block, iv[:]).XORKeyStream(ct[:PageSize], pt)
	return nil
}

// pagePool recycles page-sized scratch buffers for transforms whose
// output does not escape (streaming hashes over mismatched mappings).
var pagePool = sync.Pool{New: func() any {
	b := make([]byte, PageSize)
	return &b
}}

// Stats summarizes backing-store usage.
type Stats struct {
	ResidentPages int // pages with any backing
	AliasedPages  int // pages sharing bytes copy-on-write
	PrivatePages  int // pages in the encrypted state
}

// Stats returns current backing-store statistics.
func (m *Memory) Stats() Stats {
	var s Stats
	for _, p := range m.pages {
		if p == nil {
			continue
		}
		if p.data != nil || p.encrypted {
			s.ResidentPages++
		}
		if p.cow {
			s.AliasedPages++
		}
		if p.encrypted {
			s.PrivatePages++
		}
	}
	return s
}

// GuestWriteAliased is GuestWrite for page-aligned bulk loads from an
// immutable buffer: full pages alias the source copy-on-write. The guest
// Linux model uses it to place kernel segments, so concurrent guests
// booting the same kernel share backing store (their *ciphertext* still
// differs per guest — it is derived from the key and address on host
// reads).
func (m *Memory) GuestWriteAliased(gpa uint64, data []byte, cbit bool) error {
	if err := m.check(gpa, len(data)); err != nil {
		return err
	}
	if cbit && m.key == nil {
		return ErrNoKey
	}
	if cbit && m.rmp != nil {
		base, span := rmpSpan(gpa, len(data))
		if err := m.rmp.CheckGuestAccessRange(base, span, m.asid); err != nil {
			return err
		}
	}
	m.writeAliased(gpa, data, cbit, artifact.Lookup(data), 0)
	return nil
}

// HostWriteArtifact is HostWriteAliased for a subrange of an interned
// artifact: pages alias art.Bytes()[off:off+n] copy-on-write and carry
// provenance, so later HashRange/RangeView calls over them resolve to
// the artifact's memoized digests instead of re-reading the bytes.
func (m *Memory) HostWriteArtifact(gpa uint64, art *artifact.Buf, off, n int) error {
	data := art.Bytes()[off : off+n]
	if err := m.check(gpa, n); err != nil {
		return err
	}
	if m.rmp != nil {
		base, span := rmpSpan(gpa, n)
		if err := m.rmp.CheckHostWriteRange(base, span); err != nil {
			return err
		}
	}
	m.writeAliased(gpa, data, false, art, off)
	return nil
}

// GuestWriteArtifact is GuestWriteAliased for a subrange of an interned
// artifact (the guest kernel loader placing ELF segments from the
// canonical decompressed vmlinux).
func (m *Memory) GuestWriteArtifact(gpa uint64, art *artifact.Buf, off, n int, cbit bool) error {
	data := art.Bytes()[off : off+n]
	if err := m.check(gpa, n); err != nil {
		return err
	}
	if cbit && m.key == nil {
		return ErrNoKey
	}
	if cbit && m.rmp != nil {
		base, span := rmpSpan(gpa, n)
		if err := m.rmp.CheckGuestAccessRange(base, span, m.asid); err != nil {
			return err
		}
	}
	m.writeAliased(gpa, data, cbit, art, off)
	return nil
}

// Resident reports whether the page containing gpa has any backing.
func (m *Memory) Resident(gpa uint64) bool {
	if gpa/PageSize >= uint64(len(m.pages)) {
		return false
	}
	p := m.pages[gpa/PageSize]
	return p != nil && (p.data != nil || p.encrypted)
}

// IsPrivate reports whether the page containing gpa is encrypted.
func (m *Memory) IsPrivate(gpa uint64) bool {
	if gpa/PageSize >= uint64(len(m.pages)) {
		return false
	}
	p := m.pages[gpa/PageSize]
	return p != nil && p.encrypted
}

// HostRestoreCiphertext replays captured ciphertext into a private page —
// the snapshot-restore path. The stored plain text becomes whatever the
// *target* guest's key decrypts the ciphertext to: restoring under the
// original key at the original address reproduces the original bytes;
// any other key (or address) yields garbage, which is the paper's §7.1
// obstacle to SEV warm start. Under SNP the page comes back assigned and
// validated (the guest's post-restore pvalidate pass is charged by the
// caller).
func (m *Memory) HostRestoreCiphertext(gpa uint64, ct []byte) error {
	if gpa%PageSize != 0 || len(ct) != PageSize {
		return fmt.Errorf("guestmem: ciphertext restore must be page-granular")
	}
	if err := m.check(gpa, len(ct)); err != nil {
		return err
	}
	if m.key == nil {
		return ErrNoKey
	}
	pn := gpa / PageSize
	pt, err := m.cipherPage(pn, ct) // CTR transform is its own inverse
	if err != nil {
		return err
	}
	p := m.getPage(pn)
	p.data = pt
	p.cow = false
	p.art, p.artOff = nil, 0
	p.encrypted = true
	if m.rmp != nil {
		m.rmp.AssignValidated(gpa, m.asid)
	}
	return nil
}

// Key returns a copy of the installed encryption key (used by the PSP's
// shared-key launch path). Nil if no key is installed.
func (m *Memory) Key() []byte {
	if m.key == nil {
		return nil
	}
	return append([]byte(nil), m.key...)
}

// ShareRange converts [gpa, gpa+n) to shared state — the guest's
// page-state-change request for DMA-visible memory (virtio rings, swiotlb
// bounce buffers). Under SNP the pages return to hypervisor ownership so
// the device can write them; their contents become host-visible plain
// text, which is why drivers only bounce non-secret data through them.
func (m *Memory) ShareRange(gpa uint64, n int) error {
	if err := m.check(gpa, n); err != nil {
		return err
	}
	for off := gpa &^ (PageSize - 1); off < gpa+uint64(n); off += PageSize {
		p := m.getPage(off / PageSize)
		p.encrypted = false
	}
	if m.rmp != nil {
		base, span := rmpSpan(gpa, n)
		m.rmp.ReclaimRange(base, span)
	}
	return nil
}

// --- Range digests, zero-copy views, and page export (host-time layer) ---
//
// These APIs exist so the fleet hot path stops re-materializing and
// re-hashing bytes that are content-identical across boots. They change
// no observable semantics: every digest equals SHA-256 of the bytes the
// corresponding GuestRead/LaunchUpdate would have returned, and every
// fast path is guarded by provenance or byte comparison.

// rangeArtifact resolves [gpa, gpa+n) to a single interned artifact
// range when possible: at least one page in the range carries artifact
// provenance, every page with provenance agrees on (artifact, offset),
// and every page without provenance (partial-page tails copied by
// writeAliased, unbacked zero pages never written) is byte-compared
// against the artifact. Returns (nil, 0) when no sound mapping exists.
func (m *Memory) rangeArtifact(gpa uint64, n int) (*artifact.Buf, int) {
	if n <= 0 {
		return nil, 0
	}
	first := gpa / PageSize
	last := (gpa + uint64(n) - 1) / PageSize
	var art *artifact.Buf
	base := 0
	for pn := first; pn <= last; pn++ {
		p := m.pages[pn]
		if p == nil || p.art == nil {
			continue
		}
		cand := p.artOff - int(pn-first)*PageSize + int(gpa%PageSize)
		if art == nil {
			art, base = p.art, cand
		} else if p.art != art || cand != base {
			return nil, 0
		}
	}
	if art == nil || base < 0 || base+n > art.Len() {
		return nil, 0
	}
	// Verify the pages without provenance really hold the artifact's
	// bytes. This covers copied partial-page tails (a few KiB memcmp,
	// cheap next to the MiB-scale hash it saves) and rejects anything
	// that diverged.
	src := art.Bytes()[base : base+n]
	for done := 0; done < n; {
		pn := (gpa + uint64(done)) / PageSize
		off := int((gpa + uint64(done)) % PageSize)
		chunk := PageSize - off
		if chunk > n-done {
			chunk = n - done
		}
		p := m.pages[pn]
		if p == nil || p.art == nil {
			if !bytesEqual(p.readable()[off:off+chunk], src[done:done+chunk]) {
				return nil, 0
			}
		}
		done += chunk
	}
	return art, base
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PlainRangeDigest returns SHA-256 of the current plain text of
// [gpa, gpa+n) — exactly sha256.Sum256 of what LaunchUpdate would have
// returned — using the artifact memo table when the range aliases one
// interned buffer, and a zero-copy streaming hash otherwise.
func (m *Memory) PlainRangeDigest(gpa uint64, n int) ([32]byte, error) {
	var sum [32]byte
	if err := m.check(gpa, n); err != nil {
		return sum, err
	}
	if art, base := m.rangeArtifact(gpa, n); art != nil {
		m.recorder().CounterAdd("guestmem.digest.memo", 1)
		return art.RangeDigest(base, n), nil
	}
	m.recorder().CounterAdd("guestmem.digest.streamed", 1)
	m.recorder().CounterAdd("guestmem.digest.streamed_bytes", int64(n))
	h := sha256.New()
	for done := 0; done < n; {
		pn := (gpa + uint64(done)) / PageSize
		off := int((gpa + uint64(done)) % PageSize)
		chunk := PageSize - off
		if chunk > n-done {
			chunk = n - done
		}
		h.Write(m.pages[pn].readable()[off : off+chunk])
		done += chunk
	}
	h.Sum(sum[:0])
	return sum, nil
}

// HashRange returns SHA-256 of the bytes GuestRead(gpa, n, cbit) would
// return, without materializing the copy. When every page's state
// matches the mapping (the verifier hashing components it just copied
// private), the plain-text fast path applies — including the memoized
// artifact digests. Mismatched pages are transformed through a pooled
// scratch page and streamed.
func (m *Memory) HashRange(gpa uint64, n int, cbit bool) ([32]byte, error) {
	var sum [32]byte
	if err := m.check(gpa, n); err != nil {
		return sum, err
	}
	if cbit && m.rmp != nil {
		base, span := rmpSpan(gpa, n)
		if err := m.rmp.CheckGuestAccessRange(base, span, m.asid); err != nil {
			return sum, err
		}
	}
	allMatch := true
	for off := gpa &^ (PageSize - 1); off < gpa+uint64(n); off += PageSize {
		p := m.pages[off/PageSize]
		if (p != nil && p.encrypted) != cbit {
			allMatch = false
			break
		}
	}
	if allMatch {
		return m.PlainRangeDigest(gpa, n)
	}
	m.recorder().CounterAdd("guestmem.digest.transformed", 1)
	scratch := pagePool.Get().(*[]byte)
	defer pagePool.Put(scratch)
	h := sha256.New()
	for done := 0; done < n; {
		pn := (gpa + uint64(done)) / PageSize
		off := int((gpa + uint64(done)) % PageSize)
		chunk := PageSize - off
		if chunk > n-done {
			chunk = n - done
		}
		p := m.pages[pn]
		src := p.readable()
		if (p != nil && p.encrypted) != cbit {
			if err := m.cipherPageInto(*scratch, pn, src); err != nil {
				return sum, err
			}
			src = *scratch
		}
		h.Write(src[off : off+chunk])
		done += chunk
	}
	h.Sum(sum[:0])
	return sum, nil
}

// RangeView returns a zero-copy read-only view of the bytes
// GuestRead(gpa, n, cbit) would return, when the range aliases one
// interned artifact contiguously and every page's state matches the
// mapping. ok is false (with no error) when no sound view exists and
// the caller must fall back to GuestRead. The view is valid until the
// next write to the range.
func (m *Memory) RangeView(gpa uint64, n int, cbit bool) (view []byte, ok bool, err error) {
	art, base, err := m.ArtifactRange(gpa, n, cbit)
	if err != nil || art == nil {
		return nil, false, err
	}
	m.recorder().CounterAdd("guestmem.view.hit", 1)
	m.recorder().CounterAdd("guestmem.view.bytes", int64(n))
	return art.Bytes()[base : base+n], true, nil
}

// ArtifactRange resolves [gpa, gpa+n) to its backing artifact and base
// offset under the same soundness conditions as RangeView (single
// interned artifact, every page's state matching cbit, RMP access
// permitted). A nil artifact with nil error means no sound mapping
// exists. Callers use the handle to combine memoized digests across
// multiple ranges of the same artifact (the vmlinux streaming path).
func (m *Memory) ArtifactRange(gpa uint64, n int, cbit bool) (*artifact.Buf, int, error) {
	if err := m.check(gpa, n); err != nil {
		return nil, 0, err
	}
	if cbit && m.rmp != nil {
		base, span := rmpSpan(gpa, n)
		if err := m.rmp.CheckGuestAccessRange(base, span, m.asid); err != nil {
			return nil, 0, err
		}
	}
	for off := gpa &^ (PageSize - 1); off < gpa+uint64(n); off += PageSize {
		p := m.pages[off/PageSize]
		if (p != nil && p.encrypted) != cbit {
			return nil, 0, nil
		}
	}
	art, base := m.rangeArtifact(gpa, n)
	if art == nil {
		return nil, 0, nil
	}
	return art, base, nil
}

// LaunchUpdateFlip is the state-change half of LAUNCH_UPDATE_DATA: it
// flips [gpa, gpa+n) to private (assigned+validated under SNP) without
// materializing the plain text. The measurement half is
// PlainRangeDigest; psp.UpdateBatch runs the flips serially in virtual
// time and the digests across the host worker pool.
func (m *Memory) LaunchUpdateFlip(gpa uint64, n int) error {
	if err := m.check(gpa, n); err != nil {
		return err
	}
	if m.key == nil {
		return ErrNoKey
	}
	for off := gpa &^ (PageSize - 1); off < gpa+uint64(n); off += PageSize {
		p := m.getPage(off / PageSize)
		p.encrypted = true
	}
	if m.rmp != nil {
		base, span := rmpSpan(gpa, n)
		m.rmp.AssignValidatedRange(base, span, m.asid)
	}
	return nil
}

// PageExport is one resident page as the host sees it.
type PageExport struct {
	PN      uint64 // page number (gpa / PageSize)
	Data    []byte // PageSize bytes: plain text if shared, ciphertext if private
	Private bool
}

// ExportPages returns every resident page ordered by page number, with
// private pages encrypted exactly as HostRead would produce them. The
// per-page AES transforms run across the hostwork pool; the result is
// index-addressed and independent of worker count. Snapshot capture
// uses this instead of page-at-a-time HostRead.
func (m *Memory) ExportPages() ([]PageExport, error) {
	var pns []uint64
	anyPrivate := false
	for pn, p := range m.pages { // dense, so pns comes out sorted
		if p != nil && (p.data != nil || p.encrypted) {
			pns = append(pns, uint64(pn))
			anyPrivate = anyPrivate || p.encrypted
		}
	}
	if anyPrivate && m.key == nil {
		return nil, ErrNoKey
	}
	out := make([]PageExport, len(pns))
	hostwork.Do(len(pns), func(i int) {
		pn := pns[i]
		p := m.pages[pn]
		data := make([]byte, PageSize)
		if p.encrypted {
			m.cipherPageInto(data, pn, p.readable())
		} else {
			copy(data, p.readable())
		}
		out[i] = PageExport{PN: pn, Data: data, Private: p.encrypted}
	})
	return out, nil
}
