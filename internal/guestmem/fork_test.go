package guestmem

import (
	"bytes"
	"errors"
	"testing"
)

// forkDonor builds a donor memory with a mix of private and shared
// resident pages, as a booted guest would have.
func forkDonor(t *testing.T) *Memory {
	t.Helper()
	m := New(1 << 20)
	m.SetKey(key(7), 3)
	private := []byte("kernel text measured and encrypted at launch")
	if err := m.HostWrite(0x1000, private); err != nil {
		t.Fatal(err)
	}
	if err := m.LaunchUpdateFlip(0x1000, len(private)); err != nil {
		t.Fatal(err)
	}
	shared := []byte("shared staging area, host visible")
	if err := m.HostWrite(0x8000, shared); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestForkRoundTrip(t *testing.T) {
	donor := forkDonor(t)
	src, err := donor.ExportForkSource()
	if err != nil {
		t.Fatal(err)
	}
	if len(src.Pages()) == 0 {
		t.Fatal("fork source exported no pages")
	}

	child := New(1 << 20)
	child.SetKey(donor.Key(), 3)
	if err := child.AdoptFork(src); err != nil {
		t.Fatal(err)
	}

	// The fork sees the donor's exact contents, private and shared.
	for _, gpa := range []uint64{0x1000, 0x8000} {
		want, err := donor.GuestRead(gpa, 64, gpa == 0x1000)
		if err != nil {
			t.Fatal(err)
		}
		got, err := child.GuestRead(gpa, 64, gpa == 0x1000)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("fork guest view at %#x differs from donor", gpa)
		}
	}
	// Host-visible ciphertext is identical too: the cipher is
	// (key, asid, pn)-tweaked, and the fork shares all three.
	wantCT, err := donor.HostRead(0x1000, 64)
	if err != nil {
		t.Fatal(err)
	}
	gotCT, err := child.HostRead(0x1000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCT, wantCT) {
		t.Fatal("fork host-visible ciphertext differs from donor")
	}
}

func TestForkCoWIsolation(t *testing.T) {
	donor := forkDonor(t)
	src, err := donor.ExportForkSource()
	if err != nil {
		t.Fatal(err)
	}
	child := New(1 << 20)
	child.SetKey(donor.Key(), 3)
	if err := child.AdoptFork(src); err != nil {
		t.Fatal(err)
	}
	// A write in the fork must not leak into the donor (or the blob).
	if err := child.HostWrite(0x8000, []byte("forked write")); err != nil {
		t.Fatal(err)
	}
	donorView, err := donor.GuestRead(0x8000, 12, false)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(donorView, []byte("forked write")) {
		t.Fatal("fork write leaked into the donor: CoW break missing")
	}
}

func TestForkTamperDetected(t *testing.T) {
	donor := forkDonor(t)
	src, err := donor.ExportForkSource()
	if err != nil {
		t.Fatal(err)
	}
	// Host-side bit flip in the shared fork blob between capture and
	// adopt: the root digest re-check must refuse the fork.
	src.Blob().Corrupt(100, 0x40)
	child := New(1 << 20)
	child.SetKey(donor.Key(), 3)
	if err := child.AdoptFork(src); !errors.Is(err, ErrForkTampered) {
		t.Fatalf("AdoptFork after blob corruption = %v, want ErrForkTampered", err)
	}
}

func TestForkSizeAndKeyChecks(t *testing.T) {
	donor := forkDonor(t)
	src, err := donor.ExportForkSource()
	if err != nil {
		t.Fatal(err)
	}
	small := New(1 << 16)
	if err := small.AdoptFork(src); !errors.Is(err, ErrSize) {
		t.Fatalf("AdoptFork into smaller guest = %v, want ErrSize", err)
	}
	keyless := New(1 << 20)
	if err := keyless.AdoptFork(src); !errors.Is(err, ErrNoKey) {
		t.Fatalf("AdoptFork without key = %v, want ErrNoKey", err)
	}
}
