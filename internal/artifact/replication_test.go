package artifact

import (
	"crypto/sha256"
	"errors"
	"testing"
	"time"

	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/telemetry"
)

func blobKey(s string) BlobKey { return BlobKey(sha256.Sum256([]byte(s))) }

// Unit costs make virtual-time charges exact: 1 byte/sec means a
// transfer of n bytes takes n seconds plus latency.
func unitCost() TransferCost {
	return TransferCost{
		OriginLatency:     3 * time.Second,
		OriginBytesPerSec: 1,
		PeerLatency:       1 * time.Second,
		PeerBytesPerSec:   2,
	}
}

func TestFetchChargesOriginThenPeerThenLocal(t *testing.T) {
	eng := sim.NewEngine()
	r := NewReplicator(3, 4, unitCost(), nil)
	key := blobKey("kernel")
	r.Register(key, 10)

	var (
		srcs  []Source
		times []time.Duration
	)
	fetch := func(host int) {
		eng.Go("f", func(p *sim.Proc) {
			src, err := r.Fetch(p, host, key)
			if err != nil {
				t.Errorf("fetch host %d: %v", host, err)
			}
			srcs = append(srcs, src)
			times = append(times, p.Now().Duration())
		})
		eng.Run()
	}

	fetch(0) // origin: 3s latency + 10 bytes / 1 Bps = 13s
	fetch(1) // peer of host 0: 1s + 10/2 = 6s more
	fetch(1) // local, free

	want := []Source{SourceOrigin, SourcePeer, SourceLocal}
	for i, s := range srcs {
		if s != want[i] {
			t.Errorf("fetch %d source = %v, want %v", i, s, want[i])
		}
	}
	if times[0] != 13*time.Second {
		t.Errorf("origin fetch finished at %v, want 13s", times[0])
	}
	if times[1] != 13*time.Second+6*time.Second {
		t.Errorf("peer fetch finished at %v, want 19s", times[1])
	}
	if times[2] != times[1] {
		t.Errorf("local hit advanced time: %v -> %v", times[1], times[2])
	}

	st := r.Stats()
	if st.Total.OriginFetches != 1 || st.Total.PeerFetches != 1 || st.Total.LocalHits != 1 {
		t.Errorf("geography = %+v", st.Total)
	}
	if st.Total.OriginBytes != 10 || st.Total.PeerBytes != 10 {
		t.Errorf("bytes = origin %d peer %d, want 10/10", st.Total.OriginBytes, st.Total.PeerBytes)
	}
	if st.PerHost[0].OriginFetches != 1 || st.PerHost[1].PeerFetches != 1 {
		t.Errorf("per-host geography = %+v", st.PerHost)
	}
}

func TestFetchSingleFlightPerHost(t *testing.T) {
	eng := sim.NewEngine()
	r := NewReplicator(2, 4, unitCost(), nil)
	key := blobKey("initrd")
	r.Register(key, 1)

	var srcs []Source
	for i := 0; i < 3; i++ {
		eng.Go("f", func(p *sim.Proc) {
			src, err := r.Fetch(p, 0, key)
			if err != nil {
				t.Errorf("fetch: %v", err)
			}
			srcs = append(srcs, src)
		})
	}
	eng.Run()

	origins, locals := 0, 0
	for _, s := range srcs {
		switch s {
		case SourceOrigin:
			origins++
		case SourceLocal:
			locals++
		}
	}
	if origins != 1 || locals != 2 {
		t.Errorf("got %d origin / %d local fetches, want 1/2 (srcs=%v)", origins, locals, srcs)
	}
	st := r.Stats()
	if st.PerHost[0].Waits != 2 {
		t.Errorf("waits = %d, want 2", st.PerHost[0].Waits)
	}
	// Only one transfer must have been charged.
	if st.Total.OriginBytes != 1 {
		t.Errorf("origin bytes = %d, want 1", st.Total.OriginBytes)
	}
}

func TestFabricSerializesTransfers(t *testing.T) {
	eng := sim.NewEngine()
	// One fabric slot: two concurrent origin pulls of different blobs
	// must queue back-to-back.
	r := NewReplicator(2, 1, unitCost(), nil)
	k1, k2 := blobKey("a"), blobKey("b")
	r.Register(k1, 1)
	r.Register(k2, 1)

	var last time.Duration
	eng.Go("f1", func(p *sim.Proc) {
		r.Fetch(p, 0, k1)
	})
	eng.Go("f2", func(p *sim.Proc) {
		r.Fetch(p, 1, k2)
		last = p.Now().Duration()
	})
	eng.Run()

	// Each transfer is 3s + 1s = 4s; serialized on one slot → 8s total.
	if last != 8*time.Second {
		t.Errorf("second transfer finished at %v, want 8s", last)
	}
	if got := r.Fabric().Served(); got != 2 {
		t.Errorf("fabric served = %d, want 2", got)
	}
}

func TestPublishMakesPeerSource(t *testing.T) {
	eng := sim.NewEngine()
	r := NewReplicator(2, 2, unitCost(), nil)
	key := blobKey("warm-snapshot")
	// Not registered at origin: only host 0 publishes it locally.
	r.Publish(0, key, 4)

	if !r.Present(0, key) {
		t.Fatal("published blob not present on publisher")
	}
	if r.Present(1, key) {
		t.Fatal("published blob present on non-publisher")
	}

	var src Source
	eng.Go("f", func(p *sim.Proc) {
		var err error
		src, err = r.Fetch(p, 1, key)
		if err != nil {
			t.Errorf("fetch published blob: %v", err)
		}
	})
	eng.Run()
	if src != SourcePeer {
		t.Errorf("fetch of published blob = %v, want peer", src)
	}
}

func TestFetchUnknownBlob(t *testing.T) {
	eng := sim.NewEngine()
	r := NewReplicator(1, 1, unitCost(), nil)
	var err error
	eng.Go("f", func(p *sim.Proc) {
		_, err = r.Fetch(p, 0, blobKey("nope"))
	})
	eng.Run()
	if !errors.Is(err, ErrUnknownBlob) {
		t.Errorf("err = %v, want ErrUnknownBlob", err)
	}
}

func TestReplicationTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	eng := sim.NewEngine()
	r := NewReplicator(2, 2, unitCost(), reg)
	key := blobKey("counted")
	r.Register(key, 7)

	eng.Go("f", func(p *sim.Proc) {
		r.Fetch(p, 0, key) // origin
		r.Fetch(p, 0, key) // local
	})
	eng.Run()

	if got := reg.Counter("severifast_replication_fetch_total",
		telemetry.A("host", "h0"), telemetry.A("source", "origin")).Value(); got != 1 {
		t.Errorf("origin fetch counter = %d, want 1", got)
	}
	if got := reg.Counter("severifast_replication_fetch_total",
		telemetry.A("host", "h0"), telemetry.A("source", "local")).Value(); got != 1 {
		t.Errorf("local fetch counter = %d, want 1", got)
	}
	if got := reg.Counter("severifast_replication_bytes_total",
		telemetry.A("host", "h0"), telemetry.A("source", "origin")).Value(); got != 7 {
		t.Errorf("origin bytes counter = %d, want 7", got)
	}
}
