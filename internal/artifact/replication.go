// The replication layer extends the content-addressed intern store
// across hosts: a Replicator tracks, per simulated host, which blobs
// (kernel images, initrds, sealed warm snapshots) are locally present,
// and charges the virtual-time cost of moving a blob that is not. A
// fetch resolves against the nearest holder — the host itself (free),
// any peer host that already holds the blob (east-west transfer), or
// the origin registry (the slower north-south pull a cold datacenter
// pays). Transfers contend on a shared fabric resource, so a burst of
// image pulls serializes in virtual time exactly like a burst of PSP
// launches does.
//
// Because blobs are content-addressed, replication needs no
// invalidation: a blob either is the named bytes or it is not present.
// The per-host hit/fetch counters are the run's "cache-hit geography" —
// how much of the fleet's image traffic was served locally, laterally,
// or from origin.
package artifact

import (
	"errors"
	"fmt"
	"time"

	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/telemetry"
)

// BlobKey is the content address of a replicated blob (SHA-256 of its
// bytes — Buf.Digest for interned buffers).
type BlobKey [32]byte

// Source classifies where a Fetch was served from.
type Source int

// Fetch sources, nearest first.
const (
	// SourceLocal: the blob was already present on the host (or another
	// in-flight fetch for the same host completed while we waited).
	SourceLocal Source = iota
	// SourcePeer: copied from another host over the cluster fabric.
	SourcePeer
	// SourceOrigin: pulled from the origin registry.
	SourceOrigin
)

func (s Source) String() string {
	switch s {
	case SourceLocal:
		return "local"
	case SourcePeer:
		return "peer"
	case SourceOrigin:
		return "origin"
	}
	return fmt.Sprintf("source(%d)", int(s))
}

// TransferCost prices blob movement in virtual time: a fixed latency
// plus a bandwidth term per transfer. Peer (east-west) transfers are
// expected to be cheaper than origin (registry) pulls.
type TransferCost struct {
	OriginLatency     time.Duration
	OriginBytesPerSec float64
	PeerLatency       time.Duration
	PeerBytesPerSec   float64
}

// DefaultTransferCost models a 10 Gb/s registry path with a couple of
// milliseconds of front-end latency, and a faster, closer east-west
// fabric between hosts.
func DefaultTransferCost() TransferCost {
	return TransferCost{
		OriginLatency:     2 * time.Millisecond,
		OriginBytesPerSec: 1.25e9,
		PeerLatency:       200 * time.Microsecond,
		PeerBytesPerSec:   3.0e9,
	}
}

func (c TransferCost) origin(n int) time.Duration {
	return c.OriginLatency + perBytes(c.OriginBytesPerSec, n)
}

func (c TransferCost) peer(n int) time.Duration {
	return c.PeerLatency + perBytes(c.PeerBytesPerSec, n)
}

func perBytes(bytesPerSec float64, n int) time.Duration {
	if bytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bytesPerSec * float64(time.Second))
}

// GeoStats is one host's view of where its blob demand was served.
type GeoStats struct {
	// LocalHits counts fetches satisfied without any transfer.
	LocalHits int
	// Waits counts fetches that piggybacked on a transfer another boot
	// on the same host already had in flight (counted as LocalHits too).
	Waits int
	// PeerFetches/OriginFetches count actual transfers by source.
	PeerFetches   int
	OriginFetches int
	// PeerBytes/OriginBytes are the transferred volumes.
	PeerBytes   int64
	OriginBytes int64
}

// ReplStats aggregates geography across hosts.
type ReplStats struct {
	PerHost []GeoStats
	Total   GeoStats
}

func (s GeoStats) add(o GeoStats) GeoStats {
	s.LocalHits += o.LocalHits
	s.Waits += o.Waits
	s.PeerFetches += o.PeerFetches
	s.OriginFetches += o.OriginFetches
	s.PeerBytes += o.PeerBytes
	s.OriginBytes += o.OriginBytes
	return s
}

// blob is one content-addressed object's replication state.
type blob struct {
	size     int
	origin   bool // held by the origin registry
	present  []bool
	holders  int           // hosts with present[i] == true
	fetching []*sim.Signal // per-host in-flight fetch, nil when none
}

// Replicator is the cross-host distribution directory. It is part of
// the simulation model: all methods that move virtual time take a
// *sim.Proc, and all state is touched only by processes of one engine
// (which run one at a time), so it needs no locking — sharing a
// Replicator across engines is a caller bug.
type Replicator struct {
	hosts  int
	fabric *sim.Resource
	cost   TransferCost
	blobs  map[BlobKey]*blob
	stats  []GeoStats
	reg    *telemetry.Registry
}

// ErrUnknownBlob reports a fetch for a key nobody registered.
var ErrUnknownBlob = errors.New("artifact: blob not registered with any source")

// NewReplicator builds a directory for the given host count.
// fabricSlots bounds concurrent transfers cluster-wide (the shared
// network fabric); cost prices each transfer. reg, when non-nil,
// receives per-host fetch/byte counters (nil is inert).
func NewReplicator(hosts, fabricSlots int, cost TransferCost, reg *telemetry.Registry) *Replicator {
	if hosts < 1 {
		panic("artifact: replicator needs at least one host")
	}
	if fabricSlots < 1 {
		fabricSlots = 1
	}
	return &Replicator{
		hosts:  hosts,
		fabric: sim.NewResource("fabric", fabricSlots),
		cost:   cost,
		blobs:  make(map[BlobKey]*blob),
		stats:  make([]GeoStats, hosts),
		reg:    reg,
	}
}

// Fabric exposes the transfer resource (for utilization reporting).
func (r *Replicator) Fabric() *sim.Resource { return r.fabric }

// Register announces a blob held by the origin registry. Registering
// the same key again (size must match) is a no-op, so content-identical
// images across specs share one entry.
func (r *Replicator) Register(key BlobKey, size int) {
	b := r.blobs[key]
	if b == nil {
		b = r.newBlob(size)
		r.blobs[key] = b
	}
	b.origin = true
}

// Publish announces a blob produced locally on a host (a captured warm
// snapshot) without any transfer: the host becomes a peer source.
func (r *Replicator) Publish(host int, key BlobKey, size int) {
	b := r.blobs[key]
	if b == nil {
		b = r.newBlob(size)
		r.blobs[key] = b
	}
	if !b.present[host] {
		b.present[host] = true
		b.holders++
	}
}

func (r *Replicator) newBlob(size int) *blob {
	return &blob{
		size:     size,
		present:  make([]bool, r.hosts),
		fetching: make([]*sim.Signal, r.hosts),
	}
}

// Present reports whether the blob is already local to host — the
// signal cache-affinity placement reads. In-flight fetches do not
// count.
func (r *Replicator) Present(host int, key BlobKey) bool {
	b := r.blobs[key]
	return b != nil && b.present[host]
}

// Fetch makes the blob local to host, charging the transfer in virtual
// time, and reports where it was served from. Fetches of a blob already
// present are free local hits. Concurrent fetches of the same blob for
// the same host single-flight: the losers park until the winner's
// transfer lands and then count a (free) waited hit. Transfers occupy a
// fabric slot for their duration, so replication storms queue.
func (r *Replicator) Fetch(p *sim.Proc, host int, key BlobKey) (Source, error) {
	b := r.blobs[key]
	if b == nil {
		return SourceLocal, fmt.Errorf("%w: %x", ErrUnknownBlob, key[:6])
	}
	for {
		if b.present[host] {
			r.stats[host].LocalHits++
			r.count(host, SourceLocal, 0)
			return SourceLocal, nil
		}
		sig := b.fetching[host]
		if sig == nil {
			break
		}
		r.stats[host].Waits++
		sig.Wait(p)
	}
	src := SourceOrigin
	d := r.cost.origin(b.size)
	if b.holders > 0 {
		src = SourcePeer
		d = r.cost.peer(b.size)
	} else if !b.origin {
		return SourceLocal, fmt.Errorf("%w: %x has no holder and no origin", ErrUnknownBlob, key[:6])
	}
	sig := sim.NewSignal()
	b.fetching[host] = sig
	r.fabric.UseLabeled(p, d, "xfer-"+src.String())
	b.present[host] = true
	b.holders++
	b.fetching[host] = nil
	sig.Fire(p.Engine())
	switch src {
	case SourcePeer:
		r.stats[host].PeerFetches++
		r.stats[host].PeerBytes += int64(b.size)
	case SourceOrigin:
		r.stats[host].OriginFetches++
		r.stats[host].OriginBytes += int64(b.size)
	}
	r.count(host, src, b.size)
	return src, nil
}

func (r *Replicator) count(host int, src Source, bytes int) {
	if r.reg == nil {
		return
	}
	h := telemetry.A("host", fmt.Sprintf("h%d", host))
	s := telemetry.A("source", src.String())
	r.reg.Counter("severifast_replication_fetch_total", h, s).Inc()
	if bytes > 0 {
		r.reg.Counter("severifast_replication_bytes_total", h, s).Add(int64(bytes))
	}
}

// Stats snapshots per-host and total geography.
func (r *Replicator) Stats() ReplStats {
	out := ReplStats{PerHost: append([]GeoStats(nil), r.stats...)}
	for _, g := range out.PerHost {
		out.Total = out.Total.add(g)
	}
	return out
}
