// Package artifact is the content-addressed shared-artifact layer: it
// interns immutable byte buffers (built kernel images, initrds,
// compressed payloads) and memoizes the expensive facts derived from
// them — SHA-256 digests of the whole buffer or of subranges, and
// derived artifacts such as decompressed payloads or parsed ELF
// segment tables.
//
// The point is the fleet hot path: sixteen boots of the same measured
// image stage the same kernel bytes, hash the same ranges, and
// decompress the same payload. With interning those all collapse to
// one canonical copy and one computation; every further boot is a
// pointer-compare and a map hit.
//
// Identity and soundness: a buffer is interned by (base pointer, len).
// The intern table holds the buffer alive, so its address can never be
// recycled for different bytes while the entry exists; interned buffers
// are immutable by contract (guestmem aliases them copy-on-write and
// breaks the alias before any write). Digest memoization therefore
// never returns a digest for bytes other than the ones presented: a
// slice that is not pointer-identical to an interned buffer simply
// misses the table and is hashed for real.
package artifact

import (
	"crypto/sha256"
	"reflect"
	"sync"

	"github.com/severifast/severifast/internal/telemetry"
)

// maxInterned caps the intern table. Fleet workloads intern a handful
// of buffers per image (kernel, initrd, payload, vmlinux); the cap only
// exists so adversarial or test churn cannot grow the table without
// bound. Past the cap, Intern still returns a working *Buf with all
// per-buffer memoization — it just is not registered for re-lookup.
const maxInterned = 4096

// Buf is an interned immutable buffer with memoized digests and a
// derived-artifact cache.
type Buf struct {
	data []byte

	// mu guards full/fullOK. The whole-buffer digest used to be a
	// sync.Once, but Corrupt must be able to invalidate it, so it is a
	// mutex-guarded memo like the range digests.
	mu     sync.Mutex
	full   [32]byte
	fullOK bool

	sub     sync.Map // rangeKey -> [32]byte
	derived sync.Map // string -> *derivedEntry
}

type rangeKey struct{ off, n int }

type derivedEntry struct {
	once sync.Once
	val  any
	err  error
}

var intern struct {
	mu sync.Mutex
	m  map[bufKey]*Buf
}

type bufKey struct {
	ptr uintptr
	len int
}

func keyOf(data []byte) bufKey {
	return bufKey{ptr: reflect.ValueOf(data).Pointer(), len: len(data)}
}

// Intern registers data as an immutable artifact and returns its
// canonical *Buf. Repeated calls with the same backing array and length
// return the same *Buf. The caller must never mutate data afterwards.
// Empty slices return nil.
func Intern(data []byte) *Buf {
	if len(data) == 0 {
		return nil
	}
	k := keyOf(data)
	intern.mu.Lock()
	defer intern.mu.Unlock()
	if intern.m == nil {
		intern.m = make(map[bufKey]*Buf)
	}
	if b, ok := intern.m[k]; ok {
		return b
	}
	b := &Buf{data: data}
	if len(intern.m) < maxInterned {
		intern.m[k] = b
		telemetry.HostCounterAdd("artifact.interned", 1)
		telemetry.HostCounterAdd("artifact.interned_bytes", int64(len(data)))
	}
	return b
}

// Of wraps data in an unregistered *Buf: full per-buffer memoization
// (digests, ranges, derived cache) without an intern-table entry. For
// buffers whose canonical handle travels explicitly — a launch plan's
// staging blob carried in Region.Art, aliased into guest pages as
// provenance — pointer re-lookup is unnecessary, and keeping them out
// of the table lets per-boot plans come and go without growing it.
// The caller must never mutate data afterwards. Empty slices return nil.
func Of(data []byte) *Buf {
	if len(data) == 0 {
		return nil
	}
	return &Buf{data: data}
}

// Lookup returns the interned *Buf for data, or nil if this exact slice
// (same backing array, same length) was never interned. Callers that
// must not grow the table — e.g. a per-boot cache key — use Lookup and
// fall back to content hashing on a miss.
func Lookup(data []byte) *Buf {
	if len(data) == 0 {
		return nil
	}
	intern.mu.Lock()
	defer intern.mu.Unlock()
	return intern.m[keyOf(data)]
}

// Bytes returns the underlying buffer. Read-only.
func (b *Buf) Bytes() []byte { return b.data }

// Len returns the buffer length.
func (b *Buf) Len() int { return len(b.data) }

// Digest returns SHA-256 of the whole buffer, computed once and
// invalidated by Corrupt.
func (b *Buf) Digest() [32]byte {
	b.mu.Lock()
	if b.fullOK {
		sum := b.full
		b.mu.Unlock()
		telemetry.HostCounterAdd("artifact.digest.hit", 1)
		telemetry.HostCounterAdd("artifact.digest.bytes_spared", int64(len(b.data)))
		return sum
	}
	b.mu.Unlock()
	// Hash outside the lock so concurrent first callers of different
	// buffers (the hostwork pool) do not serialize; racing callers of the
	// same buffer compute the same sum twice, which is merely wasteful.
	sum := sha256.Sum256(b.data)
	b.mu.Lock()
	b.full, b.fullOK = sum, true
	b.mu.Unlock()
	telemetry.HostCounterAdd("artifact.digest.miss", 1)
	telemetry.HostCounterAdd("artifact.digest.bytes_hashed", int64(len(b.data)))
	return sum
}

// RangeDigest returns SHA-256 of data[off:off+n], memoized per range.
// Panics if the range is out of bounds, matching slice semantics.
func (b *Buf) RangeDigest(off, n int) [32]byte {
	if off == 0 && n == len(b.data) {
		return b.Digest()
	}
	k := rangeKey{off, n}
	if v, ok := b.sub.Load(k); ok {
		telemetry.HostCounterAdd("artifact.digest.hit", 1)
		telemetry.HostCounterAdd("artifact.digest.bytes_spared", int64(n))
		return v.([32]byte)
	}
	sum := sha256.Sum256(b.data[off : off+n])
	b.sub.Store(k, sum)
	telemetry.HostCounterAdd("artifact.digest.miss", 1)
	telemetry.HostCounterAdd("artifact.digest.bytes_hashed", int64(n))
	return sum
}

// Derived returns the artifact derived from this buffer under key,
// building it at most once. Concurrent callers block until the single
// build finishes; a build error is memoized too (the same input will
// fail the same way every time).
func (b *Buf) Derived(key string, build func() (any, error)) (any, error) {
	v, loaded := b.derived.Load(key)
	if !loaded {
		v, loaded = b.derived.LoadOrStore(key, &derivedEntry{})
	}
	e := v.(*derivedEntry)
	hit := true
	e.once.Do(func() {
		hit = false
		e.val, e.err = build()
		telemetry.HostCounterAdd("artifact.derived.miss", 1)
	})
	if hit && loaded {
		telemetry.HostCounterAdd("artifact.derived.hit", 1)
	}
	return e.val, e.err
}

// Corrupt flips data[off] with the given XOR mask and invalidates every
// memoized fact about the buffer: the whole-buffer digest, all range
// digests, and all derived artifacts. It models a hostile host
// scribbling on a canonical buffer at rest — the tampering the chaos
// engine's artifact family injects — and exists so that memoized
// digests can never be served for bytes the buffer no longer holds:
// after Corrupt, every digest recomputes from the actual (tampered)
// contents.
//
// Corrupt deliberately violates the immutability contract, so callers
// own the fallout: guest pages aliasing this buffer observe the
// tampered bytes exactly as a physical machine would. It must not race
// with in-flight digest or Derived calls; the chaos engine applies it
// between simulation events, when no host-side hashing is running.
func (b *Buf) Corrupt(off int, mask byte) {
	if mask == 0 {
		return
	}
	b.data[off] ^= mask
	b.mu.Lock()
	b.fullOK = false
	b.mu.Unlock()
	b.sub.Range(func(k, _ any) bool {
		b.sub.Delete(k)
		return true
	})
	b.derived.Range(func(k, _ any) bool {
		b.derived.Delete(k)
		return true
	})
	telemetry.HostCounterAdd("artifact.corrupted", 1)
}

// ResetForTest drops the intern table so tests start clean. Existing
// *Buf values keep working; they are just no longer re-lookupable.
func ResetForTest() {
	intern.mu.Lock()
	intern.m = nil
	intern.mu.Unlock()
}
