// Package sev holds types shared across the SEV stack: feature levels,
// guest policy, the launch-digest page-info records, and the GHCB MSR
// protocol values used for early-boot timing events.
package sev

import "fmt"

// Level is the SEV feature generation a guest is launched with.
type Level int

// Feature generations. SNP is a superset of ES, which is a superset of
// base SEV (paper §2.2).
const (
	None Level = iota // non-confidential guest
	SEV               // memory encryption
	ES                // + encrypted register state
	SNP               // + RMP integrity protection
)

func (l Level) String() string {
	switch l {
	case None:
		return "none"
	case SEV:
		return "sev"
	case ES:
		return "sev-es"
	case SNP:
		return "sev-snp"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// ParseLevel converts a string flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "none", "":
		return None, nil
	case "sev":
		return SEV, nil
	case "sev-es", "es":
		return ES, nil
	case "sev-snp", "snp":
		return SNP, nil
	}
	return None, fmt.Errorf("sev: unknown level %q", s)
}

// Encrypted reports whether guests at this level have encrypted memory.
func (l Level) Encrypted() bool { return l >= SEV }

// HasRMP reports whether this level enforces the reverse map table.
func (l Level) HasRMP() bool { return l == SNP }

// Policy is the guest policy included in LAUNCH_START and reflected in the
// attestation report. A mismatch between the policy the guest owner
// expects and the one in the report fails attestation.
type Policy struct {
	NoDebug       bool // host may not decrypt guest memory for debugging
	NoKeySharing  bool // guest key may not be shared with another guest
	ESRequired    bool // guest must run with encrypted state
	MinABIMajor   uint8
	MinABIMinor   uint8
	SingleSocket  bool
	SMTProhibited bool
}

// DefaultPolicy is the policy all experiments launch with.
func DefaultPolicy() Policy {
	return Policy{NoDebug: true, NoKeySharing: true, ESRequired: true, MinABIMajor: 1}
}

// Encode packs the policy into its ABI bit layout (used in measurements
// and reports, so it must be deterministic).
func (p Policy) Encode() uint64 {
	var v uint64
	if p.NoDebug {
		v |= 1 << 0
	}
	if p.NoKeySharing {
		v |= 1 << 1
	}
	if p.ESRequired {
		v |= 1 << 2
	}
	if p.SingleSocket {
		v |= 1 << 3
	}
	if p.SMTProhibited {
		v |= 1 << 4
	}
	v |= uint64(p.MinABIMinor) << 8
	v |= uint64(p.MinABIMajor) << 16
	return v
}

// DecodePolicy unpacks Encode's layout.
func DecodePolicy(v uint64) Policy {
	return Policy{
		NoDebug:       v&(1<<0) != 0,
		NoKeySharing:  v&(1<<1) != 0,
		ESRequired:    v&(1<<2) != 0,
		SingleSocket:  v&(1<<3) != 0,
		SMTProhibited: v&(1<<4) != 0,
		MinABIMinor:   uint8(v >> 8),
		MinABIMajor:   uint8(v >> 16),
	}
}

// PageType tags a LAUNCH_UPDATE region in the digest chain, mirroring the
// SNP ABI's page-info types.
type PageType uint8

// Page types contributing to the launch digest.
const (
	PageNormal  PageType = 1 // guest code/data
	PageVMSA    PageType = 2 // vCPU state (SEV-ES and up)
	PageZero    PageType = 3
	PageSecrets PageType = 5
	PageCPUID   PageType = 6
)

// GHCB MSR protocol: magic values the guest writes to the GHCB MSR, which
// the VMM always intercepts. The paper's methodology (§6.1) uses these
// for timing events before #VC handlers are installed.
const (
	GHCBTimingEventBase uint64 = 0x53_56_46_00 // "SVF" + event id
)

// TimingEvent ids written via the GHCB MSR / debug port by guest-side
// stages. The trace package maps them to span boundaries.
type TimingEvent uint8

// Event points on the boot path, in order of occurrence.
const (
	EvGuestEntry     TimingEvent = iota + 1 // first instruction in guest
	EvVerifierStart                         // boot verifier begins
	EvVerifierDone                          // components verified & loaded
	EvBootstrapStart                        // bzImage loader begins
	EvKernelEntry                           // vmlinux entry point
	EvInitExec                              // /sbin/init executed
	EvAttestStart                           // attestation begins
	EvAttestDone                            // secret received
	EvFirmwareSEC                           // OVMF phase boundaries
	EvFirmwarePEI
	EvFirmwareDXE
	EvFirmwareBDS
)

// MSRValue encodes a timing event as a GHCB MSR write value.
func (e TimingEvent) MSRValue() uint64 { return GHCBTimingEventBase | uint64(e) }

// EventFromMSR decodes an MSR value; ok is false for non-timing writes.
func EventFromMSR(v uint64) (TimingEvent, bool) {
	if v&^uint64(0xFF) != GHCBTimingEventBase {
		return 0, false
	}
	return TimingEvent(v & 0xFF), true
}
