package sev

import "testing"

func TestLevelOrdering(t *testing.T) {
	if !(None < SEV && SEV < ES && ES < SNP) {
		t.Fatal("levels must be ordered none < sev < es < snp")
	}
	if None.Encrypted() {
		t.Fatal("none is not encrypted")
	}
	for _, l := range []Level{SEV, ES, SNP} {
		if !l.Encrypted() {
			t.Fatalf("%v should be encrypted", l)
		}
	}
	if SEV.HasRMP() || ES.HasRMP() {
		t.Fatal("only SNP has an RMP")
	}
	if !SNP.HasRMP() {
		t.Fatal("SNP must have an RMP")
	}
}

func TestLevelStrings(t *testing.T) {
	cases := map[Level]string{None: "none", SEV: "sev", ES: "sev-es", SNP: "sev-snp"}
	for l, want := range cases {
		if l.String() != want {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), want)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Level
	}{
		{"none", None}, {"", None}, {"sev", SEV}, {"es", ES},
		{"sev-es", ES}, {"snp", SNP}, {"sev-snp", SNP},
	} {
		got, err := ParseLevel(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseLevel(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseLevel("tdx"); err == nil {
		t.Fatal("unknown level accepted")
	}
}

func TestPolicyRoundTrip(t *testing.T) {
	p := Policy{NoDebug: true, ESRequired: true, MinABIMajor: 1, MinABIMinor: 51, SMTProhibited: true}
	got := DecodePolicy(p.Encode())
	if got != p {
		t.Fatalf("round trip: %+v != %+v", got, p)
	}
}

func TestPolicyEncodingDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for _, p := range []Policy{
		{}, {NoDebug: true}, {NoKeySharing: true}, {ESRequired: true},
		{SingleSocket: true}, {SMTProhibited: true}, {MinABIMajor: 1}, {MinABIMinor: 1},
	} {
		v := p.Encode()
		if seen[v] {
			t.Fatalf("policy %+v collides at %#x", p, v)
		}
		seen[v] = true
	}
}

func TestDefaultPolicy(t *testing.T) {
	p := DefaultPolicy()
	if !p.NoDebug || !p.NoKeySharing || !p.ESRequired {
		t.Fatal("default policy must forbid debug and key sharing and require ES")
	}
}

func TestTimingEventMSRRoundTrip(t *testing.T) {
	for e := EvGuestEntry; e <= EvFirmwareBDS; e++ {
		got, ok := EventFromMSR(e.MSRValue())
		if !ok || got != e {
			t.Fatalf("event %d: round trip gave %d, %v", e, got, ok)
		}
	}
}

func TestEventFromMSRRejectsOtherWrites(t *testing.T) {
	for _, v := range []uint64{0, 0xdeadbeef, GHCBTimingEventBase ^ 0x100} {
		if _, ok := EventFromMSR(v); ok {
			t.Fatalf("non-timing MSR value %#x decoded as event", v)
		}
	}
}
