// Package pagetable builds the x86-64 identity-mapped page tables an SEV
// microVM guest boots with: 1 GiB mapped with 2 MiB pages through a
// PML4 -> PDPT -> PD chain, with the encryption C-bit set in every entry
// that maps encrypted memory (paper §2.4, §4.2).
//
// The boot verifier generates these in C-bit memory (implicitly encrypting
// them); the pre-encryption ablation has the VMM generate them host-side
// and LAUNCH_UPDATE them instead. Both paths use this package, and tests
// walk the structure to prove the mappings and C-bits are real.
package pagetable

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	entrySize = 8
	// PDSize is the page directory covering 1 GiB with 2 MiB pages — the
	// "4 KiB" the paper's Fig. 7 lists as the page-table structure size.
	PDSize = 4096
	// TotalSize includes the PML4 and PDPT pages above the PD.
	TotalSize = 3 * 4096

	flagPresent = 1 << 0
	flagWrite   = 1 << 1
	flagHuge    = 1 << 7 // PS bit in the PD entry: 2 MiB page

	// DefaultCBit is the C-bit position reported by CPUID 0x8000001F on
	// EPYC 7003 (Milan) parts.
	DefaultCBit = 51
)

// Config parameterizes table construction.
type Config struct {
	// Base is the guest-physical address where the PML4 page lives; the
	// PDPT and PD follow at Base+0x1000 and Base+0x2000.
	Base uint64
	// MapSize is how much memory to identity-map (rounded up to 2 MiB).
	MapSize uint64
	// CBit is the bit position of the encryption bit; <= 0 means
	// DefaultCBit.
	CBit int
	// SetCBit controls whether entries carry the C-bit (true for SEV
	// guests; false for the non-SEV boot path).
	SetCBit bool
}

// ErrNotMapped reports a walk through a non-present entry.
var ErrNotMapped = errors.New("pagetable: address not mapped")

// Build returns the three physical pages (PML4, PDPT, PD) as one
// TotalSize-byte buffer to be placed at cfg.Base.
func Build(cfg Config) []byte {
	cbit := cfg.CBit
	if cbit <= 0 {
		cbit = DefaultCBit
	}
	var enc uint64
	if cfg.SetCBit {
		enc = 1 << uint(cbit)
	}
	out := make([]byte, TotalSize)
	le := binary.LittleEndian

	pml4 := out[0:4096]
	pdpt := out[4096:8192]
	pd := out[8192:12288]

	// PML4[0] -> PDPT. Table pointers also carry the C-bit: the tables
	// themselves live in encrypted memory.
	le.PutUint64(pml4[0:], (cfg.Base+0x1000)|flagPresent|flagWrite|enc)
	// PDPT[0] -> PD.
	le.PutUint64(pdpt[0:], (cfg.Base+0x2000)|flagPresent|flagWrite|enc)

	mapped := (cfg.MapSize + (2 << 20) - 1) &^ ((2 << 20) - 1)
	if mapped > 1<<30 {
		mapped = 1 << 30 // one PD covers 1 GiB
	}
	for i := uint64(0); i*(2<<20) < mapped; i++ {
		le.PutUint64(pd[i*entrySize:], i*(2<<20)|flagPresent|flagWrite|flagHuge|enc)
	}
	return out
}

// Walk resolves vaddr through a table built by Build (passed as the raw
// TotalSize bytes at cfg.Base). It returns the physical address and
// whether the leaf entry had the C-bit set.
func Walk(table []byte, cfg Config, vaddr uint64) (pa uint64, cbitSet bool, err error) {
	if len(table) < TotalSize {
		return 0, false, fmt.Errorf("pagetable: table truncated (%d bytes)", len(table))
	}
	cbit := cfg.CBit
	if cbit <= 0 {
		cbit = DefaultCBit
	}
	cmask := uint64(1) << uint(cbit)
	addrMask := uint64(0x000F_FFFF_FFFF_F000) &^ cmask
	le := binary.LittleEndian

	pml4Idx := (vaddr >> 39) & 0x1FF
	pdptIdx := (vaddr >> 30) & 0x1FF
	pdIdx := (vaddr >> 21) & 0x1FF

	pml4e := le.Uint64(table[pml4Idx*entrySize:])
	if pml4e&flagPresent == 0 {
		return 0, false, fmt.Errorf("%w: PML4[%d]", ErrNotMapped, pml4Idx)
	}
	if pml4e&addrMask != cfg.Base+0x1000 {
		return 0, false, fmt.Errorf("pagetable: PML4 points outside table (%#x)", pml4e&addrMask)
	}
	pdpte := le.Uint64(table[4096+pdptIdx*entrySize:])
	if pdpte&flagPresent == 0 {
		return 0, false, fmt.Errorf("%w: PDPT[%d]", ErrNotMapped, pdptIdx)
	}
	pde := le.Uint64(table[8192+pdIdx*entrySize:])
	if pde&flagPresent == 0 {
		return 0, false, fmt.Errorf("%w: PD[%d]", ErrNotMapped, pdIdx)
	}
	if pde&flagHuge == 0 {
		return 0, false, errors.New("pagetable: expected 2 MiB leaf")
	}
	base := pde & addrMask &^ ((2 << 20) - 1)
	return base + vaddr&((2<<20)-1), pde&cmask != 0, nil
}

// CBitFromCPUID models the two-cpuid-instruction discovery the boot
// verifier performs (paper §5): leaf 0x8000001F EAX bit 1 advertises SEV,
// EBX[5:0] gives the C-bit position. The VMM provides the leaf values; the
// verifier calls this.
func CBitFromCPUID(eax, ebx uint32) (enabled bool, position int) {
	return eax&(1<<1) != 0, int(ebx & 0x3F)
}

// GeneratorCodeSize is the size of the verifier code that builds these
// tables (Fig. 7's 2.4 KiB "code size" for page tables).
const GeneratorCodeSize = 2400
