package pagetable

import (
	"testing"
	"testing/quick"
)

func cfg(setC bool) Config {
	return Config{Base: 0x9000, MapSize: 1 << 30, SetCBit: setC}
}

func TestBuildSize(t *testing.T) {
	table := Build(cfg(true))
	if len(table) != TotalSize {
		t.Fatalf("table %d bytes, want %d", len(table), TotalSize)
	}
}

func TestIdentityMapping(t *testing.T) {
	table := Build(cfg(true))
	for _, va := range []uint64{0, 0x1000, 0x200000, 0x12345678, 1<<30 - 1} {
		pa, _, err := Walk(table, cfg(true), va)
		if err != nil {
			t.Fatalf("walk %#x: %v", va, err)
		}
		if pa != va {
			t.Fatalf("walk %#x resolved to %#x; identity map broken", va, pa)
		}
	}
}

func TestCBitSetEverywhere(t *testing.T) {
	table := Build(cfg(true))
	for va := uint64(0); va < 1<<30; va += 64 << 20 {
		_, cbit, err := Walk(table, cfg(true), va)
		if err != nil {
			t.Fatal(err)
		}
		if !cbit {
			t.Fatalf("C-bit missing in mapping of %#x", va)
		}
	}
}

func TestCBitClearForNonSEV(t *testing.T) {
	table := Build(cfg(false))
	_, cbit, err := Walk(table, cfg(false), 0x200000)
	if err != nil {
		t.Fatal(err)
	}
	if cbit {
		t.Fatal("non-SEV table has C-bit set")
	}
}

func TestPartialMapSize(t *testing.T) {
	c := Config{Base: 0, MapSize: 256 << 20, SetCBit: true}
	table := Build(c)
	if _, _, err := Walk(table, c, 255<<20); err != nil {
		t.Fatalf("mapped address failed: %v", err)
	}
	if _, _, err := Walk(table, c, 512<<20); err == nil {
		t.Fatal("address beyond MapSize resolved")
	}
}

func TestMapSizeRoundsUpTo2MiB(t *testing.T) {
	c := Config{Base: 0, MapSize: 3 << 20, SetCBit: false} // 1.5 huge pages
	table := Build(c)
	if _, _, err := Walk(table, c, 3<<20+100); err != nil {
		t.Fatalf("round-up region not mapped: %v", err)
	}
}

func TestWalkUnmappedHighAddress(t *testing.T) {
	table := Build(cfg(true))
	if _, _, err := Walk(table, cfg(true), 1<<39); err == nil {
		t.Fatal("PML4[1] walk should fail: only entry 0 is populated")
	}
}

func TestCustomCBitPosition(t *testing.T) {
	c := Config{Base: 0, MapSize: 1 << 30, SetCBit: true, CBit: 47}
	table := Build(c)
	pa, cbit, err := Walk(table, c, 0x400000)
	if err != nil {
		t.Fatal(err)
	}
	if !cbit || pa != 0x400000 {
		t.Fatalf("custom C-bit walk: pa=%#x cbit=%v", pa, cbit)
	}
	// Walking with the wrong C-bit position must not report the bit.
	_, wrongCbit, err := Walk(table, Config{Base: 0, MapSize: 1 << 30, CBit: 51}, 0x400000)
	if err == nil && wrongCbit {
		t.Fatal("C-bit visible at wrong position")
	}
}

func TestCBitFromCPUID(t *testing.T) {
	// EPYC Milan: EAX bit 1 set, EBX[5:0] = 51.
	on, pos := CBitFromCPUID(0b10, 51)
	if !on || pos != 51 {
		t.Fatalf("CPUID decode: on=%v pos=%d", on, pos)
	}
	off, _ := CBitFromCPUID(0, 51)
	if off {
		t.Fatal("SEV reported enabled with EAX bit clear")
	}
}

func TestQuickIdentityProperty(t *testing.T) {
	table := Build(cfg(true))
	f := func(va uint32) bool {
		v := uint64(va) % (1 << 30)
		pa, cbit, err := Walk(table, cfg(true), v)
		return err == nil && pa == v && cbit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPDSizeMatchesFig7(t *testing.T) {
	// Fig. 7: "page tables" struct size 4 KiB (the PD mapping 1 GiB with
	// 2 MiB pages), generator code ~2.4 KiB.
	if PDSize != 4096 {
		t.Fatalf("PDSize = %d", PDSize)
	}
	if GeneratorCodeSize < 2000 || GeneratorCodeSize > 3000 {
		t.Fatalf("GeneratorCodeSize = %d, want ~2.4K", GeneratorCodeSize)
	}
}
