package telemetry

// Host-time statistics: wall-clock stage timings, cache hit/miss
// counters, and buffer-pool stats for the host-performance layer
// (parallel measurement pipeline, shared-artifact CoW memory).
//
// These deliberately live OUTSIDE the virtual-time Registry. The
// Registry's exports are stamped from sim.Time and are required to be
// byte-identical across same-seed runs; host wall-clock readings are
// not deterministic and must never leak into those exports. Host stats
// get their own snapshot API and exporter instead.
//
// Stats are recorded into a HostRecorder. Each kvm.Host owns one, so
// two hosts in the same process never interleave counters; the
// package-level functions delegate to DefaultHostRecorder for code
// that has no host in scope (the artifact intern table is process-wide
// by design and stays on the default recorder).

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// HostRecorder accumulates host-side wall-clock stage timings and
// counters. The zero value is not usable; call NewHostRecorder.
type HostRecorder struct {
	mu       sync.Mutex
	stageNS  map[string]int64
	stageN   map[string]int64
	counters map[string]int64
}

// NewHostRecorder returns an empty recorder.
func NewHostRecorder() *HostRecorder {
	return &HostRecorder{
		stageNS:  map[string]int64{},
		stageN:   map[string]int64{},
		counters: map[string]int64{},
	}
}

// DefaultHostRecorder receives stats from code with no host in scope:
// the package-level HostStage/HostCounterAdd helpers and process-wide
// subsystems such as the artifact intern table.
var DefaultHostRecorder = NewHostRecorder()

// Stage records one wall-clock timing for a named pipeline stage.
// Typical use: defer rec.Stage("psp.fold", time.Now()).
func (r *HostRecorder) Stage(name string, start time.Time) {
	d := time.Since(start)
	r.mu.Lock()
	r.stageNS[name] += d.Nanoseconds()
	r.stageN[name]++
	r.mu.Unlock()
}

// CounterAdd bumps a named host-side counter (cache hits, pool reuses,
// bytes spared, ...).
func (r *HostRecorder) CounterAdd(name string, n int64) {
	r.mu.Lock()
	r.counters[name] += n
	r.mu.Unlock()
}

// Reset zeroes all stages and counters. Benchmarks call it after
// warm-up so snapshots cover only the measured window.
func (r *HostRecorder) Reset() {
	r.mu.Lock()
	r.stageNS = map[string]int64{}
	r.stageN = map[string]int64{}
	r.counters = map[string]int64{}
	r.mu.Unlock()
}

// Snapshot returns copies of the cumulative stage timings (ns, plus a
// "<stage>.calls" entry) and the counters.
func (r *HostRecorder) Snapshot() (stages map[string]int64, counters map[string]int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	stages = make(map[string]int64, 2*len(r.stageNS))
	for k, v := range r.stageNS {
		stages[k] = v
		stages[k+".calls"] = r.stageN[k]
	}
	counters = make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	return stages, counters
}

// Write renders the recorder's stats in Prometheus-style text under a
// distinct sevf_host_* namespace. It is a separate exporter from
// Registry.WritePrometheus on purpose: mixing wall-clock values into
// the virtual-time export would break its byte-identical-per-seed
// guarantee.
func (r *HostRecorder) Write(w io.Writer) error {
	stages, counters := r.Snapshot()
	var keys []string
	for k := range stages {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "sevf_host_stage{name=%q} %d\n", k, stages[k]); err != nil {
			return err
		}
	}
	keys = keys[:0]
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "sevf_host_counter{name=%q} %d\n", k, counters[k]); err != nil {
			return err
		}
	}
	return nil
}

// HostStage records one wall-clock timing on DefaultHostRecorder.
//
// Deprecated: stats recorded here are process-global and interleave
// across hosts. Code with a host in scope should record on that host's
// HostRecorder instead.
func HostStage(name string, start time.Time) {
	DefaultHostRecorder.Stage(name, start)
}

// HostCounterAdd bumps a named counter on DefaultHostRecorder.
//
// Deprecated: stats recorded here are process-global and interleave
// across hosts. Code with a host in scope should record on that host's
// HostRecorder instead.
func HostCounterAdd(name string, n int64) {
	DefaultHostRecorder.CounterAdd(name, n)
}

// ResetHostStats zeroes DefaultHostRecorder.
//
// Deprecated: resets only the process-global recorder; per-host stats
// live on each host's HostRecorder.
func ResetHostStats() {
	DefaultHostRecorder.Reset()
}

// HostStatsSnapshot snapshots DefaultHostRecorder.
//
// Deprecated: covers only the process-global recorder; per-host stats
// live on each host's HostRecorder.
func HostStatsSnapshot() (stages map[string]int64, counters map[string]int64) {
	return DefaultHostRecorder.Snapshot()
}

// WriteHostStats renders DefaultHostRecorder in Prometheus-style text.
//
// Deprecated: covers only the process-global recorder; per-host stats
// live on each host's HostRecorder.
func WriteHostStats(w io.Writer) error {
	return DefaultHostRecorder.Write(w)
}
