package telemetry

// Host-time statistics: wall-clock stage timings, cache hit/miss
// counters, and buffer-pool stats for the host-performance layer
// (parallel measurement pipeline, shared-artifact CoW memory).
//
// These deliberately live OUTSIDE the virtual-time Registry. The
// Registry's exports are stamped from sim.Time and are required to be
// byte-identical across same-seed runs; host wall-clock readings are
// not deterministic and must never leak into those exports. Host stats
// get their own snapshot API and exporter instead.

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

var hostStats = struct {
	mu       sync.Mutex
	stageNS  map[string]int64
	stageN   map[string]int64
	counters map[string]int64
}{
	stageNS:  map[string]int64{},
	stageN:   map[string]int64{},
	counters: map[string]int64{},
}

// HostStage records one wall-clock timing for a named pipeline stage.
// Typical use: defer telemetry.HostStage("psp.fold", time.Now()).
func HostStage(name string, start time.Time) {
	d := time.Since(start)
	hostStats.mu.Lock()
	hostStats.stageNS[name] += d.Nanoseconds()
	hostStats.stageN[name]++
	hostStats.mu.Unlock()
}

// HostCounterAdd bumps a named host-side counter (cache hits, pool
// reuses, bytes spared, ...).
func HostCounterAdd(name string, n int64) {
	hostStats.mu.Lock()
	hostStats.counters[name] += n
	hostStats.mu.Unlock()
}

// ResetHostStats zeroes all host-time stages and counters. Benchmarks
// call it after warm-up so snapshots cover only the measured window.
func ResetHostStats() {
	hostStats.mu.Lock()
	hostStats.stageNS = map[string]int64{}
	hostStats.stageN = map[string]int64{}
	hostStats.counters = map[string]int64{}
	hostStats.mu.Unlock()
}

// HostStatsSnapshot returns copies of the cumulative stage timings
// (ns, plus a "<stage>.calls" entry) and the host counters.
func HostStatsSnapshot() (stages map[string]int64, counters map[string]int64) {
	hostStats.mu.Lock()
	defer hostStats.mu.Unlock()
	stages = make(map[string]int64, 2*len(hostStats.stageNS))
	for k, v := range hostStats.stageNS {
		stages[k] = v
		stages[k+".calls"] = hostStats.stageN[k]
	}
	counters = make(map[string]int64, len(hostStats.counters))
	for k, v := range hostStats.counters {
		counters[k] = v
	}
	return stages, counters
}

// WriteHostStats renders the host-time stats in Prometheus-style text
// under a distinct sevf_host_* namespace. It is a separate exporter
// from Registry.WritePrometheus on purpose: mixing wall-clock values
// into the virtual-time export would break its byte-identical-per-seed
// guarantee.
func WriteHostStats(w io.Writer) error {
	stages, counters := HostStatsSnapshot()
	var keys []string
	for k := range stages {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "sevf_host_stage{name=%q} %d\n", k, stages[k]); err != nil {
			return err
		}
	}
	keys = keys[:0]
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "sevf_host_counter{name=%q} %d\n", k, counters[k]); err != nil {
			return err
		}
	}
	return nil
}
