package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// promLabels renders a sorted label set ({} omitted when empty), with
// extra quantile labels appended for summary lines.
func promLabels(attrs []Attr, extra ...Attr) string {
	all := append(append([]Attr(nil), attrs...), extra...)
	if len(all) == 0 {
		return ""
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", a.Key, a.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func seconds(d time.Duration) string {
	return promFloat(d.Seconds())
}

// WritePrometheus renders every counter, gauge, and series in the
// Prometheus text exposition format. Durations are exported in seconds
// (the Prometheus convention); series become summaries with 0.5/0.9/
// 0.99 quantiles. Families and label sets are sorted, so output is
// deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	series := make(map[string]*Series, len(r.series))
	for k, v := range r.series {
		series[k] = v
	}
	r.mu.Unlock()

	type family struct {
		typ   string
		lines []string
	}
	families := map[string]*family{}
	fam := func(name, typ string) *family {
		f, ok := families[name]
		if !ok {
			f = &family{typ: typ}
			families[name] = f
		}
		return f
	}

	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := counters[k]
		f := fam(c.Name, "counter")
		f.lines = append(f.lines, fmt.Sprintf("%s%s %d", c.Name, promLabels(c.Attrs), c.Value()))
	}

	keys = keys[:0]
	for k := range gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := gauges[k]
		f := fam(g.Name, "gauge")
		f.lines = append(f.lines, fmt.Sprintf("%s%s %s", g.Name, promLabels(g.Attrs), promFloat(g.Value())))
	}

	keys = keys[:0]
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := series[k]
		f := fam(s.Name, "summary")
		for _, q := range []float64{0.5, 0.9, 0.99} {
			f.lines = append(f.lines, fmt.Sprintf("%s%s %s", s.Name,
				promLabels(s.Attrs, A("quantile", promFloat(q))), seconds(s.Quantile(q))))
		}
		f.lines = append(f.lines, fmt.Sprintf("%s_sum%s %s", s.Name, promLabels(s.Attrs), seconds(s.Sum())))
		f.lines = append(f.lines, fmt.Sprintf("%s_count%s %d", s.Name, promLabels(s.Attrs), s.Count()))
	}

	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := families[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, f.typ); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}
