package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// chromeEvent is one entry of the Chrome trace-event format
// (Trace Event Format; Perfetto and chrome://tracing both load it).
// Timestamps and durations are microseconds; the virtual clock is
// nanoseconds, so stamps carry three decimals.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   json.Number       `json:"ts"`
	Dur  json.Number       `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

func micros(t int64) json.Number {
	return json.Number(strconv.FormatFloat(float64(t)/1e3, 'f', 3, 64))
}

func attrArgs(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs { // later values win
		m[a.Key] = a.Value
	}
	return m
}

// WriteChromeTrace renders the registry as Chrome trace-event JSON:
// one pid, one tid per track (sorted by name), "X" complete events for
// spans, "i" instants for events, "M" metadata naming the tracks.
// Still-open spans are clamped to the registry horizon. Output is
// deterministic: same registry contents, same bytes.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	spans := r.Spans()
	events := r.Events()
	horizon := r.Horizon()

	trackSet := map[string]bool{}
	for _, s := range spans {
		trackSet[s.Track] = true
	}
	for _, e := range events {
		trackSet[e.Track] = true
	}
	tracks := make([]string, 0, len(trackSet))
	for t := range trackSet {
		tracks = append(tracks, t)
	}
	sort.Strings(tracks)
	tid := make(map[string]int, len(tracks))
	for i, t := range tracks {
		tid[t] = i + 1
	}

	out := make([]chromeEvent, 0, len(tracks)+len(spans)+len(events))
	for _, t := range tracks {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Ts: "0",
			Pid: 1, Tid: tid[t],
			Args: map[string]string{"name": t},
		})
	}

	sorted := append([]*Span(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].ID < sorted[j].ID
	})
	for _, s := range sorted {
		stop := s.Stop
		if !s.Done {
			stop = horizon
		}
		out = append(out, chromeEvent{
			Name: s.Name, Cat: "vt", Ph: "X",
			Ts: micros(int64(s.Start)), Dur: micros(int64(stop - s.Start)),
			Pid: 1, Tid: tid[s.Track],
			Args: attrArgs(s.Attrs),
		})
	}

	sortedEv := append([]Event(nil), events...)
	sort.Slice(sortedEv, func(i, j int) bool {
		if sortedEv[i].At != sortedEv[j].At {
			return sortedEv[i].At < sortedEv[j].At
		}
		return sortedEv[i].Seq < sortedEv[j].Seq
	})
	for _, e := range sortedEv {
		out = append(out, chromeEvent{
			Name: e.Name, Cat: "vt", Ph: "i",
			Ts:  micros(int64(e.At)),
			Pid: 1, Tid: tid[e.Track], S: "t",
			Args: attrArgs(e.Attrs),
		})
	}

	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range out {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(out)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%s%s", b, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
