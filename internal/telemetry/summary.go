package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// SeriesSummary is the JSON projection of one Series.
type SeriesSummary struct {
	Count int   `json:"count"`
	SumNS int64 `json:"sum_ns"`
	P50NS int64 `json:"p50_ns"`
	P90NS int64 `json:"p90_ns"`
	P99NS int64 `json:"p99_ns"`
}

// Summary is the machine-readable projection of a registry: totals plus
// every metric keyed by its canonical name{labels} form. Map keys are
// sorted by encoding/json, so the output is deterministic.
type Summary struct {
	HorizonNS   int64                    `json:"horizon_ns"`
	Tracks      []string                 `json:"tracks"`
	SpanCount   int                      `json:"span_count"`
	EventCount  int                      `json:"event_count"`
	SpansByName map[string]int           `json:"spans_by_name,omitempty"`
	Counters    map[string]int64         `json:"counters,omitempty"`
	Gauges      map[string]float64       `json:"gauges,omitempty"`
	Series      map[string]SeriesSummary `json:"series,omitempty"`
}

// Summarize builds the Summary projection.
func (r *Registry) Summarize() Summary {
	var sum Summary
	if r == nil {
		return sum
	}
	spans := r.Spans()
	events := r.Events()
	sum.HorizonNS = int64(r.Horizon())
	sum.SpanCount = len(spans)
	sum.EventCount = len(events)

	trackSet := map[string]bool{}
	byName := map[string]int{}
	for _, s := range spans {
		trackSet[s.Track] = true
		byName[s.Name]++
	}
	for _, e := range events {
		trackSet[e.Track] = true
	}
	sum.Tracks = make([]string, 0, len(trackSet))
	for t := range trackSet {
		sum.Tracks = append(sum.Tracks, t)
	}
	sort.Strings(sum.Tracks)
	if len(byName) > 0 {
		sum.SpansByName = byName
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		sum.Counters = make(map[string]int64, len(r.counters))
		for k, c := range r.counters {
			sum.Counters[k] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		sum.Gauges = make(map[string]float64, len(r.gauges))
		for k, g := range r.gauges {
			sum.Gauges[k] = g.Value()
		}
	}
	if len(r.series) > 0 {
		sum.Series = make(map[string]SeriesSummary, len(r.series))
		for k, s := range r.series {
			sum.Series[k] = SeriesSummary{
				Count: s.Count(),
				SumNS: int64(s.Sum()),
				P50NS: int64(s.Quantile(0.5)),
				P90NS: int64(s.Quantile(0.9)),
				P99NS: int64(s.Quantile(0.99)),
			}
		}
	}
	return sum
}

// WriteJSONSummary renders the Summary as indented JSON.
func (r *Registry) WriteJSONSummary(w io.Writer) error {
	b, err := json.MarshalIndent(r.Summarize(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
