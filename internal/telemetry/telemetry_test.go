package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/severifast/severifast/internal/sim"
)

// goldenRegistry builds a small, fully deterministic registry by hand:
// one boot span tree on a vm track, a PSP service slot, a scheduler wait,
// an instant, and one instrument of each kind.
func goldenRegistry() *Registry {
	r := NewRegistry()
	root := r.StartSpan("vm-0", "vm.boot", 0, A("scheme", "severifast"), A("level", "sev-snp"))
	stage := r.StartSpan("vm-0", "vmm.stage", 1000)
	stage.Close(2500)
	r.TraceWait("vm-0", "psp", 2500, 3000)
	r.TraceService("vm-0", "psp", "LAUNCH_START", 3000, 3900)
	r.Emit("vm-0", "kernel entry", 4000)
	root.Close(5000)

	r.Counter("severifast_fleet_boots_total", A("tier", "cold")).Inc()
	r.Counter("severifast_fleet_boots_total", A("tier", "warm")).Add(2)
	r.Gauge("severifast_fleet_queue_depth_max").Max(3)
	s := r.Series("severifast_fleet_boot_latency_seconds")
	s.Observe(2 * time.Microsecond)
	s.Observe(4 * time.Microsecond)
	s.Observe(3 * time.Microsecond)
	return r
}

const goldenChrome = `{"displayTimeUnit":"ms","traceEvents":[
{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"psp"}},
{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":2,"args":{"name":"vm-0"}},
{"name":"vm.boot","cat":"vt","ph":"X","ts":0.000,"dur":5.000,"pid":1,"tid":2,"args":{"level":"sev-snp","scheme":"severifast"}},
{"name":"vmm.stage","cat":"vt","ph":"X","ts":1.000,"dur":1.500,"pid":1,"tid":2},
{"name":"wait psp","cat":"vt","ph":"X","ts":2.500,"dur":0.500,"pid":1,"tid":2,"args":{"resource":"psp"}},
{"name":"LAUNCH_START","cat":"vt","ph":"X","ts":3.000,"dur":0.900,"pid":1,"tid":1,"args":{"proc":"vm-0"}},
{"name":"kernel entry","cat":"vt","ph":"i","ts":4.000,"pid":1,"tid":2,"s":"t"}
]}
`

const goldenProm = `# TYPE severifast_fleet_boot_latency_seconds summary
severifast_fleet_boot_latency_seconds{quantile="0.5"} 3e-06
severifast_fleet_boot_latency_seconds{quantile="0.9"} 4e-06
severifast_fleet_boot_latency_seconds{quantile="0.99"} 4e-06
severifast_fleet_boot_latency_seconds_sum 9e-06
severifast_fleet_boot_latency_seconds_count 3
# TYPE severifast_fleet_boots_total counter
severifast_fleet_boots_total{tier="cold"} 1
severifast_fleet_boots_total{tier="warm"} 2
# TYPE severifast_fleet_queue_depth_max gauge
severifast_fleet_queue_depth_max 3
`

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenChrome {
		t.Fatalf("chrome trace mismatch:\ngot:\n%s\nwant:\n%s", got, goldenChrome)
	}
	// The golden must also be what it claims: valid JSON.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("traceEvents = %d, want 7", len(doc.TraceEvents))
	}
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenProm {
		t.Fatalf("prometheus mismatch:\ngot:\n%s\nwant:\n%s", got, goldenProm)
	}
}

func TestJSONSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSONSummary(&buf); err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if s.SpanCount != 4 || s.EventCount != 1 {
		t.Fatalf("spans/events = %d/%d, want 4/1", s.SpanCount, s.EventCount)
	}
	if s.SpansByName["vm.boot"] != 1 || s.SpansByName["LAUNCH_START"] != 1 {
		t.Fatalf("SpansByName = %v", s.SpansByName)
	}
	if s.HorizonNS != 5000 {
		t.Fatalf("HorizonNS = %d, want 5000", s.HorizonNS)
	}
}

// TestExportDeterminism: same construction, byte-identical output.
func TestExportDeterminism(t *testing.T) {
	var a, b, pa, pb bytes.Buffer
	goldenRegistry().WriteChromeTrace(&a)
	goldenRegistry().WriteChromeTrace(&b)
	goldenRegistry().WritePrometheus(&pa)
	goldenRegistry().WritePrometheus(&pb)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("chrome trace differs between identical registries")
	}
	if !bytes.Equal(pa.Bytes(), pb.Bytes()) {
		t.Fatal("prometheus output differs between identical registries")
	}
}

func TestSpanNestingAndSubtree(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("vm-0", "vm.boot", 0)
	child := r.StartSpan("vm-0", "vmm.stage", 10)
	grand := r.StartSpan("vm-0", "verify kernel", 20)
	grand.Close(30)
	child.Close(40)
	sibling := r.StartSpan("vm-0", "linux.boot", 40)
	sibling.Close(90)
	root.Close(100)
	other := r.StartSpan("vm-1", "vm.boot", 5)
	other.Close(50)

	if child.Parent != root.ID || grand.Parent != child.ID || sibling.Parent != root.ID {
		t.Fatal("open-span stack did not parent spans correctly")
	}
	if other.Parent != 0 {
		t.Fatal("span on another track parented across tracks")
	}
	sub := r.Subtree(root)
	if len(sub) != 4 {
		t.Fatalf("Subtree = %d spans, want 4", len(sub))
	}
	if sub[0] != root {
		t.Fatal("Subtree does not start at the root")
	}
	if got := r.SpanCount("vm.boot", "", ""); got != 2 {
		t.Fatalf("SpanCount(vm.boot) = %d, want 2", got)
	}
}

func TestRecordRetroSpan(t *testing.T) {
	r := NewRegistry()
	s := r.Record("worker-0", "fleet.boot", 100, 900, A("tier", "cold"))
	if s == nil || !s.Done || s.Start != 100 || s.Stop != 900 {
		t.Fatalf("retro span = %+v", s)
	}
	if got := r.SpanCount("fleet.boot", "tier", "cold"); got != 1 {
		t.Fatalf("SpanCount by attr = %d, want 1", got)
	}
	if got := r.SpanCount("fleet.boot", "tier", "warm"); got != 0 {
		t.Fatalf("SpanCount wrong attr = %d, want 0", got)
	}
}

// TestNilRegistry: every instrumentation call on a nil registry (and the
// nil instruments it hands out) must be an inert no-op — call sites carry
// no guards.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	span := r.StartSpan("t", "n", 0)
	span.Close(10)
	span.Annotate("k", "v")
	r.Record("t", "n", 0, 5)
	r.Emit("t", "n", 0)
	r.Counter("c").Inc()
	r.Counter("c").Add(3)
	r.Gauge("g").Set(1)
	r.Gauge("g").Max(2)
	r.Series("s").Observe(time.Second)
	r.TraceWait("p", "res", 0, 1)
	r.TraceService("p", "res", "L", 0, 1)
	r.TraceIdle("p", 0, 1)
	if r.Spans() != nil || r.Events() != nil {
		t.Fatal("nil registry returned data")
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryRace exercises the registry's concurrency claim: multiple
// goroutines (as when a shared measured-image cache invokes foreign-shard
// callbacks, or two engines share one registry) record spans, events, and
// instruments concurrently. Run under -race.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			track := []string{"vm-0", "vm-1", "psp", "kbs"}[g%4]
			for i := 0; i < 200; i++ {
				at := sim.Time(g*1000 + i*10)
				s := r.StartSpan(track, "work", at, A("g", track))
				s.Annotate("i", "x")
				s.Close(at + 5)
				r.Record(track, "retro", at, at+3)
				r.Emit(track, "tick", at)
				r.Counter("ops_total", A("track", track)).Inc()
				r.Gauge("depth").Max(float64(i))
				r.Series("lat").Observe(time.Duration(i) * time.Microsecond)
				r.SpanCount("work", "g", track)
			}
		}()
	}
	wg.Wait()
	if got := len(r.Spans()); got != 8*200*2 {
		t.Fatalf("spans = %d, want %d", got, 8*200*2)
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"name":"work"`) {
		t.Fatal("trace missing recorded spans")
	}
}

// TestTracerIntegration drives a real engine with the registry installed
// as tracer: a resource wait and a labeled service slot must appear as
// spans, and parked time as idle.
func TestTracerIntegration(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRegistry()
	eng.SetTracer(r)
	res := sim.NewResource("psp", 1)
	eng.Go("a", func(p *sim.Proc) {
		res.UseLabeled(p, 100, "LAUNCH_START")
	})
	eng.Go("b", func(p *sim.Proc) {
		res.UseLabeled(p, 100, "LAUNCH_START")
	})
	eng.Run()

	var service, wait int
	for _, s := range r.Spans() {
		switch {
		case s.Name == "LAUNCH_START" && s.Track == "psp":
			service++
		case s.Name == "wait psp":
			wait++
		}
	}
	if service != 2 {
		t.Fatalf("service spans = %d, want 2", service)
	}
	if wait != 1 {
		t.Fatalf("wait spans = %d, want 1 (second proc queued behind the first)", wait)
	}
}
