// Package telemetry is the repo's observability spine: one registry of
// spans, instant events, counters, gauges, and duration series, all
// stamped from the simulation's virtual clock (sim.Time) and never the
// wall clock. Because every stamp is virtual, two runs with the same
// seed produce byte-identical exporter output — traces are artifacts of
// the model, not of host scheduling.
//
// Writers fall into two classes, and the registry is safe for both:
//
//   - Simulation processes. The engine runs exactly one process at a
//     time, so these writes are already serialized; the registry's
//     mutex costs nothing but makes the property local instead of
//     global.
//   - Ordinary goroutines (fleet submitters, servers). These go
//     through the same mutex, so a registry may be shared across
//     engines or threads.
//
// Readers (exporters, Result.Spans) are expected to run after
// Engine.Run returns, but locking makes mid-run scraping safe too.
//
// Spans live on tracks. A track is one horizontal lane in the exported
// trace — by convention the name of the sim proc that did the work
// ("vm-3", "fleet-worker-0") or the shared resource that served it
// ("psp", "kbs"). Within a track, spans nest: StartSpan parents the new
// span under the track's innermost open span, which is how a boot's
// "preenc" span ends up inside its "vm.boot" root.
package telemetry

import (
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/severifast/severifast/internal/sim"
)

// Attr is one key=value annotation on a span, event, or metric.
type Attr struct {
	Key   string
	Value string
}

// A is shorthand for constructing an Attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Span is a named interval of virtual time on a track. Spans are
// created through Registry.StartSpan or Registry.Record; the zero value
// and the nil pointer are inert (all methods are nil-safe), so
// instrumentation sites never need to guard against a missing registry.
type Span struct {
	ID     int      // 1-based creation order, unique per registry
	Parent int      // enclosing span's ID, 0 for a track root
	Track  string   // lane the span renders on
	Name   string   // e.g. "vm.boot", "preenc", "wait psp"
	Start  sim.Time // opening stamp
	Stop   sim.Time // closing stamp; meaningful only once Done
	Attrs  []Attr
	Done   bool // false while the span is still open

	reg *Registry
}

// Close ends the span at the given virtual time. Closing an already
// closed span or a nil span is a no-op, so error paths may leave spans
// open; exporters clamp open spans to the registry's horizon.
func (s *Span) Close(at sim.Time) {
	if s == nil {
		return
	}
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	if s.Done {
		return
	}
	if at < s.Start {
		at = s.Start
	}
	s.Stop = at
	s.Done = true
	stack := s.reg.open[s.Track]
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == s {
			s.reg.open[s.Track] = append(stack[:i], stack[i+1:]...)
			break
		}
	}
}

// Annotate attaches an attribute to the span. Later values for the same
// key are appended, not replaced; exporters keep the last.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// Attr returns the last value recorded for key, or "".
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	for i := len(s.Attrs) - 1; i >= 0; i-- {
		if s.Attrs[i].Key == key {
			return s.Attrs[i].Value
		}
	}
	return ""
}

// Event is an instant marker on a track (a guest debug-port write, a
// scheduler transition).
type Event struct {
	Seq   int // creation order, breaks same-instant ties deterministically
	Track string
	Name  string
	At    sim.Time
	Attrs []Attr
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	Name  string
	Attrs []Attr

	mu sync.Mutex
	v  int64
}

// Inc adds one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta. Nil-safe.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a set-to-current-value metric (queue depth, pool size).
type Gauge struct {
	Name  string
	Attrs []Attr

	mu sync.Mutex
	v  float64
}

// Set records the current value. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Max raises the gauge to v if v is larger. Nil-safe.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if v > g.v {
		g.v = v
	}
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Series is a distribution metric over virtual durations (boot latency,
// queue wait). It keeps every observation; exports summarize.
type Series struct {
	Name  string
	Attrs []Attr

	mu  sync.Mutex
	obs []time.Duration
	sum time.Duration
}

// Observe records one duration. Nil-safe.
func (s *Series) Observe(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.obs = append(s.obs, d)
	s.sum += d
	s.mu.Unlock()
}

// Count returns the number of observations.
func (s *Series) Count() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.obs)
}

// Sum returns the total of all observations.
func (s *Series) Sum() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sum
}

// Quantile returns the q-th quantile (0..1) by nearest rank.
func (s *Series) Quantile(q float64) time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.obs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.obs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := int(float64(len(sorted))*q+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Registry is the single sink all instrumentation writes into. The
// zero value is not usable; call NewRegistry. A nil *Registry is inert:
// every method is a no-op returning zero values, so call sites need no
// nil checks.
type Registry struct {
	mu       sync.Mutex
	nextID   int
	spans    []*Span
	events   []Event
	open     map[string][]*Span // per-track stack of open spans
	counters map[string]*Counter
	gauges   map[string]*Gauge
	series   map[string]*Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		open:     make(map[string][]*Span),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		series:   make(map[string]*Series),
	}
}

// StartSpan opens a span on track at the given virtual time, nested
// under the track's innermost open span. Close it with Span.Close.
func (r *Registry) StartSpan(track, name string, at sim.Time, attrs ...Attr) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.newSpanLocked(track, name, at, attrs)
	r.open[track] = append(r.open[track], s)
	return s
}

// Record adds an already-closed span [from, to] on track, parented
// under the track's innermost open span. It is the retrospective form
// of StartSpan/Close, for intervals whose extent is only known at the
// end (queue waits, whole-request latencies).
func (r *Registry) Record(track, name string, from, to sim.Time, attrs ...Attr) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.newSpanLocked(track, name, from, attrs)
	if to < from {
		to = from
	}
	s.Stop = to
	s.Done = true
	return s
}

func (r *Registry) newSpanLocked(track, name string, at sim.Time, attrs []Attr) *Span {
	r.nextID++
	s := &Span{
		ID:    r.nextID,
		Track: track,
		Name:  name,
		Start: at,
		Attrs: append([]Attr(nil), attrs...),
		reg:   r,
	}
	if stack := r.open[track]; len(stack) > 0 {
		s.Parent = stack[len(stack)-1].ID
	}
	r.spans = append(r.spans, s)
	return s
}

// Emit records an instant event on track.
func (r *Registry) Emit(track, name string, at sim.Time, attrs ...Attr) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, Event{
		Seq:   len(r.events),
		Track: track,
		Name:  name,
		At:    at,
		Attrs: append([]Attr(nil), attrs...),
	})
}

// metricKey canonicalizes (name, attrs) so repeated lookups share one
// instrument. Attrs are sorted by key.
func metricKey(name string, attrs []Attr) string {
	if len(attrs) == 0 {
		return name
	}
	sorted := append([]Attr(nil), attrs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, a := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func sortedAttrs(attrs []Attr) []Attr {
	sorted := append([]Attr(nil), attrs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	return sorted
}

// Counter returns (creating on first use) the counter for (name, attrs).
func (r *Registry) Counter(name string, attrs ...Attr) *Counter {
	if r == nil {
		return nil
	}
	key := metricKey(name, attrs)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{Name: name, Attrs: sortedAttrs(attrs)}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge for (name, attrs).
func (r *Registry) Gauge(name string, attrs ...Attr) *Gauge {
	if r == nil {
		return nil
	}
	key := metricKey(name, attrs)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{Name: name, Attrs: sortedAttrs(attrs)}
		r.gauges[key] = g
	}
	return g
}

// Series returns (creating on first use) the series for (name, attrs).
func (r *Registry) Series(name string, attrs ...Attr) *Series {
	if r == nil {
		return nil
	}
	key := metricKey(name, attrs)
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[key]
	if !ok {
		s = &Series{Name: name, Attrs: sortedAttrs(attrs)}
		r.series[key] = s
	}
	return s
}

// Spans returns all spans in creation order. The slice is a copy; the
// spans are shared, so treat them as read-only.
func (r *Registry) Spans() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Span(nil), r.spans...)
}

// Events returns all instant events in creation order.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Subtree returns root followed by every span whose parent chain
// reaches root, in creation order. Used by Result.Spans to carve one
// boot out of a registry shared across boots.
func (r *Registry) Subtree(root *Span) []*Span {
	if r == nil || root == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	in := map[int]bool{root.ID: true}
	out := []*Span{root}
	for _, s := range r.spans {
		if s.ID == root.ID {
			continue
		}
		if in[s.Parent] {
			in[s.ID] = true
			out = append(out, s)
		}
	}
	return out
}

// EventsOn returns events on track within [from, to], in order.
func (r *Registry) EventsOn(track string, from, to sim.Time) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if e.Track == track && e.At >= from && e.At <= to {
			out = append(out, e)
		}
	}
	return out
}

// SpanCount returns the number of closed spans with the given name that
// carry attribute key=value ("" value matches any). Used by acceptance
// checks (fleet.boot per-tier counts vs. the fleet report).
func (r *Registry) SpanCount(name, key, value string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.spans {
		if s.Name != name {
			continue
		}
		if key == "" {
			n++
			continue
		}
		for i := len(s.Attrs) - 1; i >= 0; i-- {
			if s.Attrs[i].Key == key {
				if value == "" || s.Attrs[i].Value == value {
					n++
				}
				break
			}
		}
	}
	return n
}

// Horizon returns the latest stamp seen by any span or event; exporters
// clamp still-open spans to it.
func (r *Registry) Horizon() sim.Time {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.horizonLocked()
}

func (r *Registry) horizonLocked() sim.Time {
	var h sim.Time
	for _, s := range r.spans {
		if s.Start > h {
			h = s.Start
		}
		if s.Done && s.Stop > h {
			h = s.Stop
		}
	}
	for _, e := range r.events {
		if e.At > h {
			h = e.At
		}
	}
	return h
}

// --- sim.Tracer implementation ---
//
// The registry doubles as the engine's scheduler tracer, so resource
// queueing (the PSP bottleneck) and service periods show up as spans
// without the model knowing about telemetry.

// TraceWait records a resource queue wait on the waiting proc's track.
func (r *Registry) TraceWait(proc, resource string, from, to sim.Time) {
	if r == nil || to <= from {
		return
	}
	r.Record(proc, "wait "+resource, from, to, A("resource", resource))
}

// TraceService records a service period on the resource's track, named
// after the command label when the caller provides one.
func (r *Registry) TraceService(proc, resource, label string, from, to sim.Time) {
	if r == nil || to <= from {
		return
	}
	name := label
	if name == "" {
		name = resource + ".service"
	}
	r.Record(resource, name, from, to, A("proc", proc))
}

// TraceIdle records a runnable-gap (parked) interval on the proc's track.
func (r *Registry) TraceIdle(proc string, from, to sim.Time) {
	if r == nil || to <= from {
		return
	}
	r.Record(proc, "parked", from, to)
}
