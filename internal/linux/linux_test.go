package linux

import (
	"strings"
	"testing"

	"github.com/severifast/severifast/internal/bootparams"
	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/measure"
	"github.com/severifast/severifast/internal/mptable"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/verifier"
)

// plainGuest prepares a non-SEV machine with boot structures, the staged
// bzImage, and an initrd — the state a direct boot leaves before kernel
// entry. Returned ready for Boot.
func plainGuest(t *testing.T, p *sim.Proc, host *kvm.Host, mutate func(m *kvm.Machine)) (*kvm.Machine, *verifier.Handoff, kernelgen.Preset) {
	t.Helper()
	preset := kernelgen.Lupine()
	art, err := kernelgen.Cached(preset)
	if err != nil {
		t.Fatal(err)
	}
	initrd := kernelgen.BuildInitrd(1, 1<<20)
	m := host.NewMachine(p, 256<<20, sev.None)

	zp, err := bootparams.Build(bootparams.Params{
		CmdlinePtr:   measure.GPACmdline,
		CmdlineSize:  uint32(len(preset.Cmdline)),
		RamdiskImage: measure.GPAInitrd,
		RamdiskSize:  uint32(len(initrd)),
		E820:         bootparams.StandardE820(256 << 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.Mem.HostWrite(measure.GPAZeroPage, zp))
	must(m.Mem.HostWrite(measure.GPACmdline, []byte(preset.Cmdline)))
	must(m.Mem.HostWrite(measure.GPAMPTable, mptable.Build(2, measure.GPAMPTable)))
	must(m.Mem.HostWriteAliased(measure.GPAInitrd, initrd))
	must(m.Mem.HostWriteAliased(measure.GPABzTarget, art.BzImageLZ4))
	if mutate != nil {
		mutate(m)
	}
	h := &verifier.Handoff{
		Kind:       verifier.KindBzImage,
		KernelGPA:  measure.GPABzTarget,
		KernelSize: len(art.BzImageLZ4),
		InitrdGPA:  measure.GPAInitrd,
		InitrdSize: len(initrd),
	}
	return m, h, preset
}

func runLinux(t *testing.T, mutate func(m *kvm.Machine)) (*BootReport, error) {
	t.Helper()
	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	var rep *BootReport
	var err error
	eng.Go("vcpu", func(p *sim.Proc) {
		m, h, preset := plainGuest(t, p, host, mutate)
		rep, err = Boot(p, m, h, preset)
	})
	eng.Run()
	return rep, err
}

func TestBootToInit(t *testing.T) {
	rep, err := runLinux(t, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CPUs != 2 {
		t.Fatalf("kernel saw %d CPUs, mptable said 2", rep.CPUs)
	}
	if !rep.InitrdOK {
		t.Fatal("initrd not mounted")
	}
	if rep.Entry != 0x1000000 {
		t.Fatalf("entry %#x", rep.Entry)
	}
	if rep.CmdlineLen == 0 {
		t.Fatal("cmdline not read")
	}
}

func TestBootFailsOnCorruptZeroPage(t *testing.T) {
	_, err := runLinux(t, func(m *kvm.Machine) {
		if err := m.Mem.HostWrite(measure.GPAZeroPage+0x202, []byte{0}); err != nil {
			t.Fatal(err)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "bootparams") {
		t.Fatalf("corrupt zero page booted: %v", err)
	}
}

func TestBootFailsOnCorruptMPTable(t *testing.T) {
	_, err := runLinux(t, func(m *kvm.Machine) {
		if err := m.Mem.HostWrite(measure.GPAMPTable+20, []byte{0xFF}); err != nil {
			t.Fatal(err)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "mptable") {
		t.Fatalf("corrupt mptable booted: %v", err)
	}
}

func TestBootFailsOnCorruptBzImage(t *testing.T) {
	_, err := runLinux(t, func(m *kvm.Machine) {
		// Damage the boot-protocol magic of the staged kernel.
		if err := m.Mem.HostWrite(measure.GPABzTarget+0x202, []byte{0}); err != nil {
			t.Fatal(err)
		}
	})
	if err == nil {
		t.Fatal("corrupt bzImage booted")
	}
}

func TestBootFailsOnInitrdWithoutInit(t *testing.T) {
	// An initrd that parses but lacks /init: the kernel panics.
	_, err := runLinux(t, func(m *kvm.Machine) {
		bad := kernelgen.BuildInitrd(1, 1<<20)
		// Rename "init" in the archive: the name field is plain text in
		// the cpio; flip its first byte.
		idx := strings.Index(string(bad), "init")
		bad2 := append([]byte(nil), bad...)
		bad2[idx] = 'x'
		if err := m.Mem.HostWriteAliased(measure.GPAInitrd, bad2); err != nil {
			t.Fatal(err)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "init") {
		t.Fatalf("initrd without /init booted: %v", err)
	}
}

func TestSNPBootSlowerThanPlain(t *testing.T) {
	// The §6.2 multiplier: identical guests, SNP Linux init ~2.3x.
	boot := func(level sev.Level) sim.Time {
		eng := sim.NewEngine()
		host := kvm.NewHost(eng, costmodel.Default(), 1)
		var took sim.Time
		eng.Go("vcpu", func(p *sim.Proc) {
			preset := kernelgen.Lupine()
			m := host.NewMachine(p, 256<<20, level)
			// Measure just the modeled init time via kernelInit's sleep:
			// compare full boots instead, on the plain path.
			_ = m
			start := p.Now()
			d := preset.LinuxBootBase
			if level.HasRMP() {
				d = multDuration(d, host.Model.SNPLinuxBootMultiplier)
			}
			p.Sleep(d)
			took = p.Now() - start
		})
		eng.Run()
		return took
	}
	plain := boot(sev.None)
	snp := boot(sev.SNP)
	ratio := float64(snp) / float64(plain)
	if ratio < 2.2 || ratio > 2.4 {
		t.Fatalf("SNP/plain init ratio %.2f, want ~2.3 (paper §6.2)", ratio)
	}
}

func TestVmlinuxHandoffSkipsBootstrap(t *testing.T) {
	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	eng.Go("vcpu", func(p *sim.Proc) {
		m, h, preset := plainGuest(t, p, host, nil)
		// Pretend the verifier already streamed the vmlinux: place its
		// text at the entry point and hand off KindVmlinux.
		art, err := kernelgen.Cached(preset)
		if err != nil {
			t.Error(err)
			return
		}
		if err := m.Mem.HostWriteAliased(0x1000000, art.VMLinux[:1<<20]); err != nil {
			t.Error(err)
			return
		}
		h.Kind = verifier.KindVmlinux
		h.Entry = 0x1000000
		rep, err := Boot(p, m, h, preset)
		if err != nil {
			t.Error(err)
			return
		}
		if rep.Entry != 0x1000000 {
			t.Errorf("entry %#x", rep.Entry)
		}
		if _, ok := m.Timeline.EventAt(sev.EvBootstrapStart); ok {
			t.Error("vmlinux handoff ran the bootstrap loader")
		}
	})
	eng.Run()
}

func TestBootEmitsOrderedEvents(t *testing.T) {
	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	eng.Go("vcpu", func(p *sim.Proc) {
		m, h, preset := plainGuest(t, p, host, nil)
		if _, err := Boot(p, m, h, preset); err != nil {
			t.Error(err)
			return
		}
		bs, _ := m.Timeline.EventAt(sev.EvBootstrapStart)
		ke, _ := m.Timeline.EventAt(sev.EvKernelEntry)
		ie, _ := m.Timeline.EventAt(sev.EvInitExec)
		if !(bs < ke && ke < ie) {
			t.Errorf("event order: bootstrap %v, kernel %v, init %v", bs, ke, ie)
		}
	})
	eng.Run()
}
