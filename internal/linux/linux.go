// Package linux models the guest Linux boot from the handoff the boot
// verifier (or a direct-boot VMM) leaves, with the data path executed for
// real against guest memory:
//
//   - The bzImage bootstrap-loader stage parses the (verified, private)
//     image, really decompresses its payload with the matching codec, and
//     places the vmlinux ELF segments at their run addresses — the
//     "Bootstrap Loader" bar of Fig. 11.
//   - The kernel stage consumes boot_params, the command line, the
//     mptable, and the initrd exactly where the VMM/verifier put them,
//     failing the boot if any are malformed — then charges the per-preset
//     init time (×~2.3 under SNP, §6.2) and "execs init" from the initrd.
package linux

import (
	"fmt"
	"strings"
	"time"

	"github.com/severifast/severifast/internal/artifact"
	"github.com/severifast/severifast/internal/bootparams"
	"github.com/severifast/severifast/internal/bzimage"
	"github.com/severifast/severifast/internal/cpio"
	"github.com/severifast/severifast/internal/elfx"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/measure"
	"github.com/severifast/severifast/internal/mptable"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/verifier"
	"github.com/severifast/severifast/internal/virtio"
)

// BootReport summarizes a completed guest boot.
type BootReport struct {
	CPUs       int
	CmdlineLen int
	InitrdOK   bool
	Entry      uint64
	// DevicesOK counts virtio devices that probed successfully.
	DevicesOK int
	// RootfsMagicOK reports that the first sector of /dev/vda carried the
	// expected magic (a real virtqueue round trip during boot).
	RootfsMagicOK bool
}

// Boot runs the guest from the verifier handoff to init. The preset
// supplies the kernel's init-time characteristics.
func Boot(proc *sim.Proc, m *kvm.Machine, h *verifier.Handoff, preset kernelgen.Preset) (*BootReport, error) {
	cbit := m.Level.Encrypted()

	entry := h.Entry
	if h.Kind == verifier.KindBzImage {
		m.DebugEvent(proc, sev.EvBootstrapStart)
		m.Timeline.Begin("bootstrap", proc.Now())
		var err error
		entry, err = runBootstrapLoader(proc, m, h, cbit)
		if err != nil {
			return nil, err
		}
		m.Timeline.End("bootstrap", proc.Now())
	}
	m.DebugEvent(proc, sev.EvKernelEntry)
	m.Timeline.Begin("linux.boot", proc.Now())
	rep, err := kernelInit(proc, m, entry, preset, cbit)
	if err != nil {
		return nil, err
	}
	m.Timeline.End("linux.boot", proc.Now())
	m.DebugEvent(proc, sev.EvInitExec)
	return rep, nil
}

// runBootstrapLoader is the bzImage setup/decompressor stage: it reads the
// protected image, decompresses the payload (really), and loads the ELF
// segments to their run addresses.
func runBootstrapLoader(proc *sim.Proc, m *kvm.Machine, h *verifier.Handoff, cbit bool) (uint64, error) {
	model := m.Host.Model
	proc.Sleep(model.BzImageSetupCost)

	// Read the verified image: when the resident pages still carry their
	// shared-artifact provenance (the CoW fleet path), RangeView hands
	// back a zero-copy slice of the canonical image instead of
	// materializing a fresh multi-megabyte copy per boot.
	raw, viewOK, err := m.Mem.RangeView(h.KernelGPA, h.KernelSize, cbit)
	if err != nil || !viewOK {
		raw, err = m.Mem.GuestRead(h.KernelGPA, h.KernelSize, cbit)
		if err != nil {
			return 0, fmt.Errorf("linux: reading bzImage: %w", err)
		}
	}
	info, err := bzimage.Parse(raw)
	if err != nil {
		return 0, fmt.Errorf("linux: bootstrap loader: %w", err)
	}
	// Decompression is memoized by payload identity/digest: every microVM
	// on the host boots the same kernel image (the serverless assumption
	// of §6.1), so the decompressed bytes are shared and must not be
	// mutated. Interning the payload subslice (stable when raw is a
	// zero-copy artifact view) lets the cache hit without re-hashing the
	// compressed payload on every boot.
	if viewOK {
		artifact.Intern(info.Payload)
	}
	vmlinux, err := bzimage.DecompressPayloadCached(info.Payload)
	if err != nil {
		return 0, fmt.Errorf("linux: decompressing kernel: %w", err)
	}
	proc.Sleep(model.Decompress(string(info.Codec), len(vmlinux)))

	// Place each PT_LOAD region at its run address, zero-copy from the
	// shared decompression buffer. The ELF parse is memoized on the
	// shared buffer, and loading through the artifact keeps per-page
	// provenance so later reads of kernel text stay zero-copy too.
	vart := artifact.Intern(vmlinux)
	regionsAny, err := vart.Derived("elfx.regions", func() (any, error) {
		return elfx.FileRegions(vmlinux)
	})
	if err != nil {
		return 0, fmt.Errorf("linux: embedded vmlinux: %w", err)
	}
	regions := regionsAny.([]elfx.FileRegion)
	loaded := 0
	for _, r := range regions {
		if !r.Load || r.Len == 0 {
			continue
		}
		if err := m.Mem.GuestWriteArtifact(r.Vaddr, vart, int(r.Off), r.Len, cbit); err != nil {
			return 0, fmt.Errorf("linux: loading segment at %#x: %w", r.Vaddr, err)
		}
		loaded += r.Len
	}
	proc.Sleep(model.Copy(loaded))
	return binaryLE64(vmlinux[24:]), nil
}

func binaryLE64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// kernelInit is the vmlinux stage: consume the boot structures, mount the
// initrd, run init.
func kernelInit(proc *sim.Proc, m *kvm.Machine, entry uint64, preset kernelgen.Preset, cbit bool) (*BootReport, error) {
	model := m.Host.Model

	// Sanity: there is executable kernel text at the entry point.
	text, err := m.Mem.GuestRead(entry, 64, cbit)
	if err != nil {
		return nil, fmt.Errorf("linux: no kernel at entry %#x: %w", entry, err)
	}
	allZero := true
	for _, b := range text {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return nil, fmt.Errorf("linux: entry point %#x is unmapped zeros", entry)
	}

	// boot_params.
	zp, err := m.Mem.GuestRead(measure.GPAZeroPage, bootparams.Size, cbit)
	if err != nil {
		return nil, fmt.Errorf("linux: reading zero page: %w", err)
	}
	params, err := bootparams.Parse(zp)
	if err != nil {
		return nil, fmt.Errorf("linux: %w", err)
	}

	// Command line.
	cmdRaw, err := m.Mem.GuestRead(uint64(params.CmdlinePtr), int(params.CmdlineSize), cbit)
	if err != nil {
		return nil, fmt.Errorf("linux: reading cmdline: %w", err)
	}
	cmdline := string(cmdRaw)
	if params.CmdlineSize > 0 && !strings.Contains(cmdline, "=") {
		return nil, fmt.Errorf("linux: implausible cmdline %q", cmdline)
	}

	// MP table discovery (scan the EBDA for _MP_).
	mpRaw, err := m.Mem.GuestRead(measure.GPAMPTable, 2048, cbit)
	if err != nil {
		return nil, fmt.Errorf("linux: reading mptable: %w", err)
	}
	mpInfo, err := mptable.Parse(mpRaw)
	if err != nil {
		return nil, fmt.Errorf("linux: %w", err)
	}

	// Initrd: unpack the CPIO and find /init. When the resident initrd
	// pages still carry their canonical-artifact provenance (the zero-copy
	// fleet path), the parse is memoized on the artifact: every boot of a
	// registered image resolves to the same (artifact, offset), so the
	// multi-megabyte archive is read and unpacked once per image, not once
	// per boot.
	initrdOK := false
	if params.RamdiskSize > 0 {
		rdGPA, rdSize := uint64(params.RamdiskImage), int(params.RamdiskSize)
		art, base, err := m.Mem.ArtifactRange(rdGPA, rdSize, cbit)
		if err != nil {
			return nil, fmt.Errorf("linux: reading initrd: %w", err)
		}
		var files []cpio.File
		if art != nil {
			filesAny, derr := art.Derived(fmt.Sprintf("cpio.files:%d:%d", base, rdSize), func() (any, error) {
				return cpio.Parse(art.Bytes()[base : base+rdSize])
			})
			if derr != nil {
				return nil, fmt.Errorf("linux: unpacking initrd: %w", derr)
			}
			files = filesAny.([]cpio.File)
		} else {
			archive, err := m.Mem.GuestRead(rdGPA, rdSize, cbit)
			if err != nil {
				return nil, fmt.Errorf("linux: reading initrd: %w", err)
			}
			files, err = cpio.Parse(archive)
			if err != nil {
				return nil, fmt.Errorf("linux: unpacking initrd: %w", err)
			}
		}
		if cpio.Lookup(files, "init") == nil {
			return nil, fmt.Errorf("linux: initrd has no /init")
		}
		initrdOK = true
		// Unpacking cost: the CPIO is copied into the tmpfs rootfs.
		proc.Sleep(model.Copy(rdSize))
	}

	// Virtio device probes: real register negotiation and, for the block
	// device, a real virtqueue round trip to read the rootfs superblock.
	// Confidential guests place rings and bounce buffers in shared memory
	// (swiotlb), as the drivers must.
	devicesOK := 0
	rootfsOK := false
	for i, dev := range m.Devices {
		ringGPA := uint64(0xD000000) + uint64(i)*0x100000
		bufGPA := ringGPA + 0x40000
		want := uint64(0)
		if dev.ID == virtio.IDBlk {
			want = virtio.FeatBlkFlush
		}
		dr, err := virtio.Probe(dev, m.Mem, ringGPA, bufGPA, want, cbit)
		if err != nil {
			return nil, fmt.Errorf("linux: virtio device %d: %w", i, err)
		}
		proc.Sleep(model.VirtioProbe)
		devicesOK++
		if dev.ID == virtio.IDBlk {
			req := make([]byte, 9)
			req[0] = 'R'
			sector, err := dr.Request(req, 512, 0)
			if err != nil {
				return nil, fmt.Errorf("linux: reading rootfs superblock: %w", err)
			}
			rootfsOK = strings.HasPrefix(string(sector), "SVFROOT1")
			if !rootfsOK {
				return nil, fmt.Errorf("linux: /dev/vda has no rootfs magic")
			}
		}
	}

	// The remaining kernel init work (driver probes, subsystem init,
	// scheduler up, ...). Under SNP every guest memory write takes an RMP
	// check and world switches take #VC handling (§6.2's ~2.3x).
	initTime := preset.LinuxBootBase
	if m.Level.HasRMP() {
		initTime = multDuration(initTime, model.SNPLinuxBootMultiplier)
	} else if m.Level.Encrypted() {
		// SEV/SEV-ES: encryption engine latency only; small uplift.
		initTime = multDuration(initTime, 1.0+(model.SNPLinuxBootMultiplier-1.0)/4)
	}
	proc.Sleep(initTime)

	return &BootReport{
		CPUs:          mpInfo.CPUs,
		CmdlineLen:    len(cmdline),
		InitrdOK:      initrdOK,
		Entry:         entry,
		DevicesOK:     devicesOK,
		RootfsMagicOK: rootfsOK,
	}, nil
}

func multDuration(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}
