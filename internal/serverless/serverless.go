// Package serverless models the function platform the paper's
// introduction motivates: invocations arrive as a Poisson process, each
// runs in its own microVM, idle VMs are retained for a keep-alive window,
// and requests that miss the pool pay a cold start (Shahrad et al.'s
// observation that cold starts remain a significant fraction of
// invocations, cited as [39]).
//
// Three platform flavours expose the paper's design space end to end:
// non-confidential microVMs (stock Firecracker), confidential cold-boot
// only (SEVeriFast), and confidential with the §6.2/§7 shared-key
// snapshot pool. Every boot is the full simulated boot path; the pool and
// the arrival process run in the same virtual time, so PSP contention
// between concurrent cold starts emerges by itself.
package serverless

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/severifast/severifast/internal/firecracker"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/measure"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/snapshot"
	"github.com/severifast/severifast/internal/trace"
)

// Mode selects the platform flavour.
type Mode int

// Platform flavours.
const (
	ModePlain   Mode = iota // stock Firecracker, no SEV
	ModeSEVCold             // SEVeriFast, cold boot on every pool miss
	ModeSEVWarm             // SEVeriFast + shared-key snapshot pool (§7)
)

func (m Mode) String() string {
	switch m {
	case ModePlain:
		return "plain"
	case ModeSEVCold:
		return "sev-cold"
	case ModeSEVWarm:
		return "sev-warm"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Workload describes the arrival process.
type Workload struct {
	// Invocations is the total request count.
	Invocations int
	// MeanInterarrival is the Poisson process's mean gap.
	MeanInterarrival time.Duration
	// ExecTime is the function's service time once the VM is up.
	ExecTime time.Duration
	// Seed drives the arrival draws.
	Seed int64
}

// Config describes the platform.
type Config struct {
	Mode      Mode
	Preset    kernelgen.Preset
	InitrdLen int
	// KeepAlive is how long an idle VM is retained before teardown.
	KeepAlive time.Duration
}

// Stats summarizes a run.
type Stats struct {
	Invocations int
	ColdStarts  int
	WarmStarts  int // pool hits and snapshot restores
	PoolHits    int
	// Latency is arrival-to-response (startup + execution).
	Latency trace.Series
	// StartupOnly is arrival-to-function-start.
	StartupOnly trace.Series
}

// ColdFraction is the share of invocations that paid a cold start.
func (s *Stats) ColdFraction() float64 {
	if s.Invocations == 0 {
		return 0
	}
	return float64(s.ColdStarts) / float64(s.Invocations)
}

// idleVM is one pooled instance.
type idleVM struct {
	expiry sim.Time
}

// platform is the shared scheduler state (procs run exclusively, so no
// locking is needed).
type platform struct {
	cfg      Config
	host     *kvm.Host
	art      *kernelgen.Artifacts
	initrd   []byte
	hashes   measure.ComponentHashes
	pool     []idleVM
	snap     *snapshot.Image
	donor    *kvm.Machine
	stats    Stats
	firstErr error
}

// Run executes the workload against a fresh host and returns statistics.
func Run(eng *sim.Engine, host *kvm.Host, cfg Config, w Workload) (*Stats, error) {
	art, err := kernelgen.Cached(cfg.Preset)
	if err != nil {
		return nil, err
	}
	if cfg.InitrdLen <= 0 {
		cfg.InitrdLen = 2 << 20
	}
	initrd := kernelgen.BuildInitrd(w.Seed, cfg.InitrdLen)
	pf := &platform{
		cfg:    cfg,
		host:   host,
		art:    art,
		initrd: initrd,
		hashes: measure.HashComponents(art.BzImageLZ4, initrd, cfg.Preset.Cmdline),
	}

	// The warm pool needs a donor snapshot, taken before traffic starts.
	if cfg.Mode == ModeSEVWarm {
		eng.Go("donor", func(p *sim.Proc) {
			res, err := pf.coldBoot(p)
			if err != nil {
				pf.firstErr = err
				return
			}
			img, err := snapshot.Capture(p, res.Machine)
			if err != nil {
				pf.firstErr = err
				return
			}
			pf.snap = img
			pf.donor = res.Machine
		})
		eng.Run()
		if pf.firstErr != nil {
			return nil, pf.firstErr
		}
	}

	rng := rand.New(rand.NewSource(w.Seed))
	arrival := time.Duration(0)
	for i := 0; i < w.Invocations; i++ {
		// Exponential inter-arrival gaps.
		gap := time.Duration(-math.Log(1-rng.Float64()) * float64(w.MeanInterarrival))
		arrival += gap
		at := arrival
		eng.Go(fmt.Sprintf("inv-%d", i), func(p *sim.Proc) {
			p.Sleep(at)
			pf.invoke(p, w.ExecTime)
		})
	}
	eng.Run()
	if pf.firstErr != nil {
		return nil, pf.firstErr
	}
	pf.stats.Invocations = w.Invocations
	return &pf.stats, nil
}

// invoke services one request: pool hit, warm restore, or cold boot.
func (pf *platform) invoke(p *sim.Proc, exec time.Duration) {
	arrival := p.Now()

	if vm, ok := pf.takeIdle(p.Now()); ok {
		_ = vm
		pf.stats.PoolHits++
		pf.stats.WarmStarts++
		p.Sleep(500 * time.Microsecond) // dispatch into a live VM
	} else if pf.cfg.Mode == ModeSEVWarm && pf.snap != nil {
		if err := pf.warmRestore(p); err != nil {
			pf.fail(err)
			return
		}
		pf.stats.WarmStarts++
	} else {
		if _, err := pf.coldBoot(p); err != nil {
			pf.fail(err)
			return
		}
		pf.stats.ColdStarts++
	}
	started := p.Now()
	p.Sleep(exec)
	pf.release(p.Now())

	pf.stats.StartupOnly = append(pf.stats.StartupOnly, started.Sub(arrival))
	pf.stats.Latency = append(pf.stats.Latency, p.Now().Sub(arrival))
}

func (pf *platform) fail(err error) {
	if pf.firstErr == nil {
		pf.firstErr = err
	}
}

// takeIdle pops a live pooled VM, discarding expired entries.
func (pf *platform) takeIdle(now sim.Time) (idleVM, bool) {
	for len(pf.pool) > 0 {
		vm := pf.pool[len(pf.pool)-1]
		pf.pool = pf.pool[:len(pf.pool)-1]
		if vm.expiry >= now {
			return vm, true
		}
	}
	return idleVM{}, false
}

// release parks the VM in the keep-alive pool.
func (pf *platform) release(now sim.Time) {
	pf.pool = append(pf.pool, idleVM{expiry: now.Add(pf.cfg.KeepAlive)})
}

func (pf *platform) coldBoot(p *sim.Proc) (*firecracker.Result, error) {
	cfg := firecracker.Config{
		Preset:    pf.cfg.Preset,
		Artifacts: pf.art,
		Initrd:    pf.initrd,
	}
	if pf.cfg.Mode == ModePlain {
		cfg.Level = sev.None
		cfg.Scheme = firecracker.SchemeStock
	} else {
		cfg.Level = sev.SNP
		cfg.Scheme = firecracker.SchemeSEVeriFastBz
		cfg.Hashes = &pf.hashes
		cfg.AllowKeySharing = pf.cfg.Mode == ModeSEVWarm
	}
	return firecracker.Boot(p, pf.host, cfg)
}

func (pf *platform) warmRestore(p *sim.Proc) error {
	m := pf.host.NewMachine(p, pf.snap.Size, sev.SNP)
	m.PrepSEVHost(p)
	pol := sev.DefaultPolicy()
	pol.NoKeySharing = false
	ctx, err := pf.host.PSP.LaunchStartShared(p, m.Mem, pf.donor.Launch, sev.SNP, pol)
	if err != nil {
		return err
	}
	m.Launch = ctx
	if err := snapshot.Restore(p, m, pf.snap); err != nil {
		return err
	}
	p.Sleep(pf.host.Model.Pvalidate(len(pf.snap.Pages)*4096, pf.host.PvalidatePageSize()))
	return nil
}
