package serverless

import (
	"testing"
	"time"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sim"
)

func runPlatform(t *testing.T, mode Mode, keepAlive time.Duration, w Workload) *Stats {
	t.Helper()
	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	stats, err := Run(eng, host, Config{
		Mode:      mode,
		Preset:    kernelgen.Lupine(),
		InitrdLen: 1 << 20,
		KeepAlive: keepAlive,
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func sparseWorkload() Workload {
	// Arrivals far apart: every request misses the keep-alive window.
	return Workload{
		Invocations:      8,
		MeanInterarrival: 30 * time.Second,
		ExecTime:         100 * time.Millisecond,
		Seed:             1,
	}
}

func denseWorkload() Workload {
	// Arrivals bunched: most requests hit the pool.
	return Workload{
		Invocations:      30,
		MeanInterarrival: 50 * time.Millisecond,
		ExecTime:         20 * time.Millisecond,
		Seed:             2,
	}
}

func TestSparseTrafficIsAllCold(t *testing.T) {
	stats := runPlatform(t, ModeSEVCold, time.Millisecond, sparseWorkload())
	if stats.ColdStarts != stats.Invocations {
		t.Fatalf("%d cold of %d; sparse arrivals must all miss the pool",
			stats.ColdStarts, stats.Invocations)
	}
	if stats.ColdFraction() != 1.0 {
		t.Fatalf("cold fraction %.2f", stats.ColdFraction())
	}
}

func TestDenseTrafficHitsPool(t *testing.T) {
	stats := runPlatform(t, ModeSEVCold, 10*time.Second, denseWorkload())
	if stats.PoolHits == 0 {
		t.Fatal("dense arrivals never hit the keep-alive pool")
	}
	if stats.ColdFraction() > 0.7 {
		t.Fatalf("cold fraction %.2f too high for dense traffic", stats.ColdFraction())
	}
}

func TestKeepAliveZeroDisablesPool(t *testing.T) {
	stats := runPlatform(t, ModeSEVCold, 0, denseWorkload())
	if stats.PoolHits != 0 {
		t.Fatalf("pool hits %d with zero keep-alive", stats.PoolHits)
	}
}

func TestSEVColdSlowerThanPlain(t *testing.T) {
	w := sparseWorkload()
	plain := runPlatform(t, ModePlain, time.Second, w)
	sevc := runPlatform(t, ModeSEVCold, time.Second, w)
	if sevc.StartupOnly.Mean() <= plain.StartupOnly.Mean() {
		t.Fatalf("SEV cold startup %v not slower than plain %v",
			sevc.StartupOnly.Mean(), plain.StartupOnly.Mean())
	}
}

func TestWarmPoolCutsSEVStartup(t *testing.T) {
	// §7's promise: shared-key snapshot restore beats cold boot for pool
	// misses.
	w := sparseWorkload()
	cold := runPlatform(t, ModeSEVCold, time.Second, w)
	warm := runPlatform(t, ModeSEVWarm, time.Second, w)
	if warm.StartupOnly.Mean() >= cold.StartupOnly.Mean() {
		t.Fatalf("warm pool startup %v not below cold %v",
			warm.StartupOnly.Mean(), cold.StartupOnly.Mean())
	}
	if warm.ColdStarts != 0 {
		t.Fatalf("%d cold starts despite the snapshot pool", warm.ColdStarts)
	}
}

func TestLatencyIncludesExecution(t *testing.T) {
	w := sparseWorkload()
	stats := runPlatform(t, ModePlain, time.Second, w)
	if stats.Latency.Mean() < stats.StartupOnly.Mean()+w.ExecTime {
		t.Fatal("latency does not include execution time")
	}
}

func TestStatsComplete(t *testing.T) {
	w := denseWorkload()
	stats := runPlatform(t, ModeSEVCold, 10*time.Second, w)
	if len(stats.Latency) != w.Invocations || len(stats.StartupOnly) != w.Invocations {
		t.Fatalf("latency samples %d/%d of %d invocations",
			len(stats.Latency), len(stats.StartupOnly), w.Invocations)
	}
	if stats.ColdStarts+stats.WarmStarts != w.Invocations {
		t.Fatalf("cold %d + warm %d != %d", stats.ColdStarts, stats.WarmStarts, w.Invocations)
	}
}

func TestDeterministicReplay(t *testing.T) {
	w := denseWorkload()
	a := runPlatform(t, ModeSEVCold, 10*time.Second, w)
	b := runPlatform(t, ModeSEVCold, 10*time.Second, w)
	if a.ColdStarts != b.ColdStarts || a.Latency.Mean() != b.Latency.Mean() {
		t.Fatal("platform run not deterministic")
	}
}

func TestModeStrings(t *testing.T) {
	if ModePlain.String() != "plain" || ModeSEVCold.String() != "sev-cold" || ModeSEVWarm.String() != "sev-warm" {
		t.Fatal("mode strings")
	}
}
