package elfx

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func sample() *Image {
	return &Image{
		Entry: 0x1000000,
		Segments: []Segment{
			{Type: PTLoad, Flags: 5, Vaddr: 0x1000000, Data: bytes.Repeat([]byte{0x90}, 4096)},
			{Type: PTLoad, Flags: 6, Vaddr: 0x1400000, Data: []byte("rodata"), Memsz: 8192},
			{Type: PTNote, Flags: 4, Vaddr: 0, Data: []byte("note")},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	in := sample()
	img, err := Parse(Build(in))
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry != in.Entry {
		t.Fatalf("entry %#x, want %#x", img.Entry, in.Entry)
	}
	if len(img.Segments) != len(in.Segments) {
		t.Fatalf("%d segments, want %d", len(img.Segments), len(in.Segments))
	}
	for i := range in.Segments {
		got, want := img.Segments[i], in.Segments[i]
		if got.Type != want.Type || got.Vaddr != want.Vaddr || !bytes.Equal(got.Data, want.Data) {
			t.Errorf("segment %d mismatch", i)
		}
	}
}

func TestMemszBSS(t *testing.T) {
	img, err := Parse(Build(sample()))
	if err != nil {
		t.Fatal(err)
	}
	if img.Segments[1].Memsz != 8192 {
		t.Fatalf("BSS memsz %d, want 8192", img.Segments[1].Memsz)
	}
}

func TestLoadSize(t *testing.T) {
	img := sample()
	total, low, high := img.LoadSize()
	// Segment 0: 4096 bytes at 0x1000000; segment 1: 8192 memsz at
	// 0x1400000. PT_NOTE ignored.
	if total != 4096+8192 {
		t.Fatalf("total %d", total)
	}
	if low != 0x1000000 {
		t.Fatalf("low %#x", low)
	}
	if high != 0x1400000+8192 {
		t.Fatalf("high %#x", high)
	}
}

func TestLoadSizeEmpty(t *testing.T) {
	img := &Image{}
	total, low, high := img.LoadSize()
	if total != 0 || low != 0 || high != 0 {
		t.Fatalf("empty image LoadSize = %d,%d,%d", total, low, high)
	}
}

func TestDeterministicBuild(t *testing.T) {
	if !bytes.Equal(Build(sample()), Build(sample())) {
		t.Fatal("Build is not deterministic; kernel hashes must be reproducible")
	}
}

func TestParseRejectsBadMagic(t *testing.T) {
	b := Build(sample())
	b[0] = 0
	if _, err := Parse(b); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestParseRejectsShort(t *testing.T) {
	if _, err := Parse([]byte{0x7f, 'E', 'L', 'F'}); err == nil {
		t.Fatal("short input accepted")
	}
}

func TestParseRejects32Bit(t *testing.T) {
	b := Build(sample())
	b[4] = 1 // ELFCLASS32
	if _, err := Parse(b); err == nil {
		t.Fatal("32-bit image accepted")
	}
}

func TestParseRejectsWrongMachine(t *testing.T) {
	b := Build(sample())
	b[18] = 0x28 // EM_ARM
	if _, err := Parse(b); err == nil {
		t.Fatal("ARM image accepted")
	}
}

func TestParseRejectsSegmentOverrun(t *testing.T) {
	b := Build(sample())
	// Corrupt the first program header's file size to exceed the file.
	le := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			b[off+i] = byte(v >> (8 * i))
		}
	}
	le(ehSize+32, 1<<40) // p_filesz of first phdr
	if _, err := Parse(b); err == nil {
		t.Fatal("segment overrun accepted")
	}
}

func TestHeaderAndPhdrs(t *testing.T) {
	b := Build(sample())
	hdr, phdrs, err := HeaderAndPhdrs(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(hdr) != ehSize {
		t.Fatalf("header %d bytes, want %d", len(hdr), ehSize)
	}
	if len(phdrs) != 3*phSize {
		t.Fatalf("phdrs %d bytes, want %d", len(phdrs), 3*phSize)
	}
	// The pieces must parse back to the same segment table when reassembled
	// at their original offsets (the verifier relies on this).
	img, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Segments) != 3 {
		t.Fatal("reparse lost segments")
	}
}

func TestQuickRoundTripArbitrarySegments(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func(n uint8, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		img := &Image{Entry: uint64(r.Intn(1 << 30))}
		for i := 0; i < int(n%6)+1; i++ {
			data := make([]byte, r.Intn(2000))
			r.Read(data)
			img.Segments = append(img.Segments, Segment{
				Type:  PTLoad,
				Vaddr: uint64(i) * 0x200000,
				Data:  data,
			})
		}
		got, err := Parse(Build(img))
		if err != nil || got.Entry != img.Entry || len(got.Segments) != len(img.Segments) {
			return false
		}
		for i := range img.Segments {
			if !bytes.Equal(got.Segments[i].Data, img.Segments[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentAlignment(t *testing.T) {
	b := Build(sample())
	img, _ := Parse(b)
	_ = img
	// Every segment's file offset is 16-aligned by construction; verify by
	// locating the data of segment 0 (NOP sled) in the file.
	idx := bytes.Index(b, bytes.Repeat([]byte{0x90}, 4096))
	if idx < 0 || idx%16 != 0 {
		t.Fatalf("segment 0 at offset %d, want 16-aligned", idx)
	}
}
