// Package elfx writes and reads the minimal subset of ELF64 needed for a
// Linux vmlinux image: the file header, program headers, and PT_LOAD
// segments. The VMM's direct-boot loader and the boot verifier's optimized
// fw_cfg protocol (paper §5) both parse images produced here.
package elfx

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ELF constants for the subset we implement: x86-64 executables.
const (
	ehSize = 64 // ELF64 file header size
	phSize = 56 // program header size

	PTLoad = 1 // PT_LOAD segment type
	PTNote = 4 // PT_NOTE segment type

	etExec  = 2  // ET_EXEC
	emX8664 = 62 // EM_X86_64
)

// ErrNotELF reports input that is not a parseable ELF64 image.
var ErrNotELF = errors.New("elfx: not a valid ELF64 image")

// Segment is one program-header entry plus its file data.
type Segment struct {
	Type  uint32 // PTLoad or PTNote
	Flags uint32 // PF_X|PF_W|PF_R bits; informational here
	Vaddr uint64 // load address (physical == virtual for vmlinux)
	Data  []byte // file content; loaded size
	// Memsz extends beyond len(Data) for BSS; the loader zero-fills.
	Memsz uint64
}

// Image is a minimal ELF64 executable.
type Image struct {
	Entry    uint64
	Segments []Segment
}

// Build serializes the image: header, program header table, then segment
// data in order, each aligned to 16 bytes. The layout is deterministic.
func Build(img *Image) []byte {
	n := len(img.Segments)
	offset := uint64(ehSize + n*phSize)
	offsets := make([]uint64, n)
	for i, seg := range img.Segments {
		offset = (offset + 15) &^ 15
		offsets[i] = offset
		offset += uint64(len(seg.Data))
	}
	out := make([]byte, offset)

	// ELF identification.
	copy(out, []byte{0x7f, 'E', 'L', 'F', 2 /*64-bit*/, 1 /*LE*/, 1 /*version*/})
	le := binary.LittleEndian
	le.PutUint16(out[16:], etExec)
	le.PutUint16(out[18:], emX8664)
	le.PutUint32(out[20:], 1) // EV_CURRENT
	le.PutUint64(out[24:], img.Entry)
	le.PutUint64(out[32:], ehSize) // phoff
	le.PutUint64(out[40:], 0)      // shoff: no sections
	le.PutUint16(out[52:], ehSize)
	le.PutUint16(out[54:], phSize)
	le.PutUint16(out[56:], uint16(n))

	for i, seg := range img.Segments {
		ph := out[ehSize+i*phSize:]
		le.PutUint32(ph[0:], seg.Type)
		le.PutUint32(ph[4:], seg.Flags)
		le.PutUint64(ph[8:], offsets[i])
		le.PutUint64(ph[16:], seg.Vaddr) // vaddr
		le.PutUint64(ph[24:], seg.Vaddr) // paddr
		le.PutUint64(ph[32:], uint64(len(seg.Data)))
		memsz := seg.Memsz
		if memsz < uint64(len(seg.Data)) {
			memsz = uint64(len(seg.Data))
		}
		le.PutUint64(ph[40:], memsz)
		le.PutUint64(ph[48:], 16) // align
		copy(out[offsets[i]:], seg.Data)
	}
	return out
}

// Parse reads an image produced by Build (or any plain ELF64 little-endian
// executable with a program header table).
func Parse(b []byte) (*Image, error) {
	if len(b) < ehSize {
		return nil, fmt.Errorf("%w: %d bytes is too short", ErrNotELF, len(b))
	}
	if b[0] != 0x7f || b[1] != 'E' || b[2] != 'L' || b[3] != 'F' {
		return nil, fmt.Errorf("%w: bad magic", ErrNotELF)
	}
	if b[4] != 2 || b[5] != 1 {
		return nil, fmt.Errorf("%w: not 64-bit little-endian", ErrNotELF)
	}
	le := binary.LittleEndian
	if m := le.Uint16(b[18:]); m != emX8664 {
		return nil, fmt.Errorf("%w: machine %d, want x86-64", ErrNotELF, m)
	}
	img := &Image{Entry: le.Uint64(b[24:])}
	phoff := le.Uint64(b[32:])
	phentsize := int(le.Uint16(b[54:]))
	phnum := int(le.Uint16(b[56:]))
	if phentsize < phSize {
		return nil, fmt.Errorf("%w: phentsize %d too small", ErrNotELF, phentsize)
	}
	for i := 0; i < phnum; i++ {
		off := int(phoff) + i*phentsize
		if off+phSize > len(b) {
			return nil, fmt.Errorf("%w: program header %d out of range", ErrNotELF, i)
		}
		ph := b[off:]
		seg := Segment{
			Type:  le.Uint32(ph[0:]),
			Flags: le.Uint32(ph[4:]),
			Vaddr: le.Uint64(ph[16:]),
			Memsz: le.Uint64(ph[40:]),
		}
		fileOff := le.Uint64(ph[8:])
		fileSz := le.Uint64(ph[32:])
		if fileOff+fileSz > uint64(len(b)) {
			return nil, fmt.Errorf("%w: segment %d data out of range", ErrNotELF, i)
		}
		seg.Data = make([]byte, fileSz)
		copy(seg.Data, b[fileOff:fileOff+fileSz])
		img.Segments = append(img.Segments, seg)
	}
	return img, nil
}

// LoadSize returns total memory the image occupies when loaded (including
// BSS), and the lowest/highest load addresses.
func (img *Image) LoadSize() (total uint64, low, high uint64) {
	low = ^uint64(0)
	for _, seg := range img.Segments {
		if seg.Type != PTLoad {
			continue
		}
		memsz := seg.Memsz
		if memsz < uint64(len(seg.Data)) {
			memsz = uint64(len(seg.Data))
		}
		if seg.Vaddr < low {
			low = seg.Vaddr
		}
		if end := seg.Vaddr + memsz; end > high {
			high = end
		}
		total += memsz
	}
	if low == ^uint64(0) {
		low = 0
	}
	return total, low, high
}

// HeaderAndPhdrs returns the raw file header and program header table of a
// serialized image — the pieces the optimized fw_cfg protocol transfers
// separately from the loadable segments (paper §5, steps 1-4).
func HeaderAndPhdrs(b []byte) (fileHeader, phdrs []byte, err error) {
	if len(b) < ehSize {
		return nil, nil, fmt.Errorf("%w: short header", ErrNotELF)
	}
	le := binary.LittleEndian
	phoff := le.Uint64(b[32:])
	phentsize := int(le.Uint16(b[54:]))
	phnum := int(le.Uint16(b[56:]))
	end := int(phoff) + phentsize*phnum
	if end > len(b) {
		return nil, nil, fmt.Errorf("%w: program headers out of range", ErrNotELF)
	}
	return b[:ehSize], b[phoff:end], nil
}

// FileRegion is one contiguous span of a serialized ELF file, classified
// for the measured-direct-boot streaming protocol: Load regions carry a
// PT_LOAD segment's bytes to their run address; non-Load regions (header,
// program headers, notes, alignment padding) are hashed but discarded.
type FileRegion struct {
	Off   uint64 // file offset
	Len   int
	Vaddr uint64 // destination, meaningful when Load
	Load  bool
}

// FileRegions tiles the entire serialized image into regions in file
// order. The concatenation of all regions is exactly the file, so a
// streaming hash over them equals the hash of the file.
func FileRegions(b []byte) ([]FileRegion, error) {
	if len(b) < ehSize {
		return nil, fmt.Errorf("%w: short header", ErrNotELF)
	}
	le := binary.LittleEndian
	phoff := le.Uint64(b[32:])
	phentsize := uint64(le.Uint16(b[54:]))
	phnum := uint64(le.Uint16(b[56:]))
	// All arithmetic stays in uint64: a hostile header with phoff near
	// 2^64 must be rejected here, not wrap through int and panic below.
	// Each entry must hold the fields we read (up to offset 40).
	if phnum > 0 && phentsize < 40 {
		return nil, fmt.Errorf("%w: program header entry size %d too small", ErrNotELF, phentsize)
	}
	span := phentsize * phnum
	if phoff > uint64(len(b)) || span > uint64(len(b))-phoff {
		return nil, fmt.Errorf("%w: program headers out of range", ErrNotELF)
	}
	type load struct {
		off   uint64
		size  uint64
		vaddr uint64
	}
	var loads []load
	for i := uint64(0); i < phnum; i++ {
		ph := b[phoff+i*phentsize:]
		if le.Uint32(ph[0:]) != PTLoad {
			continue
		}
		loads = append(loads, load{
			off:   le.Uint64(ph[8:]),
			size:  le.Uint64(ph[32:]),
			vaddr: le.Uint64(ph[16:]),
		})
	}
	// Loads must be in increasing, non-overlapping file order (true for
	// images from Build and for real vmlinux files).
	for i := 1; i < len(loads); i++ {
		prevEnd := loads[i-1].off + loads[i-1].size
		if prevEnd < loads[i-1].off || loads[i].off < prevEnd {
			return nil, fmt.Errorf("%w: overlapping PT_LOAD file ranges", ErrNotELF)
		}
	}
	var regions []FileRegion
	cursor := uint64(0)
	for _, l := range loads {
		if l.off > uint64(len(b)) || l.size > uint64(len(b))-l.off {
			return nil, fmt.Errorf("%w: PT_LOAD out of file", ErrNotELF)
		}
		if l.off > cursor {
			regions = append(regions, FileRegion{Off: cursor, Len: int(l.off - cursor)})
		}
		regions = append(regions, FileRegion{Off: l.off, Len: int(l.size), Vaddr: l.vaddr, Load: true})
		cursor = l.off + l.size
	}
	if cursor < uint64(len(b)) {
		regions = append(regions, FileRegion{Off: cursor, Len: len(b) - int(cursor)})
	}
	return regions, nil
}
