package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"github.com/severifast/severifast/internal/artifact"
	"github.com/severifast/severifast/internal/fleet"
	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/telemetry"
)

// testInitrd builds a small valid initrd so boots stay fast.
func testInitrd(n int) []byte {
	return kernelgen.BuildInitrd(1, n)
}

// runScenario builds a cluster, registers images, replays a trace, and
// returns the cluster and its summary.
func runScenario(t *testing.T, cfg Config, spec TraceSpec, images int, exec time.Duration) (*Cluster, Summary) {
	t.Helper()
	eng := sim.NewEngine()
	c, err := New(eng, cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	var imgs []*Image
	for i := 0; i < images; i++ {
		preset := kernelgen.Lupine()
		preset.Cmdline = fmt.Sprintf("%s img=%d", preset.Cmdline, i)
		// Distinct initrd per image: each image is its own blob in the
		// replication layer, so placement geography shows up in bytes.
		img, err := c.RegisterImage(fmt.Sprintf("img-%d", i), preset, kernelgen.BuildInitrd(int64(i+1), 256<<10))
		if err != nil {
			t.Fatalf("RegisterImage: %v", err)
		}
		imgs = append(imgs, img)
	}
	arr, err := spec.Generate()
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	if err := c.Play(arr, imgs, exec); err != nil {
		t.Fatalf("Play: %v", err)
	}
	eng.Run()
	return c, c.Summarize()
}

func smallSpec(arrivals, images int) TraceSpec {
	return TraceSpec{
		Kind:     TraceZipf,
		Arrivals: arrivals,
		MeanGap:  500 * time.Microsecond,
		Images:   images,
		Tenants:  3,
		ZipfS:    1.2,
		Seed:     11,
	}
}

// TestClusterDeterminism: two identical runs must produce byte-equal
// JSON summaries — the property the CI smoke job and the acceptance
// criteria pin at 8 hosts/512 boots.
func TestClusterDeterminism(t *testing.T) {
	run := func() []byte {
		cfg := Config{
			Hosts: 4, ASIDsPerHost: 4, WorkersPerHost: 2,
			EnableWarm: true, Seed: 42,
			Telemetry: telemetry.NewRegistry(),
		}
		cfg.Policy, _ = PolicyByName("cache-affinity", cfg.Seed)
		c, sum := runScenario(t, cfg, smallSpec(64, 6), 6, 2*time.Millisecond)
		if err := c.Err(); err != nil {
			t.Fatalf("cluster error: %v", err)
		}
		b, err := json.Marshal(sum)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("summaries differ across identical runs:\n%s\n%s", a, b)
	}
}

// TestCacheAffinityBeatsRandom is the acceptance comparison: cache-
// affinity placement must serve a higher warm/cached-cold fraction than
// random placement, and move fewer replicated bytes. Warm pools are off
// so the per-host measured-image cache is the differentiator: random
// placement pays a cold measurement pass per (host, image) first touch,
// affinity concentrates an image's boots where its measurement lives.
// (With warm pools on, every host self-captures on its first cold boot
// and both policies converge — the warm path is covered by
// TestWarmAdoption instead.)
func TestCacheAffinityBeatsRandom(t *testing.T) {
	run := func(policy string) Summary {
		cfg := Config{
			Hosts: 4, ASIDsPerHost: 4, WorkersPerHost: 2,
			EnableWarm: false, Seed: 42,
			Telemetry: telemetry.NewRegistry(),
		}
		var err error
		cfg.Policy, err = PolicyByName(policy, cfg.Seed)
		if err != nil {
			t.Fatalf("policy: %v", err)
		}
		c, sum := runScenario(t, cfg, smallSpec(96, 8), 8, 2*time.Millisecond)
		if err := c.Err(); err != nil {
			t.Fatalf("%s run error: %v", policy, err)
		}
		return sum
	}
	random := run("random")
	affinity := run("cache-affinity")
	if affinity.HitRate <= random.HitRate {
		t.Errorf("cache-affinity hit rate %.3f not above random %.3f",
			affinity.HitRate, random.HitRate)
	}
	randBytes := random.Replication.PeerBytes + random.Replication.OriginBytes
	affBytes := affinity.Replication.PeerBytes + affinity.Replication.OriginBytes
	if affBytes >= randBytes {
		t.Errorf("cache-affinity moved %d replication bytes, random %d — affinity should move less",
			affBytes, randBytes)
	}
}

// TestASIDCapRespected: the per-host live-guest count must never exceed
// the pool, and with demand far beyond capacity every pool should hit
// its peak.
func TestASIDCapRespected(t *testing.T) {
	cfg := Config{
		Hosts: 2, ASIDsPerHost: 3, WorkersPerHost: 3,
		Seed:      5,
		Telemetry: telemetry.NewRegistry(),
	}
	cfg.Policy, _ = PolicyByName("binpack", cfg.Seed)
	spec := TraceSpec{
		Kind: TraceBursty, Arrivals: 48, MeanGap: 100 * time.Microsecond,
		Images: 2, BurstFactor: 8, BurstOn: time.Millisecond, BurstOff: 2 * time.Millisecond,
		Seed: 5,
	}
	// Long exec pins ASIDs, forcing the dispatcher to park on exhaustion.
	c, sum := runScenario(t, cfg, spec, 2, 20*time.Millisecond)
	if err := c.Err(); err != nil {
		t.Fatalf("cluster error: %v", err)
	}
	if sum.Served != 48 {
		t.Fatalf("served %d of 48 (failed %d, shed %d)", sum.Served, sum.Failed, sum.Shed)
	}
	for _, h := range sum.PerHost {
		if h.ASIDPeak > cfg.ASIDsPerHost {
			t.Errorf("%s: ASID peak %d exceeds pool of %d", h.Host, h.ASIDPeak, cfg.ASIDsPerHost)
		}
		if h.ASIDPeak != cfg.ASIDsPerHost {
			t.Errorf("%s: ASID peak %d never saturated the pool of %d under overload",
				h.Host, h.ASIDPeak, cfg.ASIDsPerHost)
		}
	}
	// The occupancy gauges must have recorded the saturation.
	if got := cfg.Telemetry.Gauge("severifast_cluster_asid_peak", telemetry.A("host", "h0")).Value(); got != float64(cfg.ASIDsPerHost) {
		t.Errorf("asid peak gauge = %v, want %d", got, cfg.ASIDsPerHost)
	}
}

// TestClusterBackpressure: a bounded admission queue sheds load instead
// of growing without limit.
func TestClusterBackpressure(t *testing.T) {
	cfg := Config{
		Hosts: 1, ASIDsPerHost: 1, WorkersPerHost: 1, QueueDepth: 2,
		Seed:      9,
		Telemetry: telemetry.NewRegistry(),
	}
	spec := TraceSpec{
		Kind: TraceUniform, Arrivals: 24, MeanGap: 50 * time.Microsecond,
		Images: 1, Seed: 9,
	}
	c, sum := runScenario(t, cfg, spec, 1, 30*time.Millisecond)
	if sum.Shed == 0 {
		t.Error("overloaded bounded queue shed nothing")
	}
	if sum.Served+sum.Shed+sum.Failed != sum.Submitted {
		t.Errorf("accounting leak: served %d + shed %d + failed %d != submitted %d",
			sum.Served, sum.Shed, sum.Failed, sum.Submitted)
	}
	if sum.QueueMax > cfg.QueueDepth {
		t.Errorf("queue high-water %d exceeds bound %d", sum.QueueMax, cfg.QueueDepth)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cluster error: %v", err)
	}
}

// TestWarmAdoption: with one ASID per host and two hosts, a hot image's
// boots spill to the second host, which must adopt the sealed snapshot
// over the fabric (peer bytes) and serve warm instead of cold booting.
// The arrival schedule is hand-built so the spill provably lands after
// the first boot's publish: boot 1 cold-boots on h0 and holds its only
// ASID for a long exec; boot 2 arrives well after the publish, finds h0
// full, and must adopt on h1.
func TestWarmAdoption(t *testing.T) {
	cfg := Config{
		Hosts: 2, ASIDsPerHost: 1, WorkersPerHost: 1,
		EnableWarm: true, Seed: 3,
		Telemetry: telemetry.NewRegistry(),
	}
	cfg.Policy, _ = PolicyByName("asid-pressure", cfg.Seed)
	eng := sim.NewEngine()
	c, err := New(eng, cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	img, err := c.RegisterImage("hot", kernelgen.Lupine(), testInitrd(64<<10))
	if err != nil {
		t.Fatalf("RegisterImage: %v", err)
	}
	arr := []Arrival{{At: 0}}
	for i := 0; i < 5; i++ {
		arr = append(arr, Arrival{At: 5*time.Second + time.Duration(i)*10*time.Millisecond})
	}
	if err := c.Play(arr, []*Image{img}, 30*time.Second); err != nil {
		t.Fatalf("Play: %v", err)
	}
	eng.Run()
	sum := c.Summarize()
	if err := c.Err(); err != nil {
		t.Fatalf("cluster error: %v", err)
	}
	if sum.WarmPool.Captures != 1 {
		t.Errorf("captures = %d, want 1", sum.WarmPool.Captures)
	}
	if sum.WarmPool.Adoptions == 0 {
		t.Error("no host adopted the published warm snapshot")
	}
	if sum.Replication.PeerBytes == 0 {
		t.Error("adoption moved no peer bytes — sealed blob not replicated")
	}
	warm := sum.TierBoots["warm"].Boots
	cold := sum.TierBoots["cold"].Boots
	if warm == 0 {
		t.Error("no warm boots despite warm pool")
	}
	// Only the very first boot pays the cold path: h1's first touch of
	// the image happens after the publish and adopts instead.
	if cold != 1 {
		t.Errorf("%d cold boots of one image — want exactly the first", cold)
	}
}

// TestRevocationFlipsAdmissions is the policy-gate acceptance scenario:
// a cluster whose dispatch, fleet, and broker all answer to the broker's
// policy store, with the broker's minimum-TCB platform claim revoked at
// a fixed virtual instant mid-run. Every boot dispatched at or before
// the instant serves; every later one is refused at the dispatch gate
// with a per-rule denial count — and two identical runs agree on the
// flip boot-for-boot, byte-for-byte.
func TestRevocationFlipsAdmissions(t *testing.T) {
	// Arrivals span ~2.3s; the revocation lands mid-trace, late enough
	// that early boots finish end to end before it.
	revokeAt := 1200 * time.Millisecond
	run := func() ([]byte, Summary, map[string]int) {
		auth := kbs.NewAuthority(31)
		tcb, err := kbs.ParseTCB("2.1.8.115")
		if err != nil {
			t.Fatalf("tcb: %v", err)
		}
		broker := kbs.NewBroker(auth.Root(), kbs.Config{MinTCB: tcb, Seed: 31})
		for i := 0; i < 3; i++ {
			broker.AddTenant(fmt.Sprintf("t%d", i), []byte(fmt.Sprintf("secret-%d", i)))
		}
		cfg := Config{
			Hosts: 2, ASIDsPerHost: 4, WorkersPerHost: 2,
			Seed:      31,
			Telemetry: telemetry.NewRegistry(),
			KBS:       broker,
			Authority: auth,
			TCB:       tcb,
			Admission: broker.PolicyEngine(),
			Retry:     fleet.RetryPolicy{Max: 1, Backoff: time.Millisecond},
		}
		cfg.Policy, _ = PolicyByName("asid-pressure", cfg.Seed)
		eng := sim.NewEngine()
		c, err := New(eng, cfg)
		if err != nil {
			t.Fatalf("cluster.New: %v", err)
		}
		img, err := c.RegisterImage("fn", kernelgen.Lupine(), testInitrd(64<<10))
		if err != nil {
			t.Fatalf("RegisterImage: %v", err)
		}
		// The revocation lands at a virtual instant: the floor claim stays
		// good through revokeAt inclusive, and every evaluation strictly
		// after it must refuse.
		eng.After(revokeAt, func() {
			if err := broker.Policy().RevokeClaim("*", kbs.MinTCBClaimID, eng.Now()); err != nil {
				t.Errorf("RevokeClaim: %v", err)
			}
		})
		spec := TraceSpec{
			Kind: TraceUniform, Arrivals: 24, MeanGap: 100 * time.Millisecond,
			Images: 1, Tenants: 3, Seed: 31,
		}
		arr, err := spec.Generate()
		if err != nil {
			t.Fatalf("trace: %v", err)
		}
		if err := c.Play(arr, []*Image{img}, time.Millisecond); err != nil {
			t.Fatalf("Play: %v", err)
		}
		eng.Run()
		sum := c.Summarize()
		b, err := json.Marshal(sum)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		stats := broker.Policy().Stats()
		return b, sum, stats.DenialsByRule
	}
	b1, sum, byRule := run()
	b2, _, byRule2 := run()
	if !bytes.Equal(b1, b2) {
		t.Errorf("summaries differ across identical runs:\n%s\n%s", b1, b2)
	}
	if sum.PolicyDenied == 0 {
		t.Fatal("revocation flipped nothing: no dispatch-gate denials")
	}
	if sum.Served == 0 {
		t.Fatal("no boot served before the revocation instant")
	}
	// Every failure is policy-rooted: refused at the dispatch gate, at a
	// shard's serve-time re-check, or at the broker itself — depending on
	// where each in-flight boot stood when the revocation landed. All
	// three gates consult the same store.
	fleetDenied, brokerDenied := 0, 0
	for _, h := range sum.PerHost {
		for _, n := range h.PolicyDenials {
			fleetDenied += n
		}
		brokerDenied += h.Denials["policy"]
	}
	if sum.Failed != sum.PolicyDenied+fleetDenied+brokerDenied {
		t.Errorf("failed %d != dispatch %d + fleet %d + broker %d denials — policy gates must be the only failures",
			sum.Failed, sum.PolicyDenied, fleetDenied, brokerDenied)
	}
	if sum.Served+sum.Failed+sum.Shed != sum.Submitted {
		t.Errorf("accounting leak: served %d + failed %d + shed %d != submitted %d",
			sum.Served, sum.Failed, sum.Shed, sum.Submitted)
	}
	// The per-rule counters: a revoked floor claim refuses at the platform
	// rule with the claim-expired reason, and nothing else denies.
	if byRule["platform/claim-expired"] == 0 {
		t.Errorf("per-rule denial counters missing platform/claim-expired: %v", byRule)
	}
	if fmt.Sprint(byRule) != fmt.Sprint(byRule2) {
		t.Errorf("per-rule counters differ across identical runs: %v vs %v", byRule, byRule2)
	}
}

// outageKBS makes one host's broker transport fail unconditionally.
// Failures are transport errors (not denials), the food of the circuit
// breaker.
type outageKBS struct{ inner kbs.Service }

func (f *outageKBS) Challenge(string, sim.Time) (kbs.Challenge, error) {
	return kbs.Challenge{}, fmt.Errorf("kbs transport: connection refused")
}
func (f *outageKBS) Redeem(kbs.RedeemRequest, sim.Time) (*kbs.RedeemResult, error) {
	return nil, fmt.Errorf("kbs transport: connection refused")
}
func (f *outageKBS) Provision(d [32]byte, l string) error { return f.inner.Provision(d, l) }
func (f *outageKBS) Revoke(c string) error                { return f.inner.Revoke(c) }
func (f *outageKBS) Stats() (kbs.Stats, error)            { return f.inner.Stats() }

// TestPerHostBreakerIsolation: host 0's broker transport is dead for
// the whole run. Its own circuit breaker must open — and the other
// host's must stay closed, keep attesting, and serve its boots. This is
// the per-host wiring of the PR 5 breaker: one degraded host must not
// poison cluster-wide admission.
func TestPerHostBreakerIsolation(t *testing.T) {
	auth := kbs.NewAuthority(77)
	tcb, err := kbs.ParseTCB("3.8.0.9")
	if err != nil {
		t.Fatalf("tcb: %v", err)
	}
	broker := kbs.NewBroker(auth.Root(), kbs.Config{MinTCB: tcb, Seed: 77})
	for i := 0; i < 3; i++ {
		broker.AddTenant(fmt.Sprintf("t%d", i), []byte(fmt.Sprintf("secret-%d", i)))
	}
	cfg := Config{
		Hosts: 2, ASIDsPerHost: 4, WorkersPerHost: 2,
		Seed:      77,
		Telemetry: telemetry.NewRegistry(),
		KBS:       broker,
		Authority: auth,
		TCB:       tcb,
		Breaker:   fleet.BreakerPolicy{Threshold: 2, Cooldown: 50 * time.Millisecond},
		Retry:     fleet.RetryPolicy{Max: 1, Backoff: time.Millisecond},
		WrapKBS: func(host int, svc kbs.Service) kbs.Service {
			if host == 0 {
				return &outageKBS{inner: svc}
			}
			return svc
		},
	}
	cfg.Policy, _ = PolicyByName("asid-pressure", cfg.Seed)
	spec := TraceSpec{
		Kind: TraceUniform, Arrivals: 24, MeanGap: 2 * time.Millisecond,
		Images: 2, Tenants: 3, Seed: 77,
	}
	_, sum := runScenario(t, cfg, spec, 2, time.Millisecond)
	// Do NOT assert on c.Err(): host 0's boots legitimately fail with
	// deterministic breaker denials; isolation is the property under test.
	h0, h1 := sum.PerHost[0], sum.PerHost[1]
	if h0.BreakerStates["open"] == 0 {
		t.Errorf("host 0 breaker never opened under a total outage: %+v", h0.BreakerStates)
	}
	if h0.Attested != 0 {
		t.Errorf("host 0 attested %d boots through a dead transport", h0.Attested)
	}
	if h1.BreakerStates["open"] != 0 {
		t.Errorf("host 1 breaker opened (%+v) — outage leaked across hosts", h1.BreakerStates)
	}
	if h1.Attested == 0 {
		t.Error("healthy host attested nothing")
	}
	if h1.Failed != 0 {
		t.Errorf("healthy host failed %d boots", h1.Failed)
	}
	if sum.Served == 0 {
		t.Error("cluster served nothing despite a healthy host")
	}
}

// TestClusterRace4x64 is the race-detector scenario from the issue: a
// 4-host, 64-VM cluster with warm pools, shared telemetry, and the
// full per-host machinery. CI runs the package under -race; this test
// exists to put cross-goroutine surfaces (caches, registry, intern
// table) under cluster-shaped load.
func TestClusterRace4x64(t *testing.T) {
	cfg := Config{
		Hosts: 4, ASIDsPerHost: 4, WorkersPerHost: 2,
		EnableWarm: true, Seed: 64,
		Telemetry: telemetry.NewRegistry(),
	}
	cfg.Policy, _ = PolicyByName("cache-affinity", cfg.Seed)
	spec := TraceSpec{
		Kind: TraceZipf, Arrivals: 64, MeanGap: 300 * time.Microsecond,
		Images: 6, Tenants: 4, ZipfS: 1.3, Seed: 64,
	}
	c, sum := runScenario(t, cfg, spec, 6, 3*time.Millisecond)
	if err := c.Err(); err != nil {
		t.Fatalf("cluster error: %v", err)
	}
	if sum.Served != 64 {
		t.Fatalf("served %d of 64 (failed %d, shed %d)", sum.Served, sum.Failed, sum.Shed)
	}
	total := 0
	for _, h := range sum.PerHost {
		total += h.Boots
	}
	if total != 64 {
		t.Errorf("per-host boots sum to %d, want 64", total)
	}
}

// TestReplicationChargesAppearInSummary: a cold multi-host run must
// show origin pulls for the kernel/initrd and a nonzero makespan
// contribution from them (transfer latency is on the boot path).
func TestReplicationChargesAppearInSummary(t *testing.T) {
	cfg := Config{
		Hosts: 2, ASIDsPerHost: 2, WorkersPerHost: 1,
		Seed: 21, Telemetry: telemetry.NewRegistry(),
		Transfer: artifact.TransferCost{
			OriginLatency: 5 * time.Millisecond, OriginBytesPerSec: 1e9,
			PeerLatency: time.Millisecond, PeerBytesPerSec: 2e9,
		},
	}
	cfg.Policy, _ = PolicyByName("asid-pressure", cfg.Seed)
	spec := TraceSpec{
		Kind: TraceUniform, Arrivals: 8, MeanGap: 100 * time.Microsecond,
		Images: 2, Seed: 21,
	}
	c, sum := runScenario(t, cfg, spec, 2, 0)
	if err := c.Err(); err != nil {
		t.Fatalf("cluster error: %v", err)
	}
	if sum.Replication.OriginFetches == 0 {
		t.Error("no origin fetches recorded for a cold cluster")
	}
	if sum.Replication.OriginBytes == 0 {
		t.Error("origin fetches moved no bytes")
	}
	// Both hosts booted, so both must have pulled the kernel once and
	// hit locally afterwards.
	for _, h := range sum.PerHost {
		if h.Boots > 1 && h.Replication.LocalHits == 0 {
			t.Errorf("%s: repeat boots produced no local replication hits", h.Host)
		}
	}
	// The fetch counters must be mirrored into telemetry.
	got := cfg.Telemetry.Counter("severifast_replication_fetch_total",
		telemetry.A("host", "h0"), telemetry.A("source", "origin")).Value()
	if got == 0 {
		t.Error("replication telemetry counter empty")
	}
}
