package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/severifast/severifast/internal/fleet"
	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/telemetry"
)

// StormConfig scripts a fleet-wide trust event against a running
// cluster: a platform-generation revocation storm, a minimum-TCB floor
// bump, and a rolling per-host firmware drift — all at fixed virtual
// instants, so the cascade through the broker, the dispatch gate, every
// shard's fleet admission, and the warm pools replays bit for bit.
type StormConfig struct {
	// At is the storm instant: every VCEK claim of Generation is revoked
	// and the floor bumped here. The boundary is inclusive, matching the
	// rest of the trust plane: an exchange at exactly At still admits,
	// one instant later is denied.
	At time.Duration
	// Generation names the chip generation to distrust ("gen0"). Empty
	// skips the revocation wave.
	Generation string
	// Floor, when non-zero, is the new minimum TCB filed at At.
	Floor kbs.TCB
	// DriftTo is the firmware level hosts step to on the rolling update
	// schedule; the zero value defaults to Floor.
	DriftTo kbs.TCB
	// DriftStart and DriftInterval schedule the rolling drift: one host
	// re-enrolls per interval tick starting at DriftStart, in an order
	// drawn from the cluster seed. DriftInterval 0 disables drift.
	DriftStart    time.Duration
	DriftInterval time.Duration
}

// stormState is the live accounting the storm and drift processes and
// bootDone share; Summarize folds it into StormSummary.
type stormState struct {
	cfg   StormConfig
	fired bool
	at    sim.Time

	revokedHosts     int
	drifted          int
	invalidations    int
	invalidatedBytes int64
	reseeds          int
	taintedServed    int

	// Recovery: a host is green once it serves its first boot at or
	// after the storm instant; the run is green when every non-revoked
	// host is.
	green        []bool
	pendingGreen int
	greenAt      sim.Time

	preDenials map[string]int
}

// InstallStorm arms the storm and drift processes on the cluster's
// engine. Call it after New and before eng.Run; b must be the broker
// behind Config.KBS when the storm revokes or bumps (the revocation and
// floor APIs live on the concrete broker, not the Service interface).
func (c *Cluster) InstallStorm(b *kbs.Broker, sc StormConfig) error {
	if c.storm != nil {
		return errors.New("cluster: storm already installed")
	}
	if (sc.Generation != "" || sc.Floor != (kbs.TCB{})) && b == nil {
		return errors.New("cluster: storm revocation needs the broker")
	}
	drift := sc.DriftInterval > 0
	if drift && c.cfg.Authority == nil {
		return errors.New("cluster: rolling drift needs Config.Authority (re-enrollment)")
	}
	st := &stormState{cfg: sc, green: make([]bool, len(c.shards))}
	c.storm = st
	c.eng.Go("storm", func(p *sim.Proc) { c.runStorm(p, b, st) })
	if drift {
		c.eng.Go("tcb-drift", func(p *sim.Proc) { c.runDrift(p, st) })
	}
	return nil
}

// runStorm lands the storm at its instant: revoke the generation's
// chips, bump the floor, evict every warm pool whose donor is now
// distrusted, and start the recovery clock.
func (c *Cluster) runStorm(p *sim.Proc, b *kbs.Broker, st *stormState) {
	if st.cfg.At > 0 {
		p.Sleep(st.cfg.At)
	}
	at := p.Now()
	st.at = at
	st.preDenials = c.denialCounts()
	for _, s := range c.shards {
		if st.cfg.Generation == "" || s.gen != st.cfg.Generation {
			continue
		}
		if err := b.RevokeAt("chip-"+s.Name, at); err != nil {
			c.stormFail(fmt.Errorf("cluster: revoking %s: %w", s.Name, err))
			return
		}
		s.revoked = true
		st.revokedHosts++
		c.cfg.Telemetry.Counter("severifast_cluster_storm_revocations_total",
			telemetry.A("host", s.Name)).Inc()
	}
	if st.cfg.Floor != (kbs.TCB{}) {
		if err := b.BumpFloor(st.cfg.Floor, at); err != nil {
			c.stormFail(fmt.Errorf("cluster: bumping floor: %w", err))
			return
		}
		c.floor = st.cfg.Floor
	}
	c.invalidateTaintedWarm(st)
	for _, s := range c.shards {
		if !s.revoked {
			st.pendingGreen++
		}
	}
	if st.pendingGreen == 0 {
		st.greenAt = at
	}
	st.fired = true
}

// runDrift steps hosts to the target firmware level, one per interval
// tick, in a seed-drawn order. A tick whose host is revoked or already
// current passes idle, so the schedule itself is data-independent.
func (c *Cluster) runDrift(p *sim.Proc, st *stormState) {
	target := st.cfg.DriftTo
	if target == (kbs.TCB{}) {
		target = st.cfg.Floor
	}
	if target == (kbs.TCB{}) {
		return
	}
	if st.cfg.DriftStart > 0 {
		p.Sleep(st.cfg.DriftStart)
	}
	order := rand.New(rand.NewSource(c.cfg.Seed ^ 0x5bd1e995)).Perm(len(c.shards))
	for k, idx := range order {
		if k > 0 {
			p.Sleep(st.cfg.DriftInterval)
		}
		s := c.shards[idx]
		if s.revoked || s.tcb.AtLeast(target) {
			continue
		}
		s.tcb = target
		// Re-enrollment replaces the host's PSP identity; the shard's
		// orchestrator flags in-flight exchanges signed under the old
		// VCEK for bounded re-attestation retries instead of hard
		// failure.
		s.Orch.Reenroll(c.cfg.Authority.Enroll(s.Host.PSP, "chip-"+s.Name, target))
		st.drifted++
		c.cfg.Telemetry.Counter("severifast_cluster_drift_updates_total",
			telemetry.A("host", s.Name)).Inc()
	}
}

// invalidateTaintedWarm evicts every warm pool seeded — locally or by
// adoption — from a donor whose platform the storm just distrusted, and
// withdraws tainted sealed publications so no further host adopts them.
// In-flight forked boots from an evicted pool are refused by the
// fleet's pool-epoch check and retried cold.
func (c *Cluster) invalidateTaintedWarm(st *stormState) {
	for _, img := range c.images {
		for _, s := range c.shards {
			d := img.donorOf[s.Index]
			if d < 0 || !c.shards[d].revoked {
				continue
			}
			s.Orch.EvictWarm(img.perHost[s.Index])
			img.donorOf[s.Index] = -1
			st.invalidations++
			c.cfg.Telemetry.Counter("severifast_cluster_storm_warm_evictions_total",
				telemetry.A("host", s.Name)).Inc()
		}
		if img.published && img.donorHost >= 0 && c.shards[img.donorHost].revoked {
			st.invalidatedBytes += int64(img.sealedSize)
			img.published = false
			img.sealed, img.donor, img.fork = nil, nil, nil
			img.donorHost = -1
		}
	}
}

// stormObserve accounts a served boot against the storm: the
// tainted-warm tripwire (a forked guest from a revoked donor must never
// reach here) and the recovery clock.
func (c *Cluster) stormObserve(p *sim.Proc, s *HostShard, r *pending, tier fleet.Tier) {
	st := c.storm
	if st == nil || !st.fired {
		return
	}
	if tier == fleet.TierWarm {
		if d := r.Image.donorOf[s.Index]; d >= 0 && c.shards[d].revoked {
			st.taintedServed++
		}
	}
	if !s.revoked && !st.green[s.Index] {
		st.green[s.Index] = true
		st.pendingGreen--
		if st.pendingGreen == 0 {
			st.greenAt = p.Now()
		}
	}
}

// denialCounts merges every denial the trust plane has issued so far —
// dispatch-gate refusals, fleet admission-gate refusals, and broker
// denials as seen by the fleets — keyed by their reason strings. The
// storm snapshots it at the instant it fires; the summary reports the
// delta as the denial spike.
func (c *Cluster) denialCounts() map[string]int {
	out := make(map[string]int)
	for k, v := range c.dispatchDenials {
		out["dispatch/"+k] += v
	}
	for _, s := range c.shards {
		met := s.Orch.Metrics()
		for k, v := range met.Denials {
			out["kbs/"+k] += v
		}
		for k, v := range met.PolicyDenials {
			out["fleet/"+k] += v
		}
	}
	return out
}

func (c *Cluster) stormFail(err error) {
	if c.firstErr == nil {
		c.firstErr = err
	}
}
