package cluster

import (
	"fmt"

	"github.com/severifast/severifast/internal/telemetry"
)

// asidPool models a host's SEV ASID budget: the BIOS-configured count of
// address-space IDs the memory controller can hold encryption keys for
// (the SEV-ES limit the original artifact works under). Every live
// encrypted guest pins one ASID from launch to teardown, so the pool is
// the cluster scheduler's hard per-host admission gate — a host with no
// free ASID cannot accept a boot no matter how idle its PSP is.
//
// Occupancy is mirrored into the telemetry registry as gauges
// (severifast_cluster_asid_in_use / _peak, labeled by host) so the
// scheduler's pressure signal is observable in Prometheus exports.
type asidPool struct {
	host  string
	cap   int
	inUse int
	peak  int
	reg   *telemetry.Registry
}

func newASIDPool(host string, capacity int, reg *telemetry.Registry) *asidPool {
	if capacity < 1 {
		panic("cluster: ASID pool capacity must be >= 1")
	}
	return &asidPool{host: host, cap: capacity, reg: reg}
}

func (a *asidPool) free() int { return a.cap - a.inUse }

func (a *asidPool) acquire() {
	if a.inUse >= a.cap {
		panic(fmt.Sprintf("cluster: ASID over-allocation on %s (%d in use, cap %d)", a.host, a.inUse, a.cap))
	}
	a.inUse++
	if a.inUse > a.peak {
		a.peak = a.inUse
	}
	a.mirror()
}

func (a *asidPool) release() {
	if a.inUse <= 0 {
		panic("cluster: ASID release on empty pool " + a.host)
	}
	a.inUse--
	a.mirror()
}

func (a *asidPool) mirror() {
	h := telemetry.A("host", a.host)
	a.reg.Gauge("severifast_cluster_asid_in_use", h).Set(float64(a.inUse))
	a.reg.Gauge("severifast_cluster_asid_peak", h).Max(float64(a.inUse))
}
