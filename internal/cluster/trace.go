package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// TraceKind selects an open-loop arrival pattern.
type TraceKind string

// The built-in workload shapes.
const (
	// TraceUniform draws Poisson arrivals with uniform image popularity.
	TraceUniform TraceKind = "uniform"
	// TraceZipf draws Poisson arrivals with Zipf-distributed image
	// popularity — the serverless regime where a few hot functions
	// dominate and the long tail stays cold.
	TraceZipf TraceKind = "zipf"
	// TraceDiurnal modulates the Poisson rate sinusoidally over a
	// period, the day/night load swing.
	TraceDiurnal TraceKind = "diurnal"
	// TraceBursty alternates on/off windows, multiplying the rate
	// during bursts — the thundering-herd arrival shape.
	TraceBursty TraceKind = "bursty"
)

// Arrival is one trace entry: a submission instant plus the tenant and
// image indices it targets. Times are offsets from trace start.
type Arrival struct {
	At     time.Duration `json:"at_ns"`
	Tenant int           `json:"tenant"`
	Image  int           `json:"image"`
}

// TraceSpec parameterizes a generator. Same spec (including Seed), same
// arrival schedule, bit for bit — the golden-file tests pin this.
type TraceSpec struct {
	Kind TraceKind `json:"kind"`
	// Arrivals is the total request count.
	Arrivals int `json:"arrivals"`
	// MeanGap is the baseline mean inter-arrival gap.
	MeanGap time.Duration `json:"mean_gap_ns"`
	// Images is the image population size.
	Images int `json:"images"`
	// Tenants round-robin across arrivals. Defaults to 1.
	Tenants int `json:"tenants"`
	// ZipfS is the Zipf skew exponent (> 1; larger is more skewed).
	// Defaults to 1.1. Used by TraceZipf only.
	ZipfS float64 `json:"zipf_s,omitempty"`
	// DiurnalPeriod and DiurnalAmplitude shape the sinusoidal rate
	// swing: rate(t) = base * (1 + A*sin(2πt/period)), 0 <= A < 1.
	DiurnalPeriod    time.Duration `json:"diurnal_period_ns,omitempty"`
	DiurnalAmplitude float64       `json:"diurnal_amplitude,omitempty"`
	// BurstFactor multiplies the rate during BurstOn windows, separated
	// by BurstOff quiet windows.
	BurstFactor float64       `json:"burst_factor,omitempty"`
	BurstOn     time.Duration `json:"burst_on_ns,omitempty"`
	BurstOff    time.Duration `json:"burst_off_ns,omitempty"`
	// Seed fixes every draw.
	Seed int64 `json:"seed"`
}

func (s *TraceSpec) fillDefaults() error {
	if s.Arrivals <= 0 {
		return fmt.Errorf("cluster: trace needs Arrivals > 0")
	}
	if s.MeanGap <= 0 {
		return fmt.Errorf("cluster: trace needs MeanGap > 0")
	}
	if s.Images <= 0 {
		return fmt.Errorf("cluster: trace needs Images > 0")
	}
	if s.Tenants <= 0 {
		s.Tenants = 1
	}
	switch s.Kind {
	case TraceUniform:
	case TraceZipf:
		if s.ZipfS == 0 {
			s.ZipfS = 1.1
		}
		if s.ZipfS <= 1 {
			return fmt.Errorf("cluster: zipf skew must be > 1, got %v", s.ZipfS)
		}
	case TraceDiurnal:
		if s.DiurnalPeriod <= 0 {
			s.DiurnalPeriod = time.Duration(s.Arrivals) * s.MeanGap
		}
		if s.DiurnalAmplitude < 0 || s.DiurnalAmplitude >= 1 {
			return fmt.Errorf("cluster: diurnal amplitude must be in [0,1), got %v", s.DiurnalAmplitude)
		}
		if s.DiurnalAmplitude == 0 {
			s.DiurnalAmplitude = 0.8
		}
	case TraceBursty:
		if s.BurstFactor == 0 {
			s.BurstFactor = 8
		}
		if s.BurstFactor < 1 {
			return fmt.Errorf("cluster: burst factor must be >= 1, got %v", s.BurstFactor)
		}
		if s.BurstOn <= 0 {
			s.BurstOn = 10 * s.MeanGap
		}
		if s.BurstOff <= 0 {
			s.BurstOff = 40 * s.MeanGap
		}
	default:
		return fmt.Errorf("cluster: unknown trace kind %q (want uniform, zipf, diurnal, or bursty)", s.Kind)
	}
	return nil
}

// Generate draws the arrival schedule. The spec is defaulted in place
// so the caller sees the effective parameters (for reporting).
func (s *TraceSpec) Generate() ([]Arrival, error) {
	if err := s.fillDefaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	var zipf *rand.Zipf
	if s.Kind == TraceZipf {
		zipf = rand.NewZipf(rng, s.ZipfS, 1, uint64(s.Images-1))
	}
	out := make([]Arrival, 0, s.Arrivals)
	var t time.Duration
	for i := 0; i < s.Arrivals; i++ {
		// Exponential gap at the instantaneous rate: gap = Exp(mean/f(t))
		// where f is the kind's rate modulation at the previous arrival.
		f := 1.0
		switch s.Kind {
		case TraceDiurnal:
			f = 1 + s.DiurnalAmplitude*math.Sin(2*math.Pi*float64(t)/float64(s.DiurnalPeriod))
		case TraceBursty:
			cycle := s.BurstOn + s.BurstOff
			if t%cycle < s.BurstOn {
				f = s.BurstFactor
			}
		}
		t += time.Duration(-math.Log(1-rng.Float64()) * float64(s.MeanGap) / f)
		img := 0
		switch {
		case zipf != nil:
			img = int(zipf.Uint64())
		case s.Images > 1:
			img = rng.Intn(s.Images)
		}
		out = append(out, Arrival{At: t, Tenant: i % s.Tenants, Image: img})
	}
	return out, nil
}
