package cluster

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

func goldenSpecs() []TraceSpec {
	return []TraceSpec{
		{Kind: TraceUniform, Arrivals: 64, MeanGap: 2 * time.Millisecond, Images: 6, Tenants: 3, Seed: 7},
		{Kind: TraceZipf, Arrivals: 64, MeanGap: 2 * time.Millisecond, Images: 12, Tenants: 4, ZipfS: 1.2, Seed: 7},
		{Kind: TraceDiurnal, Arrivals: 64, MeanGap: 2 * time.Millisecond, Images: 6, Tenants: 2,
			DiurnalPeriod: 40 * time.Millisecond, DiurnalAmplitude: 0.7, Seed: 7},
		{Kind: TraceBursty, Arrivals: 64, MeanGap: 2 * time.Millisecond, Images: 6, Tenants: 2,
			BurstFactor: 6, BurstOn: 8 * time.Millisecond, BurstOff: 24 * time.Millisecond, Seed: 7},
	}
}

// TestTraceGolden pins every generator's exact output for a fixed seed:
// any change to the draw sequence is a determinism break and must be a
// conscious golden-file update (-update-golden), because checked-in
// cluster summaries depend on these schedules byte for byte.
func TestTraceGolden(t *testing.T) {
	for _, spec := range goldenSpecs() {
		spec := spec
		t.Run(string(spec.Kind), func(t *testing.T) {
			arr, err := spec.Generate()
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			got, err := json.MarshalIndent(arr, "", " ")
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "trace_"+string(spec.Kind)+".json")
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatalf("write golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update-golden to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s trace diverged from golden %s (re-run with -update-golden if intentional)",
					spec.Kind, path)
			}
		})
	}
}

// TestTraceSameSeedStable double-checks determinism without the golden
// files: two generations from one spec are deep-equal.
func TestTraceSameSeedStable(t *testing.T) {
	for _, spec := range goldenSpecs() {
		a, err := spec.Generate()
		if err != nil {
			t.Fatalf("%s: %v", spec.Kind, err)
		}
		b, _ := spec.Generate()
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ: %d vs %d", spec.Kind, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: arrival %d differs: %+v vs %+v", spec.Kind, i, a[i], b[i])
			}
		}
	}
}

// TestTraceSeedsDiverge guards against a generator ignoring its seed.
func TestTraceSeedsDiverge(t *testing.T) {
	for _, spec := range goldenSpecs() {
		a, err := spec.Generate()
		if err != nil {
			t.Fatalf("%s: %v", spec.Kind, err)
		}
		other := spec
		other.Seed = spec.Seed + 1
		b, err := other.Generate()
		if err != nil {
			t.Fatalf("%s: %v", spec.Kind, err)
		}
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seeds %d and %d produced identical traces", spec.Kind, spec.Seed, other.Seed)
		}
	}
}

// TestTraceShapes sanity-checks the load shapes: arrivals are time
// ordered, image indices stay in range, Zipf concentrates mass on low
// indices, and bursty arrivals cluster tighter than uniform.
func TestTraceShapes(t *testing.T) {
	for _, spec := range goldenSpecs() {
		arr, err := spec.Generate()
		if err != nil {
			t.Fatalf("%s: %v", spec.Kind, err)
		}
		var prev time.Duration
		counts := make([]int, spec.Images)
		for i, a := range arr {
			if a.At < prev {
				t.Fatalf("%s: arrival %d goes back in time (%v after %v)", spec.Kind, i, a.At, prev)
			}
			prev = a.At
			if a.Image < 0 || a.Image >= spec.Images {
				t.Fatalf("%s: arrival %d image %d out of range [0,%d)", spec.Kind, i, a.Image, spec.Images)
			}
			if a.Tenant != i%spec.Tenants {
				t.Fatalf("%s: arrival %d tenant %d, want round-robin %d", spec.Kind, i, a.Tenant, i%spec.Tenants)
			}
			counts[a.Image]++
		}
		if spec.Kind == TraceZipf {
			head := counts[0] + counts[1]
			if head*3 < len(arr) {
				t.Errorf("zipf: two hottest images got %d/%d arrivals, want a skewed head", head, len(arr))
			}
		}
	}
}

// TestTraceValidation exercises the rejection paths.
func TestTraceValidation(t *testing.T) {
	bad := []TraceSpec{
		{Kind: TraceZipf, Arrivals: 0, MeanGap: time.Millisecond, Images: 1},
		{Kind: TraceZipf, Arrivals: 1, MeanGap: 0, Images: 1},
		{Kind: TraceZipf, Arrivals: 1, MeanGap: time.Millisecond, Images: 0},
		{Kind: TraceZipf, Arrivals: 1, MeanGap: time.Millisecond, Images: 1, ZipfS: 0.5},
		{Kind: TraceDiurnal, Arrivals: 1, MeanGap: time.Millisecond, Images: 1, DiurnalAmplitude: 1.5},
		{Kind: TraceBursty, Arrivals: 1, MeanGap: time.Millisecond, Images: 1, BurstFactor: 0.5},
		{Kind: "sawtooth", Arrivals: 1, MeanGap: time.Millisecond, Images: 1},
	}
	for i, spec := range bad {
		if _, err := spec.Generate(); err == nil {
			t.Errorf("spec %d (%s): expected validation error", i, spec.Kind)
		}
	}
}
