package cluster

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"github.com/severifast/severifast/internal/fleet"
	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/telemetry"
)

var stormTCB = kbs.TCB{BootLoader: 2, TEE: 1, SNP: 8, Microcode: 115}

func stormFloor() kbs.TCB {
	f := stormTCB
	f.SNP++
	f.Microcode += 5
	return f
}

// runStormScenario replays the acceptance trace — 8 hosts in two chip
// generations, 512 Zipf boots arriving across the storm, warm pools on
// — through a generation revocation plus floor bump at virtual 2s, with
// rolling drift from 1s every 250ms straddling it. Returns the summary,
// its JSON bytes, and the broker for gate reconciliation.
func runStormScenario(t *testing.T, policy string) (Summary, []byte, *kbs.Broker) {
	t.Helper()
	eng := sim.NewEngine()
	auth := kbs.NewAuthority(5)
	broker := kbs.NewBroker(auth.Root(), kbs.Config{MinTCB: stormTCB, Seed: 5})
	for _, tn := range []string{"t0", "t1", "t2"} {
		broker.AddTenant(tn, []byte("key"))
	}
	cfg := Config{
		Hosts: 8, ASIDsPerHost: 4, WorkersPerHost: 2,
		EnableWarm: true, Seed: 42, Generations: 2,
		Telemetry: telemetry.NewRegistry(),
		KBS:       broker, Authority: auth, TCB: stormTCB, AgentSeed: 9,
		Admission: broker.PolicyEngine(),
		Retry:     fleet.RetryPolicy{Max: 3, Backoff: time.Millisecond},
	}
	var err error
	cfg.Policy, err = PolicyByName(policy, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InstallStorm(broker, StormConfig{
		At:            2 * time.Second,
		Generation:    "gen0",
		Floor:         stormFloor(),
		DriftStart:    time.Second,
		DriftInterval: 250 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	var imgs []*Image
	for i, name := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		img, err := c.RegisterImage(name, kernelgen.Lupine(),
			kernelgen.BuildInitrd(int64(i+1), 128<<10))
		if err != nil {
			t.Fatal(err)
		}
		imgs = append(imgs, img)
	}
	spec := TraceSpec{
		Kind: TraceZipf, Arrivals: 512, MeanGap: 10 * time.Millisecond,
		Images: 8, Tenants: 3, ZipfS: 1.2, Seed: 11,
	}
	arr, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Play(arr, imgs, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	sum := c.Summarize()
	blob, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	return sum, blob, broker
}

// reconcileGates pins the three-gate ledger on any storm run: the
// dispatch gate's per-reason map sums to the refused-placement count,
// every broker denial was observed by exactly one fleet (and vice
// versa, minus the fleet-local breaker reason), and every failed boot
// is attributable to the dispatch gate or a fleet-level exhaustion.
func reconcileGates(t *testing.T, sum Summary, broker *kbs.Broker) {
	t.Helper()
	dispatch := 0
	for _, v := range sum.DispatchDenials {
		dispatch += v
	}
	if dispatch != sum.PolicyDenied {
		t.Errorf("dispatch denial map sums to %d, PolicyDenied = %d", dispatch, sum.PolicyDenied)
	}

	stats, err := broker.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for reason, n := range stats.Denials {
		if got := sum.Denials[reason]; got != n {
			t.Errorf("broker denied %d %s exchanges, fleets observed %d", n, reason, got)
		}
	}
	for reason, n := range sum.Denials {
		if reason == string(kbs.ReasonUnavailable) {
			t.Errorf("unexpected breaker fast-fails in a fault-free run: %d", n)
			continue
		}
		if got := stats.Denials[reason]; got != n {
			t.Errorf("fleets observed %d %s denials, broker issued %d", n, reason, got)
		}
	}

	fleetFailed := 0
	for _, h := range sum.PerHost {
		fleetFailed += h.Failed
	}
	if sum.Failed != sum.PolicyDenied+fleetFailed {
		t.Errorf("failed = %d, want dispatch %d + fleet %d",
			sum.Failed, sum.PolicyDenied, fleetFailed)
	}
}

// TestStormGoldenRun is the acceptance scenario: the storm cascade must
// be byte-identical across runs, the three admission gates must
// reconcile their denial counts exactly, no forked boot may be served
// from a revoked donor, and the recovery makespan and warm-pool
// invalidation cost must land in the JSON summary.
func TestStormGoldenRun(t *testing.T) {
	sum, blob, broker := runStormScenario(t, "tcb-aware")
	_, blob2, _ := runStormScenario(t, "tcb-aware")
	if !bytes.Equal(blob, blob2) {
		t.Errorf("storm summaries differ across identical runs:\n%s\n%s", blob, blob2)
	}

	st := sum.Storm
	if st == nil {
		t.Fatal("summary has no storm block")
	}
	if st.AtNs != int64(2*time.Second) {
		t.Errorf("storm at %d ns, want %d", st.AtNs, int64(2*time.Second))
	}
	if st.RevokedHosts != 4 {
		t.Errorf("revoked hosts = %d, want 4 (gen0 of 8 over 2 generations)", st.RevokedHosts)
	}
	if st.TaintedWarmServed != 0 {
		t.Errorf("%d forked boots served from revoked donors, want 0", st.TaintedWarmServed)
	}
	if st.WarmInvalidations == 0 || st.WarmInvalidatedBytes == 0 {
		t.Errorf("storm eviction cost = %d pools / %d bytes; pools seeded by 2s should be tainted",
			st.WarmInvalidations, st.WarmInvalidatedBytes)
	}
	if st.MakespanToGreenNs < 0 {
		t.Error("fleet never went green after the storm")
	}
	if st.Drifted == 0 {
		t.Error("rolling drift updated no hosts")
	}
	if len(st.DenialSpike) == 0 {
		t.Error("storm produced no denial spike")
	}
	for _, h := range sum.PerHost {
		if h.Revoked && h.TCB == "" {
			t.Errorf("%s: revoked host missing TCB in summary", h.Host)
		}
	}
	reconcileGates(t, sum, broker)
}

// TestTCBAwareBeatsRandomUnderDrift pins the placement win: on the
// identical trace and storm, tcb-aware placement must produce strictly
// fewer trust-plane denials during the drift than random placement —
// it steers boots away from revoked platforms and stragglers still
// below the bumped floor instead of burning boots on guaranteed
// refusals — and must serve strictly more boots. Both runs still
// reconcile their gates and serve nothing tainted.
func TestTCBAwareBeatsRandomUnderDrift(t *testing.T) {
	denials := func(sum Summary) int {
		n := sum.PolicyDenied
		for _, v := range sum.Denials {
			n += v
		}
		return n
	}
	random, _, randomBroker := runStormScenario(t, "random")
	aware, _, awareBroker := runStormScenario(t, "tcb-aware")
	reconcileGates(t, random, randomBroker)
	reconcileGates(t, aware, awareBroker)
	if da, dr := denials(aware), denials(random); da >= dr {
		t.Errorf("tcb-aware saw %d denials, random %d — tcb-aware must be strictly lower", da, dr)
	}
	if aware.Served <= random.Served {
		t.Errorf("tcb-aware served %d boots, random %d — steering should save boots",
			aware.Served, random.Served)
	}
	if random.PolicyDenied == 0 {
		t.Error("random placement burned no boots on the dispatch gate; storm scenario too gentle")
	}
	if aware.Deferred == 0 {
		t.Error("tcb-aware never deferred a placement; storm scenario too gentle")
	}
	if aware.Storm.TaintedWarmServed != 0 || random.Storm.TaintedWarmServed != 0 {
		t.Error("tainted warm serves under either policy")
	}
}
