package cluster

import (
	"fmt"
	"math/rand"
)

// Policy decides which host serves a boot. Place is called from the
// dispatcher process with the candidate shards that have a free ASID
// (never empty) and returns one of them, or nil to decline them all —
// the dispatcher then holds the boot until the capacity picture moves
// (and forces the placement if it never can). Policies are consulted in
// virtual time and must be deterministic for a given cluster seed.
type Policy interface {
	Name() string
	Place(c *Cluster, img *Image, avail []*HostShard) *HostShard
}

// PolicyByName builds a placement policy. seed drives any randomized
// tie-breaking (only the random policy uses it today).
func PolicyByName(name string, seed int64) (Policy, error) {
	switch name {
	case "random":
		return &randomPolicy{rng: rand.New(rand.NewSource(seed ^ 0x9e3779b9))}, nil
	case "binpack":
		return binpackPolicy{}, nil
	case "asid-pressure":
		return asidPressurePolicy{}, nil
	case "cache-affinity":
		return affinityPolicy{}, nil
	case "tcb-aware":
		return tcbAwarePolicy{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown policy %q (want random, binpack, asid-pressure, cache-affinity, or tcb-aware)", name)
}

// PolicyNames lists the built-in policies in comparison order.
func PolicyNames() []string {
	return []string{"random", "binpack", "asid-pressure", "cache-affinity", "tcb-aware"}
}

// randomPolicy places uniformly at random among hosts with capacity —
// the baseline the smarter policies are measured against.
type randomPolicy struct{ rng *rand.Rand }

func (p *randomPolicy) Name() string { return "random" }

func (p *randomPolicy) Place(_ *Cluster, _ *Image, avail []*HostShard) *HostShard {
	return avail[p.rng.Intn(len(avail))]
}

// binpackPolicy consolidates: it fills the busiest host that still has a
// free ASID before spilling to the next, keeping the rest of the fleet
// drained (for power-down or maintenance). Ties break to the lowest
// host index.
type binpackPolicy struct{}

func (binpackPolicy) Name() string { return "binpack" }

func (binpackPolicy) Place(_ *Cluster, _ *Image, avail []*HostShard) *HostShard {
	best := avail[0]
	for _, s := range avail[1:] {
		if s.asid.inUse > best.asid.inUse {
			best = s
		}
	}
	return best
}

// asidPressurePolicy load-balances on the scheduler's two pressure
// signals: fewest ASIDs in use first, then the shallowest PSP command
// queue, then the lowest host index. It spreads launches so no single
// PSP becomes the Fig. 12 serialization point.
type asidPressurePolicy struct{}

func (asidPressurePolicy) Name() string { return "asid-pressure" }

func (asidPressurePolicy) Place(_ *Cluster, _ *Image, avail []*HostShard) *HostShard {
	best := avail[0]
	for _, s := range avail[1:] {
		if s.asid.inUse < best.asid.inUse ||
			(s.asid.inUse == best.asid.inUse && s.pspQueue() < best.pspQueue()) {
			best = s
		}
	}
	return best
}

// affinityPolicy routes a boot to the host where the image's derived
// state already lives, scored warmest-first: a seeded warm snapshot
// beats a locally present sealed warm blob, which beats a populated
// measured-image cache entry, which beats having the raw kernel/initrd
// bytes replicated. Ties break to the least-loaded candidate, then the
// lowest index, so affinity degrades into load-balancing when no host
// has an advantage.
type affinityPolicy struct{}

func (affinityPolicy) Name() string { return "cache-affinity" }

func (affinityPolicy) Place(c *Cluster, img *Image, avail []*HostShard) *HostShard {
	best, bestScore := avail[0], affinityScore(c, img, avail[0])
	for _, s := range avail[1:] {
		sc := affinityScore(c, img, s)
		if sc > bestScore || (sc == bestScore && s.asid.inUse < best.asid.inUse) {
			best, bestScore = s, sc
		}
	}
	return best
}

// tcbAwarePolicy steers boots toward trustworthy platforms during a
// storm: only hosts whose firmware meets the current minimum-TCB floor
// and whose platform is not revoked are eligible; when none qualify the
// policy declines and the boot waits for a host to drift up rather than
// being burned on a guaranteed dispatch denial. Ties break to the
// fewest ASIDs in use, then the lowest index, so outside a storm — all
// hosts current, none revoked — it degrades into plain load-balancing.
type tcbAwarePolicy struct{}

func (tcbAwarePolicy) Name() string { return "tcb-aware" }

func (tcbAwarePolicy) Place(c *Cluster, _ *Image, avail []*HostShard) *HostShard {
	best, bestScore := avail[0], tcbScore(c, avail[0])
	for _, s := range avail[1:] {
		if sc := tcbScore(c, s); sc > bestScore ||
			(sc == bestScore && s.asid.inUse < best.asid.inUse) {
			best, bestScore = s, sc
		}
	}
	if bestScore <= 0 {
		return nil
	}
	return best
}

func tcbScore(c *Cluster, s *HostShard) int {
	switch {
	case s.revoked:
		return -1
	case s.tcb.AtLeast(c.floor):
		return 1
	}
	return 0
}

func affinityScore(c *Cluster, img *Image, s *HostShard) int {
	score := 0
	if img.perHost[s.Index].HasWarm() {
		score += 8
	}
	if img.published && c.repl.Present(s.Index, img.sealedKey) {
		score += 4
	}
	if s.Cache.Contains(img.key) {
		score += 2
	}
	if c.repl.Present(s.Index, img.kernelKey) {
		score++
	}
	if img.initrdSize > 0 && c.repl.Present(s.Index, img.initrdKey) {
		score++
	}
	return score
}
