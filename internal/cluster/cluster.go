// Package cluster models a datacenter of simulated SEV hosts inside one
// virtual-time domain. Each host shard is a full machine — its own PSP
// command queue (the paper's Fig. 12 serialization point), its own RMP,
// a BIOS-limited ASID pool, a private measured-image cache, and a fleet
// orchestrator with a per-host key-broker circuit breaker. Above the
// shards sits a cluster scheduler: boots arrive open-loop into a bounded
// admission queue, a dispatcher places each one through a pluggable
// policy (random, binpack, asid-pressure, cache-affinity), and the
// chosen host pays for whatever image state it is missing through the
// artifact replication layer — raw kernel/initrd bytes for a cold boot,
// or a sealed warm-snapshot blob from the cross-host warm pool.
//
// Everything runs on one sim.Engine, so an 8-host, 512-boot run is a
// single deterministic event sequence: same seed, same placement, same
// makespan, bit for bit.
package cluster

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"time"

	"github.com/severifast/severifast/internal/artifact"
	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/firecracker"
	"github.com/severifast/severifast/internal/fleet"
	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/policy"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/snapshot"
	"github.com/severifast/severifast/internal/telemetry"
	"github.com/severifast/severifast/internal/trace"
)

// Errors returned by Submit.
var (
	// ErrQueueFull is cluster-level backpressure: the admission queue is
	// at capacity and the request is shed.
	ErrQueueFull = errors.New("cluster: admission queue full")
	// ErrClosed reports submission after Close.
	ErrClosed = errors.New("cluster: closed")
)

// Config sizes the cluster.
type Config struct {
	// Hosts is the number of simulated machines. Defaults to 1.
	Hosts int
	// ASIDsPerHost is each host's SEV ASID budget — the hard cap on
	// concurrently live encrypted guests (BIOS SEV-ES limit). Defaults
	// to 8.
	ASIDsPerHost int
	// WorkersPerHost is each shard's boot concurrency. Defaults to 2.
	WorkersPerHost int
	// QueueDepth bounds the cluster admission queue; submissions beyond
	// it are shed. 0 means unbounded.
	QueueDepth int
	// Policy places boots onto hosts. Defaults to asid-pressure.
	Policy Policy
	// EnableWarm turns on warm tiers everywhere and the cross-host warm
	// pool: the first host to capture an image's snapshot publishes it
	// sealed, and other hosts adopt it over the fabric instead of cold
	// booting.
	EnableWarm bool
	// Transfer prices cross-host and origin blob movement; the zero
	// value means artifact.DefaultTransferCost.
	Transfer artifact.TransferCost
	// FabricSlots bounds concurrent transfers cluster-wide. Defaults
	// to 4.
	FabricSlots int
	// Seed drives per-host PSP identities and randomized placement.
	Seed int64
	// Telemetry, when set, receives cluster gauges (ASID occupancy, PSP
	// queue depth), replication counters, and every shard's fleet
	// instruments. Nil disables the mirror.
	Telemetry *telemetry.Registry
	// Model is the shared cost model; the zero value means
	// costmodel.Default.
	Model costmodel.Model

	// Admission is the policy engine the dispatcher consults before a
	// placed boot spends any staging or boot work, and which every
	// shard's fleet re-checks at serve time. Nil defaults to
	// policy.Permissive(). Point it at the broker's engine
	// (kbs.Broker.PolicyEngine) so cluster dispatch, fleet admission,
	// and key release all answer to the same trust domains — a
	// revocation filed at a virtual instant then flips all three gates
	// at once.
	Admission *policy.Engine

	// KBS, when set, gates every boot on every host behind the
	// attest→key-release exchange. Authority must be set too; each host
	// is enrolled as its own platform ("chip-h<i>") so per-host TCB
	// state is distinguishable at the broker.
	KBS       kbs.Service
	Authority *kbs.Authority
	// TCB is the firmware level hosts are enrolled at.
	TCB kbs.TCB
	// Generations partitions hosts into chip generations: host i carries
	// generation "gen<i mod Generations>". A revocation storm
	// (InstallStorm) distrusts a whole generation at one virtual instant.
	// Defaults to 1 — every host is gen0.
	Generations int
	// WrapKBS, when set, wraps each host's view of the broker — the
	// hook tests use to break one host's transport without touching the
	// others' (per-host circuit breaker isolation).
	WrapKBS func(host int, svc kbs.Service) kbs.Service
	// AgentSeed derives guest attestation agent keys; each host offsets
	// it so agents are unique cluster-wide.
	AgentSeed int64
	// Breaker arms each shard's own key-broker circuit breaker. Per
	// host, deliberately: one degraded host's transport failures must
	// not open the breaker for the whole cluster.
	Breaker fleet.BreakerPolicy
	// Retry bounds per-boot recovery from transient faults.
	Retry fleet.RetryPolicy
	// BootDeadline is each boot's virtual-time budget on its shard.
	BootDeadline time.Duration

	// Launch parameters applied to every image on every host.
	Level   sev.Level
	Scheme  firecracker.Scheme
	VCPUs   int
	MemSize uint64
}

func (c *Config) fillDefaults() {
	if c.Hosts <= 0 {
		c.Hosts = 1
	}
	if c.ASIDsPerHost <= 0 {
		c.ASIDsPerHost = 8
	}
	if c.WorkersPerHost <= 0 {
		c.WorkersPerHost = 2
	}
	if c.FabricSlots <= 0 {
		c.FabricSlots = 4
	}
	if c.Transfer == (artifact.TransferCost{}) {
		c.Transfer = artifact.DefaultTransferCost()
	}
	if c.Model == (costmodel.Model{}) {
		c.Model = costmodel.Default()
	}
	if c.Generations <= 0 {
		c.Generations = 1
	}
	if c.Policy == nil {
		c.Policy, _ = PolicyByName("asid-pressure", c.Seed)
	}
	if c.Admission == nil {
		c.Admission = policy.Permissive()
	}
}

// HostShard is one simulated machine: a kvm.Host (PSP, RMP, cost model)
// plus the per-host scheduling state the cluster adds on top.
type HostShard struct {
	Index int
	// Name is "h<index>", used as the host label everywhere: process
	// names, telemetry attributes, the renamed PSP resource track.
	Name string
	Host *kvm.Host
	Orch *fleet.Orchestrator
	// Cache is this host's private measured-image cache (per-host by
	// design: measurement amortization is a host-local effect the
	// cache-affinity policy exploits).
	Cache *fleet.Cache

	asid  *asidPool
	boots int
	tiers [3]int

	// Storm state. gen is the host's chip generation ("gen<i mod
	// Generations>"); tcb its current firmware level, stepped by rolling
	// drift; revoked flips when a revocation storm distrusts the
	// generation. All mutated only from simulation processes.
	gen     string
	tcb     kbs.TCB
	revoked bool
}

// Generation reports the host's chip generation.
func (s *HostShard) Generation() string { return s.gen }

// TCB reports the host's current firmware level.
func (s *HostShard) TCB() kbs.TCB { return s.tcb }

// Revoked reports whether a storm has distrusted this host's platform.
func (s *HostShard) Revoked() bool { return s.revoked }

func (s *HostShard) pspQueue() int { return s.Host.PSP.Resource().QueueLen() }

// Image is a cluster-registered function image: one fleet.Image per
// host (same content address everywhere) plus the replication-layer
// identities of its artifacts and, once captured, its sealed warm
// snapshot.
type Image struct {
	Name string

	perHost []*fleet.Image
	key     fleet.Key

	kernelKey  artifact.BlobKey
	kernelSize int
	initrdKey  artifact.BlobKey
	initrdSize int

	// Warm-pool state, set once by the first host to capture.
	published  bool
	sealed     []byte
	sealedKey  artifact.BlobKey
	sealedSize int
	donor      *kvm.Machine
	fork       *snapshot.Fork

	// Donor provenance for storm hygiene. donorHost is the publisher of
	// the sealed snapshot (-1 until published); donorOf[h] is the host
	// whose admitted guest seeded host h's warm pool — h itself for a
	// local capture, donorHost for an adoption, -1 while unseeded. A
	// revocation storm evicts every pool whose donor is now distrusted.
	donorHost int
	donorOf   []int
}

// Request is one boot demand against the cluster.
type Request struct {
	Tenant string
	Image  *Image
	// Exec is the function service time once the VM is up; the guest
	// holds its ASID until it finishes.
	Exec time.Duration
}

type pending struct {
	Request
	admitted sim.Time
	id       int
}

// Cluster is the datacenter scheduler. Like the fleet orchestrator, all
// mutable state is touched only by simulation processes of one engine,
// so it needs no locking.
type Cluster struct {
	eng    *sim.Engine
	cfg    Config
	shards []*HostShard
	repl   *artifact.Replicator
	images []*Image

	queue    []*pending
	queueMax int
	closed   bool
	prepping int
	nextID   int
	deferred int

	disp       *sim.Proc
	dispParked bool

	submitted int
	shed      int
	served    int
	failed    int
	tierLat   [3]trace.Series
	allLat    trace.Series

	captures       int
	adoptions      int
	publishedBytes int64
	policyDenied   int

	// floor tracks the broker's current minimum-TCB floor (Config.TCB
	// until a storm bumps it) — the reference the tcb-aware policy
	// compares host firmware against.
	floor           kbs.TCB
	dispatchDenials map[string]int
	storm           *stormState

	firstErr error
}

// New assembles the hosts and spawns the dispatcher on eng. Submit work
// from arrival processes, call Close after the last submission, then
// eng.Run drains everything.
func New(eng *sim.Engine, cfg Config) (*Cluster, error) {
	cfg.fillDefaults()
	if cfg.KBS != nil && cfg.Authority == nil {
		return nil, errors.New("cluster: Config.KBS set without Authority")
	}
	c := &Cluster{
		eng:   eng,
		cfg:   cfg,
		repl:  artifact.NewReplicator(cfg.Hosts, cfg.FabricSlots, cfg.Transfer, cfg.Telemetry),
		floor: cfg.TCB,
	}
	for i := 0; i < cfg.Hosts; i++ {
		name := fmt.Sprintf("h%d", i)
		// Per-host PSP identity: distinct seed, distinct chip.
		host := kvm.NewHost(eng, cfg.Model, cfg.Seed+int64(i+1))
		host.Telemetry = cfg.Telemetry
		host.PSP.Resource().Rename("psp-" + name)
		cache := fleet.NewCache()
		fcfg := fleet.Config{
			Name:         name,
			Workers:      cfg.WorkersPerHost,
			EnableWarm:   cfg.EnableWarm,
			Cache:        cache,
			Telemetry:    cfg.Telemetry,
			Breaker:      cfg.Breaker,
			Retry:        cfg.Retry,
			BootDeadline: cfg.BootDeadline,
			Admission:    cfg.Admission,
			AgentSeed:    cfg.AgentSeed + int64(i)<<20,
			Level:        cfg.Level,
			Scheme:       cfg.Scheme,
			VCPUs:        cfg.VCPUs,
			MemSize:      cfg.MemSize,
		}
		if cfg.KBS != nil {
			svc := cfg.KBS
			if cfg.WrapKBS != nil {
				svc = cfg.WrapKBS(i, svc)
			}
			fcfg.KBS = svc
			fcfg.Enrollment = cfg.Authority.Enroll(host.PSP, "chip-"+name, cfg.TCB)
		}
		c.shards = append(c.shards, &HostShard{
			Index: i,
			Name:  name,
			Host:  host,
			Orch:  fleet.New(eng, host, fcfg),
			Cache: cache,
			asid:  newASIDPool(name, cfg.ASIDsPerHost, cfg.Telemetry),
			gen:   fmt.Sprintf("gen%d", i%cfg.Generations),
			tcb:   cfg.TCB,
		})
	}
	eng.Go("cluster-dispatch", c.dispatch)
	return c, nil
}

// Shards exposes the hosts; read their stats after eng.Run returns.
func (c *Cluster) Shards() []*HostShard { return c.shards }

// Replication exposes the cross-host distribution directory.
func (c *Cluster) Replication() *artifact.Replicator { return c.repl }

// Err returns the first deterministic boot or provisioning error from
// any shard. Runs that deliberately degrade a host (fault injection,
// broker outages) will see that host's error here; consult per-shard
// Orch.Err for attribution.
func (c *Cluster) Err() error {
	if c.firstErr != nil {
		return c.firstErr
	}
	for _, s := range c.shards {
		if err := s.Orch.Err(); err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
	}
	return nil
}

// RegisterImage registers the image on every shard (one content
// address, N host-local views) and announces its artifacts to the
// replication layer's origin registry. No host holds the bytes locally
// yet: the first boot on each host pays the pull.
func (c *Cluster) RegisterImage(name string, preset kernelgen.Preset, initrd []byte) (*Image, error) {
	img := &Image{Name: name, donorHost: -1, donorOf: make([]int, len(c.shards))}
	for i := range img.donorOf {
		img.donorOf[i] = -1
	}
	for _, s := range c.shards {
		fi, err := s.Orch.RegisterImage(name, preset, initrd)
		if err != nil {
			return nil, err
		}
		img.perHost = append(img.perHost, fi)
	}
	spec := img.perHost[0].Spec()
	img.key = img.perHost[0].CacheKey()
	img.kernelKey = artifact.BlobKey(artifact.Intern(spec.Kernel).Digest())
	img.kernelSize = len(spec.Kernel)
	c.repl.Register(img.kernelKey, img.kernelSize)
	if len(spec.Initrd) > 0 {
		img.initrdKey = artifact.BlobKey(artifact.Intern(spec.Initrd).Digest())
		img.initrdSize = len(spec.Initrd)
		c.repl.Register(img.initrdKey, img.initrdSize)
	}
	c.images = append(c.images, img)
	return img, nil
}

// Submit offers a request from a simulation process. It never blocks:
// the request is queued (waking the dispatcher) or shed with
// ErrQueueFull / ErrClosed, and the open-loop arrival source moves on.
func (c *Cluster) Submit(p *sim.Proc, req Request) error {
	c.submitted++
	c.cfg.Telemetry.Counter("severifast_cluster_submitted_total").Inc()
	if c.closed {
		c.shedOne()
		return ErrClosed
	}
	if c.cfg.QueueDepth > 0 && len(c.queue) >= c.cfg.QueueDepth {
		c.shedOne()
		return ErrQueueFull
	}
	c.queue = append(c.queue, &pending{Request: req, admitted: p.Now(), id: c.nextID})
	c.nextID++
	if len(c.queue) > c.queueMax {
		c.queueMax = len(c.queue)
	}
	c.cfg.Telemetry.Gauge("severifast_cluster_queue_depth_max").Max(float64(len(c.queue)))
	c.wakeDispatch()
	return nil
}

func (c *Cluster) shedOne() {
	c.shed++
	c.cfg.Telemetry.Counter("severifast_cluster_shed_total").Inc()
}

// Close stops admission; the dispatcher drains the queue and in-flight
// preps, then closes every shard so eng.Run can terminate.
func (c *Cluster) Close() {
	c.closed = true
	c.wakeDispatch()
}

// dispatch is the single placement loop: pop a request, pick a host
// with a free ASID through the policy, pin the ASID, and hand the
// request to a per-boot prep process. It parks when there is nothing to
// place — no queued work, or no host with capacity — and is woken by
// Submit, ASID releases, and prep completions.
func (c *Cluster) dispatch(p *sim.Proc) {
	c.disp = p
	avail := make([]*HostShard, 0, len(c.shards))
	for {
		if len(c.queue) == 0 {
			if c.closed && c.prepping == 0 {
				for _, s := range c.shards {
					s.Orch.Close()
				}
				c.disp = nil
				return
			}
			c.parkDispatch(p)
			continue
		}
		avail = avail[:0]
		for _, s := range c.shards {
			if s.asid.free() > 0 {
				avail = append(avail, s)
			}
		}
		if len(avail) == 0 {
			// Every ASID in the datacenter is pinned: wait for a release.
			c.parkDispatch(p)
			continue
		}
		r := c.queue[0]
		c.queue = c.queue[1:]
		s := c.cfg.Policy.Place(c, r.Image, avail)
		if s == nil {
			// The policy declined every candidate — all remaining
			// capacity sits on platforms it refuses to use (revoked, or
			// below the TCB floor mid-drift). Hold the boot until
			// capacity moves rather than burning it on a guaranteed
			// denial; if nothing is in flight the picture can never
			// improve, so force the placement and let the admission gate
			// account the refusal.
			if c.prepping > 0 || c.asidsInUse() > 0 {
				c.queue = append(c.queue, nil)
				copy(c.queue[1:], c.queue)
				c.queue[0] = r
				c.deferred++
				c.cfg.Telemetry.Counter("severifast_cluster_deferred_total").Inc()
				c.parkDispatch(p)
				continue
			}
			s = avail[0]
		}
		s.asid.acquire()
		c.samplePSPDepth(s)
		c.prepping++
		c.eng.Go(fmt.Sprintf("%s-prep-%d", s.Name, r.id), func(pp *sim.Proc) {
			c.prep(pp, s, r)
		})
	}
}

func (c *Cluster) parkDispatch(p *sim.Proc) {
	c.dispParked = true
	p.Park()
}

func (c *Cluster) wakeDispatch() {
	if c.dispParked && c.disp != nil {
		c.dispParked = false
		c.eng.Wake(c.disp)
	}
}

// samplePSPDepth mirrors the host's instantaneous PSP queue depth into
// the registry, sampled at every placement and release — the moments
// the scheduler itself reads the signal.
func (c *Cluster) samplePSPDepth(s *HostShard) {
	q := float64(s.pspQueue())
	h := telemetry.A("host", s.Name)
	c.cfg.Telemetry.Gauge("severifast_cluster_psp_queue_depth", h).Set(q)
	c.cfg.Telemetry.Gauge("severifast_cluster_psp_queue_depth_peak", h).Max(q)
}

// prep runs on its own process so replication transfers for different
// boots overlap: it stages whatever image state the chosen host is
// missing, then submits the boot to the shard's orchestrator.
func (c *Cluster) prep(p *sim.Proc, s *HostShard, r *pending) {
	simg := r.Image.perHost[s.Index]
	if err := c.admission(p, s, r); err != nil {
		c.bootDone(p, s, r, fleet.TierCold, err)
	} else if err := c.stage(p, s, r.Image, simg); err != nil {
		c.bootDone(p, s, r, fleet.TierCold, err)
	} else if err := s.Orch.Submit(p, fleet.Request{
		Tenant: r.Tenant,
		Image:  simg,
		Done: func(dp *sim.Proc, tier fleet.Tier, err error) {
			c.bootDone(dp, s, r, tier, err)
		},
	}); err != nil {
		c.bootDone(p, s, r, fleet.TierCold, err)
	}
	c.prepping--
	c.wakeDispatch()
}

// admission runs the dispatch-side policy gate: a placement whose
// tenant or target platform the policy store distrusts is refused
// before any replication transfer or boot work is spent on it. The
// shard's fleet re-checks the same engine at serve time, so a policy
// mutation landing between dispatch and serve still takes effect.
func (c *Cluster) admission(p *sim.Proc, s *HostShard, r *pending) error {
	ev := policy.Evidence{Tenant: r.Tenant}
	if c.cfg.KBS != nil {
		// Per-host evidence: the shard's own firmware level, not the
		// cluster-wide enrollment default, so rolling drift and floor
		// bumps are visible at the dispatch gate.
		ev.ChipID = "chip-" + s.Name
		ev.TCB = s.tcb.Encode()
		ev.HasPlatform = true
	}
	if _, err := c.cfg.Admission.Evaluate(ev, p.Now()); err != nil {
		c.policyDenied++
		if d := policy.DenialOf(err); d != nil {
			if c.dispatchDenials == nil {
				c.dispatchDenials = make(map[string]int)
			}
			c.dispatchDenials[d.Rule+"/"+string(d.Reason)]++
		}
		c.cfg.Telemetry.Counter("severifast_cluster_policy_denials_total",
			telemetry.A("host", s.Name)).Inc()
		return fmt.Errorf("cluster: dispatch to %s refused: %w", s.Name, err)
	}
	return nil
}

// stage makes the image bootable on the host. If the warm pool has a
// published sealed snapshot and this host's warm tier is cold, the
// sealed blob is replicated and adopted — integrity-checked through the
// sealed container — and nothing else is needed: a warm restore never
// touches the raw kernel bytes. Otherwise the cold path replicates the
// kernel and initrd.
func (c *Cluster) stage(p *sim.Proc, s *HostShard, img *Image, simg *fleet.Image) error {
	if c.cfg.EnableWarm && img.published && !simg.HasWarm() {
		if _, err := c.repl.Fetch(p, s.Index, img.sealedKey); err != nil {
			return err
		}
		// The replication layer is content-addressed: a completed Fetch
		// already proves the blob matches img.sealedKey, which the
		// publisher computed over the sealed bytes. Adoption therefore
		// re-validates only the envelope (header + digest trailer), not
		// the whole image — transfer plus a constant delta-validate
		// charge instead of a full O(image) hash pass.
		p.Sleep(c.cfg.Model.Hash(snapshot.SealedDeltaValidateLen))
		snap, err := snapshot.DecodeSealed(img.sealed)
		if err != nil {
			return fmt.Errorf("cluster: adopting warm snapshot on %s: %w", s.Name, err)
		}
		if !simg.HasWarm() {
			simg.AdoptWarmFork(snap, img.donor, img.fork)
			img.donorOf[s.Index] = img.donorHost
			c.adoptions++
			c.cfg.Telemetry.Counter("severifast_cluster_warm_adoptions_total",
				telemetry.A("host", s.Name)).Inc()
		}
		return nil
	}
	if simg.HasWarm() {
		return nil
	}
	if _, err := c.repl.Fetch(p, s.Index, img.kernelKey); err != nil {
		return err
	}
	if img.initrdSize > 0 {
		if _, err := c.repl.Fetch(p, s.Index, img.initrdKey); err != nil {
			return err
		}
	}
	return nil
}

// bootDone concludes a boot on the shard worker (or prep) process:
// account the outcome, publish the warm pool if this host just seeded
// it, and hold the ASID through function execution on a spawned guest
// process.
func (c *Cluster) bootDone(p *sim.Proc, s *HostShard, r *pending, tier fleet.Tier, err error) {
	if err != nil {
		c.failed++
		c.cfg.Telemetry.Counter("severifast_cluster_failed_total",
			telemetry.A("host", s.Name)).Inc()
		c.release(s)
		return
	}
	lat := p.Now().Sub(r.admitted)
	c.served++
	c.tierLat[tier] = append(c.tierLat[tier], lat)
	c.allLat = append(c.allLat, lat)
	s.boots++
	s.tiers[tier]++
	if c.cfg.EnableWarm && r.Image.perHost[s.Index].HasWarm() && r.Image.donorOf[s.Index] < 0 {
		// A pool seeded by this host's own cold boot (not an adoption) is
		// its own donor.
		r.Image.donorOf[s.Index] = s.Index
	}
	c.stormObserve(p, s, r, tier)
	c.maybePublishWarm(p, s, r.Image)
	if r.Exec <= 0 {
		c.release(s)
		return
	}
	c.eng.Go(fmt.Sprintf("%s-vm-%d", s.Name, r.id), func(ep *sim.Proc) {
		ep.Sleep(r.Exec)
		c.samplePSPDepth(s)
		c.release(s)
	})
}

func (c *Cluster) release(s *HostShard) {
	s.asid.release()
	c.wakeDispatch()
}

// asidsInUse sums live guests across the fleet — the dispatcher's "can
// the capacity picture still change" signal for deferred placements.
func (c *Cluster) asidsInUse() int {
	n := 0
	for _, s := range c.shards {
		n += s.asid.inUse
	}
	return n
}

// maybePublishWarm puts a freshly captured warm snapshot into the
// cross-host pool: sealed once (the hash pass is charged on the worker
// that captured it), announced to the replication layer so other hosts
// fetch it as a peer blob. Only the first capture cluster-wide
// publishes; the sealed bytes and donor context are shared state under
// the single-engine discipline.
func (c *Cluster) maybePublishWarm(p *sim.Proc, s *HostShard, img *Image) {
	if !c.cfg.EnableWarm || img.published {
		return
	}
	simg := img.perHost[s.Index]
	if !simg.HasWarm() {
		return
	}
	snap, donor := simg.WarmState()
	sealed, err := snapshot.EncodeSealed(snap)
	if err != nil {
		if c.firstErr == nil {
			c.firstErr = fmt.Errorf("cluster: sealing warm snapshot of %q: %w", img.Name, err)
		}
		return
	}
	// Commit the publication before charging the seal pass: the Sleep
	// below yields the engine, and a second boot concluding meanwhile
	// must see published set or it would seal and publish again.
	img.sealed = sealed
	img.sealedKey = artifact.BlobKey(sha256.Sum256(sealed))
	img.sealedSize = len(sealed)
	img.donor = donor
	img.fork = simg.ForkState()
	img.donorHost = s.Index
	img.published = true
	c.captures++
	if st := c.storm; st != nil && st.fired {
		st.reseeds++
	}
	c.publishedBytes += int64(len(sealed))
	c.repl.Publish(s.Index, img.sealedKey, len(sealed))
	c.cfg.Telemetry.Counter("severifast_cluster_warm_publishes_total",
		telemetry.A("host", s.Name)).Inc()
	p.Sleep(c.cfg.Model.Hash(len(sealed)))
}

// Play spawns an open-loop arrival process that replays a generated
// trace against the cluster and closes it after the last submission.
// Arrival image indices are taken modulo the registered image count.
func (c *Cluster) Play(arrivals []Arrival, images []*Image, exec time.Duration) error {
	if len(images) == 0 {
		return errors.New("cluster: Play needs at least one image")
	}
	c.eng.Go("cluster-arrivals", func(p *sim.Proc) {
		var at time.Duration
		for _, a := range arrivals {
			if gap := a.At - at; gap > 0 {
				p.Sleep(gap)
			}
			at = a.At
			_ = c.Submit(p, Request{
				Tenant: fmt.Sprintf("t%d", a.Tenant),
				Image:  images[a.Image%len(images)],
				Exec:   exec,
			})
		}
		c.Close()
	})
	return nil
}
