package cluster

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/severifast/severifast/internal/artifact"
	"github.com/severifast/severifast/internal/fleet"
	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/trace"
)

// Percentiles summarizes a latency distribution in nanoseconds. Fields
// are int64 ns rather than time.Duration strings so the JSON is stable
// and machine-comparable.
type Percentiles struct {
	P50Ns int64 `json:"p50_ns"`
	P90Ns int64 `json:"p90_ns"`
	P99Ns int64 `json:"p99_ns"`
	MaxNs int64 `json:"max_ns"`
}

func percentilesOf(s trace.Series) Percentiles {
	if len(s) == 0 {
		return Percentiles{}
	}
	return Percentiles{
		P50Ns: int64(s.Percentile(50)),
		P90Ns: int64(s.Percentile(90)),
		P99Ns: int64(s.Percentile(99)),
		MaxNs: int64(s.Percentile(100)),
	}
}

// TierSummary is one boot tier's cluster-wide outcome.
type TierSummary struct {
	Boots   int         `json:"boots"`
	Latency Percentiles `json:"latency"`
}

// GeoSummary is replication geography: where blob demand was served.
type GeoSummary struct {
	LocalHits     int   `json:"local_hits"`
	Waits         int   `json:"waits"`
	PeerFetches   int   `json:"peer_fetches"`
	OriginFetches int   `json:"origin_fetches"`
	PeerBytes     int64 `json:"peer_bytes"`
	OriginBytes   int64 `json:"origin_bytes"`
}

func geoOf(g artifact.GeoStats) GeoSummary {
	return GeoSummary{
		LocalHits:     g.LocalHits,
		Waits:         g.Waits,
		PeerFetches:   g.PeerFetches,
		OriginFetches: g.OriginFetches,
		PeerBytes:     g.PeerBytes,
		OriginBytes:   g.OriginBytes,
	}
}

// HostSummary is one shard's slice of the run.
type HostSummary struct {
	Host      string         `json:"host"`
	Boots     int            `json:"boots"`
	TierBoots map[string]int `json:"tier_boots"`
	// ASIDPeak is the high-water mark of concurrently live guests.
	ASIDPeak int `json:"asid_peak"`
	// PSP utilization: busy time over makespan, plus raw accounting.
	PSPBusyNs      int64   `json:"psp_busy_ns"`
	PSPUtilization float64 `json:"psp_utilization"`
	PSPServed      uint64  `json:"psp_served"`
	PSPMaxQueue    int     `json:"psp_max_queue"`
	// Measured-image cache effect on this host.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// Attestation outcome, when a KBS gates boots.
	Attested         int            `json:"attested,omitempty"`
	Denials          map[string]int `json:"denials,omitempty"`
	PolicyDenials    map[string]int `json:"policy_denials,omitempty"`
	BreakerFastFails int            `json:"breaker_fast_fails,omitempty"`
	BreakerStates    map[string]int `json:"breaker_states,omitempty"`
	Failed           int            `json:"failed,omitempty"`
	// Storm state, present only on runs with generations or a storm
	// installed (kept out of historic goldens otherwise).
	Generation        string `json:"generation,omitempty"`
	TCB               string `json:"tcb,omitempty"`
	Revoked           bool   `json:"revoked,omitempty"`
	Reenrolls         int    `json:"reenrolls,omitempty"`
	Reattests         int    `json:"reattests,omitempty"`
	ReattestQueuePeak int    `json:"reattest_queue_peak,omitempty"`
	WarmInvalidated   int    `json:"warm_invalidated,omitempty"`
	Replication       GeoSummary `json:"replication"`
}

// StormSummary is the disaster-and-recovery accounting of a run with an
// installed storm: what was distrusted, what it cost, and how long the
// fleet took to go green again.
type StormSummary struct {
	AtNs       int64  `json:"at_ns"`
	Generation string `json:"generation,omitempty"`
	// RevokedHosts counts platforms distrusted at the storm instant;
	// Drifted counts hosts the rolling schedule re-enrolled.
	RevokedHosts int    `json:"revoked_hosts"`
	Floor        string `json:"floor,omitempty"`
	Drifted      int    `json:"drifted"`
	// Warm-pool invalidation cost: pools evicted because their donor was
	// admitted under now-revoked trust, sealed publication bytes
	// withdrawn, and fresh post-storm captures that re-seeded the pool.
	WarmInvalidations    int   `json:"warm_invalidations"`
	WarmInvalidatedBytes int64 `json:"warm_invalidated_bytes"`
	Reseeds              int   `json:"reseeds"`
	// TaintedWarmServed is the tripwire: forked boots served from a
	// revoked donor's pool after the storm. It must be zero.
	TaintedWarmServed int `json:"tainted_warm_served"`
	// MakespanToGreenNs is the recovery makespan: storm instant to the
	// first instant every non-revoked host has served a post-storm boot.
	// -1 when the run ended before the fleet went green.
	MakespanToGreenNs int64 `json:"makespan_to_green_ns"`
	// DenialSpike is the per-reason denial growth after the storm
	// instant, across all three gates (dispatch/, fleet/, kbs/ prefixes).
	DenialSpike map[string]int `json:"denial_spike,omitempty"`
	// Re-attestation churn under the storm, summed over hosts.
	Reenrolls         int `json:"reenrolls"`
	Reattests         int `json:"reattests"`
	ReattestQueuePeak int `json:"reattest_queue_peak"`
}

// WarmPoolSummary is the cross-host warm pool's activity.
type WarmPoolSummary struct {
	// Captures counts images whose snapshot was sealed and published.
	Captures int `json:"captures"`
	// Adoptions counts hosts that seeded their warm tier from a
	// published sealed snapshot instead of cold booting.
	Adoptions int `json:"adoptions"`
	// PublishedBytes is the total sealed-container volume published.
	PublishedBytes int64 `json:"published_bytes"`
}

// Summary is one run's deterministic JSON artifact: same seed and
// config, byte-identical output. All maps marshal with sorted keys
// (encoding/json) and all durations are integer nanoseconds.
type Summary struct {
	Policy     string `json:"policy"`
	Hosts      int    `json:"hosts"`
	MakespanNs int64  `json:"makespan_ns"`

	Submitted int `json:"submitted"`
	Shed      int `json:"shed"`
	Served    int `json:"served"`
	Failed    int `json:"failed"`
	QueueMax  int `json:"queue_max"`
	// PolicyDenied counts placements the dispatch-side policy gate
	// refused before any staging or boot work. Omitted when zero so
	// default-policy runs keep their historic summary bytes.
	PolicyDenied int `json:"policy_denied,omitempty"`
	// Deferred counts dispatch rounds where the policy declined every
	// candidate host and the boot was held for capacity to move — the
	// tcb-aware policy's wait-for-drift behaviour under a storm.
	Deferred int `json:"deferred,omitempty"`
	// Cluster-level trust-plane aggregates (all omitted when empty):
	// DispatchDenials is the dispatch gate's per-rule/reason refusals;
	// Denials, PolicyDenials, and BreakerStates sum the same-named
	// per-host fleet counters, so the three admission gates reconcile in
	// one place.
	DispatchDenials map[string]int `json:"dispatch_denials,omitempty"`
	Denials         map[string]int `json:"denials,omitempty"`
	PolicyDenials   map[string]int `json:"policy_denials,omitempty"`
	BreakerStates   map[string]int `json:"breaker_states,omitempty"`

	TierBoots map[string]TierSummary `json:"tier_boots"`
	// HitRate is the warm/cached-cold fraction of served boots — the
	// fraction that avoided a full measurement pass.
	HitRate float64     `json:"hit_rate"`
	Latency Percentiles `json:"latency"`

	PerHost     []HostSummary   `json:"per_host"`
	Replication GeoSummary      `json:"replication"`
	WarmPool    WarmPoolSummary `json:"warm_pool"`
	Storm       *StormSummary   `json:"storm,omitempty"`
}

// Summarize snapshots the run; call it after eng.Run returns.
func (c *Cluster) Summarize() Summary {
	makespan := c.eng.Now().Duration()
	sum := Summary{
		Policy:       c.cfg.Policy.Name(),
		Hosts:        len(c.shards),
		MakespanNs:   int64(makespan),
		Submitted:    c.submitted,
		Shed:         c.shed,
		Served:       c.served,
		Failed:       c.failed,
		QueueMax:     c.queueMax,
		PolicyDenied: c.policyDenied,
		Deferred:     c.deferred,
		TierBoots:    make(map[string]TierSummary, 3),
		Latency:      percentilesOf(c.allLat),
		WarmPool: WarmPoolSummary{
			Captures:       c.captures,
			Adoptions:      c.adoptions,
			PublishedBytes: c.publishedBytes,
		},
	}
	hits := 0
	for t := fleet.TierWarm; t <= fleet.TierCold; t++ {
		n := len(c.tierLat[t])
		sum.TierBoots[t.String()] = TierSummary{Boots: n, Latency: percentilesOf(c.tierLat[t])}
		if t != fleet.TierCold {
			hits += n
		}
	}
	if c.served > 0 {
		sum.HitRate = float64(hits) / float64(c.served)
	}
	repl := c.repl.Stats()
	sum.Replication = geoOf(repl.Total)
	for _, s := range c.shards {
		met := s.Orch.Metrics()
		cache := s.Cache.Stats()
		res := s.Host.PSP.Resource()
		hs := HostSummary{
			Host:             s.Name,
			Boots:            s.boots,
			TierBoots:        make(map[string]int, 3),
			ASIDPeak:         s.asid.peak,
			PSPBusyNs:        int64(res.BusyTime()),
			PSPServed:        res.Served(),
			PSPMaxQueue:      res.MaxQueue(),
			CacheHits:        cache.Hits,
			CacheMisses:      cache.Misses,
			Attested:         met.Attested,
			BreakerFastFails: met.BreakerFastFails,
			Failed:           met.Failed,
			Replication:      geoOf(repl.PerHost[s.Index]),
		}
		if makespan > 0 {
			hs.PSPUtilization = float64(res.BusyTime()) / float64(makespan)
		}
		for t := fleet.TierWarm; t <= fleet.TierCold; t++ {
			hs.TierBoots[t.String()] = s.tiers[t]
		}
		if len(met.Denials) > 0 {
			hs.Denials = copyCounts(met.Denials)
		}
		if len(met.PolicyDenials) > 0 {
			hs.PolicyDenials = copyCounts(met.PolicyDenials)
		}
		if len(met.BreakerTransitions) > 0 {
			hs.BreakerStates = copyCounts(met.BreakerTransitions)
		}
		if c.cfg.Generations > 1 {
			hs.Generation = s.gen
		}
		if c.storm != nil {
			hs.TCB = s.tcb.String()
			hs.Revoked = s.revoked
		}
		hs.Reenrolls = met.Reenrolls
		hs.Reattests = met.Reattests
		hs.ReattestQueuePeak = met.ReattestQueuePeak
		hs.WarmInvalidated = met.WarmInvalidated
		mergeCounts(&sum.Denials, met.Denials)
		mergeCounts(&sum.PolicyDenials, met.PolicyDenials)
		mergeCounts(&sum.BreakerStates, met.BreakerTransitions)
		sum.PerHost = append(sum.PerHost, hs)
	}
	if len(c.dispatchDenials) > 0 {
		sum.DispatchDenials = copyCounts(c.dispatchDenials)
	}
	if st := c.storm; st != nil && st.fired {
		sum.Storm = c.stormSummary(st)
	}
	return sum
}

// stormSummary folds the storm accounting plus the per-host
// re-attestation churn into the summary block.
func (c *Cluster) stormSummary(st *stormState) *StormSummary {
	ss := &StormSummary{
		AtNs:                 int64(st.at),
		Generation:           st.cfg.Generation,
		RevokedHosts:         st.revokedHosts,
		Drifted:              st.drifted,
		WarmInvalidations:    st.invalidations,
		WarmInvalidatedBytes: st.invalidatedBytes,
		Reseeds:              st.reseeds,
		TaintedWarmServed:    st.taintedServed,
		MakespanToGreenNs:    -1,
	}
	if st.cfg.Floor != (kbs.TCB{}) {
		ss.Floor = st.cfg.Floor.String()
	}
	if st.greenAt > 0 || st.pendingGreen == 0 {
		ss.MakespanToGreenNs = int64(st.greenAt.Sub(st.at))
	}
	for k, v := range c.denialCounts() {
		if d := v - st.preDenials[k]; d > 0 {
			if ss.DenialSpike == nil {
				ss.DenialSpike = make(map[string]int)
			}
			ss.DenialSpike[k] = d
		}
	}
	for _, s := range c.shards {
		met := s.Orch.Metrics()
		ss.Reenrolls += met.Reenrolls
		ss.Reattests += met.Reattests
		if met.ReattestQueuePeak > ss.ReattestQueuePeak {
			ss.ReattestQueuePeak = met.ReattestQueuePeak
		}
	}
	return ss
}

// mergeCounts sums src into *dst, allocating it on first use so empty
// aggregates stay omitted from the JSON.
func mergeCounts(dst *map[string]int, src map[string]int) {
	if len(src) == 0 {
		return
	}
	if *dst == nil {
		*dst = make(map[string]int)
	}
	for k, v := range src {
		(*dst)[k] += v
	}
}

func copyCounts(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Report renders a human-readable account of the run: the cluster
// totals, per-host PSP and cache effect, replication geography, and
// per-tier latency CDFs.
func (s Summary) Report(width int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cluster report: policy %s, %d hosts, makespan %v\n",
		s.Policy, s.Hosts, time.Duration(s.MakespanNs).Round(10*time.Microsecond))
	fmt.Fprintf(&sb, "  admission: %d submitted, %d served, %d shed, %d failed, queue high-water %d\n",
		s.Submitted, s.Served, s.Shed, s.Failed, s.QueueMax)
	tiers := make([]string, 0, len(s.TierBoots))
	for t := range s.TierBoots {
		tiers = append(tiers, t)
	}
	sort.Strings(tiers)
	for _, t := range tiers {
		ts := s.TierBoots[t]
		if ts.Boots == 0 {
			fmt.Fprintf(&sb, "  %-11s %5d boots\n", t, ts.Boots)
			continue
		}
		fmt.Fprintf(&sb, "  %-11s %5d boots  p50 %v  p99 %v\n", t, ts.Boots,
			time.Duration(ts.Latency.P50Ns).Round(10*time.Microsecond),
			time.Duration(ts.Latency.P99Ns).Round(10*time.Microsecond))
	}
	fmt.Fprintf(&sb, "  hit rate (warm+cached-cold): %.3f\n", s.HitRate)
	fmt.Fprintf(&sb, "  warm pool: %d captures, %d adoptions, %.1f KiB published\n",
		s.WarmPool.Captures, s.WarmPool.Adoptions, float64(s.WarmPool.PublishedBytes)/1024)
	r := s.Replication
	fmt.Fprintf(&sb, "  replication: %d local, %d peer (%.1f KiB), %d origin (%.1f KiB), %d waits\n",
		r.LocalHits, r.PeerFetches, float64(r.PeerBytes)/1024,
		r.OriginFetches, float64(r.OriginBytes)/1024, r.Waits)
	if st := s.Storm; st != nil {
		green := "never went green"
		if st.MakespanToGreenNs >= 0 {
			green = fmt.Sprintf("green in %v", time.Duration(st.MakespanToGreenNs).Round(10*time.Microsecond))
		}
		fmt.Fprintf(&sb, "  storm at %v: %d hosts revoked (%s), floor %s, %d drifted, %s\n",
			time.Duration(st.AtNs).Round(10*time.Microsecond), st.RevokedHosts,
			st.Generation, st.Floor, st.Drifted, green)
		fmt.Fprintf(&sb, "    warm pool: %d evictions (%.1f KiB withdrawn), %d reseeds, %d tainted served\n",
			st.WarmInvalidations, float64(st.WarmInvalidatedBytes)/1024,
			st.Reseeds, st.TaintedWarmServed)
		fmt.Fprintf(&sb, "    re-attestation: %d reenrolls, %d reattests (queue peak %d)\n",
			st.Reenrolls, st.Reattests, st.ReattestQueuePeak)
		if len(st.DenialSpike) > 0 {
			keys := make([]string, 0, len(st.DenialSpike))
			for k := range st.DenialSpike {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			sb.WriteString("    denial spike:")
			for _, k := range keys {
				fmt.Fprintf(&sb, " %s=%d", k, st.DenialSpike[k])
			}
			sb.WriteByte('\n')
		}
	}
	for _, h := range s.PerHost {
		fmt.Fprintf(&sb, "  %-4s %4d boots (warm %d, cached %d, cold %d)  asid peak %2d  psp util %5.1f%% (q max %d)  cache %d/%d\n",
			h.Host, h.Boots,
			h.TierBoots["warm"], h.TierBoots["cached-cold"], h.TierBoots["cold"],
			h.ASIDPeak, 100*h.PSPUtilization, h.PSPMaxQueue,
			h.CacheHits, h.CacheHits+h.CacheMisses)
	}
	return sb.String()
}

// LatencyCDFs renders the per-tier distributions; the CLI appends them
// after the report when asked for plots.
func (c *Cluster) LatencyCDFs(width int) string {
	var sb strings.Builder
	for t := fleet.TierWarm; t <= fleet.TierCold; t++ {
		if len(c.tierLat[t]) > 1 {
			sb.WriteString(trace.RenderCDF(fmt.Sprintf("%v boot latency", t), c.tierLat[t], width))
		}
	}
	return sb.String()
}
