// Package ovmf models the EDK II Open Virtual Machine Firmware as used by
// the QEMU reference flow (paper §2.5, §3.1): a >1 MiB firmware volume
// that must be pre-encrypted in full, followed by the UEFI Platform
// Initialization phases (SEC, PEI, DXE, BDS) — redundant bootstrap for a
// microVM — and finally the small measured-direct-boot verifier stage that
// is the only part SEV actually needs (Fig. 3).
package ovmf

import (
	"fmt"
	"sync"

	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/measure"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/verifier"
)

// Artifact sizes: the paper calls 1 MiB the smallest supported OVMF build;
// the varstore (OVMF_VARS) rides along and is measured too.
const (
	CodeSize     = 1 << 20
	VarStoreSize = 128 << 10
)

// Guest-physical placement, high in the 256 MiB guest.
const (
	GPACode     = 0x0FC00000
	GPAVarStore = GPACode + CodeSize
	GPASecrets  = 0x3000 // SNP secrets page
	GPACPUID    = 0x4000 // SNP CPUID page
)

// Volume returns the firmware volume bytes (deterministic stand-in for a
// compiled OVMF.fd).
func Volume(seed int64) []byte { return kernelgen.GenBinary(seed^0x0FF, CodeSize) }

// VarStore returns the NVRAM varstore bytes.
func VarStore(seed int64) []byte { return kernelgen.GenBinary(seed^0xFAB, VarStoreSize) }

// planKey identifies one cached OVMF plan: the firmware build, the
// protection level (which decides the SNP metadata pages and the VMSA),
// and the measured-direct-boot component hashes.
type planKey struct {
	seed   int64
	level  sev.Level
	hashes measure.ComponentHashes
}

var planCache struct {
	mu sync.Mutex
	m  map[planKey][]measure.Region
}

// PlanRegions returns OVMF's pre-encryption plan: everything the QEMU flow
// measures before guest entry. Compare measure.Plan: the difference in
// byte count is the whole Fig. 10 pre-encryption story.
//
// Plans are cached per (seed, level, hashes) and bound to a staging
// blob: the >1 MiB firmware volume is generated and concatenated once,
// and every boot of the same firmware stages the same immutable bytes
// zero-copy. Callers must treat the returned regions as read-only.
func PlanRegions(seed int64, level sev.Level, hashes measure.ComponentHashes) []measure.Region {
	k := planKey{seed: seed, level: level, hashes: hashes}
	planCache.mu.Lock()
	defer planCache.mu.Unlock()
	if regions, ok := planCache.m[k]; ok {
		return regions
	}
	regions := planRegions(seed, level, hashes)
	if planCache.m == nil {
		planCache.m = make(map[planKey][]measure.Region)
	}
	planCache.m[k] = regions
	return regions
}

func planRegions(seed int64, level sev.Level, hashes measure.ComponentHashes) []measure.Region {
	regions := []measure.Region{
		{Name: "ovmf-code", GPA: GPACode, Data: Volume(seed), Type: sev.PageNormal},
		{Name: "ovmf-vars", GPA: GPAVarStore, Data: VarStore(seed), Type: sev.PageNormal},
		{Name: "hashes", GPA: measure.GPAHashPage, Data: hashes.HashPage(), Type: sev.PageNormal},
	}
	if level.HasRMP() {
		regions = append(regions,
			measure.Region{Name: "secrets", GPA: GPASecrets, Data: make([]byte, 4096), Type: sev.PageSecrets},
			measure.Region{Name: "cpuid", GPA: GPACPUID, Data: make([]byte, 4096), Type: sev.PageCPUID},
		)
	}
	if level >= sev.ES {
		regions = append(regions, measure.Region{
			Name: "vmsa", GPA: measure.GPAVMSA, Data: measure.VMSAPage(GPACode), Type: sev.PageVMSA,
		})
	}
	return measure.BindStagingBlob(regions)
}

// Run executes the firmware in the guest: the four PI phases, then the
// embedded boot verifier performing measured direct boot over the staged
// components. It returns the verifier handoff for the kernel stage.
func Run(proc *sim.Proc, m *kvm.Machine, in verifier.Inputs) (*verifier.Handoff, error) {
	model := m.Host.Model

	m.Timeline.Begin("firmware", proc.Now())
	// SEC: reset vector, cache-as-RAM, decompress PEI core.
	m.DebugEvent(proc, sev.EvFirmwareSEC)
	proc.Sleep(model.OVMFPhaseSEC)
	// PEI: memory init, platform PEIMs, hand-off blocks.
	m.DebugEvent(proc, sev.EvFirmwarePEI)
	proc.Sleep(model.OVMFPhasePEI)
	// DXE: driver dispatch — the dominant, microVM-redundant phase.
	m.DebugEvent(proc, sev.EvFirmwareDXE)
	proc.Sleep(model.OVMFPhaseDXE)
	// BDS: boot device selection.
	m.DebugEvent(proc, sev.EvFirmwareBDS)
	proc.Sleep(model.OVMFPhaseBDS)
	m.Timeline.End("firmware", proc.Now())

	// The only SEV-necessary part: boot verification (Fig. 3's thin
	// "Boot Verifier" slice). OVMF validates guest memory first the same
	// way the SEVeriFast verifier does.
	h, err := verifier.Run(proc, m, in)
	if err != nil {
		return nil, fmt.Errorf("ovmf: %w", err)
	}
	return h, nil
}
