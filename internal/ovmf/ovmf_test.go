package ovmf

import (
	"bytes"
	"testing"

	"github.com/severifast/severifast/internal/measure"
	"github.com/severifast/severifast/internal/sev"
)

func TestVolumeSizeIsPaperMinimum(t *testing.T) {
	if CodeSize != 1<<20 {
		t.Fatalf("OVMF code %d bytes; paper §3.1 says the smallest build is 1 MiB", CodeSize)
	}
	if len(Volume(1)) != CodeSize {
		t.Fatal("volume size mismatch")
	}
	if len(VarStore(1)) != VarStoreSize {
		t.Fatal("varstore size mismatch")
	}
}

func TestVolumeDeterministic(t *testing.T) {
	if !bytes.Equal(Volume(1), Volume(1)) {
		t.Fatal("OVMF volume not deterministic; it is measured")
	}
	if bytes.Equal(Volume(1), Volume(2)) {
		t.Fatal("different seeds gave the same volume")
	}
}

func TestPlanRegionsSNP(t *testing.T) {
	h := measure.HashComponents([]byte("k"), []byte("i"), "c")
	regions := PlanRegions(1, sev.SNP, h)
	names := map[string]int{}
	total := 0
	for _, r := range regions {
		names[r.Name] = len(r.Data)
		total += len(r.Data)
	}
	for _, want := range []string{"ovmf-code", "ovmf-vars", "hashes", "secrets", "cpuid", "vmsa"} {
		if _, ok := names[want]; !ok {
			t.Errorf("plan missing %q", want)
		}
	}
	// >1.1 MiB pre-encrypted: the whole Fig. 10 story.
	if total < (1<<20)+(128<<10) {
		t.Fatalf("plan only measures %d bytes", total)
	}
}

func TestPlanRegionsBaseSEVOmitsSNPPages(t *testing.T) {
	h := measure.HashComponents([]byte("k"), []byte("i"), "c")
	pol := map[string]bool{}
	for _, r := range PlanRegions(1, sev.SEV, h) {
		pol[r.Name] = true
	}
	if pol["secrets"] || pol["cpuid"] {
		t.Fatal("base SEV must not measure SNP secrets/cpuid pages")
	}
	if pol["vmsa"] {
		t.Fatal("base SEV must not measure a VMSA")
	}
	for _, r := range PlanRegions(1, sev.ES, h) {
		pol[r.Name+"|es"] = true
	}
	if !pol["vmsa|es"] {
		t.Fatal("SEV-ES must measure the VMSA")
	}
}

func TestPlanRegionsDoNotOverlap(t *testing.T) {
	h := measure.HashComponents([]byte("k"), []byte("i"), "c")
	regions := PlanRegions(1, sev.SNP, h)
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			a, b := regions[i], regions[j]
			aEnd := a.GPA + uint64(len(a.Data))
			bEnd := b.GPA + uint64(len(b.Data))
			if a.GPA < bEnd && b.GPA < aEnd {
				t.Errorf("overlap: %s vs %s", a.Name, b.Name)
			}
		}
	}
	// The firmware must fit in a 256 MiB guest.
	for _, r := range regions {
		if r.GPA+uint64(len(r.Data)) > 256<<20 {
			t.Errorf("%s beyond guest memory", r.Name)
		}
	}
}

func TestHashPageMatchesSEVeriFastFormat(t *testing.T) {
	// OVMF's measured direct boot uses the same hash-page layout the
	// SEVeriFast verifier parses.
	h := measure.HashComponents([]byte("kernel"), []byte("initrd"), "cmd")
	for _, r := range PlanRegions(1, sev.SNP, h) {
		if r.Name != "hashes" {
			continue
		}
		got, err := measure.ParseHashPage(r.Data)
		if err != nil {
			t.Fatal(err)
		}
		if got != h {
			t.Fatal("hash page round trip mismatch")
		}
		return
	}
	t.Fatal("no hashes region")
}
