package ghcb

import (
	"bytes"
	"errors"
	"testing"

	"github.com/severifast/severifast/internal/guestmem"
	"github.com/severifast/severifast/internal/rmp"
)

func sevMem(t *testing.T, asid uint32) *guestmem.Memory {
	t.Helper()
	mem := guestmem.New(1 << 20)
	mem.SetKey(bytes.Repeat([]byte{1}, 16), asid)
	tb := rmp.New()
	mem.AttachRMP(tb, asid)
	if err := tb.PvalidateRangeSkipValidated(0, 1<<20, 2<<20, asid); err != nil {
		t.Fatal(err)
	}
	return mem
}

const gpa = 0x8000

func TestExitRoundTrip(t *testing.T) {
	mem := sevMem(t, 1)
	g, err := New(mem, gpa)
	if err != nil {
		t.Fatal(err)
	}
	// A debug-port write: the #VC handler exposes RAX (the value) but
	// nothing else.
	err = g.Write(Exit{
		Code:     ExitIOIO,
		Info1:    0x80, // port
		RAX:      0x42,
		ShareRAX: true,
		RBX:      0xDEADBEEF, // secret: NOT shared
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := ReadFromHost(mem, gpa)
	if err != nil {
		t.Fatal(err)
	}
	if v.Code != ExitIOIO || v.Info1 != 0x80 {
		t.Fatalf("exit decoded wrong: %+v", v)
	}
	if !v.HasRAX || v.RAX != 0x42 {
		t.Fatalf("shared RAX lost: %+v", v)
	}
	if v.HasRBX {
		t.Fatal("unshared RBX visible to the host — register state leak")
	}
}

func TestHostResultRoundTrip(t *testing.T) {
	mem := sevMem(t, 1)
	g, err := New(mem, gpa)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Write(Exit{Code: ExitCPUID, RAX: 0x8000001F, ShareRAX: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFromHost(mem, gpa); err != nil {
		t.Fatal(err)
	}
	if err := WriteResult(mem, gpa, 0xC0FFEE); err != nil {
		t.Fatal(err)
	}
	got, err := g.ReadResult()
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xC0FFEE {
		t.Fatalf("result = %#x", got)
	}
}

func TestGHCBPageIsSharedAutomatically(t *testing.T) {
	mem := sevMem(t, 2)
	// Make the page private first; New must convert it back to shared.
	if err := mem.GuestWrite(gpa, []byte{1}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := New(mem, gpa); err != nil {
		t.Fatal(err)
	}
	if mem.IsPrivate(gpa) {
		t.Fatal("GHCB left private")
	}
	// And the host can now write results into it despite SNP.
	if err := WriteResult(mem, gpa, 1); err != nil {
		t.Fatalf("host blocked from shared GHCB: %v", err)
	}
}

func TestHostRejectsPrivateGHCB(t *testing.T) {
	mem := sevMem(t, 3)
	if err := mem.GuestWrite(0x9000, make([]byte, guestmem.PageSize), true); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFromHost(mem, 0x9000); !errors.Is(err, ErrNotShared) {
		t.Fatalf("private GHCB read: %v", err)
	}
}

func TestUnalignedGHCBRejected(t *testing.T) {
	mem := sevMem(t, 4)
	if _, err := New(mem, gpa+8); err == nil {
		t.Fatal("unaligned GHCB accepted")
	}
}

func TestHostRejectsInvalidExitCode(t *testing.T) {
	mem := sevMem(t, 5)
	if _, err := New(mem, gpa); err != nil {
		t.Fatal(err)
	}
	// Page initialized but no exit staged: valid bitmap empty.
	if _, err := ReadFromHost(mem, gpa); err == nil {
		t.Fatal("empty GHCB decoded as an exit")
	}
}

func TestMSRCPUIDProtocol(t *testing.T) {
	req := MSRCPUIDRequest(0x8000001F, 1) // EBX of the SEV leaf
	leaf, reg, ok := ParseMSRCPUIDRequest(req)
	if !ok || leaf != 0x8000001F || reg != 1 {
		t.Fatalf("request decode: leaf=%#x reg=%d ok=%v", leaf, reg, ok)
	}
	resp := MSRCPUIDResponse(51) // C-bit position
	val, ok := ParseMSRCPUIDResponse(resp)
	if !ok || val != 51 {
		t.Fatalf("response decode: %d %v", val, ok)
	}
	// Cross-decoding must fail.
	if _, _, ok := ParseMSRCPUIDRequest(resp); ok {
		t.Fatal("response decoded as request")
	}
	if _, ok := ParseMSRCPUIDResponse(req); ok {
		t.Fatal("request decoded as response")
	}
}

func TestAllRegistersShareable(t *testing.T) {
	mem := sevMem(t, 6)
	g, err := New(mem, gpa)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Write(Exit{
		Code: ExitMSR,
		RAX:  1, RBX: 2, RCX: 3, RDX: 4,
		ShareRAX: true, ShareRBX: true, ShareRCX: true, ShareRDX: true,
	}); err != nil {
		t.Fatal(err)
	}
	v, err := ReadFromHost(mem, gpa)
	if err != nil {
		t.Fatal(err)
	}
	if v.RAX != 1 || v.RBX != 2 || v.RCX != 3 || v.RDX != 4 {
		t.Fatalf("registers lost: %+v", v)
	}
}
