// Package ghcb models the Guest-Host Communication Block: the shared page
// an SEV-ES/SNP guest uses to expose chosen register state to the
// hypervisor during #VC exits (paper §2.2, §6.1 Testing Methodology).
//
// Two protocols coexist, both modeled with real page bytes:
//
//   - The GHCB page protocol: the #VC handler writes the exit code, exit
//     info, and the registers it chooses to share into a 4 KiB *shared*
//     page, sets the valid bitmap, and issues VMGEXIT; the hypervisor
//     reads the page, emulates, writes results back.
//   - The GHCB MSR protocol: before a handler/page exists (early boot),
//     the guest communicates through the GHCB MSR itself with small coded
//     values — which is how the paper's boot-timing events escape the
//     guest before #VC handlers are installed.
package ghcb

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/severifast/severifast/internal/guestmem"
)

// Exit codes (SVM VMEXIT codes reused by the GHCB protocol).
const (
	ExitIOIO   uint64 = 0x7B // port I/O (the debug port writes)
	ExitMSR    uint64 = 0x7C
	ExitCPUID  uint64 = 0x72
	ExitMMIO   uint64 = 0x80000001
	ExitSNPReq uint64 = 0x80000011 // SNP_GUEST_REQUEST (attestation)
)

// Page field offsets within the 4 KiB GHCB (following the shape of the
// GHCB layout: a save area plus protocol fields near the end).
const (
	offRAX       = 0x01F8
	offRBX       = 0x0318
	offRCX       = 0x0308
	offRDX       = 0x0310
	offExitCode  = 0x0390
	offExitInfo1 = 0x0398
	offExitInfo2 = 0x03A0
	offValidBM   = 0x03F0 // 16-byte bitmap of valid quadwords
	offVersion   = 0x0FFA
	offUsage     = 0x0FF8 // protocol usage: 0 = GHCB
)

// Errors.
var (
	ErrNotShared = errors.New("ghcb: GHCB page must be in shared memory")
	ErrProtocol  = errors.New("ghcb: protocol violation")
)

// GHCB is a guest-side handle on the communication page.
type GHCB struct {
	mem *guestmem.Memory
	gpa uint64
}

// New registers the GHCB at gpa. The page must be shared: a private GHCB
// would hand the hypervisor ciphertext, so the guest converts it first.
func New(mem *guestmem.Memory, gpa uint64) (*GHCB, error) {
	if gpa%guestmem.PageSize != 0 {
		return nil, fmt.Errorf("%w: GHCB must be page aligned", ErrProtocol)
	}
	// Page-state-change to shared, then initialize version/usage.
	if err := mem.ShareRange(gpa, guestmem.PageSize); err != nil {
		return nil, err
	}
	g := &GHCB{mem: mem, gpa: gpa}
	var init [8]byte
	binary.LittleEndian.PutUint16(init[0:], 2) // version 2
	if err := mem.GuestWrite(gpa+offVersion, init[:2], false); err != nil {
		return nil, err
	}
	if err := mem.GuestWrite(gpa+offUsage, []byte{0, 0}, false); err != nil {
		return nil, err
	}
	return g, nil
}

// Exit is one #VC exit: the guest-chosen state to expose.
type Exit struct {
	Code         uint64
	Info1, Info2 uint64
	RAX, RBX     uint64
	RCX, RDX     uint64
	ShareRAX     bool // which registers the handler chooses to expose
	ShareRBX     bool
	ShareRCX     bool
	ShareRDX     bool
}

// validBit indexes the quadword-valid bitmap.
func validBit(off int) (byteIdx int, mask byte) {
	q := off / 8
	return q / 8, 1 << (q % 8)
}

// Write stages an exit in the GHCB page (the guest #VC handler's job):
// only the registers the handler marked shared become visible.
func (g *GHCB) Write(e Exit) error {
	page := make([]byte, guestmem.PageSize)
	le := binary.LittleEndian
	bm := page[offValidBM : offValidBM+16]
	set := func(off int, v uint64) {
		le.PutUint64(page[off:], v)
		bi, mask := validBit(off)
		bm[bi] |= mask
	}
	set(offExitCode, e.Code)
	set(offExitInfo1, e.Info1)
	set(offExitInfo2, e.Info2)
	if e.ShareRAX {
		set(offRAX, e.RAX)
	}
	if e.ShareRBX {
		set(offRBX, e.RBX)
	}
	if e.ShareRCX {
		set(offRCX, e.RCX)
	}
	if e.ShareRDX {
		set(offRDX, e.RDX)
	}
	le.PutUint16(page[offVersion:], 2)
	return g.mem.GuestWrite(g.gpa, page, false)
}

// HostView is what the hypervisor decodes from the page after VMGEXIT.
type HostView struct {
	Code         uint64
	Info1, Info2 uint64
	RAX, RBX     uint64
	RCX, RDX     uint64
	HasRAX       bool
	HasRBX       bool
	HasRCX       bool
	HasRDX       bool
}

// ReadFromHost parses the GHCB as the hypervisor does: fields count only
// when their valid bit is set. Reading a private page fails loudly.
func ReadFromHost(mem *guestmem.Memory, gpa uint64) (*HostView, error) {
	if mem.IsPrivate(gpa) {
		return nil, ErrNotShared
	}
	page, err := mem.HostRead(gpa, guestmem.PageSize)
	if err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	if le.Uint16(page[offVersion:]) != 2 {
		return nil, fmt.Errorf("%w: bad GHCB version", ErrProtocol)
	}
	bm := page[offValidBM : offValidBM+16]
	valid := func(off int) bool {
		bi, mask := validBit(off)
		return bm[bi]&mask != 0
	}
	if !valid(offExitCode) {
		return nil, fmt.Errorf("%w: exit code not marked valid", ErrProtocol)
	}
	v := &HostView{
		Code:  le.Uint64(page[offExitCode:]),
		Info1: le.Uint64(page[offExitInfo1:]),
		Info2: le.Uint64(page[offExitInfo2:]),
	}
	if valid(offRAX) {
		v.RAX, v.HasRAX = le.Uint64(page[offRAX:]), true
	}
	if valid(offRBX) {
		v.RBX, v.HasRBX = le.Uint64(page[offRBX:]), true
	}
	if valid(offRCX) {
		v.RCX, v.HasRCX = le.Uint64(page[offRCX:]), true
	}
	if valid(offRDX) {
		v.RDX, v.HasRDX = le.Uint64(page[offRDX:]), true
	}
	return v, nil
}

// WriteResult is the hypervisor writing emulation results back (e.g. the
// RAX an IN instruction produced).
func WriteResult(mem *guestmem.Memory, gpa uint64, rax uint64) error {
	var raw [8]byte
	binary.LittleEndian.PutUint64(raw[:], rax)
	if err := mem.HostWrite(gpa+offRAX, raw[:]); err != nil {
		return err
	}
	bi, mask := validBit(offRAX)
	bmRaw, err := mem.HostRead(gpa+offValidBM+uint64(bi), 1)
	if err != nil {
		return err
	}
	return mem.HostWrite(gpa+offValidBM+uint64(bi), []byte{bmRaw[0] | mask})
}

// ReadResult is the guest consuming the hypervisor's response.
func (g *GHCB) ReadResult() (uint64, error) {
	raw, err := g.mem.GuestRead(g.gpa+offRAX, 8, false)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(raw), nil
}

// --- MSR protocol (pre-handler early boot) ---

// MSR protocol request/response codes (low 12 bits).
const (
	MSRCPUIDReq  = 0x004
	MSRCPUIDResp = 0x005
	MSRTermReq   = 0x100
)

// MSRCPUIDRequest encodes an early-boot CPUID request through the GHCB
// MSR: leaf in the high bits, register selector in bits 30-31, request
// code in the low 12.
func MSRCPUIDRequest(leaf uint32, reg uint8) uint64 {
	return uint64(leaf)<<32 | uint64(reg&3)<<30 | MSRCPUIDReq
}

// ParseMSRCPUIDRequest decodes the hypervisor side.
func ParseMSRCPUIDRequest(v uint64) (leaf uint32, reg uint8, ok bool) {
	if v&0xFFF != MSRCPUIDReq {
		return 0, 0, false
	}
	return uint32(v >> 32), uint8(v >> 30 & 3), true
}

// MSRCPUIDResponse encodes the reply value.
func MSRCPUIDResponse(value uint32) uint64 {
	return uint64(value)<<32 | MSRCPUIDResp
}

// ParseMSRCPUIDResponse decodes the guest side.
func ParseMSRCPUIDResponse(v uint64) (value uint32, ok bool) {
	if v&0xFFF != MSRCPUIDResp {
		return 0, false
	}
	return uint32(v >> 32), true
}
