// Package bootparams builds and parses the Linux boot_params structure
// (the "zero page"): the 4 KiB block that tells the kernel where its
// command line, initrd, and usable memory live. A microVM monitor fills
// this in on the guest's behalf; under SEVeriFast it is pre-encrypted
// since the structure (4 KiB) is smaller than the ~5 KiB of code needed
// to generate it in the guest (Fig. 7).
package bootparams

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Size is the zero page size.
const Size = 4096

// GeneratorCodeSize is the guest-side code needed to build boot_params
// instead (Fig. 7's ~5 KiB).
const GeneratorCodeSize = 5120

// Field offsets within boot_params (from arch/x86/include/uapi/asm/bootparam.h).
const (
	offE820Entries = 0x1E8 // u8 count
	offSetupSects  = 0x1F1 // mirror of the bzImage setup header
	offHdrMagic    = 0x202 // "HdrS"
	offVersion     = 0x206
	offLoadFlags   = 0x211
	offRamdisk     = 0x218 // u32 ramdisk_image
	offRamdiskSize = 0x21C // u32 ramdisk_size
	offCmdlinePtr  = 0x228 // u32 cmd_line_ptr
	offCmdlineSize = 0x238 // u32 cmdline_size
	offE820Table   = 0x2D0 // 20-byte entries
	maxE820        = 128
)

const hdrSMagic = 0x53726448

// E820Type classifies a memory region.
type E820Type uint32

// E820 region types.
const (
	E820Usable   E820Type = 1
	E820Reserved E820Type = 2
)

// E820Entry is one memory-map region.
type E820Entry struct {
	Addr uint64
	Size uint64
	Type E820Type
}

// Params is the decoded zero page content we care about.
type Params struct {
	CmdlinePtr   uint32
	CmdlineSize  uint32
	RamdiskImage uint32
	RamdiskSize  uint32
	E820         []E820Entry
}

// ErrCorrupt reports a malformed zero page.
var ErrCorrupt = errors.New("bootparams: corrupt zero page")

// Build serializes params into a 4 KiB zero page.
func Build(p Params) ([]byte, error) {
	if len(p.E820) > maxE820 {
		return nil, fmt.Errorf("bootparams: %d e820 entries exceeds %d", len(p.E820), maxE820)
	}
	out := make([]byte, Size)
	le := binary.LittleEndian
	// Minimal setup-header mirror so the kernel's sanity checks pass.
	out[offSetupSects] = 0
	le.PutUint32(out[offHdrMagic:], hdrSMagic)
	le.PutUint16(out[offVersion:], 0x020F)
	out[offLoadFlags] = 0x01 // LOADED_HIGH
	le.PutUint32(out[offRamdisk:], p.RamdiskImage)
	le.PutUint32(out[offRamdiskSize:], p.RamdiskSize)
	le.PutUint32(out[offCmdlinePtr:], p.CmdlinePtr)
	le.PutUint32(out[offCmdlineSize:], p.CmdlineSize)
	out[offE820Entries] = byte(len(p.E820))
	for i, e := range p.E820 {
		ent := out[offE820Table+20*i:]
		le.PutUint64(ent[0:], e.Addr)
		le.PutUint64(ent[8:], e.Size)
		le.PutUint32(ent[16:], uint32(e.Type))
	}
	return out, nil
}

// Parse decodes a zero page, validating the header mirror.
func Parse(b []byte) (*Params, error) {
	if len(b) < Size {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorrupt, len(b))
	}
	le := binary.LittleEndian
	if le.Uint32(b[offHdrMagic:]) != hdrSMagic {
		return nil, fmt.Errorf("%w: missing HdrS mirror", ErrCorrupt)
	}
	n := int(b[offE820Entries])
	if n > maxE820 {
		return nil, fmt.Errorf("%w: e820 count %d", ErrCorrupt, n)
	}
	p := &Params{
		CmdlinePtr:   le.Uint32(b[offCmdlinePtr:]),
		CmdlineSize:  le.Uint32(b[offCmdlineSize:]),
		RamdiskImage: le.Uint32(b[offRamdisk:]),
		RamdiskSize:  le.Uint32(b[offRamdiskSize:]),
	}
	for i := 0; i < n; i++ {
		ent := b[offE820Table+20*i:]
		p.E820 = append(p.E820, E820Entry{
			Addr: le.Uint64(ent[0:]),
			Size: le.Uint64(ent[8:]),
			Type: E820Type(le.Uint32(ent[16:])),
		})
	}
	return p, nil
}

// StandardE820 returns the microVM memory map: low 640 KiB usable, legacy
// hole reserved, the rest usable up to memSize.
func StandardE820(memSize uint64) []E820Entry {
	return []E820Entry{
		{Addr: 0, Size: 0x9FC00, Type: E820Usable},
		{Addr: 0x9FC00, Size: 0x100000 - 0x9FC00, Type: E820Reserved},
		{Addr: 0x100000, Size: memSize - 0x100000, Type: E820Usable},
	}
}

// UsableBytes sums the usable region sizes (sanity checks in tests).
func UsableBytes(entries []E820Entry) uint64 {
	var n uint64
	for _, e := range entries {
		if e.Type == E820Usable {
			n += e.Size
		}
	}
	return n
}
