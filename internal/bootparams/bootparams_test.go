package bootparams

import "testing"

func sample() Params {
	return Params{
		CmdlinePtr:   0x20000,
		CmdlineSize:  155,
		RamdiskImage: 0x4000000,
		RamdiskSize:  16 << 20,
		E820:         StandardE820(256 << 20),
	}
}

func TestRoundTrip(t *testing.T) {
	in := sample()
	b, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != Size {
		t.Fatalf("zero page %d bytes, want %d", len(b), Size)
	}
	out, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.CmdlinePtr != in.CmdlinePtr || out.CmdlineSize != in.CmdlineSize {
		t.Fatalf("cmdline fields: %+v", out)
	}
	if out.RamdiskImage != in.RamdiskImage || out.RamdiskSize != in.RamdiskSize {
		t.Fatalf("ramdisk fields: %+v", out)
	}
	if len(out.E820) != len(in.E820) {
		t.Fatalf("e820 count %d, want %d", len(out.E820), len(in.E820))
	}
	for i := range in.E820 {
		if out.E820[i] != in.E820[i] {
			t.Fatalf("e820[%d] = %+v, want %+v", i, out.E820[i], in.E820[i])
		}
	}
}

func TestStandardE820Coverage(t *testing.T) {
	const mem = 256 << 20
	entries := StandardE820(mem)
	usable := UsableBytes(entries)
	// Everything except the legacy hole is usable.
	if usable < mem-(1<<20) || usable > mem {
		t.Fatalf("usable = %d of %d", usable, mem)
	}
	// Regions must be sorted and non-overlapping.
	var end uint64
	for _, e := range entries {
		if e.Addr < end {
			t.Fatalf("overlapping e820 at %#x", e.Addr)
		}
		end = e.Addr + e.Size
	}
}

func TestParseRejectsMissingMirror(t *testing.T) {
	b, _ := Build(sample())
	b[offHdrMagic] = 0
	if _, err := Parse(b); err == nil {
		t.Fatal("missing HdrS mirror accepted")
	}
}

func TestParseRejectsShort(t *testing.T) {
	if _, err := Parse(make([]byte, 100)); err == nil {
		t.Fatal("short zero page accepted")
	}
}

func TestParseRejectsBadE820Count(t *testing.T) {
	b, _ := Build(sample())
	b[offE820Entries] = 200
	if _, err := Parse(b); err == nil {
		t.Fatal("oversized e820 count accepted")
	}
}

func TestBuildRejectsTooManyE820(t *testing.T) {
	p := sample()
	p.E820 = make([]E820Entry, maxE820+1)
	if _, err := Build(p); err == nil {
		t.Fatal("too many e820 entries accepted")
	}
}

func TestDeterministicBuild(t *testing.T) {
	a, _ := Build(sample())
	b, _ := Build(sample())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("boot_params not deterministic; it is pre-encrypted and measured")
		}
	}
}

func TestFig7StructAndCodeSizes(t *testing.T) {
	// Fig. 7: boot_params spans a 4 KiB page; generating it needs ~5 KiB
	// of code, so SEVeriFast pre-encrypts the structure.
	if Size != 4096 {
		t.Fatalf("Size = %d", Size)
	}
	if GeneratorCodeSize <= Size {
		t.Fatal("generator code must exceed struct size (that is the pre-encrypt rationale)")
	}
}
