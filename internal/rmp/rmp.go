// Package rmp models the SEV-SNP Reverse Map Table: the system-wide,
// hardware-enforced structure that records which guest owns each physical
// page and whether the guest has validated it (paper §2.2).
//
// The table is consulted on host writes (an assigned page may not be
// written by the hypervisor), on guest private accesses (an unvalidated
// page raises #VC), and by the pvalidate instruction (the only way to set
// the validated bit, and only from inside the guest).
package rmp

import (
	"errors"
	"fmt"
)

// PageSize is the RMP granularity.
const PageSize = 4096

// Errors reported by RMP checks. ErrVC corresponds to the #VC exception
// delivered to the guest; ErrHostWrite corresponds to the hardware
// blocking a host write to an assigned page.
var (
	ErrVC        = errors.New("rmp: #VC — guest access to unvalidated private page")
	ErrHostWrite = errors.New("rmp: host write to guest-assigned page blocked")
	ErrOwner     = errors.New("rmp: page assigned to a different guest")
	ErrDouble    = errors.New("rmp: pvalidate of already-validated page")
)

// Entry is one RMP record.
type Entry struct {
	ASID      uint32 // owning guest; 0 = hypervisor-owned
	Assigned  bool   // page belongs to a guest
	Validated bool   // guest has executed pvalidate
}

// Table is the reverse map table. One table exists per machine; guests are
// distinguished by ASID.
type Table struct {
	// entries is dense, indexed by page frame number and grown on
	// demand; guest-physical spaces are bounded (hundreds of MiB), so a
	// flat slice keeps every per-page check off the map hash path.
	entries []Entry

	// Validations counts successful pvalidate operations, for cost
	// accounting and the huge-page ablation.
	Validations uint64
}

// New returns an empty table (all pages hypervisor-owned).
func New() *Table {
	return &Table{}
}

func pfn(gpa uint64) uint64 { return gpa / PageSize }

// at returns the entry for a pfn (zero value beyond the grown range).
func (t *Table) at(n uint64) Entry {
	if n >= uint64(len(t.entries)) {
		return Entry{}
	}
	return t.entries[n]
}

// set stores an entry, growing the dense table to cover the pfn.
func (t *Table) set(n uint64, e Entry) {
	if n >= uint64(len(t.entries)) {
		grown := make([]Entry, (n+1)*2)
		copy(grown, t.entries)
		t.entries = grown
	}
	t.entries[n] = e
}

// Lookup returns the entry covering gpa.
func (t *Table) Lookup(gpa uint64) Entry { return t.at(pfn(gpa)) }

// Assign marks the page containing gpa as owned by asid, clearing the
// validated bit (hardware does this whenever ownership or mapping
// changes). Used by SNP_LAUNCH_UPDATE and by KVM when donating pages.
func (t *Table) Assign(gpa uint64, asid uint32) {
	t.set(pfn(gpa), Entry{ASID: asid, Assigned: true})
}

// AssignValidated assigns and validates in one step — the state
// SNP_LAUNCH_UPDATE leaves pre-encrypted launch pages in, so the guest can
// execute from its root of trust without a pvalidate round.
func (t *Table) AssignValidated(gpa uint64, asid uint32) {
	t.set(pfn(gpa), Entry{ASID: asid, Assigned: true, Validated: true})
}

// Pvalidate sets the validated bit for the page containing gpa. It fails
// if the page is not assigned to asid (the guest cannot validate pages it
// does not own) and if the page is already validated (the double-validate
// check that defends against remap/replay games).
func (t *Table) Pvalidate(gpa uint64, asid uint32) error {
	e := t.at(pfn(gpa))
	if !e.Assigned || e.ASID != asid {
		return fmt.Errorf("%w: pfn %#x", ErrOwner, pfn(gpa))
	}
	if e.Validated {
		return fmt.Errorf("%w: pfn %#x", ErrDouble, pfn(gpa))
	}
	e.Validated = true
	t.set(pfn(gpa), e)
	t.Validations++
	return nil
}

// PvalidateRange validates [gpa, gpa+n) in pageSize steps, modeling
// validation with either 4 KiB or 2 MiB granularity. The RMP itself is
// tracked at 4 KiB granularity; a 2 MiB pvalidate validates 512 entries
// with a single instruction (one Validations tick).
func (t *Table) PvalidateRange(gpa uint64, n int, pageSize int, asid uint32) error {
	if pageSize <= 0 {
		pageSize = PageSize
	}
	for off := uint64(0); off < uint64(n); off += uint64(pageSize) {
		base := gpa + off
		for sub := uint64(0); sub < uint64(pageSize) && base+sub < gpa+uint64(n); sub += PageSize {
			e := t.at(pfn(base + sub))
			if !e.Assigned || e.ASID != asid {
				return fmt.Errorf("%w: pfn %#x", ErrOwner, pfn(base+sub))
			}
			if e.Validated {
				return fmt.Errorf("%w: pfn %#x", ErrDouble, pfn(base+sub))
			}
			e.Validated = true
			t.set(pfn(base+sub), e)
		}
		t.Validations++
	}
	return nil
}

// CheckGuestAccess verifies a guest private-memory access to the page
// containing gpa: the page must be assigned to this guest and validated,
// otherwise the hardware raises #VC.
func (t *Table) CheckGuestAccess(gpa uint64, asid uint32) error {
	e := t.at(pfn(gpa))
	if !e.Assigned || e.ASID != asid || !e.Validated {
		return fmt.Errorf("%w: gpa %#x", ErrVC, gpa)
	}
	return nil
}

// CheckHostWrite verifies a hypervisor write to the page containing gpa:
// assigned pages are write-protected from the host.
func (t *Table) CheckHostWrite(gpa uint64) error {
	e := t.at(pfn(gpa))
	if e.Assigned {
		return fmt.Errorf("%w: gpa %#x (asid %d)", ErrHostWrite, gpa, e.ASID)
	}
	return nil
}

// Remap models the hypervisor changing the mapping backing gpa: hardware
// clears the validated bit, so the guest's next access raises #VC
// (paper §2.2). Ownership is retained.
func (t *Table) Remap(gpa uint64) {
	e := t.at(pfn(gpa))
	e.Validated = false
	t.set(pfn(gpa), e)
}

// Reclaim returns the page to hypervisor ownership (guest teardown).
func (t *Table) Reclaim(gpa uint64) {
	t.set(pfn(gpa), Entry{})
}

// AssignedPages returns how many pages are currently assigned to asid.
func (t *Table) AssignedPages(asid uint32) int {
	n := 0
	for _, e := range t.entries {
		if e.Assigned && e.ASID == asid {
			n++
		}
	}
	return n
}

// PvalidateRangeSkipValidated takes guest ownership of [gpa, gpa+n): for
// every page it models the page-state-change request (hypervisor assigns
// the page to the guest) followed by pvalidate. Pages the PSP already
// assigned-and-validated during launch are skipped — the behaviour of a
// guest whose kernel tracks pre-validated ranges (the paper's
// snp-lazy-pvalidate guest patches). Pages owned by a *different* guest
// fail with ErrOwner. One Validations tick is counted per pageSize block
// that did any work (a 2 MiB pvalidate is one instruction).
func (t *Table) PvalidateRangeSkipValidated(gpa uint64, n int, pageSize int, asid uint32) error {
	if pageSize <= 0 {
		pageSize = PageSize
	}
	for off := uint64(0); off < uint64(n); off += uint64(pageSize) {
		base := gpa + off
		did := false
		for sub := uint64(0); sub < uint64(pageSize) && base+sub < gpa+uint64(n); sub += PageSize {
			e := t.at(pfn(base + sub))
			if e.Assigned && e.ASID != asid {
				return fmt.Errorf("%w: pfn %#x", ErrOwner, pfn(base+sub))
			}
			if e.Assigned && e.Validated {
				continue
			}
			t.set(pfn(base+sub), Entry{ASID: asid, Assigned: true, Validated: true})
			did = true
		}
		if did {
			t.Validations++
		}
	}
	return nil
}
