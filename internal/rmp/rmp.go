// Package rmp models the SEV-SNP Reverse Map Table: the system-wide,
// hardware-enforced structure that records which guest owns each physical
// page and whether the guest has validated it (paper §2.2).
//
// The table is consulted on host writes (an assigned page may not be
// written by the hypervisor), on guest private accesses (an unvalidated
// page raises #VC), and by the pvalidate instruction (the only way to set
// the validated bit, and only from inside the guest).
//
// Representation: the table is a sorted, coalesced run-length list of
// spans — maximal [lo, hi) pfn intervals sharing one {asid, assigned,
// validated} state, with all-zero (hypervisor-owned, unvalidated) spans
// left implicit. Guest images are laid out as a handful of contiguous
// regions, so a whole 40 MiB boot costs tens of span splices instead of
// ~10k dense entry writes, while per-page semantics (first-failing-pfn
// errors, partial mutation before an error, Validations tick counts)
// stay bit-identical to a dense per-entry table — the differential tests
// in this package prove that against a retained dense reference.
package rmp

import (
	"errors"
	"fmt"
	"sort"
)

// PageSize is the RMP granularity.
const PageSize = 4096

// Errors reported by RMP checks. ErrVC corresponds to the #VC exception
// delivered to the guest; ErrHostWrite corresponds to the hardware
// blocking a host write to an assigned page.
var (
	ErrVC        = errors.New("rmp: #VC — guest access to unvalidated private page")
	ErrHostWrite = errors.New("rmp: host write to guest-assigned page blocked")
	ErrOwner     = errors.New("rmp: page assigned to a different guest")
	ErrDouble    = errors.New("rmp: pvalidate of already-validated page")
)

// Entry is one RMP record.
type Entry struct {
	ASID      uint32 // owning guest; 0 = hypervisor-owned
	Assigned  bool   // page belongs to a guest
	Validated bool   // guest has executed pvalidate
}

// state is Entry in comparable span form.
type state struct {
	asid      uint32
	assigned  bool
	validated bool
}

func (s state) entry() Entry {
	return Entry{ASID: s.asid, Assigned: s.assigned, Validated: s.validated}
}

// span is a maximal pfn run [lo, hi) in a single state. Zero-state runs
// are not stored.
type span struct {
	lo, hi uint64
	st     state
}

// Table is the reverse map table. One table exists per machine; guests are
// distinguished by ASID.
type Table struct {
	// spans is sorted by lo, non-overlapping, coalesced (no two adjacent
	// spans share a state), and never contains a zero-state span.
	spans []span

	// Validations counts successful pvalidate operations, for cost
	// accounting and the huge-page ablation.
	Validations uint64

	// work is splice/classification scratch, reused across calls so the
	// steady-state boot path does not allocate.
	work []span
}

// New returns an empty table (all pages hypervisor-owned).
func New() *Table {
	return &Table{}
}

func pfn(gpa uint64) uint64 { return gpa / PageSize }

// pageCount is the number of 4 KiB RMP entries a byte range [gpa, gpa+n)
// touches when walked in PageSize steps from gpa (ceil division — the
// partial tail page counts).
func pageCount(n int) uint64 {
	if n <= 0 {
		return 0
	}
	return (uint64(n) + PageSize - 1) / PageSize
}

// find returns the index of the first span with hi > n — the span
// containing pfn n if its lo <= n, otherwise the insertion point.
func (t *Table) find(n uint64) int {
	return sort.Search(len(t.spans), func(k int) bool { return t.spans[k].hi > n })
}

// at returns the state of a pfn (zero value in any gap).
func (t *Table) at(n uint64) state {
	i := t.find(n)
	if i < len(t.spans) && t.spans[i].lo <= n {
		return t.spans[i].st
	}
	return state{}
}

// setRange rewrites every pfn in [lo, hi) to st, splicing the span list:
// overlapped spans are removed or trimmed, and the result is re-coalesced
// with both neighbours. Setting the zero state erases the run.
func (t *Table) setRange(lo, hi uint64, st state) {
	if lo >= hi {
		return
	}
	spans := t.spans
	i := sort.Search(len(spans), func(k int) bool { return spans[k].hi > lo })
	j := sort.Search(len(spans), func(k int) bool { return spans[k].lo >= hi })

	// Replacement for spans[i:j]: left remainder, the new run, right
	// remainder — then coalesce within and across the splice boundary.
	var repl [3]span
	nr := 0
	if i < j && spans[i].lo < lo {
		repl[nr] = span{spans[i].lo, lo, spans[i].st}
		nr++
	}
	if st != (state{}) {
		repl[nr] = span{lo, hi, st}
		nr++
	}
	if i < j && spans[j-1].hi > hi {
		repl[nr] = span{hi, spans[j-1].hi, spans[j-1].st}
		nr++
	}
	// Coalesce inside the replacement (left+new or new+right may match).
	for k := 0; k+1 < nr; {
		if repl[k].hi == repl[k+1].lo && repl[k].st == repl[k+1].st {
			repl[k].hi = repl[k+1].hi
			copy(repl[k+1:], repl[k+2:nr])
			nr--
		} else {
			k++
		}
	}
	// Coalesce with the untouched neighbours.
	if nr > 0 && i > 0 && spans[i-1].hi == repl[0].lo && spans[i-1].st == repl[0].st {
		repl[0].lo = spans[i-1].lo
		i--
	}
	if nr > 0 && j < len(spans) && spans[j].lo == repl[nr-1].hi && spans[j].st == repl[nr-1].st {
		repl[nr-1].hi = spans[j].hi
		j++
	}

	switch {
	case nr == j-i:
		copy(spans[i:j], repl[:nr])
	case nr < j-i:
		copy(spans[i+nr:], spans[j:])
		copy(spans[i:], repl[:nr])
		t.spans = spans[:len(spans)-(j-i)+nr]
	default: // nr > j-i: grow by the difference, shift the tail right
		grow := nr - (j - i)
		for k := 0; k < grow; k++ {
			spans = append(spans, span{})
		}
		copy(spans[j+grow:], spans[j:len(spans)-grow])
		copy(spans[i:], repl[:nr])
		t.spans = spans
	}
}

// walk visits every maximal uniform-state run inside [lo, hi), including
// implicit zero-state gaps, in ascending pfn order. fn returns false to
// stop early.
func (t *Table) walk(lo, hi uint64, fn func(lo, hi uint64, st state) bool) {
	i := t.find(lo)
	cur := lo
	for cur < hi {
		if i >= len(t.spans) || t.spans[i].lo >= hi {
			fn(cur, hi, state{})
			return
		}
		s := t.spans[i]
		if s.lo > cur {
			if !fn(cur, s.lo, state{}) {
				return
			}
			cur = s.lo
		}
		end := min(s.hi, hi)
		if !fn(cur, end, s.st) {
			return
		}
		cur = end
		i++
	}
}

// Lookup returns the entry covering gpa.
func (t *Table) Lookup(gpa uint64) Entry { return t.at(pfn(gpa)).entry() }

// Assign marks the page containing gpa as owned by asid, clearing the
// validated bit (hardware does this whenever ownership or mapping
// changes). Used by SNP_LAUNCH_UPDATE and by KVM when donating pages.
func (t *Table) Assign(gpa uint64, asid uint32) {
	t.setRange(pfn(gpa), pfn(gpa)+1, state{asid: asid, assigned: true})
}

// AssignValidated assigns and validates in one step — the state
// SNP_LAUNCH_UPDATE leaves pre-encrypted launch pages in, so the guest can
// execute from its root of trust without a pvalidate round.
func (t *Table) AssignValidated(gpa uint64, asid uint32) {
	t.setRange(pfn(gpa), pfn(gpa)+1, state{asid: asid, assigned: true, validated: true})
}

// AssignRange assigns every page of [gpa, gpa+n) to asid with the
// validated bit clear — the batched form of Assign, one span splice for
// the whole run.
func (t *Table) AssignRange(gpa uint64, n int, asid uint32) {
	t.setRange(pfn(gpa), pfn(gpa)+pageCount(n), state{asid: asid, assigned: true})
}

// AssignValidatedRange assigns-and-validates [gpa, gpa+n) in one splice —
// the batched form of AssignValidated used by launch-update page flips
// and snapshot restore.
func (t *Table) AssignValidatedRange(gpa uint64, n int, asid uint32) {
	t.setRange(pfn(gpa), pfn(gpa)+pageCount(n), state{asid: asid, assigned: true, validated: true})
}

// Pvalidate sets the validated bit for the page containing gpa. It fails
// if the page is not assigned to asid (the guest cannot validate pages it
// does not own) and if the page is already validated (the double-validate
// check that defends against remap/replay games).
func (t *Table) Pvalidate(gpa uint64, asid uint32) error {
	e := t.at(pfn(gpa))
	if !e.assigned || e.asid != asid {
		return fmt.Errorf("%w: pfn %#x", ErrOwner, pfn(gpa))
	}
	if e.validated {
		return fmt.Errorf("%w: pfn %#x", ErrDouble, pfn(gpa))
	}
	t.setRange(pfn(gpa), pfn(gpa)+1, state{asid: asid, assigned: true, validated: true})
	t.Validations++
	return nil
}

// SpanOptions selects the semantics of PvalidateSpan.
type SpanOptions struct {
	// PageSize is the validation granularity (4 KiB or 2 MiB); zero means
	// 4 KiB. Must be a multiple of the RMP granularity.
	PageSize int

	// SkipValidated models the page-state-change + pvalidate sequence of
	// a guest that tracks pre-validated ranges (the paper's
	// snp-lazy-pvalidate patches): pages the PSP already
	// assigned-and-validated for this guest are skipped, unassigned pages
	// are taken over, and pages owned by a different guest fail.
	SkipValidated bool

	// Strict models hardware-faithful huge-page validation: a PageSize
	// pvalidate instruction may only cover a block that is fully inside
	// the range and uniformly in need of work — any skipped (already
	// validated) page, or a partial tail, forces that block back to
	// per-4KiB instructions. Validations then counts instructions
	// actually issued, not blocks walked, so fragmented layouts
	// legitimately cost more. Strict implies SkipValidated semantics.
	Strict bool
}

// PvalidateSpan validates [gpa, gpa+n) for asid as one range operation
// and returns the number of pvalidate instructions issued (the amount
// Validations advanced). It is the single implementation behind
// PvalidateRange and PvalidateRangeSkipValidated, with per-page dense
// semantics preserved exactly: the error names the first failing pfn,
// every page before it is left mutated as the per-page walk would have
// left it, and tick counts match block for block.
func (t *Table) PvalidateSpan(gpa uint64, n int, asid uint32, opts SpanOptions) (int, error) {
	ps := uint64(opts.PageSize)
	if opts.PageSize <= 0 {
		ps = PageSize
	}
	pages := pageCount(n)
	if pages == 0 {
		return 0, nil
	}
	pfn0 := pfn(gpa)
	full := state{asid: asid, assigned: true, validated: true}
	skip := opts.SkipValidated || opts.Strict

	// Classification pass: find the first failing pfn and collect the
	// "work" intervals (pages the walk would mutate), in k-space where
	// k = pfn - pfn0 and page k belongs to block k*PageSize/ps.
	work := t.work[:0]
	var errK uint64
	var errSt state
	hasErr := false
	t.walk(pfn0, pfn0+pages, func(lo, hi uint64, st state) bool {
		k0 := lo - pfn0
		if skip {
			if st.assigned && st.asid != asid {
				errK, errSt, hasErr = k0, st, true
				return false
			}
			if st.assigned && st.validated { // ours: pre-validated, skipped
				return true
			}
		} else {
			if !st.assigned || st.asid != asid || st.validated {
				errK, errSt, hasErr = k0, st, true
				return false
			}
		}
		work = append(work, span{k0, hi - pfn0, st})
		return true
	})
	t.work = work

	var ops int
	switch {
	case !skip:
		// Uniform mode: every page does work, so ticks are pure block
		// arithmetic — one per PageSize block completed before failure.
		if hasErr {
			ops = int(errK * PageSize / ps)
		} else {
			ops = int((uint64(n) + ps - 1) / ps)
		}
	case opts.Strict:
		ops = strictOps(work, pages, ps, uint64(n), errK, hasErr)
	default:
		// Lazy skip mode: one tick per block that contains any work page
		// and completed before the failure.
		errBlock := uint64(1<<63 - 1)
		if hasErr {
			errBlock = errK * PageSize / ps
		}
		last := int64(-1)
		for _, w := range work {
			b0 := int64(w.lo * PageSize / ps)
			b1 := int64((w.hi - 1) * PageSize / ps)
			if b0 <= last {
				b0 = last + 1
			}
			if hasErr && b1 >= int64(errBlock) {
				b1 = int64(errBlock) - 1
			}
			if b1 >= b0 {
				ops += int(b1 - b0 + 1)
				last = b1
			}
		}
	}

	// Mutation: in skip mode every page before the failure ends
	// assigned-and-validated for asid (work pages are set, skipped pages
	// already were); in uniform mode the checked prefix was all ours and
	// unvalidated, so the same single splice applies.
	if hasErr {
		t.setRange(pfn0, pfn0+errK, full)
		t.Validations += uint64(ops)
		if !skip && errSt.assigned && errSt.asid == asid && errSt.validated {
			return ops, fmt.Errorf("%w: pfn %#x", ErrDouble, pfn0+errK)
		}
		return ops, fmt.Errorf("%w: pfn %#x", ErrOwner, pfn0+errK)
	}
	t.setRange(pfn0, pfn0+pages, full)
	t.Validations += uint64(ops)
	return ops, nil
}

// strictOps counts pvalidate instructions for Strict mode: a block gets
// one PageSize instruction only when all of its ps/PageSize entries are
// work; otherwise each work page is its own 4 KiB instruction. On error
// the failing block falls back to per-page and stops at the failing pfn
// (work is already clipped to [0, errK) by the classification pass).
func strictOps(work []span, pages, ps, n, errK uint64, hasErr bool) int {
	perBlock := ps / PageSize
	errBlock := uint64(1<<63 - 1)
	if hasErr {
		errBlock = errK * PageSize / ps
	}
	ops := 0
	curBlock := int64(-1)
	curWork := uint64(0)
	flush := func() {
		if curBlock < 0 {
			return
		}
		if curWork == perBlock && uint64(curBlock) != errBlock {
			ops++ // one huge-page instruction covers the uniform block
		} else {
			ops += int(curWork) // fragmented or failing: per-4K fallback
		}
	}
	for _, w := range work {
		for k := w.lo; k < w.hi; {
			b := int64(k * PageSize / ps)
			if b != curBlock {
				flush()
				curBlock, curWork = b, 0
			}
			blockEnd := min((uint64(b)+1)*ps/PageSize, w.hi)
			curWork += blockEnd - k
			k = blockEnd
		}
	}
	flush()
	return ops
}

// PvalidateRange validates [gpa, gpa+n) in pageSize steps, modeling
// validation with either 4 KiB or 2 MiB granularity. The RMP itself is
// tracked at 4 KiB granularity; a 2 MiB pvalidate validates 512 entries
// with a single instruction (one Validations tick).
func (t *Table) PvalidateRange(gpa uint64, n int, pageSize int, asid uint32) error {
	_, err := t.PvalidateSpan(gpa, n, asid, SpanOptions{PageSize: pageSize})
	return err
}

// PvalidateRangeSkipValidated takes guest ownership of [gpa, gpa+n): for
// every page it models the page-state-change request (hypervisor assigns
// the page to the guest) followed by pvalidate. Pages the PSP already
// assigned-and-validated during launch are skipped — the behaviour of a
// guest whose kernel tracks pre-validated ranges (the paper's
// snp-lazy-pvalidate guest patches). Pages owned by a *different* guest
// fail with ErrOwner. One Validations tick is counted per pageSize block
// that did any work (a 2 MiB pvalidate is one instruction).
func (t *Table) PvalidateRangeSkipValidated(gpa uint64, n int, pageSize int, asid uint32) error {
	_, err := t.PvalidateSpan(gpa, n, asid, SpanOptions{PageSize: pageSize, SkipValidated: true})
	return err
}

// CheckGuestAccess verifies a guest private-memory access to the page
// containing gpa: the page must be assigned to this guest and validated,
// otherwise the hardware raises #VC.
func (t *Table) CheckGuestAccess(gpa uint64, asid uint32) error {
	e := t.at(pfn(gpa))
	if !e.assigned || e.asid != asid || !e.validated {
		return fmt.Errorf("%w: gpa %#x", ErrVC, gpa)
	}
	return nil
}

// CheckGuestAccessRange verifies a guest access to every page of
// [gpa, gpa+n) in one span walk, reporting the first faulting page
// exactly as the per-page walk would (page-aligned gpa in the error).
func (t *Table) CheckGuestAccessRange(gpa uint64, n int, asid uint32) error {
	pages := pageCount(n)
	if pages == 0 {
		return nil
	}
	pfn0 := pfn(gpa)
	var err error
	t.walk(pfn0, pfn0+pages, func(lo, hi uint64, st state) bool {
		if !st.assigned || st.asid != asid || !st.validated {
			err = fmt.Errorf("%w: gpa %#x", ErrVC, lo*PageSize)
			return false
		}
		return true
	})
	return err
}

// CheckHostWrite verifies a hypervisor write to the page containing gpa:
// assigned pages are write-protected from the host.
func (t *Table) CheckHostWrite(gpa uint64) error {
	e := t.at(pfn(gpa))
	if e.assigned {
		return fmt.Errorf("%w: gpa %#x (asid %d)", ErrHostWrite, gpa, e.asid)
	}
	return nil
}

// CheckHostWriteRange verifies a hypervisor write to every page of
// [gpa, gpa+n) in one span walk, reporting the first protected page.
func (t *Table) CheckHostWriteRange(gpa uint64, n int) error {
	pages := pageCount(n)
	if pages == 0 {
		return nil
	}
	pfn0 := pfn(gpa)
	var err error
	t.walk(pfn0, pfn0+pages, func(lo, hi uint64, st state) bool {
		if st.assigned {
			err = fmt.Errorf("%w: gpa %#x (asid %d)", ErrHostWrite, lo*PageSize, st.asid)
			return false
		}
		return true
	})
	return err
}

// Remap models the hypervisor changing the mapping backing gpa: hardware
// clears the validated bit, so the guest's next access raises #VC
// (paper §2.2). Ownership is retained.
func (t *Table) Remap(gpa uint64) {
	e := t.at(pfn(gpa))
	e.validated = false
	t.setRange(pfn(gpa), pfn(gpa)+1, e)
}

// Reclaim returns the page to hypervisor ownership (guest teardown).
func (t *Table) Reclaim(gpa uint64) {
	t.setRange(pfn(gpa), pfn(gpa)+1, state{})
}

// ReclaimRange returns every page of [gpa, gpa+n) to hypervisor
// ownership in one splice.
func (t *Table) ReclaimRange(gpa uint64, n int) {
	t.setRange(pfn(gpa), pfn(gpa)+pageCount(n), state{})
}

// AssignedPages returns how many pages are currently assigned to asid.
func (t *Table) AssignedPages(asid uint32) int {
	n := uint64(0)
	for _, s := range t.spans {
		if s.st.assigned && s.st.asid == asid {
			n += s.hi - s.lo
		}
	}
	return int(n)
}

// Spans returns how many coalesced runs the table currently holds —
// an observability hook for the batching layer (a healthy boot stays in
// the tens regardless of image size).
func (t *Table) Spans() int { return len(t.spans) }
