package rmp

import (
	"errors"
	"testing"
)

func TestZeroStateIsHypervisorOwned(t *testing.T) {
	tb := New()
	e := tb.Lookup(0x1000)
	if e.Assigned || e.Validated {
		t.Fatal("fresh table should be hypervisor-owned and unvalidated")
	}
	if err := tb.CheckHostWrite(0x1000); err != nil {
		t.Fatalf("host write to unassigned page blocked: %v", err)
	}
}

func TestAssignBlocksHostWrite(t *testing.T) {
	tb := New()
	tb.Assign(0x2000, 7)
	if err := tb.CheckHostWrite(0x2000); !errors.Is(err, ErrHostWrite) {
		t.Fatalf("host write to assigned page: err = %v, want ErrHostWrite", err)
	}
	// Neighbouring page unaffected.
	if err := tb.CheckHostWrite(0x3000); err != nil {
		t.Fatalf("neighbour page blocked: %v", err)
	}
}

func TestPvalidateFlow(t *testing.T) {
	tb := New()
	tb.Assign(0x4000, 3)
	if err := tb.CheckGuestAccess(0x4000, 3); !errors.Is(err, ErrVC) {
		t.Fatalf("pre-pvalidate access: err = %v, want ErrVC", err)
	}
	if err := tb.Pvalidate(0x4000, 3); err != nil {
		t.Fatal(err)
	}
	if err := tb.CheckGuestAccess(0x4000, 3); err != nil {
		t.Fatalf("post-pvalidate access failed: %v", err)
	}
	if tb.Validations != 1 {
		t.Fatalf("Validations = %d, want 1", tb.Validations)
	}
}

func TestPvalidateWrongOwner(t *testing.T) {
	tb := New()
	tb.Assign(0x4000, 3)
	if err := tb.Pvalidate(0x4000, 4); !errors.Is(err, ErrOwner) {
		t.Fatalf("cross-guest pvalidate: err = %v, want ErrOwner", err)
	}
	if err := tb.Pvalidate(0x8000, 3); !errors.Is(err, ErrOwner) {
		t.Fatalf("pvalidate of unassigned page: err = %v, want ErrOwner", err)
	}
}

func TestPvalidateDoubleRejected(t *testing.T) {
	tb := New()
	tb.Assign(0x4000, 3)
	if err := tb.Pvalidate(0x4000, 3); err != nil {
		t.Fatal(err)
	}
	if err := tb.Pvalidate(0x4000, 3); !errors.Is(err, ErrDouble) {
		t.Fatalf("double pvalidate: err = %v, want ErrDouble", err)
	}
}

func TestAssignValidatedSkipsPvalidate(t *testing.T) {
	tb := New()
	tb.AssignValidated(0x5000, 9)
	if err := tb.CheckGuestAccess(0x5000, 9); err != nil {
		t.Fatalf("launch-updated page not accessible: %v", err)
	}
}

func TestRemapClearsValidated(t *testing.T) {
	tb := New()
	tb.AssignValidated(0x6000, 2)
	tb.Remap(0x6000)
	if err := tb.CheckGuestAccess(0x6000, 2); !errors.Is(err, ErrVC) {
		t.Fatalf("access after remap: err = %v, want ErrVC (paper §2.2)", err)
	}
	// Ownership retained: host still cannot write.
	if err := tb.CheckHostWrite(0x6000); !errors.Is(err, ErrHostWrite) {
		t.Fatalf("host write after remap: err = %v, want ErrHostWrite", err)
	}
}

func TestCrossGuestAccessIsVC(t *testing.T) {
	tb := New()
	tb.AssignValidated(0x7000, 1)
	if err := tb.CheckGuestAccess(0x7000, 2); !errors.Is(err, ErrVC) {
		t.Fatalf("cross-guest access: err = %v, want ErrVC", err)
	}
}

func TestPvalidateRange4K(t *testing.T) {
	tb := New()
	const base, n = 0x10000, 16 * PageSize
	for off := 0; off < n; off += PageSize {
		tb.Assign(base+uint64(off), 5)
	}
	if err := tb.PvalidateRange(base, n, PageSize, 5); err != nil {
		t.Fatal(err)
	}
	if tb.Validations != 16 {
		t.Fatalf("Validations = %d, want 16 (one per 4 KiB page)", tb.Validations)
	}
	for off := 0; off < n; off += PageSize {
		if err := tb.CheckGuestAccess(base+uint64(off), 5); err != nil {
			t.Fatalf("page at +%#x not validated: %v", off, err)
		}
	}
}

func TestPvalidateRangeHugePages(t *testing.T) {
	tb := New()
	const base = 0x200000
	n := 2 << 20 // one 2 MiB huge page covers 512 RMP entries
	for off := 0; off < n; off += PageSize {
		tb.Assign(base+uint64(off), 5)
	}
	if err := tb.PvalidateRange(base, n, 2<<20, 5); err != nil {
		t.Fatal(err)
	}
	if tb.Validations != 1 {
		t.Fatalf("Validations = %d, want 1 (single 2 MiB pvalidate)", tb.Validations)
	}
	// All 512 sub-pages must still be validated.
	for off := 0; off < n; off += PageSize {
		if err := tb.CheckGuestAccess(base+uint64(off), 5); err != nil {
			t.Fatalf("sub-page at +%#x not validated: %v", off, err)
		}
	}
}

func TestPvalidateRangePartialTail(t *testing.T) {
	tb := New()
	const base = 0x0
	n := PageSize + 100 // 1.02 pages
	for off := 0; off < 2*PageSize; off += PageSize {
		tb.Assign(base+uint64(off), 5)
	}
	if err := tb.PvalidateRange(base, n, PageSize, 5); err != nil {
		t.Fatal(err)
	}
	if err := tb.CheckGuestAccess(base+PageSize, 5); err != nil {
		t.Fatalf("tail page not validated: %v", err)
	}
}

func TestReclaim(t *testing.T) {
	tb := New()
	tb.AssignValidated(0x9000, 4)
	tb.Reclaim(0x9000)
	if err := tb.CheckHostWrite(0x9000); err != nil {
		t.Fatalf("reclaimed page still blocked: %v", err)
	}
}

func TestAssignedPages(t *testing.T) {
	tb := New()
	for i := 0; i < 5; i++ {
		tb.Assign(uint64(i)*PageSize, 1)
	}
	tb.Assign(0x100000, 2)
	if got := tb.AssignedPages(1); got != 5 {
		t.Fatalf("AssignedPages(1) = %d, want 5", got)
	}
	if got := tb.AssignedPages(2); got != 1 {
		t.Fatalf("AssignedPages(2) = %d, want 1", got)
	}
}
