package rmp

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// checkEqual compares the span table against the dense reference entry by
// entry across the whole universe, plus the Validations counter.
func checkEqual(t *testing.T, step string, st *Table, dt *denseTable, pfns uint64) {
	t.Helper()
	for n := uint64(0); n < pfns; n++ {
		if got, want := st.at(n).entry(), dt.at(n); got != want {
			t.Fatalf("%s: pfn %#x: span %+v, dense %+v", step, n, got, want)
		}
	}
	if st.Validations != dt.Validations {
		t.Fatalf("%s: Validations: span %d, dense %d", step, st.Validations, dt.Validations)
	}
}

// checkErrEqual requires the same error value down to the formatted
// first-failing-pfn message.
func checkErrEqual(t *testing.T, step string, se, de error) {
	t.Helper()
	if (se == nil) != (de == nil) {
		t.Fatalf("%s: span err %v, dense err %v", step, se, de)
	}
	if se != nil && se.Error() != de.Error() {
		t.Fatalf("%s: span err %q, dense err %q", step, se, de)
	}
}

// TestSpanDenseDifferential drives both implementations through long
// randomized operation sequences and requires bit-identical state,
// Validations counts, tick deltas, and errors after every single op.
func TestSpanDenseDifferential(t *testing.T) {
	const pfns = 1536 // 6 MiB universe: big enough for 2 MiB blocks to straddle spans
	pageSizes := []int{PageSize, 4 * PageSize, 2 << 20}
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			st, dt := New(), &denseTable{}
			for op := 0; op < 400; op++ {
				gpa := uint64(rng.Intn(pfns)) * PageSize
				n := rng.Intn(64*PageSize) + 1
				if rng.Intn(4) == 0 {
					n = rng.Intn(3 << 20) // long ranges cross many spans
				}
				if gpa+uint64(n) > pfns*PageSize {
					n = int(pfns*PageSize - gpa)
				}
				asid := uint32(rng.Intn(3) + 1)
				ps := pageSizes[rng.Intn(len(pageSizes))]
				step := fmt.Sprintf("op %d", op)
				switch rng.Intn(12) {
				case 0:
					st.Assign(gpa, asid)
					dt.Assign(gpa, asid)
				case 1:
					st.AssignValidated(gpa, asid)
					dt.AssignValidated(gpa, asid)
				case 2:
					st.AssignRange(gpa, n, asid)
					dt.AssignRange(gpa, n, asid)
					step += " AssignRange"
				case 3:
					st.AssignValidatedRange(gpa, n, asid)
					dt.AssignValidatedRange(gpa, n, asid)
					step += " AssignValidatedRange"
				case 4:
					checkErrEqual(t, step+" Pvalidate", st.Pvalidate(gpa, asid), dt.Pvalidate(gpa, asid))
				case 5, 6:
					opts := SpanOptions{PageSize: ps, SkipValidated: rng.Intn(2) == 0, Strict: rng.Intn(3) == 0}
					step += fmt.Sprintf(" PvalidateSpan(gpa=%#x n=%#x ps=%#x asid=%d %+v)", gpa, n, ps, asid, opts)
					so, se := st.PvalidateSpan(gpa, n, asid, opts)
					do, de := dt.PvalidateSpan(gpa, n, asid, opts)
					checkErrEqual(t, step, se, de)
					if so != do {
						t.Fatalf("%s: ops: span %d, dense %d", step, so, do)
					}
				case 7:
					checkErrEqual(t, step+" CheckGuestAccessRange",
						st.CheckGuestAccessRange(gpa, n, asid), dt.CheckGuestAccessRange(gpa, n, asid))
				case 8:
					checkErrEqual(t, step+" CheckHostWriteRange",
						st.CheckHostWriteRange(gpa, n), dt.CheckHostWriteRange(gpa, n))
				case 9:
					st.Remap(gpa)
					dt.Remap(gpa)
				case 10:
					st.ReclaimRange(gpa, n)
					dt.ReclaimRange(gpa, n)
					step += " ReclaimRange"
				case 11:
					if got, want := st.AssignedPages(asid), dt.AssignedPages(asid); got != want {
						t.Fatalf("%s: AssignedPages(%d): span %d, dense %d", step, asid, got, want)
					}
				}
				checkEqual(t, step, st, dt, pfns)
			}
		})
	}
}

// TestPvalidateSpanCrossSpanBoundary validates a range stitched from
// three differently-sourced spans (launch-validated, assigned-only, and
// untouched) — the lazy walk must skip the first, validate the rest, and
// coalesce everything into a single run.
func TestPvalidateSpanCrossSpanBoundary(t *testing.T) {
	tb := New()
	tb.AssignValidatedRange(0x10000, 4*PageSize, 5) // PSP pre-validated
	tb.AssignRange(0x14000, 4*PageSize, 5)          // assigned, not validated
	// 0x18000.. untouched (hypervisor-owned)
	ops, err := tb.PvalidateSpan(0x10000, 12*PageSize, 5, SpanOptions{PageSize: PageSize, SkipValidated: true})
	if err != nil {
		t.Fatal(err)
	}
	if ops != 8 {
		t.Fatalf("ops = %d, want 8 (4 pre-validated pages skipped)", ops)
	}
	if err := tb.CheckGuestAccessRange(0x10000, 12*PageSize, 5); err != nil {
		t.Fatal(err)
	}
	if tb.Spans() != 1 {
		t.Fatalf("Spans() = %d, want 1 (fully coalesced)", tb.Spans())
	}
}

// TestPvalidateSpanAlreadyValidated pins both modes against a fully
// validated range: lazy mode is a free no-op, uniform mode fails with
// ErrDouble naming the first pfn.
func TestPvalidateSpanAlreadyValidated(t *testing.T) {
	tb := New()
	tb.AssignValidatedRange(0x40000, 8*PageSize, 3)
	ops, err := tb.PvalidateSpan(0x40000, 8*PageSize, 3, SpanOptions{SkipValidated: true})
	if err != nil || ops != 0 {
		t.Fatalf("lazy revalidate: ops=%d err=%v, want 0, nil", ops, err)
	}
	_, err = tb.PvalidateSpan(0x40000, 8*PageSize, 3, SpanOptions{})
	if !errors.Is(err, ErrDouble) {
		t.Fatalf("uniform revalidate: err = %v, want ErrDouble", err)
	}
	if want := fmt.Sprintf("pfn %#x", uint64(0x40)); err == nil || !contains(err.Error(), want) {
		t.Fatalf("error %q does not name first pfn (%s)", err, want)
	}
}

// TestPvalidateSpanWrongASIDMidRange plants a foreign-owned page in the
// middle of the range: the walk must validate everything before it, tick
// only completed blocks, leave everything after untouched, and name the
// foreign pfn.
func TestPvalidateSpanWrongASIDMidRange(t *testing.T) {
	tb := New()
	tb.Assign(0x5000, 9) // pfn 5 belongs to guest 9
	ops, err := tb.PvalidateSpan(0, 16*PageSize, 2, SpanOptions{SkipValidated: true})
	if !errors.Is(err, ErrOwner) {
		t.Fatalf("err = %v, want ErrOwner", err)
	}
	if !contains(err.Error(), "pfn 0x5") {
		t.Fatalf("error %q does not name the foreign pfn", err)
	}
	if ops != 5 {
		t.Fatalf("ops = %d, want 5 (pages 0-4 validated before the fault)", ops)
	}
	for n := uint64(0); n < 5; n++ {
		if err := tb.CheckGuestAccess(n*PageSize, 2); err != nil {
			t.Fatalf("prefix page %d not validated: %v", n, err)
		}
	}
	if e := tb.Lookup(0x5000); e.ASID != 9 || e.Validated {
		t.Fatalf("foreign page mutated: %+v", e)
	}
	if e := tb.Lookup(0x6000); e.Assigned {
		t.Fatalf("page after the fault mutated: %+v", e)
	}
}

// TestStrictHugePageOps pins the Strict accounting: a uniform fully-
// covered 2 MiB block is one instruction, a block fragmented by a single
// pre-validated page falls back to 511 per-page instructions, and a
// partial tail is per-page too.
func TestStrictHugePageOps(t *testing.T) {
	const huge = 2 << 20
	tb := New()
	ops, err := tb.PvalidateSpan(0, huge, 1, SpanOptions{PageSize: huge, Strict: true})
	if err != nil || ops != 1 {
		t.Fatalf("uniform block: ops=%d err=%v, want 1, nil", ops, err)
	}

	tb = New()
	tb.AssignValidated(huge/2, 1) // one pre-validated page mid-block
	ops, err = tb.PvalidateSpan(0, huge, 1, SpanOptions{PageSize: huge, Strict: true})
	if err != nil || ops != 511 {
		t.Fatalf("fragmented block: ops=%d err=%v, want 511, nil", ops, err)
	}

	tb = New()
	ops, err = tb.PvalidateSpan(0, huge+3*PageSize, 1, SpanOptions{PageSize: huge, Strict: true})
	if err != nil || ops != 1+3 {
		t.Fatalf("huge + partial tail: ops=%d err=%v, want 4, nil", ops, err)
	}

	// Lazy (non-strict) mode charges the same layout as 2 blocks.
	tb = New()
	ops, err = tb.PvalidateSpan(0, huge+3*PageSize, 1, SpanOptions{PageSize: huge, SkipValidated: true})
	if err != nil || ops != 2 {
		t.Fatalf("lazy huge + tail: ops=%d err=%v, want 2, nil", ops, err)
	}
}

// TestSpanCountStaysSmall: validating a 40 MiB image region by region
// must leave tens of spans at most, not thousands of entries.
func TestSpanCountStaysSmall(t *testing.T) {
	tb := New()
	asid := uint32(1)
	gpa := uint64(0)
	for i := 0; i < 10; i++ { // ten 4 MiB regions, launch-update style
		tb.AssignValidatedRange(gpa, 4<<20, asid)
		gpa += 4 << 20
	}
	if _, err := tb.PvalidateSpan(0, int(gpa), asid, SpanOptions{PageSize: 2 << 20, SkipValidated: true}); err != nil {
		t.Fatal(err)
	}
	if tb.Spans() != 1 {
		t.Fatalf("Spans() = %d, want 1 after contiguous launch", tb.Spans())
	}
	if got := tb.AssignedPages(asid); got != int(gpa/PageSize) {
		t.Fatalf("AssignedPages = %d, want %d", got, gpa/PageSize)
	}
}

// TestRangeOpsZeroLength: zero and negative lengths are no-ops.
func TestRangeOpsZeroLength(t *testing.T) {
	tb := New()
	tb.AssignRange(0x1000, 0, 1)
	tb.AssignValidatedRange(0x1000, -5, 1)
	tb.ReclaimRange(0x1000, 0)
	if ops, err := tb.PvalidateSpan(0x1000, 0, 1, SpanOptions{}); ops != 0 || err != nil {
		t.Fatalf("zero-length pvalidate: ops=%d err=%v", ops, err)
	}
	if err := tb.CheckGuestAccessRange(0x1000, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := tb.CheckHostWriteRange(0x1000, 0); err != nil {
		t.Fatal(err)
	}
	if tb.Spans() != 0 {
		t.Fatalf("Spans() = %d, want 0", tb.Spans())
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
