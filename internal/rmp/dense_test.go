package rmp

// denseTable is the original per-entry RMP implementation, retained as
// the executable specification the span table is differentially tested
// against: identical entries, identical Validations counts, identical
// errors (type and first-failing-pfn message), identical partial
// mutation before an error, for every operation sequence thrown at both.

import "fmt"

type denseTable struct {
	entries     []Entry
	Validations uint64
}

func (t *denseTable) at(n uint64) Entry {
	if n >= uint64(len(t.entries)) {
		return Entry{}
	}
	return t.entries[n]
}

func (t *denseTable) set(n uint64, e Entry) {
	if n >= uint64(len(t.entries)) {
		grown := make([]Entry, (n+1)*2)
		copy(grown, t.entries)
		t.entries = grown
	}
	t.entries[n] = e
}

func (t *denseTable) Lookup(gpa uint64) Entry { return t.at(pfn(gpa)) }

func (t *denseTable) Assign(gpa uint64, asid uint32) {
	t.set(pfn(gpa), Entry{ASID: asid, Assigned: true})
}

func (t *denseTable) AssignValidated(gpa uint64, asid uint32) {
	t.set(pfn(gpa), Entry{ASID: asid, Assigned: true, Validated: true})
}

func (t *denseTable) AssignRange(gpa uint64, n int, asid uint32) {
	for off := uint64(0); off < uint64(n); off += PageSize {
		t.Assign(gpa+off, asid)
	}
}

func (t *denseTable) AssignValidatedRange(gpa uint64, n int, asid uint32) {
	for off := uint64(0); off < uint64(n); off += PageSize {
		t.AssignValidated(gpa+off, asid)
	}
}

func (t *denseTable) Pvalidate(gpa uint64, asid uint32) error {
	e := t.at(pfn(gpa))
	if !e.Assigned || e.ASID != asid {
		return fmt.Errorf("%w: pfn %#x", ErrOwner, pfn(gpa))
	}
	if e.Validated {
		return fmt.Errorf("%w: pfn %#x", ErrDouble, pfn(gpa))
	}
	e.Validated = true
	t.set(pfn(gpa), e)
	t.Validations++
	return nil
}

// PvalidateSpan is the dense walk matching Table.PvalidateSpan option for
// option, written as the naive per-page loops the span table replaces.
func (t *denseTable) PvalidateSpan(gpa uint64, n int, asid uint32, opts SpanOptions) (int, error) {
	ps := opts.PageSize
	if ps <= 0 {
		ps = PageSize
	}
	before := t.Validations
	var err error
	switch {
	case opts.Strict:
		err = t.pvalidateStrict(gpa, n, ps, asid)
	case opts.SkipValidated:
		err = t.pvalidateSkip(gpa, n, ps, asid)
	default:
		err = t.pvalidateUniform(gpa, n, ps, asid)
	}
	return int(t.Validations - before), err
}

func (t *denseTable) pvalidateUniform(gpa uint64, n, ps int, asid uint32) error {
	for off := uint64(0); off < uint64(n); off += uint64(ps) {
		base := gpa + off
		for sub := uint64(0); sub < uint64(ps) && base+sub < gpa+uint64(n); sub += PageSize {
			e := t.at(pfn(base + sub))
			if !e.Assigned || e.ASID != asid {
				return fmt.Errorf("%w: pfn %#x", ErrOwner, pfn(base+sub))
			}
			if e.Validated {
				return fmt.Errorf("%w: pfn %#x", ErrDouble, pfn(base+sub))
			}
			e.Validated = true
			t.set(pfn(base+sub), e)
		}
		t.Validations++
	}
	return nil
}

func (t *denseTable) pvalidateSkip(gpa uint64, n, ps int, asid uint32) error {
	for off := uint64(0); off < uint64(n); off += uint64(ps) {
		base := gpa + off
		did := false
		for sub := uint64(0); sub < uint64(ps) && base+sub < gpa+uint64(n); sub += PageSize {
			e := t.at(pfn(base + sub))
			if e.Assigned && e.ASID != asid {
				return fmt.Errorf("%w: pfn %#x", ErrOwner, pfn(base+sub))
			}
			if e.Assigned && e.Validated {
				continue
			}
			t.set(pfn(base+sub), Entry{ASID: asid, Assigned: true, Validated: true})
			did = true
		}
		if did {
			t.Validations++
		}
	}
	return nil
}

// pvalidateStrict is the hardware-faithful huge-page walk: a PageSize
// instruction may only cover a block whose every RMP entry is touched by
// the range and needs work; otherwise the guest falls back to per-4KiB
// pvalidates for exactly the work pages. Validations counts instructions.
func (t *denseTable) pvalidateStrict(gpa uint64, n, ps int, asid uint32) error {
	for off := uint64(0); off < uint64(n); off += uint64(ps) {
		base := gpa + off
		// Classify the block: uniform-work blocks take one instruction.
		uniform := true
		pages := 0
		for sub := uint64(0); sub < uint64(ps) && base+sub < gpa+uint64(n); sub += PageSize {
			e := t.at(pfn(base + sub))
			if e.Assigned && e.ASID != asid {
				uniform = false
				break
			}
			if e.Assigned && e.Validated {
				uniform = false
			}
			pages++
		}
		if uniform && pages == ps/PageSize {
			for sub := uint64(0); sub < uint64(ps) && base+sub < gpa+uint64(n); sub += PageSize {
				t.set(pfn(base+sub), Entry{ASID: asid, Assigned: true, Validated: true})
			}
			t.Validations++
			continue
		}
		// Fragmented, partial, or failing: per-4KiB instructions.
		for sub := uint64(0); sub < uint64(ps) && base+sub < gpa+uint64(n); sub += PageSize {
			e := t.at(pfn(base + sub))
			if e.Assigned && e.ASID != asid {
				return fmt.Errorf("%w: pfn %#x", ErrOwner, pfn(base+sub))
			}
			if e.Assigned && e.Validated {
				continue
			}
			t.set(pfn(base+sub), Entry{ASID: asid, Assigned: true, Validated: true})
			t.Validations++
		}
	}
	return nil
}

func (t *denseTable) CheckGuestAccessRange(gpa uint64, n int, asid uint32) error {
	for off := uint64(0); off < uint64(n); off += PageSize {
		e := t.at(pfn(gpa + off))
		if !e.Assigned || e.ASID != asid || !e.Validated {
			return fmt.Errorf("%w: gpa %#x", ErrVC, pfn(gpa+off)*PageSize)
		}
	}
	return nil
}

func (t *denseTable) CheckHostWriteRange(gpa uint64, n int) error {
	for off := uint64(0); off < uint64(n); off += PageSize {
		e := t.at(pfn(gpa + off))
		if e.Assigned {
			return fmt.Errorf("%w: gpa %#x (asid %d)", ErrHostWrite, pfn(gpa+off)*PageSize, e.ASID)
		}
	}
	return nil
}

func (t *denseTable) Remap(gpa uint64) {
	e := t.at(pfn(gpa))
	e.Validated = false
	t.set(pfn(gpa), e)
}

func (t *denseTable) Reclaim(gpa uint64) { t.set(pfn(gpa), Entry{}) }

func (t *denseTable) ReclaimRange(gpa uint64, n int) {
	for off := uint64(0); off < uint64(n); off += PageSize {
		t.Reclaim(gpa + off)
	}
}

func (t *denseTable) AssignedPages(asid uint32) int {
	n := 0
	for _, e := range t.entries {
		if e.Assigned && e.ASID == asid {
			n++
		}
	}
	return n
}
