package snapshot

import (
	"bytes"
	"errors"
	"testing"

	"github.com/severifast/severifast/internal/guestmem"
)

// wireTestImage is a small hand-built image exercising every wire-format
// feature: a shared page, a private page, and a non-zero guest size.
func wireTestImage() *Image {
	shared := make([]byte, guestmem.PageSize)
	private := make([]byte, guestmem.PageSize)
	for i := range shared {
		shared[i] = byte(i)
		private[i] = byte(i * 7)
	}
	return &Image{
		Size:    16 * guestmem.PageSize,
		Pages:   map[uint64][]byte{0: shared, 3: private},
		Private: map[uint64]bool{3: true},
		SEV:     true,
	}
}

// FuzzDecode throws arbitrary bytes at both decoders. Invariants: neither
// may panic; every rejection is ErrCorrupt; and any accepted input is
// canonical — re-encoding the decoded image reproduces the input bytes
// exactly (the format has sorted fixed-size records and no slack, so
// decode∘encode must be the identity on valid inputs).
func FuzzDecode(f *testing.F) {
	valid, err := Encode(wireTestImage())
	if err != nil {
		f.Fatal(err)
	}
	sealed, err := EncodeSealed(wireTestImage())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(sealed)
	f.Add(valid[:wireHeaderLen])
	f.Add(valid[:len(valid)-1])
	f.Add(append(append([]byte(nil), valid...), 0))
	truncSize := append([]byte(nil), valid...)
	truncSize[9] = 0xff // corrupt the size field
	f.Add(truncSize)
	bigPages := append([]byte(nil), valid...)
	bigPages[17] = 0xff // inflate the page count
	f.Add(bigPages)
	f.Add([]byte("SVFSNAP1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		img, err := Decode(b)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode rejection is not ErrCorrupt: %v", err)
			}
		} else {
			re, err := Encode(img)
			if err != nil {
				t.Fatalf("re-encoding a decoded image: %v", err)
			}
			if !bytes.Equal(re, b) {
				t.Fatalf("decode/encode round trip not canonical: %d in, %d out", len(b), len(re))
			}
		}
		if _, err := DecodeSealed(b); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("DecodeSealed rejection is not ErrCorrupt: %v", err)
		}
	})
}

// TestSealRoundTrip: the sealed container round-trips, and every byte-level
// mutation — bit flips anywhere, truncation, extension — is rejected with
// ErrCorrupt.
func TestSealRoundTrip(t *testing.T) {
	img := wireTestImage()
	sealed, err := EncodeSealed(img)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSealed(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != img.Size || len(got.Pages) != len(img.Pages) || !got.Private[3] || !got.SEV {
		t.Fatalf("round-tripped image differs: %+v", got)
	}

	// Every single-bit flip must be caught — including flips inside page
	// data, which the unsealed Decode cannot see. Stride through to keep
	// the test fast while still covering header, both pages, and trailer.
	for off := 0; off < len(sealed); off += 311 {
		mut := append([]byte(nil), sealed...)
		mut[off] ^= 0x40
		if _, err := DecodeSealed(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d accepted (err=%v)", off, err)
		}
	}
	for _, cut := range []int{0, 1, 31, 32, len(sealed) / 2, len(sealed) - 1} {
		if _, err := DecodeSealed(sealed[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d accepted (err=%v)", cut, err)
		}
	}
	if _, err := DecodeSealed(append(append([]byte(nil), sealed...), 0xaa)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("extension accepted (err=%v)", err)
	}
	// Duplicate delivery is harmless: decoding the same sealed bytes twice
	// yields equal images.
	again, err := DecodeSealed(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Pages[3], got.Pages[3]) {
		t.Fatal("duplicate decode diverged")
	}
}

// TestDecodeOversizedFields: length-field hardening. Oversized guest
// sizes and page counts must be rejected before any allocation or record
// walk.
func TestDecodeOversizedFields(t *testing.T) {
	valid, err := Encode(wireTestImage())
	if err != nil {
		t.Fatal(err)
	}
	// Guest size beyond the cap (little-endian: set a high byte).
	huge := append([]byte(nil), valid...)
	huge[9+6] = 0xff
	if _, err := Decode(huge); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized guest size accepted (err=%v)", err)
	}
	// Page count beyond capacity.
	many := append([]byte(nil), valid...)
	many[17] = 0xff
	many[18] = 0xff
	if _, err := Decode(many); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized page count accepted (err=%v)", err)
	}
}
