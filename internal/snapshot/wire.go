package snapshot

// A snapshot's on-disk form, so warm pools survive orchestrator restarts
// and snapshots can be shipped between hosts. The format is deliberately
// rigid — fixed magic, sorted whole-page records, no varints — and Decode
// validates every field against the declared guest size before touching
// page data, so truncated or corrupted bytes fail with ErrCorrupt instead
// of restoring a torn guest.
//
// Layout (integers little-endian):
//
//	magic "SVFSNAP1" | flags u8 (bit0: SEV) | size u64 | npages u32
//	npages × ( pn u64 | private u8 | data[PageSize] )
//
// Records are sorted by page number, so Encode is deterministic: equal
// images produce equal bytes.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"github.com/severifast/severifast/internal/guestmem"
)

// ErrCorrupt reports snapshot bytes that fail validation.
var ErrCorrupt = errors.New("snapshot: image bytes corrupt")

var wireMagic = [8]byte{'S', 'V', 'F', 'S', 'N', 'A', 'P', '1'}

const wireHeaderLen = 8 + 1 + 8 + 4
const wireRecordLen = 8 + 1 + guestmem.PageSize

// maxWireGuestSize caps the declared guest size a decoder will accept
// (1 TiB). The size field is attacker-controlled input; without a cap an
// oversized value silently legitimizes absurd page counts and, on 32-bit
// hosts, overflows the expected-length arithmetic. No simulated guest
// approaches it.
const maxWireGuestSize = 1 << 40

// Encode serializes an image. Captured pages are always whole pages, so
// every record is fixed-size.
func Encode(img *Image) ([]byte, error) {
	pns := make([]uint64, 0, len(img.Pages))
	for pn := range img.Pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })

	out := make([]byte, 0, wireHeaderLen+len(pns)*wireRecordLen)
	out = append(out, wireMagic[:]...)
	var flags byte
	if img.SEV {
		flags |= 1
	}
	out = append(out, flags)
	var n [8]byte
	le := binary.LittleEndian
	le.PutUint64(n[:], img.Size)
	out = append(out, n[:]...)
	le.PutUint32(n[:4], uint32(len(pns)))
	out = append(out, n[:4]...)
	for _, pn := range pns {
		data := img.Pages[pn]
		if len(data) != guestmem.PageSize {
			return nil, fmt.Errorf("snapshot: page %d holds %d bytes, want %d", pn, len(data), guestmem.PageSize)
		}
		le.PutUint64(n[:], pn)
		out = append(out, n[:]...)
		if img.Private[pn] {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		out = append(out, data...)
	}
	return out, nil
}

// Decode parses Encode's output. Every structural property is checked —
// magic, flags, page count against both the declared guest size and the
// actual byte count, page numbers in range and strictly increasing — so a
// decoded image is safe to hand to Restore.
func Decode(b []byte) (*Image, error) {
	if len(b) < wireHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, want at least the %d-byte header", ErrCorrupt, len(b), wireHeaderLen)
	}
	if [8]byte(b[:8]) != wireMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:8])
	}
	flags := b[8]
	if flags&^byte(1) != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrCorrupt, flags)
	}
	le := binary.LittleEndian
	size := le.Uint64(b[9:])
	if size == 0 || size%guestmem.PageSize != 0 {
		return nil, fmt.Errorf("%w: guest size %d is not a positive page multiple", ErrCorrupt, size)
	}
	if size > maxWireGuestSize {
		return nil, fmt.Errorf("%w: guest size %d exceeds the %d-byte cap", ErrCorrupt, size, uint64(maxWireGuestSize))
	}
	npages := uint64(le.Uint32(b[17:]))
	if npages > size/guestmem.PageSize {
		return nil, fmt.Errorf("%w: %d pages exceeds guest capacity %d", ErrCorrupt, npages, size/guestmem.PageSize)
	}
	// Expected-length arithmetic stays in uint64: npages is bounded by the
	// size cap above (≤ 2^28), so the product cannot overflow, and a
	// truncated or padded buffer fails here before any record is touched.
	if want := uint64(wireHeaderLen) + npages*uint64(wireRecordLen); uint64(len(b)) != want {
		return nil, fmt.Errorf("%w: %d bytes for %d pages, want %d", ErrCorrupt, len(b), npages, want)
	}

	img := &Image{
		Size:    size,
		Pages:   make(map[uint64][]byte, int(npages)),
		Private: make(map[uint64]bool, int(npages)),
		SEV:     flags&1 != 0,
	}
	prev := int64(-1)
	for i := uint64(0); i < npages; i++ {
		rec := b[uint64(wireHeaderLen)+i*uint64(wireRecordLen):]
		pn := le.Uint64(rec)
		if pn >= size/guestmem.PageSize {
			return nil, fmt.Errorf("%w: page %d outside guest of %d pages", ErrCorrupt, pn, size/guestmem.PageSize)
		}
		if int64(pn) <= prev {
			return nil, fmt.Errorf("%w: page records not strictly increasing at %d", ErrCorrupt, pn)
		}
		prev = int64(pn)
		switch rec[8] {
		case 0:
		case 1:
			img.Private[pn] = true
		default:
			return nil, fmt.Errorf("%w: page %d privacy byte %#x", ErrCorrupt, pn, rec[8])
		}
		if img.Private[pn] && !img.SEV {
			return nil, fmt.Errorf("%w: private page %d in a non-SEV snapshot", ErrCorrupt, pn)
		}
		img.Pages[pn] = append([]byte(nil), rec[9:9+guestmem.PageSize]...)
	}
	return img, nil
}
