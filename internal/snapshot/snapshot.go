// Package snapshot implements microVM snapshot/restore and the paper's §7
// warm-start analysis. The paper leaves warm start for SEV guests as
// future work but spells out the obstacles; this package builds the
// substrate and demonstrates each obstacle as a checkable behaviour:
//
//   - Non-confidential guests snapshot and restore cheaply, and identical
//     snapshots deduplicate almost perfectly (the REAP/Catalyzer family
//     of systems the paper cites).
//   - An SEV guest's snapshot, taken by the host, contains ciphertext.
//     Restoring it into a *new* launch context (fresh key) yields garbage
//     the guest cannot run: cold boot cannot be skipped by the host.
//   - Restoring under a *shared* key (the paper's §6.2 near-term idea for
//     the PSP bottleneck) works and is fast — but the launch policy must
//     set NoKeySharing=false, which the guest owner sees in the
//     attestation report: the weakened trust model is visible, exactly as
//     the paper warns.
//   - Ciphertext pages of guests with different keys (or the same content
//     at different addresses) never deduplicate, which is why keep-alive
//     pools of SEV guests pay full memory (§7.1).
package snapshot

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"time"

	"github.com/severifast/severifast/internal/guestmem"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sim"
)

// Errors.
var (
	ErrEncrypted = errors.New("snapshot: restoring an SEV snapshot into a different key space yields ciphertext")
	ErrSize      = errors.New("snapshot: guest size mismatch")
)

// Image is a host-taken snapshot of guest memory: what the hypervisor can
// see. Private pages are captured as ciphertext (the host cannot do
// better), shared pages as plain text.
type Image struct {
	Size uint64
	// Pages maps page number -> captured bytes. Only resident pages are
	// captured; nil entries never appear.
	Pages map[uint64][]byte
	// Private marks pages that were encrypted at capture time.
	Private map[uint64]bool
	// SEV records whether the source guest was encrypted.
	SEV bool
}

// Capture snapshots a machine's memory from the host side. The cost is
// charged per resident byte (dirty-page tracking is assumed, as in the
// paper's citations).
func Capture(proc *sim.Proc, m *kvm.Machine) (*Image, error) {
	if proc != nil {
		m.Timeline.Begin("snapshot.capture", proc.Now())
		defer func() { m.Timeline.End("snapshot.capture", proc.Now()) }()
	}
	img := &Image{
		Size:    m.Mem.Size(),
		Pages:   make(map[uint64][]byte),
		Private: make(map[uint64]bool),
		SEV:     m.Level.Encrypted(),
	}
	// Bulk export: one pass over resident pages with the per-page AES
	// transforms spread across the hostwork pool, instead of a
	// page-at-a-time HostRead loop. The host-visible bytes are identical.
	exports, err := m.Mem.ExportPages()
	if err != nil {
		return nil, err
	}
	bytes := 0
	for _, e := range exports {
		img.Pages[e.PN] = e.Data
		img.Private[e.PN] = e.Private
		bytes += guestmem.PageSize
	}
	if proc != nil {
		proc.Sleep(m.Host.Model.VMMLoad(bytes)) // memcpy-bound capture
	}
	return img, nil
}

// Restore writes a snapshot into a machine's memory from the host side.
// For non-SEV guests this reconstructs the exact pre-snapshot state. For
// SEV guests the host can only replay the captured *ciphertext*; unless
// the target guest shares the source's encryption key (and ASID-derived
// tweaks), the guest will read garbage — Verify reports whether the
// restored guest actually sees its old state.
func Restore(proc *sim.Proc, m *kvm.Machine, img *Image) error {
	if m.Mem.Size() != img.Size {
		return fmt.Errorf("%w: %d vs %d", ErrSize, m.Mem.Size(), img.Size)
	}
	if proc != nil {
		m.Timeline.Begin("snapshot.restore", proc.Now())
		defer func() { m.Timeline.End("snapshot.restore", proc.Now()) }()
	}
	bytes := 0
	for pn, data := range img.Pages {
		gpa := pn * guestmem.PageSize
		if img.Private[pn] {
			// The host replays ciphertext into the page and marks it
			// private again; decryption happens through the target
			// guest's key on access.
			if err := m.Mem.HostRestoreCiphertext(gpa, data); err != nil {
				return err
			}
		} else {
			if err := m.Mem.HostWrite(gpa, data); err != nil {
				return err
			}
		}
		bytes += len(data)
	}
	if proc != nil {
		proc.Sleep(m.Host.Model.VMMLoad(bytes))
	}
	return nil
}

// Verify checks whether the restored guest sees the same plain text the
// source guest had at the probe addresses. It returns ErrEncrypted when
// the restored pages decrypt to garbage (the SEV cross-key case).
func Verify(src, dst *kvm.Machine, probes []uint64, want map[uint64][]byte) error {
	for _, gpa := range probes {
		got, err := dst.Mem.GuestRead(gpa, len(want[gpa]), dst.Level.Encrypted())
		if err != nil {
			return err
		}
		if string(got) != string(want[gpa]) {
			return fmt.Errorf("%w: probe at %#x differs", ErrEncrypted, gpa)
		}
	}
	return nil
}

// DedupStats measures page-level deduplication opportunity across a set
// of snapshots, as a memory balloon/KSM daemon would: pages with equal
// *host-visible* bytes can share one frame. Private (encrypted) pages are
// tracked separately: shared staging pages of SEV guests still dedup, but
// encrypted pages never do.
type DedupStats struct {
	TotalPages    int
	UniquePages   int
	PrivatePages  int
	UniquePrivate int
}

// SharedFraction is the fraction of all pages that deduplicate away.
func (d DedupStats) SharedFraction() float64 {
	if d.TotalPages == 0 {
		return 0
	}
	return 1 - float64(d.UniquePages)/float64(d.TotalPages)
}

// PrivateSharedFraction is the fraction of *encrypted* pages that
// deduplicate away — the paper's §7.1 quantity, which is ~0 for SEV.
func (d DedupStats) PrivateSharedFraction() float64 {
	if d.PrivatePages == 0 {
		return 0
	}
	return 1 - float64(d.UniquePrivate)/float64(d.PrivatePages)
}

// Dedup hashes every captured page across the images and counts unique
// contents. For non-SEV guests booted from the same kernel this approaches
// 1.0 shared; for SEV guests the encrypted pages approach 0.0 because
// per-guest keys and address tweaks give identical plain text distinct
// ciphertext (§7.1).
func Dedup(images ...*Image) DedupStats {
	seen := make(map[[32]byte]bool)
	seenPriv := make(map[[32]byte]bool)
	var stats DedupStats
	for _, img := range images {
		for pn, data := range img.Pages {
			stats.TotalPages++
			h := sha256.Sum256(data)
			if !seen[h] {
				seen[h] = true
				stats.UniquePages++
			}
			if img.Private[pn] {
				stats.PrivatePages++
				if !seenPriv[h] {
					seenPriv[h] = true
					stats.UniquePrivate++
				}
			}
		}
	}
	return stats
}

// WarmStartCost estimates the restore latency for an image: the host-side
// page replay plus, for SEV guests, the re-validation the guest must do
// because RMP state does not survive (pvalidate over restored memory).
func WarmStartCost(m *kvm.Machine, img *Image) time.Duration {
	bytes := len(img.Pages) * guestmem.PageSize
	cost := m.Host.Model.VMMLoad(bytes)
	if img.SEV {
		cost += m.Host.Model.Pvalidate(bytes, m.Host.PvalidatePageSize())
	}
	return cost
}
