package snapshot

// The fork container: a warm-pool entry that can stamp out new guests
// by CoW page aliasing instead of ciphertext replay. It pairs the
// host-visible Image (the sealable transport form — unchanged wire
// format) with the donor's plain-text ForkSource and the donor's final
// launch digest, which forked guests inherit via psp.LaunchStartFork.
//
// Virtual-time contract: Fork.Restore charges exactly what Restore
// charges for the same image — the same "snapshot.restore" timeline
// span and the same VMMLoad over the same byte count — so whether a
// warm boot copies ciphertext or aliases plain text is invisible on
// the virtual clock. Only the host's wall clock improves: aliasing is
// O(resident pages) of pointer work with no per-page AES.

import (
	"fmt"

	"github.com/severifast/severifast/internal/guestmem"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sim"
)

// Fork is a fork-ready sealed snapshot: the transport image, the
// in-process alias source, and the donor's launch digest.
type Fork struct {
	Img    *Image
	Src    *guestmem.ForkSource
	Digest [32]byte // the donor's final launch digest, inherited by forks
}

// CaptureFork captures a machine as both a transport image and a fork
// source. donorDigest is the donor's final launch digest (from
// LaunchFinish or GuestContext.Digest); forks launched from this
// container attest with it. The virtual-time cost is Capture's — the
// fork-source export reuses the same resident-page walk on the host
// side and charges nothing extra.
func CaptureFork(proc *sim.Proc, m *kvm.Machine, donorDigest [32]byte) (*Fork, error) {
	img, err := Capture(proc, m)
	if err != nil {
		return nil, err
	}
	src, err := m.Mem.ExportForkSource()
	if err != nil {
		return nil, err
	}
	return &Fork{Img: img, Src: src, Digest: donorDigest}, nil
}

// Restore populates a machine from the fork source. The machine must
// share the donor's key and ASID (psp.LaunchStartFork installs them);
// AdoptFork verifies the fork root before any page is aliased, so a
// source tampered since capture is refused with
// guestmem.ErrForkTampered. Charges are identical to Restore with the
// paired Image: same timeline span, same VMMLoad byte count.
func (f *Fork) Restore(proc *sim.Proc, m *kvm.Machine) error {
	if m.Mem.Size() != f.Src.Size() {
		return fmt.Errorf("%w: %d vs %d", ErrSize, m.Mem.Size(), f.Src.Size())
	}
	if proc != nil {
		m.Timeline.Begin("snapshot.restore", proc.Now())
		defer func() { m.Timeline.End("snapshot.restore", proc.Now()) }()
	}
	if err := m.Mem.AdoptFork(f.Src); err != nil {
		return err
	}
	if proc != nil {
		bytes := len(f.Src.Pages()) * guestmem.PageSize
		proc.Sleep(m.Host.Model.VMMLoad(bytes))
	}
	return nil
}
