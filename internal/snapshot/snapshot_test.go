package snapshot

import (
	"bytes"
	"errors"
	"testing"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/guestmem"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
)

// run executes fn on a fresh engine+host process.
func run(t *testing.T, fn func(p *sim.Proc, h *kvm.Host)) {
	t.Helper()
	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	eng.Go("test", func(p *sim.Proc) { fn(p, host) })
	eng.Run()
}

// payload is the guest state we snapshot: deterministic bytes across a
// few pages.
func payload(tag byte) []byte {
	b := make([]byte, 8*guestmem.PageSize)
	for i := range b {
		b[i] = byte(i) ^ tag
	}
	return b
}

func TestPlainSnapshotRestoreRoundTrip(t *testing.T) {
	run(t, func(p *sim.Proc, h *kvm.Host) {
		src := h.NewMachine(p, 1<<20, sev.None)
		data := payload(0)
		if err := src.Mem.HostWrite(0x10000, data); err != nil {
			t.Fatal(err)
		}
		img, err := Capture(p, src)
		if err != nil {
			t.Fatal(err)
		}
		dst := h.NewMachine(p, 1<<20, sev.None)
		if err := Restore(p, dst, img); err != nil {
			t.Fatal(err)
		}
		got, err := dst.Mem.GuestRead(0x10000, len(data), false)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("plain warm start lost guest state")
		}
	})
}

// sevGuest launches an SNP machine with key-sharing-permissive policy and
// writes private payload pages.
func sevGuest(t *testing.T, p *sim.Proc, h *kvm.Host, data []byte) *kvm.Machine {
	t.Helper()
	m := h.NewMachine(p, 1<<20, sev.SNP)
	pol := sev.DefaultPolicy()
	pol.NoKeySharing = false // warm-start experiments need sharing
	if err := m.StartLaunch(p, pol); err != nil {
		t.Fatal(err)
	}
	table, asid := m.Mem.RMP()
	if err := table.PvalidateRangeSkipValidated(0, int(m.Mem.Size()), 2<<20, asid); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.GuestWrite(0x10000, data, true); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSEVSnapshotIsCiphertext(t *testing.T) {
	run(t, func(p *sim.Proc, h *kvm.Host) {
		data := payload(1)
		src := sevGuest(t, p, h, data)
		img, err := Capture(p, src)
		if err != nil {
			t.Fatal(err)
		}
		if !img.SEV {
			t.Fatal("image not marked SEV")
		}
		pn := uint64(0x10000) / guestmem.PageSize
		if !img.Private[pn] {
			t.Fatal("payload page not marked private")
		}
		if bytes.Equal(img.Pages[pn], data[:guestmem.PageSize]) {
			t.Fatal("snapshot leaked plain text of an SEV guest")
		}
	})
}

func TestSEVRestoreIntoFreshKeyYieldsGarbage(t *testing.T) {
	// The paper's core warm-start obstacle: the host cannot rehydrate an
	// SEV guest into a new launch context.
	run(t, func(p *sim.Proc, h *kvm.Host) {
		data := payload(2)
		src := sevGuest(t, p, h, data)
		img, err := Capture(p, src)
		if err != nil {
			t.Fatal(err)
		}
		dst := sevGuest(t, p, h, payload(3)) // fresh key, different ASID
		if err := Restore(p, dst, img); err != nil {
			t.Fatal(err)
		}
		want := map[uint64][]byte{0x10000: data[:64]}
		err = Verify(src, dst, []uint64{0x10000}, want)
		if !errors.Is(err, ErrEncrypted) {
			t.Fatalf("cross-key restore verified: %v", err)
		}
	})
}

func TestSEVRestoreUnderSharedKeyWorks(t *testing.T) {
	// §6.2's near-term idea: share the encryption key. Restore then
	// reproduces the guest's state — at the cost of a policy the guest
	// owner can see.
	run(t, func(p *sim.Proc, h *kvm.Host) {
		data := payload(4)
		src := sevGuest(t, p, h, data)
		img, err := Capture(p, src)
		if err != nil {
			t.Fatal(err)
		}

		dst := h.NewMachine(p, 1<<20, sev.SNP)
		pol := sev.DefaultPolicy()
		pol.NoKeySharing = false
		ctx, err := h.PSP.LaunchStartShared(p, dst.Mem, src.Launch, sev.SNP, pol)
		if err != nil {
			t.Fatal(err)
		}
		dst.Launch = ctx
		if err := Restore(p, dst, img); err != nil {
			t.Fatal(err)
		}
		want := map[uint64][]byte{0x10000: data[:64]}
		if err := Verify(src, dst, []uint64{0x10000}, want); err != nil {
			t.Fatalf("shared-key restore failed verification: %v", err)
		}
	})
}

func TestSharedKeyLaunchRequiresPermissivePolicy(t *testing.T) {
	run(t, func(p *sim.Proc, h *kvm.Host) {
		src := h.NewMachine(p, 1<<20, sev.SNP)
		strict := sev.DefaultPolicy() // NoKeySharing = true
		if err := src.StartLaunch(p, strict); err != nil {
			t.Fatal(err)
		}
		dst := h.NewMachine(p, 1<<20, sev.SNP)
		pol := strict
		pol.NoKeySharing = false
		if _, err := h.PSP.LaunchStartShared(p, dst.Mem, src.Launch, sev.SNP, pol); err == nil {
			t.Fatal("shared key granted against the donor's NoKeySharing policy")
		}
	})
}

func TestSharedKeyVisibleInMeasurement(t *testing.T) {
	// The weakened trust model is not silent: the relaxed policy changes
	// the launch digest and the attestation report.
	strict := sev.DefaultPolicy()
	relaxed := strict
	relaxed.NoKeySharing = false
	run(t, func(p *sim.Proc, h *kvm.Host) {
		a := h.NewMachine(p, 1<<20, sev.SNP)
		if err := a.StartLaunch(p, strict); err != nil {
			t.Fatal(err)
		}
		b := h.NewMachine(p, 1<<20, sev.SNP)
		if err := b.StartLaunch(p, relaxed); err != nil {
			t.Fatal(err)
		}
		da, _ := a.Launch.LaunchFinish(p)
		db, _ := b.Launch.LaunchFinish(p)
		if da == db {
			t.Fatal("key-sharing policy is invisible in the measurement")
		}
	})
}

func TestDedupPlainGuestsShareAlmostEverything(t *testing.T) {
	run(t, func(p *sim.Proc, h *kvm.Host) {
		data := payload(5)
		var images []*Image
		for i := 0; i < 3; i++ {
			m := h.NewMachine(p, 1<<20, sev.None)
			if err := m.Mem.HostWrite(0x10000, data); err != nil {
				t.Fatal(err)
			}
			img, err := Capture(p, m)
			if err != nil {
				t.Fatal(err)
			}
			images = append(images, img)
		}
		stats := Dedup(images...)
		if stats.SharedFraction() < 0.6 {
			t.Fatalf("plain guests shared only %.2f of pages", stats.SharedFraction())
		}
	})
}

func TestDedupSEVGuestsShareNothing(t *testing.T) {
	// §7.1: "pages with identical contents at different physical addresses
	// will have different ciphertext" — and across guests too. Dedup gets
	// zero traction.
	run(t, func(p *sim.Proc, h *kvm.Host) {
		data := payload(6)
		var images []*Image
		for i := 0; i < 3; i++ {
			m := sevGuest(t, p, h, data)
			img, err := Capture(p, m)
			if err != nil {
				t.Fatal(err)
			}
			images = append(images, img)
		}
		stats := Dedup(images...)
		if stats.PrivateSharedFraction() > 0.001 {
			t.Fatalf("SEV guests shared %.3f of private pages; ciphertext must not dedup", stats.PrivateSharedFraction())
		}
		if stats.PrivatePages == 0 {
			t.Fatal("no private pages captured")
		}
	})
}

func TestRestoreRejectsSizeMismatch(t *testing.T) {
	run(t, func(p *sim.Proc, h *kvm.Host) {
		src := h.NewMachine(p, 1<<20, sev.None)
		img, err := Capture(p, src)
		if err != nil {
			t.Fatal(err)
		}
		dst := h.NewMachine(p, 2<<20, sev.None)
		if err := Restore(p, dst, img); !errors.Is(err, ErrSize) {
			t.Fatalf("size mismatch accepted: %v", err)
		}
	})
}

func TestWarmStartCostSEVIncludesRevalidation(t *testing.T) {
	run(t, func(p *sim.Proc, h *kvm.Host) {
		data := payload(7)
		plain := h.NewMachine(p, 1<<20, sev.None)
		if err := plain.Mem.HostWrite(0x10000, data); err != nil {
			t.Fatal(err)
		}
		plainImg, err := Capture(p, plain)
		if err != nil {
			t.Fatal(err)
		}
		enc := sevGuest(t, p, h, data)
		encImg, err := Capture(p, enc)
		if err != nil {
			t.Fatal(err)
		}
		if WarmStartCost(enc, encImg) <= WarmStartCost(plain, plainImg) {
			t.Fatal("SEV warm start must pay re-validation on top of page replay")
		}
	})
}
