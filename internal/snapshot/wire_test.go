package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"github.com/severifast/severifast/internal/guestmem"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
)

// captureSEV builds a real SEV snapshot to exercise the wire format on.
func captureSEV(t *testing.T) *Image {
	t.Helper()
	var img *Image
	run(t, func(p *sim.Proc, h *kvm.Host) {
		src := sevGuest(t, p, h, payload(4))
		var err error
		if img, err = Capture(p, src); err != nil {
			t.Fatal(err)
		}
	})
	return img
}

func TestWireRoundTrip(t *testing.T) {
	img := captureSEV(t)
	b, err := Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != img.Size || got.SEV != img.SEV {
		t.Fatalf("header lost: got size %d sev %v", got.Size, got.SEV)
	}
	if !reflect.DeepEqual(got.Pages, img.Pages) || !reflect.DeepEqual(got.Private, img.Private) {
		t.Fatal("pages lost in round trip")
	}
	// Deterministic encoding: equal images, equal bytes.
	b2, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("encode is not deterministic")
	}
}

// TestWireDecodedImageRestores closes the loop: a snapshot that went
// through bytes still warm-starts a shared-key clone.
func TestWireDecodedImageRestores(t *testing.T) {
	run(t, func(p *sim.Proc, h *kvm.Host) {
		data := payload(5)
		src := sevGuest(t, p, h, data)
		img, err := Capture(p, src)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Encode(img)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		dst := h.NewMachine(p, src.Mem.Size(), sev.SNP)
		pol := sev.DefaultPolicy()
		pol.NoKeySharing = false
		ctx, err := h.PSP.LaunchStartShared(p, dst.Mem, src.Launch, sev.SNP, pol)
		if err != nil {
			t.Fatal(err)
		}
		dst.Launch = ctx
		if err := Restore(p, dst, decoded); err != nil {
			t.Fatal(err)
		}
		if err := Verify(src, dst, []uint64{0x10000}, map[uint64][]byte{0x10000: data[:64]}); err != nil {
			t.Fatalf("decoded snapshot does not restore: %v", err)
		}
	})
}

// TestWireTruncationsRefused: every strict prefix of a valid encoding is
// corrupt — no prefix may decode to a smaller-but-plausible image.
func TestWireTruncationsRefused(t *testing.T) {
	b, err := Encode(captureSEV(t))
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive over the header, sampled over the (large) page records.
	lengths := make([]int, 0, 64)
	for n := 0; n < wireHeaderLen+2; n++ {
		lengths = append(lengths, n)
	}
	for n := wireHeaderLen + 2; n < len(b); n += wireRecordLen/3 + 1 {
		lengths = append(lengths, n)
	}
	lengths = append(lengths, len(b)-1)
	for _, n := range lengths {
		if _, err := Decode(b[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Decode of %d/%d-byte prefix: %v, want ErrCorrupt", n, len(b), err)
		}
	}
}

func TestWireCorruptionsRefused(t *testing.T) {
	img := captureSEV(t)
	valid, err := Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	le := binary.LittleEndian
	mutate := func(name string, fn func(b []byte)) {
		b := append([]byte(nil), valid...)
		fn(b)
		if _, err := Decode(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Decode = %v, want ErrCorrupt", name, err)
		}
	}
	mutate("bad magic", func(b []byte) { b[0] ^= 0xFF })
	mutate("unknown flags", func(b []byte) { b[8] |= 0x80 })
	mutate("size not page multiple", func(b []byte) { le.PutUint64(b[9:], img.Size+1) })
	mutate("zero size", func(b []byte) { le.PutUint64(b[9:], 0) })
	mutate("count over capacity", func(b []byte) { le.PutUint32(b[17:], uint32(img.Size/guestmem.PageSize)+1) })
	mutate("count under byte length", func(b []byte) { le.PutUint32(b[17:], le.Uint32(b[17:])-1) })
	mutate("page out of range", func(b []byte) { le.PutUint64(b[wireHeaderLen:], img.Size/guestmem.PageSize) })
	mutate("duplicate page", func(b []byte) {
		// Make the second record repeat the first page number.
		copy(b[wireHeaderLen+wireRecordLen:], b[wireHeaderLen:wireHeaderLen+8])
	})
	mutate("bad privacy byte", func(b []byte) { b[wireHeaderLen+8] = 7 })

	// Trailing bytes need a grown slice, not an in-place mutation.
	if _, err := Decode(append(append([]byte(nil), valid...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing byte: Decode = %v, want ErrCorrupt", err)
	}
	// A private page in a non-SEV snapshot contradicts the flags.
	mutate("private page without SEV", func(b []byte) { b[8] &^= 1 })
}

func TestEncodeRejectsPartialPage(t *testing.T) {
	img := &Image{
		Size:    1 << 20,
		Pages:   map[uint64][]byte{3: make([]byte, 100)},
		Private: map[uint64]bool{},
	}
	if _, err := Encode(img); err == nil {
		t.Fatal("Encode accepted a partial page")
	}
}
