package snapshot

// The sealed container wraps the wire format with an integrity trailer,
// for snapshots that leave the process (warm pools on disk, shipping
// between hosts). Decode already rejects structurally invalid bytes; the
// seal additionally rejects structurally *valid* bytes that are not the
// bytes that were written — a bit flip inside page data would otherwise
// decode cleanly and restore a silently torn guest. The trailer is a
// plain SHA-256 over the payload: this is tamper *detection* for the
// snapshot transport, not authentication — a host that can rewrite the
// snapshot can rewrite the trailer, and catching that host is the launch
// measurement's job, not the container's.

import (
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
)

const sealTrailerLen = sha256.Size

// SealedDeltaValidateLen is the byte count a host must actually examine
// to delta-validate a sealed blob whose content digest it already knows:
// the fixed wire header plus the seal trailer. Content-addressed
// transports (internal/cluster's replicator) verify the payload digest
// during transfer, so adoption re-checks only the envelope instead of
// re-hashing the full image.
const SealedDeltaValidateLen = wireHeaderLen + sealTrailerLen

// EncodeSealed serializes an image and appends the SHA-256 of the payload
// as a trailer. DecodeSealed is its inverse.
func EncodeSealed(img *Image) ([]byte, error) {
	payload, err := Encode(img)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(payload)
	return append(payload, sum[:]...), nil
}

// DecodeSealed verifies the integrity trailer and decodes the payload.
// Any truncation, extension, or bit flip anywhere in the container —
// header, page data, or trailer — fails with ErrCorrupt.
func DecodeSealed(b []byte) (*Image, error) {
	if len(b) < sealTrailerLen {
		return nil, fmt.Errorf("%w: %d bytes, want at least the %d-byte seal trailer", ErrCorrupt, len(b), sealTrailerLen)
	}
	payload, trailer := b[:len(b)-sealTrailerLen], b[len(b)-sealTrailerLen:]
	sum := sha256.Sum256(payload)
	if subtle.ConstantTimeCompare(sum[:], trailer) != 1 {
		return nil, fmt.Errorf("%w: seal digest mismatch", ErrCorrupt)
	}
	return Decode(payload)
}
