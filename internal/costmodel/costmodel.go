// Package costmodel holds every calibrated duration and throughput used to
// charge virtual time in the SEVeriFast reproduction.
//
// The constants are fit to numbers published in the paper (see DESIGN.md §4
// for each anchor point): the PSP pre-encryption line of Fig. 4, the
// SEVeriFast pre-encryption and firmware times of Fig. 10, the pvalidate
// and huge-page observations of §6.1, the ~2.3x SNP Linux-boot multiplier
// of §6.2, and the reference 40 ms non-SEV AWS-kernel boot.
//
// Everything is an exported field on Model so experiments (and tests) can
// override individual costs; Default() returns the calibrated model and
// Unit() returns a trivially-predictable model for unit tests.
package costmodel

import "time"

// Model is the complete set of cost parameters. All per-byte costs are
// expressed as throughputs (bytes per second) except PSP pre-encryption,
// which the paper characterizes as linear in bytes with a visible slope,
// kept here as a per-byte latency for clarity.
type Model struct {
	// --- PSP (Platform Security Processor, single low-power ARM core) ---

	// PSPPreEncPerByte is the per-byte cost of LAUNCH_UPDATE_DATA: the PSP
	// hashes the region into the launch digest and encrypts it with the
	// guest key. Fig. 4 anchor: 23 MiB vmlinux -> 5.65 s.
	PSPPreEncPerByte time.Duration
	// PSPCommandOverhead is the fixed cost of any single PSP mailbox
	// command (doorbell, firmware dispatch, completion).
	PSPCommandOverhead time.Duration
	// PSPLaunchStart covers LAUNCH_START: allocating an ASID and deriving
	// a fresh VM encryption key.
	PSPLaunchStart time.Duration
	// PSPLaunchFinish covers LAUNCH_FINISH: finalizing the measurement and
	// locking the guest state.
	PSPLaunchFinish time.Duration
	// PSPReportGen is the cost for the PSP to build and sign an
	// attestation report (SNP_GUEST_REQUEST for MSG_REPORT_REQ).
	PSPReportGen time.Duration
	// PSPGuestInit covers the remaining per-guest PSP firmware work KVM
	// issues outside the measured pre-encryption span: SNP context
	// creation, RMPUPDATE firmware commands, GHCB registration. The paper
	// attributes this to the enlarged "Firecracker" column of Fig. 11 and
	// it dominates the per-VM slope of Fig. 12.
	PSPGuestInit time.Duration

	// --- Guest CPU (full-speed x86 core) ---

	// CPUHashBytesPerSec is SHA-256 throughput with the x86 SHA extensions
	// (the boot verifier uses the sha2 crate's SHA-NI path).
	CPUHashBytesPerSec float64
	// CopyBytesPerSec is the memcpy bandwidth for moving boot components
	// from shared (plain-text) pages into C-bit (encrypted) pages.
	CopyBytesPerSec float64
	// LZ4DecompBytesPerSec is LZ4 decompression throughput measured in
	// *output* bytes per second.
	LZ4DecompBytesPerSec float64
	// GzipDecompBytesPerSec is gzip/DEFLATE decompression throughput in
	// output bytes per second (the slower alternative of Fig. 5).
	GzipDecompBytesPerSec float64
	// ELFParsePerSegment is the verifier-side cost to parse one program
	// header and prepare a segment load.
	ELFParsePerSegment time.Duration

	// --- RMP / SNP memory management ---

	// PvalidatePerPage is the cost of one pvalidate instruction, roughly
	// independent of page size. §6.1 anchor: validating 256 MiB of 4 KiB
	// pages costs >60 ms; with 2 MiB huge pages it drops below 1 ms.
	PvalidatePerPage time.Duration
	// RMPInitBytesPerSec is the host-side (KVM) throughput for initializing
	// RMP entries covering guest memory before launch.
	RMPInitBytesPerSec float64
	// PinBytesPerSec is the KVM throughput for pinning guest pages during
	// SEV launch (encrypted pages cannot be transparently moved).
	PinBytesPerSec float64
	// VCExit is the guest+host cost of one #VC exit (GHCB world switch).
	VCExit time.Duration
	// KVMSNPVMCreate is the host-kernel cost of creating the SEV VM scope
	// before any launch command: SNP context allocation in KVM, encrypted
	// memslot registration, and firmware state setup. It lands in the
	// paper's enlarged "Firecracker" column (Fig. 11) for SEV guests.
	KVMSNPVMCreate time.Duration

	// --- VMM / host process ---

	// VMMProcessStart is exec-to-KVM-ready time for the monitor process
	// (Firecracker anchor: a few ms of its ~8 ms pre-guest time).
	VMMProcessStart time.Duration
	// VMMLoadBytesPerSec is the VMM-side throughput for placing a boot
	// component into guest memory (buffer-cache-warm read + map + copy).
	VMMLoadBytesPerSec float64
	// VMMSetupMisc is the remaining per-boot VMM setup (devices, vCPU).
	VMMSetupMisc time.Duration
	// QEMUProcessStart is exec-to-KVM-ready for QEMU, which carries far
	// more device emulation than a microVM monitor.
	QEMUProcessStart time.Duration

	// --- Guest Linux ---

	// LinuxBootBase is per-kernel-preset decompressed-kernel init time and
	// lives in the kernel preset, not here; this multiplier applies the
	// SNP #VC/RMP-check tax of §6.2 (~2.3x) on top of it.
	SNPLinuxBootMultiplier float64
	// BzImageSetupCost is the 16-bit/32-bit setup stub work in the bzImage
	// bootstrap loader before decompression starts.
	BzImageSetupCost time.Duration
	// VirtioProbe is the per-device virtio-mmio probe cost (register
	// traffic, feature negotiation, virtqueue setup).
	VirtioProbe time.Duration

	// --- OVMF (QEMU reference flow), Fig. 3 phase costs ---

	OVMFPhaseSEC time.Duration
	OVMFPhasePEI time.Duration
	OVMFPhaseDXE time.Duration
	OVMFPhaseBDS time.Duration

	// --- Attestation (guest owner round trip) ---

	// AttestNetwork is the network + server-side validation time, on top
	// of PSPReportGen; §6.1 anchors the total near 200 ms.
	AttestNetwork time.Duration
	// KBSChainVerify is the key broker's endorsement-chain walk (two
	// ECDSA P-384 verifies plus the root pin check). Paid only when the
	// broker's chain cache misses; hot boots skip it.
	KBSChainVerify time.Duration
}

// Default returns the model calibrated to the paper's published numbers.
func Default() Model {
	return Model{
		// 23 MiB * 235 ns/B = 5.67 s (paper: 5.65 s for the Lupine
		// vmlinux); 1 MiB OVMF = 247 ms (paper: 256.65 ms extra).
		PSPPreEncPerByte:   235 * time.Nanosecond,
		PSPCommandOverhead: 150 * time.Microsecond,
		PSPLaunchStart:     700 * time.Microsecond,
		PSPLaunchFinish:    800 * time.Microsecond,
		// Attestation totals ~200 ms; most of it is the PSP building and
		// signing the report, the rest network + validation.
		PSPReportGen:   150 * time.Millisecond,
		PSPGuestInit:   20 * time.Millisecond,
		AttestNetwork:  50 * time.Millisecond,
		KBSChainVerify: 2 * time.Millisecond,

		CPUHashBytesPerSec:    2.0e9,  // SHA-NI class
		CopyBytesPerSec:       10.0e9, // DDR4-3200 single-stream memcpy
		LZ4DecompBytesPerSec:  3.6e9,
		GzipDecompBytesPerSec: 0.35e9,
		ELFParsePerSegment:    2 * time.Microsecond,

		// 256 MiB / 4 KiB = 65536 pages * 0.95 us = 62 ms (paper: >60 ms);
		// 128 huge pages * 0.95 us = 0.12 ms (paper: <1 ms).
		PvalidatePerPage:   950 * time.Nanosecond,
		RMPInitBytesPerSec: 134e9, // 256 MiB in ~2 ms
		PinBytesPerSec:     89e9,  // 256 MiB in ~3 ms
		VCExit:             4 * time.Microsecond,
		KVMSNPVMCreate:     60 * time.Millisecond,

		VMMProcessStart:    4 * time.Millisecond,
		VMMLoadBytesPerSec: 8.0e9,
		VMMSetupMisc:       2 * time.Millisecond,
		QEMUProcessStart:   60 * time.Millisecond,

		SNPLinuxBootMultiplier: 2.3,
		BzImageSetupCost:       300 * time.Microsecond,
		VirtioProbe:            700 * time.Microsecond,

		// Fig. 3 / Fig. 10: OVMF firmware runtime is ~3.1-3.2 s, DXE
		// dominated (driver dispatch), with SEC/PEI/BDS around it.
		OVMFPhaseSEC: 55 * time.Millisecond,
		OVMFPhasePEI: 430 * time.Millisecond,
		OVMFPhaseDXE: 2250 * time.Millisecond,
		OVMFPhaseBDS: 420 * time.Millisecond,
	}
}

// Unit returns a model where every per-byte cost is 1 ns/byte, every
// throughput is 1 GB/s, and every fixed cost is 1 ms (phases: 1/2/3/4 ms).
// Tests use it to assert exact virtual-time arithmetic.
func Unit() Model {
	return Model{
		PSPPreEncPerByte:   1 * time.Nanosecond,
		PSPCommandOverhead: 1 * time.Millisecond,
		PSPLaunchStart:     1 * time.Millisecond,
		PSPLaunchFinish:    1 * time.Millisecond,
		PSPReportGen:       1 * time.Millisecond,
		PSPGuestInit:       1 * time.Millisecond,
		AttestNetwork:      1 * time.Millisecond,
		KBSChainVerify:     1 * time.Millisecond,

		CPUHashBytesPerSec:    1e9,
		CopyBytesPerSec:       1e9,
		LZ4DecompBytesPerSec:  1e9,
		GzipDecompBytesPerSec: 1e9,
		ELFParsePerSegment:    time.Microsecond,

		PvalidatePerPage:   time.Microsecond,
		RMPInitBytesPerSec: 1e9,
		PinBytesPerSec:     1e9,
		VCExit:             time.Microsecond,
		KVMSNPVMCreate:     time.Millisecond,

		VMMProcessStart:    time.Millisecond,
		VMMLoadBytesPerSec: 1e9,
		VMMSetupMisc:       time.Millisecond,
		QEMUProcessStart:   time.Millisecond,

		SNPLinuxBootMultiplier: 2.0,
		BzImageSetupCost:       time.Millisecond,
		VirtioProbe:            time.Millisecond,

		OVMFPhaseSEC: 1 * time.Millisecond,
		OVMFPhasePEI: 2 * time.Millisecond,
		OVMFPhaseDXE: 3 * time.Millisecond,
		OVMFPhaseBDS: 4 * time.Millisecond,
	}
}

// PerBytes converts a throughput in bytes/second into the duration for n
// bytes. Zero or negative throughput returns zero (treated as free).
func PerBytes(bytesPerSec float64, n int) time.Duration {
	if bytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bytesPerSec * float64(time.Second))
}

// Linear charges a fixed overhead plus a per-byte slope for n bytes.
func Linear(fixed time.Duration, perByte time.Duration, n int) time.Duration {
	if n < 0 {
		n = 0
	}
	return fixed + time.Duration(n)*perByte
}

// PreEncrypt returns the PSP time to pre-encrypt n bytes as one
// LAUNCH_UPDATE_DATA command: command overhead plus the per-byte slope.
func (m Model) PreEncrypt(n int) time.Duration {
	return Linear(m.PSPCommandOverhead, m.PSPPreEncPerByte, n)
}

// Hash returns the guest-CPU time to SHA-256 n bytes.
func (m Model) Hash(n int) time.Duration { return PerBytes(m.CPUHashBytesPerSec, n) }

// Copy returns the guest-CPU time to copy n bytes between shared and
// private memory.
func (m Model) Copy(n int) time.Duration { return PerBytes(m.CopyBytesPerSec, n) }

// Decompress returns guest-CPU decompression time producing n output bytes
// with the named codec ("lz4", "gzip"); unknown codecs decompress at LZ4
// speed.
func (m Model) Decompress(codec string, n int) time.Duration {
	switch codec {
	case "gzip":
		return PerBytes(m.GzipDecompBytesPerSec, n)
	default:
		return PerBytes(m.LZ4DecompBytesPerSec, n)
	}
}

// Pvalidate returns the time to validate a region of totalBytes using the
// given page size.
func (m Model) Pvalidate(totalBytes, pageSize int) time.Duration {
	if pageSize <= 0 {
		pageSize = 4096
	}
	pages := (totalBytes + pageSize - 1) / pageSize
	return time.Duration(pages) * m.PvalidatePerPage
}

// VMMLoad returns the VMM-side time to place n bytes into guest memory.
func (m Model) VMMLoad(n int) time.Duration { return PerBytes(m.VMMLoadBytesPerSec, n) }

// RMPInit returns the host-side time to initialize RMP entries for n bytes
// of guest memory.
func (m Model) RMPInit(n int) time.Duration { return PerBytes(m.RMPInitBytesPerSec, n) }

// Pin returns the host-side time to pin n bytes of guest memory.
func (m Model) Pin(n int) time.Duration { return PerBytes(m.PinBytesPerSec, n) }
