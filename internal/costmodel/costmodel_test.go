package costmodel

import (
	"testing"
	"time"
)

func TestPerBytes(t *testing.T) {
	if d := PerBytes(1e9, 1e9); d != time.Second {
		t.Fatalf("1e9 bytes at 1 GB/s = %v, want 1s", d)
	}
	if d := PerBytes(2e9, 1e9); d != 500*time.Millisecond {
		t.Fatalf("1e9 bytes at 2 GB/s = %v, want 500ms", d)
	}
	if d := PerBytes(0, 100); d != 0 {
		t.Fatalf("zero throughput = %v, want 0", d)
	}
	if d := PerBytes(1e9, 0); d != 0 {
		t.Fatalf("zero bytes = %v, want 0", d)
	}
	if d := PerBytes(1e9, -5); d != 0 {
		t.Fatalf("negative bytes = %v, want 0", d)
	}
}

func TestLinear(t *testing.T) {
	got := Linear(time.Millisecond, time.Nanosecond, 1000)
	if got != time.Millisecond+time.Microsecond {
		t.Fatalf("Linear = %v", got)
	}
	if Linear(time.Millisecond, time.Nanosecond, -1) != time.Millisecond {
		t.Fatal("negative n should clamp to 0")
	}
}

func TestPreEncryptIsLinearInBytes(t *testing.T) {
	m := Default()
	small := m.PreEncrypt(4096)
	big := m.PreEncrypt(8192)
	if big-small != 4096*m.PSPPreEncPerByte {
		t.Fatalf("slope mismatch: %v vs %v", big-small, 4096*m.PSPPreEncPerByte)
	}
	if small <= m.PSPCommandOverhead {
		t.Fatal("pre-encrypt must include per-byte cost above overhead")
	}
}

// TestPreEncryptMatchesPaperAnchors pins the calibration against the
// measurements published in §3.2 of the paper.
func TestPreEncryptMatchesPaperAnchors(t *testing.T) {
	m := Default()
	anchors := []struct {
		name   string
		bytes  int
		paper  time.Duration
		within float64 // acceptable relative error
	}{
		{"lupine-vmlinux-23MiB", 23 << 20, 5650 * time.Millisecond, 0.05},
		{"lupine-bzimage-3.3MiB", 3460300, 840 * time.Millisecond, 0.08},
		{"initrd-12MiB", 12 << 20, 2850 * time.Millisecond, 0.05},
		{"ovmf-1MiB", 1 << 20, 256 * time.Millisecond, 0.08},
	}
	for _, a := range anchors {
		got := m.PreEncrypt(a.bytes)
		rel := float64(got-a.paper) / float64(a.paper)
		if rel < 0 {
			rel = -rel
		}
		if rel > a.within {
			t.Errorf("%s: pre-encrypt %v vs paper %v (rel err %.3f > %.3f)",
				a.name, got, a.paper, rel, a.within)
		}
	}
}

func TestPvalidateHugePagesAnchor(t *testing.T) {
	m := Default()
	const guest = 256 << 20
	small := m.Pvalidate(guest, 4096)
	huge := m.Pvalidate(guest, 2<<20)
	if small < 60*time.Millisecond {
		t.Errorf("4 KiB pvalidate of 256 MiB = %v, paper says >60ms", small)
	}
	if huge >= time.Millisecond {
		t.Errorf("2 MiB pvalidate of 256 MiB = %v, paper says <1ms", huge)
	}
}

func TestPvalidateRoundsUpPartialPage(t *testing.T) {
	m := Unit()
	if m.Pvalidate(4097, 4096) != 2*m.PvalidatePerPage {
		t.Fatal("partial page should count as a full page")
	}
	if m.Pvalidate(100, 0) != m.PvalidatePerPage {
		t.Fatal("zero page size should default to 4096")
	}
}

func TestDecompressCodecSelection(t *testing.T) {
	m := Default()
	lz4 := m.Decompress("lz4", 1<<20)
	gz := m.Decompress("gzip", 1<<20)
	unknown := m.Decompress("zstd", 1<<20)
	if gz <= lz4 {
		t.Fatalf("gzip (%v) must be slower than lz4 (%v)", gz, lz4)
	}
	if unknown != lz4 {
		t.Fatalf("unknown codec should fall back to lz4 speed")
	}
}

func TestHashSlowerThanCopy(t *testing.T) {
	// §3.3: measured direct boot pays twice per byte — a copy and a hash —
	// and hashing dominates. The calibrated model must preserve that.
	m := Default()
	if m.Hash(1<<20) <= m.Copy(1<<20) {
		t.Fatal("hash must cost more than copy per byte")
	}
}

func TestUnitModelExactArithmetic(t *testing.T) {
	m := Unit()
	if m.PreEncrypt(1000) != time.Millisecond+1000*time.Nanosecond {
		t.Fatalf("unit PreEncrypt = %v", m.PreEncrypt(1000))
	}
	if m.Hash(1e6) != time.Millisecond {
		t.Fatalf("unit Hash(1e6) = %v", m.Hash(int(1e6)))
	}
}

func TestRMPInitAndPin(t *testing.T) {
	m := Default()
	if m.RMPInit(256<<20) <= 0 || m.Pin(256<<20) <= 0 {
		t.Fatal("RMP init / pin for a 256 MiB guest must be non-zero")
	}
	if m.RMPInit(256<<20) > 10*time.Millisecond {
		t.Fatalf("RMP init for 256 MiB unreasonably large: %v", m.RMPInit(256<<20))
	}
}

func TestVMMLoad(t *testing.T) {
	m := Unit()
	if m.VMMLoad(1e9) != time.Second {
		t.Fatalf("unit VMMLoad(1e9) = %v", m.VMMLoad(int(1e9)))
	}
}

func TestOVMFFirmwareTotalNearPaper(t *testing.T) {
	// Fig. 10: QEMU firmware runtime 3.17-3.24 s. The four PI phases plus
	// a ~25-35 ms boot-verifier stage (charged elsewhere) must land in that
	// neighborhood.
	m := Default()
	total := m.OVMFPhaseSEC + m.OVMFPhasePEI + m.OVMFPhaseDXE + m.OVMFPhaseBDS
	if total < 3000*time.Millisecond || total > 3300*time.Millisecond {
		t.Fatalf("OVMF phase total %v outside paper's 3.0-3.3 s window", total)
	}
}
