package expt

import (
	"testing"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/fleet"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sim"
)

// Alloc-regression pins: the zero-copy loader work (staging-blob
// aliasing, span RMP, memoized digests) is visible as a hard ceiling on
// heap allocations per boot. These are deliberately generous (~25% over
// the measured steady state) so they only trip on a regression class —
// a per-page loop reappearing, a digest memo going cold, a fresh copy
// of a bulk segment — not on incidental churn.
const (
	coldAllocCeilingPerBoot = 340 // measured ~259 at 64 VMs
	// The warm iteration amortizes one full cold seed (plan + staging
	// blob + snapshot capture) over the fleet, so its per-boot figure
	// sits above the steady-state fork cost.
	warmAllocCeilingPerBoot = 580 // measured ~464 at 64 VMs
)

// allocFleetIteration runs one fleet iteration — register + vms boots —
// mirroring HostBench's cold and warm scenarios.
func allocFleetIteration(tb testing.TB, preset kernelgen.Preset, initrd []byte, vms int, warm bool) {
	tb.Helper()
	eng := sim.NewEngine()
	host := kvm.NewHost(eng, costmodel.Default(), 1)
	if warm {
		o := fleet.New(eng, host, fleet.Config{Standalone: true, EnableWarm: true})
		img, err := o.RegisterImage("fn", preset, initrd)
		if err != nil {
			tb.Fatal(err)
		}
		var bootErr error
		eng.Go("alloc", func(p *sim.Proc) {
			done := func(_ *sim.Proc, _ fleet.Tier, err error) {
				if err != nil && bootErr == nil {
					bootErr = err
				}
			}
			for i := 0; i < vms; i++ {
				o.Serve(p, fleet.Request{Tenant: "t0", Image: img, Done: done})
			}
		})
		eng.Run()
		if bootErr != nil {
			tb.Fatal(bootErr)
		}
		if err := o.Err(); err != nil {
			tb.Fatal(err)
		}
		return
	}
	o := fleet.New(eng, host, fleet.Config{Workers: vms})
	img, err := o.RegisterImage("fn", preset, initrd)
	if err != nil {
		tb.Fatal(err)
	}
	if err := (fleet.Workload{Arrivals: vms, Images: []*fleet.Image{img}, Seed: 1}).Run(eng, o); err != nil {
		tb.Fatal(err)
	}
	eng.Run()
	if err := o.Err(); err != nil {
		tb.Fatal(err)
	}
}

func measureAllocsPerBoot(t *testing.T, warm bool) float64 {
	t.Helper()
	const vms = 64
	preset := kernelgen.Lupine()
	initrd := kernelgen.BuildInitrd(7, 4<<20)
	// One untimed pass warms the process-lifetime caches (generated
	// kernels, decompressed payloads, interned artifacts) exactly as
	// HostBench's warm-up iteration does.
	allocFleetIteration(t, preset, initrd, vms, warm)
	avg := testing.AllocsPerRun(3, func() {
		allocFleetIteration(t, preset, initrd, vms, warm)
	})
	return avg / vms
}

func TestColdBootAllocCeiling(t *testing.T) {
	if got := measureAllocsPerBoot(t, false); got > coldAllocCeilingPerBoot {
		t.Errorf("cold path allocates %.1f per boot, ceiling %d — a zero-copy loader or digest memo regressed",
			got, coldAllocCeilingPerBoot)
	}
}

func TestWarmForkAllocCeiling(t *testing.T) {
	if got := measureAllocsPerBoot(t, true); got > warmAllocCeilingPerBoot {
		t.Errorf("warm-fork path allocates %.1f per boot, ceiling %d — fork aliasing or digest reuse regressed",
			got, warmAllocCeilingPerBoot)
	}
}
