package expt

import (
	"fmt"
	"time"

	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/trace"
)

// Fig12 reproduces the concurrent-launch experiment: N guests started at
// once on ONE host (one PSP). SEV boot time grows linearly with N because
// every launch command serializes on the single-core PSP; non-SEV boots
// stay flat (paper §6.2, "Concurrent VMs").
func Fig12(opts Options) (*Table, error) {
	tab := &Table{
		Title: "Figure 12: mean boot time of concurrent guest launches (AWS kernel)",
		Note:  "One host, one PSP. SEV series grow linearly; the non-SEV series stays flat.",
		Columns: []string{
			"concurrency", "severifast-snp", "qemu-snp", "stock-fc (no sev)",
		},
	}
	preset := kernelgen.AWS()
	for _, n := range opts.concurrencyPoints() {
		row := []string{fmt.Sprintf("%d", n)}
		for _, sc := range []scheme{schemeSEVeriFast, schemeQEMU, schemeStock} {
			mean, err := concurrentMean(opts, preset, sc, n)
			if err != nil {
				return nil, err
			}
			row = append(row, ms(mean))
		}
		tab.AddRow(row...)
	}
	return tab, nil
}

// concurrentMean launches n guests simultaneously on one shared host and
// returns the mean boot time (to init; no attestation, as in Fig. 12).
func concurrentMean(opts Options, preset kernelgen.Preset, sc scheme, n int) (time.Duration, error) {
	art, err := kernelgen.Cached(preset)
	if err != nil {
		return 0, err
	}
	initrd := opts.initrd()
	eng := sim.NewEngine()
	host := kvm.NewHost(eng, opts.model(), opts.Seed)

	var series trace.Series
	var firstErr error
	for i := 0; i < n; i++ {
		eng.Go(fmt.Sprintf("vm-%d", i), func(p *sim.Proc) {
			out, err := runBootProc(p, host, preset, art, initrd, sc, nil)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			series = append(series, out.b().Total)
		})
	}
	eng.Run()
	if firstErr != nil {
		return 0, firstErr
	}
	if len(series) != n {
		return 0, fmt.Errorf("expt: %d of %d concurrent boots completed", len(series), n)
	}
	return series.Mean(), nil
}

// ConcurrencySlope fits the per-VM cost of the SEV series between two
// concurrency points — the paper's observation that the slope equals the
// total PSP launch-command time per guest (commands from different guests
// interleave on the PSP FIFO, so every guest's launch completes only after
// nearly all N guests' worth of PSP work).
func ConcurrencySlope(opts Options, lo, hi int) (time.Duration, error) {
	preset := kernelgen.AWS()
	mLo, err := concurrentMean(opts, preset, schemeSEVeriFast, lo)
	if err != nil {
		return 0, err
	}
	mHi, err := concurrentMean(opts, preset, schemeSEVeriFast, hi)
	if err != nil {
		return 0, err
	}
	return time.Duration(int64(mHi-mLo) / int64(hi-lo)), nil
}
