package expt

import (
	"fmt"
	"time"

	"github.com/severifast/severifast/internal/bootparams"
	"github.com/severifast/severifast/internal/guestmem"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/lz4"
	"github.com/severifast/severifast/internal/measure"
	"github.com/severifast/severifast/internal/mptable"
	"github.com/severifast/severifast/internal/pagetable"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
)

// Fig3 reproduces the OVMF boot-process breakdown: one QEMU/OVMF SNP boot
// of the AWS kernel, decomposed into PI phases plus the boot verifier —
// showing the verifier is a small slice of >3 s of firmware.
func Fig3(opts Options) (*Table, error) {
	out, err := bootOnce(opts.model(), kernelgen.AWS(), opts.initrd(), schemeQEMU, opts.Seed, false)
	if err != nil {
		return nil, err
	}
	tl := out.QEMU.Timeline
	at := func(ev sev.TimingEvent) sim.Time {
		t, ok := tl.EventAt(ev)
		if !ok {
			t = 0
		}
		return t
	}
	b := out.b()
	tab := &Table{
		Title:   "Figure 3: OVMF boot process breakdown (SEV-SNP, AWS kernel)",
		Note:    "The boot verifier is the only SEV-necessary stage; everything else is redundant bootstrap.",
		Columns: []string{"stage", "duration", "share"},
	}
	total := b.Total
	add := func(name string, d time.Duration) {
		tab.AddRow(name, ms(d), fmt.Sprintf("%.1f%%", 100*float64(d)/float64(total)))
	}
	add("qemu+pre-encryption (VMM)", b.VMM)
	add("  of which pre-encryption", b.PreEncryption)
	add("SEC", at(sev.EvFirmwarePEI).Sub(at(sev.EvFirmwareSEC)))
	add("PEI", at(sev.EvFirmwareDXE).Sub(at(sev.EvFirmwarePEI)))
	add("DXE", at(sev.EvFirmwareBDS).Sub(at(sev.EvFirmwareDXE)))
	add("BDS", at(sev.EvVerifierStart).Sub(at(sev.EvFirmwareBDS)))
	add("boot verifier", b.BootVerification)
	add("bootstrap loader", b.BootstrapLoader)
	add("linux boot", b.LinuxBoot)
	add("TOTAL", total)
	return tab, nil
}

// Fig4 reproduces the pre-encryption-vs-size line: LAUNCH_UPDATE_DATA over
// regions from 4 KiB to 64 MiB, per SEV level. Pre-encryption time is
// linear in bytes and prohibitive at kernel sizes.
func Fig4(opts Options) (*Table, error) {
	sizes := []int{4 << 10, 64 << 10, 256 << 10, 1 << 20, 3460300, 12 << 20, 23 << 20, 43 << 20, 64 << 20}
	tab := &Table{
		Title:   "Figure 4: pre-encryption time vs region size",
		Note:    "Linear in bytes; even the smallest kernels cost hundreds of ms (paper §3.2).",
		Columns: []string{"size", "sev", "sev-es", "sev-snp"},
	}
	for _, n := range sizes {
		row := []string{mib(n)}
		for _, level := range []sev.Level{sev.SEV, sev.ES, sev.SNP} {
			d, err := preEncryptOnce(opts, n, level)
			if err != nil {
				return nil, err
			}
			row = append(row, ms(d))
		}
		tab.AddRow(row...)
	}
	return tab, nil
}

// preEncryptOnce measures a single LAUNCH_UPDATE_DATA of n bytes.
func preEncryptOnce(opts Options, n int, level sev.Level) (time.Duration, error) {
	eng := sim.NewEngine()
	host := kvm.NewHost(eng, opts.model(), opts.Seed)
	var elapsed time.Duration
	var err error
	eng.Go("preenc", func(p *sim.Proc) {
		mem := guestmem.New(uint64(n) + 1<<20)
		pol := sev.DefaultPolicy()
		if level < sev.ES {
			pol.ESRequired = false
		}
		ctx, e := host.PSP.LaunchStart(p, mem, level, pol)
		if e != nil {
			err = e
			return
		}
		start := p.Now()
		if e := ctx.LaunchUpdateData(p, 0, n, sev.PageNormal); e != nil {
			err = e
			return
		}
		elapsed = p.Now().Sub(start)
	})
	eng.Run()
	return elapsed, err
}

// Fig5 reproduces the measured-direct-boot step costs: copy, hash, and
// decompress for each kernel format and for the initrd, per preset. The
// takeaways: LZ4 bzImage wins for the kernel; raw wins for the initrd.
func Fig5(opts Options) (*Table, error) {
	m := opts.model()
	tab := &Table{
		Title:   "Figure 5: measured direct boot step costs",
		Note:    "copy+hash scale with transferred bytes; decompression with uncompressed bytes.",
		Columns: []string{"component", "bytes", "copy", "hash", "decompress", "total"},
	}
	for _, preset := range opts.presets() {
		art, err := kernelgen.Cached(preset)
		if err != nil {
			return nil, err
		}
		add := func(name string, transfer, decompressed int, codec string) {
			cp, h := m.Copy(transfer), m.Hash(transfer)
			var dec time.Duration
			if decompressed > 0 {
				dec = m.Decompress(codec, decompressed)
			}
			tab.AddRow(name, mib(transfer), ms(cp), ms(h), ms(dec), ms(cp+h+dec))
		}
		add(preset.Name+"/vmlinux", len(art.VMLinux), 0, "")
		add(preset.Name+"/bzImage-lz4", len(art.BzImageLZ4), len(art.VMLinux), "lz4")
		add(preset.Name+"/bzImage-gzip", len(art.BzImageGzip), len(art.VMLinux), "gzip")
	}
	initrd := opts.initrd()
	compressed := lz4.Compress(initrd)
	tab.AddRow("initrd/raw", mib(len(initrd)), ms(m.Copy(len(initrd))), ms(m.Hash(len(initrd))), ms(0),
		ms(m.Copy(len(initrd))+m.Hash(len(initrd))))
	dec := m.Decompress("lz4", len(initrd))
	tab.AddRow("initrd/lz4", mib(len(compressed)), ms(m.Copy(len(compressed))), ms(m.Hash(len(compressed))), ms(dec),
		ms(m.Copy(len(compressed))+m.Hash(len(compressed))+dec))
	return tab, nil
}

// Fig7 reproduces the pre-encrypt-or-generate policy table: each boot
// structure, its size, its generator-code size, and the decision.
func Fig7(opts Options) (*Table, error) {
	tab := &Table{
		Title:   "Figure 7: boot data structures — pre-encrypt or generate?",
		Note:    "Pre-encrypt when the structure is smaller than the code that generates it.",
		Columns: []string{"structure", "purpose", "struct size", "code size", "decision"},
	}
	vcpus := 1
	tab.AddRow("mptable", "CPU config",
		fmt.Sprintf("%dB + %dB/CPU (%dB@%dcpu)", mptable.BaseSize, mptable.PerCPUSize, mptable.Size(vcpus), vcpus),
		fmt.Sprintf("%dB", mptable.GeneratorCodeSize), "pre-encrypt")
	tab.AddRow("cmdline", "kernel args",
		fmt.Sprintf("%dB", len(kernelgen.Lupine().Cmdline)), "n/a", "pre-encrypt")
	tab.AddRow("boot_params", "system info",
		fmt.Sprintf("%dB", bootparams.Size),
		fmt.Sprintf("%dB", bootparams.GeneratorCodeSize), "pre-encrypt")
	tab.AddRow("page tables", "paging in guest",
		fmt.Sprintf("%dB", pagetable.PDSize),
		fmt.Sprintf("%dB", pagetable.GeneratorCodeSize), "generate")
	return tab, nil
}

// Fig8 reproduces the guest-kernel artifact size table.
func Fig8(opts Options) (*Table, error) {
	tab := &Table{
		Title:   "Figure 8: guest kernels used in boot time experiments",
		Columns: []string{"kernel config", "vmlinux size", "bzImage size (lz4)", "bzImage size (gzip)"},
	}
	for _, preset := range opts.presets() {
		art, err := kernelgen.Cached(preset)
		if err != nil {
			return nil, err
		}
		tab.AddRow(preset.Name, mib(len(art.VMLinux)), mib(len(art.BzImageLZ4)), mib(len(art.BzImageGzip)))
	}
	return tab, nil
}

// RootOfTrust reports the byte counts behind the headline: what each flow
// pre-encrypts (not a paper figure, but the causal quantity).
func RootOfTrust(opts Options) (*Table, error) {
	tab := &Table{
		Title:   "Root-of-trust size: bytes pre-encrypted per flow",
		Columns: []string{"flow", "bytes", "modeled pre-encryption time"},
	}
	m := opts.model()
	h := measure.HashComponents([]byte("k"), []byte("i"), "c")
	regions, err := measure.Plan(measure.Config{
		Verifier: make([]byte, 13*1024),
		Hashes:   h,
		Cmdline:  kernelgen.Lupine().Cmdline,
		VCPUs:    1,
		MemSize:  256 << 20,
		Level:    sev.SNP,
		Policy:   sev.DefaultPolicy(),
	})
	if err != nil {
		return nil, err
	}
	sevf := measure.PreEncryptedBytes(regions)
	tab.AddRow("severifast", fmt.Sprintf("%dB", sevf), ms(m.PreEncrypt(sevf)))
	ovmfBytes := (1 << 20) + (128 << 10) + 3*4096 + 4096
	tab.AddRow("qemu-ovmf", fmt.Sprintf("%dB", ovmfBytes), ms(m.PreEncrypt(ovmfBytes)))
	return tab, nil
}
