package expt

// Host-time benchmark: unlike every figure experiment in this package,
// which reports *virtual* time from the simulation clock, HostBench
// measures what the simulator itself costs the host — wall-clock
// nanoseconds and heap allocations per fleet boot. This is the number
// the parallel measurement pipeline and the shared-artifact CoW cache
// are meant to move; virtual-time results must stay byte-identical.
//
// The scenario is the fleet hot path: one orchestrator boots VMs
// same-image microVMs (first boot cold, the rest from the measured-image
// cache), repeated Iters times with a fresh orchestrator and cache each
// iteration. Process-lifetime caches (generated kernels, decompressed
// payloads, interned artifacts) stay warm across iterations, exactly as
// they would across fleet shards in one host process.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/fleet"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/telemetry"
)

// HostBenchOptions sizes the host-time benchmark.
type HostBenchOptions struct {
	Label     string // free-form tag recorded in the output ("baseline", "cow", ...)
	VMs       int    // same-image boots per fleet iteration; default 16
	Iters     int    // timed iterations; default 4
	Warmup    int    // untimed warm-up iterations; default 1
	InitrdMiB int    // synthetic initrd size; default 4
}

func (o *HostBenchOptions) fillDefaults() {
	if o.VMs <= 0 {
		o.VMs = 16
	}
	if o.Iters <= 0 {
		o.Iters = 4
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	}
	if o.Warmup == 0 {
		o.Warmup = 1
	}
	if o.InitrdMiB <= 0 {
		o.InitrdMiB = 4
	}
}

// HostBenchResult is the JSON shape written to BENCH_*.json files. The
// repo keeps one file per recorded point so the perf trajectory is
// reviewable in git history.
type HostBenchResult struct {
	Label      string `json:"label"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	VMs       int    `json:"vms"`
	Iters     int    `json:"iters"`
	Kernel    string `json:"kernel"`
	InitrdMiB int    `json:"initrd_mib"`

	// Host cost of one whole fleet iteration (register + VMs boots).
	WallNSPerFleet int64 `json:"wall_ns_per_fleet"`
	// Host cost amortized per boot.
	WallNSPerBoot int64 `json:"wall_ns_per_boot"`
	AllocsPerBoot int64 `json:"allocs_per_boot"`
	BytesPerBoot  int64 `json:"bytes_per_boot"`

	// Virtual makespan of one fleet iteration. This must not change
	// when host-time optimizations land; it is recorded so a BENCH
	// diff shows the invariant holding.
	VirtualNSPerFleet int64 `json:"virtual_ns_per_fleet"`

	// HostStages breaks the host work down by pipeline stage
	// (cumulative ns across all iterations). Empty until the
	// measurement pipeline is instrumented.
	HostStages map[string]int64 `json:"host_stages,omitempty"`
	// HostCounters carries cache hit/miss and pool statistics from
	// telemetry.HostStats. Empty until the shared-artifact layer lands.
	HostCounters map[string]int64 `json:"host_counters,omitempty"`
}

// HostBench runs the fleet hot path under the wall clock.
func HostBench(opts HostBenchOptions) (*HostBenchResult, error) {
	opts.fillDefaults()

	preset := kernelgen.Lupine()
	initrd := kernelgen.BuildInitrd(7, opts.InitrdMiB<<20)

	iteration := func() (time.Duration, error) {
		eng := sim.NewEngine()
		host := kvm.NewHost(eng, costmodel.Default(), 1)
		o := fleet.New(eng, host, fleet.Config{Workers: opts.VMs})
		img, err := o.RegisterImage("fn", preset, initrd)
		if err != nil {
			return 0, err
		}
		if err := (fleet.Workload{
			Arrivals: opts.VMs,
			Images:   []*fleet.Image{img},
			Seed:     1,
		}).Run(eng, o); err != nil {
			return 0, err
		}
		eng.Run()
		if err := o.Err(); err != nil {
			return 0, err
		}
		return eng.Now().Duration(), nil
	}

	for i := 0; i < opts.Warmup; i++ {
		if _, err := iteration(); err != nil {
			return nil, err
		}
	}

	telemetry.ResetHostStats()
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var virtual time.Duration
	for i := 0; i < opts.Iters; i++ {
		v, err := iteration()
		if err != nil {
			return nil, err
		}
		virtual = v // deterministic: identical every iteration
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)

	boots := int64(opts.VMs) * int64(opts.Iters)
	res := &HostBenchResult{
		Label:             opts.Label,
		GoVersion:         runtime.Version(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		VMs:               opts.VMs,
		Iters:             opts.Iters,
		Kernel:            "lupine",
		InitrdMiB:         opts.InitrdMiB,
		WallNSPerFleet:    wall.Nanoseconds() / int64(opts.Iters),
		WallNSPerBoot:     wall.Nanoseconds() / boots,
		AllocsPerBoot:     int64(ms1.Mallocs-ms0.Mallocs) / boots,
		BytesPerBoot:      int64(ms1.TotalAlloc-ms0.TotalAlloc) / boots,
		VirtualNSPerFleet: virtual.Nanoseconds(),
	}
	stages, counters := telemetry.HostStatsSnapshot()
	res.HostStages = stages
	res.HostCounters = counters
	return res, nil
}

// WriteHostBench writes the result as indented JSON.
func WriteHostBench(w io.Writer, res *HostBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// String renders a one-screen summary for the terminal.
func (r *HostBenchResult) String() string {
	return fmt.Sprintf(
		"host bench %q: %d-VM same-image fleet ×%d iters (GOMAXPROCS=%d)\n"+
			"  wall/fleet  %v\n"+
			"  wall/boot   %v\n"+
			"  allocs/boot %d\n"+
			"  bytes/boot  %d\n"+
			"  virtual/fleet %v (must be invariant across host-time PRs)",
		r.Label, r.VMs, r.Iters, r.GOMAXPROCS,
		time.Duration(r.WallNSPerFleet).Round(time.Microsecond),
		time.Duration(r.WallNSPerBoot).Round(time.Microsecond),
		r.AllocsPerBoot, r.BytesPerBoot,
		time.Duration(r.VirtualNSPerFleet).Round(time.Microsecond))
}
