package expt

// Host-time benchmark: unlike every figure experiment in this package,
// which reports *virtual* time from the simulation clock, HostBench
// measures what the simulator itself costs the host — wall-clock
// nanoseconds and heap allocations per fleet boot. This is the number
// the parallel measurement pipeline, the shared-artifact CoW cache, and
// the snapshot-fork warm pool are meant to move; virtual-time results
// must stay byte-identical.
//
// Two scenarios share the machinery:
//
//   - Cold (default): one orchestrator boots VMs same-image microVMs
//     (first boot cold, the rest from the measured-image cache).
//   - Warm (Warm: true): a standalone orchestrator serves one measured
//     cold boot, then VMs-1 forked warm boots from its snapshot — the
//     Pool facade's hot path. The cold seed is timed separately so
//     wall_ns_per_warm_boot isolates the fork cost: O(dirty pages) of
//     aliasing plus O(1) digest reuse, no per-page AES.
//
// Each iteration uses a fresh orchestrator and cache. Process-lifetime
// caches (generated kernels, decompressed payloads, interned artifacts)
// stay warm across iterations, exactly as they would across fleet
// shards in one host process.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/fleet"
	"github.com/severifast/severifast/internal/hostwork"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/telemetry"
)

// HostBenchOptions sizes the host-time benchmark.
type HostBenchOptions struct {
	Label     string // free-form tag recorded in the output ("baseline", "cow", ...)
	VMs       int    // same-image boots per fleet iteration; default 16
	Iters     int    // timed iterations; default 4
	Warmup    int    // untimed warm-up iterations; default 1
	InitrdMiB int    // synthetic initrd size; default 4
	// Warm switches to the snapshot-fork scenario: one measured cold
	// boot seeds the pool, the remaining VMs-1 boots fork from it.
	Warm bool
	// HugePage turns on strict huge-page validation accounting
	// (kvm.Host.HugePageValidation). Virtual time legitimately differs
	// from the plain cold mode, so the result is labeled
	// "cold-hugepage" and pinned separately.
	HugePage bool
	// Cores bounds the hostwork pool width for the run (0 = GOMAXPROCS).
	// The scaling curve sweeps it.
	Cores int
}

func (o *HostBenchOptions) fillDefaults() {
	if o.VMs <= 0 {
		o.VMs = 16
	}
	if o.Iters <= 0 {
		o.Iters = 4
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	}
	if o.Warmup == 0 {
		o.Warmup = 1
	}
	if o.InitrdMiB <= 0 {
		o.InitrdMiB = 4
	}
}

// HostBenchResult is the JSON shape written to BENCH_*.json files. The
// repo keeps one file per recorded point so the perf trajectory is
// reviewable in git history.
type HostBenchResult struct {
	Label      string `json:"label"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	// Mode is "cold" or "warm-fork".
	Mode string `json:"mode"`
	// Cores is the hostwork pool width used (0 = GOMAXPROCS).
	Cores int `json:"cores,omitempty"`

	VMs       int    `json:"vms"`
	Iters     int    `json:"iters"`
	Kernel    string `json:"kernel"`
	InitrdMiB int    `json:"initrd_mib"`

	// Host cost of one whole fleet iteration (register + VMs boots).
	WallNSPerFleet int64 `json:"wall_ns_per_fleet"`
	// Host cost amortized per boot.
	WallNSPerBoot int64 `json:"wall_ns_per_boot"`
	// Host cost per forked warm boot, with the cold seed's wall time
	// subtracted out. Zero in cold mode.
	WallNSPerWarmBoot int64 `json:"wall_ns_per_warm_boot,omitempty"`
	AllocsPerBoot     int64 `json:"allocs_per_boot"`
	BytesPerBoot      int64 `json:"bytes_per_boot"`

	// Virtual makespan of one fleet iteration. This must not change
	// when host-time optimizations land; it is recorded so a BENCH
	// diff shows the invariant holding.
	VirtualNSPerFleet int64 `json:"virtual_ns_per_fleet"`

	// HostStages breaks the host work down by pipeline stage
	// (cumulative ns across all iterations).
	HostStages map[string]int64 `json:"host_stages,omitempty"`
	// HostCounters carries cache hit/miss, fold-memo, and fork
	// statistics merged from every iteration host's recorder plus the
	// process-wide artifact counters.
	HostCounters map[string]int64 `json:"host_counters,omitempty"`
}

// HostBench runs the fleet hot path under the wall clock.
func HostBench(opts HostBenchOptions) (*HostBenchResult, error) {
	opts.fillDefaults()
	if opts.Cores > 0 {
		prev := hostwork.SetWorkers(opts.Cores)
		defer hostwork.SetWorkers(prev)
	}

	preset := kernelgen.Lupine()
	initrd := kernelgen.BuildInitrd(7, opts.InitrdMiB<<20)

	stages := make(map[string]int64)
	counters := make(map[string]int64)
	merge := func(rec *telemetry.HostRecorder) {
		s, c := rec.Snapshot()
		for k, v := range s {
			stages[k] += v
		}
		for k, v := range c {
			counters[k] += v
		}
	}

	// iteration runs one fleet and reports its virtual makespan plus the
	// wall time its single cold seed took (warm mode only; 0 otherwise).
	iteration := func(timed bool) (time.Duration, time.Duration, error) {
		eng := sim.NewEngine()
		host := kvm.NewHost(eng, costmodel.Default(), 1)
		host.HugePageValidation = opts.HugePage
		var coldWall time.Duration
		if opts.Warm {
			o := fleet.New(eng, host, fleet.Config{Standalone: true, EnableWarm: true})
			img, err := o.RegisterImage("fn", preset, initrd)
			if err != nil {
				return 0, 0, err
			}
			var bootErr error
			eng.Go("bench", func(p *sim.Proc) {
				done := func(_ *sim.Proc, _ fleet.Tier, err error) {
					if err != nil && bootErr == nil {
						bootErr = err
					}
				}
				t0 := time.Now()
				o.Serve(p, fleet.Request{Tenant: "t0", Image: img, Done: done})
				coldWall = time.Since(t0)
				for i := 1; i < opts.VMs; i++ {
					o.Serve(p, fleet.Request{Tenant: "t0", Image: img, Done: done})
				}
			})
			eng.Run()
			if bootErr != nil {
				return 0, 0, bootErr
			}
			if err := o.Err(); err != nil {
				return 0, 0, err
			}
		} else {
			o := fleet.New(eng, host, fleet.Config{Workers: opts.VMs})
			img, err := o.RegisterImage("fn", preset, initrd)
			if err != nil {
				return 0, 0, err
			}
			if err := (fleet.Workload{
				Arrivals: opts.VMs,
				Images:   []*fleet.Image{img},
				Seed:     1,
			}).Run(eng, o); err != nil {
				return 0, 0, err
			}
			eng.Run()
			if err := o.Err(); err != nil {
				return 0, 0, err
			}
		}
		if timed {
			merge(host.HostStats)
		}
		return eng.Now().Duration(), coldWall, nil
	}

	for i := 0; i < opts.Warmup; i++ {
		if _, _, err := iteration(false); err != nil {
			return nil, err
		}
	}

	telemetry.ResetHostStats()
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var virtual time.Duration
	var coldWall time.Duration
	for i := 0; i < opts.Iters; i++ {
		v, cw, err := iteration(true)
		if err != nil {
			return nil, err
		}
		virtual = v // deterministic: identical every iteration
		coldWall += cw
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)

	boots := int64(opts.VMs) * int64(opts.Iters)
	res := &HostBenchResult{
		Label:             opts.Label,
		GoVersion:         runtime.Version(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Mode:              "cold",
		Cores:             opts.Cores,
		VMs:               opts.VMs,
		Iters:             opts.Iters,
		Kernel:            "lupine",
		InitrdMiB:         opts.InitrdMiB,
		WallNSPerFleet:    wall.Nanoseconds() / int64(opts.Iters),
		WallNSPerBoot:     wall.Nanoseconds() / boots,
		AllocsPerBoot:     int64(ms1.Mallocs-ms0.Mallocs) / boots,
		BytesPerBoot:      int64(ms1.TotalAlloc-ms0.TotalAlloc) / boots,
		VirtualNSPerFleet: virtual.Nanoseconds(),
	}
	if opts.Warm {
		res.Mode = "warm-fork"
		if warmBoots := boots - int64(opts.Iters); warmBoots > 0 {
			res.WallNSPerWarmBoot = (wall.Nanoseconds() - coldWall.Nanoseconds()) / warmBoots
		}
	}
	if opts.HugePage {
		res.Mode += "-hugepage"
	}
	// Process-global counters (artifact interning) ride along with the
	// per-host stage/counter merge.
	gs, gc := telemetry.HostStatsSnapshot()
	for k, v := range gs {
		stages[k] += v
	}
	for k, v := range gc {
		counters[k] += v
	}
	if len(stages) > 0 {
		res.HostStages = stages
	}
	if len(counters) > 0 {
		res.HostCounters = counters
	}
	return res, nil
}

// WriteHostBench writes the result as indented JSON.
func WriteHostBench(w io.Writer, res *HostBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// String renders a one-screen summary for the terminal.
func (r *HostBenchResult) String() string {
	s := fmt.Sprintf(
		"host bench %q (%s): %d-VM same-image fleet ×%d iters (GOMAXPROCS=%d)\n"+
			"  wall/fleet  %v\n"+
			"  wall/boot   %v\n",
		r.Label, r.Mode, r.VMs, r.Iters, r.GOMAXPROCS,
		time.Duration(r.WallNSPerFleet).Round(time.Microsecond),
		time.Duration(r.WallNSPerBoot).Round(time.Microsecond))
	if r.WallNSPerWarmBoot > 0 {
		s += fmt.Sprintf("  wall/warm-boot %v\n",
			time.Duration(r.WallNSPerWarmBoot).Round(time.Microsecond))
	}
	s += fmt.Sprintf(
		"  allocs/boot %d\n"+
			"  bytes/boot  %d\n"+
			"  virtual/fleet %v (must be invariant across host-time PRs)",
		r.AllocsPerBoot, r.BytesPerBoot,
		time.Duration(r.VirtualNSPerFleet).Round(time.Microsecond))
	return s
}

// ScalingPoint is one cell of the warm-boot scaling matrix.
type ScalingPoint struct {
	Cores             int   `json:"cores"`
	VMs               int   `json:"vms"`
	WallNSPerBoot     int64 `json:"wall_ns_per_boot"`
	WallNSPerWarmBoot int64 `json:"wall_ns_per_warm_boot"`
	VirtualNSPerFleet int64 `json:"virtual_ns_per_fleet"`
}

// ScalingResult is the scaling-curve JSON shape: fleets swept across
// hostwork pool widths and fleet sizes, in warm-fork or cold mode.
type ScalingResult struct {
	Label      string `json:"label"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Mode is "warm-fork" or "cold"; empty in files recorded before the
	// cold sweep existed (those are warm-fork).
	Mode      string         `json:"mode,omitempty"`
	Kernel    string         `json:"kernel"`
	InitrdMiB int            `json:"initrd_mib"`
	Points    []ScalingPoint `json:"points"`
}

// ScalingBench sweeps the warm-fork fleet across cores × VMs. The
// virtual makespan per fleet size must be identical at every width —
// worker count is host-side parallelism only.
func ScalingBench(label string, cores, vms []int, initrdMiB int) (*ScalingResult, error) {
	return scalingBench(label, cores, vms, initrdMiB, true)
}

// ColdScalingBench is ScalingBench for the cold path: every boot is a
// full independent cold boot of the same registered image (first boot
// measures, the rest hit the measured-image cache and the zero-copy
// loaders). The same width-invariance applies.
func ColdScalingBench(label string, cores, vms []int, initrdMiB int) (*ScalingResult, error) {
	return scalingBench(label, cores, vms, initrdMiB, false)
}

func scalingBench(label string, cores, vms []int, initrdMiB int, warm bool) (*ScalingResult, error) {
	if len(cores) == 0 {
		cores = []int{1, 2, 4, 8, 16}
	}
	if len(vms) == 0 {
		vms = []int{16, 64, 256, 1024}
	}
	mode := "cold"
	if warm {
		mode = "warm-fork"
	}
	res := &ScalingResult{
		Label:      label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Mode:       mode,
		Kernel:     "lupine",
		InitrdMiB:  4,
	}
	if initrdMiB > 0 {
		res.InitrdMiB = initrdMiB
	}
	for _, c := range cores {
		for _, v := range vms {
			hb, err := HostBench(HostBenchOptions{
				Label: label, Warm: warm, Cores: c, VMs: v, Iters: 1, Warmup: 1,
				InitrdMiB: res.InitrdMiB,
			})
			if err != nil {
				return nil, fmt.Errorf("scaling point cores=%d vms=%d: %w", c, v, err)
			}
			res.Points = append(res.Points, ScalingPoint{
				Cores:             c,
				VMs:               v,
				WallNSPerBoot:     hb.WallNSPerBoot,
				WallNSPerWarmBoot: hb.WallNSPerWarmBoot,
				VirtualNSPerFleet: hb.VirtualNSPerFleet,
			})
		}
	}
	return res, nil
}

// WriteScaling writes the scaling result as indented JSON.
func WriteScaling(w io.Writer, res *ScalingResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// String renders the scaling matrix as a small table.
func (r *ScalingResult) String() string {
	mode, col := "warm-boot", "wall/warm-boot"
	if r.Mode == "cold" {
		mode, col = "cold-boot", "wall/boot"
	}
	s := fmt.Sprintf("%s scaling %q (GOMAXPROCS=%d)\n  cores  vms    %s\n", mode, r.Label, r.GOMAXPROCS, col)
	for _, p := range r.Points {
		ns := p.WallNSPerWarmBoot
		if r.Mode == "cold" {
			ns = p.WallNSPerBoot
		}
		s += fmt.Sprintf("  %5d  %5d  %v\n", p.Cores, p.VMs,
			time.Duration(ns).Round(time.Microsecond))
	}
	return s
}
