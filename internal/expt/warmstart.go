package expt

import (
	"fmt"
	"time"

	"github.com/severifast/severifast/internal/firecracker"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/snapshot"
)

// WarmStart explores the paper's §7 future work: cold boot vs snapshot
// restore, for plain guests and for SEV guests under the §6.2 shared-key
// relaxation, plus the dedup numbers that explain why keep-alive pools of
// SEV guests pay full memory.
func WarmStart(opts Options) (*Table, error) {
	tab := &Table{
		Title: "Warm start exploration (paper §7 future work)",
		Note:  "SEV warm start requires key sharing (visible in the policy); dedup gets zero traction on ciphertext.",
		Columns: []string{
			"configuration", "cold boot", "warm restore", "speedup", "dedup across 3 snapshots",
		},
	}
	preset := kernelgen.AWS()
	art, err := kernelgen.Cached(preset)
	if err != nil {
		return nil, err
	}
	initrd := opts.initrd()

	for _, sevOn := range []bool{false, true} {
		eng := sim.NewEngine()
		host := kvm.NewHost(eng, opts.model(), opts.Seed)

		cfg := firecracker.Config{
			Preset:    preset,
			Artifacts: art,
			Initrd:    initrd,
		}
		if sevOn {
			cfg.Level = sev.SNP
			cfg.Scheme = firecracker.SchemeSEVeriFastBz
			cfg.AllowKeySharing = true
			h := componentHashes(art, initrd, preset, cfg.Scheme)
			cfg.Hashes = &h
		} else {
			cfg.Level = sev.None
			cfg.Scheme = firecracker.SchemeStock
		}

		var cold time.Duration
		var donor *kvm.Machine
		var images []*snapshot.Image
		var warm time.Duration
		var runErr error
		eng.Go("warmstart", func(p *sim.Proc) {
			res, err := firecracker.Boot(p, host, cfg)
			if err != nil {
				runErr = err
				return
			}
			cold = res.Breakdown.Total
			donor = res.Machine
			// Three snapshots of identically-booted guests for the dedup
			// measurement.
			for i := 0; i < 3; i++ {
				r, err := firecracker.Boot(p, host, cfg)
				if err != nil {
					runErr = err
					return
				}
				img, err := snapshot.Capture(p, r.Machine)
				if err != nil {
					runErr = err
					return
				}
				images = append(images, img)
			}
			// Warm restore into a fresh machine.
			start := p.Now()
			m := host.NewMachine(p, donor.Mem.Size(), donor.Level)
			if donor.Level.Encrypted() {
				m.PrepSEVHost(p)
				pol := sev.DefaultPolicy()
				pol.NoKeySharing = false
				ctx, err := host.PSP.LaunchStartShared(p, m.Mem, donor.Launch, donor.Level, pol)
				if err != nil {
					runErr = err
					return
				}
				m.Launch = ctx
			}
			if err := snapshot.Restore(p, m, images[0]); err != nil {
				runErr = err
				return
			}
			if donor.Level.Encrypted() {
				p.Sleep(host.Model.Pvalidate(len(images[0].Pages)*4096, host.PvalidatePageSize()))
			}
			warm = p.Now().Sub(start)
		})
		eng.Run()
		if runErr != nil {
			return nil, runErr
		}

		stats := snapshot.Dedup(images...)
		name := "stock-fc (no sev)"
		shared := fmt.Sprintf("%.0f%% shared", 100*stats.SharedFraction())
		if sevOn {
			name = "severifast-snp (shared key)"
			shared = fmt.Sprintf("%.0f%% of private pages shared", 100*stats.PrivateSharedFraction())
		}
		tab.AddRow(name, ms(cold), ms(warm),
			fmt.Sprintf("%.1fx", float64(cold)/float64(warm)), shared)
	}
	return tab, nil
}
