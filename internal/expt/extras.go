package expt

import (
	"fmt"

	"github.com/severifast/severifast/internal/firecracker"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/sim"
)

// MemoryFootprint reproduces §6.3: the extra per-guest memory SEV costs
// the VMM (~16 KiB), compared to the binary-size delta (~50 KiB, a
// constant of the modified monitor reported here for completeness).
func MemoryFootprint(opts Options) (*Table, error) {
	tab := &Table{
		Title:   "Memory footprint (paper §6.3)",
		Columns: []string{"metric", "value"},
	}
	out, err := bootOnce(opts.model(), kernelgen.AWS(), opts.initrd(), schemeSEVeriFast, opts.Seed, false)
	if err != nil {
		return nil, err
	}
	stockOut, err := bootOnce(opts.model(), kernelgen.AWS(), opts.initrd(), schemeStock, opts.Seed, false)
	if err != nil {
		return nil, err
	}
	sevMeta := out.FC.Machine.Mem.SEVMetadataBytes()
	stockMeta := stockOut.FC.Machine.Mem.SEVMetadataBytes()
	tab.AddRow("per-guest SEV metadata (SEVeriFast)", fmt.Sprintf("%d B", sevMeta))
	tab.AddRow("per-guest SEV metadata (stock FC)", fmt.Sprintf("%d B", stockMeta))
	tab.AddRow("delta", fmt.Sprintf("%d B (paper: ~16 KiB)", sevMeta-stockMeta))
	tab.AddRow("monitor binary growth", "~50 KiB (paper §6.3; constant of the port)")
	s := out.FC.Machine.Mem.Stats()
	tab.AddRow("resident guest pages", fmt.Sprintf("%d (%d aliased, %d private)",
		s.ResidentPages, s.AliasedPages, s.PrivatePages))
	return tab, nil
}

// AblationOutOfBandHashing reproduces the §4.3 design point: in-band
// hashing (VMM hashes kernel+initrd at launch) vs the out-of-band hash
// file, per preset.
func AblationOutOfBandHashing(opts Options) (*Table, error) {
	tab := &Table{
		Title:   "Ablation: out-of-band vs in-band component hashing (paper §4.3)",
		Columns: []string{"kernel", "out-of-band total", "in-band total", "saved"},
	}
	for _, preset := range opts.presets() {
		oob, err := bootOnce(opts.model(), preset, opts.initrd(), schemeSEVeriFast, opts.Seed, false)
		if err != nil {
			return nil, err
		}
		in, err := bootVariant(opts, preset, func(c *firecracker.Config) { c.Hashes = nil })
		if err != nil {
			return nil, err
		}
		tab.AddRow(preset.Name, ms(oob.b().Total), ms(in.b().Total), ms(in.b().Total-oob.b().Total))
	}
	return tab, nil
}

// AblationPreEncryptPageTables reproduces the Fig. 7 decision for page
// tables: verifier-generated (SEVeriFast) vs VMM-pre-encrypted.
func AblationPreEncryptPageTables(opts Options) (*Table, error) {
	tab := &Table{
		Title:   "Ablation: generate vs pre-encrypt page tables (paper Fig. 7)",
		Columns: []string{"kernel", "generate (total)", "pre-encrypt (total)", "preenc span generate", "preenc span pre-encrypt"},
	}
	for _, preset := range opts.presets() {
		gen, err := bootOnce(opts.model(), preset, opts.initrd(), schemeSEVeriFast, opts.Seed, false)
		if err != nil {
			return nil, err
		}
		pre, err := bootVariant(opts, preset, func(c *firecracker.Config) { c.PreEncryptPageTables = true })
		if err != nil {
			return nil, err
		}
		tab.AddRow(preset.Name, ms(gen.b().Total), ms(pre.b().Total),
			ms(gen.b().PreEncryption), ms(pre.b().PreEncryption))
	}
	return tab, nil
}

// AblationHugePages reproduces the §6.1 THP observation: pvalidate with
// 2 MiB vs 4 KiB pages for a 256 MiB guest.
func AblationHugePages(opts Options) (*Table, error) {
	tab := &Table{
		Title:   "Ablation: pvalidate granularity (paper §6.1)",
		Columns: []string{"kernel", "thp (2MiB) verification", "4KiB verification", "delta"},
	}
	for _, preset := range opts.presets() {
		with, err := bootTHP(opts, preset, true)
		if err != nil {
			return nil, err
		}
		without, err := bootTHP(opts, preset, false)
		if err != nil {
			return nil, err
		}
		tab.AddRow(preset.Name, ms(with.b().BootVerification), ms(without.b().BootVerification),
			ms(without.b().BootVerification-with.b().BootVerification))
	}
	return tab, nil
}

// bootVariant boots SEVeriFast-bz with a config mutation applied.
func bootVariant(opts Options, preset kernelgen.Preset, mutate func(*firecracker.Config)) (*bootOutcome, error) {
	art, err := kernelgen.Cached(preset)
	if err != nil {
		return nil, err
	}
	initrd := opts.initrd()
	eng := sim.NewEngine()
	host := kvm.NewHost(eng, opts.model(), opts.Seed)
	h := componentHashes(art, initrd, preset, firecracker.SchemeSEVeriFastBz)
	cfg := firecracker.Config{
		Preset:    preset,
		Artifacts: art,
		Initrd:    initrd,
		Level:     schemeSEVeriFast.level,
		Scheme:    firecracker.SchemeSEVeriFastBz,
		Hashes:    &h,
	}
	mutate(&cfg)
	var res *firecracker.Result
	var bootErr error
	eng.Go("boot", func(p *sim.Proc) { res, bootErr = firecracker.Boot(p, host, cfg) })
	eng.Run()
	if bootErr != nil {
		return nil, bootErr
	}
	return &bootOutcome{FC: res}, nil
}

func bootTHP(opts Options, preset kernelgen.Preset, thp bool) (*bootOutcome, error) {
	art, err := kernelgen.Cached(preset)
	if err != nil {
		return nil, err
	}
	initrd := opts.initrd()
	eng := sim.NewEngine()
	host := kvm.NewHost(eng, opts.model(), opts.Seed)
	host.THP = thp
	h := componentHashes(art, initrd, preset, firecracker.SchemeSEVeriFastBz)
	cfg := firecracker.Config{
		Preset:    preset,
		Artifacts: art,
		Initrd:    initrd,
		Level:     schemeSEVeriFast.level,
		Scheme:    firecracker.SchemeSEVeriFastBz,
		Hashes:    &h,
	}
	var res *firecracker.Result
	var bootErr error
	eng.Go("boot", func(p *sim.Proc) { res, bootErr = firecracker.Boot(p, host, cfg) })
	eng.Run()
	if bootErr != nil {
		return nil, bootErr
	}
	return &bootOutcome{FC: res}, nil
}
