package expt

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/trace"
)

// Fig9Data carries the CDF experiment's distributions alongside the
// summary table, so callers can emit the full curves.
type Fig9Data struct {
	Table *Table
	// CDFs maps "<preset>/<scheme>" to the boot-time distribution
	// (including attestation where the kernel supports it).
	CDFs map[string]trace.Series
}

// Fig9 reproduces the end-to-end comparison: repeated serial boots of
// SEVeriFast vs QEMU/OVMF per kernel, measured from VMM exec to completed
// attestation (Lupine, which lacks networking, is measured to init).
func Fig9(opts Options) (*Fig9Data, error) {
	data := &Fig9Data{
		Table: &Table{
			Title: fmt.Sprintf("Figure 9: end-to-end boot time, SEVeriFast vs QEMU/OVMF (%d runs)", opts.runs()),
			Note:  "Boot time from VMM exec to remote attestation completed (to init for lupine).",
			Columns: []string{
				"kernel", "scheme", "mean", "stddev", "p50", "p99", "reduction",
			},
		},
		CDFs: make(map[string]trace.Series),
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	for _, preset := range opts.presets() {
		var qemuMean time.Duration
		for _, sc := range []scheme{schemeQEMU, schemeSEVeriFast} {
			series, err := bootSeries(opts, preset, sc, rng)
			if err != nil {
				return nil, err
			}
			data.CDFs[preset.Name+"/"+sc.name] = series
			mean := series.Mean()
			reduction := "-"
			if sc.qemu {
				qemuMean = mean
			} else if qemuMean > 0 {
				reduction = fmt.Sprintf("%.1f%%", 100*(1-float64(mean)/float64(qemuMean)))
			}
			data.Table.AddRow(preset.Name, sc.name, ms(mean), ms(series.Stddev()),
				ms(series.Percentile(50)), ms(series.Percentile(99)), reduction)
		}
	}
	return data, nil
}

// bootSeries runs opts.Runs serial boots and collects end-to-end times.
func bootSeries(opts Options, preset kernelgen.Preset, sc scheme, rng *rand.Rand) (trace.Series, error) {
	var series trace.Series
	for run := 0; run < opts.runs(); run++ {
		model := jitterModel(opts.model(), rng, opts.Jitter)
		p := jitterPreset(preset, rng, opts.Jitter)
		out, err := bootOnce(model, p, opts.initrd(), sc, opts.Seed+int64(run), true)
		if err != nil {
			return nil, err
		}
		series = append(series, out.b().TotalWithAttest)
	}
	return series, nil
}

// Fig10 reproduces the pre-encryption / firmware-runtime table from the
// same configurations as Fig. 9.
func Fig10(opts Options) (*Table, error) {
	tab := &Table{
		Title:   "Figure 10: boot time breakdown, SEVeriFast vs QEMU",
		Note:    "Firmware column: OVMF PI phases + verification for QEMU; boot verification for SEVeriFast.",
		Columns: []string{"config", "pre-encryption", "firmware/boot verification"},
	}
	// QEMU rows first, then SEVeriFast, matching the paper's layout.
	for _, sc := range []scheme{schemeQEMU, schemeSEVeriFast} {
		for _, preset := range opts.presets() {
			out, err := bootOnce(opts.model(), preset, opts.initrd(), sc, opts.Seed, false)
			if err != nil {
				return nil, err
			}
			b := out.b()
			fw := b.BootVerification
			if sc.qemu {
				fw = b.Firmware
			}
			tab.AddRow(fmt.Sprintf("%s %s", sc.name, preset.Name), ms(b.PreEncryption), ms(fw))
		}
	}
	return tab, nil
}

// Fig11 reproduces the stacked breakdown: stock Firecracker vs SEVeriFast
// (bzImage) vs SEVeriFast (vmlinux), per kernel, without attestation.
func Fig11(opts Options) (*Table, error) {
	tab := &Table{
		Title: "Figure 11: boot breakdown — stock FC vs SEVeriFast bz vs SEVeriFast vmlinux",
		Note:  "No attestation (the monitors' attestation paths are identical).",
		Columns: []string{
			"kernel", "scheme", "vmm", "boot verification", "bootstrap loader", "linux boot", "total",
		},
	}
	for _, preset := range opts.presets() {
		for _, sc := range []scheme{schemeStock, schemeSEVeriFast, schemeSEVFVmlinux} {
			out, err := bootOnce(opts.model(), preset, opts.initrd(), sc, opts.Seed, false)
			if err != nil {
				return nil, err
			}
			b := out.b()
			tab.AddRow(preset.Name, sc.name, ms(b.VMM), ms(b.BootVerification),
				ms(b.BootstrapLoader), ms(b.LinuxBoot), ms(b.Total))
		}
	}
	return tab, nil
}
