package expt

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/severifast/severifast/internal/kernelgen"
)

// fastOpts keeps unit tests quick: lupine only, small initrd, few runs.
func fastOpts() Options {
	return Options{
		Runs:       3,
		Seed:       7,
		Presets:    []kernelgen.Preset{kernelgen.Lupine()},
		InitrdSize: 2 << 20,
	}
}

// parse "123.45ms" back to a duration.
func parseMS(t *testing.T, s string) time.Duration {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return time.Duration(v * float64(time.Millisecond))
}

func findRow(t *testing.T, tab *Table, prefix ...string) []string {
	t.Helper()
	for _, row := range tab.Rows {
		ok := true
		for i, p := range prefix {
			if i >= len(row) || row[i] != p {
				ok = false
				break
			}
		}
		if ok {
			return row
		}
	}
	t.Fatalf("table %q has no row %v:\n%s", tab.Title, prefix, tab)
	return nil
}

func TestFig3VerifierIsSmallSlice(t *testing.T) {
	tab, err := Fig3(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	total := parseMS(t, findRow(t, tab, "TOTAL")[1])
	verify := parseMS(t, findRow(t, tab, "boot verifier")[1])
	dxe := parseMS(t, findRow(t, tab, "DXE")[1])
	if total < 3*time.Second {
		t.Fatalf("OVMF total %v, want >3s", total)
	}
	if float64(verify)/float64(total) > 0.05 {
		t.Fatalf("verifier %v is not a small slice of %v", verify, total)
	}
	if dxe < time.Second {
		t.Fatalf("DXE %v should dominate the firmware phases", dxe)
	}
}

func TestFig4LinearAndProhibitive(t *testing.T) {
	tab, err := Fig4(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// 23 MiB (the Lupine vmlinux) must land near the paper's 5.65 s.
	row := findRow(t, tab, "23.0M")
	snp := parseMS(t, row[3])
	if snp < 5300*time.Millisecond || snp > 6000*time.Millisecond {
		t.Fatalf("pre-encrypting 23 MiB took %v, paper says 5.65 s", snp)
	}
	// Linearity: value at 43 MiB ~= (43/23)x value at 23 MiB.
	row43 := findRow(t, tab, "43.0M")
	snp43 := parseMS(t, row43[3])
	ratio := float64(snp43) / float64(snp)
	if ratio < 1.7 || ratio > 2.1 {
		t.Fatalf("43/23 MiB ratio %.2f, want ~1.87 (linear)", ratio)
	}
}

func TestFig5LZ4KernelWinsRawInitrdWins(t *testing.T) {
	tab, err := Fig5(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	total := func(name string) time.Duration {
		return parseMS(t, findRow(t, tab, name)[5])
	}
	lz := total("lupine/bzImage-lz4")
	vm := total("lupine/vmlinux")
	gz := total("lupine/bzImage-gzip")
	if !(lz < vm && lz < gz) {
		t.Fatalf("LZ4 bzImage (%v) must beat vmlinux (%v) and gzip (%v)", lz, vm, gz)
	}
	raw := total("initrd/raw")
	lzInitrd := total("initrd/lz4")
	if raw >= lzInitrd {
		t.Fatalf("raw initrd (%v) must beat compressed (%v); binaries compress poorly", raw, lzInitrd)
	}
}

func TestFig7Table(t *testing.T) {
	tab, err := Fig7(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tab.Rows))
	}
	if findRow(t, tab, "page tables")[4] != "generate" {
		t.Fatal("page tables must be generated, not pre-encrypted")
	}
	for _, name := range []string{"mptable", "cmdline", "boot_params"} {
		if findRow(t, tab, name)[4] != "pre-encrypt" {
			t.Fatalf("%s must be pre-encrypted", name)
		}
	}
}

func TestFig8Sizes(t *testing.T) {
	tab, err := Fig8(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	row := findRow(t, tab, "lupine")
	if row[1] != "23.0M" {
		t.Fatalf("lupine vmlinux cell %q", row[1])
	}
}

// TestFig9HeadlineReduction is the paper's abstract claim: SEVeriFast
// boots SEV VMs 86-93% faster than the QEMU/OVMF baseline. Our simulator
// must land in (or very near) that band.
func TestFig9HeadlineReduction(t *testing.T) {
	opts := fastOpts()
	opts.Runs = 2
	data, err := Fig9(opts)
	if err != nil {
		t.Fatal(err)
	}
	row := findRow(t, data.Table, "lupine", "severifast")
	red := row[6]
	val, err := strconv.ParseFloat(strings.TrimSuffix(red, "%"), 64)
	if err != nil {
		t.Fatalf("reduction cell %q", red)
	}
	if val < 83 || val > 97 {
		t.Fatalf("boot-time reduction %.1f%%, paper band is 86-93%%", val)
	}
	if len(data.CDFs["lupine/severifast"]) != 2 {
		t.Fatal("missing CDF series")
	}
}

func TestFig9JitterSpreadsCDF(t *testing.T) {
	opts := fastOpts()
	opts.Runs = 4
	opts.Jitter = true
	data, err := Fig9(opts)
	if err != nil {
		t.Fatal(err)
	}
	s := data.CDFs["lupine/severifast"]
	if s.Stddev() == 0 {
		t.Fatal("jittered runs have zero variance")
	}
}

func TestFig10PreEncryptionGap(t *testing.T) {
	tab, err := Fig10(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	q := parseMS(t, findRow(t, tab, "qemu-ovmf lupine")[1])
	s := parseMS(t, findRow(t, tab, "severifast lupine")[1])
	// Paper: 287.9 ms vs 8.07 ms — a ~97% reduction.
	if red := 1 - float64(s)/float64(q); red < 0.90 {
		t.Fatalf("pre-encryption reduction %.2f, paper says ~0.97 (q=%v s=%v)", red, q, s)
	}
	qf := parseMS(t, findRow(t, tab, "qemu-ovmf lupine")[2])
	sf := parseMS(t, findRow(t, tab, "severifast lupine")[2])
	// Paper: 3168 ms vs 20.4 ms firmware runtime — ~98%.
	if red := 1 - float64(sf)/float64(qf); red < 0.95 {
		t.Fatalf("firmware reduction %.2f, paper says ~0.98", red)
	}
}

func TestFig11ShapeHolds(t *testing.T) {
	tab, err := Fig11(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	stock := parseMS(t, findRow(t, tab, "lupine", "stock-fc")[6])
	bz := parseMS(t, findRow(t, tab, "lupine", "severifast")[6])
	vm := parseMS(t, findRow(t, tab, "lupine", "severifast-vmlinux")[6])
	// SEV costs real time: paper says ~4x stock for AWS; allow 2-6x here.
	ratio := float64(bz) / float64(stock)
	if ratio < 2 || ratio > 6 {
		t.Fatalf("SEVeriFast/stock ratio %.2f, paper says ~4x", ratio)
	}
	// The bzImage flavour must win against vmlinux under SEV.
	if bz >= vm {
		t.Fatalf("bzImage (%v) not faster than vmlinux (%v)", bz, vm)
	}
	// Stock boots in tens of ms.
	if stock > 80*time.Millisecond {
		t.Fatalf("stock boot %v", stock)
	}
}

func TestFig12LinearForSEVFlatForStock(t *testing.T) {
	opts := fastOpts()
	opts.ConcurrencyPoints = []int{1, 4, 8}
	tab, err := Fig12(opts)
	if err != nil {
		t.Fatal(err)
	}
	sevf1 := parseMS(t, findRow(t, tab, "1")[1])
	sevf8 := parseMS(t, findRow(t, tab, "8")[1])
	stock1 := parseMS(t, findRow(t, tab, "1")[3])
	stock8 := parseMS(t, findRow(t, tab, "8")[3])
	if sevf8-sevf1 < 100*time.Millisecond {
		t.Fatalf("SEV series grew only %v from 1 to 8 guests; PSP serialization missing", sevf8-sevf1)
	}
	if stock8-stock1 > 5*time.Millisecond {
		t.Fatalf("non-SEV series grew %v; must stay flat", stock8-stock1)
	}
	// SEVeriFast stays under QEMU even under contention.
	qemu8 := parseMS(t, findRow(t, tab, "8")[2])
	if sevf8 >= qemu8 {
		t.Fatalf("SEVeriFast at 8 (%v) not below QEMU at 8 (%v)", sevf8, qemu8)
	}
}

func TestConcurrencySlopeNearPSPWork(t *testing.T) {
	opts := fastOpts()
	slope, err := ConcurrencySlope(opts, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Per-guest PSP work: guest init (~20ms) + launch commands (~10ms).
	if slope < 20*time.Millisecond || slope > 45*time.Millisecond {
		t.Fatalf("per-VM slope %v, want ~30ms (the guest's total PSP time)", slope)
	}
}

func TestMemoryFootprintTable(t *testing.T) {
	tab, err := MemoryFootprint(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 4 {
		t.Fatalf("footprint table too short:\n%s", tab)
	}
}

func TestAblationOutOfBandHashing(t *testing.T) {
	tab, err := AblationOutOfBandHashing(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	saved := parseMS(t, findRow(t, tab, "lupine")[3])
	if saved <= 0 {
		t.Fatalf("out-of-band hashing saved %v; must be positive", saved)
	}
}

func TestAblationPreEncryptPageTables(t *testing.T) {
	tab, err := AblationPreEncryptPageTables(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	row := findRow(t, tab, "lupine")
	gen := parseMS(t, row[3])
	pre := parseMS(t, row[4])
	if pre <= gen {
		t.Fatal("pre-encrypting page tables must cost more pre-encryption time")
	}
}

func TestAblationHugePages(t *testing.T) {
	tab, err := AblationHugePages(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	delta := parseMS(t, findRow(t, tab, "lupine")[3])
	if delta < 50*time.Millisecond {
		t.Fatalf("4 KiB pvalidate penalty %v, paper says ~60ms for 256 MiB", delta)
	}
}

func TestRootOfTrustTable(t *testing.T) {
	tab, err := RootOfTrust(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	s := tab.String()
	if !strings.Contains(s, "## T") || !strings.Contains(s, "a  bb") {
		t.Fatalf("render:\n%s", s)
	}
	csv := tab.CSV()
	if csv != "a,bb\n1,2\n" {
		t.Fatalf("csv: %q", csv)
	}
}

func TestWarmStartExperiment(t *testing.T) {
	tab, err := WarmStart(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// Both configurations must warm-start faster than they cold-boot.
	for _, row := range tab.Rows {
		cold := parseMS(t, row[1])
		warm := parseMS(t, row[2])
		if warm >= cold {
			t.Fatalf("%s: warm %v >= cold %v", row[0], warm, cold)
		}
	}
	// Dedup: plain guests share most pages, SEV guests none.
	plain := findRow(t, tab, "stock-fc (no sev)")
	sevRow := findRow(t, tab, "severifast-snp (shared key)")
	if plain[4] == "0% shared" {
		t.Fatal("plain snapshots should dedup")
	}
	if sevRow[4] != "0% of private pages shared" {
		t.Fatalf("SEV private pages deduped: %s", sevRow[4])
	}
}

func TestServerlessExperiment(t *testing.T) {
	opts := fastOpts()
	tab, err := Serverless(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	plain := parseMS(t, findRow(t, tab, "plain")[3])
	cold := parseMS(t, findRow(t, tab, "sev-cold")[3])
	warm := parseMS(t, findRow(t, tab, "sev-warm")[3])
	if !(plain < warm && warm < cold) {
		t.Fatalf("p99 startup ordering wrong: plain %v, warm %v, cold %v", plain, warm, cold)
	}
}
