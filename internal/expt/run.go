package expt

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/severifast/severifast/internal/attest"
	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/firecracker"
	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/measure"
	"github.com/severifast/severifast/internal/qemu"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/trace"
	"github.com/severifast/severifast/internal/verifier"
)

// initrdCache shares the generated attestation initrd across experiments.
var initrdCache sync.Map // key {seed,size} -> []byte

type initrdKey struct {
	seed int64
	size int
}

func (o Options) initrd() []byte {
	k := initrdKey{o.Seed, o.initrdSize()}
	if v, ok := initrdCache.Load(k); ok {
		return v.([]byte)
	}
	b := kernelgen.BuildInitrd(o.Seed, o.initrdSize())
	actual, _ := initrdCache.LoadOrStore(k, b)
	return actual.([]byte)
}

// scheme identifies one boot configuration under test.
type scheme struct {
	name  string
	level sev.Level
	kind  firecracker.Scheme // ignored for qemuFlow
	qemu  bool
}

var (
	schemeStock       = scheme{name: "stock-fc", level: sev.None, kind: firecracker.SchemeStock}
	schemeSEVeriFast  = scheme{name: "severifast", level: sev.SNP, kind: firecracker.SchemeSEVeriFastBz}
	schemeSEVFVmlinux = scheme{name: "severifast-vmlinux", level: sev.SNP, kind: firecracker.SchemeSEVeriFastVmlinux}
	schemeQEMU        = scheme{name: "qemu-ovmf", level: sev.SNP, qemu: true}
)

// bootOnce runs one boot of (preset, scheme) on a fresh host and returns
// its breakdown-bearing result. withAttest wires a guest owner that
// expects exactly this configuration's launch digest.
func bootOnce(model costmodel.Model, preset kernelgen.Preset, initrd []byte, sc scheme, seed int64, withAttest bool) (*bootOutcome, error) {
	art, err := kernelgen.Cached(preset)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	host := kvm.NewHost(eng, model, seed)

	attestor := buildAttestor(host, preset, art, initrd, sc, seed, withAttest)

	var out *bootOutcome
	var bootErr error
	eng.Go("boot", func(p *sim.Proc) {
		out, bootErr = runBootProc(p, host, preset, art, initrd, sc, attestor)
	})
	eng.Run()
	return out, bootErr
}

type bootOutcome struct {
	FC   *firecracker.Result
	QEMU *qemu.Result
}

// b returns the boot's phase breakdown regardless of monitor.
func (o *bootOutcome) b() trace.Breakdown {
	if o.QEMU != nil {
		return o.QEMU.Breakdown
	}
	return o.FC.Breakdown
}

// runBootProc executes one boot on the calling process.
func runBootProc(p *sim.Proc, host *kvm.Host, preset kernelgen.Preset, art *kernelgen.Artifacts, initrd []byte, sc scheme, attestor attest2) (*bootOutcome, error) {
	if sc.qemu {
		res, err := qemu.Boot(p, host, qemu.Config{
			Preset:    preset,
			Artifacts: art,
			Initrd:    initrd,
			Level:     sc.level,
			Attestor:  attestor,
		})
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", sc.name, preset.Name, err)
		}
		return &bootOutcome{QEMU: res}, nil
	}
	cfg := firecracker.Config{
		Preset:    preset,
		Artifacts: art,
		Initrd:    initrd,
		Level:     sc.level,
		Scheme:    sc.kind,
		Attestor:  attestor,
	}
	if sc.level.Encrypted() {
		// SEVeriFast always runs with the out-of-band hash file (§4.3);
		// the in-band ablation overrides this.
		h := componentHashes(art, initrd, preset, sc.kind)
		cfg.Hashes = &h
	}
	res, err := firecracker.Boot(p, host, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", sc.name, preset.Name, err)
	}
	return &bootOutcome{FC: res}, nil
}

func componentHashes(art *kernelgen.Artifacts, initrd []byte, preset kernelgen.Preset, kind firecracker.Scheme) measure.ComponentHashes {
	kernel := art.BzImageLZ4
	if kind == firecracker.SchemeSEVeriFastVmlinux {
		kernel = art.VMLinux
	}
	return measure.HashComponents(kernel, initrd, preset.Cmdline)
}

// attest2 is the shared Attestor shape of both monitors.
type attest2 interface {
	Attest(proc *sim.Proc, m *kvm.Machine) error
}

// buildAttestor returns an in-process guest owner primed with the expected
// digest for this exact configuration, or nil when attestation is off or
// impossible (Lupine has no networking, §6.1).
func buildAttestor(host *kvm.Host, preset kernelgen.Preset, art *kernelgen.Artifacts, initrd []byte, sc scheme, seed int64, on bool) attest2 {
	if !on || !preset.Networking || !sc.level.Encrypted() {
		return nil
	}
	secret := []byte("volume-key-" + preset.Name)
	owner := attest.NewOwner(host.PSP.VerificationKey(), secret, rand.New(rand.NewSource(seed^0xA77E57)))
	if sc.qemu {
		h := measure.HashComponents(art.BzImageLZ4, initrd, preset.Cmdline)
		owner.Allow(qemu.ExpectedDigest(1, sc.level, h))
	} else {
		h := componentHashes(art, initrd, preset, sc.kind)
		expected, err := measure.ExpectedDigest(measure.Config{
			Verifier: verifier.Image(1),
			Hashes:   h,
			Cmdline:  preset.Cmdline,
			VCPUs:    1,
			MemSize:  256 << 20,
			Level:    sc.level,
			Policy:   sev.DefaultPolicy(),
		})
		if err != nil {
			panic("expt: expected digest: " + err.Error())
		}
		owner.Allow(expected)
	}
	return &attest.InProcess{Owner: owner, AgentSeed: seed, WantSecret: secret}
}
