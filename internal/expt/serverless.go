package expt

import (
	"fmt"
	"time"

	"github.com/severifast/severifast/internal/kernelgen"
	"github.com/severifast/severifast/internal/kvm"
	"github.com/severifast/severifast/internal/serverless"
	"github.com/severifast/severifast/internal/sim"
)

// Serverless runs the function-platform trace the paper's introduction
// motivates: Poisson arrivals into a keep-alive pool, for plain microVMs,
// confidential cold-boot-only, and the §7 shared-key warm pool. The
// numbers show why the paper's cold-start optimization matters: every
// pool miss pays the full boot path, and under SEV those misses also
// contend on the PSP.
func Serverless(opts Options) (*Table, error) {
	tab := &Table{
		Title: "Serverless trace: Poisson arrivals into a keep-alive pool (AWS kernel)",
		Note:  "Startup latency is arrival-to-function-start; cold fraction is pool misses.",
		Columns: []string{
			"platform", "cold fraction", "startup p50", "startup p99", "e2e p99",
		},
	}
	w := serverless.Workload{
		Invocations:      60,
		MeanInterarrival: 400 * time.Millisecond,
		ExecTime:         100 * time.Millisecond,
		Seed:             opts.Seed,
	}
	for _, mode := range []serverless.Mode{serverless.ModePlain, serverless.ModeSEVCold, serverless.ModeSEVWarm} {
		eng := sim.NewEngine()
		host := kvm.NewHost(eng, opts.model(), opts.Seed)
		stats, err := serverless.Run(eng, host, serverless.Config{
			Mode:      mode,
			Preset:    kernelgen.AWS(),
			InitrdLen: opts.initrdSize(),
			KeepAlive: 2 * time.Second,
		}, w)
		if err != nil {
			return nil, err
		}
		tab.AddRow(mode.String(),
			fmt.Sprintf("%.0f%%", 100*stats.ColdFraction()),
			ms(stats.StartupOnly.Percentile(50)),
			ms(stats.StartupOnly.Percentile(99)),
			ms(stats.Latency.Percentile(99)))
	}
	return tab, nil
}
