// Package expt is the experiment harness: one runner per table and figure
// in the paper's evaluation (plus the motivation figures of §3 and the
// ablations DESIGN.md calls out). Each runner assembles the workload,
// drives the simulator, and returns a Table whose rows mirror what the
// paper plots.
//
// Determinism note: the simulator is deterministic, so repeated boots of
// the same configuration take identical virtual time. For the CDF
// experiment (Fig. 9) an optional, seeded host-noise model perturbs the
// process-start and kernel-init costs per run, standing in for the OS
// scheduling noise that spreads the paper's distributions.
package expt

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/kernelgen"
)

// Options configures a harness run.
type Options struct {
	// Model is the cost model; zero value means costmodel.Default().
	Model *costmodel.Model
	// Runs is the boots per configuration for distribution experiments
	// (the paper uses 100).
	Runs int
	// Seed drives all randomness (noise, artifact identities).
	Seed int64
	// Jitter enables the host-noise model for CDF spread.
	Jitter bool
	// Presets limits the kernel set (default: all three).
	Presets []kernelgen.Preset
	// InitrdSize is the attestation initrd size (default 16 MiB; tests
	// shrink it for speed).
	InitrdSize int
	// ConcurrencyPoints overrides Fig. 12's sweep (default 1..50).
	ConcurrencyPoints []int
}

func (o Options) model() costmodel.Model {
	if o.Model != nil {
		return *o.Model
	}
	return costmodel.Default()
}

func (o Options) runs() int {
	if o.Runs <= 0 {
		return 100
	}
	return o.Runs
}

func (o Options) presets() []kernelgen.Preset {
	if len(o.Presets) > 0 {
		return o.Presets
	}
	return kernelgen.Presets()
}

func (o Options) initrdSize() int {
	if o.InitrdSize > 0 {
		return o.InitrdSize
	}
	return kernelgen.DefaultInitrdSize
}

func (o Options) concurrencyPoints() []int {
	if len(o.ConcurrencyPoints) > 0 {
		return o.ConcurrencyPoints
	}
	return []int{1, 2, 5, 10, 20, 30, 40, 50}
}

// jitterModel perturbs host-noise-sensitive costs for one run.
func jitterModel(m costmodel.Model, rng *rand.Rand, on bool) costmodel.Model {
	if !on {
		return m
	}
	j := func(d time.Duration, frac float64) time.Duration {
		return time.Duration(float64(d) * (1 + frac*(rng.Float64()*2-1)))
	}
	m.VMMProcessStart = j(m.VMMProcessStart, 0.25)
	m.QEMUProcessStart = j(m.QEMUProcessStart, 0.15)
	m.VMMSetupMisc = j(m.VMMSetupMisc, 0.25)
	m.PSPCommandOverhead = j(m.PSPCommandOverhead, 0.10)
	return m
}

// jitterPreset perturbs the kernel-init time for one run.
func jitterPreset(p kernelgen.Preset, rng *rand.Rand, on bool) kernelgen.Preset {
	if !on {
		return p
	}
	p.LinuxBootBase = time.Duration(float64(p.LinuxBootBase) * (1 + 0.06*(rng.Float64()*2-1)))
	return p
}

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders an aligned text table.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&sb, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Columns, ","))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ms formats a duration as fractional milliseconds, the paper's unit.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}

// mib formats a byte count in MiB.
func mib(n int) string { return fmt.Sprintf("%.1fM", float64(n)/(1<<20)) }
