package kvm

import (
	"testing"
	"time"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
)

func TestPvalidatePageSizeFollowsTHP(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, costmodel.Unit(), 1)
	if !h.THP {
		t.Fatal("THP must default on (paper §6.1 runs with huge pages)")
	}
	if h.PvalidatePageSize() != 2<<20 {
		t.Fatalf("THP page size %d", h.PvalidatePageSize())
	}
	h.THP = false
	if h.PvalidatePageSize() != 4096 {
		t.Fatalf("non-THP page size %d", h.PvalidatePageSize())
	}
}

func TestDebugEventCostsVCExitOnlyForES(t *testing.T) {
	model := costmodel.Unit()
	for _, tc := range []struct {
		level sev.Level
		cost  time.Duration
	}{
		{sev.None, 0},
		{sev.SEV, 0},
		{sev.ES, model.VCExit},
		{sev.SNP, model.VCExit},
	} {
		eng := sim.NewEngine()
		h := NewHost(eng, model, 1)
		var elapsed time.Duration
		eng.Go("vcpu", func(p *sim.Proc) {
			m := h.NewMachine(p, 1<<20, tc.level)
			start := p.Now()
			m.DebugEvent(p, sev.EvGuestEntry)
			elapsed = p.Now().Sub(start)
		})
		eng.Run()
		if elapsed != tc.cost {
			t.Errorf("%v: debug event cost %v, want %v", tc.level, elapsed, tc.cost)
		}
	}
}

func TestDebugEventStampsTimeline(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, costmodel.Unit(), 1)
	eng.Go("vcpu", func(p *sim.Proc) {
		m := h.NewMachine(p, 1<<20, sev.None)
		p.Sleep(5 * time.Millisecond)
		m.DebugEvent(p, sev.EvKernelEntry)
		at, ok := m.Timeline.EventAt(sev.EvKernelEntry)
		if !ok || at != sim.Time(5*time.Millisecond) {
			t.Errorf("event at %v, ok=%v", at, ok)
		}
	})
	eng.Run()
}

func TestPrepSEVHostChargesPSP(t *testing.T) {
	model := costmodel.Unit()
	eng := sim.NewEngine()
	h := NewHost(eng, model, 1)
	before := h.PSP.Resource().BusyTime()
	eng.Go("vmm", func(p *sim.Proc) {
		m := h.NewMachine(p, 1<<20, sev.SNP)
		m.PrepSEVHost(p)
	})
	eng.Run()
	if got := h.PSP.Resource().BusyTime() - before; got != model.PSPGuestInit {
		t.Fatalf("PSP busy for %v during prep, want %v", got, model.PSPGuestInit)
	}
}

func TestStartLaunchAttachesRMPOnlyForSNP(t *testing.T) {
	for _, level := range []sev.Level{sev.SEV, sev.ES, sev.SNP} {
		eng := sim.NewEngine()
		h := NewHost(eng, costmodel.Unit(), 1)
		eng.Go("vmm", func(p *sim.Proc) {
			m := h.NewMachine(p, 1<<20, level)
			pol := sev.DefaultPolicy()
			if level < sev.ES {
				pol.ESRequired = false
			}
			if err := m.StartLaunch(p, pol); err != nil {
				t.Error(err)
				return
			}
			if m.Launch == nil {
				t.Error("no launch context")
			}
			table, _ := m.Mem.RMP()
			if level.HasRMP() && table == nil {
				t.Errorf("%v: no RMP attached", level)
			}
			if !level.HasRMP() && table != nil {
				t.Errorf("%v: RMP attached without SNP", level)
			}
		})
		eng.Run()
	}
}

func TestMachinesGetDistinctRMPs(t *testing.T) {
	// The RMP is indexed by system-physical address; two guests' pages
	// never collide. Modeled as one table per guest.
	eng := sim.NewEngine()
	h := NewHost(eng, costmodel.Unit(), 1)
	eng.Go("vmm", func(p *sim.Proc) {
		m1 := h.NewMachine(p, 1<<20, sev.SNP)
		m2 := h.NewMachine(p, 1<<20, sev.SNP)
		if err := m1.StartLaunch(p, sev.DefaultPolicy()); err != nil {
			t.Error(err)
			return
		}
		if err := m2.StartLaunch(p, sev.DefaultPolicy()); err != nil {
			t.Error(err)
			return
		}
		if m1.RMP == m2.RMP {
			t.Error("two guests share an RMP table slice")
		}
		// Guest 1 taking ownership of its gpa 0x1000 must not block host
		// writes to guest 2's gpa 0x1000.
		m1.RMP.AssignValidated(0x1000, m1.Launch.ASID())
		if err := m2.Mem.HostWrite(0x1000, []byte("fine")); err != nil {
			t.Errorf("cross-guest RMP interference: %v", err)
		}
	})
	eng.Run()
}

func TestTimelineZeroIsVMMExec(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, costmodel.Unit(), 1)
	eng.Go("late", func(p *sim.Proc) {
		p.Sleep(100 * time.Millisecond)
		m := h.NewMachine(p, 1<<20, sev.None)
		if m.Timeline.Start != sim.Time(100*time.Millisecond) {
			t.Errorf("timeline starts at %v", m.Timeline.Start)
		}
	})
	eng.Run()
}
