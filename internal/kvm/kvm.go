// Package kvm models the host kernel's virtualization layer: the physical
// Host (one PSP, one RMP, one cost model — shared by every guest on the
// machine) and the per-guest Machine (guest memory, launch context, debug
// port, timeline).
//
// Host-side SEV work the paper attributes to KVM is charged here: RMP
// initialization for guest memory before launch and page pinning for
// encrypted guests (§6.2, "extra cost in the VMM when launching an SEV
// guest because KVM needs to initialize the RMP entries").
package kvm

import (
	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/ghcb"
	"github.com/severifast/severifast/internal/guestmem"
	"github.com/severifast/severifast/internal/psp"
	"github.com/severifast/severifast/internal/rmp"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/telemetry"
	"github.com/severifast/severifast/internal/trace"
	"github.com/severifast/severifast/internal/virtio"
)

// Host is one physical machine. All concurrently booting guests share it —
// in particular its single-core PSP.
type Host struct {
	Engine *sim.Engine
	Model  costmodel.Model
	PSP    *psp.PSP

	// THP mirrors the §6.1 setting: with transparent huge pages enabled,
	// guests validate memory with 2 MiB pvalidate operations.
	THP bool

	// HugePageValidation selects the hardware-faithful huge-page
	// validation accounting (the paper's 2 MiB ablation): the verifier
	// issues one pvalidate per uniformly-unvalidated PageSize block and
	// falls back to per-4KiB instructions over fragmented ranges, and is
	// charged for the instructions actually issued rather than the flat
	// size/pageSize estimate. Off by default — it legitimately changes
	// virtual-time charges, so it gets its own goldens and bench labels.
	HugePageValidation bool

	// Telemetry, when set, makes every machine's timeline a span scope
	// on the booting proc's track. Install it with eng.SetTracer too so
	// PSP queueing shows up in the same registry.
	Telemetry *telemetry.Registry

	// OnNewMachine, when set, observes every machine created on this
	// host, synchronously from NewMachine before any staging happens.
	// The chaos engine uses it to find booting guests and schedule
	// host-side tampering against their memory at chosen virtual times;
	// production hosts leave it nil.
	OnNewMachine func(*Machine)

	// HostStats accumulates this host's wall-clock stage timings and
	// cache counters. Every machine's guest memory records into it, so
	// two hosts in one process never interleave counters.
	HostStats *telemetry.HostRecorder
}

// NewHost assembles a host with a deterministic PSP identity.
func NewHost(eng *sim.Engine, model costmodel.Model, seed int64) *Host {
	return &Host{
		Engine:    eng,
		Model:     model,
		PSP:       psp.New(model, seed),
		THP:       true,
		HostStats: telemetry.NewHostRecorder(),
	}
}

// PvalidatePageSize returns the pvalidate granularity the guest uses.
func (h *Host) PvalidatePageSize() int {
	if h.THP {
		return 2 << 20
	}
	return guestmem.PageSize
}

// Machine is one guest VM under construction or running.
type Machine struct {
	Host     *Host
	Mem      *guestmem.Memory
	Level    sev.Level
	Timeline *trace.Timeline

	// Launch is the PSP launch context for SEV guests (nil otherwise).
	Launch *psp.GuestContext

	// Devices are the virtio-mmio devices the VMM attached (blk, net).
	Devices []*virtio.Device

	// RMP is this guest's slice of the system-wide reverse map table.
	// The real RMP is indexed by *system* physical address; since each
	// guest's backing pages are disjoint, a per-guest table is an exact
	// model of the guest's view.
	RMP *rmp.Table

	// VCExits counts world switches taken for timing events and I/O.
	VCExits uint64

	// ghcbGPA is the guest's registered GHCB page (0 until the boot
	// verifier establishes it).
	ghcbGPA uint64
	ghcb    *ghcb.GHCB
}

// SetGHCB registers the guest's communication page; later debug events
// travel through the page protocol instead of the bare MSR.
func (m *Machine) SetGHCB(gpa uint64, g *ghcb.GHCB) {
	m.ghcbGPA = gpa
	m.ghcb = g
}

// NewMachine creates a guest of the given size. The timeline's zero point
// is the current virtual time (VMM exec).
func (h *Host) NewMachine(proc *sim.Proc, size uint64, level sev.Level) *Machine {
	m := &Machine{
		Host:     h,
		Mem:      guestmem.New(size),
		Level:    level,
		Timeline: trace.NewScoped(h.Telemetry, proc.Name(), proc.Now()),
	}
	if h.HostStats != nil {
		m.Mem.SetHostRecorder(h.HostStats)
	}
	if h.OnNewMachine != nil {
		h.OnNewMachine(m)
	}
	return m
}

// PrepSEVHost performs the KVM-side SEV setup that precedes any PSP
// command: RMP entry initialization covering guest memory (SNP) and page
// pinning (encrypted pages cannot be transparently moved, §6.2).
func (m *Machine) PrepSEVHost(proc *sim.Proc) {
	proc.Sleep(m.Host.Model.KVMSNPVMCreate)
	if m.Level.HasRMP() {
		proc.Sleep(m.Host.Model.RMPInit(int(m.Mem.Size())))
	}
	proc.Sleep(m.Host.Model.Pin(int(m.Mem.Size())))
	m.Mem.NotePinned(int(m.Mem.Size()))
	// Per-guest PSP firmware setup (SNP context, RMPUPDATEs, GHCB
	// registration) — serialized on the shared PSP like every command.
	m.Host.PSP.Resource().UseLabeled(proc, m.Host.Model.PSPGuestInit, "GUEST_INIT")
}

// StartLaunch opens the PSP launch context (LAUNCH_START) and, under SNP,
// attaches the shared RMP to this guest's memory.
func (m *Machine) StartLaunch(proc *sim.Proc, policy sev.Policy) error {
	ctx, err := m.Host.PSP.LaunchStart(proc, m.Mem, m.Level, policy)
	if err != nil {
		return err
	}
	m.Launch = ctx
	if m.Level.HasRMP() {
		// Pages stay hypervisor-owned until either SNP_LAUNCH_UPDATE
		// transitions them (pre-encrypted launch pages) or the guest takes
		// ownership via page-state-change + pvalidate. Shared staging thus
		// remains host-writable — which is exactly why measured direct
		// boot has to verify what it copies.
		m.RMP = rmp.New()
		m.Mem.AttachRMP(m.RMP, ctx.ASID())
	}
	return nil
}

// DebugEvent is the guest writing a timing event to the debug port (§6.1
// methodology). The write is intercepted by the VMM and stamped with the
// current virtual time. For SEV-ES/SNP guests this costs a world switch;
// once the guest has a GHCB, the event really travels through the page
// protocol (#VC handler stages an IOIO exit, the VMM decodes the page).
// Before the GHCB exists, the raw MSR write is intercepted instead — the
// paper's workaround for events before #VC handlers are installed.
func (m *Machine) DebugEvent(proc *sim.Proc, ev sev.TimingEvent) {
	if m.Level >= sev.ES {
		proc.Sleep(m.Host.Model.VCExit)
		m.VCExits++
		if m.ghcb != nil {
			if err := m.ghcb.Write(ghcb.Exit{
				Code:     ghcb.ExitIOIO,
				Info1:    0x80, // the debug port
				RAX:      ev.MSRValue(),
				ShareRAX: true,
			}); err != nil {
				panic("kvm: staging debug-port exit: " + err.Error())
			}
			view, err := ghcb.ReadFromHost(m.Mem, m.ghcbGPA)
			if err != nil {
				panic("kvm: decoding GHCB: " + err.Error())
			}
			decoded, ok := sev.EventFromMSR(view.RAX)
			if !ok || decoded != ev {
				panic("kvm: debug event corrupted in the GHCB round trip")
			}
			m.Timeline.Record(proc.Now(), decoded)
			return
		}
	}
	m.Timeline.Record(proc.Now(), ev)
}
