package kbs

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"github.com/severifast/severifast/internal/sim"
)

// The HTTP face of the broker, served by cmd/sevf-attestd. Virtual time
// travels in the request body — the broker has no clock of its own, so a
// remote broker behaves bit-for-bit like an in-process one.
//
// Denials are returned as 403 with a JSON {reason, detail} body; Client
// turns them back into *Denial, so errors.Is(err, kbs.ErrReplay) works
// identically on both sides of the wire.

type challengeRequest struct {
	Tenant string `json:"tenant"`
	Now    int64  `json:"now"`
}

type challengeResponse struct {
	Nonce   string `json:"nonce"` // hex
	Expires int64  `json:"expires"`
}

type redeemRequest struct {
	Tenant   string `json:"tenant"`
	Nonce    string `json:"nonce"`     // hex
	Report   string `json:"report"`    // hex of psp.Report.Marshal()
	Chain    string `json:"chain"`     // hex of psp.Chain.Marshal()
	GuestPub string `json:"guest_pub"` // hex of the agent's X25519 key
	Now      int64  `json:"now"`
}

type redeemResponse struct {
	OwnerPub      string `json:"owner_pub"`
	Nonce         string `json:"nonce"`
	Ciphertext    string `json:"ciphertext"`
	ChainCached   bool   `json:"chain_cached"`
	VerdictCached bool   `json:"verdict_cached"`
}

type provisionRequest struct {
	Digest string `json:"digest"` // hex, 32 bytes
	Label  string `json:"label"`
}

type revokeRequest struct {
	ChipID string `json:"chip_id"`
}

type denialBody struct {
	Reason string `json:"reason"`
	Detail string `json:"detail"`
}

// Handler exposes the broker over HTTP: POST /challenge, /redeem,
// /provision, /revoke; GET /stats.
func (b *Broker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/challenge", func(w http.ResponseWriter, r *http.Request) {
		var req challengeRequest
		if !readJSON(w, r, &req) {
			return
		}
		c, err := b.Challenge(req.Tenant, sim.Time(req.Now))
		if err != nil {
			writeDenial(w, err)
			return
		}
		writeJSON(w, challengeResponse{
			Nonce:   hex.EncodeToString(c.Nonce[:]),
			Expires: int64(c.Expires),
		})
	})
	mux.HandleFunc("/redeem", func(w http.ResponseWriter, r *http.Request) {
		var req redeemRequest
		if !readJSON(w, r, &req) {
			return
		}
		var rr RedeemRequest
		rr.Tenant = req.Tenant
		nonce, err := hex.DecodeString(req.Nonce)
		if err != nil || len(nonce) != len(rr.Nonce) {
			http.Error(w, "nonce: want 32 hex-encoded bytes", http.StatusBadRequest)
			return
		}
		copy(rr.Nonce[:], nonce)
		if rr.Report, err = hex.DecodeString(req.Report); err != nil {
			http.Error(w, "report hex: "+err.Error(), http.StatusBadRequest)
			return
		}
		if rr.Chain, err = hex.DecodeString(req.Chain); err != nil {
			http.Error(w, "chain hex: "+err.Error(), http.StatusBadRequest)
			return
		}
		if rr.GuestPub, err = hex.DecodeString(req.GuestPub); err != nil {
			http.Error(w, "guest_pub hex: "+err.Error(), http.StatusBadRequest)
			return
		}
		res, err := b.Redeem(rr, sim.Time(req.Now))
		if err != nil {
			writeDenial(w, err)
			return
		}
		writeJSON(w, redeemResponse{
			OwnerPub:      hex.EncodeToString(res.Bundle.OwnerPub),
			Nonce:         hex.EncodeToString(res.Bundle.Nonce),
			Ciphertext:    hex.EncodeToString(res.Bundle.Ciphertext),
			ChainCached:   res.ChainCached,
			VerdictCached: res.VerdictCached,
		})
	})
	mux.HandleFunc("/provision", func(w http.ResponseWriter, r *http.Request) {
		var req provisionRequest
		if !readJSON(w, r, &req) {
			return
		}
		raw, err := hex.DecodeString(req.Digest)
		if err != nil || len(raw) != 32 {
			http.Error(w, "digest: want 32 hex-encoded bytes", http.StatusBadRequest)
			return
		}
		var d [32]byte
		copy(d[:], raw)
		if err := b.Provision(d, req.Label); err != nil {
			writeDenial(w, err)
			return
		}
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc("/revoke", func(w http.ResponseWriter, r *http.Request) {
		var req revokeRequest
		if !readJSON(w, r, &req) {
			return
		}
		if err := b.Revoke(req.ChipID); err != nil {
			writeDenial(w, err)
			return
		}
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		s, err := b.Stats()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, s)
	})
	return mux
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return false
	}
	if err := json.Unmarshal(body, dst); err != nil {
		http.Error(w, "json: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// writeDenial maps a broker denial to 403 with its reason on the wire;
// anything else is a 500.
func writeDenial(w http.ResponseWriter, err error) {
	if r := ReasonOf(err); r != "" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusForbidden)
		var d *Denial
		detail := err.Error()
		if errors.As(err, &d) {
			detail = d.Detail
		}
		_ = json.NewEncoder(w).Encode(denialBody{Reason: string(r), Detail: detail})
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}
