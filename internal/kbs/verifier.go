package kbs

import (
	"crypto/ecdsa"
	"crypto/sha256"
	"sync"

	"github.com/severifast/severifast/internal/psp"
)

// Verifier walks endorsement chains against a pinned root and caches the
// result by chain content. The cache is sound because it is keyed by the
// SHA-256 of the exact chain bytes: a cached entry proves "these bytes
// parse to a chain that verifies under the pinned ARK", which is a pure
// function of the bytes. Report signatures and freshness are NOT cached —
// those are per-exchange and the broker always re-checks them.
//
// Only successful walks are cached. Failures are not: they are already on
// the slow path, and never caching them means a transient of the same
// bytes cannot poison future exchanges.
type Verifier struct {
	ark *ecdsa.PublicKey

	mu     sync.Mutex
	cache  map[[32]byte]*psp.Chain
	hits   int
	misses int
}

// NewVerifier builds a verifier pinning ark.
func NewVerifier(ark *ecdsa.PublicKey) *Verifier {
	return &Verifier{ark: ark, cache: make(map[[32]byte]*psp.Chain)}
}

// VerifyChain parses and verifies chainBytes, returning the chain and
// whether the result came from the cache. Parse failures return
// ReasonMalformed; signature/naming failures return ReasonForged.
func (v *Verifier) VerifyChain(chainBytes []byte) (*psp.Chain, bool, error) {
	key := sha256.Sum256(chainBytes)
	v.mu.Lock()
	if ch, ok := v.cache[key]; ok {
		v.hits++
		v.mu.Unlock()
		return ch, true, nil
	}
	v.misses++
	v.mu.Unlock()

	ch, err := psp.UnmarshalChain(chainBytes)
	if err != nil {
		return nil, false, denyCause(ReasonMalformed, err, "chain: %v", err)
	}
	if err := ch.Verify(v.ark); err != nil {
		return nil, false, denyCause(ReasonForged, err, "chain: %v", err)
	}
	v.mu.Lock()
	v.cache[key] = ch
	v.mu.Unlock()
	return ch, false, nil
}

// CacheStats returns (hits, misses) so far.
func (v *Verifier) CacheStats() (hits, misses int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.hits, v.misses
}
