// Package kbs is the key broker service: the multi-tenant relying party
// that gates secret release on SEV attestation evidence. It models the
// production trust shape around the paper's attestation flow (§2.4 Fig. 1
// steps 5-8, §6.1's attestation server on the boot-critical path):
//
//   - A key authority stands in for AMD's key hierarchy: per-host VCEKs
//     are derived from a TCB-versioned seed and endorsed by an ASK/ARK
//     chain with real ECDSA P-384 signatures (authority.go).
//   - A broker enforces the relying-party checks that SNPGuard-style
//     verifiers perform: chain walk against the pinned root, revocation,
//     minimum-TCB policy, guest policy/level floors, reference launch
//     digests, nonce freshness with anti-replay, and key binding
//     (broker.go).
//   - Verification results are cached — chain walks by chain content,
//     policy/measurement verdicts by (chip, TCB, digest) — so hot boots
//     skip redundant public-key crypto without weakening any per-exchange
//     check: signatures and nonce binding are verified on every redeem
//     (verifier.go, broker.go).
//
// Every denial carries a distinct Reason so callers (the fleet
// orchestrator's fault layer, tests, operators) can count and assert
// *why* an exchange was refused, not just that it failed.
package kbs

import (
	"errors"
	"fmt"

	"github.com/severifast/severifast/internal/sim"
)

// Reason classifies why the broker refused an exchange. The string form
// is stable: it keys denial counters in fleet reports and the HTTP wire
// format.
type Reason string

// Denial reasons, one per enforcement step.
const (
	ReasonTenant      Reason = "tenant"      // unknown tenant or nonce/tenant mismatch
	ReasonReplay      Reason = "replay"      // nonce unknown or already consumed
	ReasonExpired     Reason = "expired"     // nonce past its TTL
	ReasonMalformed   Reason = "malformed"   // report or chain bytes fail to parse
	ReasonForged      Reason = "forged"      // chain or report signature invalid
	ReasonRevoked     Reason = "revoked"     // VCEK's chip ID is on the revocation list
	ReasonStaleTCB    Reason = "stale-tcb"   // VCEK minted below the minimum TCB
	ReasonPolicy      Reason = "policy"      // guest policy/level below the floor
	ReasonMeasurement Reason = "measurement" // launch digest not in the reference store
	ReasonBinding     Reason = "binding"     // report data does not bind nonce+guest key
	// ReasonUnavailable is not a broker verdict: it marks an exchange the
	// caller refused to attempt because the broker is considered down
	// (the fleet's circuit breaker fast-failing while open). It lives in
	// the denial taxonomy so breaker refusals classify as attestation
	// denials — the boot was refused a key — while staying countable
	// apart from genuine policy verdicts.
	ReasonUnavailable Reason = "unavailable"
)

// ErrDenied matches every broker denial: errors.Is(err, ErrDenied) is
// true exactly when the broker refused the exchange (as opposed to an
// internal or transport failure).
var ErrDenied = errors.New("kbs: denied")

// Sentinels for errors.Is against a specific reason, e.g.
// errors.Is(err, kbs.ErrReplay).
var (
	ErrTenant      = &Denial{Reason: ReasonTenant}
	ErrReplay      = &Denial{Reason: ReasonReplay}
	ErrExpired     = &Denial{Reason: ReasonExpired}
	ErrMalformed   = &Denial{Reason: ReasonMalformed}
	ErrForged      = &Denial{Reason: ReasonForged}
	ErrRevoked     = &Denial{Reason: ReasonRevoked}
	ErrStaleTCB    = &Denial{Reason: ReasonStaleTCB}
	ErrPolicy      = &Denial{Reason: ReasonPolicy}
	ErrMeasurement = &Denial{Reason: ReasonMeasurement}
	ErrBinding     = &Denial{Reason: ReasonBinding}
	ErrUnavailable = &Denial{Reason: ReasonUnavailable}
)

// Denial is a refusal with its reason. It matches ErrDenied and any
// Denial with the same Reason under errors.Is.
type Denial struct {
	Reason Reason
	Detail string
	// Cause, when non-nil, is the underlying error behind the refusal
	// (e.g. the parse failure behind a malformed denial), reachable
	// through errors.Is/As via Unwrap. Detail stays the stable wire/log
	// string; Cause preserves the chain for programmatic classification.
	Cause error
}

// Error implements error.
func (d *Denial) Error() string {
	if d.Detail == "" {
		return fmt.Sprintf("kbs: denied (%s)", d.Reason)
	}
	return fmt.Sprintf("kbs: denied (%s): %s", d.Reason, d.Detail)
}

// Is matches ErrDenied and same-reason Denials.
func (d *Denial) Is(target error) bool {
	if target == ErrDenied {
		return true
	}
	t, ok := target.(*Denial)
	return ok && t.Reason == d.Reason
}

// Unwrap exposes the underlying cause, if any.
func (d *Denial) Unwrap() error { return d.Cause }

// deny builds a reasoned denial.
func deny(r Reason, format string, args ...any) error {
	return &Denial{Reason: r, Detail: fmt.Sprintf(format, args...)}
}

// denyCause builds a reasoned denial that keeps err reachable through
// the error chain, so callers can classify by the root failure (e.g.
// psp parse sentinels behind a malformed denial) and not only by reason.
func denyCause(r Reason, err error, format string, args ...any) error {
	return &Denial{Reason: r, Detail: fmt.Sprintf(format, args...), Cause: err}
}

// ReasonOf extracts the denial reason from an error chain, or "" if the
// error is not a broker denial.
func ReasonOf(err error) Reason {
	var d *Denial
	if errors.As(err, &d) {
		return d.Reason
	}
	return ""
}

// Challenge is a freshness nonce issued to one tenant. The guest must
// fold it into the attestation report's user data (BindReportData), which
// proves the report postdates the challenge.
type Challenge struct {
	Nonce   [32]byte
	Expires sim.Time // virtual-time deadline for redeeming
}

// RedeemRequest carries one attestation exchange: the evidence (report +
// endorsement chain), the channel key, and the challenge being answered.
type RedeemRequest struct {
	Tenant   string
	Nonce    [32]byte
	Report   []byte // psp.Report wire format
	Chain    []byte // psp.Chain wire format (VCEK, ASK, ARK)
	GuestPub []byte // guest's ephemeral X25519 public key
}

// RedeemResult is a granted exchange: the tenant secret wrapped for the
// guest key, plus cache telemetry so callers can charge virtual time only
// for the crypto that actually ran.
type RedeemResult struct {
	Bundle *Bundle
	// ChainCached reports whether the endorsement chain walk was served
	// from the verifier cache (hot boot) rather than recomputed.
	ChainCached bool
	// VerdictCached reports whether the policy/TCB/measurement verdict
	// was served from the broker's verdict cache.
	VerdictCached bool
}

// Stats is a point-in-time snapshot of broker counters.
type Stats struct {
	Challenges int
	Grants     int
	Denials    map[string]int // reason -> count
	ChainHits  int
	ChainMiss  int
	VerdictHit int
	VerdictMis int
	RefValues  int
	Revoked    int
	Tenants    int
	NoncesLive int
}

// Service is the broker surface the fleet orchestrator speaks. Broker
// implements it in process; Client implements it over HTTP against
// cmd/sevf-attestd. Virtual time is passed in by the caller — the broker
// never reads a wall clock, which keeps runs reproducible.
type Service interface {
	Challenge(tenant string, now sim.Time) (Challenge, error)
	Redeem(req RedeemRequest, now sim.Time) (*RedeemResult, error)
	Provision(digest [32]byte, label string) error
	Revoke(chipID string) error
	Stats() (Stats, error)
}
