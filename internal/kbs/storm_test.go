package kbs_test

import (
	"errors"
	"net/http/httptest"
	"testing"

	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/policy"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
)

// TestRevokeUnknownTargetSemantics pins the contract the storm layer
// leans on: broker revocation of an unknown chip is idempotent success
// (forward-looking distrust, no chip registry), while policy
// RevokeClaim of an unknown claim is a typed ErrNotFound (revoking a
// claim never filed is an operator mistake). Broker and HTTP client
// paths must agree.
func TestRevokeUnknownTargetSemantics(t *testing.T) {
	auth := kbs.NewAuthority(7)
	b := newBroker(auth, kbs.Config{Seed: 3})

	// Broker path: unknown chip succeeds, repeating succeeds.
	if err := b.Revoke("chip-never-enrolled"); err != nil {
		t.Fatalf("revoking unknown chip: %v", err)
	}
	if err := b.Revoke("chip-never-enrolled"); err != nil {
		t.Fatalf("repeating revocation: %v", err)
	}
	if err := b.RevokeAt("chip-also-unknown", 5_000); err != nil {
		t.Fatalf("RevokeAt unknown chip: %v", err)
	}
	s, err := b.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Revoked != 2 {
		t.Fatalf("revocation list size = %d, want 2", s.Revoked)
	}

	// HTTP client path agrees: /revoke of an unknown chip is 200, not a
	// denial or server error.
	srv := httptest.NewServer(b.Handler())
	defer srv.Close()
	c := &kbs.Client{Base: srv.URL}
	if err := c.Revoke("chip-wire-ghost"); err != nil {
		t.Fatalf("remote revoke of unknown chip: %v", err)
	}

	// Policy path: unknown claim and unknown domain are typed sentinels.
	pol := b.Policy()
	if err := pol.RevokeClaim("*", "no-such-claim", 0); !errors.Is(err, policy.ErrNotFound) {
		t.Fatalf("unknown claim: %v, want ErrNotFound", err)
	}
	if err := pol.RevokeClaim("no-such-domain", kbs.MinTCBClaimID, 0); !errors.Is(err, policy.ErrNotFound) {
		t.Fatalf("unknown domain: %v, want ErrNotFound", err)
	}
	// The known floor claim revokes cleanly — the same call BumpFloor
	// makes internally.
	if err := pol.RevokeClaim("*", kbs.MinTCBClaimID, 0); err != nil {
		t.Fatalf("revoking the floor claim: %v", err)
	}
}

// TestFloorBumpBoundary mirrors the nonce/claim boundary tests for
// minimum-TCB floor bumps: an exchange from a platform below the new
// floor at exactly the bump instant still admits (the old floor claim is
// revoked inclusively), one instant later is denied stale-tcb, and a
// platform at the new floor admits throughout.
func TestFloorBumpBoundary(t *testing.T) {
	auth := kbs.NewAuthority(7)
	older, _ := currentTCB.Predecessor()
	stale := launch(t, auth, "chip-old", older, sev.SNP, sev.DefaultPolicy())
	fresh := launch(t, auth, "chip-new", currentTCB, sev.SNP, sev.DefaultPolicy())

	b := newBroker(auth, kbs.Config{MinTCB: older, MinLevel: sev.SNP, MinPolicy: sev.DefaultPolicy(), Seed: 3})
	for _, pl := range []*platform{stale, fresh} {
		if err := b.Provision(pl.digest, "img"); err != nil {
			t.Fatal(err)
		}
	}

	const bumpAt = sim.Time(2_000_000_000)
	// Pre-bump grant also warms the verdict cache, so the post-bump
	// denial below proves the store-version bump invalidated it.
	if _, _, err := exchange(t, b, stale, "acme", bumpAt-1, nil); err != nil {
		t.Fatalf("pre-bump exchange: %v", err)
	}
	if err := b.BumpFloor(currentTCB, bumpAt); err != nil {
		t.Fatal(err)
	}
	if got := b.MinTCB(); got != currentTCB {
		t.Fatalf("MinTCB after bump = %v, want %v", got, currentTCB)
	}

	// Boundary instant: the old floor claim is still valid at exactly
	// bumpAt, so the below-floor platform admits.
	if _, _, err := exchange(t, b, stale, "acme", bumpAt, nil); err != nil {
		t.Fatalf("exchange at the bump instant: %v", err)
	}
	// One instant later the denial is stale-tcb — the replacement floor
	// claim's refusal, not the revoked claim's expiry.
	if _, _, err := exchange(t, b, stale, "acme", bumpAt+1, nil); !errors.Is(err, kbs.ErrStaleTCB) {
		t.Fatalf("exchange past the bump: %v, want ErrStaleTCB", err)
	}
	// A platform at the new floor admits after the bump.
	if _, _, err := exchange(t, b, fresh, "acme", bumpAt+1, nil); err != nil {
		t.Fatalf("current platform after bump: %v", err)
	}

	// A second bump keeps the same semantics: the replacement IDs descend
	// so the newest floor still decides the denial reason.
	next := currentTCB
	next.Microcode++
	const bump2 = bumpAt + 3_000_000_000
	if err := b.BumpFloor(next, bump2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := exchange(t, b, fresh, "acme", bump2, nil); err != nil {
		t.Fatalf("exchange at second bump instant: %v", err)
	}
	if _, _, err := exchange(t, b, fresh, "acme", bump2+1, nil); !errors.Is(err, kbs.ErrStaleTCB) {
		t.Fatalf("exchange past second bump: %v, want ErrStaleTCB", err)
	}
}

// TestGenerationRevocationBoundary pins RevokeAt's boundary: an exchange
// at exactly the revocation instant admits, one instant later is denied
// revoked — the same inclusive convention as nonce TTLs and claim
// expiry.
func TestGenerationRevocationBoundary(t *testing.T) {
	auth := kbs.NewAuthority(7)
	pl := launch(t, auth, "chip-0", currentTCB, sev.SNP, sev.DefaultPolicy())
	b := newBroker(auth, kbs.Config{MinLevel: sev.SNP, MinPolicy: sev.DefaultPolicy(), Seed: 3})
	if err := b.Provision(pl.digest, "img"); err != nil {
		t.Fatal(err)
	}

	const at = sim.Time(2_000_000_000)
	// Warm the verdict cache pre-revocation: the post-revocation denial
	// must not be masked by it.
	if _, _, err := exchange(t, b, pl, "acme", at-1, nil); err != nil {
		t.Fatalf("pre-revocation exchange: %v", err)
	}
	if err := b.RevokeAt("chip-0", at); err != nil {
		t.Fatal(err)
	}
	if _, _, err := exchange(t, b, pl, "acme", at, nil); err != nil {
		t.Fatalf("exchange at the revocation instant: %v", err)
	}
	if _, _, err := exchange(t, b, pl, "acme", at+1, nil); !errors.Is(err, kbs.ErrRevoked) {
		t.Fatalf("exchange past the revocation: %v, want ErrRevoked", err)
	}

	// Revoke (no instant) stays in force from time zero.
	b2 := newBroker(auth, kbs.Config{MinLevel: sev.SNP, MinPolicy: sev.DefaultPolicy(), Seed: 3})
	if err := b2.Provision(pl.digest, "img"); err != nil {
		t.Fatal(err)
	}
	if err := b2.Revoke("chip-0"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := exchange(t, b2, pl, "acme", 0, nil); !errors.Is(err, kbs.ErrRevoked) {
		t.Fatalf("Revoke not in force at time zero: %v", err)
	}
}
