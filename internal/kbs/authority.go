package kbs

import (
	"crypto/ecdsa"
	"crypto/sha256"
	"encoding/binary"
	"io"
	"math/rand"
	"sync"

	"github.com/severifast/severifast/internal/psp"
)

// Authority models AMD's key hierarchy from the relying party's point of
// view: a self-signed root (ARK), an intermediate signing key (ASK), and
// per-chip VCEKs derived from a secret seed mixed with the chip identity
// and its TCB version. Derivation is the load-bearing property — the same
// (chip, TCB) always yields the same key, a different TCB a different
// key — so a stale-firmware platform simply cannot produce a
// current-TCB signature.
//
// Everything is deterministic in the authority seed: two authorities
// built from the same seed mint byte-identical chains regardless of call
// order, which is what lets cmd/sevf-fleet and cmd/sevf-attestd agree on
// the hierarchy without sharing state, and what keeps same-seed fleet
// runs reproducible.
type Authority struct {
	seed int64
	root *ecdsa.PrivateKey // ARK
	sign *ecdsa.PrivateKey // ASK
	ark  psp.Cert
	ask  psp.Cert

	mu     sync.Mutex
	chains map[chainKey]*chainEntry
}

type chainKey struct {
	chipID string
	tcb    uint64
}

type chainEntry struct {
	key   *ecdsa.PrivateKey
	chain *psp.Chain
}

// NewAuthority derives the full hierarchy from seed.
func NewAuthority(seed int64) *Authority {
	rng := rand.New(rand.NewSource(seed))
	a := &Authority{
		seed:   seed,
		root:   psp.DeriveKey(rng),
		sign:   psp.DeriveKey(rng),
		chains: make(map[chainKey]*chainEntry),
	}
	a.ark = psp.Cert{
		Subject: "ARK", Issuer: "ARK",
		PubX: a.root.PublicKey.X, PubY: a.root.PublicKey.Y,
	}
	a.ask = psp.Cert{
		Subject: "ASK", Issuer: "ARK",
		PubX: a.sign.PublicKey.X, PubY: a.sign.PublicKey.Y,
	}
	// Construction order is fixed, so signing from the constructor rng
	// keeps the ARK/ASK certificates identical across same-seed builds.
	mustSign(&a.ark, a.root, rng)
	mustSign(&a.ask, a.root, rng)
	return a
}

func mustSign(c *psp.Cert, issuer *ecdsa.PrivateKey, rng io.Reader) {
	if err := psp.SignCert(c, issuer, rng); err != nil {
		panic("kbs: authority cert signing cannot fail: " + err.Error())
	}
}

// Root returns the public ARK — the single key relying parties pin.
func (a *Authority) Root() *ecdsa.PublicKey { return &a.root.PublicKey }

// derivedRNG builds a deterministic stream from the authority seed plus a
// domain label, the chip identity, and the TCB — the KDF standing in for
// the PSP's key-derivation hardware.
func (a *Authority) derivedRNG(label, chipID string, tcb TCB) *rand.Rand {
	h := sha256.New()
	h.Write([]byte(label))
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], uint64(a.seed))
	h.Write(s[:])
	h.Write([]byte(chipID))
	binary.LittleEndian.PutUint64(s[:], tcb.Encode())
	h.Write(s[:])
	sum := h.Sum(nil)
	return rand.New(rand.NewSource(int64(binary.LittleEndian.Uint64(sum[:8]))))
}

// VCEKKey derives the signing key for one (chip, TCB) pair.
func (a *Authority) VCEKKey(chipID string, tcb TCB) *ecdsa.PrivateKey {
	return psp.DeriveKey(a.derivedRNG("kbs-vcek", chipID, tcb))
}

// ChainFor mints (and memoizes) the endorsement chain for a platform at a
// TCB. The VCEK signature uses a per-(chip,TCB) deterministic stream, not
// the shared constructor rng, so chain bytes never depend on the order in
// which chains are requested.
func (a *Authority) ChainFor(chipID string, tcb TCB) *psp.Chain {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.entryLocked(chipID, tcb).chain
}

func (a *Authority) entryLocked(chipID string, tcb TCB) *chainEntry {
	k := chainKey{chipID: chipID, tcb: tcb.Encode()}
	if e, ok := a.chains[k]; ok {
		return e
	}
	key := a.VCEKKey(chipID, tcb)
	vcek := psp.Cert{
		Subject: "VCEK", Issuer: "ASK",
		PubX: key.PublicKey.X, PubY: key.PublicKey.Y,
		ChipID: chipID, TCBVersion: tcb.Encode(),
	}
	mustSign(&vcek, a.sign, a.derivedRNG("kbs-sign", chipID, tcb))
	e := &chainEntry{
		key:   key,
		chain: &psp.Chain{VCEK: vcek, ASK: a.ask, ARK: a.ark},
	}
	a.chains[k] = e
	return e
}

// Enrollment records one platform's issued identity.
type Enrollment struct {
	ChipID    string
	TCB       TCB
	Authority *Authority
	Chain     *psp.Chain
}

// Enroll installs an authority-derived, TCB-versioned VCEK on a PSP,
// replacing its self-built identity — the provisioning step a cloud
// operator performs once per host. Reports the PSP signs afterwards
// verify against ChainFor(chipID, tcb) under the authority root.
func (a *Authority) Enroll(p *psp.PSP, chipID string, tcb TCB) *Enrollment {
	a.mu.Lock()
	e := a.entryLocked(chipID, tcb)
	a.mu.Unlock()
	p.SetIdentity(e.key, e.chain, a.Root())
	return &Enrollment{ChipID: chipID, TCB: tcb, Authority: a, Chain: e.chain}
}
