package kbs

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// TCB is the platform's trusted-computing-base version vector: the
// firmware/microcode component versions AMD folds into VCEK derivation.
// Because the VCEK is derived *from* these versions, a report signed by a
// chip running old firmware verifies only against an old-TCB VCEK — which
// is exactly what lets a relying party enforce a minimum TCB ("Insecure
// Despite Proven Updated" shows why this must be policy, not advice).
type TCB struct {
	BootLoader uint8
	TEE        uint8
	SNP        uint8
	Microcode  uint8
}

// Encode packs the vector into the 64-bit form carried in VCEK
// certificates (psp.Cert.TCBVersion).
func (t TCB) Encode() uint64 {
	return uint64(t.BootLoader)<<56 | uint64(t.TEE)<<48 |
		uint64(t.SNP)<<8 | uint64(t.Microcode)
}

// DecodeTCB unpacks Encode's output.
func DecodeTCB(v uint64) TCB {
	return TCB{
		BootLoader: uint8(v >> 56),
		TEE:        uint8(v >> 48),
		SNP:        uint8(v >> 8),
		Microcode:  uint8(v),
	}
}

// AtLeast reports whether every component of t is >= the corresponding
// component of min — the component-wise comparison AMD specifies (a
// platform is only current if *all* components are current).
func (t TCB) AtLeast(min TCB) bool {
	return t.BootLoader >= min.BootLoader &&
		t.TEE >= min.TEE &&
		t.SNP >= min.SNP &&
		t.Microcode >= min.Microcode
}

// String renders "bootloader.tee.snp.microcode".
func (t TCB) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", t.BootLoader, t.TEE, t.SNP, t.Microcode)
}

// ParseTCB parses String's output.
func ParseTCB(s string) (TCB, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return TCB{}, fmt.Errorf("kbs: TCB %q: want 4 dot-separated components", s)
	}
	var v [4]uint8
	for i, p := range parts {
		n, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return TCB{}, fmt.Errorf("kbs: TCB %q: component %d: %w", s, i, err)
		}
		v[i] = uint8(n)
	}
	return TCB{BootLoader: v[0], TEE: v[1], SNP: v[2], Microcode: v[3]}, nil
}

// ErrTCBFloor reports that a TCB has no predecessor (all components zero).
var ErrTCBFloor = errors.New("kbs: TCB has no predecessor")

// Predecessor returns a strictly older TCB by decrementing the least
// significant nonzero component (microcode first). The fault-injection
// layer uses it to mint stale-TCB platform identities.
func (t TCB) Predecessor() (TCB, error) {
	switch {
	case t.Microcode > 0:
		t.Microcode--
	case t.SNP > 0:
		t.SNP--
	case t.TEE > 0:
		t.TEE--
	case t.BootLoader > 0:
		t.BootLoader--
	default:
		return t, ErrTCBFloor
	}
	return t, nil
}
