package kbs

import (
	"crypto/ecdsa"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"github.com/severifast/severifast/internal/policy"
	"github.com/severifast/severifast/internal/psp"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/telemetry"
)

// DefaultNonceTTL bounds how long a challenge stays redeemable when the
// config does not say otherwise.
const DefaultNonceTTL = time.Second

// Config sets the broker's policy floors.
type Config struct {
	// MinTCB is the minimum platform TCB; VCEKs minted below it are
	// denied with ReasonStaleTCB. Zero accepts any TCB.
	MinTCB TCB
	// MinPolicy are the guest policy bits that must be set (only the
	// boolean gates are enforced, matching internal/attest).
	MinPolicy sev.Policy
	// MinLevel is the minimum SEV feature level.
	MinLevel sev.Level
	// NonceTTL is the challenge lifetime in virtual time
	// (DefaultNonceTTL when zero).
	NonceTTL time.Duration
	// Seed drives nonce generation and secret wrapping.
	Seed int64
}

// PolicyAnchorID names the broker's own signer, anchored in the "*"
// trust domain of its policy store. The compatibility shim (Provision,
// Revoke, the minimum-TCB floor) synthesizes claims under this identity.
const PolicyAnchorID = "kbs-root"

// MinTCBClaimID names the synthesized platform claim carrying the
// broker's configured minimum-TCB floor.
const MinTCBClaimID = "min-tcb-floor"

// RefClaimID names the measurement claim Provision synthesizes for a
// launch digest.
func RefClaimID(digest [32]byte) string {
	return "ref-" + hex.EncodeToString(digest[:])
}

// Broker is the in-process key broker. All state is guarded by one
// mutex; methods never block on simulation time — callers charge
// virtual-time costs themselves (fleet charges costmodel.KBSChainVerify
// only when RedeemResult.ChainCached is false).
//
// Trust decisions live in a policy store (internal/policy), consulted by
// the engine on every verdict-cache miss. The broker's historic surface
// — Provision, Revoke, the minimum-TCB floor — is a compatibility shim
// that synthesizes signed claims under PolicyAnchorID, so revocation
// storms, TCB-floor bumps, and per-tenant trust domains are policy
// mutations against Policy(), not broker code paths.
type Broker struct {
	cfg      Config
	verifier *Verifier

	mu       sync.Mutex
	rng      *rand.Rand
	tenants  map[string][]byte   // tenant -> secret released on success
	refs     map[[32]byte]string // provisioned launch digest -> label (stats only)
	nonces   map[[32]byte]nonceRec
	revoked  map[string]bool // chip ID -> revoked (stats only)
	verdicts map[verdictKey]verdictRec
	stats    Stats
	reg      *telemetry.Registry

	pol *policy.Store
	eng *policy.Engine
	// polMu serializes claim synthesis: polRNG backs ECDSA signing,
	// which draws a nondeterministic number of bytes, so the stream is
	// private to signing and never shared with nonce or wrap draws.
	polMu  sync.Mutex
	polKey *ecdsa.PrivateKey
	polRNG *rand.Rand

	// floorID names the platform claim currently carrying the minimum-TCB
	// floor (MinTCBClaimID until the first BumpFloor), and floorSeq counts
	// bumps so replacement claims get fresh, descending IDs. Guarded by mu.
	floorID  string
	floorSeq int
}

// Instrument mirrors the broker's counters (challenges, grants, denials
// by reason, verdict-cache hits and misses) into reg under
// severifast_kbs_* metric names. Nil detaches the mirror.
func (b *Broker) Instrument(reg *telemetry.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reg = reg
}

type nonceRec struct {
	tenant  string
	expires sim.Time
}

// verdictKey identifies one policy/TCB/measurement verdict. Everything
// the verdict depends on is in the key, so cached approvals cannot leak
// across platforms, TCBs, or guest configurations. Revocation, report
// signatures, and nonce binding are deliberately outside the verdict and
// re-checked on every exchange.
type verdictKey struct {
	chipID string
	tcb    uint64
	digest [32]byte
	policy uint64
	level  sev.Level
}

var _ Service = (*Broker)(nil)

// verdictRec is one cached approval. A verdict is only as durable as
// the policy store that minted it: version pins the store state, and
// expires carries the certificate's folded claim expiry (zero = never),
// so a revocation or rotation invalidates every outstanding verdict at
// the next exchange.
type verdictRec struct {
	version uint64
	expires sim.Time
}

// NewBroker builds a broker pinning ark as the authority root.
func NewBroker(ark *ecdsa.PublicKey, cfg Config) *Broker {
	if cfg.NonceTTL == 0 {
		cfg.NonceTTL = DefaultNonceTTL
	}
	pol := policy.NewStore()
	// The signing stream is split from the nonce/wrap stream: ECDSA
	// signing consumes a nondeterministic number of bytes, so sharing
	// one rand.Rand would smear nondeterminism into challenge nonces.
	polRNG := rand.New(rand.NewSource(cfg.Seed ^ 0x706f6c69637921)) // "policy!"
	polKey := psp.DeriveKey(polRNG)
	if err := pol.AddSigner(PolicyAnchorID, &polKey.PublicKey); err != nil {
		panic(err) // fresh store: cannot collide
	}
	pol.EnsureDomain("*", PolicyAnchorID)
	b := &Broker{
		cfg:      cfg,
		verifier: NewVerifier(ark),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		tenants:  make(map[string][]byte),
		refs:     make(map[[32]byte]string),
		nonces:   make(map[[32]byte]nonceRec),
		revoked:  make(map[string]bool),
		verdicts: make(map[verdictKey]verdictRec),
		pol:      pol,
		eng:      pol.Engine(),
		polKey:   polKey,
		polRNG:   polRNG,
		floorID:  MinTCBClaimID,
	}
	// The configured minimum-TCB floor becomes an ordinary platform
	// claim: revoking or replacing it is a policy mutation, not a
	// broker rebuild.
	if err := b.synthesize(policy.Claim{
		ID:      MinTCBClaimID,
		Kind:    policy.KindPlatform,
		Scope:   "*",
		Subject: "*",
		MinTCB:  cfg.MinTCB.Encode(),
		Note:    "broker minimum-TCB floor",
	}); err != nil {
		panic(err) // fresh store, fresh signer: cannot fail
	}
	return b
}

// Policy exposes the broker's policy store — the mutable trust state
// behind every verdict. Claims added, revoked, or rotated here take
// effect on the next exchange via store versioning.
func (b *Broker) Policy() *policy.Store { return b.pol }

// PolicyEngine returns the engine evaluating the broker's store, for
// callers (fleet admission, cluster dispatch) that gate on the same
// trust domains the broker redeems against.
func (b *Broker) PolicyEngine() *policy.Engine { return b.eng }

// synthesize signs a claim under the broker's compat anchor and files
// it. Duplicate IDs are idempotent success: Provision and Revoke may
// legitimately repeat.
func (b *Broker) synthesize(c policy.Claim) error {
	b.polMu.Lock()
	defer b.polMu.Unlock()
	c.Issuer = PolicyAnchorID
	if err := policy.SignClaim(&c, b.polKey, b.polRNG); err != nil {
		return err
	}
	if err := b.pol.AddClaim(c); err != nil && !errors.Is(err, policy.ErrDuplicate) {
		return err
	}
	return nil
}

// AddTenant registers a tenant and the secret released to its attested
// guests, plus an (initially empty) trust domain of its own so per-tenant
// claims filed via Policy() shadow the shared "*" domain.
func (b *Broker) AddTenant(name string, secret []byte) {
	b.mu.Lock()
	b.tenants[name] = append([]byte(nil), secret...)
	b.mu.Unlock()
	b.pol.EnsureDomain(name)
}

// Provision allows a launch digest, labeling it for operators. The fleet
// orchestrator feeds this directly from its measured-image cache, so the
// reference-value store is derived from what the fleet actually builds
// rather than hand-listed. Under the hood this synthesizes a measurement
// claim in the "*" trust domain.
func (b *Broker) Provision(digest [32]byte, label string) error {
	b.mu.Lock()
	b.refs[digest] = label
	b.mu.Unlock()
	// The full digest is the claim identity: two images differing in any
	// byte must file distinct claims, or a poisoned publish could shadow
	// the honest one behind duplicate-ID idempotency.
	return b.synthesize(policy.Claim{
		ID:      RefClaimID(digest),
		Kind:    policy.KindMeasurement,
		Scope:   "*",
		Subject: hex.EncodeToString(digest[:]),
		Note:    label,
	})
}

// Revoke puts a chip ID on the revocation list; all its VCEKs are
// refused from now on, current TCB or not. The list entry is a
// revocation claim, so outstanding cached verdicts for the chip go
// stale with the store version.
//
// Unknown-target semantics: revoking a chip the broker has never seen is
// idempotent success, never an error. The broker keeps no chip registry
// — revocation is a forward-looking statement of distrust, and a CRL
// entry for a chip that never attests is merely inert. This is the
// deliberate opposite of policy.Store.RevokeClaim, which returns a typed
// ErrNotFound for unknown claims because revoking a claim that was never
// filed is an operator mistake worth surfacing. Repeating a revocation
// is likewise idempotent success (duplicate claim IDs are swallowed).
func (b *Broker) Revoke(chipID string) error {
	return b.RevokeAt(chipID, 0)
}

// RevokeAt revokes a chip's VCEKs from a virtual instant: an exchange at
// exactly `at` still admits, one at at+1ns is denied — the same inclusive
// boundary convention as claim expiry and nonce TTLs. Revoke is RevokeAt
// at instant zero (in force from the beginning of time). Unknown chips
// succeed idempotently; see Revoke.
func (b *Broker) RevokeAt(chipID string, at sim.Time) error {
	b.mu.Lock()
	b.revoked[chipID] = true
	b.mu.Unlock()
	var nb sim.Time
	if at > 0 {
		// Revocation claims gate from NotBefore inclusive, so in-force
		// starts one instant after the still-admitting boundary.
		nb = at + 1
	}
	return b.synthesize(policy.Claim{
		ID:        "revoked-" + chipID,
		Kind:      policy.KindRevocation,
		Scope:     "*",
		Subject:   chipID,
		NotBefore: nb,
		Note:      "broker revocation list",
	})
}

// BumpFloor raises the broker's minimum-TCB floor at a virtual instant:
// the old floor claim is revoked at `at` (inclusive — an old-TCB
// exchange at exactly `at` still admits) and a replacement platform
// claim carrying the new floor takes effect from the same instant, so
// there is no gap during which no floor claim exists. Replacement claim
// IDs descend ("floor-bump-998", "floor-bump-997", ...) so the newest
// floor sorts first in the engine's deterministic claim scan and
// below-floor denials keep reporting tcb-below-floor (mapped to
// stale-tcb) rather than the stale claim's expiry.
func (b *Broker) BumpFloor(tcb TCB, at sim.Time) error {
	b.mu.Lock()
	oldID := b.floorID
	b.floorSeq++
	newID := fmt.Sprintf("floor-bump-%03d", 999-b.floorSeq)
	b.floorID = newID
	b.cfg.MinTCB = tcb
	b.mu.Unlock()
	if err := b.pol.RevokeClaim("*", oldID, at); err != nil {
		return fmt.Errorf("kbs: bumping floor: %w", err)
	}
	return b.synthesize(policy.Claim{
		ID:      newID,
		Kind:    policy.KindPlatform,
		Scope:   "*",
		Subject: "*",
		MinTCB:  tcb.Encode(),
		Note:    fmt.Sprintf("minimum-TCB floor bumped to %s", tcb),
	})
}

// MinTCB returns the currently enforced minimum-TCB floor (the
// configured floor until the first BumpFloor).
func (b *Broker) MinTCB() TCB {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cfg.MinTCB
}

// Challenge issues a fresh single-use nonce to a tenant. Expired nonces
// are swept here, so an idle broker does not accumulate state.
func (b *Broker) Challenge(tenant string, now sim.Time) (Challenge, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.tenants[tenant]; !ok {
		return Challenge{}, deny(ReasonTenant, "unknown tenant %q", tenant)
	}
	for n, rec := range b.nonces {
		if now > rec.expires {
			delete(b.nonces, n)
		}
	}
	var c Challenge
	b.rng.Read(c.Nonce[:])
	c.Expires = now + sim.Time(b.cfg.NonceTTL)
	b.nonces[c.Nonce] = nonceRec{tenant: tenant, expires: c.Expires}
	b.stats.Challenges++
	b.reg.Counter("severifast_kbs_challenges_total").Inc()
	return c, nil
}

// BindReportData is the report user-data layout both sides compute: the
// first half binds the guest's ephemeral public key (compatible with
// attest.Agent.ReportData), the second half binds the challenge nonce, so
// a report can neither be replayed under a new nonce nor redeemed for a
// key it was not minted with.
func BindReportData(nonce [32]byte, guestPub []byte) [64]byte {
	var rd [64]byte
	key := sha256.Sum256(guestPub)
	copy(rd[:32], key[:])
	h := sha256.New()
	h.Write([]byte("kbs-nonce"))
	h.Write(nonce[:])
	copy(rd[32:], h.Sum(nil))
	return rd
}

// Redeem runs the full relying-party check sequence over one exchange
// and, if every gate passes, wraps the tenant secret for the attested
// guest key. Each denial carries a distinct Reason; the order below is
// cheapest-first and fails before any cached verdict could mask a
// per-exchange check.
func (b *Broker) Redeem(req RedeemRequest, now sim.Time) (*RedeemResult, error) {
	res, err := b.redeem(req, now)
	b.mu.Lock()
	if err != nil {
		if r := ReasonOf(err); r != "" {
			if b.stats.Denials == nil {
				b.stats.Denials = make(map[string]int)
			}
			b.stats.Denials[string(r)]++
			b.reg.Counter("severifast_kbs_denials_total", telemetry.A("reason", string(r))).Inc()
		}
	} else {
		b.stats.Grants++
		b.reg.Counter("severifast_kbs_grants_total").Inc()
	}
	b.mu.Unlock()
	return res, err
}

func (b *Broker) redeem(req RedeemRequest, now sim.Time) (*RedeemResult, error) {
	// Tenant and nonce gates. The nonce is consumed on first sight —
	// success or failure — which is what makes replay a distinct,
	// deterministic denial rather than a second grant.
	b.mu.Lock()
	secret, tenantOK := b.tenants[req.Tenant]
	rec, nonceOK := b.nonces[req.Nonce]
	delete(b.nonces, req.Nonce)
	b.mu.Unlock()
	if !tenantOK {
		return nil, deny(ReasonTenant, "unknown tenant %q", req.Tenant)
	}
	if !nonceOK {
		return nil, deny(ReasonReplay, "nonce unknown or already redeemed")
	}
	if rec.tenant != req.Tenant {
		return nil, deny(ReasonTenant, "nonce issued to %q, redeemed by %q", rec.tenant, req.Tenant)
	}
	if now > rec.expires {
		return nil, deny(ReasonExpired, "nonce expired at %v, redeemed at %v", rec.expires, now)
	}

	// Endorsement chain: parse + walk to the pinned root (cached by
	// chain content).
	chain, chainCached, err := b.verifier.VerifyChain(req.Chain)
	if err != nil {
		return nil, err
	}
	chipID := chain.VCEK.ChipID

	r, err := psp.UnmarshalReport(req.Report)
	if err != nil {
		return nil, denyCause(ReasonMalformed, err, "report: %v", err)
	}

	// Policy/TCB/measurement verdict, cached per (chip, TCB, digest,
	// guest policy, level). Only approvals are cached, and each cached
	// approval is pinned to the policy-store version that minted it (and
	// to its certificate expiry), so a Revoke or claim rotation goes
	// live on the very next exchange instead of being masked by the
	// cache. Report signatures and nonce binding are per-exchange and
	// deliberately outside the verdict.
	vk := verdictKey{
		chipID: chipID,
		tcb:    chain.VCEK.TCBVersion,
		digest: r.Measurement,
		policy: r.Policy,
		level:  r.Level,
	}
	ver := b.pol.Version()
	b.mu.Lock()
	rec2, ok := b.verdicts[vk]
	verdictCached := ok && rec2.version == ver && (rec2.expires == 0 || now <= rec2.expires)
	if verdictCached {
		b.stats.VerdictHit++
		b.reg.Counter("severifast_kbs_verdict_cache_total", telemetry.A("result", "hit")).Inc()
	} else {
		b.stats.VerdictMis++
		b.reg.Counter("severifast_kbs_verdict_cache_total", telemetry.A("result", "miss")).Inc()
	}
	b.mu.Unlock()
	if !verdictCached {
		// Broker-local guest floors (feature level, policy bits) stay
		// outside the claim language; everything platform- and
		// measurement-shaped is the policy engine's call.
		if err := b.floors(r); err != nil {
			return nil, err
		}
		cert, err := b.eng.Evaluate(policy.Evidence{
			Tenant:      req.Tenant,
			ChipID:      chipID,
			TCB:         chain.VCEK.TCBVersion,
			HasPlatform: true,
			Measurement: r.Measurement[:],
		}, now)
		if err != nil {
			return nil, mapPolicyDenial(err)
		}
		b.mu.Lock()
		b.verdicts[vk] = verdictRec{version: cert.Version, expires: cert.Expires}
		b.mu.Unlock()
	}

	// Per-exchange checks, never cached: the report signature under the
	// chain's VCEK, and the binding of nonce + guest key into the
	// report's user data.
	if err := psp.VerifyReport(chain.VCEK.Key(), r); err != nil {
		return nil, denyCause(ReasonForged, err, "%v", err)
	}
	if r.ReportData != BindReportData(req.Nonce, req.GuestPub) {
		return nil, deny(ReasonBinding, "report data does not bind nonce and guest key")
	}

	b.mu.Lock()
	bundle, err := WrapSecret(b.rng, req.GuestPub, secret)
	b.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("kbs: wrapping secret: %w", err)
	}
	return &RedeemResult{Bundle: bundle, ChainCached: chainCached, VerdictCached: verdictCached}, nil
}

// floors runs the broker-local guest floors that stay outside the claim
// language: SEV feature level and guest policy bits.
func (b *Broker) floors(r *psp.Report) error {
	if r.Level < b.cfg.MinLevel {
		return deny(ReasonPolicy, "level %v below minimum %v", r.Level, b.cfg.MinLevel)
	}
	pol := sev.DecodePolicy(r.Policy)
	if (b.cfg.MinPolicy.NoDebug && !pol.NoDebug) ||
		(b.cfg.MinPolicy.NoKeySharing && !pol.NoKeySharing) ||
		(b.cfg.MinPolicy.ESRequired && !pol.ESRequired) {
		return deny(ReasonPolicy, "guest policy %+v below floor", pol)
	}
	return nil
}

// mapPolicyDenial translates a policy-engine denial into the broker's
// historic reason taxonomy, keeping the policy denial in the cause chain
// so errors.Is(err, policy.ErrDenied) still holds for callers that care
// which layer refused.
func mapPolicyDenial(err error) error {
	d := policy.DenialOf(err)
	if d == nil {
		return err
	}
	switch {
	case d.Reason == policy.ReasonTCBFloor:
		return denyCause(ReasonStaleTCB, err, "%s", d.Detail)
	case d.Reason == policy.ReasonRevoked:
		return denyCause(ReasonRevoked, err, "%s", d.Detail)
	case d.Rule == policy.RuleMeasurement:
		return denyCause(ReasonMeasurement, err, "%s", d.Detail)
	default:
		return denyCause(ReasonPolicy, err, "%s", d.Detail)
	}
}

// Stats snapshots the broker counters.
func (b *Broker) Stats() (Stats, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.stats
	s.Denials = make(map[string]int, len(b.stats.Denials))
	for k, v := range b.stats.Denials {
		s.Denials[k] = v
	}
	s.ChainHits, s.ChainMiss = b.verifier.CacheStats()
	s.RefValues = len(b.refs)
	s.Revoked = len(b.revoked)
	s.Tenants = len(b.tenants)
	s.NoncesLive = len(b.nonces)
	return s, nil
}

// ResignReport re-signs a marshaled report under key — how the fault
// layer models platforms holding alternate identities (a stale-TCB or
// revoked VCEK): the report body is untouched, only the signature moves
// to the other key.
func ResignReport(reportBytes []byte, key *ecdsa.PrivateKey, rng io.Reader) ([]byte, error) {
	r, err := psp.UnmarshalReport(reportBytes)
	if err != nil {
		return nil, err
	}
	if err := r.Sign(rng, key); err != nil {
		return nil, err
	}
	return r.Marshal(), nil
}
