package kbs

import (
	"crypto/ecdsa"
	"crypto/sha256"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"github.com/severifast/severifast/internal/psp"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
	"github.com/severifast/severifast/internal/telemetry"
)

// DefaultNonceTTL bounds how long a challenge stays redeemable when the
// config does not say otherwise.
const DefaultNonceTTL = time.Second

// Config sets the broker's policy floors.
type Config struct {
	// MinTCB is the minimum platform TCB; VCEKs minted below it are
	// denied with ReasonStaleTCB. Zero accepts any TCB.
	MinTCB TCB
	// MinPolicy are the guest policy bits that must be set (only the
	// boolean gates are enforced, matching internal/attest).
	MinPolicy sev.Policy
	// MinLevel is the minimum SEV feature level.
	MinLevel sev.Level
	// NonceTTL is the challenge lifetime in virtual time
	// (DefaultNonceTTL when zero).
	NonceTTL time.Duration
	// Seed drives nonce generation and secret wrapping.
	Seed int64
}

// Broker is the in-process key broker. All state is guarded by one
// mutex; methods never block on simulation time — callers charge
// virtual-time costs themselves (fleet charges costmodel.KBSChainVerify
// only when RedeemResult.ChainCached is false).
type Broker struct {
	cfg      Config
	verifier *Verifier

	mu       sync.Mutex
	rng      *rand.Rand
	tenants  map[string][]byte   // tenant -> secret released on success
	refs     map[[32]byte]string // allowed launch digest -> label
	nonces   map[[32]byte]nonceRec
	revoked  map[string]bool // chip ID -> revoked
	verdicts map[verdictKey]bool
	stats    Stats
	reg      *telemetry.Registry
}

// Instrument mirrors the broker's counters (challenges, grants, denials
// by reason, verdict-cache hits and misses) into reg under
// severifast_kbs_* metric names. Nil detaches the mirror.
func (b *Broker) Instrument(reg *telemetry.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reg = reg
}

type nonceRec struct {
	tenant  string
	expires sim.Time
}

// verdictKey identifies one policy/TCB/measurement verdict. Everything
// the verdict depends on is in the key, so cached approvals cannot leak
// across platforms, TCBs, or guest configurations. Revocation, report
// signatures, and nonce binding are deliberately outside the verdict and
// re-checked on every exchange.
type verdictKey struct {
	chipID string
	tcb    uint64
	digest [32]byte
	policy uint64
	level  sev.Level
}

var _ Service = (*Broker)(nil)

// NewBroker builds a broker pinning ark as the authority root.
func NewBroker(ark *ecdsa.PublicKey, cfg Config) *Broker {
	if cfg.NonceTTL == 0 {
		cfg.NonceTTL = DefaultNonceTTL
	}
	return &Broker{
		cfg:      cfg,
		verifier: NewVerifier(ark),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		tenants:  make(map[string][]byte),
		refs:     make(map[[32]byte]string),
		nonces:   make(map[[32]byte]nonceRec),
		revoked:  make(map[string]bool),
		verdicts: make(map[verdictKey]bool),
	}
}

// AddTenant registers a tenant and the secret released to its attested
// guests.
func (b *Broker) AddTenant(name string, secret []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tenants[name] = append([]byte(nil), secret...)
}

// Provision allows a launch digest, labeling it for operators. The fleet
// orchestrator feeds this directly from its measured-image cache, so the
// reference-value store is derived from what the fleet actually builds
// rather than hand-listed.
func (b *Broker) Provision(digest [32]byte, label string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refs[digest] = label
	return nil
}

// Revoke puts a chip ID on the revocation list; all its VCEKs are
// refused from now on, current TCB or not.
func (b *Broker) Revoke(chipID string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.revoked[chipID] = true
	return nil
}

// Challenge issues a fresh single-use nonce to a tenant. Expired nonces
// are swept here, so an idle broker does not accumulate state.
func (b *Broker) Challenge(tenant string, now sim.Time) (Challenge, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.tenants[tenant]; !ok {
		return Challenge{}, deny(ReasonTenant, "unknown tenant %q", tenant)
	}
	for n, rec := range b.nonces {
		if now > rec.expires {
			delete(b.nonces, n)
		}
	}
	var c Challenge
	b.rng.Read(c.Nonce[:])
	c.Expires = now + sim.Time(b.cfg.NonceTTL)
	b.nonces[c.Nonce] = nonceRec{tenant: tenant, expires: c.Expires}
	b.stats.Challenges++
	b.reg.Counter("severifast_kbs_challenges_total").Inc()
	return c, nil
}

// BindReportData is the report user-data layout both sides compute: the
// first half binds the guest's ephemeral public key (compatible with
// attest.Agent.ReportData), the second half binds the challenge nonce, so
// a report can neither be replayed under a new nonce nor redeemed for a
// key it was not minted with.
func BindReportData(nonce [32]byte, guestPub []byte) [64]byte {
	var rd [64]byte
	key := sha256.Sum256(guestPub)
	copy(rd[:32], key[:])
	h := sha256.New()
	h.Write([]byte("kbs-nonce"))
	h.Write(nonce[:])
	copy(rd[32:], h.Sum(nil))
	return rd
}

// Redeem runs the full relying-party check sequence over one exchange
// and, if every gate passes, wraps the tenant secret for the attested
// guest key. Each denial carries a distinct Reason; the order below is
// cheapest-first and fails before any cached verdict could mask a
// per-exchange check.
func (b *Broker) Redeem(req RedeemRequest, now sim.Time) (*RedeemResult, error) {
	res, err := b.redeem(req, now)
	b.mu.Lock()
	if err != nil {
		if r := ReasonOf(err); r != "" {
			if b.stats.Denials == nil {
				b.stats.Denials = make(map[string]int)
			}
			b.stats.Denials[string(r)]++
			b.reg.Counter("severifast_kbs_denials_total", telemetry.A("reason", string(r))).Inc()
		}
	} else {
		b.stats.Grants++
		b.reg.Counter("severifast_kbs_grants_total").Inc()
	}
	b.mu.Unlock()
	return res, err
}

func (b *Broker) redeem(req RedeemRequest, now sim.Time) (*RedeemResult, error) {
	// Tenant and nonce gates. The nonce is consumed on first sight —
	// success or failure — which is what makes replay a distinct,
	// deterministic denial rather than a second grant.
	b.mu.Lock()
	secret, tenantOK := b.tenants[req.Tenant]
	rec, nonceOK := b.nonces[req.Nonce]
	delete(b.nonces, req.Nonce)
	b.mu.Unlock()
	if !tenantOK {
		return nil, deny(ReasonTenant, "unknown tenant %q", req.Tenant)
	}
	if !nonceOK {
		return nil, deny(ReasonReplay, "nonce unknown or already redeemed")
	}
	if rec.tenant != req.Tenant {
		return nil, deny(ReasonTenant, "nonce issued to %q, redeemed by %q", rec.tenant, req.Tenant)
	}
	if now > rec.expires {
		return nil, deny(ReasonExpired, "nonce expired at %v, redeemed at %v", rec.expires, now)
	}

	// Endorsement chain: parse + walk to the pinned root (cached by
	// chain content), then the revocation list.
	chain, chainCached, err := b.verifier.VerifyChain(req.Chain)
	if err != nil {
		return nil, err
	}
	chipID := chain.VCEK.ChipID
	b.mu.Lock()
	revoked := b.revoked[chipID]
	b.mu.Unlock()
	if revoked {
		return nil, deny(ReasonRevoked, "chip %q", chipID)
	}

	r, err := psp.UnmarshalReport(req.Report)
	if err != nil {
		return nil, denyCause(ReasonMalformed, err, "report: %v", err)
	}

	// Policy/TCB/measurement verdict, cached per (chip, TCB, digest,
	// guest policy, level). Only approvals are cached: Provision can
	// widen the reference store at any time, so a cached rejection
	// would go stale, while a cached approval stays sound because the
	// store only grows and the policy floors are fixed at construction.
	vk := verdictKey{
		chipID: chipID,
		tcb:    chain.VCEK.TCBVersion,
		digest: r.Measurement,
		policy: r.Policy,
		level:  r.Level,
	}
	b.mu.Lock()
	verdictCached := b.verdicts[vk]
	if verdictCached {
		b.stats.VerdictHit++
		b.reg.Counter("severifast_kbs_verdict_cache_total", telemetry.A("result", "hit")).Inc()
	} else {
		b.stats.VerdictMis++
		b.reg.Counter("severifast_kbs_verdict_cache_total", telemetry.A("result", "miss")).Inc()
	}
	b.mu.Unlock()
	if !verdictCached {
		if err := b.verdict(chain, r); err != nil {
			return nil, err
		}
		b.mu.Lock()
		b.verdicts[vk] = true
		b.mu.Unlock()
	}

	// Per-exchange checks, never cached: the report signature under the
	// chain's VCEK, and the binding of nonce + guest key into the
	// report's user data.
	if err := psp.VerifyReport(chain.VCEK.Key(), r); err != nil {
		return nil, denyCause(ReasonForged, err, "%v", err)
	}
	if r.ReportData != BindReportData(req.Nonce, req.GuestPub) {
		return nil, deny(ReasonBinding, "report data does not bind nonce and guest key")
	}

	b.mu.Lock()
	bundle, err := WrapSecret(b.rng, req.GuestPub, secret)
	b.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("kbs: wrapping secret: %w", err)
	}
	return &RedeemResult{Bundle: bundle, ChainCached: chainCached, VerdictCached: verdictCached}, nil
}

// verdict runs the cacheable policy checks.
func (b *Broker) verdict(chain *psp.Chain, r *psp.Report) error {
	tcb := DecodeTCB(chain.VCEK.TCBVersion)
	if !tcb.AtLeast(b.cfg.MinTCB) {
		return deny(ReasonStaleTCB, "platform TCB %v below minimum %v", tcb, b.cfg.MinTCB)
	}
	if r.Level < b.cfg.MinLevel {
		return deny(ReasonPolicy, "level %v below minimum %v", r.Level, b.cfg.MinLevel)
	}
	pol := sev.DecodePolicy(r.Policy)
	if (b.cfg.MinPolicy.NoDebug && !pol.NoDebug) ||
		(b.cfg.MinPolicy.NoKeySharing && !pol.NoKeySharing) ||
		(b.cfg.MinPolicy.ESRequired && !pol.ESRequired) {
		return deny(ReasonPolicy, "guest policy %+v below floor", pol)
	}
	b.mu.Lock()
	_, allowed := b.refs[r.Measurement]
	b.mu.Unlock()
	if !allowed {
		return deny(ReasonMeasurement, "launch digest %x not provisioned", r.Measurement[:8])
	}
	return nil
}

// Stats snapshots the broker counters.
func (b *Broker) Stats() (Stats, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.stats
	s.Denials = make(map[string]int, len(b.stats.Denials))
	for k, v := range b.stats.Denials {
		s.Denials[k] = v
	}
	s.ChainHits, s.ChainMiss = b.verifier.CacheStats()
	s.RefValues = len(b.refs)
	s.Revoked = len(b.revoked)
	s.Tenants = len(b.tenants)
	s.NoncesLive = len(b.nonces)
	return s, nil
}

// ResignReport re-signs a marshaled report under key — how the fault
// layer models platforms holding alternate identities (a stale-TCB or
// revoked VCEK): the report body is untouched, only the signature moves
// to the other key.
func ResignReport(reportBytes []byte, key *ecdsa.PrivateKey, rng io.Reader) ([]byte, error) {
	r, err := psp.UnmarshalReport(reportBytes)
	if err != nil {
		return nil, err
	}
	if err := r.Sign(rng, key); err != nil {
		return nil, err
	}
	return r.Marshal(), nil
}
