package kbs

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/sha256"
	"fmt"
	"io"
)

// Bundle is a secret wrapped for one guest: the broker's ephemeral X25519
// public key, the GCM nonce, and the ciphertext. Only the holder of the
// guest private key whose public half was attested can open it (Fig. 1
// step 8).
type Bundle struct {
	OwnerPub   []byte
	Nonce      []byte
	Ciphertext []byte
}

// WrapSecret seals secret for guestPub: ephemeral X25519 ECDH, then
// AES-256-GCM under the SHA-256 of the shared secret. rng drives the
// ephemeral key and nonce (seeded in simulation).
func WrapSecret(rng io.Reader, guestPub, secret []byte) (*Bundle, error) {
	priv, err := ecdh.X25519().GenerateKey(rng)
	if err != nil {
		return nil, err
	}
	pub, err := ecdh.X25519().NewPublicKey(guestPub)
	if err != nil {
		return nil, fmt.Errorf("kbs: guest key: %w", err)
	}
	shared, err := priv.ECDH(pub)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, 12)
	if _, err := io.ReadFull(rng, nonce); err != nil {
		return nil, err
	}
	ct, err := Seal(shared, nonce, secret)
	if err != nil {
		return nil, err
	}
	return &Bundle{OwnerPub: priv.PublicKey().Bytes(), Nonce: nonce, Ciphertext: ct}, nil
}

// UnwrapSecret opens a bundle with the guest's private key.
func UnwrapSecret(priv *ecdh.PrivateKey, b *Bundle) ([]byte, error) {
	ownerPub, err := ecdh.X25519().NewPublicKey(b.OwnerPub)
	if err != nil {
		return nil, fmt.Errorf("kbs: owner key: %w", err)
	}
	shared, err := priv.ECDH(ownerPub)
	if err != nil {
		return nil, err
	}
	return Open(shared, b.Nonce, b.Ciphertext)
}

// sealKey derives the AES-256 key from an ECDH shared secret.
func sealKey(shared []byte) []byte {
	k := sha256.Sum256(shared)
	return k[:]
}

// Seal encrypts plaintext with AES-256-GCM under the key derived from
// shared. Exported so internal/attest shares one sealing construction.
func Seal(shared, nonce, plaintext []byte) ([]byte, error) {
	aead, err := gcm(shared)
	if err != nil {
		return nil, err
	}
	return aead.Seal(nil, nonce, plaintext, nil), nil
}

// Open reverses Seal.
func Open(shared, nonce, ct []byte) ([]byte, error) {
	aead, err := gcm(shared)
	if err != nil {
		return nil, err
	}
	return aead.Open(nil, nonce, ct, nil)
}

func gcm(shared []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(sealKey(shared))
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}
