package kbs_test

import (
	"crypto/ecdh"
	"errors"
	"math/rand"
	"net/http/httptest"
	"testing"

	"github.com/severifast/severifast/internal/costmodel"
	"github.com/severifast/severifast/internal/guestmem"
	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/psp"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
)

// platform is one enrolled host with a finished guest on it.
type platform struct {
	psp    *psp.PSP
	ctx    *psp.GuestContext
	digest [32]byte
	enr    *kbs.Enrollment
}

// launch enrolls a PSP under auth as (chip, tcb) and boots a minimal
// guest, returning the finished launch context and digest.
func launch(t *testing.T, auth *kbs.Authority, chip string, tcb kbs.TCB, level sev.Level, policy sev.Policy) *platform {
	t.Helper()
	p := psp.New(costmodel.Unit(), 1)
	enr := auth.Enroll(p, chip, tcb)
	mem := guestmem.New(1 << 20)
	ctx, err := p.LaunchStart(nil, mem, level, policy)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.HostWrite(0x1000, []byte("kbs guest image")); err != nil {
		t.Fatal(err)
	}
	if err := ctx.LaunchUpdateData(nil, 0x1000, 15, sev.PageNormal); err != nil {
		t.Fatal(err)
	}
	digest, err := ctx.LaunchFinish(nil)
	if err != nil {
		t.Fatal(err)
	}
	return &platform{psp: p, ctx: ctx, digest: digest, enr: enr}
}

func guestKey(t *testing.T, seed int64) *ecdh.PrivateKey {
	t.Helper()
	priv, err := ecdh.X25519().GenerateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return priv
}

// exchange runs one challenge/redeem round trip against svc, with
// optional tampering hooks between report generation and redemption.
func exchange(t *testing.T, svc kbs.Service, pl *platform, tenant string, now sim.Time,
	tamper func(req *kbs.RedeemRequest)) (*kbs.RedeemResult, *ecdh.PrivateKey, error) {
	t.Helper()
	ch, err := svc.Challenge(tenant, now)
	if err != nil {
		return nil, nil, err
	}
	priv := guestKey(t, 99)
	pub := priv.PublicKey().Bytes()
	report, err := pl.ctx.BuildReport(nil, kbs.BindReportData(ch.Nonce, pub))
	if err != nil {
		t.Fatal(err)
	}
	req := kbs.RedeemRequest{
		Tenant:   tenant,
		Nonce:    ch.Nonce,
		Report:   report.Marshal(),
		Chain:    pl.enr.Chain.Marshal(),
		GuestPub: pub,
	}
	if tamper != nil {
		tamper(&req)
	}
	res, err := svc.Redeem(req, now)
	return res, priv, err
}

var currentTCB = kbs.TCB{BootLoader: 2, TEE: 1, SNP: 8, Microcode: 115}

func newBroker(auth *kbs.Authority, cfg kbs.Config) *kbs.Broker {
	b := kbs.NewBroker(auth.Root(), cfg)
	b.AddTenant("acme", []byte("acme disk key"))
	return b
}

func TestTCBEncodeDecode(t *testing.T) {
	for _, tcb := range []kbs.TCB{{}, currentTCB, {BootLoader: 255, TEE: 255, SNP: 255, Microcode: 255}} {
		if got := kbs.DecodeTCB(tcb.Encode()); got != tcb {
			t.Fatalf("round trip: %v -> %v", tcb, got)
		}
	}
	parsed, err := kbs.ParseTCB(currentTCB.String())
	if err != nil || parsed != currentTCB {
		t.Fatalf("ParseTCB(%q) = %v, %v", currentTCB.String(), parsed, err)
	}
	if _, err := kbs.ParseTCB("1.2.3"); err == nil {
		t.Fatal("short TCB accepted")
	}
	if _, err := kbs.ParseTCB("1.2.3.999"); err == nil {
		t.Fatal("overflowing component accepted")
	}
}

func TestTCBAtLeast(t *testing.T) {
	min := kbs.TCB{BootLoader: 2, TEE: 1, SNP: 8, Microcode: 100}
	if !currentTCB.AtLeast(min) {
		t.Fatal("current TCB should satisfy min")
	}
	// One lagging component fails even when others are ahead.
	lagging := kbs.TCB{BootLoader: 9, TEE: 9, SNP: 7, Microcode: 200}
	if lagging.AtLeast(min) {
		t.Fatal("lagging SNP component accepted")
	}
}

func TestTCBPredecessor(t *testing.T) {
	p, err := currentTCB.Predecessor()
	if err != nil {
		t.Fatal(err)
	}
	if !currentTCB.AtLeast(p) || p.AtLeast(currentTCB) {
		t.Fatalf("predecessor %v not strictly older than %v", p, currentTCB)
	}
	// Rollover decrements the next component up.
	p2, err := kbs.TCB{SNP: 1}.Predecessor()
	if err != nil || p2 != (kbs.TCB{}) {
		t.Fatalf("Predecessor({SNP:1}) = %v, %v", p2, err)
	}
	if _, err := (kbs.TCB{}).Predecessor(); !errors.Is(err, kbs.ErrTCBFloor) {
		t.Fatalf("zero TCB predecessor: %v", err)
	}
}

func TestAuthorityDeterministic(t *testing.T) {
	a1 := kbs.NewAuthority(42)
	a2 := kbs.NewAuthority(42)
	// Same seed ⇒ same hierarchy: roots agree, and a chain minted by one
	// authority verifies under the other's pin, regardless of the order
	// chains are requested in. (Signature *bytes* may differ — Go's
	// ecdsa.Sign deliberately hedges even under a seeded reader — but
	// every derived key is identical, which is what interoperability
	// between sevf-fleet and sevf-attestd needs.)
	if !a1.Root().Equal(a2.Root()) {
		t.Fatal("same-seed authorities derived different roots")
	}
	a1.ChainFor("chip-b", currentTCB)
	c1 := a1.ChainFor("chip-a", currentTCB)
	c2 := a2.ChainFor("chip-a", currentTCB)
	if !c1.VCEK.Key().Equal(c2.VCEK.Key()) {
		t.Fatal("same-seed authorities derived different VCEKs")
	}
	if err := c1.Verify(a2.Root()); err != nil {
		t.Fatalf("a1 chain does not verify under a2 root: %v", err)
	}
	if err := c2.Verify(a1.Root()); err != nil {
		t.Fatalf("a2 chain does not verify under a1 root: %v", err)
	}
	older, _ := currentTCB.Predecessor()
	if a1.ChainFor("chip-a", older).VCEK.Key().Equal(c1.VCEK.Key()) {
		t.Fatal("different TCBs derived the same VCEK")
	}
	if kbs.NewAuthority(43).Root().Equal(a1.Root()) {
		t.Fatal("different seeds derived the same root")
	}
}

func TestEnrolledChainVerifies(t *testing.T) {
	auth := kbs.NewAuthority(7)
	pl := launch(t, auth, "chip-0", currentTCB, sev.SNP, sev.DefaultPolicy())
	if err := pl.enr.Chain.Verify(auth.Root()); err != nil {
		t.Fatalf("enrolled chain does not verify: %v", err)
	}
	if pl.enr.Chain.VCEK.ChipID != "chip-0" || pl.enr.Chain.VCEK.TCBVersion != currentTCB.Encode() {
		t.Fatal("chain missing chip/TCB identity")
	}
	// The chain survives its own wire format with identity intact.
	rt, err := psp.UnmarshalChain(pl.enr.Chain.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if rt.VCEK.ChipID != "chip-0" || rt.VCEK.TCBVersion != currentTCB.Encode() {
		t.Fatal("chip/TCB identity lost on the wire")
	}
}

func TestGrantReleasesSecret(t *testing.T) {
	auth := kbs.NewAuthority(7)
	pl := launch(t, auth, "chip-0", currentTCB, sev.SNP, sev.DefaultPolicy())
	b := newBroker(auth, kbs.Config{MinLevel: sev.SNP, MinPolicy: sev.DefaultPolicy(), Seed: 3})
	if err := b.Provision(pl.digest, "test image"); err != nil {
		t.Fatal(err)
	}
	res, priv, err := exchange(t, b, pl, "acme", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	secret, err := kbs.UnwrapSecret(priv, res.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if string(secret) != "acme disk key" {
		t.Fatalf("unwrapped %q", secret)
	}
	if res.ChainCached || res.VerdictCached {
		t.Fatal("first exchange claimed cache hits")
	}
}

func TestDenialReasons(t *testing.T) {
	auth := kbs.NewAuthority(7)
	pl := launch(t, auth, "chip-0", currentTCB, sev.SNP, sev.DefaultPolicy())

	setup := func(cfg kbs.Config) *kbs.Broker {
		b := newBroker(auth, cfg)
		if err := b.Provision(pl.digest, "img"); err != nil {
			t.Fatal(err)
		}
		return b
	}
	base := kbs.Config{MinLevel: sev.SNP, MinPolicy: sev.DefaultPolicy(), Seed: 3}

	t.Run("tenant", func(t *testing.T) {
		b := setup(base)
		if _, err := b.Challenge("nobody", 0); !errors.Is(err, kbs.ErrTenant) {
			t.Fatalf("err = %v", err)
		}
		// A nonce issued to one tenant cannot be redeemed by another.
		_, _, err := exchange(t, b, pl, "acme", 0, func(req *kbs.RedeemRequest) {
			b.AddTenant("mallory", []byte("m"))
			req.Tenant = "mallory"
		})
		if !errors.Is(err, kbs.ErrTenant) {
			t.Fatalf("cross-tenant redeem: %v", err)
		}
	})

	t.Run("replay", func(t *testing.T) {
		b := setup(base)
		var replayReq kbs.RedeemRequest
		_, _, err := exchange(t, b, pl, "acme", 0, func(req *kbs.RedeemRequest) { replayReq = *req })
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Redeem(replayReq, 0); !errors.Is(err, kbs.ErrReplay) {
			t.Fatalf("replayed exchange: %v", err)
		}
		// A never-issued nonce is also a replay-class denial.
		replayReq.Nonce[0] ^= 1
		if _, err := b.Redeem(replayReq, 0); !errors.Is(err, kbs.ErrReplay) {
			t.Fatalf("unissued nonce: %v", err)
		}
	})

	t.Run("expired", func(t *testing.T) {
		b := setup(base)
		ch, err := b.Challenge("acme", 0)
		if err != nil {
			t.Fatal(err)
		}
		priv := guestKey(t, 99)
		pub := priv.PublicKey().Bytes()
		report, err := pl.ctx.BuildReport(nil, kbs.BindReportData(ch.Nonce, pub))
		if err != nil {
			t.Fatal(err)
		}
		req := kbs.RedeemRequest{Tenant: "acme", Nonce: ch.Nonce, Report: report.Marshal(),
			Chain: pl.enr.Chain.Marshal(), GuestPub: pub}
		if _, err := b.Redeem(req, ch.Expires+1); !errors.Is(err, kbs.ErrExpired) {
			t.Fatalf("expired nonce: %v", err)
		}
	})

	t.Run("malformed", func(t *testing.T) {
		b := setup(base)
		_, _, err := exchange(t, b, pl, "acme", 0, func(req *kbs.RedeemRequest) {
			req.Chain = []byte("junk")
		})
		if !errors.Is(err, kbs.ErrMalformed) {
			t.Fatalf("junk chain: %v", err)
		}
		_, _, err = exchange(t, b, pl, "acme", 0, func(req *kbs.RedeemRequest) {
			req.Report = req.Report[:10]
		})
		if !errors.Is(err, kbs.ErrMalformed) {
			t.Fatalf("truncated report: %v", err)
		}
	})

	t.Run("forged", func(t *testing.T) {
		b := setup(base)
		// Bit-flipped report signature.
		_, _, err := exchange(t, b, pl, "acme", 0, func(req *kbs.RedeemRequest) {
			req.Report[len(req.Report)-1] ^= 0xFF
		})
		if !errors.Is(err, kbs.ErrForged) {
			t.Fatalf("flipped signature: %v", err)
		}
		// Self-minted chain from a platform outside the hierarchy.
		rogue := psp.New(costmodel.Unit(), 666)
		_, _, err = exchange(t, b, pl, "acme", 0, func(req *kbs.RedeemRequest) {
			req.Chain = rogue.CertChain().Marshal()
		})
		if !errors.Is(err, kbs.ErrForged) {
			t.Fatalf("rogue chain: %v", err)
		}
	})

	t.Run("revoked", func(t *testing.T) {
		b := setup(base)
		if err := b.Revoke("chip-0"); err != nil {
			t.Fatal(err)
		}
		_, _, err := exchange(t, b, pl, "acme", 0, nil)
		if !errors.Is(err, kbs.ErrRevoked) {
			t.Fatalf("revoked chip: %v", err)
		}
	})

	t.Run("stale-tcb", func(t *testing.T) {
		cfg := base
		cfg.MinTCB = currentTCB
		b := newBroker(auth, cfg)
		older, _ := currentTCB.Predecessor()
		stale := launch(t, auth, "chip-old", older, sev.SNP, sev.DefaultPolicy())
		if err := b.Provision(stale.digest, "img"); err != nil {
			t.Fatal(err)
		}
		_, _, err := exchange(t, b, stale, "acme", 0, nil)
		if !errors.Is(err, kbs.ErrStaleTCB) {
			t.Fatalf("stale TCB: %v", err)
		}
		// The same broker still grants to a current platform.
		fresh := launch(t, auth, "chip-new", currentTCB, sev.SNP, sev.DefaultPolicy())
		if err := b.Provision(fresh.digest, "img"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := exchange(t, b, fresh, "acme", 0, nil); err != nil {
			t.Fatalf("current TCB denied: %v", err)
		}
	})

	t.Run("policy", func(t *testing.T) {
		b := setup(base)
		weak := launch(t, auth, "chip-weak", currentTCB, sev.SNP, sev.Policy{ESRequired: true})
		if err := b.Provision(weak.digest, "img"); err != nil {
			t.Fatal(err)
		}
		_, _, err := exchange(t, b, weak, "acme", 0, nil)
		if !errors.Is(err, kbs.ErrPolicy) {
			t.Fatalf("weak policy: %v", err)
		}
		low := launch(t, auth, "chip-low", currentTCB, sev.ES,
			sev.Policy{NoDebug: true, NoKeySharing: true, ESRequired: true})
		if err := b.Provision(low.digest, "img"); err != nil {
			t.Fatal(err)
		}
		_, _, err = exchange(t, b, low, "acme", 0, nil)
		if !errors.Is(err, kbs.ErrPolicy) {
			t.Fatalf("low level: %v", err)
		}
	})

	t.Run("measurement", func(t *testing.T) {
		b := newBroker(auth, base) // nothing provisioned
		_, _, err := exchange(t, b, pl, "acme", 0, nil)
		if !errors.Is(err, kbs.ErrMeasurement) {
			t.Fatalf("unprovisioned digest: %v", err)
		}
	})

	t.Run("binding", func(t *testing.T) {
		b := setup(base)
		mitm := guestKey(t, 666)
		_, _, err := exchange(t, b, pl, "acme", 0, func(req *kbs.RedeemRequest) {
			req.GuestPub = mitm.PublicKey().Bytes()
		})
		if !errors.Is(err, kbs.ErrBinding) {
			t.Fatalf("substituted guest key: %v", err)
		}
	})
}

func TestVerificationCaches(t *testing.T) {
	auth := kbs.NewAuthority(7)
	pl := launch(t, auth, "chip-0", currentTCB, sev.SNP, sev.DefaultPolicy())
	b := newBroker(auth, kbs.Config{MinLevel: sev.SNP, MinPolicy: sev.DefaultPolicy(), Seed: 3})
	if err := b.Provision(pl.digest, "img"); err != nil {
		t.Fatal(err)
	}
	first, _, err := exchange(t, b, pl, "acme", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.ChainCached || first.VerdictCached {
		t.Fatal("cold exchange reported cache hits")
	}
	second, _, err := exchange(t, b, pl, "acme", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !second.ChainCached || !second.VerdictCached {
		t.Fatal("hot exchange missed the caches")
	}
	// Cached verdicts must not weaken per-exchange checks: a forged
	// signature on the hot path is still refused.
	_, _, err = exchange(t, b, pl, "acme", 0, func(req *kbs.RedeemRequest) {
		req.Report[len(req.Report)-1] ^= 0xFF
	})
	if !errors.Is(err, kbs.ErrForged) {
		t.Fatalf("forged report on hot path: %v", err)
	}
	s, err := b.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.ChainHits == 0 || s.VerdictHit == 0 {
		t.Fatalf("stats missing cache hits: %+v", s)
	}
	if s.Grants != 2 || s.Denials["forged"] != 1 {
		t.Fatalf("stats wrong: %+v", s)
	}
}

func TestResignReport(t *testing.T) {
	auth := kbs.NewAuthority(7)
	pl := launch(t, auth, "chip-0", currentTCB, sev.SNP, sev.DefaultPolicy())
	report, err := pl.ctx.BuildReport(nil, [64]byte{})
	if err != nil {
		t.Fatal(err)
	}
	older, _ := currentTCB.Predecessor()
	staleKey := auth.VCEKKey("chip-0", older)
	resigned, err := kbs.ResignReport(report.Marshal(), staleKey, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := psp.UnmarshalReport(resigned)
	if err != nil {
		t.Fatal(err)
	}
	if err := psp.VerifyReport(&staleKey.PublicKey, r); err != nil {
		t.Fatalf("resigned report does not verify under new key: %v", err)
	}
	currentKey := auth.VCEKKey("chip-0", currentTCB)
	if psp.VerifyReport(&currentKey.PublicKey, r) == nil {
		t.Fatal("resigned report still verifies under the current-TCB key")
	}
	if r.Measurement != pl.digest {
		t.Fatal("resigning altered the report body")
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	auth := kbs.NewAuthority(7)
	pl := launch(t, auth, "chip-0", currentTCB, sev.SNP, sev.DefaultPolicy())
	b := newBroker(auth, kbs.Config{MinLevel: sev.SNP, MinPolicy: sev.DefaultPolicy(), Seed: 3})
	srv := httptest.NewServer(b.Handler())
	defer srv.Close()
	c := &kbs.Client{Base: srv.URL}

	// Provision over the wire, then a full exchange.
	if err := c.Provision(pl.digest, "img"); err != nil {
		t.Fatal(err)
	}
	res, priv, err := exchange(t, c, pl, "acme", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	secret, err := kbs.UnwrapSecret(priv, res.Bundle)
	if err != nil || string(secret) != "acme disk key" {
		t.Fatalf("unwrap over HTTP: %q, %v", secret, err)
	}

	// Denial reasons survive the wire: revoke remotely, then errors.Is
	// still matches the typed sentinel client-side.
	if err := c.Revoke("chip-0"); err != nil {
		t.Fatal(err)
	}
	_, _, err = exchange(t, c, pl, "acme", 0, nil)
	if !errors.Is(err, kbs.ErrRevoked) || !errors.Is(err, kbs.ErrDenied) {
		t.Fatalf("remote denial lost its reason: %v", err)
	}
	s, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Grants != 1 || s.Denials["revoked"] != 1 || s.Tenants != 1 {
		t.Fatalf("remote stats wrong: %+v", s)
	}
}

func TestWrapTamperDetected(t *testing.T) {
	priv := guestKey(t, 5)
	bundle, err := kbs.WrapSecret(rand.New(rand.NewSource(9)), priv.PublicKey().Bytes(), []byte("s3cret"))
	if err != nil {
		t.Fatal(err)
	}
	bundle.Ciphertext[0] ^= 1
	if _, err := kbs.UnwrapSecret(priv, bundle); err == nil {
		t.Fatal("tampered ciphertext unwrapped")
	}
}

func TestReasonOf(t *testing.T) {
	if kbs.ReasonOf(errors.New("plain")) != "" {
		t.Fatal("plain error has a reason")
	}
	wrapped := errors.Join(errors.New("ctx"), kbs.ErrStaleTCB)
	if kbs.ReasonOf(wrapped) != kbs.ReasonStaleTCB {
		t.Fatal("wrapped denial lost its reason")
	}
}
