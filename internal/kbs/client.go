package kbs

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"github.com/severifast/severifast/internal/sim"
)

// Client speaks the broker protocol against a remote sevf-attestd. It
// implements Service, so the fleet orchestrator is indifferent to
// whether the broker is in process or across the network — and denial
// reasons survive the round trip: errors.Is(err, kbs.ErrStaleTCB) holds
// on the client side exactly when the remote broker denied for that
// reason.
type Client struct {
	// Base is the server URL, e.g. "http://127.0.0.1:8553".
	Base string
	// HTTP is the client to use (http.DefaultClient when nil).
	HTTP *http.Client
}

var _ Service = (*Client)(nil)

func (c *Client) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	r, err := hc.Post(c.Base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return err
	}
	if r.StatusCode == http.StatusForbidden {
		var d denialBody
		if json.Unmarshal(raw, &d) == nil && d.Reason != "" {
			return &Denial{Reason: Reason(d.Reason), Detail: d.Detail}
		}
	}
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("kbs: %s: %s: %s", path, r.Status, bytes.TrimSpace(raw))
	}
	if resp != nil {
		return json.Unmarshal(raw, resp)
	}
	return nil
}

// Challenge implements Service.
func (c *Client) Challenge(tenant string, now sim.Time) (Challenge, error) {
	var resp challengeResponse
	if err := c.post("/challenge", challengeRequest{Tenant: tenant, Now: int64(now)}, &resp); err != nil {
		return Challenge{}, err
	}
	var ch Challenge
	nonce, err := hex.DecodeString(resp.Nonce)
	if err != nil || len(nonce) != len(ch.Nonce) {
		return Challenge{}, fmt.Errorf("kbs: server nonce malformed")
	}
	copy(ch.Nonce[:], nonce)
	ch.Expires = sim.Time(resp.Expires)
	return ch, nil
}

// Redeem implements Service.
func (c *Client) Redeem(req RedeemRequest, now sim.Time) (*RedeemResult, error) {
	wire := redeemRequest{
		Tenant:   req.Tenant,
		Nonce:    hex.EncodeToString(req.Nonce[:]),
		Report:   hex.EncodeToString(req.Report),
		Chain:    hex.EncodeToString(req.Chain),
		GuestPub: hex.EncodeToString(req.GuestPub),
		Now:      int64(now),
	}
	var resp redeemResponse
	if err := c.post("/redeem", wire, &resp); err != nil {
		return nil, err
	}
	ownerPub, err := hex.DecodeString(resp.OwnerPub)
	if err != nil {
		return nil, fmt.Errorf("kbs: server bundle malformed: %w", err)
	}
	nonce, err := hex.DecodeString(resp.Nonce)
	if err != nil {
		return nil, fmt.Errorf("kbs: server bundle malformed: %w", err)
	}
	ct, err := hex.DecodeString(resp.Ciphertext)
	if err != nil {
		return nil, fmt.Errorf("kbs: server bundle malformed: %w", err)
	}
	return &RedeemResult{
		Bundle:        &Bundle{OwnerPub: ownerPub, Nonce: nonce, Ciphertext: ct},
		ChainCached:   resp.ChainCached,
		VerdictCached: resp.VerdictCached,
	}, nil
}

// Provision implements Service.
func (c *Client) Provision(digest [32]byte, label string) error {
	return c.post("/provision", provisionRequest{
		Digest: hex.EncodeToString(digest[:]),
		Label:  label,
	}, nil)
}

// Revoke implements Service.
func (c *Client) Revoke(chipID string) error {
	return c.post("/revoke", revokeRequest{ChipID: chipID}, nil)
}

// Stats implements Service.
func (c *Client) Stats() (Stats, error) {
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	r, err := hc.Get(c.Base + "/stats")
	if err != nil {
		return Stats{}, err
	}
	defer r.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return Stats{}, err
	}
	if r.StatusCode != http.StatusOK {
		return Stats{}, fmt.Errorf("kbs: /stats: %s: %s", r.Status, bytes.TrimSpace(raw))
	}
	var s Stats
	if err := json.Unmarshal(raw, &s); err != nil {
		return Stats{}, err
	}
	return s, nil
}
