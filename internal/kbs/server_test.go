package kbs_test

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/severifast/severifast/internal/kbs"
	"github.com/severifast/severifast/internal/policy"
	"github.com/severifast/severifast/internal/sev"
	"github.com/severifast/severifast/internal/sim"
)

// TestHandlerErrorPaths drives every malformed-input class through the
// HTTP face: wrong method, invalid JSON, an oversized body, bad hex
// fields, and an unknown tenant. Denials are 403 with a JSON reason;
// everything malformed is 400 before the broker is ever consulted.
func TestHandlerErrorPaths(t *testing.T) {
	auth := kbs.NewAuthority(7)
	b := newBroker(auth, kbs.Config{MinLevel: sev.SNP, MinPolicy: sev.DefaultPolicy(), Seed: 3})
	srv := httptest.NewServer(b.Handler())
	defer srv.Close()

	huge := `{"tenant":"` + strings.Repeat("a", 1<<20) + `"}`
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		// want is a substring of the response body.
		want string
	}{
		{"challenge GET", http.MethodGet, "/challenge", "", http.StatusMethodNotAllowed, "POST only"},
		{"redeem GET", http.MethodGet, "/redeem", "", http.StatusMethodNotAllowed, "POST only"},
		{"provision DELETE", http.MethodDelete, "/provision", "", http.StatusMethodNotAllowed, "POST only"},
		{"challenge bad JSON", http.MethodPost, "/challenge", `{"tenant":`, http.StatusBadRequest, "json:"},
		{"challenge oversized body", http.MethodPost, "/challenge", huge, http.StatusBadRequest, "read:"},
		{"challenge unknown tenant", http.MethodPost, "/challenge", `{"tenant":"nobody","now":0}`, http.StatusForbidden, `"reason":"tenant"`},
		{"redeem short nonce", http.MethodPost, "/redeem", `{"tenant":"acme","nonce":"abcd"}`, http.StatusBadRequest, "nonce: want 32 hex-encoded bytes"},
		{"redeem bad nonce hex", http.MethodPost, "/redeem", `{"tenant":"acme","nonce":"zz"}`, http.StatusBadRequest, "nonce: want 32 hex-encoded bytes"},
		{"redeem bad report hex", http.MethodPost, "/redeem",
			`{"tenant":"acme","nonce":"` + strings.Repeat("00", 32) + `","report":"zz"}`,
			http.StatusBadRequest, "report hex:"},
		{"redeem bad chain hex", http.MethodPost, "/redeem",
			`{"tenant":"acme","nonce":"` + strings.Repeat("00", 32) + `","report":"","chain":"zz"}`,
			http.StatusBadRequest, "chain hex:"},
		{"redeem bad guest key hex", http.MethodPost, "/redeem",
			`{"tenant":"acme","nonce":"` + strings.Repeat("00", 32) + `","report":"","chain":"","guest_pub":"zz"}`,
			http.StatusBadRequest, "guest_pub hex:"},
		{"redeem unissued nonce", http.MethodPost, "/redeem",
			`{"tenant":"acme","nonce":"` + strings.Repeat("00", 32) + `","report":"","chain":"","guest_pub":""}`,
			http.StatusForbidden, `"reason":"replay"`},
		{"provision bad digest hex", http.MethodPost, "/provision", `{"digest":"zz","label":"x"}`, http.StatusBadRequest, "digest: want 32 hex-encoded bytes"},
		{"provision short digest", http.MethodPost, "/provision", `{"digest":"abcd","label":"x"}`, http.StatusBadRequest, "digest: want 32 hex-encoded bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			blob, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (body %q)", resp.StatusCode, tc.status, blob)
			}
			if !strings.Contains(string(blob), tc.want) {
				t.Errorf("body %q missing %q", blob, tc.want)
			}
		})
	}
}

// TestDenialBodyShape pins the 403 wire format: {reason, detail} JSON,
// with the detail carrying the broker's refusal text.
func TestDenialBodyShape(t *testing.T) {
	auth := kbs.NewAuthority(7)
	b := newBroker(auth, kbs.Config{MinLevel: sev.SNP, MinPolicy: sev.DefaultPolicy(), Seed: 3})
	srv := httptest.NewServer(b.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/challenge", "application/json",
		strings.NewReader(`{"tenant":"nobody","now":0}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Reason string `json:"reason"`
		Detail string `json:"detail"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Reason != string(kbs.ReasonTenant) {
		t.Errorf("reason = %q, want %q", body.Reason, kbs.ReasonTenant)
	}
	if !strings.Contains(body.Detail, "nobody") {
		t.Errorf("detail %q does not name the tenant", body.Detail)
	}
}

// TestBoundaryInstants audits the shared inclusive-expiry convention
// end to end: a challenge nonce is redeemable at exactly its Expires
// instant, and a revoked policy claim still admits at exactly the
// revocation instant — both invalid strictly after. Nonce freshness and
// claim validity must agree, or a boot straddling the boundary would be
// accepted by one gate and refused by the other.
func TestBoundaryInstants(t *testing.T) {
	auth := kbs.NewAuthority(7)
	pl := launch(t, auth, "chip-0", currentTCB, sev.SNP, sev.DefaultPolicy())
	ttl := 500 * time.Millisecond

	t.Run("nonce at expiry", func(t *testing.T) {
		b := newBroker(auth, kbs.Config{
			MinLevel: sev.SNP, MinPolicy: sev.DefaultPolicy(), Seed: 3, NonceTTL: ttl,
		})
		if err := b.Provision(pl.digest, "img"); err != nil {
			t.Fatal(err)
		}
		ch, err := b.Challenge("acme", 0)
		if err != nil {
			t.Fatal(err)
		}
		if ch.Expires != sim.Time(ttl) {
			t.Fatalf("Expires = %v, want %v", ch.Expires, sim.Time(ttl))
		}
		priv := guestKey(t, 99)
		pub := priv.PublicKey().Bytes()
		report, err := pl.ctx.BuildReport(nil, kbs.BindReportData(ch.Nonce, pub))
		if err != nil {
			t.Fatal(err)
		}
		req := kbs.RedeemRequest{Tenant: "acme", Nonce: ch.Nonce, Report: report.Marshal(),
			Chain: pl.enr.Chain.Marshal(), GuestPub: pub}
		if _, err := b.Redeem(req, ch.Expires); err != nil {
			t.Fatalf("redeem at exactly Expires refused: %v", err)
		}
	})

	t.Run("claim at revocation instant", func(t *testing.T) {
		b := newBroker(auth, kbs.Config{
			MinLevel: sev.SNP, MinPolicy: sev.DefaultPolicy(), Seed: 3, NonceTTL: ttl,
		})
		if err := b.Provision(pl.digest, "img"); err != nil {
			t.Fatal(err)
		}
		revokeAt := sim.Time(200 * time.Millisecond)
		if err := b.Policy().RevokeClaim("*", kbs.RefClaimID(pl.digest), revokeAt); err != nil {
			t.Fatal(err)
		}
		// At exactly the revocation instant the claim still admits.
		if _, _, err := exchange(t, b, pl, "acme", revokeAt, nil); err != nil {
			t.Fatalf("exchange at exactly the revocation instant refused: %v", err)
		}
		// One nanosecond later the measurement is distrusted, and the
		// refusal carries the policy denial as its cause.
		_, _, err := exchange(t, b, pl, "acme", revokeAt+1, nil)
		if !errors.Is(err, kbs.ErrMeasurement) {
			t.Fatalf("exchange after revocation: %v, want measurement denial", err)
		}
		if !errors.Is(err, policy.ErrDenied) {
			t.Fatalf("broker denial lost its policy cause: %v", err)
		}
		if d := policy.DenialOf(err); d == nil || d.Reason != policy.ReasonExpired {
			t.Fatalf("policy denial = %+v, want reason %q", d, policy.ReasonExpired)
		}
	})
}
